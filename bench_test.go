// Benchmarks regenerating the paper's evaluation artifacts.
//
//   - BenchmarkTable1/<row>: one benchmark per row of Table 1 on the
//     paper-sized airspace instance (762 sectors, 3165 edges, k = 32).
//     Custom metrics report the three objective columns: cut_k, ncut and
//     mcut (Cut is reported /1000 as in the paper).
//   - BenchmarkFigure1/<method>/steps=N: the three metaheuristics at
//     increasing step budgets — the benchmark form of the anytime curves.
//   - BenchmarkAblation/...: the design-choice ablations DESIGN.md lists
//     (percolation fission, law learning, uncoarsening refinement).
//
// Metaheuristic benchmarks are step-capped, not wall-clock-capped, so the
// work per iteration is deterministic.
package fusionfission

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/multilevel"
	"repro/internal/objective"
)

var benchInstance struct {
	once sync.Once
	g    *Graph
	err  error
}

// benchGraph returns the shared paper-sized airspace instance.
func benchGraph(b *testing.B) *Graph {
	benchInstance.once.Do(func() {
		spec := DefaultAirspace()
		benchInstance.g, _, benchInstance.err = GenerateAirspace(spec)
	})
	if benchInstance.err != nil {
		b.Fatal(benchInstance.err)
	}
	return benchInstance.g
}

// benchSteps gives each metaheuristic a step budget sized for roughly a
// second of work on the paper instance.
func benchSteps(method string) int {
	switch method {
	case "annealing":
		return 60_000
	case "ant-colony":
		return 120
	case "fusion-fission":
		return 900
	}
	return 0
}

var table1Rows = []struct {
	bench  string
	method string
}{
	{"linear-bi", "linear-bi"},
	{"linear-bi-kl", "linear-bi-kl"},
	{"linear-oct-kl", "linear-oct-kl"},
	{"spectral-lanc-bi", "spectral-lanc-bi"},
	{"spectral-lanc-bi-kl", "spectral-lanc-bi-kl"},
	{"spectral-lanc-oct", "spectral-lanc-oct"},
	{"spectral-lanc-oct-kl", "spectral-lanc-oct-kl"},
	{"spectral-rqi-bi", "spectral-rqi-bi"},
	{"spectral-rqi-bi-kl", "spectral-rqi-bi-kl"},
	{"spectral-rqi-oct", "spectral-rqi-oct"},
	{"spectral-rqi-oct-kl", "spectral-rqi-oct-kl"},
	{"multilevel-bi", "multilevel-bi"},
	{"multilevel-oct", "multilevel-oct"},
	{"percolation", "percolation"},
	{"annealing", "annealing"},
	{"ant-colony", "ant-colony"},
	{"fusion-fission", "fusion-fission"},
}

func BenchmarkTable1(b *testing.B) {
	g := benchGraph(b)
	for _, row := range table1Rows {
		meta := benchSteps(row.method) > 0
		b.Run(row.bench, func(b *testing.B) {
			var last *Result
			for i := 0; i < b.N; i++ {
				res, err := Partition(g, Options{
					K: 32, Method: row.method, Objective: "mcut",
					Seed: 1, Budget: time.Hour, MaxSteps: benchSteps(row.method),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			// Classical methods are criterion-blind: report all three
			// columns from the single partition. The metaheuristic rows of
			// Table 1 target each objective separately (see
			// experiments.Table1); this bench targets Mcut, so only the
			// Mcut cell is meaningful here.
			if !meta {
				b.ReportMetric(last.Cut/1000, "cut_k")
				b.ReportMetric(last.Ncut, "ncut")
			}
			b.ReportMetric(last.Mcut, "mcut")
		})
	}
}

func BenchmarkFigure1(b *testing.B) {
	g := benchGraph(b)
	type curve struct {
		method string
		steps  []int
	}
	curves := []curve{
		{"annealing", []int{15_000, 60_000, 240_000}},
		{"ant-colony", []int{30, 120, 480}},
		{"fusion-fission", []int{220, 900, 3_600}},
	}
	for _, c := range curves {
		for _, steps := range c.steps {
			b.Run(c.method+"/steps="+itoa(steps), func(b *testing.B) {
				var last *Result
				for i := 0; i < b.N; i++ {
					res, err := Partition(g, Options{
						K: 32, Method: c.method, Objective: "mcut",
						Seed: 1, Budget: time.Hour, MaxSteps: steps,
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res
				}
				b.ReportMetric(last.Mcut, "mcut")
			})
		}
	}
}

func BenchmarkAblation(b *testing.B) {
	g := benchGraph(b)
	const steps = 900

	runCore := func(b *testing.B, opt core.Options) {
		opt.Objective = objective.MCut
		opt.MaxSteps = steps
		opt.Seed = 1
		var last *core.Result
		for i := 0; i < b.N; i++ {
			res, err := core.Partition(g, 32, opt)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.Energy, "mcut")
	}

	b.Run("ff-full", func(b *testing.B) { runCore(b, core.Options{}) })
	b.Run("ff-no-percolation-fission", func(b *testing.B) {
		runCore(b, core.Options{DisablePercolationFission: true})
	})
	b.Run("ff-no-law-learning", func(b *testing.B) {
		runCore(b, core.Options{DisableLawLearning: true})
	})
	b.Run("ff-part-count-drift", func(b *testing.B) {
		// How many distinct part counts does the search visit? The paper:
		// "if fusion fission returns a 32-partition, it returns good
		// solutions from 27 to 38 partitions".
		var visited int
		for i := 0; i < b.N; i++ {
			res, err := core.Partition(g, 32, core.Options{
				Objective: objective.MCut, MaxSteps: steps, Seed: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			visited = len(res.BestPerK)
		}
		b.ReportMetric(float64(visited), "part_counts")
	})
	b.Run("multilevel-with-refinement", func(b *testing.B) {
		var p float64
		for i := 0; i < b.N; i++ {
			res, err := multilevel.Partition(g, 32, multilevel.Options{Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			p = objective.Cut.Evaluate(res)
		}
		b.ReportMetric(p/1000, "cut_k")
	})
	b.Run("multilevel-no-refinement", func(b *testing.B) {
		// Section 2.3: local refinement improves results by 10-30%.
		var p float64
		for i := 0; i < b.N; i++ {
			res, err := multilevel.Partition(g, 32, multilevel.Options{Seed: 1, DisableRefine: true})
			if err != nil {
				b.Fatal(err)
			}
			p = objective.Cut.Evaluate(res)
		}
		b.ReportMetric(p/1000, "cut_k")
	})
}

// BenchmarkExtensions covers the methods beyond the paper's table: the
// structure-blind baselines, direct k-way multilevel, the genetic algorithm
// the paper cites as prior work, and the parallel fusion-fission ensemble.
func BenchmarkExtensions(b *testing.B) {
	g := benchGraph(b)
	cases := []struct {
		method string
		steps  int
	}{
		{"random", 0},
		{"scattered", 0},
		{"multilevel-kway", 0},
		{"genetic", 12},
		{"fusion-fission-ensemble", 300},
	}
	for _, c := range cases {
		b.Run(c.method, func(b *testing.B) {
			var last *Result
			for i := 0; i < b.N; i++ {
				res, err := Partition(g, Options{
					K: 32, Method: c.method, Objective: "mcut",
					Seed: 1, Budget: time.Hour, MaxSteps: c.steps,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res
			}
			b.ReportMetric(last.Mcut, "mcut")
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
