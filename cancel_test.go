package fusionfission

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
)

// Cooperative-cancellation contract, for every method the facade exposes:
//
//  1. a context that is done before the call starts deterministically
//     yields ctx.Err() — nothing runs;
//  2. a context cancelled mid-flight returns promptly: a classical method
//     with ctx.Err(), a metaheuristic with its best-so-far partition and
//     Result.Cancelled set;
//  3. in either case no goroutine keeps computing after the call returns
//     (the solver runs on the calling goroutine).

// allMethodIDs is every facade method, Table 1 rows and extensions.
func allMethodIDs() []string {
	return append(Methods(), ExtensionMethods()...)
}

// cancelGraph is large enough that every method has work to abandon, small
// enough that the suite stays fast when cancellation works.
func cancelGraph() *Graph {
	return graph.Grid2D(48, 48)
}

func TestPartitionContextAlreadyCancelled(t *testing.T) {
	g := cancelGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range allMethodIDs() {
		res, err := PartitionContext(ctx, g, Options{K: 16, Method: id, Seed: 1})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got res=%v err=%v", id, res, err)
		}
	}
}

func TestPartitionContextExpiredDeadline(t *testing.T) {
	g := cancelGraph()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, id := range allMethodIDs() {
		res, err := PartitionContext(ctx, g, Options{K: 16, Method: id, Seed: 1})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("%s: want context.DeadlineExceeded, got res=%v err=%v", id, res, err)
		}
	}
}

func TestPartitionContextClampedButCompleteNotCancelled(t *testing.T) {
	// The deadline clamps the 30s budget, but MaxSteps binds long before the
	// clamp: the run is complete and must not be marked partial (a false
	// Cancelled would stop the server from ever caching deterministic
	// step-capped requests submitted with a timeout).
	g := graph.Grid2D(10, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	res, err := PartitionContext(ctx, g, Options{
		K: 4, Method: "fusion-fission", Seed: 1, Budget: 30 * time.Second, MaxSteps: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancelled {
		t.Fatalf("complete step-capped run marked Cancelled: %+v", res)
	}
	if res.NumParts != 4 {
		t.Fatalf("NumParts = %d", res.NumParts)
	}
}

func TestPartitionContextCancelMidFlight(t *testing.T) {
	g := cancelGraph()
	metaheuristic := map[string]bool{}
	for _, info := range MethodInfos() {
		metaheuristic[info.ID] = info.Metaheuristic
	}

	const delay = 60 * time.Millisecond
	// Generous so slow CI and -race never flake; when cancellation works
	// every method returns within a few checking intervals of the cancel.
	const bound = 5 * time.Second

	for _, id := range allMethodIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(delay)
				cancel()
			}()
			start := time.Now()
			// The 30s budget means a method that ignores cancellation blows
			// the bound by an order of magnitude.
			res, err := PartitionContext(ctx, g, Options{
				K: 16, Method: id, Seed: 1, Budget: 30 * time.Second, MaxSteps: 1 << 30,
			})
			elapsed := time.Since(start)
			if elapsed > delay+bound {
				t.Fatalf("returned %v after cancellation (total %v)", elapsed-delay, elapsed)
			}
			switch {
			case err != nil:
				// Classical methods — and metaheuristics cancelled before a
				// first solution — report the cancellation.
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("unexpected error: %v", err)
				}
			case metaheuristic[id]:
				// Best-so-far: a full, valid partition marked as partial
				// (with a 30s budget the only way out this early is the
				// cancellation).
				if !res.Cancelled {
					t.Errorf("metaheuristic result not marked Cancelled")
				}
				if len(res.Parts) != g.NumVertices() {
					t.Errorf("partial result has %d assignments for %d vertices", len(res.Parts), g.NumVertices())
				}
				if res.NumParts != 16 {
					t.Errorf("partial result has %d parts, want 16", res.NumParts)
				}
			default:
				// A classical method may legitimately have finished before
				// the cancel; the result must then be complete and unmarked.
				if res.Cancelled {
					t.Errorf("classical method returned a Cancelled result")
				}
			}
		})
	}
}
