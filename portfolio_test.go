package fusionfission

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"

	"repro/internal/graph"
)

// metaheuristicIDs are the methods that accept a portfolio width.
func metaheuristicIDs() []string {
	var ids []string
	for _, info := range MethodInfos() {
		if info.Metaheuristic && info.ID != "fusion-fission-ensemble" {
			ids = append(ids, info.ID)
		}
	}
	return ids
}

// TestParallelismOneIsSerial: a one-worker portfolio must be bit-identical
// to the plain serial solver — worker 0 keeps the base seed and never sees
// a foreign incumbent, so the search trajectory is byte-for-byte the same.
// Combined with the golden test (which pins the serial output to the
// pre-engine solvers), this is the "Parallelism: 1 reproduces pre-refactor
// results seed-for-seed" guarantee.
func TestParallelismOneIsSerial(t *testing.T) {
	g := goldenGraph()
	for _, id := range metaheuristicIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			opt := goldenOptions(id)
			serial, err := Partition(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			opt.Parallelism = 1
			par, err := Partition(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(serial.Parts, par.Parts) {
				t.Fatal("Parallelism 1 diverged from the serial solver")
			}
			if par.Workers != 1 || serial.Workers != 1 {
				t.Fatalf("workers = %d / %d, want 1", serial.Workers, par.Workers)
			}
		})
	}
}

// TestPortfolioDeterministic: step-capped portfolio runs are exactly
// reproducible — same seed and same parallelism give the identical winning
// partition, because seeds derive from worker indices and incumbent
// exchange happens at fixed step indices behind a barrier.
func TestPortfolioDeterministic(t *testing.T) {
	g := goldenGraph()
	for _, id := range metaheuristicIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			opt := goldenOptions(id)
			opt.Parallelism = 3
			first, err := Partition(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			if first.Workers != 3 {
				t.Fatalf("workers = %d, want 3", first.Workers)
			}
			if first.NumParts != goldenK {
				t.Fatalf("NumParts = %d", first.NumParts)
			}
			again, err := Partition(g, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first.Parts, again.Parts) {
				t.Fatal("same seed + same parallelism produced different winners")
			}
			if first.Mcut != again.Mcut {
				t.Fatalf("Mcut differs: %v vs %v", first.Mcut, again.Mcut)
			}
		})
	}
}

// Portfolio cancellation regression suite (the PR-2 per-method cancellation
// contract, re-run against the multi-worker path): every worker observes
// the cancellation promptly, the barrier never strands a worker, and no
// goroutine outlives the call.

func TestPortfolioCancelMidFlight(t *testing.T) {
	g := graph.Grid2D(48, 48)
	const delay = 60 * time.Millisecond
	const bound = 10 * time.Second // generous for -race CI

	baseline := runtime.NumGoroutine()
	for _, id := range metaheuristicIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(delay)
				cancel()
			}()
			start := time.Now()
			res, err := PartitionContext(ctx, g, Options{
				K: 16, Method: id, Seed: 1, Budget: 30 * time.Second,
				MaxSteps: 1 << 30, Parallelism: 4,
			})
			if elapsed := time.Since(start); elapsed > delay+bound {
				t.Fatalf("returned %v after cancellation", elapsed-delay)
			}
			switch {
			case err != nil:
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("unexpected error: %v", err)
				}
			default:
				if !res.Cancelled {
					t.Error("portfolio result not marked Cancelled")
				}
				if res.NumParts != 16 {
					t.Errorf("partial result has %d parts, want 16", res.NumParts)
				}
				if len(res.Parts) != g.NumVertices() {
					t.Errorf("partial result has %d assignments", len(res.Parts))
				}
			}
		})
	}

	// Worker-goroutine leak check: the portfolio joins all workers and its
	// context watcher before returning, so the goroutine count settles back
	// to the pre-suite baseline.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutines leaked: %d now, %d before the suite", n, baseline)
	}
}

func TestPortfolioAlreadyCancelled(t *testing.T) {
	g := graph.Grid2D(12, 12)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range metaheuristicIDs() {
		res, err := PartitionContext(ctx, g, Options{K: 4, Method: id, Seed: 1, Parallelism: 4})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got res=%v err=%v", id, res, err)
		}
	}
}
