package fusionfission

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
)

// warmMethods are the metaheuristics that honour Options.WarmStart.
var warmMethods = []string{"fusion-fission", "annealing", "ant-colony", "genetic"}

// seedMcut evaluates an assignment's Mcut directly, for comparison against a
// warm-started result.
func seedMcut(t *testing.T, g *Graph, assign []int32, k int) float64 {
	t.Helper()
	p, err := partition.FromAssignment(g, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	return objective.MCut.Evaluate(p)
}

// TestWarmStartNeverWorseThanSeed is the warm-start contract: for every
// metaheuristic, on several graphs and deliberately bad seeds, the final
// Mcut is never worse than the seed assignment's.
func TestWarmStartNeverWorseThanSeed(t *testing.T) {
	graphs := map[string]*Graph{
		"grid":      graph.Grid2D(9, 7),
		"geometric": graph.RandomGeometric(80, 0.22, 11),
	}
	const k = 4
	for gname, g := range graphs {
		n := g.NumVertices()
		// A lousy but valid seed: stripes of n/k interleaved mod k, which
		// cuts nearly every edge on a grid.
		seed := make([]int32, n)
		for v := range seed {
			seed[v] = int32(v % k)
		}
		seedVal := seedMcut(t, g, seed, k)
		for _, method := range warmMethods {
			res, err := Partition(g, Options{
				K: k, Method: method, Seed: 7, MaxSteps: 400,
				Budget: 5 * time.Second, WarmStart: seed,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, method, err)
			}
			if !res.WarmStart {
				t.Fatalf("%s/%s: result not marked warm-started", gname, method)
			}
			got := recomputeMcut(g, res.Parts, res.NumParts)
			if got > seedVal {
				t.Fatalf("%s/%s: warm-started Mcut %.6f worse than seed %.6f", gname, method, got, seedVal)
			}
		}
	}
}

// TestWarmStartFloorHoldsForNearOptimalSeed seeds with an already-excellent
// partition and a tiny step cap, so the search has no time to rediscover it:
// the floor guarantee must return something at least as good anyway.
func TestWarmStartFloorHoldsForNearOptimalSeed(t *testing.T) {
	g := graph.Dumbbell(14, 17, 3)
	// The ideal bisection: each clique is a part.
	seed := make([]int32, g.NumVertices())
	for v := 14; v < g.NumVertices(); v++ {
		seed[v] = 1
	}
	seedVal := seedMcut(t, g, seed, 2)
	for _, method := range warmMethods {
		res, err := Partition(g, Options{
			K: 2, Method: method, Seed: 3, MaxSteps: 2,
			Budget: 2 * time.Second, WarmStart: seed,
		})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if got := recomputeMcut(g, res.Parts, res.NumParts); got > seedVal {
			t.Fatalf("%s: Mcut %.6f worse than near-optimal seed %.6f after 2 steps", method, got, seedVal)
		}
	}
}

// TestWarmStartValidation pins the error paths: wrong length, out-of-range
// labels, deterministic methods, and the multilevel clear.
func TestWarmStartValidation(t *testing.T) {
	g := graph.Grid2D(5, 5)
	if _, err := Partition(g, Options{K: 2, WarmStart: []int32{0, 1}}); err == nil {
		t.Fatal("short warm start accepted")
	}
	bad := make([]int32, g.NumVertices())
	bad[3] = 7 // >= K
	if _, err := Partition(g, Options{K: 2, WarmStart: bad}); err == nil {
		t.Fatal("out-of-range warm label accepted")
	}
	ok := make([]int32, g.NumVertices())
	for v := range ok {
		ok[v] = int32(v % 2)
	}
	if _, err := Partition(g, Options{K: 2, Method: "linear-bi", WarmStart: ok}); err == nil {
		t.Fatal("warm start on a deterministic method accepted")
	}
	// Multilevel is cleared, not rejected: the request still runs flat.
	norm, err := Normalize(Options{K: 2, Method: "annealing", Multilevel: true, WarmStart: ok})
	if err != nil {
		t.Fatal(err)
	}
	if norm.Multilevel || norm.CoarsenTo != 0 {
		t.Fatalf("warm start did not clear the V-cycle flags: %+v", norm)
	}
	res, err := Partition(g, Options{K: 2, Method: "annealing", Multilevel: true, MaxSteps: 50, WarmStart: ok})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hierarchy != nil {
		t.Fatal("warm-started run built a V-cycle hierarchy")
	}
}

// TestWarmStartPortfolioAndDeterminism: a warm start composes with the
// portfolio, and a step-capped warm run is bit-identical when repeated.
func TestWarmStartPortfolioAndDeterminism(t *testing.T) {
	g := graph.RandomGeometric(70, 0.24, 9)
	seed := make([]int32, g.NumVertices())
	for v := range seed {
		seed[v] = int32(v % 3)
	}
	opt := Options{K: 3, Method: "fusion-fission", Seed: 11, MaxSteps: 300, Parallelism: 3, WarmStart: seed}
	a, err := Partition(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Workers != 3 {
		t.Fatalf("portfolio width %d", a.Workers)
	}
	b, err := Partition(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.Parts {
		if a.Parts[v] != b.Parts[v] {
			t.Fatalf("warm-started portfolio run not deterministic at vertex %d", v)
		}
	}
	if seedVal := seedMcut(t, g, seed, 3); recomputeMcut(g, a.Parts, a.NumParts) > seedVal {
		t.Fatalf("portfolio warm run worse than seed")
	}
}
