package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	ff "repro"
	"repro/internal/graph"
)

// uploadReply mirrors the server's graph-upload response (the full type is
// unexported in the server package).
type uploadReply struct {
	ID      string `json:"id"`
	Created bool   `json:"created"`
	N       int    `json:"n"`
	M       int    `json:"m"`
	Error   string `json:"error"`
}

// uploadGraph PUTs the graph to the server's store in binary CSR form — the
// same zero-parse encoding the store spills to disk, so the server admits
// it without ever touching a text parser.
func uploadGraph(url string, g *ff.Graph) (*uploadReply, error) {
	req, err := http.NewRequest(http.MethodPut,
		strings.TrimRight(url, "/")+"/v1/graphs", bytes.NewReader(graph.EncodeBinary(g)))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out uploadReply
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("bad response (%s): %w", resp.Status, err)
	}
	if out.Error != "" {
		return nil, fmt.Errorf("%s: %s", resp.Status, out.Error)
	}
	if out.ID == "" {
		return nil, fmt.Errorf("%s: no id in upload response", resp.Status)
	}
	return &out, nil
}
