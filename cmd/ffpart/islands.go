package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	ff "repro"
	"repro/internal/server"
)

// islandOutcome is one ffserve instance's answer to the fanned-out job.
type islandOutcome struct {
	url    string
	result *ff.Result
	err    error
}

// islandResponse is the slice of the server's partition response the client
// needs (the full type is unexported in the server package).
type islandResponse struct {
	Status string     `json:"status"`
	Result *ff.Result `json:"result"`
	Error  string     `json:"error"`
}

// requestSpec builds the wire GraphSpec: the stored-graph id when given,
// otherwise the local graph serialized as METIS text.
func requestSpec(g *ff.Graph, graphID string) (server.GraphSpec, error) {
	if graphID != "" {
		return server.GraphSpec{ID: graphID}, nil
	}
	var metis strings.Builder
	if err := ff.WriteMETIS(&metis, g); err != nil {
		return server.GraphSpec{}, fmt.Errorf("serializing graph: %w", err)
	}
	return server.GraphSpec{METIS: metis.String()}, nil
}

// buildRequest assembles the PartitionRequest shared by the single-server
// and federated paths.
func buildRequest(spec server.GraphSpec, opt ff.Options, timeout time.Duration, federate bool) ([]byte, error) {
	req := server.PartitionRequest{
		Graph:     spec,
		K:         opt.K,
		Method:    opt.Method,
		Objective: opt.Objective,
		Seed:      opt.Seed,
		MaxSteps:  opt.MaxSteps,
		WarmStart: opt.WarmStart,
		Relayout:  opt.Relayout,
		Federate:  federate,
	}
	if opt.Budget > 0 {
		req.Budget = opt.Budget.String()
	}
	if opt.Parallelism > 0 {
		req.Parallelism = opt.Parallelism
	}
	if opt.Multilevel {
		req.Multilevel = true
		req.CoarsenTo = opt.CoarsenTo
	}
	if timeout > 0 {
		req.Timeout = timeout.String()
	}
	return json.Marshal(req)
}

// runRemote submits one non-federated job to a single ffserve.
func runRemote(url string, spec server.GraphSpec, opt ff.Options, timeout time.Duration) (*ff.Result, error) {
	body, err := buildRequest(spec, opt, timeout, false)
	if err != nil {
		return nil, err
	}
	return askIsland(url, body, timeout)
}

// runIslands fans the job out to every ffserve URL as a federated request
// and reduces the replies with the same deterministic comparison the
// islands themselves use, so the client-side winner agrees with the
// fleet-side one. Returns the winning result for printing/writing.
func runIslands(urls []string, spec server.GraphSpec, opt ff.Options, timeout time.Duration) (*ff.Result, []islandOutcome, error) {
	body, err := buildRequest(spec, opt, timeout, true)
	if err != nil {
		return nil, nil, err
	}

	// All islands get the identical request concurrently; the federation
	// protocol needs every member running, so a sequential fan-out would
	// stall the first island's exchange rounds until the last submission.
	outcomes := make([]islandOutcome, len(urls))
	var wg sync.WaitGroup
	for i, url := range urls {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			res, err := askIsland(url, body, timeout)
			outcomes[i] = islandOutcome{url: url, result: res, err: err}
		}(i, url)
	}
	wg.Wait()

	// Reduce with the fleet's own comparison: objective value first, then
	// island id. With healthy gossip every island already reports the same
	// winner; the reduction also covers a degraded fleet where some island
	// missed rounds and finished worse.
	var cands []ff.ExchangeCandidate
	for i, o := range outcomes {
		if o.err != nil || o.result == nil {
			continue
		}
		island := i
		if o.result.Island != nil {
			island = *o.result.Island
		}
		cands = append(cands, ff.ExchangeCandidate{
			Assign: o.result.Parts,
			Energy: objectiveValue(o.result, opt.Objective),
			Island: island,
			Has:    true,
		})
	}
	win, ok := ff.ReduceWinner(cands)
	if !ok {
		for _, o := range outcomes {
			if o.err != nil {
				return nil, outcomes, fmt.Errorf("no island returned a partition; first failure: %s: %w", o.url, o.err)
			}
		}
		return nil, outcomes, fmt.Errorf("no island returned a partition")
	}
	for _, o := range outcomes {
		if o.result != nil && o.result.Island != nil && *o.result.Island == win.Island {
			return o.result, outcomes, nil
		}
	}
	// Fallback when islands did not echo ids: match by slice index.
	return outcomes[win.Island].result, outcomes, nil
}

// askIsland POSTs the federated request to one ffserve and decodes the
// synchronous reply.
func askIsland(url string, body []byte, timeout time.Duration) (*ff.Result, error) {
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout+10*time.Second)
		defer cancel()
	}
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(url, "/")+"/v1/partition", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(httpReq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var out islandResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return nil, fmt.Errorf("bad response (%s): %w", resp.Status, err)
	}
	if out.Error != "" {
		return nil, fmt.Errorf("%s: %s", resp.Status, out.Error)
	}
	if out.Result == nil {
		return nil, fmt.Errorf("%s: no result (status %q)", resp.Status, out.Status)
	}
	return out.Result, nil
}

// objectiveValue picks the requested objective out of a result.
func objectiveValue(r *ff.Result, objective string) float64 {
	switch objective {
	case "cut":
		return r.Cut
	case "ncut":
		return r.Ncut
	default:
		return r.Mcut
	}
}

// printIslandSummary lists each island's answer under the winner's summary.
func printIslandSummary(outcomes []islandOutcome, objective string) {
	ordered := append([]islandOutcome(nil), outcomes...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].url < ordered[j].url })
	for _, o := range ordered {
		switch {
		case o.err != nil:
			fmt.Printf("island %-28s error: %v\n", o.url+":", o.err)
		case o.result != nil:
			id := "?"
			if o.result.Island != nil {
				id = fmt.Sprintf("%d", *o.result.Island)
			}
			fmt.Printf("island %-28s id %s  %s %.4f  %d worker(s)  %d exchange round(s)\n",
				o.url+":", id, objective, objectiveValue(o.result, objective),
				o.result.Workers, o.result.ExchangeRounds)
		}
	}
}
