// Command ffpart partitions a graph with any of the seventeen methods of
// the paper's Table 1.
//
// Usage:
//
//	ffpart -graph mesh.graph -k 32 -method fusion-fission -out parts.txt
//	ffpart -gen airspace -k 32 -method multilevel-bi
//	ffpart -gen grid:64x64 -k 8 -method spectral-lanc-bi-kl
//	ffpart -gen geometric:500:0.08 -k 16 -method annealing -budget 5s
//	ffpart -gen geometric:10000:0.02 -k 32 -multilevel -parallelism 4
//	ffpart -gen geometric:10000:0.02 -k 32 -method genetic -memetic -parallelism 4
//
// The output file holds one part id per line, vertex order. With -out
// omitted, only the summary is printed.
//
// Against a running ffserve, the graph store replaces inline submission:
//
//	ffpart -gen geometric:10000:0.02 -upload -server http://localhost:8080
//	ffpart -graph-id ID -server http://localhost:8080 -k 32
//	ffpart -graph-id ID -islands http://h1:8080,http://h2:8080 -k 32
//	ffpart -graph-id ID -server URL -k 32 -warm-start parts.txt
//
// -upload stores the graph and prints its content id; partition requests by
// -graph-id never re-ship the graph. -warm-start seeds the solve with a
// previous partition file (as written by -out) — the incremental
// repartitioning path after POST /v1/graphs/{id}/mutate.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	ff "repro"
	"repro/internal/graph"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph in METIS/Chaco format")
		gen       = flag.String("gen", "", "generate input instead: airspace | grid:RxC | torus:RxC | geometric:N:RADIUS | gnp:N:P")
		k         = flag.Int("k", 32, "number of parts")
		method    = flag.String("method", "fusion-fission", "method id; -list shows all")
		obj       = flag.String("objective", "mcut", "objective for metaheuristics: cut | ncut | mcut")
		seed      = flag.Int64("seed", 1, "random seed")
		budget    = flag.Duration("budget", 2*time.Second, "time budget for metaheuristics")
		steps     = flag.Int("steps", 0, "optional step cap for metaheuristics (0 = none)")
		par       = flag.Int("parallelism", 1, "metaheuristic portfolio width (0 = all cores)")
		multi     = flag.Bool("multilevel", false, "run the metaheuristic inside a multilevel V-cycle")
		memetic   = flag.Bool("memetic", false, "genetic method: recombine parents by cut-protecting V-cycle crossover instead of flat crossover")
		coarsenTo = flag.Int("coarsen-to", 0, "V-cycle coarsening cutoff in vertices (0 = default; needs -multilevel or -memetic)")
		out       = flag.String("out", "", "write the partition here (one part id per line)")
		list      = flag.Bool("list", false, "list available methods and exit")
		islands   = flag.String("islands", "", "comma-separated ffserve URLs: fan the job out as a federated island run instead of solving locally")
		timeout   = flag.Duration("timeout", 0, "per-island job timeout for -islands (0 = server default)")
		serverURL = flag.String("server", "", "ffserve URL: run the job on one server instead of solving locally")
		graphID   = flag.String("graph-id", "", "partition a stored graph by content id (needs -server or -islands)")
		upload    = flag.Bool("upload", false, "upload the input graph to -server's store, print its content id, and exit")
		warmFile  = flag.String("warm-start", "", "seed the solve with a partition file (one part id per line, as written by -out); metaheuristics only")
		relayout  = flag.Bool("relayout", false, "renumber the graph with the locality ordering before solving (cache-friendlier hot path; parts map back to input numbering)")
	)
	flag.Parse()

	if *list {
		for _, id := range ff.Methods() {
			fmt.Println(id)
		}
		return
	}

	var g *ff.Graph
	var err error
	if *graphID != "" {
		if *graphPath != "" || *gen != "" {
			fatal(fmt.Errorf("use either -graph/-gen or -graph-id, not both"))
		}
		if *serverURL == "" && *islands == "" {
			fatal(fmt.Errorf("-graph-id names a server-side graph; pass -server or -islands"))
		}
	} else {
		g, err = loadGraph(*graphPath, *gen, *seed)
		if err != nil {
			fatal(err)
		}
	}

	if *upload {
		if *serverURL == "" {
			fatal(fmt.Errorf("-upload needs -server"))
		}
		if g == nil {
			fatal(fmt.Errorf("-upload needs a local graph (-graph or -gen)"))
		}
		up, err := uploadGraph(*serverURL, g)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("uploaded: %d vertices, %d edges\nid: %s\n", up.N, up.M, up.ID)
		if !up.Created {
			fmt.Println("(deduplicated: the store already held this graph)")
		}
		return
	}

	parallelism := *par
	if parallelism == 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	opt := ff.Options{
		K: *k, Method: *method, Objective: *obj,
		Seed: *seed, Budget: *budget, MaxSteps: *steps,
		Parallelism: parallelism,
		Multilevel: *multi, CoarsenTo: *coarsenTo,
		Relayout: *relayout,

		MemeticCrossover: *memetic,
	}
	if *warmFile != "" {
		warm, err := readPartition(*warmFile)
		if err != nil {
			fatal(err)
		}
		opt.WarmStart = warm
	}

	spec, err := requestSpec(g, *graphID)
	if err != nil {
		fatal(err)
	}

	var res *ff.Result
	var outcomes []islandOutcome
	switch {
	case *islands != "":
		var urls []string
		for _, u := range strings.Split(*islands, ",") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		res, outcomes, err = runIslands(urls, spec, opt, *timeout)
	case *serverURL != "":
		res, err = runRemote(*serverURL, spec, opt, *timeout)
	default:
		res, err = ff.Partition(g, opt)
	}
	if err != nil {
		fatal(err)
	}

	if g != nil {
		fmt.Printf("graph:      %d vertices, %d edges (total weight %.0f)\n",
			g.NumVertices(), g.NumEdges(), g.TotalEdgeWeight())
	} else {
		fmt.Printf("graph:      stored id %s\n", *graphID)
	}
	fmt.Printf("method:     %s (objective %s, seed %d, %d worker(s))\n", res.Method, *obj, *seed, res.Workers)
	fmt.Printf("parts:      %d\n", res.NumParts)
	fmt.Printf("Cut:        %.1f   (paper convention; edge cut = %.1f)\n", res.Cut, res.Cut/2)
	fmt.Printf("Ncut:       %.4f\n", res.Ncut)
	fmt.Printf("Mcut:       %.4f\n", res.Mcut)
	fmt.Printf("imbalance:  %.2f%%\n", res.Imbalance*100)
	fmt.Printf("elapsed:    %s\n", res.Elapsed.Round(time.Millisecond))
	if res.WarmStart {
		fmt.Println("warm-start: seeded and repaired from the previous assignment")
	}
	if h := res.Hierarchy; h != nil {
		fmt.Printf("hierarchy:  %d levels, coarsest %d vertices / %d edges %v\n",
			h.Levels, h.CoarsestVertices, h.CoarsestEdges, h.VertexCounts)
	}
	if outcomes != nil {
		if res.Island != nil {
			fmt.Printf("winner:     island %d\n", *res.Island)
		}
		printIslandSummary(outcomes, *obj)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		for _, p := range res.Parts {
			fmt.Fprintln(w, p)
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("partition written to %s\n", *out)
	}
}

func loadGraph(path, gen string, seed int64) (*ff.Graph, error) {
	switch {
	case path != "" && gen != "":
		return nil, fmt.Errorf("use either -graph or -gen, not both")
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return ff.ReadMETIS(f)
	case gen != "":
		return generate(gen, seed)
	}
	return nil, fmt.Errorf("no input: pass -graph FILE or -gen SPEC")
}

func generate(spec string, seed int64) (*ff.Graph, error) {
	parts := strings.Split(spec, ":")
	switch parts[0] {
	case "airspace":
		s := ff.DefaultAirspace()
		s.Seed = seed
		g, _, err := ff.GenerateAirspace(s)
		return g, err
	case "grid", "torus":
		if len(parts) != 2 {
			return nil, fmt.Errorf("want %s:RxC", parts[0])
		}
		dims := strings.Split(parts[1], "x")
		if len(dims) != 2 {
			return nil, fmt.Errorf("want %s:RxC", parts[0])
		}
		r, err1 := strconv.Atoi(dims[0])
		c, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil || r < 1 || c < 1 {
			return nil, fmt.Errorf("bad dimensions %q", parts[1])
		}
		if parts[0] == "grid" {
			return graph.Grid2D(r, c), nil
		}
		return graph.Torus2D(r, c), nil
	case "geometric":
		if len(parts) != 3 {
			return nil, fmt.Errorf("want geometric:N:RADIUS")
		}
		n, err1 := strconv.Atoi(parts[1])
		rad, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad geometric spec %q", spec)
		}
		return graph.RandomGeometric(n, rad, seed), nil
	case "gnp":
		if len(parts) != 3 {
			return nil, fmt.Errorf("want gnp:N:P")
		}
		n, err1 := strconv.Atoi(parts[1])
		p, err2 := strconv.ParseFloat(parts[2], 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("bad gnp spec %q", spec)
		}
		return graph.GNP(n, p, seed), nil
	}
	return nil, fmt.Errorf("unknown generator %q", parts[0])
}

// readPartition reads a warm-start seed in the -out format: one part id per
// line, vertex order.
func readPartition(path string) ([]int32, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var parts []int32
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		p, err := strconv.Atoi(line)
		if err != nil {
			return nil, fmt.Errorf("%s line %d: %v", path, len(parts)+1, err)
		}
		parts = append(parts, int32(p))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("%s: empty partition file", path)
	}
	return parts, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffpart:", err)
	os.Exit(1)
}
