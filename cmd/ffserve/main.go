// Command ffserve runs the partition-as-a-service HTTP API.
//
// Usage:
//
//	ffserve -addr :8080 -workers 8 -cache 512
//
// Endpoints:
//
//	POST   /v1/partition           partition a graph (inline or by stored id)
//	GET    /v1/jobs/{id}           poll an asynchronous job
//	DELETE /v1/jobs/{id}           cancel a job
//	PUT    /v1/graphs              upload a graph, get its content id
//	GET    /v1/graphs/{id}         stored-graph metadata
//	DELETE /v1/graphs/{id}         drop a stored graph
//	POST   /v1/graphs/{id}/mutate  derive a new graph by edge edits
//	GET    /v1/methods             list methods and objectives
//	GET    /healthz                liveness and statistics
//
// With -store-dir the graph store spills to disk: uploads survive restarts
// and memory eviction, and warm-started repartitions of mutated graphs skip
// re-uploading entirely.
//
// With -island-id and -peers the instance joins a federated fleet: requests
// carrying "federate": true exchange incumbents with the peer instances over
// POST /v1/islands/exchange, and every island converges on the same winner.
//
//	ffserve -addr :8080 -island-id 0 -peers http://10.0.0.2:8080
//
// Example request:
//
//	curl -s localhost:8080/v1/partition -d '{
//	  "graph": {"n": 4, "edges": [[0,1],[1,2],[2,3],[3,0]]},
//	  "k": 2, "method": "fusion-fission", "seed": 7, "budget": "200ms"
//	}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "concurrent partition computations (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "max jobs waiting for a worker before 503")
		cacheSize = flag.Int("cache", 256, "LRU result-cache entries (negative disables)")
		maxBudget = flag.Duration("max-budget", 30*time.Second, "clamp on per-request metaheuristic budget")
		maxPar    = flag.Int("max-parallelism", 0, "clamp on per-request portfolio width (0 = GOMAXPROCS, negative = force serial)")
		grace     = flag.Duration("grace", 10*time.Second, "slack added to a request's budget to form its job deadline")
		jobTTL    = flag.Duration("job-ttl", 15*time.Minute, "how long finished jobs stay pollable")
		islandID  = flag.Int("island-id", 0, "this instance's id in a federated fleet (unique per island)")
		peers     = flag.String("peers", "", "comma-separated base URLs of the other islands (enables federation)")
		exchWait  = flag.Duration("exchange-wait", 30*time.Second, "long-poll cap for a peer's candidate per exchange round")
		storeDir  = flag.String("store-dir", "", "graph-store spill directory (empty = memory-only store)")
		storeMax  = flag.Int64("store-max-bytes", 0, "graph-store memory-tier bound in encoded bytes (0 = 256 MiB)")
	)
	flag.Parse()

	var peerList []string
	for _, p := range strings.Split(*peers, ",") {
		if p = strings.TrimSpace(p); p != "" {
			peerList = append(peerList, strings.TrimRight(p, "/"))
		}
	}
	if *islandID < 0 {
		fatal(fmt.Errorf("-island-id must be >= 0, got %d", *islandID))
	}
	if *islandID > 0 && len(peerList) == 0 {
		fatal(errors.New("-island-id set but no -peers; a fleet needs both"))
	}

	srv, err := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheSize:      *cacheSize,
		MaxBudget:      *maxBudget,
		MaxParallelism: *maxPar,
		Grace:          *grace,
		JobTTL:         *jobTTL,
		IslandID:       *islandID,
		Peers:          peerList,
		ExchangeWait:   *exchWait,
		StoreDir:       *storeDir,
		StoreMaxBytes:  *storeMax,
	})
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		if len(peerList) > 0 {
			log.Printf("ffserve island %d listening on %s, peers %v", *islandID, *addr, peerList)
		} else {
			log.Printf("ffserve listening on %s", *addr)
		}
		errc <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	case s := <-sig:
		log.Printf("ffserve: %v, draining", s)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("ffserve: shutdown: %v", err)
		}
		srv.Close()
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffserve:", err)
	os.Exit(1)
}
