// Command ffbench regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	ffbench table1  [-k 32] [-seed 1] [-budget 10s] [-scale paper|small]
//	ffbench figure1 [-k 32] [-seed 1] [-budget 30s] [-scale paper|small]
//	ffbench ablation [-seed 1] [-budget 2s]
//
// table1 prints the seventeen-method comparison under Cut/Ncut/Mcut (the
// paper's Table 1); figure1 prints the anytime Mcut traces of the three
// metaheuristics with the spectral/multilevel reference levels (the paper's
// Figure 1); ablation quantifies fusion-fission's design choices
// (percolation fission, law learning, part-count drift).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro/internal/airspace"
	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/objective"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	var (
		k       = fs.Int("k", 32, "number of parts")
		seed    = fs.Int64("seed", 1, "random seed")
		budget  = fs.Duration("budget", 0, "metaheuristic budget (0 = command default)")
		par     = fs.Int("parallelism", 1, "metaheuristic portfolio width (0 = all cores)")
		multi   = fs.Bool("multilevel", false, "run the metaheuristics inside a multilevel V-cycle")
		coarse  = fs.Int("coarsen-to", 0, "V-cycle coarsening cutoff in vertices (0 = default)")
		scale   = fs.String("scale", "paper", "instance scale: paper (762 sectors) or small (180)")
		cpuprof = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memprof = fs.String("memprofile", "", "write a heap profile to this file at exit")
		upload  = fs.String("upload", "", "store: also upload the bench instance to this ffserve URL and time remote admission")
		graphID = fs.String("graph-id", "", "store: reuse this stored-graph id on the -upload server instead of uploading")
		jsonOut = fs.Bool("json", false, "anneal/memetic/store: emit one machine-readable JSON object instead of text")
	)
	if err := fs.Parse(os.Args[2:]); err != nil {
		fatal(err)
	}

	// Hot-path work (solver loops, refinement sweeps) runs inside this
	// process, so profiling a real workload needs no ad-hoc patches: any
	// subcommand accepts -cpuprofile/-memprofile. Profiles are flushed when
	// the command completes; a run aborted by fatal() writes none.
	// The heap-profile defer is registered first so it runs last (LIFO),
	// after StopCPUProfile — its runtime.GC and file write must not bleed
	// into the tail of the CPU profile. It reports failures without
	// os.Exit so one profile's error cannot discard the other.
	if *memprof != "" {
		defer func() {
			f, err := os.Create(*memprof)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ffbench: memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap state
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "ffbench: memprofile:", err)
			}
		}()
	}
	if *cpuprof != "" {
		f, err := os.Create(*cpuprof)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	// The anneal hot-loop probe runs on the BENCH_anneal.json acceptance
	// instance, not the airspace graph, so its steps/second is directly
	// comparable to the committed baseline; -cpuprofile then shows whether
	// the proposal loop is flat (no frame outside scoring above 20%).
	if cmd == "anneal" {
		runAnnealSteps(*k, *seed, *budget, *jsonOut)
		return
	}

	// The store probe runs on the BENCH_store.json instance so its admission
	// ratios are directly comparable to the committed baseline.
	if cmd == "store" {
		runStoreBench(*seed, *upload, *graphID, *jsonOut)
		return
	}

	// The memetic probe runs on the BENCH_memetic.json acceptance instance so
	// its flat/multilevel/memetic Mcut figures are directly comparable to the
	// committed baseline.
	if cmd == "memetic" {
		parallelism := *par
		if parallelism == 0 {
			parallelism = runtime.GOMAXPROCS(0)
		}
		runMemeticBench(*k, *seed, *budget, parallelism, *jsonOut)
		return
	}
	if *jsonOut {
		fatal(fmt.Errorf("%s does not support -json (anneal, memetic, and store do)", cmd))
	}

	g, err := instance(*scale, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("instance: %d sectors, %d flow edges, total flow weight %.0f; k = %d, seed = %d\n\n",
		g.NumVertices(), g.NumEdges(), g.TotalEdgeWeight(), *k, *seed)

	parallelism := *par
	if parallelism == 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	switch cmd {
	case "table1":
		b := *budget
		if b == 0 {
			b = 10 * time.Second
		}
		rows := experiments.Table1(g, experiments.Table1Options{
			K: *k, Seed: *seed, MetaBudget: b, Parallelism: parallelism,
			Multilevel: *multi, CoarsenTo: *coarse,
		})
		fmt.Println("Table 1 — comparisons between algorithms (metaheuristic budget", b, "per objective)")
		fmt.Print(experiments.FormatTable1(rows))
	case "figure1":
		rejectMultilevel(cmd, *multi, *coarse)
		b := *budget
		if b == 0 {
			b = 30 * time.Second
		}
		res, err := experiments.Figure1(g, experiments.Figure1Options{K: *k, Seed: *seed, Budget: b})
		if err != nil {
			fatal(err)
		}
		fmt.Println("Figure 1 — best Mcut over time (budget", b, "per metaheuristic)")
		fmt.Print(experiments.FormatFigure1(res))
	case "ablation":
		rejectMultilevel(cmd, *multi, *coarse)
		b := *budget
		if b == 0 {
			b = 5 * time.Second
		}
		runAblation(g, *k, *seed, b)
	case "variance":
		b := *budget
		if b == 0 {
			b = 2 * time.Second
		}
		// Keep Workers x Parallelism near the core count, or contention
		// corrupts the per-run timing and budget-bound quality numbers.
		outer := runtime.GOMAXPROCS(0) / parallelism
		if outer < 1 {
			outer = 1
		}
		rows, err := experiments.RunVariance(g, experiments.VarianceOptions{
			K: *k, Budget: b, Objective: objective.MCut, Parallelism: parallelism, Workers: outer,
			Multilevel: *multi, CoarsenTo: *coarse,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Println("Run-to-run variance over 8 seeds (Mcut, budget", b, "per run, parallel):")
		fmt.Print(experiments.FormatVariance(rows))
	default:
		usage()
	}
}

func instance(scale string, seed int64) (*graph.Graph, error) {
	switch scale {
	case "paper":
		spec := airspace.Default()
		spec.Seed = seed
		g, _, err := airspace.Generate(spec)
		return g, err
	case "small":
		g, _, err := airspace.Generate(airspace.Spec{
			Sectors: 180, Edges: 640, Hubs: 12, Flights: 8000, Seed: seed,
		})
		return g, err
	}
	return nil, fmt.Errorf("unknown scale %q", scale)
}

// emitJSON marshals one result object to stdout — the -json contract shared
// by the anneal/memetic/store probes, so CI and tuning scripts can consume
// the figures without scraping the human-readable tables.
func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

// runAnnealSteps times the simulated-annealing proposal loop end to end on
// the 10k-vertex random-geometric graph the committed BENCH_anneal.json is
// measured on (percolation init and auto-temperature probe included).
func runAnnealSteps(k int, seed int64, budget time.Duration, jsonOut bool) {
	g := graph.RandomGeometric(10_000, 0.02, 1)
	if !jsonOut {
		fmt.Printf("instance: RandomGeometric(10000, 0.02, seed 1): %d vertices, %d edges; k = %d, seed = %d\n",
			g.NumVertices(), g.NumEdges(), k, seed)
	}
	if budget == 0 {
		budget = 5 * time.Second // freezing restarts: sustained hot/cold cycles
	}
	steps := 200_000_000
	start := time.Now()
	res, err := anneal.Partition(g, k, anneal.Options{Seed: seed, MaxSteps: steps, Budget: budget})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start).Seconds()
	if jsonOut {
		emitJSON(struct {
			Graph    string  `json:"graph"`
			Vertices int     `json:"vertices"`
			Edges    int     `json:"edges"`
			K        int     `json:"k"`
			Seed     int64   `json:"seed"`
			BudgetS  float64 `json:"budget_s"`
			Steps    int     `json:"steps"`
			ElapsedS float64 `json:"elapsed_s"`
			StepsPS  float64 `json:"steps_per_s"`
			Mcut     float64 `json:"mcut"`
		}{
			Graph:    "RandomGeometric(10000, 0.02, seed 1)",
			Vertices: g.NumVertices(), Edges: g.NumEdges(),
			K: k, Seed: seed, BudgetS: budget.Seconds(),
			Steps: res.Steps, ElapsedS: elapsed,
			StepsPS: float64(res.Steps) / elapsed, Mcut: res.Energy,
		})
		return
	}
	fmt.Printf("anneal: %d steps in %.2fs = %.0f steps/s; best Mcut %.6f\n",
		res.Steps, elapsed, float64(res.Steps)/elapsed, res.Energy)
}

// runMemeticBench compares the three genetic configurations of the committed
// BENCH_memetic.json on its acceptance instance: flat crossover, the GA
// inside a multilevel V-cycle, and memetic cut-protecting V-cycle
// recombination — all at the same wall-clock budget and portfolio width.
func runMemeticBench(k int, seed int64, budget time.Duration, parallelism int, jsonOut bool) {
	g := graph.RandomGeometric(10_000, 0.02, 1)
	if budget == 0 {
		budget = 4 * time.Second
	}
	if !jsonOut {
		fmt.Printf("instance: RandomGeometric(10000, 0.02, seed 1): %d vertices, %d edges; k = %d, seed = %d, budget %s, width %d\n\n",
			g.NumVertices(), g.NumEdges(), k, seed, budget, parallelism)
	}
	spec, err := experiments.MethodByName("Genetic algorithm")
	if err != nil {
		fatal(err)
	}
	base := experiments.RunConfig{
		Objective: objective.MCut, Budget: budget, MaxSteps: 1 << 30,
		Seed: seed, Parallelism: parallelism,
	}
	variants := []struct {
		name string
		mod  func(*experiments.RunConfig)
	}{
		{"flat crossover", func(*experiments.RunConfig) {}},
		{"multilevel V-cycle GA", func(c *experiments.RunConfig) { c.Multilevel = true }},
		{"memetic recombination", func(c *experiments.RunConfig) { c.MemeticCrossover = true }},
	}
	type variantResult struct {
		Name     string  `json:"name"`
		Mcut     float64 `json:"mcut,omitempty"`
		ElapsedS float64 `json:"elapsed_s,omitempty"`
		Error    string  `json:"error,omitempty"`
	}
	var results []variantResult
	if !jsonOut {
		fmt.Printf("%-24s %10s %10s\n", "genetic variant", "Mcut", "elapsed")
	}
	for _, v := range variants {
		cfg := base
		v.mod(&cfg)
		start := time.Now()
		res, err := spec.Run(context.Background(), g, k, cfg)
		if err != nil {
			if jsonOut {
				results = append(results, variantResult{Name: v.name, Error: err.Error()})
			} else {
				fmt.Printf("%-24s ERROR: %v\n", v.name, err)
			}
			continue
		}
		elapsed := time.Since(start)
		if jsonOut {
			results = append(results, variantResult{
				Name: v.name, Mcut: objective.MCut.Evaluate(res.P), ElapsedS: elapsed.Seconds(),
			})
		} else {
			fmt.Printf("%-24s %10.4f %10s\n", v.name, objective.MCut.Evaluate(res.P), elapsed.Round(time.Millisecond))
		}
	}
	if jsonOut {
		emitJSON(struct {
			Graph       string          `json:"graph"`
			Vertices    int             `json:"vertices"`
			Edges       int             `json:"edges"`
			K           int             `json:"k"`
			Seed        int64           `json:"seed"`
			BudgetS     float64         `json:"budget_s"`
			Parallelism int             `json:"parallelism"`
			Variants    []variantResult `json:"variants"`
		}{
			Graph:    "RandomGeometric(10000, 0.02, seed 1)",
			Vertices: g.NumVertices(), Edges: g.NumEdges(),
			K: k, Seed: seed, BudgetS: budget.Seconds(),
			Parallelism: parallelism, Variants: results,
		})
	}
}

// runAblation quantifies the fusion-fission design choices DESIGN.md calls
// out: percolation fission vs random splits, law learning vs uniform laws,
// and the value of letting the part count drift.
func runAblation(g *graph.Graph, k int, seed int64, budget time.Duration) {
	type variant struct {
		name string
		opt  core.Options
	}
	base := core.Options{Objective: objective.MCut, Budget: budget, MaxSteps: 1 << 30, Seed: seed}
	vs := []variant{
		{"full fusion-fission", base},
		{"random splits (no percolation)", withf(base, func(o *core.Options) { o.DisablePercolationFission = true })},
		{"uniform laws (no learning)", withf(base, func(o *core.Options) { o.DisableLawLearning = true })},
	}
	fmt.Printf("Ablation — Mcut at k=%d, budget %s per variant\n\n", k, budget)
	fmt.Printf("%-34s %10s %8s\n", "variant", "Mcut", "steps")
	for _, v := range vs {
		res, err := core.Partition(g, k, v.opt)
		if err != nil {
			fmt.Printf("%-34s ERROR: %v\n", v.name, err)
			continue
		}
		fmt.Printf("%-34s %10.2f %8d\n", v.name, res.Energy, res.Steps)
	}

	// Part-count drift: the paper reports FF returns good solutions from
	// 27 to 38 parts around the 32-part target.
	res, err := core.Partition(g, k, base)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nPart-count drift around the target (best Mcut per k'):\n")
	fmt.Printf("%6s %10s\n", "k'", "Mcut")
	for kk := k - 6; kk <= k+6; kk++ {
		if m, ok := res.BestPerK[kk]; ok {
			fmt.Printf("%6d %10.2f\n", kk, m)
		}
	}
}

func withf(o core.Options, f func(*core.Options)) core.Options {
	f(&o)
	return o
}

// rejectMultilevel refuses -multilevel/-coarsen-to on subcommands that do
// not thread them through, rather than silently printing flat-search
// numbers under a V-cycle label.
func rejectMultilevel(cmd string, multi bool, coarse int) {
	if multi || coarse != 0 {
		fatal(fmt.Errorf("%s does not support -multilevel/-coarsen-to (use table1 or variance)", cmd))
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: ffbench <table1|figure1|ablation|variance|anneal|store|memetic> [flags]
  table1   reproduce the paper's Table 1 (17 methods x 3 objectives)
  figure1  reproduce the paper's Figure 1 (anytime Mcut traces)
  ablation quantify fusion-fission design choices
  variance metaheuristic spread over 8 seeds (parallel runs)
  anneal   time the SA proposal loop on the BENCH_anneal.json instance
  store    time graph admission (METIS parse vs binary CSR vs graph store)
  memetic  compare flat / multilevel / memetic GA on the BENCH_memetic.json instance
flags: -k N -seed N -budget DUR -scale paper|small -parallelism N
       -multilevel -coarsen-to N   (table1 and variance only)
       -upload URL -graph-id ID    (store only: remote admission timing)
       -json                       (anneal, memetic, store: machine-readable output)
       -cpuprofile FILE -memprofile FILE   (pprof profiles of the run)`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ffbench:", err)
	os.Exit(1)
}
