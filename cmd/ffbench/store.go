package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	ff "repro"
	"repro/internal/graph"
	"repro/internal/store"
)

// runStoreBench times graph admission on the BENCH_store.json instance: the
// inline path (METIS text parse + CSR build) against the stored-graph path
// (binary decode, and the store's memory tier the server actually serves
// from). With -upload it also exercises a live ffserve end to end: upload
// the instance, then compare inline submission latency against
// submission by stored id.
func runStoreBench(seed int64, uploadURL, graphID string, jsonOut bool) {
	g := graph.RandomGeometric(10_000, 0.02, 1)
	if !jsonOut {
		fmt.Printf("instance: RandomGeometric(10000, 0.02, seed 1): %d vertices, %d edges\n\n",
			g.NumVertices(), g.NumEdges())
	}

	var metis strings.Builder
	if err := ff.WriteMETIS(&metis, g); err != nil {
		fatal(err)
	}
	bin := graph.EncodeBinary(g)
	if !jsonOut {
		fmt.Printf("encodings:  METIS text %d bytes, binary CSR %d bytes\n", metis.Len(), len(bin))
	}

	const reps = 7
	parse := bestOf(reps, func() {
		if _, err := ff.ReadMETIS(strings.NewReader(metis.String())); err != nil {
			fatal(err)
		}
	})
	decode := bestOf(reps, func() {
		if _, err := graph.DecodeBinary(bin); err != nil {
			fatal(err)
		}
	})

	dir, err := os.MkdirTemp("", "ffbench-store-*")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, 0)
	if err != nil {
		fatal(err)
	}
	id, _, err := st.Put(g)
	if err != nil {
		fatal(err)
	}
	memGet := bestOf(reps, func() {
		if _, ok := st.Get(id); !ok {
			fatal(fmt.Errorf("stored graph vanished"))
		}
	})
	diskOpen := bestOf(reps, func() {
		if _, err := graph.OpenBinary(filepath.Join(dir, id+".ffg")); err != nil {
			fatal(err)
		}
	})

	var remote *remoteStoreResult
	if uploadURL != "" {
		remote = remoteStoreBench(uploadURL, graphID, g, metis.String(), seed, jsonOut)
	}

	if jsonOut {
		emitJSON(struct {
			Graph         string             `json:"graph"`
			Vertices      int                `json:"vertices"`
			Edges         int                `json:"edges"`
			MetisBytes    int                `json:"metis_bytes"`
			BinaryBytes   int                `json:"binary_bytes"`
			ParseS        float64            `json:"metis_parse_s"`
			DecodeS       float64            `json:"binary_decode_s"`
			DiskOpenS     float64            `json:"disk_reload_s"`
			MemGetS       float64            `json:"store_memory_hit_s"`
			DecodeSpeedup float64            `json:"binary_decode_speedup"`
			DiskSpeedup   float64            `json:"disk_reload_speedup"`
			MemSpeedup    float64            `json:"store_memory_hit_speedup"`
			StoredID      string             `json:"stored_id"`
			Remote        *remoteStoreResult `json:"remote,omitempty"`
		}{
			Graph:    "RandomGeometric(10000, 0.02, seed 1)",
			Vertices: g.NumVertices(), Edges: g.NumEdges(),
			MetisBytes: metis.Len(), BinaryBytes: len(bin),
			ParseS: parse.Seconds(), DecodeS: decode.Seconds(),
			DiskOpenS: diskOpen.Seconds(), MemGetS: memGet.Seconds(),
			DecodeSpeedup: ratio(parse, decode),
			DiskSpeedup:   ratio(parse, diskOpen),
			MemSpeedup:    ratio(parse, memGet),
			StoredID:      id, Remote: remote,
		})
		return
	}

	fmt.Printf("admission:  METIS parse+build   %12s\n", parse)
	fmt.Printf("            binary decode       %12s   (%.1fx faster)\n", decode, ratio(parse, decode))
	fmt.Printf("            disk reload         %12s   (%.1fx faster)\n", diskOpen, ratio(parse, diskOpen))
	fmt.Printf("            store memory hit    %12s   (%.0fx faster)\n", memGet, ratio(parse, memGet))
	fmt.Printf("stored id:  %s\n", id)
	if remote != nil {
		fmt.Printf("remote:     inline METIS job    %12s\n", time.Duration(remote.InlineS*float64(time.Second)))
		fmt.Printf("            stored-id job       %12s   (%.1fx faster)\n",
			time.Duration(remote.ByIDS*float64(time.Second)), remote.Speedup)
	}
}

// bestOf runs f reps times and returns the fastest wall-clock duration.
func bestOf(reps int, f func()) time.Duration {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

func ratio(slow, fast time.Duration) float64 {
	if fast <= 0 {
		return 0
	}
	return float64(slow) / float64(fast)
}

// remoteStoreResult carries the live-ffserve admission comparison back to
// runStoreBench, which owns both output formats.
type remoteStoreResult struct {
	URL     string  `json:"url"`
	ID      string  `json:"id"`
	InlineS float64 `json:"inline_metis_job_s"`
	ByIDS   float64 `json:"stored_id_job_s"`
	Speedup float64 `json:"stored_id_speedup"`
}

// remoteStoreBench uploads the instance to a running ffserve and compares
// submit-to-result latency for inline METIS vs stored-graph-id submission
// of a cheap deterministic job (the solver cost is identical, so the delta
// is pure admission).
func remoteStoreBench(url, graphID string, g *graph.Graph, metis string, seed int64, jsonOut bool) *remoteStoreResult {
	base := strings.TrimRight(url, "/")
	id := graphID
	if id == "" {
		req, err := http.NewRequest(http.MethodPut, base+"/v1/graphs", bytes.NewReader(graph.EncodeBinary(g)))
		if err != nil {
			fatal(err)
		}
		req.Header.Set("Content-Type", "application/octet-stream")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			fatal(err)
		}
		var up struct {
			ID    string `json:"id"`
			Error string `json:"error"`
		}
		err = json.NewDecoder(resp.Body).Decode(&up)
		resp.Body.Close()
		if err != nil || up.Error != "" || up.ID == "" {
			fatal(fmt.Errorf("upload to %s failed: %v %s", base, err, up.Error))
		}
		id = up.ID
		if !jsonOut {
			fmt.Printf("\nuploaded to %s as %s\n", base, id)
		}
	}

	submit := func(body map[string]any) time.Duration {
		return bestOf(5, func() {
			buf, err := json.Marshal(body)
			if err != nil {
				fatal(err)
			}
			resp, err := http.Post(base+"/v1/partition", "application/json", bytes.NewReader(buf))
			if err != nil {
				fatal(err)
			}
			var out struct {
				Error string `json:"error"`
			}
			err = json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			if err != nil || out.Error != "" {
				fatal(fmt.Errorf("remote job failed: %v %s", err, out.Error))
			}
		})
	}
	// linear-bi is deterministic and near-free, so the measured latency is
	// transport + admission, not search.
	opts := map[string]any{"k": 2, "method": "linear-bi", "seed": seed, "no_cache": true}
	inline := map[string]any{"graph": map[string]any{"metis": metis}}
	byID := map[string]any{"graph": map[string]any{"id": id}}
	for k, v := range opts {
		inline[k] = v
		byID[k] = v
	}
	tInline := submit(inline)
	tByID := submit(byID)
	return &remoteStoreResult{
		URL: base, ID: id,
		InlineS: tInline.Seconds(), ByIDS: tByID.Seconds(),
		Speedup: ratio(tInline, tByID),
	}
}
