// Air traffic control: the paper's motivating application (section 5).
//
// The FABOP project re-draws the functional airspace blocks of the European
// "core area" from aircraft flows alone, ignoring national borders. This
// example generates the synthetic 762-sector core-area graph, cuts it into
// 32 blocks with fusion-fission and with the multilevel method, and reports
// the Mcut quality plus how the resulting blocks relate to today's borders:
// flows inside blocks mean easy controller-to-controller coordination,
// flows between blocks mean costly inter-unit handovers.
//
//	go run ./examples/airtraffic [-sectors 762] [-k 32] [-budget 5s]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	ff "repro"
	"repro/internal/inertial"
	"repro/internal/objective"
)

func main() {
	var (
		sectors = flag.Int("sectors", 762, "number of ATC sectors")
		k       = flag.Int("k", 32, "number of functional airspace blocks")
		budget  = flag.Duration("budget", 5*time.Second, "fusion-fission time budget")
		seed    = flag.Int64("seed", 2006, "generator and solver seed")
	)
	flag.Parse()

	spec := ff.DefaultAirspace()
	spec.Seed = *seed
	if *sectors != 762 {
		// Rescale the instance proportionally.
		spec.Sectors = *sectors
		spec.Edges = *sectors * 3165 / 762
		spec.Flights = *sectors * 40000 / 762
	}
	g, meta, err := ff.GenerateAirspace(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("European core area: %d sectors, %d flow edges, %d hub airports\n",
		g.NumVertices(), g.NumEdges(), len(meta.HubSectors))

	ffRes, err := ff.Partition(g, ff.Options{K: *k, Method: "fusion-fission", Budget: *budget, Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	mlRes, err := ff.Partition(g, ff.Options{K: *k, Method: "multilevel-bi", Seed: *seed})
	if err != nil {
		log.Fatal(err)
	}
	// Inertial partitioning exploits the sector geometry directly — the
	// classical geometric baseline for airspace-like meshes.
	inP, err := inertial.Partition(g, meta.X, meta.Y, *k, inertial.Options{KL: true})
	if err != nil {
		log.Fatal(err)
	}
	inCut, inNcut, inMcut := objective.EvaluateAll(inP)

	fmt.Printf("\n%-16s %10s %10s %10s %12s\n", "method", "Mcut", "Ncut", "Cut/1000", "elapsed")
	for _, r := range []*ff.Result{ffRes, mlRes} {
		fmt.Printf("%-16s %10.2f %10.2f %10.1f %12s\n",
			r.Method, r.Mcut, r.Ncut, r.Cut/1000, r.Elapsed.Round(time.Millisecond))
	}
	fmt.Printf("%-16s %10.2f %10.2f %10.1f %12s\n", "inertial-kl", inMcut, inNcut, inCut/1000, "-")

	// How often do the computed blocks cross today's national borders?
	// FABOP's whole point is that flow-optimal blocks ignore borders, so a
	// substantial fraction of blocks should span several countries.
	fmt.Printf("\nfusion-fission blocks vs national borders:\n")
	blocks := make(map[int32]map[int]int) // block -> country -> sectors
	for v, p := range ffRes.Parts {
		if blocks[p] == nil {
			blocks[p] = make(map[int]int)
		}
		blocks[p][meta.Country[v]]++
	}
	multiCountry := 0
	for _, mix := range blocks {
		if len(mix) > 1 {
			multiCountry++
		}
	}
	fmt.Printf("  %d of %d blocks span more than one country\n", multiCountry, len(blocks))
	shown := 0
	for p, mix := range blocks {
		if len(mix) > 1 && shown < 5 {
			fmt.Printf("  block %2d: ", p)
			for ci, cnt := range mix {
				fmt.Printf("%s(%d) ", meta.CountryNames[ci], cnt)
			}
			fmt.Println()
			shown++
		}
	}
	fmt.Println("\n(the paper's conclusion: metaheuristics — fusion-fission first —")
	fmt.Println(" beat the specialized tools on Mcut, the criterion that matches")
	fmt.Println(" the controller-coordination objective)")
}
