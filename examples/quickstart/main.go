// Quickstart: build a small weighted graph, partition it with
// fusion-fission, and inspect the result under all three objectives.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	ff "repro"
)

func main() {
	// A tiny "two communities" graph: two weighted triangles joined by a
	// light bridge. The natural 2-partition severs the bridge.
	b := ff.NewBuilder(6)
	b.AddEdge(0, 1, 5)
	b.AddEdge(1, 2, 5)
	b.AddEdge(2, 0, 5)
	b.AddEdge(3, 4, 5)
	b.AddEdge(4, 5, 5)
	b.AddEdge(5, 3, 5)
	b.AddEdge(2, 3, 1) // the bridge
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	res, err := ff.Partition(g, ff.Options{
		K:      2,
		Method: "fusion-fission",
		Seed:   42,
		Budget: 200 * time.Millisecond, // a 6-vertex graph needs no more
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("vertex -> part:", res.Parts)
	fmt.Printf("Cut  = %.1f (bridge weight 1, counted from both sides)\n", res.Cut)
	fmt.Printf("Ncut = %.4f\n", res.Ncut)
	fmt.Printf("Mcut = %.4f\n", res.Mcut)
	fmt.Printf("solved in %s\n", res.Elapsed)

	// The same call with any other method of the paper's Table 1:
	for _, method := range []string{"spectral-lanc-bi", "multilevel-bi", "percolation"} {
		r, err := ff.Partition(g, ff.Options{K: 2, Method: method, Seed: 42})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s Cut=%.1f Mcut=%.4f\n", method, r.Cut, r.Mcut)
	}
}
