// Mesh partitioning for parallel computing: the classical application the
// paper's introduction opens with — dividing a 2D mesh (here an airfoil-like
// graded mesh) over processors so every processor gets equal work and
// inter-processor communication (edge cut) is minimal.
//
// The example compares multilevel (the production choice: fast, cut-driven)
// with fusion-fission (slower, better on relative objectives), reporting
// edge cut, imbalance and the maximum per-processor communication volume.
//
//	go run ./examples/mesh [-k 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"time"

	ff "repro"
)

// buildAirfoilMesh creates a graded 2D mesh: a rows x cols grid in polar
// coordinates around a wing-shaped hole, with cells shrinking toward the
// surface (where a flow solver needs resolution). Vertices are mesh cells,
// edges connect face-adjacent cells; weights are uniform, as in a typical
// finite-volume communication graph.
func buildAirfoilMesh(rings, around int) (*ff.Graph, error) {
	n := rings * around
	b := ff.NewBuilder(n)
	id := func(r, a int) int { return r*around + a }
	for r := 0; r < rings; r++ {
		for a := 0; a < around; a++ {
			// Ring neighbor (wrap around the airfoil).
			b.AddEdge(id(r, a), id(r, (a+1)%around), 1)
			// Radial neighbor.
			if r+1 < rings {
				b.AddEdge(id(r, a), id(r+1, a), 1)
			}
		}
	}
	// Work weights: near-wall cells are in denser regions and cost more
	// per step (graded mesh), modelled as a weight gradient.
	for r := 0; r < rings; r++ {
		w := 1 + 2*math.Exp(-float64(r)/6)
		for a := 0; a < around; a++ {
			b.SetVertexWeight(id(r, a), w)
		}
	}
	return b.Build()
}

func main() {
	var (
		k    = flag.Int("k", 8, "number of processors")
		seed = flag.Int64("seed", 7, "solver seed")
	)
	flag.Parse()

	g, err := buildAirfoilMesh(24, 96)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("airfoil mesh: %d cells, %d faces, total work %.0f\n",
		g.NumVertices(), g.NumEdges(), g.TotalVertexWeight())

	for _, method := range []string{"multilevel-bi", "spectral-lanc-bi-kl", "fusion-fission"} {
		res, err := ff.Partition(g, ff.Options{
			K: *k, Method: method, Objective: "cut",
			Seed: *seed, Budget: 3 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s:\n", method)
		fmt.Printf("  edge cut (communication):  %.0f faces\n", res.Cut/2)
		fmt.Printf("  load imbalance:            %.1f%%\n", res.Imbalance*100)
		fmt.Printf("  max processor comm volume: %.0f\n", maxCommVolume(g, res.Parts, *k))
		fmt.Printf("  elapsed:                   %s\n", res.Elapsed.Round(time.Millisecond))
	}
}

// maxCommVolume returns the largest per-part boundary weight — the worst
// single processor's communication load.
func maxCommVolume(g *ff.Graph, parts []int32, k int) float64 {
	vol := make([]float64, k)
	g.ForEachEdge(func(u, v int, w float64) {
		if parts[u] != parts[v] {
			vol[parts[u]] += w
			vol[parts[v]] += w
		}
	})
	m := 0.0
	for _, x := range vol {
		if x > m {
			m = x
		}
	}
	return m
}
