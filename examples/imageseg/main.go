// Image segmentation: the Shi-Malik normalized-cut application cited by the
// paper (section 1, [25]). A synthetic grayscale image — two bright blobs on
// a graded background — becomes a grid graph whose edge weights are pixel
// similarities; partitioning under Ncut separates the blobs.
//
// Spectral partitioning is the classical tool here; the example shows the
// metaheuristic matching or beating it on the Ncut objective, the paper's
// point about criterion-adaptive methods.
//
//	go run ./examples/imageseg
package main

import (
	"fmt"
	"log"
	"math"
	"time"

	ff "repro"
)

const (
	rows = 28
	cols = 28
)

// brightness builds the synthetic image: two gaussian blobs on a ramp.
func brightness(r, c int) float64 {
	blob := func(cr, cc, s float64) float64 {
		dr, dc := float64(r)-cr, float64(c)-cc
		return math.Exp(-(dr*dr + dc*dc) / (2 * s * s))
	}
	return 0.15*float64(c)/cols + blob(8, 8, 3.5) + blob(19, 20, 4)
}

func main() {
	// Pixel similarity: strong for similar brightness, weak across edges.
	img := make([]float64, rows*cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			img[r*cols+c] = brightness(r, c)
		}
	}
	b := ff.NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				b.AddEdge(v, v+1, similarity(img[v], img[v+1]))
			}
			if r+1 < rows {
				b.AddEdge(v, v+cols, similarity(img[v], img[v+cols]))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("image graph: %dx%d pixels, %d similarity edges\n\n", rows, cols, g.NumEdges())

	var ffParts []int32
	for _, method := range []string{"spectral-lanc-bi-kl", "fusion-fission", "annealing"} {
		res, err := ff.Partition(g, ff.Options{
			K: 3, Method: method, Objective: "ncut",
			Seed: 11, Budget: 2 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s Ncut = %.4f  (%s)\n", method, res.Ncut, res.Elapsed.Round(time.Millisecond))
		if method == "fusion-fission" {
			ffParts = res.Parts
		}
	}

	// ASCII rendering of the fusion-fission segmentation.
	fmt.Println("\nfusion-fission segmentation (3 segments):")
	glyphs := []byte(".#o+*")
	for r := 0; r < rows; r++ {
		line := make([]byte, cols)
		for c := 0; c < cols; c++ {
			line[c] = glyphs[int(ffParts[r*cols+c])%len(glyphs)]
		}
		fmt.Println(string(line))
	}
}

// similarity maps a brightness difference to an edge weight in (0, 10].
func similarity(a, b float64) float64 {
	d := a - b
	return 10*math.Exp(-d*d/0.02) + 0.01
}
