// Multilevel: accelerate a metaheuristic on a large graph with the
// V-cycle, alone and composed with a parallel portfolio, and compare
// against the flat search at the same budget.
//
//	go run ./examples/multilevel
package main

import (
	"fmt"
	"log"
	"time"

	ff "repro"
)

func main() {
	// A large instance: the synthetic airspace workload scaled to ~8000
	// sectors — big enough that a flat metaheuristic spends its whole
	// budget shuffling single vertices.
	spec := ff.DefaultAirspace()
	spec.Sectors, spec.Edges, spec.Flights = 8000, 32000, 120000
	g, _, err := ff.GenerateAirspace(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	base := ff.Options{
		K:      32,
		Method: "fusion-fission",
		Seed:   1,
		Budget: 2 * time.Second,
	}

	// 1. Flat search: the paper's algorithm directly on the input graph.
	flat := run(g, base, "flat")

	// 2. Multilevel V-cycle: coarsen, search the coarsest graph, refine on
	// uncoarsening. Same method, same budget.
	ml := base
	ml.Multilevel = true
	vres := run(g, ml, "multilevel")
	if h := vres.Hierarchy; h != nil {
		fmt.Printf("  hierarchy: %d levels %v, coarsest %d vertices / %d edges\n",
			h.Levels, h.VertexCounts, h.CoarsestVertices, h.CoarsestEdges)
	}

	// 3. Multilevel + portfolio: every worker V-cycles the shared
	// hierarchy from its own seed; incumbents are exchanged at level
	// boundaries. (Widths beyond the core count oversubscribe.)
	mlp := ml
	mlp.Parallelism = 2
	pres := run(g, mlp, "multilevel + portfolio(2)")

	fmt.Printf("\nMcut: flat %.4f -> multilevel %.4f -> multilevel+portfolio %.4f\n",
		flat.Mcut, vres.Mcut, pres.Mcut)
}

func run(g *ff.Graph, opt ff.Options, label string) *ff.Result {
	res, err := ff.Partition(g, opt)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-26s Mcut %.4f  (%d parts, %d worker(s), %s)\n",
		label+":", res.Mcut, res.NumParts, res.Workers, res.Elapsed.Round(time.Millisecond))
	return res
}
