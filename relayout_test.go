package fusionfission

import (
	"math"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/order"
	"repro/internal/partition"
)

// TestRelayoutMatchesManualRelabel pins Options.Relayout end to end: the
// facade's relayout run must equal relabeling the graph by hand, solving the
// relabeled graph without the flag, and mapping the assignment back through
// the inverse permutation — same Parts, bit-equal objectives. Step-capped
// serial runs are deterministic, so this is exact equality, not similarity.
func TestRelayoutMatchesManualRelabel(t *testing.T) {
	g := graph.RandomGeometric(600, 0.08, 7)
	opt := Options{
		K: 8, Method: "annealing", Seed: 11,
		Budget: time.Hour, MaxSteps: 4000,
	}

	opt.Relayout = true
	got, err := Partition(g, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Relayout {
		t.Fatal("Result.Relayout not reported")
	}

	perm := order.Locality(g)
	rg, err := graph.Relabel(g, perm)
	if err != nil {
		t.Fatal(err)
	}
	opt.Relayout = false
	manual, err := Partition(rg, opt)
	if err != nil {
		t.Fatal(err)
	}
	inv := order.Inverse(perm)
	want := make([]int32, len(manual.Parts))
	for nv, a := range manual.Parts {
		want[inv[nv]] = a
	}
	for v := range want {
		if got.Parts[v] != want[v] {
			t.Fatalf("vertex %d: facade relayout assigned %d, manual relabel %d", v, got.Parts[v], want[v])
		}
	}
	if math.Float64bits(got.Mcut) != math.Float64bits(manual.Mcut) {
		t.Fatalf("Mcut %v via facade relayout vs %v manual", got.Mcut, manual.Mcut)
	}

	// The returned Parts must be a valid assignment of the *caller's* graph
	// whose statistics reproduce the reported objectives.
	p, err := partition.FromAssignment(g, got.Parts, opt.K)
	if err != nil {
		t.Fatal(err)
	}
	if m := objective.MCut.Evaluate(p); math.Float64bits(m) != math.Float64bits(got.Mcut) {
		t.Fatalf("reported Mcut %v does not match Parts re-evaluated on the input graph (%v)", got.Mcut, m)
	}
}

// TestRelayoutWarmStartRoundTrip: a warm seed given in caller numbering is
// permuted into the relabeled solve and the floor guarantee still holds on
// the way back out.
func TestRelayoutWarmStartRoundTrip(t *testing.T) {
	g := graph.RandomGeometric(400, 0.09, 3)
	cold, err := Partition(g, Options{K: 6, Method: "annealing", Seed: 5, Budget: time.Hour, MaxSteps: 6000})
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Partition(g, Options{
		K: 6, Method: "annealing", Seed: 9,
		Budget: time.Hour, MaxSteps: 50,
		WarmStart: cold.Parts, Relayout: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !warm.WarmStart || !warm.Relayout {
		t.Fatalf("flags not reported: warm=%v relayout=%v", warm.WarmStart, warm.Relayout)
	}
	// Floor guarantee across the permutation boundary: never worse than the
	// repaired caller-numbering seed.
	if warm.Mcut > cold.Mcut+1e-9 {
		t.Fatalf("warm relayout run (%v) worse than its seed (%v)", warm.Mcut, cold.Mcut)
	}
	if _, err := partition.FromAssignment(g, warm.Parts, 6); err != nil {
		t.Fatalf("parts not in caller numbering: %v", err)
	}
}
