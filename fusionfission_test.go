package fusionfission

import (
	"bytes"
	"testing"
	"time"
)

func smallGraph(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(8)
	// Two squares joined by one edge.
	edges := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {4, 5}, {5, 6}, {6, 7}, {7, 4}, {0, 4}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1], 1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestFacadeEveryMethodRuns(t *testing.T) {
	g := smallGraph(t)
	for _, id := range Methods() {
		res, err := Partition(g, Options{
			K: 2, Method: id, Seed: 1,
			Budget: 80 * time.Millisecond, MaxSteps: 3000,
		})
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if res.NumParts != 2 {
			t.Errorf("%s: NumParts = %d", id, res.NumParts)
		}
		if len(res.Parts) != 8 {
			t.Errorf("%s: Parts length %d", id, len(res.Parts))
		}
		for _, p := range res.Parts {
			if p < 0 || p >= 2 {
				t.Errorf("%s: part id %d out of range", id, p)
			}
		}
		if res.Cut <= 0 || res.Mcut <= 0 {
			t.Errorf("%s: degenerate objectives %+v", id, res)
		}
		if res.Method != id {
			t.Errorf("%s: echoed method %q", id, res.Method)
		}
	}
}

func TestFacadeOptimalSquaresSplit(t *testing.T) {
	g := smallGraph(t)
	res, err := Partition(g, Options{K: 2, Method: "fusion-fission", Seed: 2, MaxSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal: cut the single bridge; paper convention counts it twice.
	if res.Cut != 2 {
		t.Fatalf("Cut = %g, want 2", res.Cut)
	}
}

func TestFacadeDefaults(t *testing.T) {
	g := smallGraph(t)
	res, err := Partition(g, Options{K: 2, Seed: 1, MaxSteps: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "fusion-fission" {
		t.Fatalf("default method = %q", res.Method)
	}
}

func TestFacadeErrors(t *testing.T) {
	g := smallGraph(t)
	if _, err := Partition(g, Options{K: 2, Method: "does-not-exist"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := Partition(g, Options{K: 2, Objective: "modularity"}); err == nil {
		t.Fatal("unknown objective accepted")
	}
	if _, err := Partition(g, Options{K: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFacadeKValidation(t *testing.T) {
	g := smallGraph(t) // 8 vertices
	cases := []struct {
		name    string
		k       int
		method  string
		wantErr bool
	}{
		{"negative", -3, "linear-bi", true},
		{"zero", 0, "linear-bi", true},
		{"zero default method", 0, "", true},
		{"one classical", 1, "linear-bi", false},
		{"n classical", 8, "linear-bi", false},
		{"n metaheuristic", 8, "fusion-fission", false},
		{"beyond n", 9, "linear-bi", true},
		{"beyond n metaheuristic", 9, "fusion-fission", true},
		{"far beyond n", 1000, "spectral-lanc-bi", true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			res, err := Partition(g, Options{K: c.k, Method: c.method, Seed: 1, MaxSteps: 500})
			if c.wantErr {
				if err == nil {
					t.Fatalf("K=%d method=%q accepted: %+v", c.k, c.method, res)
				}
				return
			}
			if err != nil {
				t.Fatalf("K=%d method=%q rejected: %v", c.k, c.method, err)
			}
			if res.NumParts != c.k {
				t.Fatalf("K=%d method=%q: NumParts = %d", c.k, c.method, res.NumParts)
			}
		})
	}
	// Normalize must reject an invalid K too, so cache keys are never built
	// for requests the solvers would refuse.
	if _, err := Normalize(Options{K: 0}); err == nil {
		t.Fatal("Normalize accepted K=0")
	}
	if _, err := Normalize(Options{K: -1}); err == nil {
		t.Fatal("Normalize accepted K=-1")
	}
	// Parallelism: negative and absurd widths are mistakes, not requests
	// (every worker is a full concurrent solver instance); 0 normalizes to
	// the serial width 1 so equivalent requests build identical cache keys.
	if _, err := Normalize(Options{K: 2, Parallelism: -1}); err == nil {
		t.Fatal("Normalize accepted Parallelism=-1")
	}
	if _, err := Normalize(Options{K: 2, Parallelism: MaxParallelism + 1}); err == nil {
		t.Fatalf("Normalize accepted Parallelism=%d", MaxParallelism+1)
	}
	if o, err := Normalize(Options{K: 2}); err != nil || o.Parallelism != 1 {
		t.Fatalf("zero Parallelism normalized to %d (err %v), want 1", o.Parallelism, err)
	}
}

func TestFacadeMETISRoundTrip(t *testing.T) {
	g := smallGraph(t)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumVertices() != 8 || g2.NumEdges() != 9 {
		t.Fatalf("round trip lost shape: %d/%d", g2.NumVertices(), g2.NumEdges())
	}
}

func TestFacadeAirspace(t *testing.T) {
	g, meta, err := GenerateAirspace(AirspaceSpec{
		Sectors: 150, Edges: 520, Hubs: 11, Flights: 3000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 150 || g.NumEdges() != 520 {
		t.Fatalf("airspace shape %d/%d", g.NumVertices(), g.NumEdges())
	}
	if len(meta.CountryNames) != 11 {
		t.Fatalf("countries = %d", len(meta.CountryNames))
	}
	res, err := Partition(g, Options{K: 6, Method: "multilevel-bi", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumParts != 6 {
		t.Fatalf("NumParts = %d", res.NumParts)
	}
}

func TestMethodsComplete(t *testing.T) {
	if len(Methods()) != 17 {
		t.Fatalf("Methods() lists %d ids, want the 17 Table 1 rows", len(Methods()))
	}
	if len(ExtensionMethods()) < 4 {
		t.Fatalf("ExtensionMethods() lists %d ids", len(ExtensionMethods()))
	}
}

func TestFacadeExtensionMethodsRun(t *testing.T) {
	g := smallGraph(t)
	for _, id := range ExtensionMethods() {
		res, err := Partition(g, Options{
			K: 2, Method: id, Seed: 3,
			Budget: 60 * time.Millisecond, MaxSteps: 400,
		})
		if err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		if res.NumParts != 2 {
			t.Errorf("%s: NumParts = %d", id, res.NumParts)
		}
	}
}
