package airspace

import "testing"

// BenchmarkGenerate measures building the full paper-sized instance:
// placement, adjacency assembly, hub gravity traffic and routing.
func BenchmarkGenerate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := Generate(Default()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	spec := Spec{Sectors: 180, Edges: 640, Hubs: 12, Flights: 8000, Seed: 1}
	for i := 0; i < b.N; i++ {
		if _, _, err := Generate(spec); err != nil {
			b.Fatal(err)
		}
	}
}
