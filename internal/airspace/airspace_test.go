package airspace

import (
	"math"
	"sort"
	"testing"

	"repro/internal/graph"
)

func TestDefaultMatchesPaperSize(t *testing.T) {
	g, meta, err := Generate(Default())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 762 {
		t.Fatalf("sectors = %d, want 762", g.NumVertices())
	}
	if g.NumEdges() != 3165 {
		t.Fatalf("edges = %d, want 3165", g.NumEdges())
	}
	if !graph.IsConnected(g) {
		t.Fatal("not connected")
	}
	if len(meta.HubSectors) == 0 {
		t.Fatal("no hubs placed")
	}
	if len(meta.CountryNames) != 11 {
		t.Fatalf("%d countries, want 11", len(meta.CountryNames))
	}
}

func TestDeterministicForSeed(t *testing.T) {
	spec := Spec{Sectors: 200, Edges: 700, Hubs: 12, Flights: 5000, Seed: 5}
	g1, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if g1.TotalEdgeWeight() != g2.TotalEdgeWeight() {
		t.Fatalf("not deterministic: %g vs %g", g1.TotalEdgeWeight(), g2.TotalEdgeWeight())
	}
	g3, _, err := Generate(Spec{Sectors: 200, Edges: 700, Hubs: 12, Flights: 5000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if g1.TotalEdgeWeight() == g3.TotalEdgeWeight() {
		t.Fatal("different seeds produced identical flows")
	}
}

func TestWeightsPositiveAndSkewed(t *testing.T) {
	g, _, err := Generate(Spec{Sectors: 300, Edges: 1100, Hubs: 16, Flights: 12000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var ws []float64
	g.ForEachEdge(func(u, v int, w float64) {
		if w < 1 {
			t.Fatalf("edge weight %g below baseline 1", w)
		}
		ws = append(ws, w)
	})
	sort.Float64s(ws)
	median := ws[len(ws)/2]
	p95 := ws[len(ws)*95/100]
	// Corridor skew: the busiest edges must carry far more than the median
	// (heavy-tailed flow distribution), or the instance is featureless.
	if p95 < 4*median {
		t.Fatalf("flow distribution too flat: median %g, p95 %g", median, p95)
	}
}

func TestCountriesPopulated(t *testing.T) {
	_, meta, err := Generate(Spec{Sectors: 250, Edges: 900, Hubs: 13, Flights: 4000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, len(meta.CountryNames))
	for _, c := range meta.Country {
		counts[c]++
	}
	for i, c := range counts {
		if c == 0 {
			t.Fatalf("country %s got no sectors", meta.CountryNames[i])
		}
	}
	// France (largest) must have more sectors than Luxembourg (smallest).
	if counts[0] <= counts[10] {
		t.Fatalf("apportionment broken: France %d, Luxembourg %d", counts[0], counts[10])
	}
}

func TestTrafficConcentratesOnCorridors(t *testing.T) {
	g, meta, err := Generate(Spec{Sectors: 300, Edges: 1100, Hubs: 14, Flights: 20000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Edges incident to hub sectors should on average carry more flow than
	// arbitrary edges: traffic radiates from airports.
	isHub := make(map[int]bool)
	for _, h := range meta.HubSectors {
		isHub[h] = true
	}
	hubSum, hubN, allSum, allN := 0.0, 0, 0.0, 0
	g.ForEachEdge(func(u, v int, w float64) {
		allSum += w
		allN++
		if isHub[u] || isHub[v] {
			hubSum += w
			hubN++
		}
	})
	if hubN == 0 {
		t.Fatal("no hub-incident edges")
	}
	if hubSum/float64(hubN) <= allSum/float64(allN) {
		t.Fatalf("hub edges (%.1f avg) not busier than average (%.1f)",
			hubSum/float64(hubN), allSum/float64(allN))
	}
}

func TestGeometryLocality(t *testing.T) {
	g, meta, err := Generate(Spec{Sectors: 300, Edges: 1100, Hubs: 12, Flights: 2000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Adjacent sectors must be geometrically close: mean edge length far
	// below the map diagonal.
	total, count := 0.0, 0
	g.ForEachEdge(func(u, v int, w float64) {
		dx, dy := meta.X[u]-meta.X[v], meta.Y[u]-meta.Y[v]
		total += math.Hypot(dx, dy)
		count++
	})
	if mean := total / float64(count); mean > 15 {
		t.Fatalf("mean edge length %.1f not local on a ~100-unit map", mean)
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := Generate(Spec{Sectors: 5, Edges: 10, Hubs: 2, Flights: 10, Seed: 1}); err == nil {
		t.Fatal("fewer sectors than countries accepted")
	}
	if _, _, err := Generate(Spec{Sectors: 100, Edges: 50, Hubs: 11, Flights: 10, Seed: 1}); err == nil {
		t.Fatal("edge budget below spanning tree accepted")
	}
}
