// Package airspace generates a synthetic stand-in for the paper's
// evaluation workload: the European "country core area" sector graph — 762
// air-traffic-control sectors and 3,165 edges weighted by aircraft flows,
// covering Germany, France, the United Kingdom, Switzerland, Belgium, the
// Netherlands, Austria, Spain, Denmark, Luxembourg and Italy (section 6 and
// reference [1]).
//
// The real Eurocontrol sector geometry and flow data are proprietary, so the
// generator reproduces the structural properties the partitioning algorithms
// actually exercise:
//
//   - sector centers scattered over 11 country-shaped regions whose sector
//     counts are proportional to the countries' rough real ATC capacity;
//   - a planar-like adjacency built from a minimum spanning tree plus the
//     shortest k-nearest-neighbor candidates, hitting |V| = 762 and
//     |E| = 3165 exactly;
//   - edge weights from routed traffic: flights are sampled between airport
//     hubs with a gravity model (plus a fraction of arbitrary overflights)
//     and routed along geometric shortest paths, so flows concentrate on
//     hub-to-hub corridors exactly as real upper-airspace traffic does.
//
// The result is a connected, irregular, heavy-tailed weighted graph with the
// same size, sparsity and corridor skew as the paper's instance.
package airspace

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Spec parameterizes the generator. The zero value (via Default) reproduces
// the paper's instance size.
type Spec struct {
	Sectors            int     // number of ATC sectors (default 762)
	Edges              int     // number of flow edges (default 3165)
	Hubs               int     // number of airport hubs (default 34)
	Flights            int     // routed flights (default 40000)
	OverflightFraction float64 // share of flights between random sectors (default 0.10)
	Seed               int64   // determinism
}

// Default returns the paper-sized specification.
func Default() Spec {
	return Spec{Sectors: 762, Edges: 3165, Hubs: 34, Flights: 40000, OverflightFraction: 0.10, Seed: 2006}
}

func (s Spec) withDefaults() Spec {
	d := Default()
	if s.Sectors == 0 {
		s.Sectors = d.Sectors
	}
	if s.Edges == 0 {
		s.Edges = d.Edges
	}
	if s.Hubs == 0 {
		s.Hubs = d.Hubs
	}
	if s.Flights == 0 {
		s.Flights = d.Flights
	}
	if s.OverflightFraction == 0 {
		s.OverflightFraction = d.OverflightFraction
	}
	return s
}

// Meta describes the generated geography, for examples and reports.
type Meta struct {
	X, Y         []float64 // sector center coordinates
	Country      []int     // country index per sector
	CountryNames []string
	HubSectors   []int // sector ids hosting airport hubs
}

// country is a rough blob on a 100x100 map of the core area.
type country struct {
	name   string
	cx, cy float64
	weight float64 // relative sector count
}

// The 11 core-area countries (section 6), with sector shares roughly
// proportional to their real upper-airspace sector counts and blob centers
// laid out like the map of Europe.
var countries = []country{
	{"France", 33, 42, 160},
	{"Germany", 55, 60, 130},
	{"UK", 25, 78, 120},
	{"Italy", 58, 22, 90},
	{"Spain", 12, 14, 80},
	{"Switzerland", 46, 40, 35},
	{"Austria", 64, 42, 30},
	{"Belgium", 40, 63, 30},
	{"Netherlands", 44, 70, 25},
	{"Denmark", 55, 82, 22},
	{"Luxembourg", 44, 56, 5},
}

// Generate builds the sector graph and its geography.
func Generate(spec Spec) (*graph.Graph, *Meta, error) {
	spec = spec.withDefaults()
	n := spec.Sectors
	if n < len(countries) {
		return nil, nil, fmt.Errorf("airspace: need at least %d sectors, got %d", len(countries), n)
	}
	minEdges := n - 1
	if spec.Edges < minEdges {
		return nil, nil, fmt.Errorf("airspace: %d edges cannot connect %d sectors", spec.Edges, n)
	}
	r := rng.New(spec.Seed)

	meta := &Meta{
		X: make([]float64, n), Y: make([]float64, n),
		Country: make([]int, n),
	}
	for _, c := range countries {
		meta.CountryNames = append(meta.CountryNames, c.name)
	}

	// --- Sector placement: Gaussian blobs sized by country weight, with a
	// soft minimum-distance rejection for even coverage.
	totalW := 0.0
	for _, c := range countries {
		totalW += c.weight
	}
	counts := apportion(n, countries)
	minDist := 100.0 / math.Sqrt(float64(n)) * 0.45
	idx := 0
	for ci, c := range countries {
		sigma := 4.5 * math.Sqrt(c.weight/totalW*float64(len(countries)))
		for s := 0; s < counts[ci]; s++ {
			x, y := samplePoint(r, c.cx, c.cy, sigma, meta, idx, minDist)
			meta.X[idx], meta.Y[idx] = x, y
			meta.Country[idx] = ci
			idx++
		}
	}

	// --- Adjacency: MST over kNN candidates for connectivity, then the
	// shortest remaining candidates until the edge budget is filled.
	edges, err := buildAdjacency(spec, meta)
	if err != nil {
		return nil, nil, err
	}

	// --- Hubs: per-country airports near the blob centers, with gravity
	// masses. Each country gets at least one hub.
	hubs, hubMass := placeHubs(spec, meta, counts, r)
	meta.HubSectors = hubs

	// --- Traffic: route flights hub-to-hub along geometric shortest paths
	// (plus random overflights) and accumulate flows per edge.
	flows := routeTraffic(spec, meta, edges, hubs, hubMass, r)

	b := graph.NewBuilder(n)
	for i, e := range edges {
		b.AddEdge(int(e[0]), int(e[1]), 1+flows[i])
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	if g.NumEdges() != spec.Edges {
		return nil, nil, fmt.Errorf("airspace: built %d edges, want %d", g.NumEdges(), spec.Edges)
	}
	if !graph.IsConnected(g) {
		return nil, nil, fmt.Errorf("airspace: generated graph is not connected")
	}
	return g, meta, nil
}

// apportion distributes n sectors over the countries proportionally to
// weight with largest-remainder rounding.
func apportion(n int, cs []country) []int {
	totalW := 0.0
	for _, c := range cs {
		totalW += c.weight
	}
	counts := make([]int, len(cs))
	type frac struct {
		i int
		f float64
	}
	fracs := make([]frac, len(cs))
	used := 0
	for i, c := range cs {
		exact := c.weight / totalW * float64(n)
		counts[i] = int(exact)
		if counts[i] == 0 {
			counts[i] = 1
		}
		used += counts[i]
		fracs[i] = frac{i, exact - float64(int(exact))}
	}
	sort.Slice(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
	for j := 0; used < n; j = (j + 1) % len(fracs) {
		counts[fracs[j].i]++
		used++
	}
	for j := 0; used > n; j = (j + 1) % len(fracs) {
		i := fracs[len(fracs)-1-j%len(fracs)].i
		if counts[i] > 1 {
			counts[i]--
			used--
		}
	}
	return counts
}

func samplePoint(r interface{ NormFloat64() float64 }, cx, cy, sigma float64, meta *Meta, placed int, minDist float64) (float64, float64) {
	for attempt := 0; attempt < 30; attempt++ {
		x := cx + r.NormFloat64()*sigma
		y := cy + r.NormFloat64()*sigma
		ok := true
		// Only compare against recent points: a full scan is O(n^2) and the
		// local window catches almost all collisions in a blob.
		lo := placed - 220
		if lo < 0 {
			lo = 0
		}
		for j := lo; j < placed; j++ {
			dx, dy := meta.X[j]-x, meta.Y[j]-y
			if dx*dx+dy*dy < minDist*minDist {
				ok = false
				break
			}
		}
		if ok {
			return x, y
		}
	}
	// Crowded blob: accept the last candidate.
	return cx + r.NormFloat64()*sigma, cy + r.NormFloat64()*sigma
}

// buildAdjacency returns exactly spec.Edges undirected edges covering all
// sectors: an MST for connectivity plus the shortest kNN candidates.
func buildAdjacency(spec Spec, meta *Meta) ([][2]int32, error) {
	n := spec.Sectors
	type cand struct {
		u, v int32
		d    float64
	}
	// kNN candidates, k chosen to comfortably exceed the edge budget.
	k := 2*spec.Edges/n + 6
	if k >= n {
		k = n - 1
	}
	candSet := make(map[[2]int32]float64)
	dists := make([]cand, 0, n)
	for u := 0; u < n; u++ {
		dists = dists[:0]
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			dx, dy := meta.X[u]-meta.X[v], meta.Y[u]-meta.Y[v]
			dists = append(dists, cand{int32(u), int32(v), dx*dx + dy*dy})
		}
		sort.Slice(dists, func(a, b int) bool { return dists[a].d < dists[b].d })
		for i := 0; i < k && i < len(dists); i++ {
			a, bb := dists[i].u, dists[i].v
			if a > bb {
				a, bb = bb, a
			}
			candSet[[2]int32{a, bb}] = dists[i].d
		}
	}
	cands := make([]cand, 0, len(candSet))
	for key, d := range candSet {
		cands = append(cands, cand{key[0], key[1], d})
	}
	sort.Slice(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		if cands[a].u != cands[b].u {
			return cands[a].u < cands[b].u
		}
		return cands[a].v < cands[b].v
	})
	if len(cands) < spec.Edges {
		return nil, fmt.Errorf("airspace: only %d candidate edges for a budget of %d; raise kNN", len(cands), spec.Edges)
	}

	// Kruskal MST first.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	chosen := make([][2]int32, 0, spec.Edges)
	inTree := make(map[[2]int32]bool, n)
	for _, c := range cands {
		ru, rv := find(c.u), find(c.v)
		if ru != rv {
			parent[ru] = rv
			key := [2]int32{c.u, c.v}
			chosen = append(chosen, key)
			inTree[key] = true
		}
	}
	// The kNN graph of points in general position is connected in practice;
	// if not, fall back to linking components by adding direct edges.
	comp := find(0)
	for v := 1; v < n; v++ {
		if find(int32(v)) != comp {
			key := [2]int32{0, int32(v)}
			if int32(v) < 0 {
				key = [2]int32{int32(v), 0}
			}
			if !inTree[key] {
				chosen = append(chosen, key)
				inTree[key] = true
				parent[find(int32(v))] = comp
			}
		}
	}
	// Fill with the shortest remaining candidates.
	for _, c := range cands {
		if len(chosen) == spec.Edges {
			break
		}
		key := [2]int32{c.u, c.v}
		if !inTree[key] {
			chosen = append(chosen, key)
			inTree[key] = true
		}
	}
	if len(chosen) != spec.Edges {
		return nil, fmt.Errorf("airspace: assembled %d edges, want %d", len(chosen), spec.Edges)
	}
	return chosen, nil
}

// placeHubs assigns airport hubs to sectors, at least one per country, the
// rest apportioned by weight; each hub gets a gravity mass.
func placeHubs(spec Spec, meta *Meta, counts []int, r interface {
	Intn(int) int
	Float64() float64
}) ([]int, []float64) {
	nc := len(countries)
	hubsPer := make([]int, nc)
	for i := range hubsPer {
		hubsPer[i] = 1
	}
	remaining := spec.Hubs - nc
	totalW := 0.0
	for _, c := range countries {
		totalW += c.weight
	}
	for i := 0; remaining > 0; i = (i + 1) % nc {
		// Probabilistic apportionment keeps big countries hub-rich.
		if r.Float64() < countries[i].weight/totalW*float64(nc) {
			hubsPer[i]++
			remaining--
		}
	}
	// Sector index ranges per country follow placement order.
	start := make([]int, nc+1)
	for i := 0; i < nc; i++ {
		start[i+1] = start[i] + counts[i]
	}
	var hubs []int
	var mass []float64
	seen := make(map[int]bool)
	for ci := 0; ci < nc; ci++ {
		for h := 0; h < hubsPer[ci]; h++ {
			// Prefer sectors near the country center: resample and keep
			// the closest of a few tries.
			best, bestD := -1, math.Inf(1)
			for try := 0; try < 6; try++ {
				s := start[ci] + r.Intn(counts[ci])
				if seen[s] {
					continue
				}
				dx := meta.X[s] - countries[ci].cx
				dy := meta.Y[s] - countries[ci].cy
				if d := dx*dx + dy*dy; d < bestD {
					best, bestD = s, d
				}
			}
			if best < 0 {
				continue
			}
			seen[best] = true
			hubs = append(hubs, best)
			mass = append(mass, countries[ci].weight*(0.5+r.Float64()))
		}
	}
	return hubs, mass
}

// routeTraffic samples flights and routes each along the geometric shortest
// path, returning the flow accumulated on every edge (indexed like edges).
func routeTraffic(spec Spec, meta *Meta, edges [][2]int32, hubs []int, hubMass []float64, r interface {
	Intn(int) int
	Float64() float64
}) []float64 {
	n := spec.Sectors
	// CSR-ish adjacency over the chosen edges with geometric lengths.
	adj := make([][]int32, n)  // neighbor sector
	aeid := make([][]int32, n) // edge index into `edges`
	alen := make([][]float64, n)
	for i, e := range edges {
		u, v := int(e[0]), int(e[1])
		dx, dy := meta.X[u]-meta.X[v], meta.Y[u]-meta.Y[v]
		d := math.Hypot(dx, dy) + 1e-9
		adj[u] = append(adj[u], int32(v))
		aeid[u] = append(aeid[u], int32(i))
		alen[u] = append(alen[u], d)
		adj[v] = append(adj[v], int32(u))
		aeid[v] = append(aeid[v], int32(i))
		alen[v] = append(alen[v], d)
	}
	flows := make([]float64, len(edges))

	// Shortest-path tree from every hub (and overflight origin): parent
	// edge per vertex.
	parentEdge := make([]int32, n)
	dist := make([]float64, n)
	dijkstra := func(src int) {
		for v := range dist {
			dist[v] = math.Inf(1)
			parentEdge[v] = -1
		}
		dist[src] = 0
		pq := &distHeap{}
		heap.Init(pq)
		heap.Push(pq, distItem{src, 0})
		for pq.Len() > 0 {
			it := heap.Pop(pq).(distItem)
			if it.d > dist[it.v] {
				continue
			}
			for i, u := range adj[it.v] {
				nd := it.d + alen[it.v][i]
				if nd < dist[u] {
					dist[u] = nd
					parentEdge[u] = aeid[it.v][i]
					heap.Push(pq, distItem{int(u), nd})
				}
			}
		}
	}
	walkDown := func(dst int, count float64) {
		v := dst
		for parentEdge[v] >= 0 {
			e := parentEdge[v]
			flows[e] += count
			// Step to the other endpoint of e.
			if int(edges[e][0]) == v {
				v = int(edges[e][1])
			} else {
				v = int(edges[e][0])
			}
		}
	}

	// Hub-to-hub gravity traffic. Flights are drawn per ordered hub pair in
	// one pass: expected counts from the gravity model, then routed in bulk
	// along each origin hub's shortest-path tree.
	hubFlights := float64(spec.Flights) * (1 - spec.OverflightFraction)
	type od struct {
		a, b int
		w    float64
	}
	var pairs []od
	totalGrav := 0.0
	for i := range hubs {
		for j := i + 1; j < len(hubs); j++ {
			dx := meta.X[hubs[i]] - meta.X[hubs[j]]
			dy := meta.Y[hubs[i]] - meta.Y[hubs[j]]
			d := math.Hypot(dx, dy) + 5
			w := hubMass[i] * hubMass[j] / d
			pairs = append(pairs, od{i, j, w})
			totalGrav += w
		}
	}
	perOrigin := make(map[int][]od)
	for _, p := range pairs {
		perOrigin[p.a] = append(perOrigin[p.a], p)
	}
	origins := make([]int, 0, len(perOrigin))
	for a := range perOrigin {
		origins = append(origins, a)
	}
	sort.Ints(origins) // deterministic order: the rng stream must not depend on map order
	for _, a := range origins {
		dijkstra(hubs[a])
		for _, p := range perOrigin[a] {
			count := hubFlights * p.w / totalGrav
			// Round stochastically so small corridors still get traffic.
			flights := math.Floor(count)
			if r.Float64() < count-flights {
				flights++
			}
			if flights > 0 {
				walkDown(hubs[p.b], flights)
			}
		}
	}

	// Overflights: arbitrary sector-to-sector traffic, batched by origin.
	over := int(float64(spec.Flights) * spec.OverflightFraction)
	batches := 80
	if batches > over && over > 0 {
		batches = over
	}
	for b := 0; b < batches; b++ {
		src := r.Intn(n)
		dijkstra(src)
		per := over / batches
		for f := 0; f < per; f++ {
			walkDown(r.Intn(n), 1)
		}
	}
	return flows
}

type distItem struct {
	v int
	d float64
}

type distHeap []distItem

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distItem)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
