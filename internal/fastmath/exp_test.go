package fastmath

import (
	"math"
	"testing"
)

// TestExpMaxRelativeError pins the approximation bound the package comment
// promises: across the clamp-relevant range, Exp stays within 1e-11 relative
// of math.Exp. The grid is dense around 0 (the annealer's exponents cluster
// there) and strides across the full reduced range so every table entry and
// both reduction branches are exercised.
func TestExpMaxRelativeError(t *testing.T) {
	if useExact {
		t.Skip("FF_EXACTEXP=1: Exp is math.Exp, nothing to bound")
	}
	maxRel := 0.0
	worst := 0.0
	check := func(x float64) {
		got := Exp(x)
		want := math.Exp(x)
		if want == 0 {
			if got != 0 {
				t.Fatalf("Exp(%g) = %g, math.Exp = 0", x, got)
			}
			return
		}
		rel := math.Abs(got-want) / want
		if rel > maxRel {
			maxRel, worst = rel, x
		}
	}
	for x := -700.0; x <= 20; x += 0.000977 {
		check(x)
	}
	for x := -2.0; x <= 0; x += 1e-6 {
		check(x)
	}
	t.Logf("max relative error %.3g at x = %.9f", maxRel, worst)
	if maxRel > 1e-11 {
		t.Errorf("max relative error %.3g at x=%g exceeds the 1e-11 bound", maxRel, worst)
	}
}

// TestExpSpecialValues checks the delegated edges: non-finite arguments and
// the overflow/underflow ranges must behave exactly like math.Exp.
func TestExpSpecialValues(t *testing.T) {
	cases := []float64{
		math.NaN(), math.Inf(1), math.Inf(-1),
		0, math.Copysign(0, -1),
		709.7, 709.9, 710, 1000, 1e308, // overflow edge and beyond
		-708.3, -709, -745, -746, -1000, // underflow through subnormals to 0
		-745.2, -744.9,
	}
	for _, x := range cases {
		got, want := Exp(x), math.Exp(x)
		if math.IsNaN(want) {
			if !math.IsNaN(got) {
				t.Errorf("Exp(%g) = %g, want NaN", x, got)
			}
			continue
		}
		if got != want {
			t.Errorf("Exp(%g) = %g, math.Exp = %g", x, got, want)
		}
	}
}

// TestExpMonotoneNearClamp spot-checks that the approximation never returns
// a negative or zero probability inside the annealer's clamped range — the
// Boltzmann comparison r < Exp(x) relies on Exp being positive there.
func TestExpPositiveInClampedRange(t *testing.T) {
	for x := -700.0; x <= 0; x += 0.1 {
		if v := Exp(x); !(v > 0) {
			t.Fatalf("Exp(%g) = %g, want > 0", x, v)
		}
	}
}

func BenchmarkExp(b *testing.B) {
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = -20 * float64(i) / float64(len(xs))
	}
	b.Run("fastmath", func(b *testing.B) {
		s := 0.0
		for i := 0; i < b.N; i++ {
			s += Exp(xs[i&1023])
		}
		sink = s
	})
	b.Run("math", func(b *testing.B) {
		s := 0.0
		for i := 0; i < b.N; i++ {
			s += math.Exp(xs[i&1023])
		}
		sink = s
	})
}

var sink float64
