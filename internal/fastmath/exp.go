// Package fastmath provides an error-bounded polynomial exponential for the
// Metropolis/sigmoid hot paths. math.Exp's table-free Cody-Waite kernel ends
// in a division and a chain of fixups that together dominate the annealer's
// acceptance arithmetic once the rest of the proposal loop is cheap (see
// BENCH_anneal.json); Exp below replaces it with a 32-entry octave table and
// a degree-4 polynomial — no division, no branches on the accept path — at a
// maximum relative error of a few 1e-12 (TestExpMaxRelativeError pins the
// bound against math.Exp).
//
// The escape hatch FF_EXACTEXP=1 routes Exp through math.Exp, for bisecting
// a suspected approximation artifact; acceptance decisions compare Exp
// against a uniform draw, so the two paths diverge only when that draw lands
// within the approximation error of the threshold (~1e-12 per uphill
// proposal), and golden-scale trajectories are identical.
package fastmath

import (
	"math"
	"os"
)

// useExact routes Exp through math.Exp, probed once at startup.
var useExact = os.Getenv("FF_EXACTEXP") != ""

// Exact reports whether the FF_EXACTEXP escape hatch is active and Exp is
// math.Exp.
func Exact() bool { return useExact }

const (
	// invLn2x32 = 32/ln 2: scales x so the rounded product selects one of 32
	// subintervals per octave.
	invLn2x32 = 32 / math.Ln2
	// ln2o32Hi/Lo split ln2/32 so that k*ln2o32Hi is exact for |k| < 2^15
	// (the hi part carries ~33 significant bits — math.Exp's own Ln2Hi
	// scaled by a power of two) and the lo part restores the dropped tail.
	ln2o32Hi = 6.93147180369123816490e-01 / 32
	ln2o32Lo = 1.90821492927058770002e-10 / 32
	// expOverflow/expUnderflow bound the bit-twiddled 2^e scaling below to
	// normal results; outside, Exp defers to math.Exp for the exact
	// overflow/subnormal/zero behavior (never on the annealer's hot path,
	// whose exponents are clamped to [-700, 0]).
	expOverflow  = 709.0
	expUnderflow = -708.0
	// smallX bounds the reduction-free path: for |x| < 2^-7 the degree-4
	// Taylor polynomial in x itself has remainder |x|^5/5! < 2.5e-13
	// relative — inside the committed error bound with no table lookup, no
	// rounding, and a critical path of four FP operations. The Metropolis
	// argument -delta/T sits in this range for nearly every uphill proposal
	// of the hot phase (deltas are per-part normalized ratios), so this is
	// the branch the annealer takes.
	smallX = 1.0 / 128
)

// exp2tab[j] holds 2^(j/32), the octave subdivision the range reduction
// lands on. 256 bytes: two cache lines, resident for the whole run.
var exp2tab = func() [32]float64 {
	var t [32]float64
	for j := range t {
		t[j] = math.Exp2(float64(j) / 32)
	}
	return t
}()

// Exp returns e**x with a maximum relative error of a few 1e-12 against
// math.Exp (the committed test bound is 1e-11). Arguments outside
// (-708, 709) and non-finite arguments are delegated to math.Exp, so
// overflow to +Inf, underflow through the subnormals to 0, and NaN
// propagation are all exactly math.Exp's.
func Exp(x float64) float64 {
	if useExact {
		return math.Exp(x)
	}
	if math.Abs(x) < smallX { // NaN compares false, falls to the guard below
		// Degree-4 Taylor straight in x, Estrin-paired so the two halves
		// evaluate concurrently instead of serializing through a Horner
		// chain (Go does not fuse FP ops, so chain length is latency).
		x2 := x * x
		return (1 + x) + x2*((0.5+x*(1.0/6))+x2*(1.0/24))
	}
	if !(x > expUnderflow && x < expOverflow) { // also catches NaN
		return math.Exp(x)
	}
	// Range reduction: x = k*(ln2/32) + r with |r| <= ln2/64 + 1ulp.
	kf := math.RoundToEven(x * invLn2x32)
	r := (x - kf*ln2o32Hi) - kf*ln2o32Lo
	// exp(r) by degree-4 Taylor: |r|^5/5! < 1.3e-12 relative on the reduced
	// interval, below the rounding noise of the evaluation itself. Estrin
	// pairing halves the dependent-chain length vs Horner.
	r2 := r * r
	p := (1 + r) + r2*((0.5+r*(1.0/6))+r2*(1.0/24))
	k := int64(kf)
	// exp(x) = 2^(k>>5) * 2^((k&31)/32) * exp(r); the 2^e scaling is an
	// exponent-field add, exact because the argument clamp keeps the result
	// normal.
	v := exp2tab[k&31] * p
	return math.Float64frombits(math.Float64bits(v) + uint64(k>>5)<<52)
}
