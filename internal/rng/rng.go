// Package rng provides deterministic random-number utilities shared by the
// stochastic partitioning methods (percolation seeding, simulated annealing,
// ant colony, fusion-fission) and by the synthetic workload generators.
//
// Every algorithm in this repository that uses randomness takes an explicit
// seed and derives all of its choices from a *rand.Rand created here, so runs
// are reproducible bit-for-bit for a given (seed, parameters) pair.
package rng

import "math/rand"

// New returns a deterministic generator for the given seed.
// Seed 0 is mapped to a fixed non-zero constant so that the zero value of an
// options struct still yields a well-defined, reproducible stream.
func New(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 0x5eed5eed5eed
	}
	return rand.New(rand.NewSource(seed))
}

// WeightedChoice returns an index in [0, len(weights)) drawn with probability
// proportional to weights[i]. Negative weights are treated as zero. If the
// total weight is zero (or the slice is empty) it returns -1.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := r.Float64() * total
	acc := 0.0
	last := -1
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		last = i
		if x < acc {
			return i
		}
	}
	// Floating-point round-off can leave x marginally above the final
	// accumulator; fall back to the last positive-weight index.
	return last
}

// Perm fills dst with a random permutation of 0..len(dst)-1.
func Perm(r *rand.Rand, dst []int) {
	for i := range dst {
		dst[i] = i
	}
	r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Pick returns a uniformly random element of xs. It panics if xs is empty.
func Pick[T any](r *rand.Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}

// Alias is a Walker alias table: O(1) weighted sampling from a fixed
// distribution, built once in O(n). WeightedChoice pays an O(n) prefix scan
// per draw, which is the right trade for distributions that change between
// draws (ant-colony pheromones); a static distribution sampled many times —
// degree-proportional seeding, workload generators — amortizes the table
// build after a handful of draws.
//
// Each draw consumes exactly two values from the generator (one Intn, one
// Float64), so swapping WeightedChoice for an Alias changes the RNG stream:
// do not retrofit it into a method whose golden trajectories are pinned.
type Alias struct {
	prob  []float64 // acceptance threshold per column
	alias []int32   // fallback index per column
}

// NewAlias builds the table. Negative weights are treated as zero, matching
// WeightedChoice. If no weight is positive (or weights is empty) it returns
// nil, and Draw on a nil Alias returns -1.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return nil
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int32, n)}
	// Scale weights to mean 1 and split columns into small (< 1) and large.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	// Each small column is topped up by one large column; the large column's
	// remainder is requeued on whichever side it now belongs to.
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Round-off leftovers on either queue are full columns.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Draw returns an index distributed proportionally to the weights the table
// was built from, in O(1): one uniform column pick and one biased coin.
func (a *Alias) Draw(r *rand.Rand) int {
	if a == nil {
		return -1
	}
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// Splitmix is a splitmix64 generator (Steele, Lea & Flood's SplittableRandom
// finalizer): one add and three xor-multiply rounds per draw, an order of
// magnitude cheaper than math/rand's additive-lagged source behind a mutex-free
// *rand.Rand. The annealer draws its proposal-vertex stream from one of these,
// seeded from its main generator, so the per-proposal RNG cost stops showing
// up in profiles while the stream stays a pure function of the run seed.
type Splitmix struct{ state uint64 }

// NewSplitmix returns a splitmix64 stream over the given seed. Any seed is
// fine — the finalizer decorrelates consecutive states — so callers seed it
// with one draw from their main generator.
func NewSplitmix(seed uint64) *Splitmix { return &Splitmix{state: seed} }

// Uint64 returns the next 64-bit draw.
func (s *Splitmix) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a draw in [0, n) for 0 < n <= MaxInt32 using Lemire's
// multiply-shift reduction on the high 32 bits: branch-free, no modulo, no
// rejection loop. The reduction is biased by less than n/2^32 (under 3e-6
// for a million-vertex graph) — irrelevant for stochastic proposal sampling,
// which is the only intended use; anything needing exact uniformity should
// keep using a *rand.Rand.
func (s *Splitmix) Intn(n int) int {
	return int((s.Uint64() >> 32) * uint64(n) >> 32)
}

// Float64 returns a draw in [0, 1) with 53 random bits — the same value
// distribution as math/rand's Float64, minus the mutex-free wrapper and
// rejection branch. Used for the annealer's Metropolis acceptance draws.
func (s *Splitmix) Float64() float64 {
	return float64(s.Uint64()>>11) * 0x1p-53
}
