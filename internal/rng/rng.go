// Package rng provides deterministic random-number utilities shared by the
// stochastic partitioning methods (percolation seeding, simulated annealing,
// ant colony, fusion-fission) and by the synthetic workload generators.
//
// Every algorithm in this repository that uses randomness takes an explicit
// seed and derives all of its choices from a *rand.Rand created here, so runs
// are reproducible bit-for-bit for a given (seed, parameters) pair.
package rng

import "math/rand"

// New returns a deterministic generator for the given seed.
// Seed 0 is mapped to a fixed non-zero constant so that the zero value of an
// options struct still yields a well-defined, reproducible stream.
func New(seed int64) *rand.Rand {
	if seed == 0 {
		seed = 0x5eed5eed5eed
	}
	return rand.New(rand.NewSource(seed))
}

// WeightedChoice returns an index in [0, len(weights)) drawn with probability
// proportional to weights[i]. Negative weights are treated as zero. If the
// total weight is zero (or the slice is empty) it returns -1.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := r.Float64() * total
	acc := 0.0
	last := -1
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		acc += w
		last = i
		if x < acc {
			return i
		}
	}
	// Floating-point round-off can leave x marginally above the final
	// accumulator; fall back to the last positive-weight index.
	return last
}

// Perm fills dst with a random permutation of 0..len(dst)-1.
func Perm(r *rand.Rand, dst []int) {
	for i := range dst {
		dst[i] = i
	}
	r.Shuffle(len(dst), func(i, j int) { dst[i], dst[j] = dst[j], dst[i] })
}

// Pick returns a uniformly random element of xs. It panics if xs is empty.
func Pick[T any](r *rand.Rand, xs []T) T {
	return xs[r.Intn(len(xs))]
}
