package rng

import (
	"math"
	"testing"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed, different streams")
		}
	}
	if New(1).Int63() == New(2).Int63() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestZeroSeedWellDefined(t *testing.T) {
	a, b := New(0), New(0)
	if a.Int63() != b.Int63() {
		t.Fatal("zero seed not reproducible")
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := New(7)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const trials = 30000
	for i := 0; i < trials; i++ {
		c := WeightedChoice(r, weights)
		if c < 0 || c > 2 {
			t.Fatalf("choice out of range: %d", c)
		}
		counts[c]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	p0 := float64(counts[0]) / trials
	if math.Abs(p0-0.25) > 0.02 {
		t.Fatalf("P(0) = %.3f, want 0.25", p0)
	}
}

func TestWeightedChoiceEdgeCases(t *testing.T) {
	r := New(1)
	if WeightedChoice(r, nil) != -1 {
		t.Fatal("empty weights should return -1")
	}
	if WeightedChoice(r, []float64{0, 0}) != -1 {
		t.Fatal("all-zero weights should return -1")
	}
	if WeightedChoice(r, []float64{-5, 2}) != 1 {
		t.Fatal("negative weights should be skipped")
	}
	if WeightedChoice(r, []float64{7}) != 0 {
		t.Fatal("single positive weight should be chosen")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	p := make([]int, 50)
	Perm(r, p)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPick(t *testing.T) {
	r := New(5)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never chose some element: %v", seen)
	}
}

func TestAliasMatchesDistribution(t *testing.T) {
	r := New(41)
	weights := []float64{1, 0, 3, 6, 0.5, -2, 9.5}
	a := NewAlias(weights)
	if a == nil {
		t.Fatal("NewAlias returned nil for a positive-total distribution")
	}
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	const draws = 2_000_000
	counts := make([]int, len(weights))
	for i := 0; i < draws; i++ {
		v := a.Draw(r)
		if v < 0 || v >= len(weights) {
			t.Fatalf("draw out of range: %d", v)
		}
		counts[v]++
	}
	for i, w := range weights {
		want := 0.0
		if w > 0 {
			want = w / total
		}
		got := float64(counts[i]) / draws
		if want == 0 {
			if counts[i] != 0 {
				t.Errorf("index %d has zero weight but %d draws", i, counts[i])
			}
			continue
		}
		if got < want*0.98 || got > want*1.02 {
			t.Errorf("index %d: frequency %.4f, want %.4f (±2%%)", i, got, want)
		}
	}
}

func TestAliasDegenerate(t *testing.T) {
	if a := NewAlias(nil); a != nil {
		t.Error("NewAlias(nil) != nil")
	}
	if a := NewAlias([]float64{0, -1, 0}); a != nil {
		t.Error("NewAlias with no positive weight != nil")
	}
	var nilTable *Alias
	if got := nilTable.Draw(New(1)); got != -1 {
		t.Errorf("nil Draw = %d, want -1", got)
	}
	// Single-element table always returns 0.
	one := NewAlias([]float64{4.2})
	r := New(2)
	for i := 0; i < 100; i++ {
		if got := one.Draw(r); got != 0 {
			t.Fatalf("single-column draw = %d, want 0", got)
		}
	}
}

func BenchmarkWeightedChoice(b *testing.B) {
	r := New(9)
	weights := make([]float64, 256)
	for i := range weights {
		weights[i] = r.Float64() * 10
	}
	b.Run("scan", func(b *testing.B) {
		s := 0
		for i := 0; i < b.N; i++ {
			s += WeightedChoice(r, weights)
		}
		benchSink = s
	})
	b.Run("alias", func(b *testing.B) {
		a := NewAlias(weights)
		s := 0
		for i := 0; i < b.N; i++ {
			s += a.Draw(r)
		}
		benchSink = s
	})
}

var benchSink int

// TestSplitmixDeterminismAndRange: same seed, same stream; draws land in
// [0, n) for awkward bounds; distinct seeds decorrelate immediately.
func TestSplitmixDeterminismAndRange(t *testing.T) {
	a, b := NewSplitmix(42), NewSplitmix(42)
	for i := 0; i < 1000; i++ {
		if x, y := a.Uint64(), b.Uint64(); x != y {
			t.Fatalf("draw %d: same seed diverged: %d vs %d", i, x, y)
		}
	}
	c := NewSplitmix(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 42/43 collided on %d of 1000 draws", same)
	}
	for _, n := range []int{1, 2, 3, 7, 10000, 1 << 30, 1<<31 - 1} {
		s := NewSplitmix(7)
		for i := 0; i < 2000; i++ {
			if v := s.Intn(n); v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

// TestSplitmixIntnCoverage: the reduction must reach every residue of a
// small modulus with roughly uniform frequency, not alias onto a subset.
func TestSplitmixIntnCoverage(t *testing.T) {
	const n, draws = 32, 64000
	var hist [n]int
	s := NewSplitmix(2026)
	for i := 0; i < draws; i++ {
		hist[s.Intn(n)]++
	}
	for v, c := range hist {
		if c < draws/n/2 || c > draws/n*2 {
			t.Fatalf("value %d drawn %d times, expected about %d", v, c, draws/n)
		}
	}
}
