package rng

import (
	"math"
	"testing"
)

func TestNewDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("same seed, different streams")
		}
	}
	if New(1).Int63() == New(2).Int63() {
		t.Fatal("different seeds produced identical first draw")
	}
}

func TestZeroSeedWellDefined(t *testing.T) {
	a, b := New(0), New(0)
	if a.Int63() != b.Int63() {
		t.Fatal("zero seed not reproducible")
	}
}

func TestWeightedChoiceDistribution(t *testing.T) {
	r := New(7)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const trials = 30000
	for i := 0; i < trials; i++ {
		c := WeightedChoice(r, weights)
		if c < 0 || c > 2 {
			t.Fatalf("choice out of range: %d", c)
		}
		counts[c]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index chosen %d times", counts[1])
	}
	p0 := float64(counts[0]) / trials
	if math.Abs(p0-0.25) > 0.02 {
		t.Fatalf("P(0) = %.3f, want 0.25", p0)
	}
}

func TestWeightedChoiceEdgeCases(t *testing.T) {
	r := New(1)
	if WeightedChoice(r, nil) != -1 {
		t.Fatal("empty weights should return -1")
	}
	if WeightedChoice(r, []float64{0, 0}) != -1 {
		t.Fatal("all-zero weights should return -1")
	}
	if WeightedChoice(r, []float64{-5, 2}) != 1 {
		t.Fatal("negative weights should be skipped")
	}
	if WeightedChoice(r, []float64{7}) != 0 {
		t.Fatal("single positive weight should be chosen")
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	p := make([]int, 50)
	Perm(r, p)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPick(t *testing.T) {
	r := New(5)
	xs := []string{"a", "b", "c"}
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		seen[Pick(r, xs)] = true
	}
	if len(seen) != 3 {
		t.Fatalf("Pick never chose some element: %v", seen)
	}
}
