// Package core implements the paper's contribution: the fusion-fission
// metaheuristic for k-way graph partitioning (section 4).
//
// A partition is viewed as matter: vertices are nucleons, parts are atoms,
// the partition is a molecule. The search repeatedly selects an atom and
// either fuses it with a connected atom (chosen by size, distance — the
// inverse of the connecting weight — and temperature) or breaks it in two
// with the percolation process of section 4.4. Events may eject nucleons,
// with counts drawn from learned laws (one fusion law and one fission law
// per atom size, reinforced when they lower the energy); at high temperature
// an ejected nucleon can trigger a further simple fission of the atom it
// strikes, at low temperature it is absorbed by its best-connected
// neighbor atom.
//
// Unlike every classical method, the number of parts drifts around the
// target K during the search; a binding-energy-shaped scaling of the
// objective (see energy.go) makes energies comparable across part counts.
// Temperature decreases linearly (the paper: "the temperature will decrease
// nbt times before reaching tmin"); at the freezing point the search
// restarts from the best partition found, reheated to TMax.
//
// The five tunable parameters the paper counts are TMax, TMin and NbT for
// the temperature plus Kappa and R in the choice function alpha(t).
package core

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/fastmath"
	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
)

// Options configures fusion-fission.
type Options struct {
	// Objective is the criterion to minimize (default MCut, the paper's
	// ATC objective).
	Objective objective.Objective
	// TMax and TMin bound the temperature (defaults 1.0 and 0.02).
	TMax, TMin float64
	// NbT is the number of cooling steps from TMax to TMin (default 400).
	NbT int
	// Kappa and R shape the choice function alpha(t) = Kappa*(TMax-t)/
	// (TMax-TMin) + R (defaults 2.0 and 1.0 — the paper leaves both "to be
	// adjusted by the user"; R = 1 keeps the fusion/fission band tight even
	// when hot, which tunes best on the airspace workload). Larger alpha
	// narrows the size band within which both fusion and fission stay
	// likely.
	Kappa, R float64
	// LawDelta is the law-learning increment (default 0.04).
	LawDelta float64
	// MaxSteps caps the number of fusion/fission events (default 60000).
	MaxSteps int
	// Budget caps wall-clock time; 0 means no limit.
	Budget time.Duration
	// Seed drives all randomness.
	Seed int64
	// Initial optionally replaces the Algorithm 2 initialization.
	Initial *partition.P
	// Runtime optionally attaches the run to a shared engine runtime — the
	// portfolio incumbent exchange and the live-progress monitor. Nil for
	// standalone runs.
	Runtime *engine.Runtime
	// Choice selects the fusion/fission decision rule; see ChoiceFunc.
	Choice ChoiceFunc
	// DisablePercolationFission splits atoms randomly instead of with
	// percolation (ablation of section 4.4).
	DisablePercolationFission bool
	// DisableLawLearning freezes the laws at uniform (ablation).
	DisableLawLearning bool
}

// ChoiceFunc selects the rule mapping atom size to fission probability.
// The paper presents the clamped linear rule and remarks that "other choice
// functions not presented here give better results, but are much more
// complicated"; the sigmoid rule is one such smoother alternative.
type ChoiceFunc int

const (
	// ChoiceLinear is the paper's rule: fission probability 0 below
	// nBar - 1/(2 alpha), 1 above nBar + 1/(2 alpha), linear in between.
	ChoiceLinear ChoiceFunc = iota
	// ChoiceSigmoid replaces the clamped ramp with the logistic curve
	// 1/(1+exp(-2 alpha (x - nBar))): same center and slope at the center,
	// but oversized and undersized atoms retain a small chance of the
	// "wrong" event, which preserves exploration as the system cools.
	ChoiceSigmoid
)

func (o Options) withDefaults() Options {
	if o.TMax == 0 {
		o.TMax = 1.0
	}
	if o.TMin == 0 {
		o.TMin = 0.02
	}
	if o.NbT == 0 {
		o.NbT = 400
	}
	if o.Kappa == 0 {
		o.Kappa = 2.0
	}
	if o.R == 0 {
		o.R = 1.0
	}
	if o.LawDelta == 0 {
		o.LawDelta = 0.04
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 60_000
	}
	return o
}

// TracePoint records the best K-part objective at a point in time.
type TracePoint = engine.TracePoint

// Result is the fusion-fission outcome.
type Result struct {
	// Best is the best partition found with exactly K parts.
	Best *partition.P
	// Energy is the raw (unscaled) objective of Best.
	Energy float64
	// BestPerK maps each visited atom count to the best raw objective seen
	// at that count — the paper reports FF "returns good solutions from 27
	// to 38 partitions" around K = 32.
	BestPerK map[int]float64
	// Steps is the number of fusion/fission events executed.
	Steps int
	// Trace records improvements of the best K-part objective over time.
	Trace []TracePoint
	// Cancelled reports that the search was interrupted by context
	// cancellation and Best is the best partition found so far.
	Cancelled bool
}

// Partition runs fusion-fission on g for k parts.
func Partition(g *graph.Graph, k int, opt Options) (*Result, error) {
	return PartitionContext(context.Background(), g, k, opt)
}

// PartitionContext is Partition under cooperative cancellation: the event
// loop polls ctx once per fusion/fission event (alongside the budget check)
// and, once ctx fires, returns the best partition found so far with
// Result.Cancelled set. A context that is done before the Algorithm 2
// initialization produces a first molecule yields (nil, ctx.Err()).
func PartitionContext(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := g.NumVertices()
	if k < 2 || k > n {
		return nil, fmt.Errorf("core: k=%d out of range [2,%d]", k, n)
	}
	if opt.TMin >= opt.TMax {
		return nil, fmt.Errorf("core: TMin=%g must be below TMax=%g", opt.TMin, opt.TMax)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	s := newSearch(g, k, opt)
	// The loop's budget clock starts here, before the Algorithm 2
	// initialization, exactly as the hand-rolled clock did.
	loop := engine.NewLoop(ctx, engine.LoopOptions{
		Budget: opt.Budget, MaxSteps: opt.MaxSteps,
		PollEvery: 1, BudgetEvery: 64,
		Runtime: opt.Runtime,
	})

	if opt.Initial != nil {
		if opt.Initial.Graph() != g {
			return nil, fmt.Errorf("core: initial partition is for a different graph")
		}
		if opt.Initial.Capacity() < n {
			return nil, fmt.Errorf("core: initial partition needs capacity n=%d for atoms to split freely", n)
		}
		s.cur = opt.Initial.Clone()
	} else if !s.initialize(ctx) { // Algorithm 2
		// Cancelled before the molecule condensed near K atoms: there is no
		// meaningful best-so-far, and normalizing a half-initialized
		// molecule would cost more than the caller is willing to wait.
		return nil, ctx.Err()
	}
	s.normalizeToK()
	s.afterEvent(loop)

	// Algorithm 1. Only the paper-specific event remains in the body: the
	// engine loop owns budget, step cap and cancellation.
	t := opt.TMax
	cool := (opt.TMax - opt.TMin) / float64(opt.NbT)
	for loop.Next() {
		prevE := s.energy.energy(s.cur)
		atom := chooseAtom(s.cur, s.r)
		if atom < 0 {
			break
		}
		tFrac := (t - opt.TMin) / (opt.TMax - opt.TMin)
		var kind lawKind
		var size int
		var eject int
		if s.drawFission(atom, t) {
			kind = lawFission
			size = s.cur.PartSize(atom)
			eject = s.laws.draw(kind, size, s.r.Float64())
			slot := s.doFission(atom, eject, tFrac)
			s.relaxAtoms(atom)
			if slot >= 0 {
				s.relaxAtoms(slot) // the other fragment settles too
			}
		} else {
			kind = lawFusion
			partner := choosePartner(s.cur, atom, tFrac, s.maxPartVW, s.r)
			if partner < 0 {
				continue // isolated atom: nothing to fuse with
			}
			merged := fuse(s.cur, atom, partner)
			size = s.cur.PartSize(merged)
			eject = s.laws.draw(kind, size, s.r.Float64())
			for _, v := range selectEjections(s.cur, merged, eject) {
				nfusion(s.cur, v, merged, s.maxPartVW)
			}
			s.relaxAtoms(merged)
		}
		newE := s.energy.energy(s.cur)
		if !opt.DisableLawLearning {
			s.laws.update(kind, size, eject, newE < prevE, opt.LawDelta)
		}
		s.afterEvent(loop)

		t -= cool
		if t <= opt.TMin {
			// Freezing point: every loose nucleon settles (cold
			// consolidation), then the search restarts from the best
			// partition, reheated — a portfolio peer's strictly better
			// incumbent wins over our own if one arrived.
			s.relaxAll()
			s.afterEvent(loop)
			if !s.adoptForeign(loop) && s.bestOverall != nil {
				s.cur.CopyFrom(s.bestOverall)
			}
			t = opt.TMax
		}
	}

	if s.bestAtK == nil {
		// The search never visited exactly K atoms (tiny budgets): force
		// the best overall partition to K parts and take that.
		s.cur.CopyFrom(s.bestOverall)
		s.normalizeToK()
		s.afterEvent(loop)
	}
	loop.Finish()
	best := s.bestAtK
	res := &Result{
		Best:      best,
		Energy:    s.energy.raw(best),
		BestPerK:  s.bestPerK,
		Steps:     loop.Steps(),
		Trace:     loop.Trace(),
		Cancelled: loop.Cancelled(),
	}
	return res, nil
}

// drawFission applies the paper's choice function: with x the atom size and
// nBar = n/K, choice(x) is the probability of fission — 1 for atoms larger
// than nBar + 1/(2 alpha(t)), 0 below nBar - 1/(2 alpha(t)), and linear in
// between. alpha grows as the system cools, sharpening the band.
func (s *search) drawFission(atom int, t float64) bool {
	opt := s.opt
	x := float64(s.cur.PartSize(atom))
	nBar := float64(s.g.NumVertices()) / float64(s.k)
	alpha := opt.Kappa*(opt.TMax-t)/(opt.TMax-opt.TMin) + opt.R
	if alpha <= 0 {
		alpha = 1e-9
	}
	var pFission float64
	if opt.Choice == ChoiceSigmoid {
		pFission = sigmoidChoice(alpha, x, nBar)
	} else {
		switch half := 1 / (2 * alpha); {
		case x > nBar+half:
			pFission = 1
		case x < nBar-half:
			pFission = 0
		default:
			pFission = alpha*(x-nBar) + 0.5
		}
	}
	if s.cur.NumParts() <= 2 {
		pFission = math.Max(pFission, 0.1) // never collapse to one atom
	}
	if s.cur.PartSize(atom) < 2 {
		return false // singletons cannot split
	}
	return s.r.Float64() < pFission
}

// sigmoidChoice is the ChoiceSigmoid fission probability
// 1/(1+exp(-2 alpha (x-nBar))), with the exponent clamped before the
// exponential is evaluated: the former inline math.Exp was unguarded, so a
// large cold-phase alpha on a far-oversized atom drove the argument past the
// overflow threshold and the probability silently through Inf arithmetic.
// |z| > 700 now short-circuits to the saturated 0/1 the sigmoid converges
// to, and a NaN argument (degenerate alpha) keeps the legacy
// "comparison-with-NaN never fissions" behavior explicitly. The interior
// uses fastmath.Exp (FF_EXACTEXP=1 restores math.Exp); the default Choice is
// the paper's piecewise-linear law, so golden trajectories are unaffected.
func sigmoidChoice(alpha, x, nBar float64) float64 {
	z := -2 * alpha * (x - nBar)
	switch {
	case math.IsNaN(z):
		return 0 // never fission, as the old NaN-poisoned compare decided
	case z > 700:
		return 0 // exp overflows: sigmoid saturated at 0
	case z < -700:
		return 1 // exp underflows: sigmoid saturated at 1
	}
	return 1 / (1 + fastmath.Exp(z))
}

// doFission breaks the atom with percolation, ejects nucleons per the law,
// and lets hot nucleons trigger simple fissions of the atoms they strike
// (section 4.2: "if temperature is high, these nucleons can produce another
// simple fission, with no nucleon ejected"). It returns the new fragment's
// part id, or -1 if the atom could not be split.
func (s *search) doFission(atom, eject int, tFrac float64) int {
	slot := fissionSplit(s.cur, atom, !s.opt.DisablePercolationFission, s.r)
	if slot < 0 {
		return -1
	}
	// Eject from whichever half is larger (the heavy fragment sprays).
	src := atom
	if s.cur.PartSize(slot) > s.cur.PartSize(atom) {
		src = slot
	}
	for _, v := range selectEjections(s.cur, src, eject) {
		if s.highEnergy(tFrac) {
			// The nucleon strikes its best-connected atom and splits it.
			target := strongestOtherAtom(s.cur, v)
			if target >= 0 && s.cur.PartSize(target) >= 2 {
				fissionSplit(s.cur, target, !s.opt.DisablePercolationFission, s.r)
			}
		}
		nfusion(s.cur, v, src, s.maxPartVW)
	}
	return slot
}

func (s *search) highEnergy(tFrac float64) bool {
	return s.r.Float64() < tFrac
}

// strongestOtherAtom returns the part (different from v's) to which v is
// most strongly connected, or -1.
func strongestOtherAtom(p *partition.P, v int) int {
	g := p.Graph()
	own := p.Part(v)
	best, bestW := -1, 0.0
	seen := map[int]bool{}
	for _, u := range g.Neighbors(v) {
		b := p.Part(int(u))
		if b == partition.Unassigned || b == own || seen[b] {
			continue
		}
		seen[b] = true
		if w := p.ConnectionToPart(v, b); w > bestW {
			best, bestW = b, w
		}
	}
	return best
}
