package core

// laws implements the paper's learned fusion/fission laws (section 4.1):
// for every atom size there are two laws — one for fusion, one for fission —
// each a probability distribution over how many nucleons (0..3) the event
// ejects. The number of laws is twice the number of vertices. When a drawn
// ejection count leads to lower energy the law is reinforced: its
// probability gains the input value delta and the alternatives lose a third
// of it each; otherwise it is weakened symmetrically. Probabilities stay
// strictly inside (0,1) and always sum to 1 over the admissible counts.

const (
	maxEject = 3
	probMin  = 0.02
	probMax  = 0.94
)

type lawKind int

const (
	lawFusion lawKind = iota
	lawFission
)

type laws struct {
	table [2][][maxEject + 1]float64 // [kind][atom size] -> probabilities
}

// newLaws creates uniform laws for atoms of size 0..n.
func newLaws(n int) *laws {
	l := &laws{}
	for kind := 0; kind < 2; kind++ {
		l.table[kind] = make([][maxEject + 1]float64, n+1)
		for size := range l.table[kind] {
			m := admissible(lawKind(kind), size)
			for j := 0; j <= m; j++ {
				l.table[kind][size][j] = 1 / float64(m+1)
			}
		}
	}
	return l
}

// admissible returns the largest ejection count allowed for an event on an
// atom of the given size: a fusion result of size s can spare at most s-1
// nucleons, a fission of size s must keep one nucleon on each side.
func admissible(kind lawKind, size int) int {
	var m int
	if kind == lawFusion {
		m = size - 1
	} else {
		m = size - 2
	}
	if m > maxEject {
		m = maxEject
	}
	if m < 0 {
		m = 0
	}
	return m
}

// clampSize maps a size onto the table range.
func (l *laws) clampSize(size int) int {
	if size < 0 {
		return 0
	}
	if size >= len(l.table[0]) {
		return len(l.table[0]) - 1
	}
	return size
}

// draw samples an ejection count for an event of the given kind and size.
func (l *laws) draw(kind lawKind, size int, u float64) int {
	size = l.clampSize(size)
	m := admissible(kind, size)
	probs := &l.table[kind][size]
	total := 0.0
	for j := 0; j <= m; j++ {
		total += probs[j]
	}
	if total <= 0 {
		return 0
	}
	x := u * total
	acc := 0.0
	for j := 0; j <= m; j++ {
		acc += probs[j]
		if x < acc {
			return j
		}
	}
	return m
}

// update reinforces (better) or weakens the law entry for ejecting j
// nucleons in an event of the given kind and size.
func (l *laws) update(kind lawKind, size, j int, better bool, delta float64) {
	size = l.clampSize(size)
	m := admissible(kind, size)
	if m == 0 || j > m {
		return
	}
	probs := &l.table[kind][size]
	sign := 1.0
	if !better {
		sign = -1
	}
	probs[j] += sign * delta
	share := sign * delta / 3
	for i := 0; i <= m; i++ {
		if i != j {
			probs[i] -= share
		}
	}
	// Clamp into (0,1) and renormalize over the admissible range.
	total := 0.0
	for i := 0; i <= m; i++ {
		if probs[i] < probMin {
			probs[i] = probMin
		}
		if probs[i] > probMax {
			probs[i] = probMax
		}
		total += probs[i]
	}
	for i := 0; i <= m; i++ {
		probs[i] /= total
	}
	for i := m + 1; i <= maxEject; i++ {
		probs[i] = 0
	}
}

// probs returns a copy of the distribution for inspection (tests).
func (l *laws) probs(kind lawKind, size int) [maxEject + 1]float64 {
	return l.table[kind][l.clampSize(size)]
}
