package core

import (
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/percolation"
	"repro/internal/rng"
)

// Structural operators of the fusion-fission method: atom selection, fusion
// partner choice (by size, distance and temperature), percolation fission,
// ejection of loosely bound nucleons, and nucleon reabsorption (nfusion).

// chooseAtom returns a uniformly random non-empty part id, or -1.
func chooseAtom(p *partition.P, r *rand.Rand) int {
	parts := p.NonEmptyParts()
	if len(parts) == 0 {
		return -1
	}
	return parts[r.Intn(len(parts))]
}

// choosePartner picks the atom to fuse with `atom`. The paper selects it
// "according to its size, its distance to the first one, and temperature":
// the distance between two atoms is the inverse of the connecting edge
// weight (infinite when unconnected), so the selection probability is
// proportional to the connection weight; high temperature tilts the draw
// toward big partners (hot plasma fuses heavy nuclei more easily). Partners
// whose combined weight would exceed maxVW are excluded (0 disables) so
// that size-insensitive objectives cannot grow one giant atom.
func choosePartner(p *partition.P, atom int, tFrac, maxVW float64, r *rand.Rand) int {
	conn := p.ConnectedParts(atom)
	if len(conn) == 0 {
		return -1
	}
	ownVW := p.PartVertexWeight(atom)
	meanSize := float64(p.Graph().NumVertices()) / float64(maxInt(1, p.NumParts()))
	ids := make([]int, 0, len(conn))
	weights := make([]float64, 0, len(conn))
	for b, w := range conn {
		if maxVW > 0 && ownVW+p.PartVertexWeight(b) > maxVW {
			continue
		}
		ids = append(ids, b)
		bias := 1 + tFrac*float64(p.PartSize(b))/meanSize
		weights = append(weights, w*bias)
	}
	// Map iteration order is random; make the draw deterministic by seed.
	sortPairs(ids, weights)
	pick := rng.WeightedChoice(r, weights)
	if pick < 0 {
		return -1
	}
	return ids[pick]
}

func sortPairs(ids []int, weights []float64) {
	for i := 1; i < len(ids); i++ {
		id, w := ids[i], weights[i]
		j := i - 1
		for j >= 0 && ids[j] > id {
			ids[j+1], weights[j+1] = ids[j], weights[j]
			j--
		}
		ids[j+1], weights[j+1] = id, w
	}
}

// fuse merges partner into atom and returns the merged part id.
func fuse(p *partition.P, atom, partner int) int {
	p.MergeParts(atom, partner)
	return atom
}

// fissionSplit cuts the given atom in two with percolation (section 4.4):
// two seeds are chosen as a farthest pair inside the atom's induced
// subgraph and the liquids split it. Returns the new part id, or -1 if the
// atom cannot be split. When usePercolation is false (ablation), the split
// is a random balanced one.
func fissionSplit(p *partition.P, atom int, usePercolation bool, r *rand.Rand) int {
	members := p.VerticesOf(atom)
	if len(members) < 2 {
		return -1
	}
	slot := p.EmptySlot()
	if slot < 0 {
		return -1
	}
	var side []int32
	if usePercolation {
		sub := graph.Induced(p.Graph(), members)
		seeds := graph.FarthestPointSeeds(sub.G, r.Intn(len(members)), 2)
		if len(seeds) < 2 {
			// Disconnected or degenerate: split by component membership.
			side = fallbackSplit(sub.G, len(members))
		} else {
			side = percolation.Bisect(sub.G, seeds[0], seeds[1])
		}
	} else {
		side = make([]int32, len(members))
		for i := range side {
			side[i] = int32(r.Intn(2))
		}
	}
	moved := 0
	for i, v := range members {
		if side[i] == 1 {
			p.Move(int(v), slot)
			moved++
		}
	}
	if moved == 0 || moved == len(members) {
		// Degenerate split: force one vertex across so both halves exist.
		p.Move(int(members[0]), pickSide(moved, atom, slot))
	}
	return slot
}

func pickSide(moved, atom, slot int) int {
	if moved == 0 {
		return slot
	}
	return atom
}

// fallbackSplit separates the first connected component from the rest.
func fallbackSplit(sub *graph.Graph, n int) []int32 {
	comp, count := graph.Components(sub)
	side := make([]int32, n)
	if count < 2 {
		for i := n / 2; i < n; i++ {
			side[i] = 1
		}
		return side
	}
	for i, c := range comp {
		if c != comp[0] {
			side[i] = 1
		}
	}
	return side
}

// selectEjections returns up to j vertices of the atom that are the most
// loosely bound: smallest internal-minus-external connection, the nucleons
// a nuclear event would spray out. Vertices are only ejected while the atom
// keeps at least one member.
func selectEjections(p *partition.P, atom, j int) []int {
	members := p.VerticesOf(atom)
	if j <= 0 || len(members) <= 1 {
		return nil
	}
	if j > len(members)-1 {
		j = len(members) - 1
	}
	list := make([]ejectCand, 0, len(members))
	g := p.Graph()
	for _, v := range members {
		internal := p.ConnectionToPart(int(v), atom)
		external := g.WeightedDegree(int(v)) - internal
		list = append(list, ejectCand{v: int(v), bind: internal - external, bound: external > 0})
	}
	sort.Slice(list, func(a, b int) bool { return list[a].looserThan(list[b]) })
	out := make([]int, 0, j)
	for _, s := range list {
		if len(out) == j {
			break
		}
		out = append(out, s.v)
	}
	return out
}

// ejectCand scores how loosely a nucleon is bound to its atom.
type ejectCand struct {
	v     int
	bind  float64 // internal minus external connection weight
	bound bool    // has any external connection
}

// looserThan orders candidates loosest-first, preferring nucleons with
// external contacts, which can be reabsorbed meaningfully.
func (a ejectCand) looserThan(b ejectCand) bool {
	if a.bound != b.bound {
		return a.bound
	}
	if a.bind != b.bind {
		return a.bind < b.bind
	}
	return a.v < b.v
}

// nfusion reabsorbs a free nucleon into the connected atom with the
// strongest bond, excluding `exclude` (its previous atom) when another
// option exists and skipping atoms already heavier than maxVW (0 disables
// the cap). Returns the receiving part id.
func nfusion(p *partition.P, v int, exclude int, maxVW float64) int {
	g := p.Graph()
	bestPart, bestW := -1, 0.0
	var cands []int
	seen := map[int]bool{}
	for _, u := range g.Neighbors(v) {
		b := p.Part(int(u))
		if b == partition.Unassigned || b == p.Part(v) || seen[b] {
			continue
		}
		seen[b] = true
		cands = append(cands, b)
	}
	vw := g.VertexWeight(v)
	for _, b := range cands {
		if b == exclude && len(cands) > 1 {
			continue
		}
		if maxVW > 0 && p.PartVertexWeight(b)+vw > maxVW {
			continue
		}
		if w := p.ConnectionToPart(v, b); w > bestW {
			bestPart, bestW = b, w
		}
	}
	if bestPart >= 0 && p.PartSize(p.Part(v)) > 1 {
		p.Move(v, bestPart)
	}
	return p.Part(v)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
