package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Property: moveDelta (the O(deg) incremental evaluation used by nucleon
// relaxation) agrees with the difference of full smoothed evaluations, for
// every objective, on random graphs, partitions and moves.
func TestMoveDeltaMatchesFullEvaluation(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 6 + r.Intn(30)
		g := graph.GNP(n, 0.25, seed)
		k := 2 + r.Intn(4)
		assign := make([]int32, n)
		for v := range assign {
			assign[v] = int32(r.Intn(k))
		}
		p, err := partition.FromAssignment(g, assign, n)
		if err != nil {
			return false
		}
		for _, obj := range objective.All {
			e := newEnergyModel(g, obj, k)
			for trial := 0; trial < 25; trial++ {
				v := r.Intn(n)
				a := p.Part(v)
				if p.PartSize(a) <= 1 {
					continue
				}
				b := -1
				for _, u := range g.Neighbors(v) {
					if pb := p.Part(int(u)); pb != a {
						b = pb
						break
					}
				}
				if b < 0 {
					continue
				}
				before := e.energy(p)
				delta := e.moveDelta(p, v, a, b)
				p.Move(v, b)
				after := e.energy(p)
				p.Move(v, a)
				want := after - before
				// The full-evaluation difference cancels two large sums
				// (smoothed Mcut terms can reach cut/eps), so the
				// comparison tolerance must scale with their magnitude —
				// moveDelta itself only touches the two affected terms
				// and is the more accurate side.
				tol := 1e-9*(1+math.Abs(want)) + 1e-12*(math.Abs(before)+math.Abs(after))
				if math.Abs(delta-want) > tol {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoidChoiceRuns(t *testing.T) {
	g := graph.Grid2D(8, 8)
	res, err := Partition(g, 4, Options{Seed: 2, MaxSteps: 1500, Choice: ChoiceSigmoid})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.NumParts() != 4 {
		t.Fatalf("NumParts = %d", res.Best.NumParts())
	}
	// Distinct rngs consumption means the linear run differs; both valid.
	lin, err := Partition(g, 4, Options{Seed: 2, MaxSteps: 1500, Choice: ChoiceLinear})
	if err != nil {
		t.Fatal(err)
	}
	if lin.Best.NumParts() != 4 {
		t.Fatalf("linear NumParts = %d", lin.Best.NumParts())
	}
}
