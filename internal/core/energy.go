package core

import (
	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
)

// Energy scaling (section 4.1). The objective functions of section 1 are
// defined for a fixed part count and generally shrink as parts merge (no
// partition at all has the smallest value), so fusion-fission rescales the
// objective with a function shaped like the nuclear binding-energy curve:
// partitions of equal quality but different atom counts get comparable
// energies, with the minimum anchored at the target count K. Below K the
// penalty rises steeply (light nuclei: binding energy climbs fast), above K
// it rises gently (heavy nuclei: slow decline). At exactly K the penalty is
// 1, so energies there are the raw objective values reported in Table 1.

type energyModel struct {
	obj    objective.Objective
	k      int     // target atom count
	eps    float64 // smoothing for degenerate parts
	cBelow float64
	cAbove float64
}

func newEnergyModel(g *graph.Graph, obj objective.Objective, k int) *energyModel {
	n := g.NumVertices()
	eps := 1e-6
	if n > 0 {
		eps = 1e-6 * (2 * g.TotalEdgeWeight() / float64(n))
	}
	return &energyModel{obj: obj, k: k, eps: eps, cBelow: 8, cAbove: 2}
}

// penalty implements the binding-energy-shaped scaling.
func (e *energyModel) penalty(numAtoms int) float64 {
	k := float64(e.k)
	d := float64(numAtoms) - k
	if d < 0 {
		rel := -d / k
		return 1 + e.cBelow*rel*rel
	}
	rel := d / k
	return 1 + e.cAbove*rel
}

// energy returns the scaled objective of p.
func (e *energyModel) energy(p *partition.P) float64 {
	return e.obj.EvaluateSmoothed(p, e.eps) * e.penalty(p.NumParts())
}

// raw returns the unscaled, unsmoothed objective (for reporting).
func (e *energyModel) raw(p *partition.P) float64 {
	return e.obj.Evaluate(p)
}

// term returns one part's smoothed objective contribution from its cut and
// ordered internal weight.
func (e *energyModel) term(cut, w float64) float64 {
	switch e.obj {
	case objective.Cut:
		return cut
	case objective.NCut:
		if d := cut + w + e.eps; d > 0 {
			return cut / d
		}
		return 0
	default: // MCut
		return cut / (w + e.eps)
	}
}

// moveDelta returns the change of the smoothed objective if vertex v moved
// from part a to part b, in O(deg v), without mutating p. Both parts must be
// non-empty and the move must not empty a (the part count, and hence the
// binding-energy penalty, stays constant).
func (e *energyModel) moveDelta(p *partition.P, v, a, b int) float64 {
	g := p.Graph()
	connA := p.ConnectionToPart(v, a)
	connB := p.ConnectionToPart(v, b)
	degO := g.WeightedDegree(v) - connA - connB

	cutA, wA := p.PartCut(a), p.PartInternalOrdered(a)
	cutB, wB := p.PartCut(b), p.PartInternalOrdered(b)
	before := e.term(cutA, wA) + e.term(cutB, wB)
	// Leaving a: internal v-a edges become crossing; v's crossing edges no
	// longer touch a. Entering b symmetrically.
	cutA2 := cutA + connA - connB - degO
	wA2 := wA - 2*connA
	cutB2 := cutB + connA - connB + degO
	wB2 := wB + 2*connB
	after := e.term(cutA2, wA2) + e.term(cutB2, wB2)
	return (after - before) * e.penalty(p.NumParts())
}
