package core

import (
	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/score"
)

// Energy scaling (section 4.1). The objective functions of section 1 are
// defined for a fixed part count and generally shrink as parts merge (no
// partition at all has the smallest value), so fusion-fission rescales the
// objective with a function shaped like the nuclear binding-energy curve:
// partitions of equal quality but different atom counts get comparable
// energies, with the minimum anchored at the target count K. Below K the
// penalty rises steeply (light nuclei: binding energy climbs fast), above K
// it rises gently (heavy nuclei: slow decline). At exactly K the penalty is
// 1, so energies there are the raw objective values reported in Table 1.
//
// The model is a thin binding-energy wrapper over the shared scoring layer
// (internal/score): whole-molecule energies delegate to the smoothed
// objective, per-move deltas to score.Delta. Fusion-fission bulk-mutates
// and wholesale-replaces its molecule between delta queries (fissions,
// merges, foreign adoptions), so the stateless score.Delta fits here where
// a bound score.Tracker would be perpetually stale.

type energyModel struct {
	obj    objective.Objective
	k      int     // target atom count
	eps    float64 // smoothing for degenerate parts
	cBelow float64
	cAbove float64
}

func newEnergyModel(g *graph.Graph, obj objective.Objective, k int) *energyModel {
	n := g.NumVertices()
	eps := 1e-6
	if n > 0 {
		eps = 1e-6 * (2 * g.TotalEdgeWeight() / float64(n))
	}
	return &energyModel{obj: obj, k: k, eps: eps, cBelow: 8, cAbove: 2}
}

// penalty implements the binding-energy-shaped scaling.
func (e *energyModel) penalty(numAtoms int) float64 {
	k := float64(e.k)
	d := float64(numAtoms) - k
	if d < 0 {
		rel := -d / k
		return 1 + e.cBelow*rel*rel
	}
	rel := d / k
	return 1 + e.cAbove*rel
}

// energy returns the scaled objective of p.
func (e *energyModel) energy(p *partition.P) float64 {
	return e.obj.EvaluateSmoothed(p, e.eps) * e.penalty(p.NumParts())
}

// raw returns the unscaled, unsmoothed objective (for reporting).
func (e *energyModel) raw(p *partition.P) float64 {
	return e.obj.Evaluate(p)
}

// moveDelta returns the change of the scaled energy if vertex v moved from
// part a to part b, in O(deg v), without mutating p. Both parts must be
// non-empty and the move must not empty a (the part count, and hence the
// binding-energy penalty, stays constant).
func (e *energyModel) moveDelta(p *partition.P, v, a, b int) float64 {
	return score.Delta(p, e.obj, e.eps, v, a, b) * e.penalty(p.NumParts())
}
