package core

import (
	"context"
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/percolation"
	"repro/internal/rng"
)

// partitionWithCapacity rebuilds an assignment with full (n) part capacity,
// the shape fusion-fission needs so atoms can split into fresh slots.
func partitionWithCapacity(g *graph.Graph, assign []int32) (*partition.P, error) {
	return partition.FromAssignment(g, assign, g.NumVertices())
}

func TestLawsSimplexInvariant(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		l := newLaws(40)
		for step := 0; step < 500; step++ {
			kind := lawKind(r.Intn(2))
			size := r.Intn(41)
			m := admissible(kind, size)
			if m == 0 {
				continue
			}
			j := r.Intn(m + 1)
			l.update(kind, size, j, r.Intn(2) == 0, 0.04)
			probs := l.probs(kind, size)
			total := 0.0
			for i := 0; i <= m; i++ {
				if probs[i] <= 0 || probs[i] >= 1 {
					return false
				}
				total += probs[i]
			}
			for i := m + 1; i <= maxEject; i++ {
				if probs[i] != 0 {
					return false
				}
			}
			if math.Abs(total-1) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLawsLearning(t *testing.T) {
	l := newLaws(20)
	before := l.probs(lawFusion, 10)[1]
	for i := 0; i < 10; i++ {
		l.update(lawFusion, 10, 1, true, 0.04)
	}
	after := l.probs(lawFusion, 10)[1]
	if after <= before {
		t.Fatalf("reinforcement did not raise probability: %g -> %g", before, after)
	}
	for i := 0; i < 30; i++ {
		l.update(lawFusion, 10, 1, false, 0.04)
	}
	weakened := l.probs(lawFusion, 10)[1]
	if weakened >= after {
		t.Fatalf("weakening did not lower probability: %g -> %g", after, weakened)
	}
	// probMin is a soft floor: the final renormalization can dip slightly
	// below it, but the probability must stay well away from zero.
	if weakened < probMin/2 {
		t.Fatalf("probability collapsed: %g", weakened)
	}
}

func TestAdmissibleCounts(t *testing.T) {
	cases := []struct {
		kind lawKind
		size int
		want int
	}{
		{lawFusion, 0, 0}, {lawFusion, 1, 0}, {lawFusion, 2, 1},
		{lawFusion, 4, 3}, {lawFusion, 100, 3},
		{lawFission, 2, 0}, {lawFission, 3, 1}, {lawFission, 5, 3},
	}
	for _, c := range cases {
		if got := admissible(c.kind, c.size); got != c.want {
			t.Errorf("admissible(%v,%d) = %d, want %d", c.kind, c.size, got, c.want)
		}
	}
}

func TestEnergyPenaltyShape(t *testing.T) {
	g := graph.Grid2D(8, 8)
	e := newEnergyModel(g, objective.MCut, 8)
	if p := e.penalty(8); p != 1 {
		t.Fatalf("penalty at target = %g, want 1", p)
	}
	// Steeper below than above, mirroring the binding-energy curve.
	below := e.penalty(4) - 1
	above := e.penalty(12) - 1
	if below <= above {
		t.Fatalf("penalty not asymmetric: below %g, above %g", below, above)
	}
	// Monotone away from the target.
	if e.penalty(2) <= e.penalty(4) || e.penalty(16) <= e.penalty(12) {
		t.Fatal("penalty not monotone away from target")
	}
}

func TestFusionFissionGrid(t *testing.T) {
	g := graph.Grid2D(10, 10)
	res, err := Partition(g, 4, Options{Seed: 1, MaxSteps: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.NumParts() != 4 {
		t.Fatalf("NumParts = %d, want 4", res.Best.NumParts())
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.Energy, 1) {
		t.Fatal("result energy infinite")
	}
	if len(res.BestPerK) < 2 {
		t.Fatalf("part count never drifted: bestPerK has %d entries", len(res.BestPerK))
	}
}

func TestFusionFissionBeatsNaiveOnDumbbell(t *testing.T) {
	g := graph.Dumbbell(12, 12, 1)
	res, err := Partition(g, 2, Options{Seed: 5, MaxSteps: 3000, Objective: objective.Cut})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy != 2 {
		t.Fatalf("FF cut = %g, want optimal 2", res.Energy)
	}
}

func TestFusionFissionImprovesOnPercolation(t *testing.T) {
	g := graph.RandomGeometric(150, 0.15, 9)
	perc, err := percolation.Partition(g, 8, percolation.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	percE := objective.MCut.Evaluate(perc)
	res, err := Partition(g, 8, Options{Seed: 9, MaxSteps: 12000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy > percE*1.05 {
		t.Fatalf("FF (%.4f) much worse than percolation (%.4f)", res.Energy, percE)
	}
}

func TestFusionFissionDeterministic(t *testing.T) {
	g := graph.Grid2D(8, 8)
	r1, err := Partition(g, 4, Options{Seed: 3, MaxSteps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Partition(g, 4, Options{Seed: 3, MaxSteps: 1500})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Energy != r2.Energy {
		t.Fatalf("non-deterministic: %g vs %g", r1.Energy, r2.Energy)
	}
}

func TestFusionFissionBudget(t *testing.T) {
	g := graph.Grid2D(12, 12)
	start := time.Now()
	_, err := Partition(g, 6, Options{Seed: 1, Budget: 40 * time.Millisecond, MaxSteps: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("budget ignored")
	}
}

func TestFusionFissionNonPowerOfTwoK(t *testing.T) {
	g := graph.RandomGeometric(90, 0.2, 2)
	for _, k := range []int{3, 5, 7} {
		res, err := Partition(g, k, Options{Seed: int64(k), MaxSteps: 2500})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Best.NumParts() != k {
			t.Fatalf("k=%d: NumParts = %d", k, res.Best.NumParts())
		}
	}
}

func TestBestPerKNeighborhood(t *testing.T) {
	// The paper: FF "returns good solutions from 27 to 38 partitions" when
	// targeting 32; at small scale, targeting 6 should populate several
	// nearby part counts.
	g := graph.RandomGeometric(120, 0.18, 4)
	res, err := Partition(g, 6, Options{Seed: 4, MaxSteps: 8000})
	if err != nil {
		t.Fatal(err)
	}
	nearby := 0
	for kk := 4; kk <= 8; kk++ {
		if _, ok := res.BestPerK[kk]; ok {
			nearby++
		}
	}
	if nearby < 3 {
		t.Fatalf("only %d part counts near the target visited: %v", nearby, res.BestPerK)
	}
}

func TestAblationsRun(t *testing.T) {
	g := graph.Grid2D(8, 8)
	for _, opt := range []Options{
		{Seed: 1, MaxSteps: 1200, DisablePercolationFission: true},
		{Seed: 1, MaxSteps: 1200, DisableLawLearning: true},
	} {
		res, err := Partition(g, 4, opt)
		if err != nil {
			t.Fatal(err)
		}
		if res.Best.NumParts() != 4 {
			t.Fatalf("ablation lost parts: %d", res.Best.NumParts())
		}
	}
}

func TestInitialPartitionPath(t *testing.T) {
	g := graph.Grid2D(8, 8)
	init, err := percolation.Partition(g, 4, percolation.Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// FF needs capacity n to split atoms; a k-capacity partition must be
	// rejected, an n-capacity one accepted.
	if _, err := Partition(g, 4, Options{Seed: 2, MaxSteps: 500, Initial: init}); err == nil {
		t.Fatal("k-capacity initial partition accepted")
	}
	wide, err := partitionWithCapacity(g, init.Assignment())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Partition(g, 4, Options{Seed: 2, MaxSteps: 500, Initial: wide})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.NumParts() != 4 {
		t.Fatalf("NumParts = %d", res.Best.NumParts())
	}
}

func TestCoreErrors(t *testing.T) {
	g := graph.Path(6)
	if _, err := Partition(g, 1, Options{}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Partition(g, 7, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Partition(g, 2, Options{TMax: 0.1, TMin: 0.5}); err == nil {
		t.Fatal("TMin>TMax accepted")
	}
}

func TestTraceMonotoneAndAtK(t *testing.T) {
	g := graph.RandomGeometric(100, 0.2, 6)
	res, err := Partition(g, 5, Options{Seed: 6, MaxSteps: 6000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty trace")
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Energy > res.Trace[i-1].Energy+1e-9 {
			t.Fatalf("trace not monotone at %d", i)
		}
	}
	last := res.Trace[len(res.Trace)-1].Energy
	if math.Abs(last-res.Energy) > 1e-9 {
		t.Fatalf("trace end %g != result energy %g", last, res.Energy)
	}
}

func TestPartitionContextCancelReturnsBestSoFar(t *testing.T) {
	g := graph.Grid2D(10, 10)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := PartitionContext(ctx, g, 4, Options{
		Seed: 3, Budget: time.Minute, MaxSteps: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("returned %v after a 50ms cancel", elapsed)
	}
	if !res.Cancelled {
		t.Fatal("interrupted run not marked Cancelled")
	}
	if res.Best == nil || res.Best.NumParts() != 4 {
		t.Fatalf("best-so-far invalid: %+v", res.Best)
	}
}

// TestSigmoidChoiceClamped is the regression test for the formerly unguarded
// sigmoid exponential: extreme alpha/size combinations must saturate to
// exact 0 or 1 instead of flowing through Inf arithmetic, NaN must fall back
// to "never fission", and the interior must stay a true sigmoid.
func TestSigmoidChoiceClamped(t *testing.T) {
	nBar := 100.0
	if p := sigmoidChoice(1e6, 1e6, nBar); p != 1 {
		t.Errorf("oversized atom, sharp alpha: pFission = %v, want saturated 1", p)
	}
	if p := sigmoidChoice(1e6, 1, nBar); p != 0 {
		t.Errorf("undersized atom, sharp alpha: pFission = %v, want saturated 0", p)
	}
	if p := sigmoidChoice(math.Inf(1), nBar, nBar); p != 0 {
		t.Errorf("NaN exponent: pFission = %v, want the legacy never-fission 0", p)
	}
	if p := sigmoidChoice(0.05, nBar, nBar); p != 0.5 {
		t.Errorf("balanced atom: pFission = %v, want exactly 0.5", p)
	}
	// Interior: monotone in x, bounded in (0, 1), and within the fastmath
	// error of the closed form.
	prev := -1.0
	for x := 60.0; x <= 140; x += 5 {
		p := sigmoidChoice(0.05, x, nBar)
		if p <= 0 || p >= 1 {
			t.Fatalf("interior x=%v escaped (0,1): %v", x, p)
		}
		if p <= prev {
			t.Fatalf("sigmoid not strictly increasing at x=%v: %v <= %v", x, p, prev)
		}
		prev = p
		want := 1 / (1 + math.Exp(-2*0.05*(x-nBar)))
		if math.Abs(p-want) > 1e-9*want {
			t.Fatalf("x=%v: sigmoidChoice %v vs closed form %v", x, p, want)
		}
	}
}
