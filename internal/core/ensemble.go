package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// EnsembleOptions configures a parallel multi-start fusion-fission run.
type EnsembleOptions struct {
	// Base holds the per-run options; Base.Seed seeds run 0, run i uses
	// Base.Seed + i.
	Base Options
	// Runs is the number of independent searches (default GOMAXPROCS).
	Runs int
	// Workers caps concurrency (default GOMAXPROCS).
	Workers int
}

// Ensemble runs several independent fusion-fission searches concurrently and
// returns the best result (lowest raw objective at exactly K parts). The
// searches share nothing, so the speedup is embarrassingly parallel — the
// natural way to spend a multicore budget on a sequential metaheuristic.
func Ensemble(g *graph.Graph, k int, opt EnsembleOptions) (*Result, error) {
	return EnsembleContext(context.Background(), g, k, opt)
}

// EnsembleContext is Ensemble under cooperative cancellation: ctx is shared
// by every run, so one cancellation stops them all and the best of the
// partial results is returned with Result.Cancelled set. A context that is
// done before any run produced a solution yields (nil, ctx.Err()).
func EnsembleContext(ctx context.Context, g *graph.Graph, k int, opt EnsembleOptions) (*Result, error) {
	runs := opt.Runs
	if runs <= 0 {
		runs = runtime.GOMAXPROCS(0)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > runs {
		workers = runs
	}

	type outcome struct {
		res *Result
		err error
	}
	jobs := make(chan int64)
	results := make(chan outcome, runs)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for seed := range jobs {
				o := opt.Base
				o.Seed = seed
				res, err := PartitionContext(ctx, g, k, o)
				results <- outcome{res, err}
			}
		}()
	}
	go func() {
		for i := int64(0); i < int64(runs); i++ {
			jobs <- opt.Base.Seed + i
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	var best *Result
	var firstErr error
	failed := 0
	anyCancelled := false
	for out := range results {
		if out.err != nil {
			failed++
			if firstErr == nil {
				firstErr = out.err
			}
			continue
		}
		anyCancelled = anyCancelled || out.res.Cancelled
		if best == nil || out.res.Energy < best.Energy {
			best = out.res
		}
	}
	if best == nil {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("core: all %d ensemble runs failed: %w", failed, firstErr)
	}
	best.Cancelled = anyCancelled
	return best, nil
}
