package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
)

func TestEnsembleReturnsBestOfRuns(t *testing.T) {
	g := graph.RandomGeometric(100, 0.18, 2)
	base := Options{Objective: objective.MCut, MaxSteps: 1500, Seed: 10}
	// Individual runs for reference.
	worst := 0.0
	bestSingle := 1e300
	for i := int64(0); i < 4; i++ {
		o := base
		o.Seed = base.Seed + i
		res, err := Partition(g, 5, o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Energy > worst {
			worst = res.Energy
		}
		if res.Energy < bestSingle {
			bestSingle = res.Energy
		}
	}
	ens, err := Ensemble(g, 5, EnsembleOptions{Base: base, Runs: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if ens.Energy > bestSingle+1e-9 {
		t.Fatalf("ensemble %.4f worse than best single run %.4f", ens.Energy, bestSingle)
	}
	if ens.Best.NumParts() != 5 {
		t.Fatalf("NumParts = %d", ens.Best.NumParts())
	}
}

func TestEnsembleDefaults(t *testing.T) {
	g := graph.Grid2D(8, 8)
	res, err := Ensemble(g, 4, EnsembleOptions{Base: Options{MaxSteps: 400, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.NumParts() != 4 {
		t.Fatalf("NumParts = %d", res.Best.NumParts())
	}
}

func TestEnsembleAllFail(t *testing.T) {
	g := graph.Path(3)
	// k > n makes every run fail.
	if _, err := Ensemble(g, 5, EnsembleOptions{Base: Options{MaxSteps: 10}, Runs: 3}); err == nil {
		t.Fatal("expected error when all runs fail")
	}
}
