package core

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
)

// search carries the mutable state of one fusion-fission run.
type search struct {
	g    *graph.Graph
	k    int
	opt  Options
	r    *rand.Rand
	laws *laws

	energy *energyModel
	cur    *partition.P
	// maxPartVW softly caps vertex-level flows into any single atom so
	// that size-insensitive objectives (Cut) cannot grow one giant part;
	// the sets must stay "of roughly equal size" (section 1).
	maxPartVW float64

	bestOverall  *partition.P // lowest scaled energy, any atom count
	bestOverallE float64
	bestAtK      *partition.P // lowest raw objective among exactly-K states
	bestAtKE     float64
	bestPerK     map[int]float64
}

func newSearch(g *graph.Graph, k int, opt Options) *search {
	// Ncut and Mcut penalize starved parts through their denominators, so
	// atoms self-balance and a loose cap suffices; plain Cut has no such
	// pressure — there the "roughly equal size" constraint of section 1 is
	// what makes min-cut non-trivial, so the cap is tight.
	capFactor := 2.0
	if opt.Objective == objective.Cut {
		capFactor = 1.3
	}
	return &search{
		g:            g,
		k:            k,
		opt:          opt,
		r:            rng.New(opt.Seed),
		laws:         newLaws(g.NumVertices()),
		energy:       newEnergyModel(g, opt.Objective, k),
		cur:          partition.New(g, g.NumVertices()),
		maxPartVW:    capFactor * g.TotalVertexWeight() / float64(k),
		bestOverallE: math.Inf(1),
		bestAtKE:     math.Inf(1),
		bestPerK:     make(map[int]float64),
	}
}

// afterEvent updates the incumbents and the trace from the current state.
// The first state seen is always recorded, even at infinite energy (e.g.
// K = n, where every exactly-K molecule is all singletons and Mcut/Ncut
// diverge) — a nil incumbent must never survive a visit to a valid state.
func (s *search) afterEvent(loop *engine.Loop) {
	e := s.energy.energy(s.cur)
	if s.bestOverall == nil || e < s.bestOverallE {
		s.bestOverallE = e
		if s.bestOverall == nil {
			s.bestOverall = s.cur.Clone()
		} else {
			s.bestOverall.CopyFrom(s.cur)
		}
	}
	kNow := s.cur.NumParts()
	raw := s.energy.raw(s.cur)
	if old, ok := s.bestPerK[kNow]; !ok || raw < old {
		s.bestPerK[kNow] = raw
	}
	if kNow == s.k && (s.bestAtK == nil || raw < s.bestAtKE) {
		s.bestAtKE = raw
		if s.bestAtK == nil {
			s.bestAtK = s.cur.Clone()
		} else {
			s.bestAtK.CopyFrom(s.cur)
		}
		loop.Improved(raw, s.bestAtK.Compact)
	}
}

// adoptForeign replaces the current molecule with a portfolio peer's
// incumbent when it strictly beats this worker's own best at K — the
// KaFFPaE-style re-seeding, applied at the freezing point where the search
// restarts from an incumbent anyway. Reports whether it adopted.
func (s *search) adoptForeign(loop *engine.Loop) bool {
	assign, e, ok := loop.Foreign()
	if !ok || (s.bestAtK != nil && e >= s.bestAtKE) {
		return false
	}
	p, err := partition.FromAssignment(s.g, assign, s.g.NumVertices())
	if err != nil {
		return false
	}
	s.cur = p
	return true
}

// initialize is Algorithm 2: the run starts from the molecule in which every
// vertex is its own atom (maximal energy) and fusion events — with law-drawn
// nucleon ejections, but no temperature and no nucleon-induced fission —
// group the atoms until the target count is reached. It reports false if ctx
// was cancelled before the molecule was fully condensed.
func (s *search) initialize(ctx context.Context) bool {
	n := s.g.NumVertices()
	for v := 0; v < n; v++ {
		s.cur.Assign(v, v) // atom per vertex
	}
	poll := engine.NewPoll(ctx, 64)
	nBar := float64(n) / float64(s.k)
	maxSteps := 8 * n // generous: each fusion removes an atom
	for step := 0; step < maxSteps && s.cur.NumParts() > s.k; step++ {
		if poll.Due() {
			return false
		}
		atom := chooseAtom(s.cur, s.r)
		if atom < 0 {
			break
		}
		prevE := s.energy.energy(s.cur)
		// Initialization heuristic: fuse while the atom is below the mean
		// size, occasionally split clearly oversized atoms.
		size := float64(s.cur.PartSize(atom))
		if size > 2*nBar && s.cur.PartSize(atom) >= 2 && s.r.Float64() < 0.5 {
			eject := s.laws.draw(lawFission, int(size), s.r.Float64())
			slot := fissionSplit(s.cur, atom, !s.opt.DisablePercolationFission, s.r)
			if slot >= 0 {
				for _, v := range selectEjections(s.cur, atom, eject) {
					nfusion(s.cur, v, atom, s.maxPartVW)
				}
				if !s.opt.DisableLawLearning {
					s.laws.update(lawFission, int(size), eject, s.energy.energy(s.cur) < prevE, s.opt.LawDelta)
				}
			}
			continue
		}
		partner := choosePartner(s.cur, atom, 0, s.maxPartVW, s.r)
		if partner < 0 {
			continue
		}
		merged := fuse(s.cur, atom, partner)
		msize := s.cur.PartSize(merged)
		eject := s.laws.draw(lawFusion, msize, s.r.Float64())
		for _, v := range selectEjections(s.cur, merged, eject) {
			nfusion(s.cur, v, merged, s.maxPartVW)
		}
		if !s.opt.DisableLawLearning {
			s.laws.update(lawFusion, msize, eject, s.energy.energy(s.cur) < prevE, s.opt.LawDelta)
		}
	}
	return true
}

// relaxAtoms runs one pass of nucleon relaxation over the boundary of the
// given atom and its neighborhood: every nucleon of the atom whose move to a
// connected atom lowers the scaled energy is reabsorbed there (the same
// nucleon-movement mechanism as ejection, applied until the event's region
// is locally stable). Part counts never change — a nucleon never leaves a
// singleton — so the penalty term is constant across the candidate moves.
func (s *search) relaxAtoms(atom int) {
	if s.cur.PartSize(atom) == 0 {
		return
	}
	for _, v32 := range s.cur.VerticesOf(atom) {
		v := int(v32)
		from := s.cur.Part(v)
		if s.cur.PartSize(from) <= 1 {
			continue
		}
		// Candidate atoms: those v touches, below the soft weight cap.
		// moveDelta makes each candidate O(deg v) instead of a full
		// objective evaluation.
		bestTo, bestDelta := -1, -1e-12
		vw := s.g.VertexWeight(v)
		seen := map[int]bool{from: true}
		for _, u := range s.g.Neighbors(v) {
			b := s.cur.Part(int(u))
			if b == partition.Unassigned || seen[b] {
				continue
			}
			seen[b] = true
			if s.cur.PartVertexWeight(b)+vw > s.maxPartVW {
				continue
			}
			if d := s.energy.moveDelta(s.cur, v, from, b); d < bestDelta {
				bestTo, bestDelta = b, d
			}
		}
		if bestTo >= 0 {
			s.cur.Move(v, bestTo)
		}
	}
}

// relaxAll sweeps every atom once with nucleon relaxation — the freezing-
// point consolidation: at minimal temperature every loose nucleon settles
// into its best-bound atom (section 4.2's cold regime, where ejected
// nucleons are "incorporated into atoms"). Runs once per temperature cycle.
func (s *search) relaxAll() {
	for pass := 0; pass < 2; pass++ {
		moved := false
		for v := 0; v < s.g.NumVertices(); v++ {
			from := s.cur.Part(v)
			if from == partition.Unassigned || s.cur.PartSize(from) <= 1 {
				continue
			}
			bestTo, bestDelta := -1, -1e-12
			vw := s.g.VertexWeight(v)
			seen := map[int]bool{from: true}
			for _, u := range s.g.Neighbors(v) {
				b := s.cur.Part(int(u))
				if b == partition.Unassigned || seen[b] {
					continue
				}
				seen[b] = true
				if s.cur.PartVertexWeight(b)+vw > s.maxPartVW {
					continue
				}
				if d := s.energy.moveDelta(s.cur, v, from, b); d < bestDelta {
					bestTo, bestDelta = b, d
				}
			}
			if bestTo >= 0 {
				s.cur.Move(v, bestTo)
				moved = true
			}
		}
		if !moved {
			break
		}
	}
}

// normalizeToK forces the current partition to exactly k non-empty parts by
// merging the most-connected pairs (k' > k) or percolation-splitting the
// largest atoms (k' < k).
func (s *search) normalizeToK() {
	for s.cur.NumParts() > s.k {
		a, b := bestMergePair(s.cur)
		if a < 0 {
			// No connected pair (disconnected leftovers): merge the two
			// smallest parts.
			parts := s.cur.NonEmptyParts()
			sort.Slice(parts, func(i, j int) bool {
				return s.cur.PartSize(parts[i]) < s.cur.PartSize(parts[j])
			})
			a, b = parts[0], parts[1]
		}
		s.cur.MergeParts(a, b)
	}
	for s.cur.NumParts() < s.k {
		largest := -1
		for _, a := range s.cur.NonEmptyParts() {
			if largest < 0 || s.cur.PartSize(a) > s.cur.PartSize(largest) {
				largest = a
			}
		}
		if largest < 0 || s.cur.PartSize(largest) < 2 {
			break
		}
		if fissionSplit(s.cur, largest, !s.opt.DisablePercolationFission, s.r) < 0 {
			break
		}
	}
}

// bestMergePair returns the connected pair of parts whose merge costs the
// least objective increase per the connection weight — i.e. the pair with
// the strongest mutual connection (smallest paper-distance).
func bestMergePair(p *partition.P) (int, int) {
	bestA, bestB, bestW := -1, -1, -1.0
	for _, a := range p.NonEmptyParts() {
		for b, w := range p.ConnectedParts(a) {
			if b <= a {
				continue
			}
			if w > bestW {
				bestA, bestB, bestW = a, b, w
			}
		}
	}
	return bestA, bestB
}
