package docscheck

import (
	"go/parser"
	"go/token"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// repoRoot walks up from the package directory to the module root.
func repoRoot(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("go.mod not found above ", dir)
		}
		dir = parent
	}
}

// mdLink matches inline markdown links [text](target); images too.
var mdLink = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// TestMarkdownLinks checks every relative link in the repository's markdown
// files (README, ROADMAP, docs/...) points at a file or directory that
// exists, so documentation can't silently rot as the tree moves.
func TestMarkdownLinks(t *testing.T) {
	root := repoRoot(t)
	var files []string
	for _, top := range []string{"README.md", "ROADMAP.md", "PAPER.md", "CHANGES.md"} {
		if _, err := os.Stat(filepath.Join(root, top)); err == nil {
			files = append(files, filepath.Join(root, top))
		}
	}
	docs, err := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(files) < 3 {
		t.Fatalf("only %d markdown files found — checker miswired?", len(files))
	}

	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		inFence := false
		for ln, line := range strings.Split(string(data), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if u, err := url.Parse(target); err == nil && (u.Scheme != "" || strings.HasPrefix(target, "#")) {
					continue // external link or intra-page anchor
				}
				target = strings.SplitN(target, "#", 2)[0]
				resolved := filepath.Join(filepath.Dir(f), filepath.FromSlash(target))
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s:%d: broken link %q (%v)", f, ln+1, m[1], err)
				}
			}
		}
	}
}

// TestPackageComments fails when any package in the module lacks a package
// comment — the godoc front door every internal package is required to
// have (ISSUE 4; staticcheck's ST1000 enforces the same rule in CI).
func TestPackageComments(t *testing.T) {
	root := repoRoot(t)
	// pkgDocs maps package directory -> whether any file carries a package
	// comment.
	pkgDocs := map[string]bool{}
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if strings.HasPrefix(name, ".") && path != root || name == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fset := token.NewFileSet()
		file, err := parser.ParseFile(fset, path, nil, parser.PackageClauseOnly|parser.ParseComments)
		if err != nil {
			return err
		}
		dir := filepath.Dir(path)
		if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
			pkgDocs[dir] = true
		} else if _, seen := pkgDocs[dir]; !seen {
			pkgDocs[dir] = false
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgDocs) < 20 {
		t.Fatalf("only %d package directories found — checker miswired?", len(pkgDocs))
	}
	for dir, ok := range pkgDocs {
		if !ok {
			t.Errorf("package %s has no package comment on any file", dir)
		}
	}
}
