// Package docscheck keeps the documentation honest: its tests verify that
// every relative markdown link in README/ROADMAP/docs resolves to a real
// file and that every package in the module carries a package comment.
// Running inside `go test ./...` makes doc rot a tier-1 build failure, on
// any machine, with no external tooling.
package docscheck
