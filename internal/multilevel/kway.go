package multilevel

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/refine"
	"repro/internal/spectral"
)

// PartitionKWay is the direct k-way multilevel scheme (the METIS-style
// successor of the recursive method this paper benchmarks): one coarsening
// ladder for the whole graph, a k-way partition of the coarsest graph, and
// greedy k-way refinement at every uncoarsening step. It trades the
// recursive method's per-split optimality for a single global view — and is
// provided as an extension for comparison in the ablation benches.
func PartitionKWay(g *graph.Graph, k int, opt Options) (*partition.P, error) {
	return PartitionKWayContext(context.Background(), g, k, opt)
}

// PartitionKWayContext is PartitionKWay under cooperative cancellation: the
// coarse spectral solve and each uncoarsening level poll ctx, and the call
// returns ctx.Err() once it fires. No partial partition is returned.
func PartitionKWayContext(ctx context.Context, g *graph.Graph, k int, opt Options) (*partition.P, error) {
	n := g.NumVertices()
	if k < 1 || k > n {
		return nil, fmt.Errorf("multilevel: k=%d out of range [1,%d]", k, n)
	}
	if opt.CoarsenTo == 0 {
		opt.CoarsenTo = 4 * k
		if opt.CoarsenTo < 96 {
			opt.CoarsenTo = 96
		}
	}
	if opt.Imbalance == 0 {
		opt.Imbalance = 0.05
	}
	ladder := CoarsenHEM(g, opt.CoarsenTo, opt.Seed)
	coarsest := g
	if len(ladder) > 0 {
		coarsest = ladder[len(ladder)-1].G
	}
	kc := k
	if kc > coarsest.NumVertices() {
		kc = coarsest.NumVertices()
	}
	coarseP, err := spectral.PartitionContext(ctx, coarsest, kc, spectral.Options{Seed: opt.Seed})
	if err != nil {
		return nil, err
	}
	local := coarseP.Assignment()
	for li := len(ladder) - 1; li >= 0; li-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		fine := g
		if li > 0 {
			fine = ladder[li-1].G
		}
		projected := make([]int32, fine.NumVertices())
		for v := range projected {
			projected[v] = local[ladder[li].Map[v]]
		}
		local = projected
		if opt.DisableRefine {
			continue
		}
		p, err := partition.FromAssignment(fine, local, k)
		if err != nil {
			return nil, err
		}
		refine.KWay(p, refine.KWayOptions{
			Objective: objective.Cut,
			Imbalance: opt.Imbalance + 0.10,
			MaxPasses: 4,
			Ctx:       ctx,
		})
		local = p.Assignment()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	p, err := partition.FromAssignment(g, local, k)
	if err != nil {
		return nil, err
	}
	// Cut-driven refinement can starve a part's interior; repair so the
	// relative objectives stay finite.
	refine.RelieveStarvation(p, 6, 1e9)
	return p, nil
}
