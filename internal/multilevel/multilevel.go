// Package multilevel implements the Hendrickson-Leland multilevel
// partitioning method (section 2.2): coarsen the graph by contracting a
// heavy-edge matching, partition the coarse graph spectrally, then uncoarsen
// while applying local refinement at every level. Bisection mode performs
// multilevel recursive bisection; octasection mode partitions each level
// 8 ways and refines with a greedy k-way pass.
package multilevel

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/refine"
	"repro/internal/spectral"
)

// Options configures multilevel partitioning.
type Options struct {
	// Arity is the split width per recursion level: 2 or 8. Default 2.
	Arity int
	// CoarsenTo is the coarsest graph size (default max(48, 4*Arity)).
	CoarsenTo int
	// Imbalance is the balance slack for refinement (default 0.05).
	Imbalance float64
	// Refine enables local refinement during uncoarsening (Chaco's
	// REFINE_PARTITION; the paper switches it on for every Chaco row).
	// Default true; set Disable to turn it off for ablations.
	DisableRefine bool
	// Seed drives matching order and eigensolver start vectors.
	Seed int64
}

// Partition cuts g into k parts with the multilevel method.
func Partition(g *graph.Graph, k int, opt Options) (*partition.P, error) {
	return PartitionContext(context.Background(), g, k, opt)
}

// PartitionContext is Partition under cooperative cancellation: each
// coarsening/uncoarsening level, the coarse eigensolves and the per-level
// refinement poll ctx, and the call returns ctx.Err() once it fires. No
// partial partition is returned.
func PartitionContext(ctx context.Context, g *graph.Graph, k int, opt Options) (*partition.P, error) {
	n := g.NumVertices()
	if k < 1 || k > n {
		return nil, fmt.Errorf("multilevel: k=%d out of range [1,%d]", k, n)
	}
	if opt.Arity == 0 {
		opt.Arity = 2
	}
	if opt.Arity != 2 && opt.Arity != 8 {
		return nil, fmt.Errorf("multilevel: arity must be 2 or 8, got %d", opt.Arity)
	}
	if opt.CoarsenTo == 0 {
		opt.CoarsenTo = 48
		if 4*opt.Arity > opt.CoarsenTo {
			opt.CoarsenTo = 4 * opt.Arity
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	assign := make([]int32, n)
	verts := make([]int32, n)
	for v := range verts {
		verts[v] = int32(v)
	}
	nextPart := int32(0)
	if err := splitRec(ctx, g, verts, k, opt, assign, &nextPart); err != nil {
		return nil, err
	}
	return partition.FromAssignment(g, assign, k)
}

func splitRec(ctx context.Context, g *graph.Graph, verts []int32, kNode int, opt Options, assign []int32, nextPart *int32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if kNode == 1 {
		id := *nextPart
		*nextPart++
		for _, v := range verts {
			assign[v] = id
		}
		return nil
	}
	groups := opt.Arity
	for groups > kNode {
		groups /= 2
	}
	if groups < 2 {
		groups = 2
	}
	kPer := make([]int, groups)
	for i := range kPer {
		kPer[i] = kNode / groups
		if i < kNode%groups {
			kPer[i]++
		}
	}

	sub := graph.Induced(g, verts)
	local, err := splitMultilevel(ctx, sub.G, kPer, opt)
	if err != nil {
		return err
	}
	chunkOf := make([][]int32, groups)
	for i, v := range verts {
		chunkOf[local[i]] = append(chunkOf[local[i]], v)
	}
	for gi := 0; gi < groups; gi++ {
		if len(chunkOf[gi]) == 0 {
			*nextPart += int32(kPer[gi])
			continue
		}
		kgi := kPer[gi]
		if kgi > len(chunkOf[gi]) {
			*nextPart += int32(kPer[gi] - len(chunkOf[gi]))
			kgi = len(chunkOf[gi])
		}
		if err := splitRec(ctx, g, chunkOf[gi], kgi, opt, assign, nextPart); err != nil {
			return err
		}
	}
	return nil
}

// splitMultilevel performs one multilevel V-cycle on g: coarsen, split the
// coarsest graph spectrally into len(kPer) groups, then project back with
// per-level refinement.
func splitMultilevel(ctx context.Context, g *graph.Graph, kPer []int, opt Options) ([]int32, error) {
	ladder := CoarsenHEM(g, opt.CoarsenTo, opt.Seed)
	coarsest := g
	if len(ladder) > 0 {
		coarsest = ladder[len(ladder)-1].G
	}
	local, err := spectral.SplitGraphContext(ctx, coarsest, kPer, spectral.Options{
		Solver: spectral.Lanczos,
		Seed:   opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	if !opt.DisableRefine {
		refineLevel(ctx, coarsest, local, kPer, opt)
	}
	// Uncoarsen: project through each level, refining as we go.
	for li := len(ladder) - 1; li >= 0; li-- {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var fine *graph.Graph
		if li == 0 {
			fine = g
		} else {
			fine = ladder[li-1].G
		}
		local = ladder[li].Project(local)
		if !opt.DisableRefine {
			refineLevel(ctx, fine, local, kPer, opt)
		}
	}
	return local, nil
}

// refineLevel applies the appropriate local refinement for the group count:
// FM for bisections (cheap, Chaco-style), greedy k-way for multiway splits.
func refineLevel(ctx context.Context, g *graph.Graph, local []int32, kPer []int, opt Options) {
	groups := len(kPer)
	kNode := 0
	for _, kp := range kPer {
		kNode += kp
	}
	if groups == 2 {
		target0 := g.TotalVertexWeight() * float64(kPer[0]) / float64(kNode)
		refine.FM(g, local, refine.BisectOptions{
			TargetWeight0: target0,
			Imbalance:     opt.Imbalance,
			Ctx:           ctx,
		})
		return
	}
	p, err := partition.FromAssignment(g, local, groups)
	if err != nil {
		return
	}
	refine.KWay(p, refine.KWayOptions{
		Objective: objective.Cut,
		Imbalance: opt.Imbalance + 0.10,
		MaxPasses: 4,
		Ctx:       ctx,
	})
	copy(local, p.Assignment())
}
