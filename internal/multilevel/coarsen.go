package multilevel

import (
	"repro/internal/coarsen"
	"repro/internal/graph"
)

// Level re-exports coarsen.Level; the coarsening ladder is shared with the
// spectral package's multilevel RQI eigensolver.
type Level = coarsen.Level

// CoarsenHEM coarsens g by heavy-edge matching; see coarsen.HEM.
func CoarsenHEM(g *graph.Graph, minSize int, seed int64) []Level {
	return coarsen.HEM(g, minSize, seed)
}
