package multilevel

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
)

func TestKWayGrid(t *testing.T) {
	g := graph.Grid2D(16, 16)
	p, err := PartitionKWay(g, 32, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 32 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKWayQualityComparableToRecursive(t *testing.T) {
	g := graph.RandomGeometric(250, 0.12, 5)
	rec, err := Partition(g, 8, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	kway, err := PartitionKWay(g, 8, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Direct k-way should land within 2x of the recursive cut (usually much
	// closer); it is a comparison point, not a strict improvement.
	if kway.CrossingWeight() > 2*rec.CrossingWeight() {
		t.Fatalf("k-way cut %g far worse than recursive %g", kway.CrossingWeight(), rec.CrossingWeight())
	}
	if imb := objective.Imbalance(kway); imb > 0.6 {
		t.Fatalf("k-way imbalance %.2f", imb)
	}
}

func TestKWayArbitraryK(t *testing.T) {
	g := graph.Grid2D(12, 12)
	for _, k := range []int{3, 5, 27} {
		p, err := PartitionKWay(g, k, Options{Seed: int64(k)})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.NumParts() != k {
			t.Fatalf("k=%d: NumParts = %d", k, p.NumParts())
		}
	}
}

func TestKWayErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := PartitionKWay(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := PartitionKWay(g, 5, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
}
