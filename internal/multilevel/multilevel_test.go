package multilevel

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/rng"
)

func TestCoarseningPreservesTotals(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 30 + r.Intn(100)
		g := graph.RandomGeometric(n, 0.2, seed)
		ladder := CoarsenHEM(g, 10, seed)
		prev := g
		for _, lvl := range ladder {
			// Vertex weight is conserved exactly.
			if diff := lvl.G.TotalVertexWeight() - prev.TotalVertexWeight(); diff > 1e-9 || diff < -1e-9 {
				return false
			}
			// Every fine vertex maps to a valid coarse vertex.
			if len(lvl.Map) != prev.NumVertices() {
				return false
			}
			for _, c := range lvl.Map {
				if c < 0 || int(c) >= lvl.G.NumVertices() {
					return false
				}
			}
			// Edge weight never grows (self-loops are dropped).
			if lvl.G.TotalEdgeWeight() > prev.TotalEdgeWeight()+1e-9 {
				return false
			}
			// Matching contracts at most pairs: at least half the size.
			if lvl.G.NumVertices()*2 < prev.NumVertices() {
				return false
			}
			prev = lvl.G
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestCoarseningReduces(t *testing.T) {
	g := graph.Grid2D(20, 20)
	ladder := CoarsenHEM(g, 50, 1)
	if len(ladder) == 0 {
		t.Fatal("no coarsening happened")
	}
	coarsest := ladder[len(ladder)-1].G
	if coarsest.NumVertices() > 50 {
		t.Fatalf("coarsest has %d vertices, want <= 50", coarsest.NumVertices())
	}
}

func TestCoarsenCutConsistency(t *testing.T) {
	// A partition of the coarse graph, projected to the fine graph, must
	// have exactly the same crossing weight (self-loops never cross).
	g := graph.RandomGeometric(80, 0.2, 3)
	ladder := CoarsenHEM(g, 20, 3)
	if len(ladder) == 0 {
		t.Skip("graph too small to coarsen")
	}
	lvl := ladder[0]
	r := rng.New(7)
	coarseSide := make([]int32, lvl.G.NumVertices())
	for v := range coarseSide {
		coarseSide[v] = int32(r.Intn(2))
	}
	coarseCut := 0.0
	lvl.G.ForEachEdge(func(u, v int, w float64) {
		if coarseSide[u] != coarseSide[v] {
			coarseCut += w
		}
	})
	fineCut := 0.0
	g.ForEachEdge(func(u, v int, w float64) {
		if coarseSide[lvl.Map[u]] != coarseSide[lvl.Map[v]] {
			fineCut += w
		}
	})
	if diff := coarseCut - fineCut; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("projected cut %g != coarse cut %g", fineCut, coarseCut)
	}
}

func TestBisectDumbbell(t *testing.T) {
	g := graph.Dumbbell(20, 20, 2)
	p, err := Partition(g, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.CrossingWeight() != 2 {
		t.Fatalf("crossing = %g, want 2", p.CrossingWeight())
	}
}

func TestGrid32Parts(t *testing.T) {
	g := graph.Grid2D(16, 16)
	p, err := Partition(g, 32, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 32 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
	if imb := objective.Imbalance(p); imb > 0.35 {
		t.Fatalf("imbalance %.3f", imb)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOctasectionMode(t *testing.T) {
	g := graph.Grid2D(12, 12)
	p, err := Partition(g, 8, Options{Arity: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 8 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
}

func TestRefinementHelps(t *testing.T) {
	g := graph.RandomGeometric(200, 0.12, 9)
	refined, err := Partition(g, 8, Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Partition(g, 8, Options{Seed: 4, DisableRefine: true})
	if err != nil {
		t.Fatal(err)
	}
	if refined.CrossingWeight() > raw.CrossingWeight()+1e-9 {
		t.Fatalf("refinement worsened cut: %g vs %g", refined.CrossingWeight(), raw.CrossingWeight())
	}
}

func TestBeatsOrMatchesLinearBaseline(t *testing.T) {
	// The multilevel method should cut a geometric graph far better than a
	// structure-blind index slice (sanity check of the whole V-cycle).
	g := graph.RandomGeometric(150, 0.15, 11)
	p, err := Partition(g, 4, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Index slicing on a geometric graph with random vertex order crosses
	// roughly 3/4 of all edges.
	randomish := 0.5 * g.TotalEdgeWeight()
	if p.CrossingWeight() > randomish {
		t.Fatalf("multilevel crossing %g worse than random-ish %g", p.CrossingWeight(), randomish)
	}
}

func TestNonPowerOfTwoK(t *testing.T) {
	g := graph.Grid2D(10, 10)
	for _, k := range []int{3, 5, 27} {
		p, err := Partition(g, k, Options{Seed: 6})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.NumParts() != k {
			t.Fatalf("k=%d: NumParts = %d", k, p.NumParts())
		}
	}
}

func TestErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := Partition(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Partition(g, 5, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Partition(g, 2, Options{Arity: 4}); err == nil {
		t.Fatal("arity 4 accepted")
	}
}
