// Package antcolony implements the paper's ant-colony adaptation to k-way
// partitioning (section 3.2): k colonies — one per part — compete for food.
// Each colony lays its own pheromone on edges (an ant only senses its own
// colony's trails); a vertex is owned by the colony whose pheromone on the
// vertex's incident edges is strongest; a local heuristic pushes ants toward
// unexplored edges; trails evaporate over time; and ants from different
// colonies may stand on the same vertex, so part connectivity is never
// forced. Vertex food is the weighted degree, as the paper suggests.
//
// The four tunable parameters the paper counts are Alpha, Beta, Rho and
// AntsPerColony. The search is seeded with the percolation partition
// (figure 1 starts the ant colony from the percolation result).
package antcolony

import (
	"context"
	"fmt"
	"math"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/percolation"
	"repro/internal/refine"
	"repro/internal/rng"
	"repro/internal/score"
)

// Options configures the colony search.
type Options struct {
	// Objective is the energy function (default MCut).
	Objective objective.Objective
	// Alpha weights pheromone in the transition rule (default 1).
	Alpha float64
	// Beta weights the edge-weight heuristic (default 2).
	Beta float64
	// Rho is the evaporation rate in (0,1) (default 0.05).
	Rho float64
	// AntsPerColony is the number of ants each colony deploys per
	// iteration (default 4).
	AntsPerColony int
	// WalkLength is the number of steps each ant takes (default 10).
	WalkLength int
	// Iterations caps the number of colony iterations (default 4000).
	Iterations int
	// DaemonPeriod is how often (in iterations) the centralized daemon
	// action runs — the optional third ACO step of section 3.2, here one
	// greedy boundary-refinement pass whose result is reinforced with
	// pheromone. 0 means the default (20); negative disables it.
	DaemonPeriod int
	// Budget caps wall-clock time; 0 means no limit.
	Budget time.Duration
	// Seed drives all randomness.
	Seed int64
	// Initial optionally provides a starting partition; when nil,
	// percolation is run.
	Initial *partition.P
	// Runtime optionally attaches the run to a shared engine runtime — the
	// portfolio incumbent exchange and the live-progress monitor. Nil for
	// standalone runs.
	Runtime *engine.Runtime
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 1
	}
	if o.Beta == 0 {
		o.Beta = 2
	}
	if o.Rho == 0 {
		o.Rho = 0.05
	}
	if o.AntsPerColony == 0 {
		o.AntsPerColony = 4
	}
	if o.WalkLength == 0 {
		o.WalkLength = 10
	}
	if o.Iterations == 0 {
		o.Iterations = 4000
	}
	if o.DaemonPeriod == 0 {
		o.DaemonPeriod = 20
	}
	return o
}

// TracePoint records the best energy seen at a point in time, for Figure 1.
type TracePoint = engine.TracePoint

// Result is the outcome of the colony search.
type Result struct {
	Best       *partition.P
	Energy     float64
	Iterations int
	Trace      []TracePoint
	// Cancelled reports that the run was interrupted by context
	// cancellation and Best is the best partition found so far.
	Cancelled bool
}

const (
	tau0        = 0.05 // baseline pheromone presence in the transition rule
	exploreTau  = 0.02 // below this own-colony pheromone an edge counts as unexplored
	exploreGain = 3.0  // attraction multiplier for unexplored edges
	depositQ    = 0.25 // pheromone laid per visited vertex, scaled by food
	eliteQ      = 0.5  // bonus laid on internal edges of a new best partition
)

// Partition runs the competing-colonies search and returns the best
// partition found.
func Partition(g *graph.Graph, k int, opt Options) (*Result, error) {
	return PartitionContext(context.Background(), g, k, opt)
}

// PartitionContext is Partition under cooperative cancellation: the colony
// loop polls ctx every iteration alongside its budget check and, once ctx
// fires, returns the best partition found so far with Result.Cancelled set.
// A context that is done before any solution exists yields (nil, ctx.Err()).
func PartitionContext(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := g.NumVertices()
	if k < 2 || k > n {
		return nil, fmt.Errorf("antcolony: k=%d out of range [2,%d]", k, n)
	}
	if opt.Rho <= 0 || opt.Rho >= 1 {
		return nil, fmt.Errorf("antcolony: rho=%g out of (0,1)", opt.Rho)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := rng.New(opt.Seed)

	init := opt.Initial
	if init == nil {
		p, err := percolation.PartitionContext(ctx, g, k, percolation.Options{Seed: opt.Seed})
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("antcolony: percolation initialization: %w", err)
		}
		init = p
	}
	if init.Graph() != g {
		return nil, fmt.Errorf("antcolony: initial partition is for a different graph")
	}

	m := g.NumEdges()
	// Flat pheromone field, indexed tau[e*k+c]: the k colony values of one
	// edge are contiguous, so the ownership scan (k sums over each vertex's
	// incident edges) walks consecutive memory instead of striding m floats
	// between colonies. Per-colony float accumulation order is everywhere
	// preserved, so the layout change is bit-identical.
	tau := make([]float64, m*k)
	// Seed pheromone along the internal edges of the initial partition.
	owner := make([]int32, n)
	copy(owner, init.Assignment())
	g.ForEachEdgeID(func(eid, u, v int, w float64) {
		if owner[u] == owner[v] && owner[u] >= 0 {
			tau[eid*k+int(owner[u])] = 0.5
		}
	})

	maxWDeg := 0.0
	maxW := 0.0
	for v := 0; v < n; v++ {
		if d := g.WeightedDegree(v); d > maxWDeg {
			maxWDeg = d
		}
	}
	g.ForEachEdge(func(u, v int, w float64) {
		if w > maxW {
			maxW = w
		}
	})
	if maxWDeg == 0 {
		maxWDeg = 1
	}
	if maxW == 0 {
		maxW = 1
	}

	eps := 1e-6 * (2 * g.TotalEdgeWeight() / float64(n))

	// Soft balance cap (see anneal): plain Cut would otherwise collapse the
	// ownership into one giant colony.
	capFactor := 2.0
	if opt.Objective == objective.Cut {
		capFactor = 1.3
	}
	maxPartVW := capFactor * g.TotalVertexWeight() / float64(k)

	cur := init.Clone()
	best := init.Clone()
	// Ownership moves flow through the tracker, so the smoothed objective
	// of the current ownership is an O(1) read per iteration instead of a
	// per-part scan.
	tr := score.NewTracker(cur, opt.Objective, eps)
	bestE := tr.Value()
	loop := engine.NewLoop(ctx, engine.LoopOptions{
		Budget: opt.Budget, MaxSteps: opt.Iterations,
		PollEvery: 1, BudgetEvery: 8, ProgressEvery: 1,
		Runtime: opt.Runtime,
	})
	loop.Improved(bestE, best.Compact)
	probs := make([]float64, 0, 64)
	colonySums := make([]float64, k) // reassignByPheromone scratch

	for loop.Next() {
		// A portfolio peer found a strictly better partition: adopt it as
		// the current ownership and the new personal best, and reinforce
		// its interior so the colonies retain the imported structure.
		if assign, fe, ok := loop.Foreign(); ok && fe < bestE {
			if p, err := partition.FromAssignment(g, assign, cur.Capacity()); err == nil {
				cur = p
				tr = score.NewTracker(cur, opt.Objective, eps)
				if e := tr.Value(); e < bestE && cur.NumParts() == k {
					bestE = e
					best.CopyFrom(cur)
					loop.Improved(bestE, best.Compact)
				}
				g.ForEachEdgeID(func(eid, u, v int, w float64) {
					if a := cur.Part(u); a == cur.Part(v) {
						tau[eid*k+a] += eliteQ
					}
				})
			}
		}
		// March the ants.
		for c := 0; c < k; c++ {
			territory := cur.VerticesOf(c)
			for a := 0; a < opt.AntsPerColony; a++ {
				var at int
				if len(territory) > 0 {
					at = int(territory[r.Intn(len(territory))])
				} else {
					at = r.Intn(n) // colony dispossessed: scout anywhere
				}
				for step := 0; step < opt.WalkLength; step++ {
					nbrs := g.Neighbors(at)
					if len(nbrs) == 0 {
						break
					}
					wts := g.Weights(at)
					eids := g.ArcEdgeIDs(at)
					probs = probs[:0]
					for i := range nbrs {
						ph := tau[int(eids[i])*k+c]
						attract := math.Pow(ph+tau0, opt.Alpha) *
							math.Pow(wts[i]/maxW+0.1, opt.Beta)
						if ph < exploreTau {
							attract *= exploreGain // the paper's exploration heuristic
						}
						probs = append(probs, attract)
					}
					pick := rng.WeightedChoice(r, probs)
					if pick < 0 {
						break
					}
					next := int(nbrs[pick])
					// Food at the destination: its weighted degree.
					food := g.WeightedDegree(next) / maxWDeg
					tau[int(eids[pick])*k+c] += depositQ * food
					at = next
				}
			}
		}
		// Evaporate. Element-wise scaling is order-independent, so one pass
		// over the flat field matches the old per-colony loops exactly.
		for i := range tau {
			tau[i] *= 1 - opt.Rho
		}
		// Ownership: strongest incident pheromone wins; ties keep owner.
		reassignByPheromone(g, tau, k, colonySums, tr, maxPartVW)
		// Centralized daemon action (the optional third step of section
		// 3.2): periodically smooth the ownership boundary with one greedy
		// refinement pass and lay pheromone along the improved interior so
		// the colonies retain it.
		if opt.DaemonPeriod > 0 && (loop.Steps()-1)%opt.DaemonPeriod == opt.DaemonPeriod-1 {
			refine.KWay(cur, refine.KWayOptions{
				Objective: opt.Objective, MaxPasses: 1, Imbalance: capFactor - 1, Ctx: ctx,
			})
			tr.Rebuild() // the refinement pass mutated cur behind the tracker
			g.ForEachEdgeID(func(eid, u, v int, w float64) {
				if a := cur.Part(u); a == cur.Part(v) {
					tau[eid*k+a] += depositQ
				}
			})
		}
		if e := tr.Value(); e < bestE && cur.NumParts() == k {
			bestE = e
			best.CopyFrom(cur)
			loop.Improved(bestE, best.Compact)
			// Elitist reinforcement of the new best partition's interior.
			g.ForEachEdgeID(func(eid, u, v int, w float64) {
				if a := best.Part(u); a == best.Part(v) {
					tau[eid*k+a] += eliteQ
				}
			})
		}
	}
	loop.Finish()
	loop.Mark(bestE)
	return &Result{Best: best, Energy: opt.Objective.Evaluate(best), Iterations: loop.Steps(), Trace: loop.Trace(), Cancelled: loop.Cancelled()}, nil
}

// reassignByPheromone recomputes vertex ownership from the pheromone fields,
// committing each move through the tracker so the running objective stays
// current. A move that would empty a part or push the receiving colony past
// the balance cap is skipped so every colony keeps a foothold (k stays
// fixed, as Table 1 requires) and no colony swallows the graph.
func reassignByPheromone(g *graph.Graph, tau []float64, k int, sums []float64, tr *score.Tracker, maxPartVW float64) {
	cur := tr.Partition()
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		eids := g.ArcEdgeIDs(v)
		// One pass over the incident edges accumulates all k colony sums
		// from contiguous k-wide rows of the flat field. Each colony's
		// terms are still added in incident-edge order, so every sum is
		// bit-identical to the former per-colony loops.
		for c := range sums {
			sums[c] = 0
		}
		for _, e := range eids {
			row := tau[int(e)*k : int(e)*k+k]
			for c, ph := range row {
				sums[c] += ph
			}
		}
		bestC := int32(cur.Part(v))
		bestS := sums[bestC]
		for c := 0; c < k; c++ {
			if c == int(bestC) {
				continue
			}
			if sums[c] > bestS {
				bestC, bestS = int32(c), sums[c]
			}
		}
		if int(bestC) != cur.Part(v) && cur.PartSize(cur.Part(v)) > 1 &&
			cur.PartVertexWeight(int(bestC))+g.VertexWeight(v) <= maxPartVW {
			tr.Apply(v, int(bestC))
		}
	}
}
