package antcolony

import (
	"context"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/percolation"
)

func TestColonyImprovesOverInitialization(t *testing.T) {
	g := graph.RandomGeometric(100, 0.2, 4)
	init, err := percolation.Partition(g, 5, percolation.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	initE := objective.MCut.Evaluate(init)
	res, err := Partition(g, 5, Options{Seed: 4, Iterations: 600, Initial: init})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy > initE {
		t.Fatalf("ACO worsened the percolation start: %g -> %g", initE, res.Energy)
	}
	if res.Best.NumParts() != 5 {
		t.Fatalf("NumParts = %d", res.Best.NumParts())
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestColonyDumbbell(t *testing.T) {
	g := graph.Dumbbell(8, 8, 1)
	res, err := Partition(g, 2, Options{Seed: 2, Iterations: 400, Objective: objective.Cut})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy > 4 {
		t.Fatalf("ACO cut = %g, want near-optimal (2)", res.Energy)
	}
}

func TestColonyDeterministic(t *testing.T) {
	g := graph.Grid2D(7, 7)
	r1, err := Partition(g, 3, Options{Seed: 8, Iterations: 120})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Partition(g, 3, Options{Seed: 8, Iterations: 120})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Energy != r2.Energy {
		t.Fatalf("non-deterministic: %g vs %g", r1.Energy, r2.Energy)
	}
}

func TestColonyBudget(t *testing.T) {
	g := graph.Grid2D(10, 10)
	start := time.Now()
	_, err := Partition(g, 4, Options{Seed: 1, Budget: 30 * time.Millisecond, Iterations: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("budget ignored")
	}
}

func TestColonyKeepsKParts(t *testing.T) {
	g := graph.Cycle(24)
	res, err := Partition(g, 4, Options{Seed: 6, Iterations: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.NumParts() != 4 {
		t.Fatalf("parts lost: %d", res.Best.NumParts())
	}
}

func TestColonyErrors(t *testing.T) {
	g := graph.Path(5)
	if _, err := Partition(g, 1, Options{}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Partition(g, 6, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Partition(g, 2, Options{Rho: 1.5}); err == nil {
		t.Fatal("rho out of range accepted")
	}
}

func TestEdgeIDsCoverPheromoneIndex(t *testing.T) {
	// The pheromone fields are dense arrays indexed by edge id: every id
	// ForEachEdgeID reports must be in [0, m) and appear exactly once.
	g := graph.Grid2D(3, 3)
	seen := make([]bool, g.NumEdges())
	g.ForEachEdgeID(func(e, u, v int, w float64) {
		if e < 0 || e >= len(seen) || seen[e] {
			t.Fatalf("edge id %d out of range or repeated", e)
		}
		seen[e] = true
		eu, ev := g.EdgeEndpoints(e)
		if eu != u || ev != v {
			t.Fatalf("edge id %d endpoints (%d,%d), want (%d,%d)", e, eu, ev, u, v)
		}
	})
}

func TestTraceMonotone(t *testing.T) {
	g := graph.RandomGeometric(60, 0.25, 3)
	res, err := Partition(g, 3, Options{Seed: 3, Iterations: 300})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Energy > res.Trace[i-1].Energy+1e-9 {
			t.Fatalf("trace not monotone at %d", i)
		}
	}
}

func TestPartitionContextCancelReturnsBestSoFar(t *testing.T) {
	g := graph.Grid2D(10, 10)
	init, err := percolation.Partition(g, 4, percolation.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := PartitionContext(ctx, g, 4, Options{
		Seed: 3, Budget: time.Minute, Iterations: 1 << 30, Initial: init,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("returned %v after a 50ms cancel", elapsed)
	}
	if !res.Cancelled {
		t.Fatal("interrupted run not marked Cancelled")
	}
	if res.Best == nil || res.Best.NumParts() != 4 {
		t.Fatalf("best-so-far invalid: %+v", res.Best)
	}
}
