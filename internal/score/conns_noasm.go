//go:build !amd64

package score

// useConnsAVX2 is false on architectures without the gathered conns
// kernel; every scan takes the portable unrolled path.
const useConnsAVX2 = false

// connsCountAVX2 is never called when useConnsAVX2 is false; this stub
// keeps the portable build compiling.
func connsCountAVX2(nbrs *int32, n int, part *int16, from, to int32) (cntFrom, cntTo int32) {
	panic("score: connsCountAVX2 without AVX2 support")
}
