package score

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
)

// randomGraph builds a random graph exercising every feature the tracker
// must account for: irregular topology, non-uniform edge weights, weighted
// vertices, and (on odd seeds) self-loop weights like the ones coarsening
// folds into coarse vertices.
func randomGraph(seed int64) *graph.Graph {
	r := rng.New(seed)
	n := 8 + r.Intn(40)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		b.AddEdge(u, (u+1)%n, 1+4*r.Float64()) // ring keeps it connected
		for t := 0; t < 2; t++ {
			v := r.Intn(n)
			if v != u {
				b.AddEdge(u, v, 0.25+2*r.Float64())
			}
		}
		if r.Intn(2) == 0 {
			b.SetVertexWeight(u, 0.5+2*r.Float64())
		}
		if seed%2 == 1 && r.Intn(3) == 0 {
			b.AddSelfLoop(u, 0.5+3*r.Float64())
		}
	}
	return b.MustBuild()
}

// TestTrackerMatchesEvaluateSmoothed is the tentpole property: after long
// random Assign / Apply (move) sequences — all three objectives, graphs
// with and without self-loops, weighted vertices — Value() agrees with a
// full EvaluateSmoothed within 1e-9, and Rebuild() restores exact equality.
func TestTrackerMatchesEvaluateSmoothed(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		g := randomGraph(seed)
		n := g.NumVertices()
		k := 2 + r.Intn(5)
		for _, obj := range objective.All {
			for _, eps := range []float64{1e-6, 0.37} {
				p := partition.New(g, k+2)
				tr := NewTracker(p, obj, eps)
				// Interleave first assignments with moves of already-placed
				// vertices, all through the tracker.
				placed := 0
				order := make([]int, n)
				rng.Perm(r, order)
				for step := 0; step < 6*n; step++ {
					if placed < n && (placed == 0 || r.Intn(3) > 0) {
						tr.Assign(order[placed], r.Intn(k))
						placed++
					} else {
						v := order[r.Intn(placed)]
						tr.Apply(v, r.Intn(k+2))
					}
					if step%13 != 0 {
						continue
					}
					got, want := tr.Value(), obj.EvaluateSmoothed(p, eps)
					if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
						t.Logf("seed %d obj %v eps %g step %d: Value %.15g vs EvaluateSmoothed %.15g",
							seed, obj, eps, step, got, want)
						return false
					}
				}
				tr.Rebuild()
				if got, want := tr.Value(), obj.EvaluateSmoothed(p, eps); got != want {
					t.Logf("seed %d obj %v: Rebuild not exact: %.17g vs %.17g", seed, obj, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestMoveValuePredictsCommittedValue: the hypothetical O(deg) evaluation
// must agree with actually committing the move and re-evaluating in full.
func TestMoveValuePredictsCommittedValue(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		g := randomGraph(seed)
		n := g.NumVertices()
		k := 2 + r.Intn(5)
		assign := make([]int32, n)
		for v := range assign {
			assign[v] = int32(r.Intn(k))
		}
		p, err := partition.FromAssignment(g, assign, k)
		if err != nil {
			return false
		}
		for _, obj := range objective.All {
			tr := NewTracker(p, obj, 1e-6)
			for trial := 0; trial < 30; trial++ {
				v := r.Intn(n)
				from, to := p.Part(v), r.Intn(k)
				if from == to {
					continue
				}
				basePre := tr.Value()
				predicted := tr.MoveValue(v, from, to)
				delta := tr.MoveDelta(v, from, to)
				// MoveDelta is MoveValue relative to the current Value.
				if math.Abs(delta-(predicted-basePre)) > 1e-12*(1+math.Abs(predicted)+math.Abs(basePre)) {
					t.Logf("seed %d obj %v: MoveDelta %.15g != MoveValue-Value %.15g", seed, obj, delta, predicted-basePre)
					return false
				}
				tr.Apply(v, to)
				want := obj.EvaluateSmoothed(p, 1e-6)
				// Committed value vs full evaluation of the same state: the
				// headline agreement, valid in every state.
				if got := tr.Value(); math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
					t.Logf("seed %d obj %v: committed Value %.15g vs %.15g", seed, obj, got, want)
					return false
				}
				tr.Apply(v, from) // restore
				// Hypothetical-vs-committed agreement is only well-conditioned
				// away from near-degenerate smoothed terms: a term near
				// cut/eps amplifies ulp-level statistic differences (the
				// partition updates its sums in adjacency order, the
				// prediction in formula order) by ~cut/eps². Such states are
				// covered by the Value checks above and the sequence test.
				if math.Abs(want) > 1e5 {
					continue
				}
				tol := 1e-9 * (1 + math.Abs(want) + math.Abs(basePre))
				if math.Abs(predicted-want) > tol {
					t.Logf("seed %d obj %v: MoveValue %.15g vs %.15g", seed, obj, predicted, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestStatelessDeltaMatchesEvaluation mirrors the Tracker property for the
// package-level Delta used by fusion-fission's nucleon relaxation.
func TestStatelessDeltaMatchesEvaluation(t *testing.T) {
	r := rng.New(3)
	g := randomGraph(5) // odd seed: self-loops included
	n := g.NumVertices()
	const k = 4
	assign := make([]int32, n)
	for v := range assign {
		assign[v] = int32(r.Intn(k))
	}
	p, err := partition.FromAssignment(g, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-6
	for _, obj := range objective.All {
		for trial := 0; trial < 60; trial++ {
			v := r.Intn(n)
			from, to := p.Part(v), r.Intn(k)
			if from == to || p.PartSize(from) <= 1 {
				continue
			}
			d := Delta(p, obj, eps, v, from, to)
			before := obj.EvaluateSmoothed(p, eps)
			p.Move(v, to)
			after := obj.EvaluateSmoothed(p, eps)
			p.Move(v, from)
			if want := after - before; math.Abs(d-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("obj %v trial %d: Delta %.15g, full-eval difference %.15g", obj, trial, d, want)
			}
		}
	}
}

// TestTrackerInfiniteStates: with eps = 0, an Mcut part with positive cut
// and zero internal weight makes the objective +Inf; the tracker must agree
// with Evaluate, recover when the state is repaired, and order hypothetical
// moves usefully while infinite.
func TestTrackerInfiniteStates(t *testing.T) {
	// Path of 4 vertices: 0-1-2-3. Parts {0}, {1,2,3}: part 0 is a
	// singleton with cut 1 and no internal weight.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	g := b.MustBuild()
	p, err := partition.FromAssignment(g, []int32{0, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	tr := NewTracker(p, objective.MCut, 0)
	if !math.IsInf(tr.Value(), 1) {
		t.Fatalf("Value = %g, want +Inf", tr.Value())
	}
	if got := objective.MCut.Evaluate(p); !math.IsInf(got, 1) {
		t.Fatalf("Evaluate = %g: test premise broken", got)
	}
	// Moving vertex 1 into part 0 gives parts {0,1} and {2,3}: both have
	// internal weight, so the objective becomes finite again.
	if v := tr.MoveValue(1, 1, 0); math.IsInf(v, 1) {
		t.Fatalf("MoveValue(repairing move) = %g, want finite", v)
	}
	if d := tr.MoveDelta(1, 1, 0); !math.IsInf(d, -1) {
		t.Fatalf("MoveDelta(repairing move) = %g, want -Inf", d)
	}
	tr.Apply(1, 0)
	if got, want := tr.Value(), objective.MCut.Evaluate(p); math.Abs(got-want) > 1e-12*(1+math.Abs(want)) {
		t.Fatalf("after repair: Value %.17g, Evaluate %.17g", got, want)
	}
	// And back: recreating the degenerate part must flip Value back to +Inf.
	if d := tr.MoveDelta(1, 0, 1); !math.IsInf(d, 1) {
		t.Fatalf("MoveDelta(degenerating move) = %g, want +Inf", d)
	}
	tr.Apply(1, 1)
	if !math.IsInf(tr.Value(), 1) {
		t.Fatalf("Value = %g after degenerating move, want +Inf", tr.Value())
	}
}

// TestTermShape pins the per-part term semantics the core energy model
// used to implement privately, now owned by objective.Term (the single
// source of truth the tracker shares with Evaluate): the smoothed Mcut
// summand is cut/(W+eps).
func TestTermShape(t *testing.T) {
	eps := 1e-3 // a variable, so the wanted values are computed at runtime
	if got, want := objective.MCut.Term(2, 6, eps), 2.0/(6.0+eps); got != want {
		t.Fatalf("Mcut term = %g, want %g", got, want)
	}
	if got, want := objective.NCut.Term(2, 6, eps), 2.0/(2.0+6.0+eps); got != want {
		t.Fatalf("Ncut term = %g, want %g", got, want)
	}
	if got := objective.Cut.Term(2, 6, eps); got != 2 {
		t.Fatalf("Cut term = %g, want 2", got)
	}
}

// TestDeterministicRebuildCadence: the automatic resummation happens purely
// on operation count, so two identical runs see identical Values at every
// step — including the steps right around the cadence boundary.
func TestDeterministicRebuildCadence(t *testing.T) {
	run := func() []float64 {
		r := rng.New(11)
		g := randomGraph(7)
		n := g.NumVertices()
		assign := make([]int32, n)
		for v := range assign {
			assign[v] = int32(r.Intn(3))
		}
		p, err := partition.FromAssignment(g, assign, 3)
		if err != nil {
			t.Fatal(err)
		}
		tr := NewTracker(p, objective.MCut, 1e-6)
		vals := make([]float64, 0, rebuildEvery+64)
		for i := 0; i < rebuildEvery+64; i++ {
			tr.Apply(r.Intn(n), r.Intn(3))
			vals = append(vals, tr.Value())
		}
		return vals
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: %.17g vs %.17g — rebuild cadence not deterministic", i, a[i], b[i])
		}
	}
}
