// AVX2 kernel for the unit-weight conns count of moveConns: eight
// neighbors per iteration, their part ids fetched through VPGATHERDD from
// the partition's int16 mirror and counted against the `from`/`to`
// broadcasts with branchless compare-subtract accumulators. The gather
// loads a 32-bit lane at byte offset 2*id, so the last vertex's lane reads
// two bytes past the mirror's final entry — partition.New and Clone pad
// the allocation by one entry to keep that read in bounds — and the low-16
// mask drops the neighboring entry that rides along in the high half.
// Counts are exact small integers, so any split between this kernel and
// the scalar tail is bit-identical to the all-scalar loop.

#include "textflag.h"

DATA ·connsLowMask+0(SB)/4, $0x0000ffff
GLOBL ·connsLowMask(SB), RODATA|NOPTR, $4

// func connsCountAVX2(nbrs *int32, n int, part *int16, from, to int32) (cntFrom, cntTo int32)
// Requires n > 0, n % 8 == 0, AVX2 (gated by useConnsAVX2), and the padded
// part mirror described above.
TEXT ·connsCountAVX2(SB), NOSPLIT, $0-40
	MOVQ nbrs+0(FP), DI
	MOVQ n+8(FP), CX
	MOVQ part+16(FP), SI
	// Broadcast the two part ids via XMM: vet's asmdecl check rejects a
	// VPBROADCASTD whose memory operand is a 4-byte argument slot.
	MOVL from+24(FP), AX
	MOVL to+28(FP), BX
	VMOVD AX, X0
	VMOVD BX, X1
	VPBROADCASTD X0, Y0
	VPBROADCASTD X1, Y1
	VPBROADCASTD ·connsLowMask(SB), Y2
	VPXOR Y3, Y3, Y3 // from-match counters
	VPXOR Y4, Y4, Y4 // to-match counters
loop:
	VMOVDQU (DI), Y5    // eight neighbor ids
	VPCMPEQD Y6, Y6, Y6 // gather mask: all lanes (the gather clears it)
	VPGATHERDD Y6, (SI)(Y5*2), Y7
	VPAND Y2, Y7, Y7 // isolate each lane's own 16-bit part id
	VPCMPEQD Y0, Y7, Y8
	VPCMPEQD Y1, Y7, Y9
	VPSUBD Y8, Y3, Y3 // matching lanes hold -1: subtracting counts them
	VPSUBD Y9, Y4, Y4
	ADDQ $32, DI
	SUBQ $8, CX
	JNZ  loop
	// Horizontal sums of the eight per-lane counters.
	VEXTRACTI128 $1, Y3, X5
	VPADDD X5, X3, X3
	VPSHUFD $0x4E, X3, X5
	VPADDD X5, X3, X3
	VPSHUFD $0xB1, X3, X5
	VPADDD X5, X3, X3
	VMOVD X3, AX
	VEXTRACTI128 $1, Y4, X5
	VPADDD X5, X4, X4
	VPSHUFD $0x4E, X4, X5
	VPADDD X5, X4, X4
	VPSHUFD $0xB1, X4, X5
	VPADDD X5, X4, X4
	VMOVD X4, BX
	MOVL AX, cntFrom+32(FP)
	MOVL BX, cntTo+36(FP)
	VZEROUPPER
	RET
