// Package score is the incremental scoring layer shared by every solver and
// refiner in this repository. It answers the question the fastest
// partitioners (KaFFPaE, KaHyPar) are built around: "what would this single
// move do to the objective?" in O(deg v), and "what is the objective now?"
// in O(1) — instead of the O(k) part scan of objective.Evaluate per
// candidate move that the pre-score code paid.
//
// The layer has two entry points:
//
//   - Tracker binds to one *partition.P, an objective and a smoothing eps.
//     It caches each part's objective term (cut, Ncut or Mcut contribution,
//     self-loop weights included via the partition's internal-weight
//     accounting), maintains the running total, and keeps both in sync as
//     moves are committed through Apply/Assign. MoveDelta and MoveValue
//     answer hypothetical single-vertex moves without mutating the
//     partition.
//   - Delta is the stateless form: the same O(deg v) hypothetical-move
//     arithmetic against a bare partition, for callers (fusion-fission's
//     nucleon relaxation) whose partition is rebuilt and bulk-mutated too
//     often to keep a tracker bound.
//
// # Drift and Rebuild
//
// The running total is a float64 accumulator: every Apply adds and subtracts
// part terms, so it drifts from the freshly-summed value by O(1 ulp) per
// operation. Tracker bounds the drift deterministically, three ways: the
// accumulator uses Neumaier-compensated addition (a degenerate part's
// smoothed term can reach cut/eps, and its later removal must not leave the
// cancellation residue behind); removing a term that towers over the
// remaining total triggers an immediate resummation; and every rebuildEvery
// committed operations the tracker resums all terms from the partition's
// own statistics regardless, in ascending part order — the exact summation
// order of objective.EvaluateSmoothed — so Value() is periodically restored
// to bit equality with a full evaluation. Every trigger counts operations
// or compares committed values, never wall-clock, so runs stay
// reproducible. Rebuild can also be called explicitly after mutating the
// partition behind the tracker's back.
package score

import (
	"math"
	"unsafe"

	"repro/internal/objective"
	"repro/internal/partition"
)

// rebuildEvery is the deterministic resummation cadence: after this many
// committed Apply/Assign operations the tracker resums every term from
// scratch. At ~1 ulp of drift per operation the accumulated error stays
// around 1e-13 relative, far inside the 1e-9 agreement the tests demand.
const rebuildEvery = 4096

// Tracker maintains the smoothed objective of one partition incrementally.
// All mutations must go through Apply/Assign (or be followed by a Rebuild)
// for Value to stay correct; MoveDelta and MoveValue are always computed
// from the partition's live statistics and never go stale.
type Tracker struct {
	p   *partition.P
	obj objective.Objective
	eps float64

	term []float64 // cached objective term per part slot (0 when empty)
	// finite + comp is the running sum of the finite terms, maintained with
	// Neumaier-compensated addition: a degenerate part's smoothed term can
	// be ~cut/eps (orders of magnitude above the rest of the sum), and when
	// such a transient term is later subtracted back out, plain float64
	// accumulation would keep the cancellation residue forever. The
	// compensation recovers those low bits, keeping Value within 1e-9 of a
	// fresh evaluation between Rebuilds even through degenerate episodes.
	finite float64
	comp   float64
	infs   int // number of parts whose term is +Inf (eps = 0 Mcut)
	ops    int // committed operations since the last resummation

	// Connection cache: the (v, from, to) → (connA, connB, other) split the
	// last MoveValue/MoveValueConn computed, valid until the partition next
	// mutates. When Apply commits exactly that move it hands the cached
	// split to partition.MoveConns instead of letting Move rescan v's
	// adjacency — the propose-then-accept pattern of every Metropolis loop
	// pays one adjacency scan per accepted proposal instead of two.
	connV, connFrom, connTo int
	connA, connB, connOther float64
	// connTermA/connTermB are the post-move terms of `from` and `to` that
	// moveValueFromConns computed for the cached move; a cache-hit Apply
	// installs them directly instead of re-deriving obj.Term from the
	// updated statistics.
	connTermA, connTermB float64
	connValid            bool
}

// NewTracker binds a tracker to p and performs the initial O(capacity)
// resummation. eps is the smoothing added to every Ncut/Mcut denominator,
// exactly as in objective.EvaluateSmoothed; eps = 0 tracks the exact
// objective, including +Inf Mcut states.
func NewTracker(p *partition.P, obj objective.Objective, eps float64) *Tracker {
	t := &Tracker{
		p:    p,
		obj:  obj,
		eps:  eps,
		term: make([]float64, p.Capacity()),
	}
	t.Rebuild()
	return t
}

// Partition returns the tracked partition.
func (t *Tracker) Partition() *partition.P { return t.p }

// PartTerm returns part a's cached objective term — the summand Value
// maintains (0 for empty parts). Exposed for diagnostics and for frozen
// benchmark baselines that replicate historical delta arithmetic.
func (t *Tracker) PartTerm(a int) float64 { return t.term[a] }

// Value returns the current smoothed objective in O(1). It equals
// objective.EvaluateSmoothed(p, eps) up to the bounded accumulator drift,
// and exactly at every Rebuild point.
func (t *Tracker) Value() float64 {
	if t.infs > 0 {
		return math.Inf(1)
	}
	return t.finite + t.comp
}

// Rebuild resums every part term from the partition's statistics, in
// ascending part order — the summation order of objective.EvaluateSmoothed —
// restoring Value to exact equality with a full evaluation. O(capacity).
func (t *Tracker) Rebuild() {
	t.finite, t.comp, t.infs = 0, 0, 0
	for a := range t.term {
		if t.p.PartSize(a) == 0 {
			t.term[a] = 0
			continue
		}
		v := t.obj.Term(t.p.PartCut(a), t.p.PartInternalOrdered(a), t.eps)
		t.term[a] = v
		if math.IsInf(v, 1) {
			t.infs++
		} else {
			t.finite += v
		}
	}
	t.ops = 0
}

// MoveDelta returns the change of the smoothed objective if the assigned
// vertex v moved from part `from` to part `to`, in O(deg v), without
// mutating the partition. Infinite states follow Value's conventions:
// a move that resolves the last +Inf term returns -Inf, one that creates
// the first returns +Inf, and a move between two +Inf states returns 0.
func (t *Tracker) MoveDelta(v, from, to int) float64 {
	if from == to {
		return 0
	}
	after := t.MoveValue(v, from, to)
	before := t.Value()
	if math.IsInf(after, 1) && math.IsInf(before, 1) {
		return 0 // Inf - Inf would be NaN; an Inf-to-Inf move is neutral
	}
	return after - before
}

// MoveValue returns the smoothed objective the partition would have after
// moving the assigned vertex v from part `from` to part `to`, in O(deg v),
// without mutating the partition. Only the terms of `from` and `to` can
// change under a move (a third part's cut is unaffected), so the value is
// the running total with those two terms exchanged for their post-move
// versions.
func (t *Tracker) MoveValue(v, from, to int) float64 {
	if from == to {
		return t.Value()
	}
	connA, connB, other := moveConns(t.p, v, from, to)
	t.cacheConns(v, from, to, connA, connB, other)
	return t.moveValueFromConns(v, from, to, connA, connB, other)
}

// MoveValueConn is MoveValue for callers that already scanned v's
// neighborhood: connFrom and connTo are v's total edge weight into the two
// parts, other its weight into every other *assigned* neighbor. Refiners
// that accumulate per-part connection weights while collecting candidate
// parts (refine.KWay) evaluate each additional candidate in O(1) with this
// instead of paying a fresh O(deg v) scan per candidate.
func (t *Tracker) MoveValueConn(v, from, to int, connFrom, connTo, other float64) float64 {
	if from == to {
		return t.Value()
	}
	t.cacheConns(v, from, to, connFrom, connTo, other)
	return t.moveValueFromConns(v, from, to, connFrom, connTo, other)
}

// InvalidateConnCache drops the cached adjacency split, forcing the next
// Apply to rescan v's neighborhood. Call it after mutating the partition
// directly (alongside Rebuild) — a cached split predating the mutation would
// otherwise be trusted by an Apply of the same (v, from, to) triple.
func (t *Tracker) InvalidateConnCache() { t.connValid = false }

// cacheConns remembers the adjacency split of the move just evaluated so a
// matching Apply can commit it without rescanning.
func (t *Tracker) cacheConns(v, from, to int, connA, connB, other float64) {
	t.connV, t.connFrom, t.connTo = v, from, to
	t.connA, t.connB, t.connOther = connA, connB, other
	t.connValid = true
}

func (t *Tracker) moveValueFromConns(v, from, to int, connA, connB, other float64) float64 {
	cutA2, wA2, cutB2, wB2 := moveStatsFromConns(t.p, v, from, to, connA, connB, other)
	afterA := t.obj.Term(cutA2, wA2, t.eps)
	afterB := t.obj.Term(cutB2, wB2, t.eps)
	// Moving the last vertex out of `from` empties it; an empty part
	// contributes nothing (its stats are all zero, so Term already
	// returns 0 — asserting that here keeps eps = 0 Mcut out of 0/0).
	if t.p.PartSize(from) == 1 {
		afterA = 0
	}
	t.connTermA, t.connTermB = afterA, afterB // completes the cacheConns entry
	if t.infs == 0 && !math.IsInf(afterA, 1) && !math.IsInf(afterB, 1) {
		// No infinite terms anywhere: the swap below degenerates to four
		// adds in the exact same left-to-right order, minus the loop and
		// IsInf bookkeeping. Bit-identical to the general path.
		return t.finite + t.comp - t.term[from] - t.term[to] + afterA + afterB
	}
	finite, infs := t.finite+t.comp, t.infs
	for _, old := range [2]float64{t.term[from], t.term[to]} {
		if math.IsInf(old, 1) {
			infs--
		} else {
			finite -= old
		}
	}
	for _, nw := range [2]float64{afterA, afterB} {
		if math.IsInf(nw, 1) {
			infs++
		} else {
			finite += nw
		}
	}
	if infs > 0 {
		return math.Inf(1)
	}
	return finite
}

// Apply commits the move of vertex v to part `to` in O(deg v): the
// partition is mutated and the two affected terms are refreshed from its
// updated statistics. A no-op when v already sits in `to`.
func (t *Tracker) Apply(v, to int) {
	from := t.p.Part(v)
	if from == to {
		return
	}
	if t.connValid && t.connV == v && t.connFrom == from && t.connTo == to {
		t.p.MoveConns(v, to, t.connA, t.connB, t.connOther)
		t.connValid = false
		t.applyTermPair(from, to, t.connTermA, t.connTermB)
		t.bump()
		return
	}
	t.connValid = false
	t.p.Move(v, to)
	t.refresh(from)
	t.refresh(to)
	t.bump()
}

// Assign places an unassigned vertex v into part a and refreshes every
// affected term: a's, plus — unlike a move — the term of every distinct
// neighboring part, whose cut grows by the newly-counted crossing edges.
// O(deg v).
func (t *Tracker) Assign(v, a int) {
	t.connValid = false // assignment invalidates any cached adjacency split
	t.p.Assign(v, a)
	t.refresh(a)
	g := t.p.Graph()
	for _, u := range g.Neighbors(v) {
		b := t.p.Part(int(u))
		if b == partition.Unassigned || b == a {
			continue
		}
		t.refresh(b)
	}
	t.bump()
}

// refresh recomputes the cached term of part a from the partition's live
// statistics and folds the difference into the running total. Refreshing a
// part twice in one operation is harmless (the second refresh is a no-op),
// which is why Assign needs no neighbor-part dedup.
func (t *Tracker) refresh(a int) {
	var nw float64
	if t.p.PartSize(a) > 0 {
		nw = t.obj.Term(t.p.PartCut(a), t.p.PartInternalOrdered(a), t.eps)
	}
	t.applyTerm(a, nw)
}

// applyTerm installs part a's new objective term nw — either freshly
// recomputed (refresh) or carried over from the hypothetical-move arithmetic
// of a cache-hit Apply — and folds the difference into the running total.
func (t *Tracker) applyTerm(a int, nw float64) {
	old := t.term[a]
	if old == nw {
		return
	}
	if math.IsInf(old, 1) {
		t.infs--
	} else {
		t.add(-old)
	}
	if math.IsInf(nw, 1) {
		t.infs++
	} else {
		t.add(nw)
	}
	t.term[a] = nw
	// A term that towered over what now remains (a degenerate part's
	// cut/eps spike being repaired) leaves rounding residue that is large
	// *relative to the shrunken total*; resum immediately instead of
	// waiting for the operation cadence. The trigger depends only on the
	// committed move sequence, so determinism is preserved.
	if !math.IsInf(old, 1) && math.Abs(old) > 1e6*(1+math.Abs(t.finite+t.comp)) {
		t.Rebuild()
	}
}

// applyTermPair installs the two post-move terms a cache-hit Apply carries,
// straight-lining the all-finite case that is every Metropolis accept: the
// infinity bookkeeping collapses to one entry test and the tower-residue
// check runs once against the final total instead of once per term (the
// check is a conservative resum heuristic either way; its trigger still
// depends only on the committed move sequence, so determinism holds).
func (t *Tracker) applyTermPair(pa, pb int, na, nb float64) {
	if t.infs != 0 || math.IsInf(na, 1) || math.IsInf(nb, 1) {
		t.applyTerm(pa, na)
		t.applyTerm(pb, nb)
		return
	}
	// infs == 0 means both old terms are finite too.
	oa, ob := t.term[pa], t.term[pb]
	if oa != na {
		t.add(-oa)
		t.add(na)
		t.term[pa] = na
	}
	if ob != nb {
		t.add(-ob)
		t.add(nb)
		t.term[pb] = nb
	}
	if lim := 1e6 * (1 + math.Abs(t.finite+t.comp)); math.Abs(oa) > lim || math.Abs(ob) > lim {
		t.Rebuild()
	}
}

// add folds x into the running total with Neumaier's compensated addition,
// so terms that tower over the rest of the sum and are later removed do not
// leave their cancellation residue behind.
func (t *Tracker) add(x float64) {
	s := t.finite + x
	if math.Abs(t.finite) >= math.Abs(x) {
		t.comp += (t.finite - s) + x
	} else {
		t.comp += (x - s) + t.finite
	}
	t.finite = s
}

// bump counts a committed operation and resums at the deterministic cadence.
func (t *Tracker) bump() {
	t.ops++
	if t.ops >= rebuildEvery {
		t.Rebuild()
	}
}

// Delta returns the change of the smoothed objective if the assigned vertex
// v moved from part `from` to part `to`, in O(deg v), without mutating p —
// the stateless form of Tracker.MoveDelta for callers whose partition is
// bulk-mutated between queries. Both before-terms are read from p's live
// statistics. eps must be positive if degenerate (zero-internal-weight)
// parts can occur, or the Inf arithmetic of the Mcut terms yields NaN.
func Delta(p *partition.P, obj objective.Objective, eps float64, v, from, to int) float64 {
	if from == to {
		return 0
	}
	before := obj.Term(p.PartCut(from), p.PartInternalOrdered(from), eps) +
		obj.Term(p.PartCut(to), p.PartInternalOrdered(to), eps)
	cutA2, wA2, cutB2, wB2 := moveStats(p, v, from, to)
	after := obj.Term(cutA2, wA2, eps) + obj.Term(cutB2, wB2, eps)
	return after - before
}

// moveConns scans v's adjacency once and splits its incident edge weight
// into the connection to `from`, to `to`, and to every other assigned
// neighbor. Edges to unassigned vertices are excluded — they touch no cut.
// When the partition is complete, `other` is derived from the precomputed
// weighted degree instead of accumulated per neighbor: with k parts most
// neighbors land in neither `from` nor `to`, and skipping their adds keeps
// the scan to two accumulators.
func moveConns(p *partition.P, v, from, to int) (connA, connB, other float64) {
	g := p.Graph()
	nbrs := g.Neighbors(v)
	wts := g.Weights(v)
	if p.Complete() {
		if len(wts) < len(nbrs) {
			panic("score: adjacency weight slice shorter than neighbor slice")
		}
		// Prefer the int16 assignment mirror: half the footprint of the
		// int32 view, so the random per-neighbor loads stay L1-resident on
		// graphs twice as large. The accumulation is branchless — each
		// weight is masked to itself or +0.0 and always added, because a
		// neighbor's part is data-dependent noise no branch predictor
		// tracks — and runs two independent accumulator pairs so the adds
		// overlap instead of serializing on one float dependency chain.
		// Masked +0.0 adds are exact identities and integer-weight partial
		// sums are exact in either grouping, so the golden trajectories are
		// unchanged.
		if part := p.PartView16(); part != nil {
			f16, t16 := int16(from), int16(to)
			if g.UnitEdgeWeights() {
				// Unit weights make the weighted degree the neighbor count
				// exactly, saving the random wdeg load as well.
				wd := float64(len(nbrs))
				// Unit-weight graphs: count matching neighbors instead of
				// summing weights — the weight array is never loaded, so the
				// loop touches half the memory, and the counters are 1-cycle
				// integer adds with no float dependency chain. Sums of 1.0
				// below 2^53 equal float64(count) exactly, so this is
				// bit-identical to the weighted accumulation.
				var cA, cB int32
				// Every adjacency entry is a valid vertex id below
				// len(part) by graph construction, so the data-dependent
				// part lookups go through a raw pointer: the compiler
				// cannot prove the random indexes in range, and the
				// per-load bound checks it would otherwise emit are a
				// measurable fraction of this loop.
				pp := unsafe.Pointer(&part[0])
				i := 0
				if useConnsAVX2 && len(nbrs) >= connsKernelMinDeg {
					// Eight neighbors per gathered iteration; the scalar
					// loop below mops up the ragged tail. Exact integer
					// counts, so the split is bit-identical to the
					// all-scalar loop.
					n8 := len(nbrs) &^ 7
					cA, cB = connsCountAVX2(&nbrs[0], n8, &part[0], int32(from), int32(to))
					i = n8
				}
				// One accumulator pair, not an unrolled bank: the loop
				// body compiles to two CMOV increments per neighbor, and
				// keeping the live set at two counters plus two compare
				// operands is what keeps every value in registers — an
				// unrolled four-pair variant spills counters and loaded
				// parts to the stack each iteration and measures slower
				// than its extra ILP recovers.
				for ; i < len(nbrs); i++ {
					b := *(*int16)(unsafe.Add(pp, uintptr(uint32(nbrs[i]))*2))
					if b == f16 {
						cA++
					}
					if b == t16 {
						cB++
					}
				}
				connA = float64(cA)
				connB = float64(cB)
				return connA, connB, wd - connA - connB
			}
			wd := g.WeightedDegree(v)
			wts = wts[:len(nbrs)]
			var cA0, cB0, cA1, cB1 float64
			i := 0
			for ; i+2 <= len(nbrs); i += 2 {
				b0, b1 := part[nbrs[i]], part[nbrs[i+1]]
				w0 := math.Float64bits(wts[i])
				w1 := math.Float64bits(wts[i+1])
				var mA0, mB0, mA1, mB1 uint64
				if b0 == f16 {
					mA0 = ^uint64(0)
				}
				if b0 == t16 {
					mB0 = ^uint64(0)
				}
				if b1 == f16 {
					mA1 = ^uint64(0)
				}
				if b1 == t16 {
					mB1 = ^uint64(0)
				}
				cA0 += math.Float64frombits(w0 & mA0)
				cB0 += math.Float64frombits(w0 & mB0)
				cA1 += math.Float64frombits(w1 & mA1)
				cB1 += math.Float64frombits(w1 & mB1)
			}
			if i < len(nbrs) {
				b := part[nbrs[i]]
				wb := math.Float64bits(wts[i])
				var mA, mB uint64
				if b == f16 {
					mA = ^uint64(0)
				}
				if b == t16 {
					mB = ^uint64(0)
				}
				cA0 += math.Float64frombits(wb & mA)
				cB0 += math.Float64frombits(wb & mB)
			}
			connA = cA0 + cA1
			connB = cB0 + cB1
			return connA, connB, wd - connA - connB
		}
		{
			part := p.PartView()
			f32, t32 := int32(from), int32(to)
			for i, u := range nbrs {
				if b := part[u]; b == f32 {
					connA += wts[i]
				} else if b == t32 {
					connB += wts[i]
				}
			}
		}
		return connA, connB, g.WeightedDegree(v) - connA - connB
	}
	for i, u := range nbrs {
		switch p.Part(int(u)) {
		case partition.Unassigned:
		case from:
			connA += wts[i]
		case to:
			connB += wts[i]
		default:
			other += wts[i]
		}
	}
	return connA, connB, other
}

// connsKernelMinDeg is the degree below which the gathered count kernel is
// not worth calling: its fixed per-call cost (operand broadcasts, the
// horizontal lane sums, the call itself) is ~8 scalar iterations, so short
// adjacencies — the common case on the paper's geometric instances — stay
// on the unrolled scalar loop and only genuinely wide vertices (coarsened
// multilevel graphs, hubs) pay the kernel's setup for its 8-per-cycle
// steady state. Either path produces identical exact integer counts, so
// the crossover is pure tuning with no result drift.
const connsKernelMinDeg = 32

// NeighborsAllIn reports whether every assigned neighbor of v lies in part
// a — v is "interior" to a and no single move of v can reduce any cut-based
// objective's crossing weight, which is what lets refine.KWay skip the full
// candidate scan for the (vast, on locality-ordered graphs) majority of
// vertices. On a complete partition with an int16 mirror the check is the
// gathered count kernel when available; the portable path is a plain scan
// with an early exit.
func NeighborsAllIn(p *partition.P, v, a int) bool {
	g := p.Graph()
	nbrs := g.Neighbors(v)
	if part := p.PartView16(); part != nil && p.Complete() {
		a16 := int16(a)
		if useConnsAVX2 && len(nbrs) >= connsKernelMinDeg {
			n8 := len(nbrs) &^ 7
			cnt, _ := connsCountAVX2(&nbrs[0], n8, &part[0], int32(a), int32(a))
			if int(cnt) != n8 {
				return false
			}
			for _, u := range nbrs[n8:] {
				if part[u] != a16 {
					return false
				}
			}
			return true
		}
		for _, u := range nbrs {
			if part[u] != a16 {
				return false
			}
		}
		return true
	}
	for _, u := range nbrs {
		if b := p.Part(int(u)); b != a && b != partition.Unassigned {
			return false
		}
	}
	return true
}

// moveStats computes, in one O(deg v) adjacency scan, the (cut, ordered
// internal weight) both affected parts would have after moving v from part
// `from` to part `to`.
func moveStats(p *partition.P, v, from, to int) (cutA2, wA2, cutB2, wB2 float64) {
	connA, connB, other := moveConns(p, v, from, to)
	return moveStatsFromConns(p, v, from, to, connA, connB, other)
}

// moveStatsFromConns is the O(1) delta arithmetic under moveStats, for
// callers that already hold v's per-part connection weights. A self-loop on
// v carries its doubled weight between the parts' internal weights, exactly
// as partition.Move does.
func moveStatsFromConns(p *partition.P, v, from, to int, connA, connB, other float64) (cutA2, wA2, cutB2, wB2 float64) {
	cutA, wA := p.PartCut(from), p.PartInternalOrdered(from)
	cutB, wB := p.PartCut(to), p.PartInternalOrdered(to)
	loop2 := 2 * p.Graph().VertexLoop(v)
	// Leaving `from`: internal v-from edges become crossing, v's crossing
	// edges no longer touch `from`. Entering `to` symmetrically.
	cutA2 = cutA + connA - connB - other
	wA2 = wA - 2*connA - loop2
	cutB2 = cutB + connA - connB + other
	wB2 = wB + 2*connB + loop2
	return cutA2, wA2, cutB2, wB2
}
