//go:build amd64

package score

import (
	"os"

	"repro/internal/partition"
)

// useConnsAVX2 gates the gathered conns-count kernel, probed once at
// startup. It shares partition's CPU probe (and FF_NOAVX2 hatch) so one
// switch governs every hand-written vector kernel, and additionally honors
// FF_NOBATCH so the batched-evaluation escape hatch disables the whole
// SIMD-assisted proposal path as a unit.
var useConnsAVX2 = partition.HasAVX2() && os.Getenv("FF_NOBATCH") == ""

// connsCountAVX2 counts, over the first n entries of v's neighbor list
// (n > 0 and divisible by 8), how many neighbors lie in part `from` and in
// part `to`, reading assignments from the partition's padded int16 mirror.
// Implemented in conns_amd64.s.
func connsCountAVX2(nbrs *int32, n int, part *int16, from, to int32) (cntFrom, cntTo int32)
