package score

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// TestConnsCountKernelMatchesScalar drives the gathered count kernel over
// random complete partitions and checks it against the obvious scalar count
// for every (vertex, from, to) shape, including from == to (the interior
// predicate's usage) and parts absent from the neighborhood.
func TestConnsCountKernelMatchesScalar(t *testing.T) {
	if !useConnsAVX2 {
		t.Skip("gathered conns kernel inactive (no AVX2, FF_NOAVX2 or FF_NOBATCH)")
	}
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 12 + r.Intn(120)
		g := graph.GNP(n, 0.35, seed+1) // dense enough for degrees past 8
		k := 2 + r.Intn(10)
		assign := make([]int32, n)
		for v := range assign {
			assign[v] = int32(r.Intn(k))
		}
		p, err := partition.FromAssignment(g, assign, k)
		if err != nil {
			return false
		}
		part := p.PartView16()
		for trial := 0; trial < 50; trial++ {
			v := r.Intn(n)
			nbrs := g.Neighbors(v)
			if len(nbrs) < 8 {
				continue
			}
			from := int32(r.Intn(k))
			to := int32(r.Intn(k))
			if trial%5 == 0 {
				to = from
			}
			n8 := len(nbrs) &^ 7
			gotF, gotT := connsCountAVX2(&nbrs[0], n8, &part[0], from, to)
			var wantF, wantT int32
			for _, u := range nbrs[:n8] {
				if part[u] == int16(from) {
					wantF++
				}
				if part[u] == int16(to) {
					wantT++
				}
			}
			if gotF != wantF || gotT != wantT {
				t.Logf("seed %d v %d from %d to %d: kernel (%d,%d), want (%d,%d)",
					seed, v, from, to, gotF, gotT, wantF, wantT)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestNeighborsAllInMatchesReference checks the interior predicate against
// its specification on random graphs, both complete and incomplete
// partitions, whatever kernel path is active.
func TestNeighborsAllInMatchesReference(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 6 + r.Intn(80)
		g := graph.GNP(n, 0.3, seed+2)
		k := 2 + r.Intn(6)
		p := partition.New(g, k)
		// Leave a random suffix unassigned on odd seeds.
		assignUpTo := n
		if seed%2 == 1 {
			assignUpTo = 1 + r.Intn(n)
		}
		for v := 0; v < assignUpTo; v++ {
			p.Assign(v, r.Intn(k))
		}
		// Bias some neighborhoods to be uniform so the "interior" answer is
		// exercised, not just the early exit.
		if assignUpTo == n && n > 4 {
			v := r.Intn(n)
			a := p.Part(v)
			for _, u := range g.Neighbors(v) {
				p.Move(int(u), a)
			}
		}
		for trial := 0; trial < 60; trial++ {
			v := r.Intn(n)
			a := r.Intn(k)
			if p.Part(v) >= 0 && trial%2 == 0 {
				a = p.Part(v)
			}
			want := true
			for _, u := range g.Neighbors(v) {
				if b := p.Part(int(u)); b != a && b != partition.Unassigned {
					want = false
					break
				}
			}
			if got := NeighborsAllIn(p, v, a); got != want {
				t.Logf("seed %d v %d a %d: NeighborsAllIn = %v, want %v", seed, v, a, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
