package score_test

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/refine"
	"repro/internal/rng"
	"repro/internal/score"
)

// Benchmarks for the incremental scoring layer, comparing against frozen
// replicas of the pre-score evaluation paths:
//
//   - BenchmarkKWayRefine: greedy k-way refinement sweeps, the hot path of
//     every multilevel V-cycle projection. "fulleval" replicates the old
//     refine.KWay inner loop (Move + full O(k) Objective.Evaluate + un-Move
//     per candidate); "tracker" is the real refine.KWay, now O(deg) per
//     candidate through score.Tracker.MoveValue.
//   - BenchmarkAnnealSteps: the Metropolis proposal kernel. "fulleval"
//     replicates the old anneal move loop (Move + full EvaluateSmoothed +
//     un-Move on refusal); "tracker" proposes via MoveDelta and commits via
//     Apply.
//
// The committed BENCH_score.json baseline is regenerated on the ISSUE-5
// acceptance instance (10k-vertex random geometric graph, k = 32) with:
//
//	BENCH_SCORE_BASELINE=1 go test -run TestWriteScoreBaseline -timeout 30m ./internal/score/
//
// The Benchmark* functions below are the CI smoke-sized versions of the
// same measurements.

// fullEvalKWay is a faithful replica of refine.KWay as it stood before the
// scoring layer: per candidate move it mutates the partition, re-evaluates
// the whole objective in O(k), and undoes the move. Kept as the benchmark
// baseline so the speedup of the incremental path stays measurable.
func fullEvalKWay(p *partition.P, obj objective.Objective, maxPasses int, imbalance float64) float64 {
	g := p.Graph()
	n := g.NumVertices()
	k := p.NumParts()
	if k < 2 {
		return obj.Evaluate(p)
	}
	maxW := g.TotalVertexWeight() / float64(k) * (1 + imbalance)
	cur := obj.Evaluate(p)
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for v := 0; v < n; v++ {
			from := p.Part(v)
			if p.PartSize(from) <= 1 {
				continue
			}
			var cands []int
			seen := map[int]bool{from: true}
			for _, u := range g.Neighbors(v) {
				b := p.Part(int(u))
				if b != partition.Unassigned && !seen[b] {
					seen[b] = true
					cands = append(cands, b)
				}
			}
			vw := g.VertexWeight(v)
			bestPart, bestVal := -1, cur
			for _, to := range cands {
				if p.PartVertexWeight(to)+vw > maxW {
					continue
				}
				p.Move(v, to)
				if val := obj.Evaluate(p); val < bestVal-1e-12 {
					bestVal, bestPart = val, to
				}
				p.Move(v, from)
			}
			if bestPart >= 0 {
				p.Move(v, bestPart)
				cur = bestVal
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// annealSteps runs `steps` Metropolis proposals over p with the old
// full-evaluation acceptance (useTracker false) or the incremental path
// (useTracker true), returning the final smoothed energy. Both paths draw
// from identically seeded RNGs; their move sequences stay statistically
// equivalent but may diverge at accumulator-drift-level ties (a delta
// within ~1e-13 of zero short-circuits the acceptance draw on one side and
// not the other), which is noise for a wall-clock comparison.
func annealSteps(p *partition.P, obj objective.Objective, eps float64, steps int, seed int64, useTracker bool) float64 {
	g := p.Graph()
	n := g.NumVertices()
	r := rng.New(seed)
	temp := 0.05
	var tr *score.Tracker
	var curE float64
	if useTracker {
		tr = score.NewTracker(p, obj, eps)
		curE = tr.Value()
	} else {
		curE = obj.EvaluateSmoothed(p, eps)
	}
	for i := 0; i < steps; i++ {
		v := r.Intn(n)
		from := p.Part(v)
		if p.PartSize(from) <= 1 {
			continue
		}
		to := -1
		for _, u := range g.Neighbors(v) {
			if b := p.Part(int(u)); b != from && b != partition.Unassigned {
				to = b
				break
			}
		}
		if to < 0 {
			continue
		}
		if useTracker {
			delta := tr.MoveDelta(v, from, to)
			accept := delta <= 0 || r.Float64() < math.Exp(-delta/temp)
			if accept {
				tr.Apply(v, to)
				curE = tr.Value()
			}
		} else {
			p.Move(v, to)
			newE := obj.EvaluateSmoothed(p, eps)
			accept := newE <= curE || r.Float64() < math.Exp((curE-newE)/temp)
			if accept {
				curE = newE
			} else {
				p.Move(v, from)
			}
		}
	}
	return curE
}

func benchPartition(tb testing.TB, n int, radius float64, k int) (*graph.Graph, []int32) {
	tb.Helper()
	g := graph.RandomGeometric(n, radius, 1)
	r := rng.New(7)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(r.Intn(k))
	}
	return g, assign
}

func BenchmarkKWayRefine(b *testing.B) {
	const k = 16
	g, assign := benchPartition(b, 2000, 0.04, k)
	for _, side := range []string{"fulleval", "tracker"} {
		b.Run(side, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := partition.FromAssignment(g, assign, k)
				if err != nil {
					b.Fatal(err)
				}
				if side == "tracker" {
					refine.KWay(p, refine.KWayOptions{Objective: objective.MCut, MaxPasses: 2})
				} else {
					fullEvalKWay(p, objective.MCut, 2, 0.10)
				}
			}
		})
	}
}

func BenchmarkAnnealSteps(b *testing.B) {
	const k = 16
	g, assign := benchPartition(b, 2000, 0.04, k)
	eps := 1e-6 * (2 * g.TotalEdgeWeight() / float64(g.NumVertices()))
	for _, side := range []string{"fulleval", "tracker"} {
		b.Run(side, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p, err := partition.FromAssignment(g, assign, k)
				if err != nil {
					b.Fatal(err)
				}
				annealSteps(p, objective.MCut, eps, 20000, 3, side == "tracker")
			}
		})
	}
}

// scoreBaseline is the committed BENCH_score.json document.
type scoreBaseline struct {
	Graph            string  `json:"graph"`
	K                int     `json:"k"`
	Note             string  `json:"note"`
	KWayPasses       int     `json:"kway_passes"`
	KWayFullEvalMS   float64 `json:"kway_fulleval_ms"`
	KWayTrackerMS    float64 `json:"kway_tracker_ms"`
	KWaySpeedup      float64 `json:"kway_speedup"`
	AnnealSteps      int     `json:"anneal_steps"`
	AnnealFullMS     float64 `json:"anneal_fulleval_ms"`
	AnnealTrackerMS  float64 `json:"anneal_tracker_ms"`
	AnnealSpeedup    float64 `json:"anneal_speedup"`
	ObjectiveAgreeTo float64 `json:"objective_agreement_tolerance"`
}

// TestWriteScoreBaseline regenerates BENCH_score.json on the acceptance
// instance and enforces the ISSUE-5 criterion: KWay refinement sweeps at
// least 3x faster through the tracker on a 10k-vertex, k = 32 graph, with
// both paths' final objectives agreeing with a from-scratch evaluation.
func TestWriteScoreBaseline(t *testing.T) {
	if os.Getenv("BENCH_SCORE_BASELINE") == "" {
		t.Skip("set BENCH_SCORE_BASELINE=1 to regenerate BENCH_score.json")
	}
	const k = 32
	const passes = 2
	g := graph.RandomGeometric(10000, 0.02, 1)
	r := rng.New(7)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(r.Intn(k))
	}
	build := func() *partition.P {
		p, err := partition.FromAssignment(g, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	timeIt := func(f func()) float64 {
		best := math.Inf(1)
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			f()
			if ms := float64(time.Since(start).Microseconds()) / 1000; ms < best {
				best = ms
			}
		}
		return best
	}

	doc := scoreBaseline{
		Graph: fmt.Sprintf("RandomGeometric(10000, 0.02, seed 1): %d vertices, %d edges",
			g.NumVertices(), g.NumEdges()),
		K:          k,
		KWayPasses: passes,
		Note: "KWay refinement sweeps and Metropolis proposal steps, old full-evaluation " +
			"path vs the incremental scoring layer (internal/score); times are best-of-3 " +
			"on one core. The acceptance gate is kway_speedup >= 3.",
		AnnealSteps:      200000,
		ObjectiveAgreeTo: 1e-9,
	}

	var fullVal, trackVal float64
	doc.KWayFullEvalMS = timeIt(func() {
		p := build()
		fullVal = fullEvalKWay(p, objective.MCut, passes, 0.10)
	})
	doc.KWayTrackerMS = timeIt(func() {
		p := build()
		trackVal = refine.KWay(p, refine.KWayOptions{Objective: objective.MCut, MaxPasses: passes})
	})
	doc.KWaySpeedup = doc.KWayFullEvalMS / doc.KWayTrackerMS
	t.Logf("KWay: fulleval %.1fms tracker %.1fms speedup %.1fx (objective %.6f vs %.6f)",
		doc.KWayFullEvalMS, doc.KWayTrackerMS, doc.KWaySpeedup, fullVal, trackVal)
	if doc.KWaySpeedup < 3 {
		t.Errorf("KWay tracker speedup %.2fx < 3x acceptance threshold", doc.KWaySpeedup)
	}

	eps := 1e-6 * (2 * g.TotalEdgeWeight() / float64(g.NumVertices()))
	doc.AnnealFullMS = timeIt(func() {
		annealSteps(build(), objective.MCut, eps, doc.AnnealSteps, 3, false)
	})
	doc.AnnealTrackerMS = timeIt(func() {
		annealSteps(build(), objective.MCut, eps, doc.AnnealSteps, 3, true)
	})
	doc.AnnealSpeedup = doc.AnnealFullMS / doc.AnnealTrackerMS
	t.Logf("Anneal: fulleval %.1fms tracker %.1fms speedup %.1fx",
		doc.AnnealFullMS, doc.AnnealTrackerMS, doc.AnnealSpeedup)

	// Agreement gate: both paths' reported objectives must match a full
	// re-evaluation of their final partitions within the committed tolerance.
	for _, side := range []string{"fulleval", "tracker"} {
		p := build()
		var got float64
		if side == "tracker" {
			got = refine.KWay(p, refine.KWayOptions{Objective: objective.MCut, MaxPasses: passes})
		} else {
			got = fullEvalKWay(p, objective.MCut, passes, 0.10)
		}
		want := objective.MCut.Evaluate(p)
		if math.Abs(got-want) > doc.ObjectiveAgreeTo*(1+math.Abs(want)) {
			t.Errorf("%s: reported %.12f, Evaluate %.12f", side, got, want)
		}
	}

	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_score.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}
