// Package linear implements Chaco's "linear" global partitioning scheme: the
// vertices are cut into contiguous index ranges of (nearly) equal vertex
// weight. On its own it ignores the edge structure entirely — the Table 1
// baseline "Linear (Bi)" — and with KL refinement after each split it becomes
// the "Linear (Bi, KL)" and "Linear (Oct, KL)" rows.
package linear

import (
	"context"
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/refine"
)

// Options configures linear partitioning.
type Options struct {
	// Arity is the split width per recursion level: 2 for recursive
	// bisection, 8 for recursive octasection. Default 2.
	Arity int
	// KL enables Kernighan-Lin refinement after each split (pairwise KL for
	// multiway splits).
	KL bool
	// Imbalance is passed to the KL refinement (default 0.05).
	Imbalance float64
}

// Partition cuts g into k parts. The returned partition uses part ids
// 0..k-1. k must be in [1, n].
func Partition(g *graph.Graph, k int, opt Options) (*partition.P, error) {
	return PartitionContext(context.Background(), g, k, opt)
}

// PartitionContext is Partition under cooperative cancellation: the
// recursive splits and their KL refinement poll ctx, and the call returns
// ctx.Err() once it fires. No partial partition is returned.
func PartitionContext(ctx context.Context, g *graph.Graph, k int, opt Options) (*partition.P, error) {
	n := g.NumVertices()
	if k < 1 || k > n {
		return nil, fmt.Errorf("linear: k=%d out of range [1,%d]", k, n)
	}
	if opt.Arity == 0 {
		opt.Arity = 2
	}
	if opt.Arity < 2 {
		return nil, fmt.Errorf("linear: arity must be >= 2, got %d", opt.Arity)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	assign := make([]int32, n)
	verts := make([]int32, n)
	for v := range verts {
		verts[v] = int32(v)
	}
	nextPart := int32(0)
	split(ctx, g, verts, k, opt, assign, &nextPart)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return partition.FromAssignment(g, assign, k)
}

// split recursively partitions the index-ordered vertex list into kNode
// parts, writing final part ids into assign. It unwinds without finishing
// the assignment once ctx is cancelled; the caller must check ctx.Err().
func split(ctx context.Context, g *graph.Graph, verts []int32, kNode int, opt Options, assign []int32, nextPart *int32) {
	if ctx.Err() != nil {
		return
	}
	if kNode == 1 {
		id := *nextPart
		*nextPart++
		for _, v := range verts {
			assign[v] = id
		}
		return
	}
	groups := opt.Arity
	if groups > kNode {
		groups = kNode
	}
	// Distribute kNode part counts over the groups as evenly as possible.
	kPer := make([]int, groups)
	for i := range kPer {
		kPer[i] = kNode / groups
		if i < kNode%groups {
			kPer[i]++
		}
	}
	// Contiguous chunks with vertex weight proportional to part counts.
	// Each group must receive at least as many vertices as the parts it
	// will be split into, and must leave enough for the groups after it.
	totalW := 0.0
	for _, v := range verts {
		totalW += g.VertexWeight(int(v))
	}
	needAfter := make([]int, groups+1) // total parts needed by groups > gi
	for gi := groups - 1; gi >= 0; gi-- {
		needAfter[gi] = needAfter[gi+1] + kPer[gi]
	}
	local := make([]int32, len(verts)) // group of each local index
	chunkOf := make([][]int32, groups)
	idx := 0
	accW := 0.0
	for gi := 0; gi < groups; gi++ {
		targetW := accW + totalW*float64(kPer[gi])/float64(kNode)
		start := idx
		for idx < len(verts) {
			if len(verts)-idx <= needAfter[gi+1] {
				break // later groups need every remaining vertex
			}
			vw := g.VertexWeight(int(verts[idx]))
			if gi < groups-1 && idx-start >= kPer[gi] && accW+vw > targetW+1e-12 {
				break // weight target reached and minimum count satisfied
			}
			accW += vw
			local[idx] = int32(gi)
			idx++
		}
		chunkOf[gi] = verts[start:idx]
	}

	if opt.KL {
		sub := graph.Induced(g, verts)
		if groups == 2 {
			side := append([]int32(nil), local...)
			w0 := 0.0
			for i := range side {
				if side[i] == 0 {
					w0 += g.VertexWeight(int(verts[i]))
				}
			}
			refine.KL(sub.G, side, refine.BisectOptions{TargetWeight0: w0, Imbalance: opt.Imbalance, Ctx: ctx})
			copy(local, side)
		} else {
			refine.PairwiseKL(sub.G, local, groups, refine.BisectOptions{Imbalance: opt.Imbalance, Ctx: ctx})
		}
		// Rebuild group membership after refinement.
		chunkOf = make([][]int32, groups)
		for i, v := range verts {
			gi := local[i]
			chunkOf[gi] = append(chunkOf[gi], v)
		}
	}

	for gi := 0; gi < groups; gi++ {
		if len(chunkOf[gi]) == 0 {
			// A group emptied by refinement: its part ids must still be
			// allocated so downstream ids stay consistent; give it fresh
			// ids with no vertices, then continue. This cannot happen for
			// KL (swap-based), but guard anyway.
			*nextPart += int32(kPer[gi])
			continue
		}
		split(ctx, g, chunkOf[gi], kPer[gi], opt, assign, nextPart)
	}
}
