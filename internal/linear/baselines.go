package linear

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Random and Scattered are the remaining structure-blind global schemes of
// the Chaco toolchain. Together with the linear scheme they bracket what any
// edge-aware method must beat.

// Random assigns vertices to parts uniformly at random, then repairs
// balance by moving vertices from overfull to underfull parts.
func Random(g *graph.Graph, k int, seed int64) (*partition.P, error) {
	n := g.NumVertices()
	if k < 1 || k > n {
		return nil, fmt.Errorf("linear: k=%d out of range [1,%d]", k, n)
	}
	r := rng.New(seed)
	assign := make([]int32, n)
	for v := range assign {
		assign[v] = int32(r.Intn(k))
	}
	p, err := partition.FromAssignment(g, assign, k)
	if err != nil {
		return nil, err
	}
	// Repair: move vertices from the heaviest part to the lightest until
	// sizes are within one of each other.
	for {
		heavy, light := -1, -1
		for a := 0; a < k; a++ {
			if heavy < 0 || p.PartSize(a) > p.PartSize(heavy) {
				heavy = a
			}
			if light < 0 || p.PartSize(a) < p.PartSize(light) {
				light = a
			}
		}
		if p.PartSize(heavy)-p.PartSize(light) <= 1 {
			break
		}
		movers := p.VerticesOf(heavy)
		p.Move(int(movers[r.Intn(len(movers))]), light)
	}
	return p, nil
}

// Scattered deals vertices round-robin over the parts (Chaco's "scattered"
// scheme): perfectly balanced by count, maximally oblivious to locality.
func Scattered(g *graph.Graph, k int) (*partition.P, error) {
	n := g.NumVertices()
	if k < 1 || k > n {
		return nil, fmt.Errorf("linear: k=%d out of range [1,%d]", k, n)
	}
	assign := make([]int32, n)
	for v := range assign {
		assign[v] = int32(v % k)
	}
	return partition.FromAssignment(g, assign, k)
}
