package linear

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
)

func TestBisectPath(t *testing.T) {
	g := graph.Path(16)
	p, err := Partition(g, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 4 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
	// For a path, index order is optimal: 3 crossing edges.
	if p.CrossingWeight() != 3 {
		t.Fatalf("crossing = %g, want 3", p.CrossingWeight())
	}
	for a := 0; a < 4; a++ {
		if p.PartSize(a) != 4 {
			t.Fatalf("part %d size %d, want 4", a, p.PartSize(a))
		}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLinearIgnoresStructureButKLFixesIt(t *testing.T) {
	// Interleave two cliques so that index order is pessimal.
	a, b := 8, 8
	bld := graph.NewBuilder(a + b)
	// Even indices = clique A, odd = clique B.
	for i := 0; i < a; i++ {
		for j := i + 1; j < a; j++ {
			bld.AddEdge(2*i, 2*j, 1)
		}
	}
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			bld.AddEdge(2*i+1, 2*j+1, 1)
		}
	}
	bld.AddEdge(0, 1, 1)
	g := bld.MustBuild()

	plain, err := Partition(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kl, err := Partition(g, 2, Options{KL: true})
	if err != nil {
		t.Fatal(err)
	}
	if kl.CrossingWeight() >= plain.CrossingWeight() {
		t.Fatalf("KL (%g) did not beat plain linear (%g)", kl.CrossingWeight(), plain.CrossingWeight())
	}
	if kl.CrossingWeight() != 1 {
		t.Fatalf("KL crossing = %g, want the single bridge", kl.CrossingWeight())
	}
}

func TestOctasection(t *testing.T) {
	g := graph.Grid2D(8, 8)
	p, err := Partition(g, 8, Options{Arity: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 8 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
	for a := 0; a < 8; a++ {
		if p.PartSize(a) != 8 {
			t.Fatalf("part %d size %d, want 8", a, p.PartSize(a))
		}
	}
}

func TestOctKL32Parts(t *testing.T) {
	g := graph.Grid2D(16, 16)
	p, err := Partition(g, 32, Options{Arity: 8, KL: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 32 {
		t.Fatalf("NumParts = %d, want 32", p.NumParts())
	}
	if imb := objective.Imbalance(p); imb > 0.30 {
		t.Fatalf("imbalance %.2f too large", imb)
	}
}

func TestNonPowerOfTwoK(t *testing.T) {
	g := graph.Cycle(30)
	for _, k := range []int{3, 5, 7, 11} {
		p, err := Partition(g, k, Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.NumParts() != k {
			t.Fatalf("k=%d: NumParts = %d", k, p.NumParts())
		}
	}
}

func TestKEqualsNAndOne(t *testing.T) {
	g := graph.Path(6)
	p, err := Partition(g, 6, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 6 {
		t.Fatalf("k=n: NumParts = %d", p.NumParts())
	}
	p1, err := Partition(g, 1, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p1.NumParts() != 1 || p1.CrossingWeight() != 0 {
		t.Fatalf("k=1: parts=%d crossing=%g", p1.NumParts(), p1.CrossingWeight())
	}
}

func TestErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := Partition(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Partition(g, 5, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Partition(g, 2, Options{Arity: 1}); err == nil {
		t.Fatal("arity 1 accepted")
	}
}

func TestWeightedVerticesBalancedByWeight(t *testing.T) {
	b := graph.NewBuilder(6)
	for i := 0; i+1 < 6; i++ {
		b.AddEdge(i, i+1, 1)
	}
	b.SetVertexWeight(0, 5) // vertex 0 as heavy as the rest combined
	g := b.MustBuild()
	p, err := Partition(g, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Weight split should be 5 vs 5, i.e. vertex 0 alone on one side.
	if p.PartSize(p.Part(0)) != 1 {
		t.Fatalf("heavy vertex not isolated; its part has %d vertices", p.PartSize(p.Part(0)))
	}
}
