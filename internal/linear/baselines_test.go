package linear

import (
	"testing"

	"repro/internal/graph"
)

func TestRandomBalancedAndComplete(t *testing.T) {
	g := graph.Grid2D(9, 9)
	p, err := Random(g, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 4 || !p.Complete() {
		t.Fatalf("parts=%d complete=%v", p.NumParts(), p.Complete())
	}
	// Sizes within one of each other after repair.
	min, max := 81, 0
	for a := 0; a < 4; a++ {
		s := p.PartSize(a)
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if max-min > 1 {
		t.Fatalf("sizes spread %d..%d after repair", min, max)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRandomDeterministic(t *testing.T) {
	g := graph.Grid2D(6, 6)
	p1, _ := Random(g, 3, 42)
	p2, _ := Random(g, 3, 42)
	a1, a2 := p1.Assignment(), p2.Assignment()
	for v := range a1 {
		if a1[v] != a2[v] {
			t.Fatal("Random not deterministic")
		}
	}
}

func TestScatteredRoundRobin(t *testing.T) {
	g := graph.Path(10)
	p, err := Scattered(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Part(0) != 0 || p.Part(1) != 1 || p.Part(2) != 2 || p.Part(3) != 0 {
		t.Fatalf("not round-robin: %v", p.Assignment())
	}
	// Scattered on a path cuts almost every edge: the worst sane baseline.
	if p.CrossingWeight() != 9 {
		t.Fatalf("crossing = %g, want all 9 edges", p.CrossingWeight())
	}
}

func TestBaselineErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := Random(g, 0, 1); err == nil {
		t.Fatal("Random k=0 accepted")
	}
	if _, err := Random(g, 5, 1); err == nil {
		t.Fatal("Random k>n accepted")
	}
	if _, err := Scattered(g, 0); err == nil {
		t.Fatal("Scattered k=0 accepted")
	}
	if _, err := Scattered(g, 9); err == nil {
		t.Fatal("Scattered k>n accepted")
	}
}
