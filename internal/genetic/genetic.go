// Package genetic implements a genetic-algorithm partitioner, the prior
// metaheuristic family the paper's introduction cites ([28] Talbi-Bessiere,
// [12] Greene) as having been applied to graph partitioning before fusion-
// fission. It is provided as an extension baseline, not a Table 1 row:
// a steady-state GA over assignments with tournament selection, uniform
// crossover followed by balance repair, move mutation, and elitism.
//
// With Options.MemeticCrossover the GA becomes a memetic multilevel
// algorithm in the KaHyPar/KaFFPaE mould: crossover is replaced by
// memetic.Recombine — a V-cycle whose coarsening protects both parents' cut
// edges, so the offspring is floor-guaranteed never worse than the better
// parent — and most children are pure recombinations (the V-cycle's
// refinement is the memetic local search, reusing the offspring's
// score.Tracker state instead of rebuilding it), with a minority of
// mutation children keeping diversity. Foreign incumbents arriving over the
// portfolio/island exchange are recombined with the current best rather
// than inserted raw, the natural restart point Sanders & Schulz use in
// distributed evolutionary partitioning. The flat GA's random stream is
// untouched when the option is off: every memetic draw happens behind the
// flag, so existing goldens stay bit-identical.
package genetic

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/memetic"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/percolation"
	"repro/internal/refine"
	"repro/internal/rng"
)

// Options configures the GA.
type Options struct {
	// Objective is the fitness criterion (default MCut).
	Objective objective.Objective
	// Population size (default 24).
	Population int
	// TournamentSize for parent selection (default 3).
	TournamentSize int
	// MutationRate is the per-child expected number of random vertex moves
	// (default 4).
	MutationRate int
	// Elite is how many best individuals survive unchanged (default 2).
	Elite int
	// LocalSearch applies one greedy k-way pass to each child (memetic
	// variant; default true — set DisableLocalSearch to ablate).
	DisableLocalSearch bool
	// Generations caps the evolution (default 200).
	Generations int
	// MemeticCrossover replaces flat label-aligned crossover with the
	// cut-protecting V-cycle recombination of internal/memetic. Children are
	// never worse than their better parent; the population default shrinks
	// to 12 because each recombination is a full multilevel pass.
	MemeticCrossover bool
	// CoarsenTo bounds the protected hierarchy's coarsening cutoff when
	// MemeticCrossover is set (0 selects the vcycle default for k).
	CoarsenTo int
	// Budget caps wall-clock time; 0 means no limit.
	Budget time.Duration
	// Seed drives all randomness.
	Seed int64
	// Initial optionally seeds the population with a starting partition: it
	// replaces one member of the initial population and elitism carries it
	// forward while it stays among the best, so the evolution never starts
	// worse than it. When nil the population is percolation + random,
	// bit-identical to earlier releases.
	Initial *partition.P
	// Runtime optionally attaches the run to a shared engine runtime — the
	// portfolio incumbent exchange and the live-progress monitor. Nil for
	// standalone runs.
	Runtime *engine.Runtime
}

func (o Options) withDefaults() Options {
	if o.Population == 0 {
		o.Population = 24
		if o.MemeticCrossover {
			o.Population = 12
		}
	}
	if o.TournamentSize == 0 {
		o.TournamentSize = 3
	}
	if o.MutationRate == 0 {
		o.MutationRate = 4
	}
	if o.Elite == 0 {
		o.Elite = 2
	}
	if o.Generations == 0 {
		o.Generations = 200
	}
	return o
}

// Result is the GA outcome.
type Result struct {
	Best        *partition.P
	Energy      float64
	Generations int
	// Cancelled reports that the run was interrupted by context
	// cancellation and Best is the best individual found so far.
	Cancelled bool
}

type individual struct {
	assign  []int32
	fitness float64
}

// Partition evolves a k-way partition of g.
func Partition(g *graph.Graph, k int, opt Options) (*Result, error) {
	return PartitionContext(context.Background(), g, k, opt)
}

// PartitionContext is Partition under cooperative cancellation: the
// evolution loop polls ctx per generation and per child alongside its budget
// check and, once ctx fires, returns the best individual so far with
// Result.Cancelled set. A context that is done before any population exists
// yields (nil, ctx.Err()).
func PartitionContext(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := g.NumVertices()
	if k < 2 || k > n {
		return nil, fmt.Errorf("genetic: k=%d out of range [2,%d]", k, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.Initial != nil && opt.Initial.Graph() != g {
		return nil, fmt.Errorf("genetic: initial partition is for a different graph")
	}
	r := rng.New(opt.Seed)
	eps := 1e-6 * (2 * g.TotalEdgeWeight() / float64(n))
	fitnessOf := func(assign []int32) float64 {
		p, err := partition.FromAssignment(g, assign, k)
		if err != nil {
			return 1e300
		}
		return opt.Objective.EvaluateSmoothed(p, eps)
	}

	// Initial population: percolation partitions from diverse seeds plus
	// random assignments for diversity.
	initPoll := engine.NewPoll(ctx, 1)
	pop := make([]individual, 0, opt.Population)
	for i := 0; len(pop) < opt.Population; i++ {
		if initPoll.Due() {
			return nil, initPoll.Err()
		}
		var assign []int32
		if i%2 == 0 {
			p, err := percolation.PartitionContext(ctx, g, k, percolation.Options{Seed: opt.Seed + int64(i)})
			if err == nil {
				assign = p.Assignment()
			} else if ctx.Err() != nil {
				return nil, ctx.Err()
			}
		}
		if assign == nil {
			assign = randomAssignment(n, k, r)
		}
		pop = append(pop, individual{assign: assign, fitness: fitnessOf(assign)})
	}
	if opt.Initial != nil {
		seeded := opt.Initial.Assignment()
		pop[len(pop)-1] = individual{assign: seeded, fitness: fitnessOf(seeded)}
	}
	sortPop(pop)

	// One engine step is one generation; the per-child context poll nests
	// inside a step through PollNow.
	loop := engine.NewLoop(ctx, engine.LoopOptions{
		Budget: opt.Budget, MaxSteps: opt.Generations,
		PollEvery: 1, BudgetEvery: 1, ProgressEvery: 1,
		Runtime: opt.Runtime,
	})
	bestSeen := pop[0].fitness
	leader := pop[0].assign
	loop.Improved(bestSeen, func() []int32 { return append([]int32(nil), leader...) })
	completed := 0 // fully-evaluated generations, excluding an aborted one
	for loop.Next() {
		// A portfolio peer's strictly better incumbent joins the population,
		// displacing the current worst (elitism then carries it forward). In
		// memetic mode the foreign solution is first recombined with the
		// local best — KaFFPaE's island crossover — so its structure merges
		// into the population instead of merely sitting beside it.
		if assign, fe, ok := loop.Foreign(); ok && fe < pop[0].fitness {
			adopted := append([]int32(nil), assign...) // other workers share the slice
			if opt.MemeticCrossover {
				if p, err := memetic.Recombine(ctx, g, k, adopted, pop[0].assign, memetic.Options{
					Objective: opt.Objective, CoarsenTo: opt.CoarsenTo,
					Imbalance: 0.5, Seed: r.Int63(),
				}); err == nil {
					adopted = p.Assignment()
				}
			}
			pop[len(pop)-1] = individual{assign: adopted, fitness: fitnessOf(adopted)}
			sortPop(pop)
		}
		next := make([]individual, 0, opt.Population)
		for e := 0; e < opt.Elite && e < len(pop); e++ {
			next = append(next, pop[e])
		}
		for len(next) < opt.Population {
			if loop.PollNow() {
				break
			}
			pa := tournament(pop, opt.TournamentSize, r)
			pb := tournament(pop, opt.TournamentSize, r)
			if opt.MemeticCrossover && r.Intn(4) != 0 {
				// Recombination child: the V-cycle's per-level refinement is
				// the memetic local search (score.Tracker-driven inside
				// refine.KWay), so the returned partition is scored directly
				// — no mutate/repair/rebuild. The floor guarantee makes the
				// child at worst as good as its better parent.
				p, err := memetic.Recombine(ctx, g, k, pa.assign, pb.assign, memetic.Options{
					Objective: opt.Objective, CoarsenTo: opt.CoarsenTo,
					Imbalance: 0.5, Seed: r.Int63(),
				})
				if err == nil {
					next = append(next, individual{
						assign:  p.Assignment(),
						fitness: opt.Objective.EvaluateSmoothed(p, eps),
					})
					continue
				}
				if ctx.Err() != nil {
					break
				}
				// Recombination failed (degenerate parents); fall through to
				// the flat pipeline as the mutation path.
			}
			child := crossover(pa.assign, pb.assign, k, r)
			mutate(child, k, opt.MutationRate, r)
			repair(g, child, k, r)
			fit, scored := 0.0, false
			if !opt.DisableLocalSearch {
				if p, err := partition.FromAssignment(g, child, k); err == nil {
					// The memetic local search scores its candidate moves
					// incrementally (score.Tracker inside KWay); the refined
					// partition is then scored directly rather than rebuilt
					// from the assignment a second time.
					refine.KWay(p, refine.KWayOptions{
						Objective: opt.Objective, MaxPasses: 1, Imbalance: 0.5, Ctx: ctx,
					})
					child = p.Assignment()
					fit, scored = opt.Objective.EvaluateSmoothed(p, eps), true
				}
			}
			if !scored {
				fit = fitnessOf(child)
			}
			next = append(next, individual{assign: child, fitness: fit})
		}
		if loop.Cancelled() {
			// Keep the last fully-evaluated generation: pop is sorted and
			// pop[0] is the best individual seen (elitism preserves it).
			break
		}
		pop = next
		sortPop(pop)
		completed++
		if pop[0].fitness < bestSeen {
			bestSeen = pop[0].fitness
			leader := pop[0].assign
			loop.Improved(bestSeen, func() []int32 { return append([]int32(nil), leader...) })
		}
	}

	bestP, err := partition.FromAssignment(g, pop[0].assign, k)
	if err != nil {
		return nil, err
	}
	loop.Finish()
	return &Result{
		Best:        bestP,
		Energy:      opt.Objective.Evaluate(bestP),
		Generations: completed,
		Cancelled:   loop.Cancelled(),
	}, nil
}

func sortPop(pop []individual) {
	sort.SliceStable(pop, func(i, j int) bool { return pop[i].fitness < pop[j].fitness })
}

func tournament(pop []individual, size int, r *rand.Rand) individual {
	best := pop[r.Intn(len(pop))]
	for i := 1; i < size; i++ {
		if c := pop[r.Intn(len(pop))]; c.fitness < best.fitness {
			best = c
		}
	}
	return best
}

func randomAssignment(n, k int, r *rand.Rand) []int32 {
	assign := make([]int32, n)
	for v := range assign {
		assign[v] = int32(r.Intn(k))
	}
	// Guarantee every part exists.
	perm := make([]int, n)
	rng.Perm(r, perm)
	for a := 0; a < k; a++ {
		assign[perm[a]] = int32(a)
	}
	return assign
}

// crossover aligns the parents' part labels greedily by overlap (labels are
// arbitrary, so naive uniform crossover would destroy both parents'
// structure), then mixes them uniformly.
func crossover(a, b []int32, k int, r *rand.Rand) []int32 {
	// overlap[x][y] = #vertices with label x in a and y in b.
	overlap := make([][]int, k)
	for x := range overlap {
		overlap[x] = make([]int, k)
	}
	for v := range a {
		overlap[a[v]][b[v]]++
	}
	// Greedy assignment of b-labels to a-labels.
	mapB := make([]int32, k)
	usedA := make([]bool, k)
	usedB := make([]bool, k)
	for step := 0; step < k; step++ {
		bx, by, bestOv := -1, -1, -1
		for x := 0; x < k; x++ {
			if usedA[x] {
				continue
			}
			for y := 0; y < k; y++ {
				if usedB[y] {
					continue
				}
				if overlap[x][y] > bestOv {
					bx, by, bestOv = x, y, overlap[x][y]
				}
			}
		}
		mapB[by] = int32(bx)
		usedA[bx] = true
		usedB[by] = true
	}
	child := make([]int32, len(a))
	for v := range a {
		if r.Intn(2) == 0 {
			child[v] = a[v]
		} else {
			child[v] = mapB[b[v]]
		}
	}
	return child
}

func mutate(assign []int32, k, rate int, r *rand.Rand) {
	for i := 0; i < rate; i++ {
		assign[r.Intn(len(assign))] = int32(r.Intn(k))
	}
}

// repair guarantees every part is non-empty by reassigning random vertices
// from the largest parts.
func repair(g *graph.Graph, assign []int32, k int, r *rand.Rand) {
	counts := make([]int, k)
	for _, a := range assign {
		counts[a]++
	}
	for target := 0; target < k; target++ {
		if counts[target] > 0 {
			continue
		}
		// Steal a vertex from the largest part.
		big := 0
		for a := 1; a < k; a++ {
			if counts[a] > counts[big] {
				big = a
			}
		}
		for attempt := 0; attempt < len(assign); attempt++ {
			v := r.Intn(len(assign))
			if int(assign[v]) == big && counts[big] > 1 {
				assign[v] = int32(target)
				counts[big]--
				counts[target]++
				break
			}
		}
	}
}
