package genetic

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
)

func TestGAFindsDumbbellCut(t *testing.T) {
	g := graph.Dumbbell(10, 10, 1)
	res, err := Partition(g, 2, Options{Seed: 1, Generations: 60, Objective: objective.Cut})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy != 2 {
		t.Fatalf("GA cut = %g, want optimal 2", res.Energy)
	}
}

func TestGAKeepsKParts(t *testing.T) {
	g := graph.RandomGeometric(80, 0.2, 4)
	res, err := Partition(g, 5, Options{Seed: 4, Generations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.NumParts() != 5 {
		t.Fatalf("NumParts = %d", res.Best.NumParts())
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGADeterministic(t *testing.T) {
	g := graph.Grid2D(8, 8)
	r1, err := Partition(g, 4, Options{Seed: 7, Generations: 15})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Partition(g, 4, Options{Seed: 7, Generations: 15})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Energy != r2.Energy {
		t.Fatalf("non-deterministic: %g vs %g", r1.Energy, r2.Energy)
	}
}

func TestGABudget(t *testing.T) {
	g := graph.Grid2D(10, 10)
	start := time.Now()
	res, err := Partition(g, 4, Options{Seed: 1, Budget: 50 * time.Millisecond, Generations: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("budget ignored")
	}
	if res.Generations >= 1<<20 {
		t.Fatal("generation count not limited by budget")
	}
}

func TestGAImprovesOverRandom(t *testing.T) {
	g := graph.RandomGeometric(100, 0.18, 9)
	// Fitness of a random assignment (generation 0 floor).
	r := rng.New(9)
	assign := randomAssignment(100, 4, r)
	p, err := partition.FromAssignment(g, assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	randomFit := objective.MCut.Evaluate(p)
	res, err := Partition(g, 4, Options{Seed: 9, Generations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy >= randomFit {
		t.Fatalf("GA (%g) no better than random (%g)", res.Energy, randomFit)
	}
}

func TestCrossoverPreservesAlignedStructure(t *testing.T) {
	// Crossing an individual with a relabeled copy of itself must yield the
	// same partition (label alignment is the whole point).
	g := graph.Grid2D(6, 6)
	_ = g
	a := make([]int32, 36)
	b := make([]int32, 36)
	for v := range a {
		a[v] = int32(v / 12) // 3 bands
		b[v] = (a[v] + 1) % 3
	}
	r := rng.New(3)
	child := crossover(a, b, 3, r)
	for v := range child {
		if child[v] != a[v] {
			t.Fatalf("aligned crossover changed vertex %d: %d != %d", v, child[v], a[v])
		}
	}
}

func TestRepairRestoresEmptyParts(t *testing.T) {
	g := graph.Path(10)
	assign := make([]int32, 10) // everything in part 0; parts 1,2 empty
	r := rng.New(5)
	repair(g, assign, 3, r)
	counts := map[int32]int{}
	for _, a := range assign {
		counts[a]++
	}
	for p := int32(0); p < 3; p++ {
		if counts[p] == 0 {
			t.Fatalf("part %d still empty after repair", p)
		}
	}
}

func TestGAErrors(t *testing.T) {
	g := graph.Path(5)
	if _, err := Partition(g, 1, Options{}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Partition(g, 6, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
}

func TestPartitionContextCancelReturnsBestSoFar(t *testing.T) {
	g := graph.Grid2D(10, 10)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(60 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := PartitionContext(ctx, g, 4, Options{
		Seed: 3, Budget: time.Minute, Generations: 1 << 30,
	})
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("returned %v after a 60ms cancel", elapsed)
	}
	if err != nil {
		// Cancelled during population initialization: acceptable, but it
		// must be the context error.
		if !errors.Is(err, context.Canceled) {
			t.Fatal(err)
		}
		return
	}
	if !res.Cancelled {
		t.Fatal("interrupted run not marked Cancelled")
	}
	if res.Best == nil || res.Best.NumParts() != 4 {
		t.Fatalf("best-so-far invalid: %+v", res.Best)
	}
}
