package anneal

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/score"
)

// TestOptionsWithDefaults pins the zero-value / ExplicitZero contract: a
// zero field still selects the documented default, ExplicitZero normalizes
// to a true 0, and explicitly-set values pass through untouched.
func TestOptionsWithDefaults(t *testing.T) {
	cases := []struct {
		name string
		in   Options
		want Options
	}{
		{
			name: "zero value selects defaults",
			in:   Options{},
			want: Options{CoolRatio: 0.97, RefusalLimit: 48, HighTempFraction: 0.5, MaxSteps: 200_000},
		},
		{
			name: "ExplicitZero means a true zero",
			in:   Options{CoolRatio: ExplicitZero, RefusalLimit: ExplicitZero, HighTempFraction: ExplicitZero},
			want: Options{CoolRatio: 0, RefusalLimit: 0, HighTempFraction: 0, MaxSteps: 200_000},
		},
		{
			name: "explicit settings pass through",
			in:   Options{CoolRatio: 0.5, RefusalLimit: 7, HighTempFraction: 0.25, MaxSteps: 10},
			want: Options{CoolRatio: 0.5, RefusalLimit: 7, HighTempFraction: 0.25, MaxSteps: 10},
		},
		{
			name: "any negative value reads as ExplicitZero",
			in:   Options{CoolRatio: -0.3, RefusalLimit: -5, HighTempFraction: -2},
			want: Options{CoolRatio: 0, RefusalLimit: 0, HighTempFraction: 0, MaxSteps: 200_000},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := tc.in.withDefaults()
			if got.CoolRatio != tc.want.CoolRatio {
				t.Errorf("CoolRatio = %v, want %v", got.CoolRatio, tc.want.CoolRatio)
			}
			if got.RefusalLimit != tc.want.RefusalLimit {
				t.Errorf("RefusalLimit = %v, want %v", got.RefusalLimit, tc.want.RefusalLimit)
			}
			if got.HighTempFraction != tc.want.HighTempFraction {
				t.Errorf("HighTempFraction = %v, want %v", got.HighTempFraction, tc.want.HighTempFraction)
			}
			if got.MaxSteps != tc.want.MaxSteps {
				t.Errorf("MaxSteps = %v, want %v", got.MaxSteps, tc.want.MaxSteps)
			}
		})
	}
}

// TestHighTempFractionZeroIsAlwaysCold exercises the footgun the sentinel
// fixes: with HighTempFraction = ExplicitZero every proposal must use the
// cold random-connected-part draw, never the argmin targeting.
func TestHighTempFractionZeroIsAlwaysCold(t *testing.T) {
	g := graph.Grid2D(6, 6)
	res, err := Partition(g, 3, Options{
		Seed: 11, MaxSteps: 2_000, HighTempFraction: ExplicitZero,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.NumParts() != 3 {
		t.Fatalf("parts = %d, want 3", res.Best.NumParts())
	}
}

// componentPartition builds two disconnected triangles split by component —
// every probe move crosses no edge boundary inside its own component, so
// autoTemperature finds no positive delta and must take the fallback path.
func componentPartition(t *testing.T, edgeWeight float64) (*graph.Graph, *partition.P) {
	t.Helper()
	b := graph.NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}} {
		b.AddEdge(e[0], e[1], edgeWeight)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := partition.FromAssignment(g, []int32{0, 0, 0, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return g, p
}

// TestAutoTemperatureFallbackScales is the regression test for the
// scale-blind fallback: the old code returned the literal 1.0 whenever no
// probe produced a positive delta, regardless of whether the objective's
// deltas are ~1e3 (Cut on heavy edges) or ~1e-2 (Ncut). The derived fallback
// must track the objective scale instead.
func TestAutoTemperatureFallbackScales(t *testing.T) {
	temp := func(obj objective.Objective, edgeWeight float64) float64 {
		g, p := componentPartition(t, edgeWeight)
		eps := smoothingEps(g)
		tr := score.NewTracker(p, obj, eps)
		return autoTemperature(tr, obj, eps, rng.New(5))
	}

	// Edge weight 3, not 1: on this graph the derived Cut fallback at unit
	// weight is half the mean weighted degree = 1.0, indistinguishable from
	// the old scale-blind literal.
	cutLight := temp(objective.Cut, 3)
	cutHeavy := temp(objective.Cut, 3000)
	ncut := temp(objective.NCut, 3)

	for name, v := range map[string]float64{"cut/3": cutLight, "cut/3000": cutHeavy, "ncut": ncut} {
		if !(v > 0) {
			t.Fatalf("fallback temperature %s = %v, want > 0", name, v)
		}
		if v == 1.0 {
			t.Errorf("fallback temperature %s is the scale-blind literal 1.0", name)
		}
	}
	// Cut deltas scale linearly with edge weight; the fallback must follow.
	if ratio := cutHeavy / cutLight; ratio < 100 {
		t.Errorf("Cut fallback grew only %.1fx for 1000x heavier edges", ratio)
	}
	// Ncut terms are normalized by volume, so its temperature must sit far
	// below Cut's on the same graph.
	if ncut >= cutLight {
		t.Errorf("Ncut fallback %v >= Cut fallback %v; not tracking objective scale", ncut, cutLight)
	}
}

// TestProposalLoopAllocFree is the ISSUE-6 allocation regression gate:
// both the hot-phase (argmin-targeted) and cold-phase (random-connected)
// proposal bursts must run without a single heap allocation per step.
func TestProposalLoopAllocFree(t *testing.T) {
	const k = 32
	g, assign, opt, eps, maxPartVW := benchSetup(t, 2000, 0.04, k, 7)
	for _, mode := range []string{"hot-argmin", "cold"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			p, err := partition.FromAssignment(g, assign, k)
			if err != nil {
				t.Fatal(err)
			}
			tr := score.NewTracker(p, objective.MCut, eps)
			s := &targetScratch{mark: make([]int64, p.Capacity())}
			r := rng.New(3)
			temp := opt.TMax
			if mode == "cold" {
				temp = opt.TMax * 0.1
			}
			// Warm-up lets the cold branch grow its candidate scratch once.
			proposalBurst(tr, s, r, opt, temp, maxPartVW, eps, 2_000, mode)
			allocs := testing.AllocsPerRun(10, func() {
				proposalBurst(tr, s, r, opt, temp, maxPartVW, eps, 2_000, mode)
			})
			if allocs != 0 {
				t.Fatalf("%s proposal burst allocates %.2f times per 2000 steps, want 0", mode, allocs)
			}
		})
	}
}
