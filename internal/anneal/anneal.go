// Package anneal implements the paper's simulated-annealing adaptation to
// graph partitioning (section 3.1).
//
// The perturbation follows the paper exactly: a random vertex is moved to
// another part — at high temperature, to the part with the lowest internal
// weight (feeding the starving part); at low temperature, to a random
// *connected* part. Connectivity of parts is never forced. Uphill moves are
// accepted with the Boltzmann probability exp((e(s)-e(s'))/T); equilibrium
// is declared after a fixed number of refused moves, at which point the
// temperature is decreased; the search stops at the freezing point.
//
// The paper's printed cooling schedule D(T) = T*(tmax-tmin)/tmax is a no-op
// for its own experimental setting tmin = 0, so the intended monotone
// geometric schedule T <- CoolRatio*T is used (documented deviation; see
// DESIGN.md).
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"sync/atomic"
	"time"
	"unsafe"

	"repro/internal/engine"
	"repro/internal/fastmath"
	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/percolation"
	"repro/internal/rng"
	"repro/internal/score"
)

// ExplicitZero marks an Options field as deliberately zero. The zero value
// of Options must keep selecting the documented defaults, which makes a
// literal 0 for CoolRatio, RefusalLimit or HighTempFraction inexpressible —
// it would be silently replaced by the default. Setting any negative value
// (this constant reads best) normalizes to a true 0 instead: CoolRatio 0
// freezes at the first equilibrium, RefusalLimit 0 declares equilibrium at
// every refused move, HighTempFraction 0 disables the high-temperature
// targeting phase entirely (the run is "always cold").
const ExplicitZero = -1

// Options configures the annealer. The paper emphasizes that SA is the
// simplest method to tune, with a single main parameter (TMax).
type Options struct {
	// Objective is the energy function (default MCut, the ATC objective).
	Objective objective.Objective
	// TMax is the starting temperature (default 1.0; energies here are
	// O(1) per part for Ncut/Mcut).
	TMax float64
	// TMin is the freezing point (default TMax/1e4; the paper uses 0 with
	// a step budget, we freeze a little above to terminate).
	TMin float64
	// CoolRatio is the geometric cooling factor (default 0.97; a negative
	// value — ExplicitZero — means a true 0: freeze at first equilibrium).
	CoolRatio float64
	// RefusalLimit is the number of refused moves that declares
	// equilibrium at the current temperature (default 48; a negative value
	// — ExplicitZero — means a true 0: cool at every refused move).
	RefusalLimit int
	// HighTempFraction: above TMax*HighTempFraction the perturbation
	// targets the lowest-internal-weight part (default 0.5; a negative
	// value — ExplicitZero — means a true 0: the high-temperature phase is
	// disabled and every proposal uses the cold random-connected-part draw).
	HighTempFraction float64
	// MaxSteps caps the number of proposed moves (default 200k).
	MaxSteps int
	// Budget caps wall-clock time; 0 means no time limit.
	Budget time.Duration
	// Seed drives all randomness.
	Seed int64
	// Initial optionally provides a starting partition (the paper starts
	// SA from the percolation result); when nil, percolation is run.
	Initial *partition.P
	// Runtime optionally attaches the run to a shared engine runtime — the
	// portfolio incumbent exchange and the live-progress monitor. Nil for
	// standalone runs.
	Runtime *engine.Runtime
}

func (o Options) withDefaults() Options {
	// TMax defaults to 0 here and is auto-scaled to the objective's move
	// magnitude inside Partition (the paper tunes tmax by hand per run; an
	// absolute default cannot fit Cut's ~1e3 deltas and Ncut's ~1e-2 deltas
	// at the same time).
	switch {
	case o.CoolRatio == 0:
		o.CoolRatio = 0.97
	case o.CoolRatio < 0:
		o.CoolRatio = 0 // ExplicitZero: freeze at the first equilibrium
	}
	switch {
	case o.RefusalLimit == 0:
		o.RefusalLimit = 48
	case o.RefusalLimit < 0:
		o.RefusalLimit = 0 // ExplicitZero: cool at every refused move
	}
	switch {
	case o.HighTempFraction == 0:
		o.HighTempFraction = 0.5
	case o.HighTempFraction < 0:
		o.HighTempFraction = 0 // ExplicitZero: always cold
	}
	if o.MaxSteps == 0 {
		o.MaxSteps = 200_000
	}
	return o
}

// TracePoint records the best energy seen at a point in time, for Figure 1.
type TracePoint = engine.TracePoint

// Result is the annealing outcome.
type Result struct {
	Best   *partition.P
	Energy float64
	Steps  int
	Trace  []TracePoint
	// Cancelled reports that the run was interrupted by context
	// cancellation and Best is the best partition found so far.
	Cancelled bool
}

// Partition anneals a k-way partition of g.
func Partition(g *graph.Graph, k int, opt Options) (*Result, error) {
	return PartitionContext(context.Background(), g, k, opt)
}

// PartitionContext is Partition under cooperative cancellation: the move
// loop polls ctx alongside its budget check and, once ctx fires, returns the
// best partition found so far with Result.Cancelled set. A context that is
// done before any solution exists yields (nil, ctx.Err()).
func PartitionContext(ctx context.Context, g *graph.Graph, k int, opt Options) (*Result, error) {
	opt = opt.withDefaults()
	n := g.NumVertices()
	if k < 2 || k > n {
		return nil, fmt.Errorf("anneal: k=%d out of range [2,%d]", k, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := rng.New(opt.Seed)

	cur := opt.Initial
	if cur == nil {
		p, err := percolation.PartitionContext(ctx, g, k, percolation.Options{Seed: opt.Seed})
		if err != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			return nil, fmt.Errorf("anneal: percolation initialization: %w", err)
		}
		cur = p
	} else {
		cur = cur.Clone()
	}
	if cur.Graph() != g {
		return nil, fmt.Errorf("anneal: initial partition is for a different graph")
	}

	// The tracker scores every Metropolis proposal in O(deg v) (MoveDelta)
	// and keeps the running smoothed objective in O(1) (Value), so the move
	// loop never pays a full per-part evaluation.
	eps := smoothingEps(g)
	tr := score.NewTracker(cur, opt.Objective, eps)
	curE := tr.Value()
	best := cur.Clone()
	bestE := curE
	// The budget clock starts after the percolation initialization, as
	// before the engine refactor; the auto-temperature probe below counts
	// against it.
	loop := engine.NewLoop(ctx, engine.LoopOptions{
		Budget: opt.Budget, MaxSteps: opt.MaxSteps,
		PollEvery: 256, BudgetEvery: 256,
		Runtime: opt.Runtime,
	})
	loop.Improved(bestE, best.Compact)

	if opt.TMax == 0 {
		opt.TMax = autoTemperature(tr, opt.Objective, eps, r)
	}
	if opt.TMin == 0 {
		opt.TMin = opt.TMax / 1e4
	}

	// Soft balance cap, mirroring fusion-fission: Ncut/Mcut self-balance
	// through their denominators, plain Cut does not — without a cap the
	// minimum-Cut k-partition collapses into one giant part plus slivers.
	capFactor := 2.0
	if opt.Objective == objective.Cut {
		capFactor = 1.3
	}
	maxPartVW := capFactor * g.TotalVertexWeight() / float64(k)
	// Unit vertex weights let the balance check use the constant 1.0 instead
	// of a random 8-byte load per proposal (bit-identical; see graph docs).
	unitVW := g.UnitVertexWeights()

	t := opt.TMax
	// invT and hot are pure functions of t, recomputed only when it changes
	// (cooling, freezing restart): the Metropolis test multiplies by the
	// reciprocal instead of dividing, and the hot/cold phase branch — a float
	// compare whose outcome flips a handful of times per run — moves out of
	// the per-proposal path entirely.
	invT := 1 / t
	hot := hotPhase(t, opt)
	refused := 0
	// Reusable candidate scratch for chooseTarget (same timestamp-mark
	// pattern as refine.KWay): the cold-phase target draw runs once per
	// proposal, and a per-proposal map allocation would dominate now that
	// the evaluation itself is O(deg).
	scratch := &targetScratch{mark: make([]int64, cur.Capacity())}
	// Proposal vertices are drawn batchSize at a time into a fixed buffer
	// from a dedicated splitmix64 stream seeded off the main generator: the
	// refill runs a tight register-resident loop of three xor-multiply
	// rounds per draw instead of re-entering math/rand between every
	// adjacency scan, and it doubles as a prefetch sweep that touches each
	// upcoming vertex's adjacency lines while the loads can still overlap
	// (issued back to back, nothing downstream depends on them — the
	// evaluation loop's own loads are serialized against accept/reject
	// branches). The refill point depends only on the step index and n, so
	// the vertex stream is a pure function of the run seed; FF_NOBATCH
	// consumes the identical stream and skips only the prefetch, keeping
	// trajectories bit-identical to the batched path.
	prop := rng.NewSplitmix(r.Uint64())
	var batch [proposalBatchSize]int32
	batchPos := proposalBatchSize
	for loop.Next() {
		// A portfolio peer's strictly better incumbent (delivered at the
		// step-indexed exchange that just ran inside Next) replaces the
		// current state at the current temperature — annealing continues
		// from the better solution. Consuming it here, not at the freezing
		// restart, keeps step-capped runs (Budget 0, one cooling cycle)
		// cooperating too.
		if p, ok := adoptForeign(loop, g, cur, bestE); ok {
			cur = p
			tr = score.NewTracker(cur, opt.Objective, eps)
			curE = tr.Value()
			if curE < bestE {
				bestE = curE
				best.CopyFrom(cur)
				loop.Improved(bestE, best.Compact)
			}
		}
		if t <= opt.TMin {
			if opt.Budget <= 0 {
				break // no time budget: one annealing cycle, as printed
			}
			// The paper notes metaheuristics "can run infinitely": with a
			// time budget, freezing restarts the annealing from the best
			// solution at full temperature. CopyFrom bypasses the tracker,
			// so resync it.
			cur.CopyFrom(best)
			tr.Rebuild()
			curE = tr.Value()
			t = opt.TMax
			invT = 1 / t
			hot = hotPhase(t, opt)
			refused = 0
		}
		if batchPos == proposalBatchSize {
			for i := range batch {
				batch[i] = int32(prop.Intn(n))
			}
			if useBatch {
				prefetchAdjacency(g, batch[:])
			}
			batchPos = 0
		}
		v := int(batch[batchPos])
		batchPos++
		from := cur.Part(v)
		if cur.PartSize(from) <= 1 {
			continue // never empty a part: k is fixed for SA
		}
		// chooseTarget's two branches, with the phase test hoisted to the
		// temperature updates and the hot branch reusing the `from` already
		// in hand (chooseTarget reloads Part(v); same value by definition).
		var to int
		if hot {
			to = cur.MinInternalPart(from)
		} else {
			to = coldTarget(cur, v, scratch, r)
		}
		if to < 0 || to == from {
			continue
		}
		vw := 1.0
		if !unitVW {
			vw = g.VertexWeight(v)
		}
		if cur.PartVertexWeight(to)+vw > maxPartVW {
			continue
		}
		// One O(deg v) delta replaces the old Move + full smoothed
		// evaluation + un-Move; a refused proposal now costs no mutation
		// at all.
		delta := tr.MoveDelta(v, from, to)
		accept := delta <= 0
		if !accept {
			// Boltzmann: exp((e(s)-e(s'))/T) vs uniform draw, both from the
			// proposal stream — the uphill test runs nearly every hot-phase
			// step, so it shares the cheap generator with the vertex draw.
			accept = prop.Float64() < boltzmann(-delta, invT)
		}
		if accept {
			tr.Apply(v, to)
			curE = tr.Value()
			if curE < bestE {
				bestE = curE
				best.CopyFrom(cur)
				loop.Improved(bestE, best.Compact)
			}
		} else {
			refused++
			if refused >= opt.RefusalLimit {
				t *= opt.CoolRatio // equilibrium reached: cool
				invT = 1 / t
				hot = hotPhase(t, opt)
				refused = 0
			}
		}
	}
	loop.Finish()
	loop.Mark(bestE)
	return &Result{Best: best, Energy: opt.Objective.Evaluate(best), Steps: loop.Steps(), Trace: loop.Trace(), Cancelled: loop.Cancelled()}, nil
}

// adoptForeign reconstructs a portfolio peer's incumbent when it strictly
// beats this worker's best energy.
func adoptForeign(loop *engine.Loop, g *graph.Graph, cur *partition.P, bestE float64) (*partition.P, bool) {
	assign, e, ok := loop.Foreign()
	if !ok || e >= bestE {
		return nil, false
	}
	p, err := partition.FromAssignment(g, assign, cur.Capacity())
	if err != nil {
		return nil, false
	}
	return p, true
}

// targetScratch is chooseTarget's reusable candidate-dedup storage:
// mark[b] == stamp means part b was already collected for the current
// proposal, so no per-proposal map or slice is allocated.
type targetScratch struct {
	mark  []int64
	stamp int64
	cands []int
}

// chooseTarget picks the destination part per the paper: the
// lowest-internal-weight part when hot, a random connected part when cold.
// Both branches are allocation-free: the hot target is the partition's
// incrementally-maintained argmin (same lowest-W, lowest-id ordering as the
// former NonEmptyParts scan, without the per-proposal slice allocation and
// O(k) PartInternalOrdered sweep), and the cold draw reuses the
// timestamp-mark scratch.
func chooseTarget(p *partition.P, v int, t float64, opt Options, s *targetScratch, r *rand.Rand) int {
	if hotPhase(t, opt) {
		return p.MinInternalPart(p.Part(v))
	}
	return coldTarget(p, v, s, r)
}

// hotPhase reports whether temperature t selects the high-temperature
// "feed the starving part" target. The Metropolis loop evaluates it only
// when t changes; chooseTarget keeps it inline for per-call users.
func hotPhase(t float64, opt Options) bool {
	return opt.HighTempFraction > 0 && t > opt.TMax*opt.HighTempFraction
}

// coldTarget draws a random part among those v is connected to — the
// low-temperature branch of chooseTarget.
func coldTarget(p *partition.P, v int, s *targetScratch, r *rand.Rand) int {
	// Random part among those v is connected to. The neighbor scan reads
	// the int16 assignment mirror when one exists — same reasoning as the
	// scoring scan: half the footprint, no per-read accessor branch.
	s.stamp++
	stamp := s.stamp
	mark := s.mark
	cands := s.cands[:0]
	mark[p.Part(v)] = stamp
	nbrs := p.Graph().Neighbors(v)
	if pv := p.PartView16(); pv != nil && len(mark) > 0 {
		// Adjacency entries index vertices and assigned parts index mark by
		// construction, so both lookups skip the bound checks the compiler
		// cannot prove away (see score.moveConns for the same pattern).
		pp := unsafe.Pointer(&pv[0])
		mp := unsafe.Pointer(&mark[0])
		for _, u := range nbrs {
			b := int(*(*int16)(unsafe.Add(pp, uintptr(uint32(u))*2)))
			if b != partition.Unassigned {
				mb := (*int64)(unsafe.Add(mp, uintptr(uint32(b))*8))
				if *mb != stamp {
					*mb = stamp
					cands = append(cands, b)
				}
			}
		}
	} else {
		for _, u := range nbrs {
			b := p.Part(int(u))
			if b != partition.Unassigned && mark[b] != stamp {
				mark[b] = stamp
				cands = append(cands, b)
			}
		}
	}
	s.cands = cands
	if len(cands) == 0 {
		return -1
	}
	return cands[r.Intn(len(cands))]
}

// proposalBatchSize is how many proposal vertices each RNG refill draws.
// One batch of int32 ids is a single cache line — large enough to amortize
// the refill branch and give the prefetch sweep a useful window, small
// enough that the prefetched lines are still resident when their proposal
// comes up.
const proposalBatchSize = 64

// useBatch gates the prefetch sweep of the proposal batch, probed once at
// startup. The batch *draw* is not gated — it defines the RNG schedule and
// therefore the trajectory — so FF_NOBATCH=1 changes no results, it only
// routes the hot path through the plain loads (and, via the score and
// refine packages, the scalar kernels) for bisecting a suspected
// batching/SIMD artifact.
var useBatch = os.Getenv("FF_NOBATCH") == ""

// prefetchSink keeps the prefetch loads observable so the compiler cannot
// delete the sweep. Portfolio workers prefetch concurrently, so the sink
// must be written atomically — one add per 64-proposal batch, invisible
// next to the cache misses the sweep exists to overlap.
var prefetchSink atomic.Int64

// prefetchAdjacency touches the first and last adjacency entries of every
// vertex in the batch — one or two cache lines per vertex at the degrees
// the paper instances run, loaded back to back with no dependent work, so
// the misses overlap instead of serializing against the evaluation loop's
// accept/reject logic.
func prefetchAdjacency(g *graph.Graph, batch []int32) {
	var s int64
	for _, v := range batch {
		nb := g.Neighbors(int(v))
		if len(nb) > 0 {
			s += int64(nb[0]) + int64(nb[len(nb)-1])
		}
	}
	prefetchSink.Add(s)
}

// boltzmann evaluates the Metropolis acceptance probability exp(deltaNeg/T)
// from the reciprocal temperature: callers precompute invT = 1/t when the
// temperature changes, so the near-every-step uphill test multiplies instead
// of paying a float division.
func boltzmann(deltaNeg, invT float64) float64 {
	x := deltaNeg * invT // negative for uphill moves
	if !(x > -700) {
		return 0 // underflow clamp; also rejects NaN (t <= 0 or frozen)
	}
	// fastmath.Exp: same clamped range, a few 1e-12 relative of math.Exp
	// (FF_EXACTEXP=1 restores the exact kernel).
	return fastmath.Exp(x)
}

// autoTemperature estimates the typical |energy delta| of a random move by
// probing trial moves (score.Tracker.MoveDelta: no mutation, no full
// re-evaluation) and returns half the *median* magnitude: warm enough to
// accept mild uphill moves, cold enough that the search behaves like
// descent with perturbations. The median (not the mean) matters because
// degenerate seed partitions produce a few enormous deltas that would
// otherwise turn the whole run into a random walk. This stands in for the
// paper's per-run hand tuning of tmax. The probe buffer is a fixed-size
// stack array, so the estimate allocates nothing.
func autoTemperature(tr *score.Tracker, obj objective.Objective, eps float64, r *rand.Rand) float64 {
	cur := tr.Partition()
	g := cur.Graph()
	n := g.NumVertices()
	var deltas [96]float64
	count := 0
	for attempt := 0; attempt < 300 && count < len(deltas); attempt++ {
		v := r.Intn(n)
		from := cur.Part(v)
		if cur.PartSize(from) <= 1 {
			continue
		}
		to := -1
		for _, u := range g.Neighbors(v) {
			if b := cur.Part(int(u)); b != from && b != partition.Unassigned {
				to = b
				break
			}
		}
		if to < 0 {
			continue
		}
		d := tr.MoveDelta(v, from, to)
		if d < 0 {
			d = -d
		}
		if d > 0 {
			deltas[count] = d
			count++
		}
	}
	if count == 0 {
		return fallbackTemperature(cur, obj, eps)
	}
	ds := deltas[:count]
	sort.Float64s(ds)
	return 0.5 * ds[count/2]
}

// fallbackTemperature stands in when every probe came back delta-free —
// parts that are whole components, zero-delta grids, tiny parts. The old
// literal 1.0 was scale-blind: Cut deltas on the paper instances are ~1e3
// while Ncut's are ~1e-2, so the same constant was glacial for one
// objective and a random walk for the other. Instead, perturb the mean
// part's cut by one mean weighted degree — the objective's own Term reports
// what such a typical single-vertex move would cost at this graph's scale —
// and warm to half of that, mirroring the median path.
func fallbackTemperature(cur *partition.P, obj objective.Objective, eps float64) float64 {
	g := cur.Graph()
	n := g.NumVertices()
	if n == 0 {
		return smallestTemperature
	}
	meanWDeg := 2 * g.TotalEdgeWeight() / float64(n)
	var cut, w float64
	parts := 0
	for a := 0; a < cur.Capacity(); a++ {
		if cur.PartSize(a) == 0 {
			continue
		}
		cut += cur.PartCut(a)
		w += cur.PartInternalOrdered(a)
		parts++
	}
	if parts > 0 {
		cut /= float64(parts)
		w /= float64(parts)
	}
	scale := math.Abs(obj.Term(cut+meanWDeg, w, eps) - obj.Term(cut, w, eps))
	if !(scale > 0) { // degenerate (edgeless, Inf or NaN terms): fall to eps
		scale = eps
	}
	if !(scale > 0) {
		return smallestTemperature
	}
	return 0.5 * scale
}

// smallestTemperature is the floor of the derived fallback: a weightless
// graph has no objective scale at all, and any positive temperature keeps
// the schedule well-formed (TMin = TMax/1e4 > 0, Boltzmann finite).
const smallestTemperature = 1e-12

// smoothingEps returns a smoothing epsilon small relative to the mean
// weighted degree, keeping Mcut finite for degenerate intermediate states.
func smoothingEps(g *graph.Graph) float64 {
	n := g.NumVertices()
	if n == 0 {
		return 1e-9
	}
	return 1e-6 * (2 * g.TotalEdgeWeight() / float64(n))
}
