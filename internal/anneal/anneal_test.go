package anneal

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/percolation"
)

func TestAnnealImprovesOverInitialization(t *testing.T) {
	g := graph.RandomGeometric(120, 0.18, 7)
	init, err := percolation.Partition(g, 6, percolation.Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	initE := objective.MCut.Evaluate(init)
	res, err := Partition(g, 6, Options{Seed: 7, MaxSteps: 30000, Initial: init})
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy > initE {
		t.Fatalf("SA worsened the percolation start: %g -> %g", initE, res.Energy)
	}
	if res.Best.NumParts() != 6 {
		t.Fatalf("NumParts = %d", res.Best.NumParts())
	}
	if err := res.Best.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestAnnealFindsDumbbellCut(t *testing.T) {
	g := graph.Dumbbell(10, 10, 1)
	res, err := Partition(g, 2, Options{Seed: 3, MaxSteps: 20000, Objective: objective.Cut})
	if err != nil {
		t.Fatal(err)
	}
	// Paper convention: Cut counts each crossing edge twice.
	if res.Energy != 2 {
		t.Fatalf("SA cut = %g, want 2 (bridge counted from both sides)", res.Energy)
	}
}

func TestAnnealDeterministicForSeed(t *testing.T) {
	g := graph.Grid2D(8, 8)
	r1, err := Partition(g, 4, Options{Seed: 11, MaxSteps: 5000})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Partition(g, 4, Options{Seed: 11, MaxSteps: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Energy != r2.Energy || r1.Steps != r2.Steps {
		t.Fatalf("non-deterministic: %g/%d vs %g/%d", r1.Energy, r1.Steps, r2.Energy, r2.Steps)
	}
}

func TestAnnealRespectsBudget(t *testing.T) {
	g := graph.Grid2D(12, 12)
	start := time.Now()
	_, err := Partition(g, 4, Options{Seed: 1, Budget: 30 * time.Millisecond, MaxSteps: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("budget ignored")
	}
}

func TestAnnealTraceMonotone(t *testing.T) {
	g := graph.RandomGeometric(80, 0.2, 5)
	res, err := Partition(g, 4, Options{Seed: 5, MaxSteps: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) < 2 {
		t.Fatal("trace too short")
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Energy > res.Trace[i-1].Energy+1e-9 {
			t.Fatalf("trace not monotone at %d: %g -> %g", i, res.Trace[i-1].Energy, res.Trace[i].Energy)
		}
	}
}

func TestAnnealKeepsAllParts(t *testing.T) {
	g := graph.Cycle(30)
	res, err := Partition(g, 5, Options{Seed: 9, MaxSteps: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.NumParts() != 5 {
		t.Fatalf("parts lost: %d", res.Best.NumParts())
	}
	if math.IsInf(res.Energy, 1) {
		t.Fatal("final energy infinite")
	}
}

func TestAnnealErrors(t *testing.T) {
	g := graph.Path(5)
	if _, err := Partition(g, 1, Options{}); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := Partition(g, 9, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
	other := graph.Path(4)
	otherP, _ := partition.FromAssignment(other, []int32{0, 0, 1, 1}, 2)
	if _, err := Partition(g, 2, Options{Initial: otherP}); err == nil {
		t.Fatal("foreign initial partition accepted")
	}
}

func TestChooseTargetHotPicksStarving(t *testing.T) {
	// 3 parts on a path; part 2 has no internal edges at all.
	g := graph.Path(6)
	p, _ := partition.FromAssignment(g, []int32{0, 0, 1, 1, 2, 1}, 3)
	opt := Options{TMax: 1.0}.withDefaults()
	got := chooseTarget(p, 0, opt.TMax, opt, nil, nil) // hot: never needs rng or scratch
	if got != 2 {
		t.Fatalf("hot target = %d, want the starving part 2", got)
	}
}

func TestPartitionContextCancelReturnsBestSoFar(t *testing.T) {
	g := graph.Grid2D(10, 10)
	init, err := percolation.Partition(g, 4, percolation.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := PartitionContext(ctx, g, 4, Options{
		Seed: 3, Budget: time.Minute, MaxSteps: 1 << 30, Initial: init,
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("returned %v after a 50ms cancel", elapsed)
	}
	if !res.Cancelled {
		t.Fatal("interrupted run not marked Cancelled")
	}
	if res.Best == nil || res.Best.NumParts() != 4 {
		t.Fatalf("best-so-far invalid: %+v", res.Best)
	}
}
