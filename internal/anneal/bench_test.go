package anneal

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/score"
)

// Benchmarks for the Metropolis proposal hot path, comparing against a
// frozen replica of the pre-ISSUE-6 target draw:
//
//   - BenchmarkAnnealSteps/hot-allocscan: the old high-temperature proposal —
//     partition.NonEmptyParts() (one fresh []int per proposal) plus an O(k)
//     PartInternalOrdered scan on every proposal, and a second adjacency
//     scan inside every accepted commit (the conn cache is dropped to
//     replicate the pre-ISSUE-6 Apply).
//   - BenchmarkAnnealSteps/hot-argmin: the real chooseTarget reading the
//     partition's incrementally-maintained two-smallest argmin cache, with
//     Apply committing through the adjacency split MoveDelta already
//     computed.
//   - BenchmarkAnnealSteps/cold: the low-temperature random-connected-part
//     draw (timestamp-mark scratch, allocation-free).
//
// All variants run the complete proposal body — vertex draw, target draw,
// balance cap, tracker MoveDelta, Boltzmann acceptance, tracker Apply — so
// the reported steps/s are whole-loop figures, not microbenchmarks of the
// target draw alone. Each reports a steps/s metric.
//
// The committed BENCH_anneal.json baseline is regenerated on the
// BENCH_score.json acceptance instance (10k-vertex random geometric graph,
// k = 32) with:
//
//	BENCH_ANNEAL_BASELINE=1 go test -run TestWriteAnnealBaseline -timeout 30m ./internal/anneal/
//
// TestAnnealBenchSmoke is the CI-sized regression gate against that file.

// fullMoveDelta is a faithful replica of score.Tracker.MoveDelta as it stood
// before ISSUE 6: one O(deg v) adjacency scan with the four-way
// unassigned/from/to/other switch (no precomputed weighted degree shortcut),
// the post-move stat arithmetic of score.moveStatsFromConns, and the
// cached-term swap against the running total. The real MoveDelta now feeds
// the adjacency split and post-move terms into the tracker's connection
// cache; this replica deliberately does not, so a following Apply pays the
// pre-ISSUE-6 commit cost (per-edge partition.Move plus two term
// recomputations).
func fullMoveDelta(tr *score.Tracker, obj objective.Objective, eps float64, v, from, to int) float64 {
	p := tr.Partition()
	g := p.Graph()
	nbrs := g.Neighbors(v)
	wts := g.Weights(v)
	var connA, connB, other float64
	for i, u := range nbrs {
		switch p.Part(int(u)) {
		case partition.Unassigned:
		case from:
			connA += wts[i]
		case to:
			connB += wts[i]
		default:
			other += wts[i]
		}
	}
	loop2 := 2 * g.VertexLoop(v)
	afterA := obj.Term(p.PartCut(from)+connA-connB-other, p.PartInternalOrdered(from)-2*connA-loop2, eps)
	afterB := obj.Term(p.PartCut(to)+connA-connB+other, p.PartInternalOrdered(to)+2*connB+loop2, eps)
	if p.PartSize(from) == 1 {
		afterA = 0
	}
	// The old moveValueFromConns swapped terms through small loops with
	// per-element IsInf bookkeeping; replicate that shape, not today's
	// streamlined fast path.
	finite, infs := tr.Value(), 0
	for _, old := range [2]float64{tr.PartTerm(from), tr.PartTerm(to)} {
		if math.IsInf(old, 1) {
			infs--
		} else {
			finite -= old
		}
	}
	for _, nw := range [2]float64{afterA, afterB} {
		if math.IsInf(nw, 1) {
			infs++
		} else {
			finite += nw
		}
	}
	after := finite
	if infs > 0 {
		after = math.Inf(1)
	}
	before := tr.Value()
	if math.IsInf(after, 1) && math.IsInf(before, 1) {
		return 0
	}
	return after - before
}

// allocScanTarget is a faithful replica of chooseTarget's high-temperature
// branch as it stood before the incremental argmin: allocate the non-empty
// part list, scan every part's internal weight. Kept as the benchmark
// baseline so the speedup of the argmin path stays measurable.
func allocScanTarget(p *partition.P, v int) int {
	bestPart, bestW := -1, 0.0
	for _, a := range p.NonEmptyParts() {
		if a == p.Part(v) {
			continue
		}
		if w := p.PartInternalOrdered(a); bestPart < 0 || w < bestW {
			bestPart, bestW = a, w
		}
	}
	return bestPart
}

// proposalBurst drives `steps` complete Metropolis proposals over tr's
// partition at temperature t. mode selects the target draw: "hot-argmin"
// and "hot-allocscan" force the high-temperature branch (real argmin vs the
// frozen replica), "cold" forces the random-connected-part draw. Returns
// the number of accepted moves so the work cannot be optimized away.
func proposalBurst(tr *score.Tracker, s *targetScratch, r *rand.Rand, opt Options, t, maxPartVW, eps float64, steps int, mode string) int {
	p := tr.Partition()
	g := p.Graph()
	n := g.NumVertices()
	accepted := 0
	// Resolve the mode string once: a per-proposal string compare would tax
	// both sides of the comparison with harness overhead.
	const (
		modeHotAlloc = iota
		modeHotArgmin
		modeCold
	)
	m := modeCold
	switch mode {
	case "hot-allocscan":
		m = modeHotAlloc
	case "hot-argmin":
		m = modeHotArgmin
	}
	unitVW := g.UnitVertexWeights()
	for i := 0; i < steps; i++ {
		v := r.Intn(n)
		from := p.Part(v)
		if p.PartSize(from) <= 1 {
			continue
		}
		var to int
		switch m {
		case modeHotAlloc:
			to = allocScanTarget(p, v)
		case modeHotArgmin:
			to = p.MinInternalPart(from)
		default: // cold
			to = chooseTarget(p, v, t, opt, s, r)
		}
		if to < 0 || to == from {
			continue
		}
		vw := 1.0
		if !unitVW {
			vw = g.VertexWeight(v)
		}
		if p.PartVertexWeight(to)+vw > maxPartVW {
			continue
		}
		var delta float64
		if m == modeHotAlloc {
			// Frozen delta replica: never arms the connection cache, so
			// the Apply below pays the pre-ISSUE-6 two-scan commit.
			delta = fullMoveDelta(tr, objective.MCut, eps, v, from, to)
		} else {
			delta = tr.MoveDelta(v, from, to)
		}
		accept := delta <= 0
		if !accept {
			accept = r.Float64() < boltzmann(-delta, t)
		}
		if accept {
			tr.Apply(v, to)
			accepted++
		}
	}
	return accepted
}

// modeSpec names a proposalBurst mode and the temperature it runs at.
type modeSpec struct {
	mode string
	temp float64
}

// measureModes times `steps` proposals per mode, `reps` rounds, and returns
// the best steps/s per mode. The rounds interleave the modes — every mode
// runs once before any runs again — so a machine-load drift during the
// measurement biases all modes alike instead of whichever happened to run in
// the slow window; the speedup ratios stay trustworthy on a shared box.
func measureModes(tb testing.TB, g *graph.Graph, assign []int32, k int, opt Options, eps, maxPartVW float64, steps, reps int, specs []modeSpec) map[string]float64 {
	tb.Helper()
	best := make(map[string]float64, len(specs))
	for rep := 0; rep < reps; rep++ {
		for _, spec := range specs {
			p, err := partition.FromAssignment(g, assign, k)
			if err != nil {
				tb.Fatal(err)
			}
			tr := score.NewTracker(p, objective.MCut, eps)
			s := &targetScratch{mark: make([]int64, p.Capacity())}
			r := rng.New(3)
			start := time.Now()
			proposalBurst(tr, s, r, opt, spec.temp, maxPartVW, eps, steps, spec.mode)
			if rate := float64(steps) / time.Since(start).Seconds(); rate > best[spec.mode] {
				best[spec.mode] = rate
			}
		}
	}
	return best
}

func benchSetup(tb testing.TB, n int, radius float64, k int, seed int64) (*graph.Graph, []int32, Options, float64, float64) {
	tb.Helper()
	g := graph.RandomGeometric(n, radius, 1)
	r := rng.New(7)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(r.Intn(k))
	}
	opt := Options{TMax: 1}.withDefaults()
	eps := smoothingEps(g)
	maxPartVW := 2.0 * g.TotalVertexWeight() / float64(k)
	return g, assign, opt, eps, maxPartVW
}

func BenchmarkAnnealSteps(b *testing.B) {
	const k = 32
	g, assign, opt, eps, maxPartVW := benchSetup(b, 2000, 0.04, k, 7)
	for _, mode := range []string{"hot-allocscan", "hot-argmin", "cold"} {
		t := opt.TMax // hot
		if mode == "cold" {
			t = opt.TMax * 0.1
		}
		b.Run(mode, func(b *testing.B) {
			p, err := partition.FromAssignment(g, assign, k)
			if err != nil {
				b.Fatal(err)
			}
			tr := score.NewTracker(p, objective.MCut, eps)
			s := &targetScratch{mark: make([]int64, p.Capacity())}
			r := rng.New(3)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				proposalBurst(tr, s, r, opt, t, maxPartVW, eps, 1000, mode)
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)*1000/elapsed, "steps/s")
			}
		})
	}
}

// annealBaseline is the committed BENCH_anneal.json document.
type annealBaseline struct {
	Graph            string  `json:"graph"`
	K                int     `json:"k"`
	Note             string  `json:"note"`
	Steps            int     `json:"steps"`
	HotOldStepsPerS  float64 `json:"hot_allocscan_steps_per_s"`
	HotNewStepsPerS  float64 `json:"hot_argmin_steps_per_s"`
	HotSpeedup       float64 `json:"hot_speedup"`
	ColdStepsPerS    float64 `json:"cold_steps_per_s"`
	PartitionStepsPS float64 `json:"partition_steps_per_s"`
	AllocsPerStep    float64 `json:"allocs_per_step"`
}

// TestWriteAnnealBaseline regenerates BENCH_anneal.json on the acceptance
// instance and enforces the ISSUE-6 criterion: the hot-phase proposal loop
// at least 3x faster through the incremental argmin on a 10k-vertex, k = 32
// graph, with zero allocations per proposal.
func TestWriteAnnealBaseline(t *testing.T) {
	if os.Getenv("BENCH_ANNEAL_BASELINE") == "" {
		t.Skip("set BENCH_ANNEAL_BASELINE=1 to regenerate BENCH_anneal.json")
	}
	const k = 32
	const steps = 200_000
	g, assign, opt, eps, maxPartVW := benchSetup(t, 10000, 0.02, k, 7)

	rates := measureModes(t, g, assign, k, opt, eps, maxPartVW, steps, 5,
		[]modeSpec{
			{"hot-allocscan", opt.TMax},
			{"hot-argmin", opt.TMax},
			{"cold", opt.TMax * 0.1},
		})

	doc := annealBaseline{
		Graph: fmt.Sprintf("RandomGeometric(10000, 0.02, seed 1): %d vertices, %d edges",
			g.NumVertices(), g.NumEdges()),
		K:     k,
		Steps: steps,
		Note: "Metropolis proposal loop steps/second, frozen pre-ISSUE-6 alloc+scan " +
			"hot-target replica vs the incremental argmin, plus the cold-phase draw and " +
			"the end-to-end anneal.Partition rate; interleaved best-of-5 on one core. The acceptance " +
			"gate is hot_speedup >= 3 with allocs_per_step = 0.",
	}
	doc.HotOldStepsPerS = rates["hot-allocscan"]
	doc.HotNewStepsPerS = rates["hot-argmin"]
	doc.HotSpeedup = doc.HotNewStepsPerS / doc.HotOldStepsPerS
	doc.ColdStepsPerS = rates["cold"]

	// End-to-end anneal.Partition on the same instance: percolation
	// initialization plus the real engine-backed loop.
	{
		best := math.Inf(1)
		var res *Result
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			r, err := Partition(g, k, Options{Seed: 1, MaxSteps: steps})
			if err != nil {
				t.Fatal(err)
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
			res = r
		}
		doc.PartitionStepsPS = float64(res.Steps) / best
	}

	// Allocation gate: a complete hot-phase proposal burst allocates nothing.
	{
		p, err := partition.FromAssignment(g, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		tr := score.NewTracker(p, objective.MCut, eps)
		s := &targetScratch{mark: make([]int64, p.Capacity())}
		r := rng.New(3)
		p.MinInternalPart(-1) // arm the argmin heap outside the measurement
		allocs := testing.AllocsPerRun(10, func() {
			proposalBurst(tr, s, r, opt, opt.TMax, maxPartVW, eps, 1000, "hot-argmin")
		})
		doc.AllocsPerStep = allocs / 1000
	}

	t.Logf("hot: allocscan %.0f steps/s, argmin %.0f steps/s, speedup %.2fx; cold %.0f steps/s; Partition %.0f steps/s; allocs/step %g",
		doc.HotOldStepsPerS, doc.HotNewStepsPerS, doc.HotSpeedup, doc.ColdStepsPerS, doc.PartitionStepsPS, doc.AllocsPerStep)
	if doc.HotSpeedup < 3 {
		t.Errorf("hot-path speedup %.2fx < 3x acceptance threshold", doc.HotSpeedup)
	}
	if doc.AllocsPerStep != 0 {
		t.Errorf("hot-phase proposals allocate %g per step, want 0", doc.AllocsPerStep)
	}

	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_anneal.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestAnnealBenchSmoke is the CI regression gate: on a smoke-sized instance
// it re-measures the alloc+scan-vs-argmin speedup and fails if it fell more
// than 30% below the committed BENCH_anneal.json baseline ratio. The gate
// compares speedup ratios, not absolute steps/second — wall-clock rates are
// machine-dependent, the ratio of the two paths on the same machine is not.
func TestAnnealBenchSmoke(t *testing.T) {
	buf, err := os.ReadFile("../../BENCH_anneal.json")
	if err != nil {
		t.Fatalf("missing BENCH_anneal.json baseline (regenerate with BENCH_ANNEAL_BASELINE=1): %v", err)
	}
	var base annealBaseline
	if err := json.Unmarshal(buf, &base); err != nil {
		t.Fatal(err)
	}
	if base.HotSpeedup < 3 {
		t.Errorf("committed baseline hot_speedup %.2fx < 3x acceptance threshold", base.HotSpeedup)
	}
	if base.AllocsPerStep != 0 {
		t.Errorf("committed baseline allocs_per_step %g, want 0", base.AllocsPerStep)
	}
	if testing.Short() {
		// The timing comparison below is meaningless under -short's usual
		// companions (-race instrumentation distorts both paths unevenly);
		// CI runs the full smoke in a dedicated uninstrumented step.
		t.Skip("skipping timing comparison in -short mode; baseline document validated")
	}

	const k = 32
	const steps = 50_000
	g, assign, opt, eps, maxPartVW := benchSetup(t, 2000, 0.04, k, 7)
	rates := measureModes(t, g, assign, k, opt, eps, maxPartVW, steps, 3,
		[]modeSpec{
			{"hot-argmin", opt.TMax},
			{"hot-allocscan", opt.TMax},
		})
	speedup := rates["hot-argmin"] / rates["hot-allocscan"]
	t.Logf("smoke hot-path speedup %.2fx (baseline %.2fx)", speedup, base.HotSpeedup)
	if speedup < 0.7*base.HotSpeedup {
		t.Errorf("hot-path speedup regressed: measured %.2fx < 70%% of committed baseline %.2fx",
			speedup, base.HotSpeedup)
	}
}
