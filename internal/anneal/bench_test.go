package anneal

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/order"
	"repro/internal/rng"
	"repro/internal/score"
)

// Benchmarks for the Metropolis proposal hot path, comparing against a
// frozen replica of the pre-ISSUE-6 target draw:
//
//   - BenchmarkAnnealSteps/hot-allocscan: the old high-temperature proposal —
//     partition.NonEmptyParts() (one fresh []int per proposal) plus an O(k)
//     PartInternalOrdered scan on every proposal, and a second adjacency
//     scan inside every accepted commit (the conn cache is dropped to
//     replicate the pre-ISSUE-6 Apply).
//   - BenchmarkAnnealSteps/hot-argmin: the real chooseTarget reading the
//     partition's incrementally-maintained two-smallest argmin cache, with
//     Apply committing through the adjacency split MoveDelta already
//     computed.
//   - BenchmarkAnnealSteps/cold: the low-temperature random-connected-part
//     draw (timestamp-mark scratch, allocation-free).
//
// All variants run the complete proposal body — vertex draw, target draw,
// balance cap, tracker MoveDelta, Boltzmann acceptance, tracker Apply — so
// the reported steps/s are whole-loop figures, not microbenchmarks of the
// target draw alone. Each reports a steps/s metric.
//
// The committed BENCH_anneal.json baseline is regenerated on the
// BENCH_score.json acceptance instance (10k-vertex random geometric graph,
// k = 32) with:
//
//	BENCH_ANNEAL_BASELINE=1 go test -run TestWriteAnnealBaseline -timeout 30m ./internal/anneal/
//
// TestAnnealBenchSmoke is the CI-sized regression gate against that file.

// fullMoveDelta is a faithful replica of score.Tracker.MoveDelta as it stood
// before ISSUE 6: one O(deg v) adjacency scan with the four-way
// unassigned/from/to/other switch (no precomputed weighted degree shortcut),
// the post-move stat arithmetic of score.moveStatsFromConns, and the
// cached-term swap against the running total. The real MoveDelta now feeds
// the adjacency split and post-move terms into the tracker's connection
// cache; this replica deliberately does not, so a following Apply pays the
// pre-ISSUE-6 commit cost (per-edge partition.Move plus two term
// recomputations).
func fullMoveDelta(tr *score.Tracker, obj objective.Objective, eps float64, v, from, to int) float64 {
	p := tr.Partition()
	g := p.Graph()
	nbrs := g.Neighbors(v)
	wts := g.Weights(v)
	var connA, connB, other float64
	for i, u := range nbrs {
		switch p.Part(int(u)) {
		case partition.Unassigned:
		case from:
			connA += wts[i]
		case to:
			connB += wts[i]
		default:
			other += wts[i]
		}
	}
	loop2 := 2 * g.VertexLoop(v)
	afterA := obj.Term(p.PartCut(from)+connA-connB-other, p.PartInternalOrdered(from)-2*connA-loop2, eps)
	afterB := obj.Term(p.PartCut(to)+connA-connB+other, p.PartInternalOrdered(to)+2*connB+loop2, eps)
	if p.PartSize(from) == 1 {
		afterA = 0
	}
	// The old moveValueFromConns swapped terms through small loops with
	// per-element IsInf bookkeeping; replicate that shape, not today's
	// streamlined fast path.
	finite, infs := tr.Value(), 0
	for _, old := range [2]float64{tr.PartTerm(from), tr.PartTerm(to)} {
		if math.IsInf(old, 1) {
			infs--
		} else {
			finite -= old
		}
	}
	for _, nw := range [2]float64{afterA, afterB} {
		if math.IsInf(nw, 1) {
			infs++
		} else {
			finite += nw
		}
	}
	after := finite
	if infs > 0 {
		after = math.Inf(1)
	}
	before := tr.Value()
	if math.IsInf(after, 1) && math.IsInf(before, 1) {
		return 0
	}
	return after - before
}

// allocScanTarget is a faithful replica of chooseTarget's high-temperature
// branch as it stood before the incremental argmin: allocate the non-empty
// part list, scan every part's internal weight. Kept as the benchmark
// baseline so the speedup of the argmin path stays measurable.
func allocScanTarget(p *partition.P, v int) int {
	bestPart, bestW := -1, 0.0
	for _, a := range p.NonEmptyParts() {
		if a == p.Part(v) {
			continue
		}
		if w := p.PartInternalOrdered(a); bestPart < 0 || w < bestW {
			bestPart, bestW = a, w
		}
	}
	return bestPart
}

// proposalBurst drives `steps` complete Metropolis proposals over tr's
// partition at temperature t. mode selects the target draw: "hot-argmin"
// and "hot-allocscan" force the high-temperature branch (real argmin vs the
// frozen replica), "cold" forces the random-connected-part draw. Returns
// the number of accepted moves so the work cannot be optimized away.
func proposalBurst(tr *score.Tracker, s *targetScratch, r *rand.Rand, opt Options, t, maxPartVW, eps float64, steps int, mode string) int {
	p := tr.Partition()
	g := p.Graph()
	n := g.NumVertices()
	accepted := 0
	// Resolve the mode string once: a per-proposal string compare would tax
	// both sides of the comparison with harness overhead.
	const (
		modeHotAlloc = iota
		modeHotArgmin
		modeCold
	)
	m := modeCold
	switch mode {
	case "hot-allocscan":
		m = modeHotAlloc
	case "hot-argmin":
		m = modeHotArgmin
	}
	unitVW := g.UnitVertexWeights()
	invT := 1 / t // production hoists the reciprocal out of the accept test
	// hot-argmin and cold draw their vertex stream exactly as the production
	// loop does — splitmix batches plus the prefetch sweep — while the frozen
	// hot-allocscan replica keeps the pre-batching per-step math/rand draw it
	// is meant to preserve.
	prop := rng.NewSplitmix(r.Uint64())
	var batch [proposalBatchSize]int32
	batchPos := proposalBatchSize
	for i := 0; i < steps; i++ {
		var v int
		if m == modeHotAlloc {
			v = r.Intn(n)
		} else {
			if batchPos == proposalBatchSize {
				for j := range batch {
					batch[j] = int32(prop.Intn(n))
				}
				if useBatch {
					prefetchAdjacency(g, batch[:])
				}
				batchPos = 0
			}
			v = int(batch[batchPos])
			batchPos++
		}
		from := p.Part(v)
		if p.PartSize(from) <= 1 {
			continue
		}
		var to int
		switch m {
		case modeHotAlloc:
			to = allocScanTarget(p, v)
		case modeHotArgmin:
			to = p.MinInternalPart(from)
		default: // cold
			to = chooseTarget(p, v, t, opt, s, r)
		}
		if to < 0 || to == from {
			continue
		}
		vw := 1.0
		if !unitVW {
			vw = g.VertexWeight(v)
		}
		if p.PartVertexWeight(to)+vw > maxPartVW {
			continue
		}
		var delta float64
		if m == modeHotAlloc {
			// Frozen delta replica: never arms the connection cache, so
			// the Apply below pays the pre-ISSUE-6 two-scan commit.
			delta = fullMoveDelta(tr, objective.MCut, eps, v, from, to)
		} else {
			delta = tr.MoveDelta(v, from, to)
		}
		accept := delta <= 0
		if !accept {
			u := prop.Float64()
			if m == modeHotAlloc {
				u = r.Float64() // frozen replica keeps the math/rand draw
			}
			accept = u < boltzmann(-delta, invT)
		}
		if accept {
			tr.Apply(v, to)
			accepted++
		}
	}
	return accepted
}

// modeSpec names a proposalBurst mode and the temperature it runs at.
type modeSpec struct {
	mode string
	temp float64
}

// measureModes times `steps` proposals per mode, `reps` rounds, and returns
// the best steps/s per mode. The rounds interleave the modes — every mode
// runs once before any runs again — so a machine-load drift during the
// measurement biases all modes alike instead of whichever happened to run in
// the slow window; the speedup ratios stay trustworthy on a shared box.
func measureModes(tb testing.TB, g *graph.Graph, assign []int32, k int, opt Options, eps, maxPartVW float64, steps, reps int, specs []modeSpec) map[string]float64 {
	tb.Helper()
	best := make(map[string]float64, len(specs))
	for rep := 0; rep < reps; rep++ {
		for _, spec := range specs {
			p, err := partition.FromAssignment(g, assign, k)
			if err != nil {
				tb.Fatal(err)
			}
			tr := score.NewTracker(p, objective.MCut, eps)
			s := &targetScratch{mark: make([]int64, p.Capacity())}
			r := rng.New(3)
			start := time.Now()
			proposalBurst(tr, s, r, opt, spec.temp, maxPartVW, eps, steps, spec.mode)
			if rate := float64(steps) / time.Since(start).Seconds(); rate > best[spec.mode] {
				best[spec.mode] = rate
			}
		}
	}
	return best
}

func benchSetup(tb testing.TB, n int, radius float64, k int, seed int64) (*graph.Graph, []int32, Options, float64, float64) {
	tb.Helper()
	g := graph.RandomGeometric(n, radius, 1)
	// The acceptance harness measures the cache-native layout the facade
	// feeds the annealer under Options.Relayout: the geometric generator
	// hands out ids uncorrelated with geometry, and the locality relabel is
	// what makes the adjacency and assignment-mirror loads line-dense.
	// Scores are layout-invariant (order package property suite), so the
	// Mcut quality gates are unaffected by measuring in relabeled ids.
	rl, err := graph.Relabel(g, order.Locality(g))
	if err != nil {
		tb.Fatal(err)
	}
	g = rl
	r := rng.New(7)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(r.Intn(k))
	}
	opt := Options{TMax: 1}.withDefaults()
	eps := smoothingEps(g)
	maxPartVW := 2.0 * g.TotalVertexWeight() / float64(k)
	return g, assign, opt, eps, maxPartVW
}

func BenchmarkAnnealSteps(b *testing.B) {
	const k = 32
	g, assign, opt, eps, maxPartVW := benchSetup(b, 2000, 0.04, k, 7)
	for _, mode := range []string{"hot-allocscan", "hot-argmin", "cold"} {
		t := opt.TMax // hot
		if mode == "cold" {
			t = opt.TMax * 0.1
		}
		b.Run(mode, func(b *testing.B) {
			p, err := partition.FromAssignment(g, assign, k)
			if err != nil {
				b.Fatal(err)
			}
			tr := score.NewTracker(p, objective.MCut, eps)
			s := &targetScratch{mark: make([]int64, p.Capacity())}
			r := rng.New(3)
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				proposalBurst(tr, s, r, opt, t, maxPartVW, eps, 1000, mode)
			}
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)*1000/elapsed, "steps/s")
			}
		})
	}
}

// Frozen figures from the BENCH_anneal.json that PR 6 committed, kept so the
// regenerated baseline can state its improvement against a fixed reference
// instead of a file it just overwrote. prevCommittedAllocScan is the frozen
// pre-optimization replica rate PR 6's document named as "the benchmark
// baseline"; prevCommittedArgmin is what PR 6's optimized path measured on
// the same box. The cache-native-layout gate is
// hot_argmin >= 1.5 * prevCommittedAllocScan.
const (
	prevCommittedAllocScan = 2314628.412216525
	prevCommittedArgmin    = 7372728.2780993115
)

// Pre-regeneration solution-quality floors: best Mcut of
// anneal.Partition(RandomGeometric(10000, 0.02, 1), 32, {Seed: s, MaxSteps:
// 200000, Budget: 1h}) for seeds 1..5, measured with the committed code
// *before* the fastexp/invT golden regeneration. Step-capped serial runs
// are deterministic, so these are exact values, not means over repetitions.
// The regenerated baseline must match or beat every one of them: the
// relaxed acceptance stream is not allowed to buy speed with quality.
var qualityPreRegen = []float64{
	1.655855882982, // seed 1
	1.712805923471, // seed 2
	1.612889768367, // seed 3
	1.526388708839, // seed 4
	1.688516571275, // seed 5
}

const (
	qualitySteps = 200_000
	qualitySeeds = 5
)

// annealQuality is the per-seed solution-quality block of the committed
// baseline. The runs execute on the generator's raw vertex numbering (no
// relayout): the floors were recorded there, and scores are layout-invariant
// anyway, so the comparison is apples to apples.
type annealQuality struct {
	Graph        string    `json:"graph"`
	K            int       `json:"k"`
	Steps        int       `json:"steps"`
	Seeds        []int64   `json:"seeds"`
	Mcut         []float64 `json:"mcut_per_seed"`
	McutPreRegen []float64 `json:"mcut_per_seed_pre_regen"`
}

// annealBaseline is the committed BENCH_anneal.json document.
type annealBaseline struct {
	Graph             string        `json:"graph"`
	K                 int           `json:"k"`
	Note              string        `json:"note"`
	Steps             int           `json:"steps"`
	HotOldStepsPerS   float64       `json:"hot_allocscan_steps_per_s"`
	HotNewStepsPerS   float64       `json:"hot_argmin_steps_per_s"`
	HotSpeedup        float64       `json:"hot_speedup"`
	PrevAllocScan     float64       `json:"prev_committed_allocscan_steps_per_s"`
	PrevArgmin        float64       `json:"prev_committed_argmin_steps_per_s"`
	SpeedupVsPrevBase float64       `json:"hot_argmin_vs_prev_committed_allocscan"`
	ColdStepsPerS     float64       `json:"cold_steps_per_s"`
	PartitionStepsPS  float64       `json:"partition_steps_per_s"`
	AllocsPerStep     float64       `json:"allocs_per_step"`
	Quality           annealQuality `json:"quality"`
}

// TestWriteAnnealBaseline regenerates BENCH_anneal.json on the acceptance
// instance and enforces both acceptance criteria: the ISSUE-6 throughput
// gate (hot-phase proposals at least 3x faster through the incremental
// argmin, zero allocations per proposal) and the cache-native-layout gates
// (hot_argmin at least 1.5x the PR 6 committed frozen-replica rate, and the
// per-seed Mcut floors of the pre-regeneration code at an equal step cap).
func TestWriteAnnealBaseline(t *testing.T) {
	if os.Getenv("BENCH_ANNEAL_BASELINE") == "" {
		t.Skip("set BENCH_ANNEAL_BASELINE=1 to regenerate BENCH_anneal.json")
	}
	const k = 32
	const steps = 200_000
	g, assign, opt, eps, maxPartVW := benchSetup(t, 10000, 0.02, k, 7)

	rates := measureModes(t, g, assign, k, opt, eps, maxPartVW, steps, 5,
		[]modeSpec{
			{"hot-allocscan", opt.TMax},
			{"hot-argmin", opt.TMax},
			{"cold", opt.TMax * 0.1},
		})

	doc := annealBaseline{
		Graph: fmt.Sprintf("RandomGeometric(10000, 0.02, seed 1): %d vertices, %d edges",
			g.NumVertices(), g.NumEdges()),
		K:     k,
		Steps: steps,
		Note: "Metropolis proposal loop steps/second on the locality-relabeled layout, " +
			"frozen pre-ISSUE-6 alloc+scan hot-target replica vs the incremental argmin, " +
			"plus the cold-phase draw and the end-to-end anneal.Partition rate; interleaved " +
			"best-of-5 on one core. Acceptance gates: hot_speedup >= 3 with allocs_per_step = 0; " +
			"hot_argmin_steps_per_s >= 1.5x prev_committed_allocscan_steps_per_s (the frozen-replica " +
			"rate the PR 6 document kept as its benchmark baseline, copied here verbatim — " +
			"prev_committed_argmin_steps_per_s is PR 6's optimized rate, recorded for transparency); " +
			"and quality.mcut_per_seed <= quality.mcut_per_seed_pre_regen on every seed " +
			"(deterministic step-capped runs, caller vertex numbering).",
		PrevAllocScan: prevCommittedAllocScan,
		PrevArgmin:    prevCommittedArgmin,
	}
	doc.HotOldStepsPerS = rates["hot-allocscan"]
	doc.HotNewStepsPerS = rates["hot-argmin"]
	doc.HotSpeedup = doc.HotNewStepsPerS / doc.HotOldStepsPerS
	doc.SpeedupVsPrevBase = doc.HotNewStepsPerS / prevCommittedAllocScan
	doc.ColdStepsPerS = rates["cold"]

	// Solution-quality floors: the same end-to-end runs the pre-regeneration
	// figures were recorded from, on the raw (non-relabeled) generator
	// numbering. Deterministic, so one run per seed.
	{
		raw := graph.RandomGeometric(10_000, 0.02, 1)
		doc.Quality = annealQuality{
			Graph:        "RandomGeometric(10000, 0.02, seed 1), caller vertex numbering",
			K:            k,
			Steps:        qualitySteps,
			McutPreRegen: qualityPreRegen,
		}
		for seed := int64(1); seed <= qualitySeeds; seed++ {
			res, err := Partition(raw, k, Options{Seed: seed, MaxSteps: qualitySteps, Budget: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			doc.Quality.Seeds = append(doc.Quality.Seeds, seed)
			doc.Quality.Mcut = append(doc.Quality.Mcut, res.Energy)
			if res.Energy > qualityPreRegen[seed-1] {
				t.Errorf("seed %d: Mcut %.12f worse than pre-regeneration floor %.12f",
					seed, res.Energy, qualityPreRegen[seed-1])
			}
		}
	}

	// End-to-end anneal.Partition on the same instance: percolation
	// initialization plus the real engine-backed loop.
	{
		best := math.Inf(1)
		var res *Result
		for rep := 0; rep < 3; rep++ {
			start := time.Now()
			r, err := Partition(g, k, Options{Seed: 1, MaxSteps: steps})
			if err != nil {
				t.Fatal(err)
			}
			if sec := time.Since(start).Seconds(); sec < best {
				best = sec
			}
			res = r
		}
		doc.PartitionStepsPS = float64(res.Steps) / best
	}

	// Allocation gate: a complete hot-phase proposal burst allocates nothing.
	{
		p, err := partition.FromAssignment(g, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		tr := score.NewTracker(p, objective.MCut, eps)
		s := &targetScratch{mark: make([]int64, p.Capacity())}
		r := rng.New(3)
		p.MinInternalPart(-1) // arm the argmin heap outside the measurement
		allocs := testing.AllocsPerRun(10, func() {
			proposalBurst(tr, s, r, opt, opt.TMax, maxPartVW, eps, 1000, "hot-argmin")
		})
		doc.AllocsPerStep = allocs / 1000
	}

	t.Logf("hot: allocscan %.0f steps/s, argmin %.0f steps/s, speedup %.2fx (%.2fx vs PR6 committed allocscan, %.2fx vs PR6 committed argmin); cold %.0f steps/s; Partition %.0f steps/s; allocs/step %g",
		doc.HotOldStepsPerS, doc.HotNewStepsPerS, doc.HotSpeedup, doc.SpeedupVsPrevBase,
		doc.HotNewStepsPerS/prevCommittedArgmin, doc.ColdStepsPerS, doc.PartitionStepsPS, doc.AllocsPerStep)
	if doc.HotSpeedup < 3 {
		t.Errorf("hot-path speedup %.2fx < 3x acceptance threshold", doc.HotSpeedup)
	}
	if doc.SpeedupVsPrevBase < 1.5 {
		t.Errorf("hot argmin rate %.0f steps/s is %.2fx the PR 6 committed baseline replica rate %.0f, want >= 1.5x",
			doc.HotNewStepsPerS, doc.SpeedupVsPrevBase, prevCommittedAllocScan)
	}
	if doc.AllocsPerStep != 0 {
		t.Errorf("hot-phase proposals allocate %g per step, want 0", doc.AllocsPerStep)
	}

	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_anneal.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestAnnealBenchSmoke is the CI regression gate: on a smoke-sized instance
// it re-measures the alloc+scan-vs-argmin speedup and fails if it fell more
// than 30% below the committed BENCH_anneal.json baseline ratio. The gate
// compares speedup ratios, not absolute steps/second — wall-clock rates are
// machine-dependent, the ratio of the two paths on the same machine is not.
func TestAnnealBenchSmoke(t *testing.T) {
	buf, err := os.ReadFile("../../BENCH_anneal.json")
	if err != nil {
		t.Fatalf("missing BENCH_anneal.json baseline (regenerate with BENCH_ANNEAL_BASELINE=1): %v", err)
	}
	var base annealBaseline
	if err := json.Unmarshal(buf, &base); err != nil {
		t.Fatal(err)
	}
	if base.HotSpeedup < 3 {
		t.Errorf("committed baseline hot_speedup %.2fx < 3x acceptance threshold", base.HotSpeedup)
	}
	if base.AllocsPerStep != 0 {
		t.Errorf("committed baseline allocs_per_step %g, want 0", base.AllocsPerStep)
	}
	if base.SpeedupVsPrevBase < 1.5 {
		t.Errorf("committed baseline hot_argmin_vs_prev_committed_allocscan %.2fx < 1.5x acceptance threshold",
			base.SpeedupVsPrevBase)
	}
	// Quality floors: the committed per-seed Mcut values must sit at or below
	// the pre-regeneration figures on every seed (deterministic step-capped
	// runs; the expensive re-measurement happens at regeneration time, the
	// smoke validates the committed document).
	if len(base.Quality.Mcut) != qualitySeeds || len(base.Quality.McutPreRegen) != qualitySeeds {
		t.Errorf("committed baseline quality block has %d/%d seeds, want %d",
			len(base.Quality.Mcut), len(base.Quality.McutPreRegen), qualitySeeds)
	}
	for i := range base.Quality.Mcut {
		if i < len(base.Quality.McutPreRegen) && base.Quality.Mcut[i] > base.Quality.McutPreRegen[i] {
			t.Errorf("committed baseline quality seed %d: Mcut %.12f above pre-regeneration floor %.12f",
				i+1, base.Quality.Mcut[i], base.Quality.McutPreRegen[i])
		}
	}
	if testing.Short() {
		// The timing comparison below is meaningless under -short's usual
		// companions (-race instrumentation distorts both paths unevenly);
		// CI runs the full smoke in a dedicated uninstrumented step.
		t.Skip("skipping timing comparison in -short mode; baseline document validated")
	}

	const k = 32
	const steps = 50_000
	g, assign, opt, eps, maxPartVW := benchSetup(t, 2000, 0.04, k, 7)
	rates := measureModes(t, g, assign, k, opt, eps, maxPartVW, steps, 3,
		[]modeSpec{
			{"hot-argmin", opt.TMax},
			{"hot-allocscan", opt.TMax},
		})
	speedup := rates["hot-argmin"] / rates["hot-allocscan"]
	t.Logf("smoke hot-path speedup %.2fx (baseline %.2fx)", speedup, base.HotSpeedup)
	if speedup < 0.7*base.HotSpeedup {
		t.Errorf("hot-path speedup regressed: measured %.2fx < 70%% of committed baseline %.2fx",
			speedup, base.HotSpeedup)
	}
}
