// Package wire is the versioned binary codec for partition candidates
// travelling between federated ffserve islands. A Message carries everything
// a peer needs to adopt (or refuse) an incumbent: the partition itself as
// int32 labels, its objective value, the (island, worker) coordinates that
// break reduction ties deterministically, the exchange round it belongs to,
// the job key that pairs fanned-out jobs across islands, and the SHA-256
// content hash of the graph — a receiver refuses candidates whose hash does
// not match its own job's graph, so a misconfigured fleet can never adopt a
// partition of a different graph.
//
// The encoding is a fixed little-endian layout behind a 4-byte magic and a
// version byte, with no variable-length integers: Decode validates every
// length against the buffer before allocating, rejects trailing bytes, and
// checks each assignment label against K, so a fuzzer-supplied buffer can
// neither over-allocate nor smuggle an out-of-range label into a solver.
// Encoding is canonical — Decode∘Encode is the identity on bytes — which
// keeps content-addressed uses (dedup, logs) stable.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// magic identifies a wire-encoded candidate; the trailing byte is free for
// a future format break (the version byte handles compatible revisions).
var magic = [4]byte{'F', 'F', 'W', 'P'}

// Version is the current codec version; Decode rejects anything newer.
const Version = 1

// MaxKeyLen bounds the job-key string; keys are cache-key-shaped (a hex
// digest plus option fields), far below this.
const MaxKeyLen = 4096

// MaxVertices bounds the assignment length a decoder will allocate
// (2^28 labels = 1 GiB; real graphs in this repository are far smaller).
const MaxVertices = 1 << 28

// HashLen is the byte length of the graph content hash (SHA-256).
const HashLen = 32

// Message is one island's candidate for one exchange round.
type Message struct {
	// K is the number of parts; assignment labels lie in [0, K).
	K int32
	// Island and Worker are the producing worker's fleet coordinates,
	// the deterministic reduction tie-break after the objective.
	Island int32
	Worker int32
	// Round is the exchange round the candidate was deposited for; islands
	// pair candidates by (Key, Round).
	Round uint64
	// Objective is the candidate's objective value (lower is better).
	Objective float64
	// GraphHash is the SHA-256 content hash of the graph the assignment
	// partitions; receivers refuse cross-graph candidates.
	GraphHash [HashLen]byte
	// Key pairs fanned-out jobs across islands: the graph digest plus the
	// island-independent option fields, identical on every island that
	// received the same request.
	Key string
	// Has marks a real candidate. A worker can reach an exchange before
	// any personal best exists; the message still travels (round
	// alignment), just with an empty assignment.
	Has bool
	// Assign is the partition as compact labels in [0, K); empty when
	// !Has.
	Assign []int32
}

// headerLen is the fixed prefix: magic(4) version(1) has(1) k(4) island(4)
// worker(4) round(8) objective(8) hash(32) keyLen(2) n(4).
const headerLen = 4 + 1 + 1 + 4 + 4 + 4 + 8 + 8 + HashLen + 2 + 4

// EncodedLen returns the exact byte length Encode will produce.
func (m *Message) EncodedLen() int { return headerLen + len(m.Key) + 4*len(m.Assign) }

// Encode serializes the message. It panics on structurally impossible
// messages (oversized key or assignment) — those are programming errors on
// the sending side, not remote input.
func (m *Message) Encode() []byte {
	if len(m.Key) > MaxKeyLen {
		panic(fmt.Sprintf("wire: key length %d exceeds MaxKeyLen", len(m.Key)))
	}
	if len(m.Assign) > MaxVertices {
		panic(fmt.Sprintf("wire: assignment length %d exceeds MaxVertices", len(m.Assign)))
	}
	buf := make([]byte, 0, m.EncodedLen())
	buf = append(buf, magic[:]...)
	buf = append(buf, Version)
	if m.Has {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.K))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Island))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m.Worker))
	buf = binary.LittleEndian.AppendUint64(buf, m.Round)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Objective))
	buf = append(buf, m.GraphHash[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(m.Key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(m.Assign)))
	buf = append(buf, m.Key...)
	for _, a := range m.Assign {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a))
	}
	return buf
}

// Decode parses and validates one message, rejecting short buffers,
// foreign magic, unknown versions, inconsistent lengths, trailing bytes,
// non-finite objectives and out-of-range labels. The returned message owns
// its memory; data may be reused.
func Decode(data []byte) (*Message, error) {
	if len(data) < headerLen {
		return nil, fmt.Errorf("wire: message truncated: %d bytes, want at least %d", len(data), headerLen)
	}
	if data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] || data[3] != magic[3] {
		return nil, fmt.Errorf("wire: bad magic %q", data[:4])
	}
	if v := data[4]; v != Version {
		return nil, fmt.Errorf("wire: unsupported version %d (this build speaks %d)", v, Version)
	}
	var m Message
	switch data[5] {
	case 0:
		m.Has = false
	case 1:
		m.Has = true
	default:
		return nil, fmt.Errorf("wire: bad has flag %d", data[5])
	}
	off := 6
	m.K = int32(binary.LittleEndian.Uint32(data[off:]))
	m.Island = int32(binary.LittleEndian.Uint32(data[off+4:]))
	m.Worker = int32(binary.LittleEndian.Uint32(data[off+8:]))
	m.Round = binary.LittleEndian.Uint64(data[off+12:])
	m.Objective = math.Float64frombits(binary.LittleEndian.Uint64(data[off+20:]))
	off += 28
	copy(m.GraphHash[:], data[off:off+HashLen])
	off += HashLen
	keyLen := int(binary.LittleEndian.Uint16(data[off:]))
	off += 2
	n := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if m.K < 0 {
		return nil, fmt.Errorf("wire: negative k %d", m.K)
	}
	if m.Island < 0 || m.Worker < 0 {
		return nil, fmt.Errorf("wire: negative coordinates island=%d worker=%d", m.Island, m.Worker)
	}
	if keyLen > MaxKeyLen {
		return nil, fmt.Errorf("wire: key length %d exceeds %d", keyLen, MaxKeyLen)
	}
	if n > MaxVertices {
		return nil, fmt.Errorf("wire: assignment length %d exceeds %d", n, MaxVertices)
	}
	if m.Has && math.IsNaN(m.Objective) {
		return nil, fmt.Errorf("wire: objective is NaN")
	}
	if m.Has && (m.K < 1 || n < 1) {
		return nil, fmt.Errorf("wire: candidate with k=%d, n=%d", m.K, n)
	}
	if !m.Has && n != 0 {
		return nil, fmt.Errorf("wire: empty candidate carries %d labels", n)
	}
	want := headerLen + keyLen + 4*n
	if len(data) != want {
		return nil, fmt.Errorf("wire: length mismatch: %d bytes for key %d + %d labels (want %d)", len(data), keyLen, n, want)
	}
	m.Key = string(data[off : off+keyLen])
	off += keyLen
	if n > 0 {
		m.Assign = make([]int32, n)
		for i := range m.Assign {
			a := int32(binary.LittleEndian.Uint32(data[off+4*i:]))
			if a < 0 || a >= m.K {
				return nil, fmt.Errorf("wire: label %d at vertex %d out of range [0,%d)", a, i, m.K)
			}
			m.Assign[i] = a
		}
	}
	return &m, nil
}
