package wire

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"
)

func sampleMessage() *Message {
	m := &Message{
		K:         4,
		Island:    1,
		Worker:    2,
		Round:     7,
		Objective: 1.25,
		Key:       "deadbeef|fusion-fission|4|mcut|9",
		Has:       true,
		Assign:    []int32{0, 1, 2, 3, 3, 2, 1, 0},
	}
	for i := range m.GraphHash {
		m.GraphHash[i] = byte(i * 3)
	}
	return m
}

func TestRoundTrip(t *testing.T) {
	cases := map[string]*Message{
		"full":       sampleMessage(),
		"empty-slot": {K: 0, Island: 3, Worker: 0, Round: 12, Key: "k"},
		"no-key": {
			K: 2, Objective: math.Inf(1), Has: true, Assign: []int32{0, 1},
		},
		"single-vertex": {K: 1, Objective: -0.5, Round: math.MaxUint64, Has: true, Assign: []int32{0}},
	}
	for name, m := range cases {
		t.Run(name, func(t *testing.T) {
			buf := m.Encode()
			if len(buf) != m.EncodedLen() {
				t.Fatalf("EncodedLen = %d, Encode produced %d bytes", m.EncodedLen(), len(buf))
			}
			got, err := Decode(buf)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if !reflect.DeepEqual(got, m) {
				t.Fatalf("round trip changed the message:\n got %+v\nwant %+v", got, m)
			}
			// Canonical encoding: re-encoding the decoded message must
			// reproduce the bytes exactly.
			if !bytes.Equal(got.Encode(), buf) {
				t.Fatal("re-encode is not byte-identical")
			}
		})
	}
}

func TestDecodeRejects(t *testing.T) {
	valid := sampleMessage().Encode()
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}
	cases := map[string][]byte{
		"empty":     {},
		"truncated": valid[:headerLen-1],
		"bad magic": mutate(func(b []byte) []byte { b[0] = 'X'; return b }),
		"future version": mutate(func(b []byte) []byte {
			b[4] = Version + 1
			return b
		}),
		"bad has flag": mutate(func(b []byte) []byte { b[5] = 9; return b }),
		"trailing garbage": mutate(func(b []byte) []byte {
			return append(b, 0xFF)
		}),
		"label out of range": mutate(func(b []byte) []byte {
			b[len(b)-4] = 0xEE // last label becomes huge
			b[len(b)-1] = 0x7F
			return b
		}),
		"negative label": mutate(func(b []byte) []byte {
			for i := 1; i <= 4; i++ {
				b[len(b)-i] = 0xFF
			}
			return b
		}),
		"body shorter than count": valid[:len(valid)-4],
		"nan objective": mutate(func(b []byte) []byte {
			nan := math.Float64bits(math.NaN())
			for i := 0; i < 8; i++ {
				b[26+i] = byte(nan >> (8 * i))
			}
			return b
		}),
	}
	for name, buf := range cases {
		if m, err := Decode(buf); err == nil {
			t.Errorf("%s: decoded to %+v, want error", name, m)
		}
	}
}

func TestDecodeRejectsOversizeClaims(t *testing.T) {
	// A header that claims 2^31 labels must be rejected by the length check
	// before any allocation happens; the buffer itself stays tiny.
	m := &Message{K: 2, Has: true, Assign: []int32{0, 1}}
	buf := m.Encode()
	buf[headerLen-4] = 0xFF // n field (no key): claim an enormous count
	buf[headerLen-3] = 0xFF
	buf[headerLen-2] = 0xFF
	buf[headerLen-1] = 0x7F
	if _, err := Decode(buf); err == nil {
		t.Fatal("oversize label count decoded")
	} else if !strings.Contains(err.Error(), "exceeds") && !strings.Contains(err.Error(), "mismatch") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// FuzzWireDecode drives Decode with arbitrary bytes: it must never panic or
// over-allocate, and whatever it accepts must re-encode to the identical
// bytes (the canonical-encoding invariant the exchange protocol relies on).
func FuzzWireDecode(f *testing.F) {
	f.Add(sampleMessage().Encode())
	f.Add((&Message{K: 0, Round: 3, Key: "x"}).Encode())
	f.Add((&Message{K: 3, Objective: 2.5, Has: true, Assign: []int32{2, 0, 1}}).Encode())
	f.Add([]byte("FFWP"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		if len(m.Assign) > MaxVertices || len(m.Key) > MaxKeyLen {
			t.Fatalf("decoder accepted oversize fields: n=%d key=%d", len(m.Assign), len(m.Key))
		}
		for i, a := range m.Assign {
			if a < 0 || a >= m.K {
				t.Fatalf("accepted label %d at %d outside [0,%d)", a, i, m.K)
			}
		}
		if !bytes.Equal(m.Encode(), data) {
			t.Fatalf("accepted message is not canonical: %q", data)
		}
	})
}
