// Package memetic implements the multilevel recombination operator of
// KaHyPar-style memetic partitioning (Andre, Schlag & Schulz, Memetic
// Multilevel Hypergraph Partitioning): two parent partitions are combined by
// a V-cycle whose coarsening is forbidden from contracting any edge cut by
// either parent, so both parents' cut structures survive intact to the
// coarsest graph. The coarsest partition is seeded from the fitter parent
// (projection is exact — package coarsen folds contracted-edge weight into
// self-loops, so coarse objectives equal fine objectives), and greedy k-way
// refinement on the way back up picks the best pieces of each parent along
// the preserved boundaries.
//
// The operator carries a floor guarantee: the offspring is never worse than
// the better parent under the target objective. It holds by construction —
// the seed projects the fitter parent exactly and refine.KWay only commits
// strictly improving moves — and is enforced explicitly as a final guard
// (the same repair discipline as the facade's warm-start path), so even a
// run cancelled mid-hierarchy returns a valid offspring at or below the
// better parent's energy.
//
// Determinism: one (graph, k, parents, seed) tuple yields one offspring,
// bit for bit. The protected matcher is bit-identical for any speculative
// worker count, refinement is serial, and the fitter-parent tie breaks to
// parent A — so the genetic algorithm's memetic mode stays exactly
// reproducible, portfolios included.
package memetic

import (
	"context"
	"fmt"

	"repro/internal/coarsen"
	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/refine"
	"repro/internal/vcycle"
)

// Options configures one recombination.
type Options struct {
	// Objective is the criterion refinement improves and the floor guarantee
	// is stated under (default MCut, like everywhere in this repository).
	Objective objective.Objective
	// CoarsenTo is the protected hierarchy's coarsening cutoff in vertices
	// (0 selects vcycle.DefaultCoarsenTo(k), clamped to at least 2k).
	// Protection usually stops coarsening above the cutoff anyway — the
	// coarsest graph is the overlay of the parents' cuts.
	CoarsenTo int
	// Imbalance is the balance slack refinement respects (default 0.10).
	Imbalance float64
	// RefinePasses bounds the greedy k-way refinement sweeps per level
	// (default 4).
	RefinePasses int
	// Seed drives the protected matcher's vertex-visit order. Same seed and
	// parents, same offspring.
	Seed int64
}

// Recombine combines two parent assignments of g (labels in [0, k)) into an
// offspring partition by a cut-protecting V-cycle, never worse than the
// better parent under opt.Objective. ctx cancels cooperatively at level
// boundaries and inside refinement sweeps; an interrupted recombination
// still returns a valid offspring honouring the floor unless ctx fired
// before the hierarchy was built (then ctx.Err() is returned).
func Recombine(ctx context.Context, g *graph.Graph, k int, parentA, parentB []int32, opt Options) (*partition.P, error) {
	n := g.NumVertices()
	if k < 2 || k > n {
		return nil, fmt.Errorf("memetic: k=%d out of range [2,%d]", k, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if opt.RefinePasses <= 0 {
		opt.RefinePasses = 4
	}
	if opt.Imbalance <= 0 {
		opt.Imbalance = 0.10
	}
	pa, err := partition.FromAssignment(g, parentA, k)
	if err != nil {
		return nil, fmt.Errorf("memetic: parent A: %w", err)
	}
	pb, err := partition.FromAssignment(g, parentB, k)
	if err != nil {
		return nil, fmt.Errorf("memetic: parent B: %w", err)
	}
	ea, eb := opt.Objective.Evaluate(pa), opt.Objective.Evaluate(pb)
	fitter, fitterE, fitterIdx := pa, ea, 0
	if eb < ea {
		fitter, fitterE, fitterIdx = pb, eb, 1
	}

	cutoff := opt.CoarsenTo
	if cutoff <= 0 {
		cutoff = vcycle.DefaultCoarsenTo(k)
	}
	if cutoff < 2*k {
		cutoff = 2 * k
	}
	ladder, coarseGuides, err := coarsen.HEMProtected(ctx, g, cutoff, opt.Seed, [][]int32{parentA, parentB})
	if err != nil {
		return nil, err
	}

	// Seed the coarsest graph from the fitter parent. Protection kept every
	// parent-cut edge uncontracted, so this projection carries the fitter
	// parent's exact objective — refinement can only improve on it, and the
	// offspring's moves are free to adopt the other parent's boundaries
	// wherever they score better.
	assign := coarseGuides[fitterIdx]
	coarsest := g
	if len(ladder) > 0 {
		coarsest = ladder[len(ladder)-1].G
	}
	cp, err := partition.FromAssignment(coarsest, assign, k)
	if err != nil {
		return nil, fmt.Errorf("memetic: coarse seed: %w", err)
	}
	refine.KWay(cp, refine.KWayOptions{
		Objective: opt.Objective, Imbalance: opt.Imbalance,
		MaxPasses: opt.RefinePasses, Ctx: ctx,
	})
	assign = cp.Assignment()

	// Uncoarsen: project and refine per level, exactly the budgeted V-cycle
	// projection loop. Refinement only commits improving moves and the
	// projection is objective-exact, so the energy is monotone from the
	// fitter parent's value down.
	offspring := cp
	for li := len(ladder) - 1; li >= 0; li-- {
		assign = ladder[li].Project(assign)
		fineG := g
		if li > 0 {
			fineG = ladder[li-1].G
		}
		fp, err := partition.FromAssignment(fineG, assign, k)
		if err != nil {
			return nil, fmt.Errorf("memetic: projecting level %d: %w", li, err)
		}
		refine.KWay(fp, refine.KWayOptions{
			Objective: opt.Objective, Imbalance: opt.Imbalance,
			MaxPasses: opt.RefinePasses, Ctx: ctx,
		})
		assign = fp.Assignment()
		offspring = fp
	}

	// The explicit floor guard. Unreachable through the monotone path above,
	// but cheap insurance that no caller ever observes a child worse than
	// its better parent, whatever future refinement grows into.
	if opt.Objective.Evaluate(offspring) > fitterE {
		return fitter, nil
	}
	return offspring, nil
}
