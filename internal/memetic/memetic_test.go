package memetic

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Property suite for the recombination operator: across all three
// objectives, on graphs with non-unit vertex weights and self-loops, the
// offspring is never worse than the better parent (the floor guarantee),
// and one (graph, k, parents, seed) tuple always yields the same offspring
// bit for bit. The width>1 portfolio determinism companion lives in
// internal/genetic, where the memetic mode plugs into engine.Portfolio.

// lumpyGraph builds a random geometric graph with integer vertex weights in
// [1,4], scaled edge weights, and scattered self-loops.
func lumpyGraph(n int, seed int64) *graph.Graph {
	base := graph.RandomGeometric(n, 0.12, seed)
	r := rng.New(seed + 100)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetVertexWeight(v, float64(1+r.Intn(4)))
	}
	base.ForEachEdge(func(u, v int, w float64) {
		b.AddEdge(u, v, w*float64(1+r.Intn(3)))
	})
	for i := 0; i < n/8; i++ {
		b.AddSelfLoop(r.Intn(n), float64(1+r.Intn(5)))
	}
	return b.MustBuild()
}

// randomParent returns a complete k-labeling (every label present).
func randomParent(n, k int, r *rand.Rand) []int32 {
	assign := make([]int32, n)
	for v := range assign {
		assign[v] = int32(r.Intn(k))
	}
	perm := make([]int, n)
	rng.Perm(r, perm)
	for a := 0; a < k; a++ {
		assign[perm[a]] = int32(a)
	}
	return assign
}

func TestRecombineFloorGuarantee(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid14":   graph.Grid2D(14, 14),
		"lumpy260": lumpyGraph(260, 3),
		"gnp220":   graph.GNP(220, 0.05, 9),
	}
	for name, g := range graphs {
		for _, obj := range objective.All {
			for seed := int64(0); seed < 4; seed++ {
				r := rng.New(seed*97 + 13)
				k := 3 + int(seed)
				pa := randomParent(g.NumVertices(), k, r)
				pb := randomParent(g.NumVertices(), k, r)
				child, err := Recombine(context.Background(), g, k, pa, pb, Options{
					Objective: obj, Seed: seed,
				})
				if err != nil {
					t.Fatalf("%s/%s seed %d: %v", name, obj, seed, err)
				}
				ppa, _ := partition.FromAssignment(g, pa, k)
				ppb, _ := partition.FromAssignment(g, pb, k)
				better := obj.Evaluate(ppa)
				if eb := obj.Evaluate(ppb); eb < better {
					better = eb
				}
				if got := obj.Evaluate(child); got > better+1e-9 {
					t.Errorf("%s/%s seed %d: offspring %g worse than better parent %g",
						name, obj, seed, got, better)
				}
			}
		}
	}
}

func TestRecombineDeterministic(t *testing.T) {
	g := lumpyGraph(300, 7)
	r := rng.New(42)
	k := 6
	pa := randomParent(g.NumVertices(), k, r)
	pb := randomParent(g.NumVertices(), k, r)
	var first []int32
	for rep := 0; rep < 3; rep++ {
		child, err := Recombine(context.Background(), g, k, pa, pb, Options{Seed: 1234})
		if err != nil {
			t.Fatal(err)
		}
		assign := child.Assignment()
		if rep == 0 {
			first = assign
			continue
		}
		for v := range assign {
			if assign[v] != first[v] {
				t.Fatalf("rep %d: offspring differs at vertex %d (%d vs %d)", rep, v, assign[v], first[v])
			}
		}
	}
	// A different seed is allowed to (and here does not have to) differ, but
	// must still satisfy the floor — exercised above. Different seeds must
	// not panic or alias the inputs:
	if _, err := Recombine(context.Background(), g, k, pa, pb, Options{Seed: 99}); err != nil {
		t.Fatal(err)
	}
}

// TestRecombineDoesNotMutateParents: the operator must treat the parent
// slices as read-only (the GA keeps using them after crossover).
func TestRecombineDoesNotMutateParents(t *testing.T) {
	g := graph.Grid2D(12, 12)
	r := rng.New(5)
	k := 4
	pa := randomParent(g.NumVertices(), k, r)
	pb := randomParent(g.NumVertices(), k, r)
	ca, cb := append([]int32(nil), pa...), append([]int32(nil), pb...)
	if _, err := Recombine(context.Background(), g, k, pa, pb, Options{Seed: 3}); err != nil {
		t.Fatal(err)
	}
	for v := range pa {
		if pa[v] != ca[v] || pb[v] != cb[v] {
			t.Fatalf("parent assignment mutated at vertex %d", v)
		}
	}
}

// TestRecombineIdenticalParents: recombining a partition with itself returns
// it unchanged up to refinement improvement — never worse, same label count.
func TestRecombineIdenticalParents(t *testing.T) {
	g := graph.Grid2D(10, 10)
	pa := randomParent(g.NumVertices(), 4, rng.New(8))
	child, err := Recombine(context.Background(), g, 4, pa, pa, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pp, _ := partition.FromAssignment(g, pa, 4)
	if got, want := objective.MCut.Evaluate(child), objective.MCut.Evaluate(pp); got > want+1e-9 {
		t.Fatalf("self-recombination worsened Mcut: %g > %g", got, want)
	}
}

func TestRecombineErrors(t *testing.T) {
	g := graph.Grid2D(4, 4)
	pa := randomParent(g.NumVertices(), 2, rng.New(1))
	if _, err := Recombine(context.Background(), g, 1, pa, pa, Options{}); err == nil {
		t.Fatal("want error for k=1")
	}
	if _, err := Recombine(context.Background(), g, 2, pa[:3], pa, Options{}); err == nil {
		t.Fatal("want error for short parent A")
	}
	if _, err := Recombine(context.Background(), g, 2, pa, pa[:3], Options{}); err == nil {
		t.Fatal("want error for short parent B")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Recombine(ctx, g, 2, pa, pa, Options{}); err == nil {
		t.Fatal("want ctx error for pre-cancelled context")
	}
}
