package eig

import (
	"context"
	"math"
)

// RQIOptions configures Rayleigh Quotient Iteration.
type RQIOptions struct {
	// Tol is the eigen-residual tolerance relative to |lambda|+1. 0 = 1e-10.
	Tol float64
	// MaxIter caps the outer RQI iterations. 0 means 50.
	MaxIter int
	// InnerTol is the relative tolerance of the inner MINRES solves.
	// 0 means 1e-2 (loose solves are enough for cubic outer convergence).
	InnerTol float64
	// InnerMaxIter caps each inner solve; 0 means 2*n.
	InnerMaxIter int
	// Deflate lists orthonormal vectors excluded from the iteration (the
	// constant vector for Laplacians, plus any converged eigenvectors).
	Deflate [][]float64
	// Ctx optionally makes the iteration cancellable: once Ctx is done the
	// outer loop (and its inner MINRES solves) stop and the best iterate so
	// far is returned — callers that need an error must inspect Ctx.Err()
	// themselves. Nil means never cancelled.
	Ctx context.Context
}

// RQI refines the approximate eigenvector x0 of the symmetric operator a
// with Rayleigh Quotient Iteration, solving each shifted system
// (A - rho_k I) y = x_k with MINRES (standing in for Chaco's SYMMLQ; see
// Minres). It returns the converged eigenvalue, unit eigenvector, and the
// number of outer iterations performed.
//
// RQI converges to the eigenpair whose eigenvector dominates x0, which is
// why spectral partitioning seeds it with a cheap low-accuracy Lanczos
// estimate of the Fiedler vector (Chaco seeds it from the coarse grid).
func RQI(a Operator, x0 []float64, opt RQIOptions) (lambda float64, x []float64, iters int) {
	n := a.Dim()
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 50
	}
	innerTol := opt.InnerTol
	if innerTol == 0 {
		innerTol = 1e-2
	}
	innerMax := opt.InnerMaxIter
	if innerMax == 0 {
		innerMax = 2 * n
	}

	x = append([]float64(nil), x0...)
	projectOut(x, opt.Deflate)
	if nrm := Norm2(x); nrm > 0 {
		scale(1/nrm, x)
	}
	ax := make([]float64, n)
	y := make([]float64, n)

	a.MulVec(ax, x)
	lambda = Dot(x, ax)
	bestLambda, bestX, bestRes := lambda, append([]float64(nil), x...), residNorm(ax, lambda, x)

	var done <-chan struct{}
	if opt.Ctx != nil {
		done = opt.Ctx.Done()
	}
	for k := 1; k <= maxIter; k++ {
		select {
		case <-done:
			return bestLambda, bestX, k - 1
		default:
		}
		res := residNorm(ax, lambda, x)
		if res < bestRes {
			bestRes = res
			bestLambda = lambda
			copy(bestX, x)
		}
		if res <= tol*(math.Abs(lambda)+1) {
			return lambda, x, k - 1
		}
		shifted := &Shifted{A: a, Sigma: lambda}
		Minres(shifted, x, y, MinresOptions{
			Tol:     innerTol,
			MaxIter: innerMax,
			Deflate: opt.Deflate,
			Ctx:     opt.Ctx,
		})
		projectOut(y, opt.Deflate)
		nrm := Norm2(y)
		if nrm < 1e-300 {
			break // solver returned nothing useful; keep the best iterate
		}
		scale(1/nrm, y)
		copy(x, y)
		a.MulVec(ax, x)
		lambda = Dot(x, ax)
	}
	return bestLambda, bestX, maxIter
}

func residNorm(ax []float64, lambda float64, x []float64) float64 {
	s := 0.0
	for i := range ax {
		d := ax[i] - lambda*x[i]
		s += d * d
	}
	return math.Sqrt(s)
}
