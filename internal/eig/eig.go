// Package eig implements the eigensolvers that back spectral partitioning:
//
//   - Lanczos with full reorthogonalization and deflation, the method Chaco
//     uses for graphs up to ~10,000 vertices (paper section 2.1);
//   - a symmetric tridiagonal QL solver (EISPACK tql2) used to extract Ritz
//     pairs from the Lanczos tridiagonal;
//   - MINRES, a Paige-Saunders Krylov solver for symmetric indefinite
//     systems, standing in for SYMMLQ in the RQI/Symmlq eigensolver (both
//     solve (A - sigma*I)x = b; MINRES is its minimum-residual sibling);
//   - Rayleigh Quotient Iteration (RQI) that polishes an approximate Fiedler
//     vector to high accuracy, mirroring Chaco's RQI/Symmlq mode;
//   - a cyclic Jacobi dense eigensolver used as a small-problem fallback and
//     as the reference oracle in tests.
package eig

import (
	"math"
	"math/rand"
)

// Operator is a symmetric linear operator on R^n.
type Operator interface {
	Dim() int
	// MulVec computes dst = A x; dst and x never alias.
	MulVec(dst, x []float64)
}

// Shifted wraps A as A - Sigma*I.
type Shifted struct {
	A     Operator
	Sigma float64
}

// Dim returns the operator dimension.
func (s *Shifted) Dim() int { return s.A.Dim() }

// MulVec computes dst = (A - Sigma*I) x.
func (s *Shifted) MulVec(dst, x []float64) {
	s.A.MulVec(dst, x)
	if s.Sigma != 0 {
		for i := range dst {
			dst[i] -= s.Sigma * x[i]
		}
	}
}

// Dense is a dense symmetric operator, used for small problems and tests.
type Dense struct {
	N int
	A []float64 // row-major N x N
}

// Dim returns the matrix dimension.
func (d *Dense) Dim() int { return d.N }

// MulVec computes dst = A x.
func (d *Dense) MulVec(dst, x []float64) {
	for i := 0; i < d.N; i++ {
		s := 0.0
		row := d.A[i*d.N : (i+1)*d.N]
		for j, a := range row {
			s += a * x[j]
		}
		dst[i] = s
	}
}

// Dot returns the inner product of two vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm.
func Norm2(a []float64) float64 { return math.Sqrt(Dot(a, a)) }

// axpy computes y += alpha*x.
func axpy(alpha float64, x, y []float64) {
	for i := range y {
		y[i] += alpha * x[i]
	}
}

// scale multiplies x by alpha in place.
func scale(alpha float64, x []float64) {
	for i := range x {
		x[i] *= alpha
	}
}

// projectOut removes the components of x along each (orthonormal) basis
// vector, twice for numerical robustness.
func projectOut(x []float64, basis [][]float64) {
	for pass := 0; pass < 2; pass++ {
		for _, q := range basis {
			axpy(-Dot(q, x), q, x)
		}
	}
}

// ConstantVector returns the unit constant vector (1/sqrt(n), ...), the
// trivial null vector of a connected graph Laplacian, for deflation.
func ConstantVector(n int) []float64 {
	v := make([]float64, n)
	c := 1 / math.Sqrt(float64(n))
	for i := range v {
		v[i] = c
	}
	return v
}

// randomUnit fills x with a random unit vector orthogonal to basis.
func randomUnit(r *rand.Rand, x []float64, basis [][]float64) {
	for {
		for i := range x {
			x[i] = r.NormFloat64()
		}
		projectOut(x, basis)
		if n := Norm2(x); n > 1e-8 {
			scale(1/n, x)
			return
		}
	}
}

// Residual returns ||A x - lambda x|| for a unit vector x.
func Residual(a Operator, lambda float64, x []float64) float64 {
	tmp := make([]float64, a.Dim())
	a.MulVec(tmp, x)
	axpy(-lambda, x, tmp)
	return Norm2(tmp)
}
