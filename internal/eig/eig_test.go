package eig

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// randomSymmetric builds a random dense symmetric matrix.
func randomSymmetric(n int, seed int64) *Dense {
	r := rng.New(seed)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := r.NormFloat64()
			a[i*n+j] = v
			a[j*n+i] = v
		}
	}
	return &Dense{N: n, A: a}
}

func TestTridiagQLKnownSpectrum(t *testing.T) {
	// The n x n tridiagonal with diagonal 2 and off-diagonal -1 has
	// eigenvalues 2 - 2 cos(k*pi/(n+1)), k = 1..n.
	n := 12
	d := make([]float64, n)
	e := make([]float64, n)
	for i := range d {
		d[i] = 2
		e[i] = -1
	}
	vals, vecs, err := TridiagQL(d, e)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= n; k++ {
		want := 2 - 2*math.Cos(float64(k)*math.Pi/float64(n+1))
		if math.Abs(vals[k-1]-want) > 1e-10 {
			t.Fatalf("eigenvalue %d = %.12f, want %.12f", k, vals[k-1], want)
		}
	}
	// Eigenvectors: verify T v = lambda v directly.
	for k := 0; k < n; k++ {
		v := vecs[k]
		for i := 0; i < n; i++ {
			tv := d[i] * v[i]
			if i > 0 {
				tv += e[i-1] * v[i-1]
			}
			if i < n-1 {
				tv += e[i] * v[i+1]
			}
			if math.Abs(tv-vals[k]*v[i]) > 1e-9 {
				t.Fatalf("vector %d fails T v = lambda v at row %d", k, i)
			}
		}
	}
}

func TestTridiagQLMatchesJacobi(t *testing.T) {
	r := rng.New(3)
	n := 9
	d := make([]float64, n)
	e := make([]float64, n)
	a := make([]float64, n*n)
	for i := 0; i < n; i++ {
		d[i] = r.NormFloat64() * 3
		e[i] = r.NormFloat64()
	}
	for i := 0; i < n; i++ {
		a[i*n+i] = d[i]
		if i < n-1 {
			a[i*n+i+1] = e[i]
			a[(i+1)*n+i] = e[i]
		}
	}
	got, _, err := TridiagQL(d, e)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := SymEigenDense(n, a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("eigenvalue %d: QL %.12f vs Jacobi %.12f", i, got[i], want[i])
		}
	}
}

func TestJacobiDiagonalizes(t *testing.T) {
	n := 8
	m := randomSymmetric(n, 11)
	vals, vecs, err := SymEigenDense(n, m.A)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < n; k++ {
		if r := Residual(m, vals[k], vecs[k]); r > 1e-8 {
			t.Fatalf("pair %d residual %g", k, r)
		}
	}
	// Ascending order.
	for k := 1; k < n; k++ {
		if vals[k] < vals[k-1] {
			t.Fatalf("eigenvalues not sorted: %v", vals)
		}
	}
}

func TestLanczosOnLaplacianPath(t *testing.T) {
	// Laplacian of the path graph P_n has eigenvalues 2-2cos(pi k/n).
	n := 40
	g := graph.Path(n)
	l := sparse.Laplacian(g)
	vals, vecs, err := SmallestEigenpairs(l, 3, LanczosOptions{
		Deflate: [][]float64{ConstantVector(n)},
		Seed:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 3; k++ {
		want := 2 - 2*math.Cos(math.Pi*float64(k)/float64(n))
		if math.Abs(vals[k-1]-want) > 1e-7 {
			t.Fatalf("lambda_%d = %.10f, want %.10f", k+1, vals[k-1], want)
		}
		if r := Residual(l, vals[k-1], vecs[k-1]); r > 1e-6 {
			t.Fatalf("pair %d residual %g", k, r)
		}
	}
	// The Fiedler vector of a path is monotone (up to sign).
	f := vecs[0]
	sign := 1.0
	if f[0] > f[n-1] {
		sign = -1
	}
	for i := 1; i < n; i++ {
		if sign*(f[i]-f[i-1]) < -1e-9 {
			t.Fatalf("Fiedler vector of path not monotone at %d", i)
		}
	}
}

func TestLanczosMatchesDenseOracle(t *testing.T) {
	check := func(seed int64) bool {
		n := 10 + int(seed%7+7)%7*3
		m := randomSymmetric(n, seed)
		want, _, err := SymEigenDense(n, m.A)
		if err != nil {
			return false
		}
		got, vecs, err := SmallestEigenpairs(m, 2, LanczosOptions{Seed: seed})
		if err != nil {
			return false
		}
		for k := 0; k < 2; k++ {
			if math.Abs(got[k]-want[k]) > 1e-6 {
				return false
			}
			if Residual(m, got[k], vecs[k]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestLanczosDisconnectedGraph(t *testing.T) {
	// Two disjoint paths: Laplacian has a 2-dim null space. After deflating
	// the constant vector, the smallest eigenvalue is 0 again (the other
	// null vector); Lanczos must survive the invariant-subspace restart.
	b := graph.NewBuilder(8)
	for i := 0; i < 3; i++ {
		b.AddEdge(i, i+1, 1)
	}
	for i := 4; i < 7; i++ {
		b.AddEdge(i, i+1, 1)
	}
	g := b.MustBuild()
	l := sparse.Laplacian(g)
	vals, _, err := SmallestEigenpairs(l, 2, LanczosOptions{
		Deflate: [][]float64{ConstantVector(8)},
		Seed:    5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]) > 1e-8 {
		t.Fatalf("smallest deflated eigenvalue = %g, want 0 (second component)", vals[0])
	}
}

func TestLanczosErrors(t *testing.T) {
	m := randomSymmetric(4, 1)
	if _, _, err := SmallestEigenpairs(m, 0, LanczosOptions{}); err == nil {
		t.Fatal("nev=0 accepted")
	}
	if _, _, err := SmallestEigenpairs(m, 5, LanczosOptions{}); err == nil {
		t.Fatal("nev>n accepted")
	}
}

func TestMinresSolvesSPD(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 6 + int(seed%5+5)%5*4
		// SPD matrix: A = B^T B + I.
		b := randomSymmetric(n, seed)
		a := make([]float64, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				s := 0.0
				for k := 0; k < n; k++ {
					s += b.A[k*n+i] * b.A[k*n+j]
				}
				a[i*n+j] = s
			}
			a[i*n+i] += 1
		}
		m := &Dense{N: n, A: a}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = r.NormFloat64()
		}
		x := make([]float64, n)
		relres, _ := Minres(m, rhs, x, MinresOptions{Tol: 1e-12})
		// Verify the actual residual, not just the estimate.
		ax := make([]float64, n)
		m.MulVec(ax, x)
		diff := 0.0
		for i := range ax {
			diff += (ax[i] - rhs[i]) * (ax[i] - rhs[i])
		}
		return relres < 1e-10 && math.Sqrt(diff) < 1e-8*Norm2(rhs)*math.Sqrt(float64(n))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestMinresSolvesIndefinite(t *testing.T) {
	// Shifted Laplacian of a cycle: indefinite for a shift inside the
	// spectrum. MINRES must still reduce the residual.
	n := 24
	g := graph.Cycle(n)
	l := sparse.Laplacian(g)
	op := &Shifted{A: l, Sigma: 1.3}
	r := rng.New(9)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	x := make([]float64, n)
	Minres(op, rhs, x, MinresOptions{Tol: 1e-10, MaxIter: 10 * n})
	ax := make([]float64, n)
	op.MulVec(ax, x)
	diff := 0.0
	for i := range ax {
		diff += (ax[i] - rhs[i]) * (ax[i] - rhs[i])
	}
	if math.Sqrt(diff) > 1e-6*Norm2(rhs) {
		t.Fatalf("indefinite solve residual %g too large", math.Sqrt(diff))
	}
}

func TestMinresZeroRHS(t *testing.T) {
	m := randomSymmetric(5, 2)
	x := make([]float64, 5)
	relres, iters := Minres(m, make([]float64, 5), x, MinresOptions{})
	if relres != 0 || iters != 0 {
		t.Fatalf("zero rhs: relres=%g iters=%d", relres, iters)
	}
	for _, v := range x {
		if v != 0 {
			t.Fatal("x not zero for zero rhs")
		}
	}
}

func TestRQIConvergesToFiedler(t *testing.T) {
	n := 50
	g := graph.Path(n)
	l := sparse.Laplacian(g)
	deflate := [][]float64{ConstantVector(n)}
	// Seed RQI with a loose Lanczos estimate.
	vals, vecs, err := SmallestEigenpairs(l, 1, LanczosOptions{
		MaxDim:  20,
		Tol:     0.5, // deliberately loose
		Deflate: deflate,
		Seed:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	lam, x, _ := RQI(l, vecs[0], RQIOptions{Deflate: deflate})
	want := 2 - 2*math.Cos(math.Pi/float64(n))
	if math.Abs(lam-want) > 1e-8 {
		t.Fatalf("RQI lambda = %.12f, want %.12f (Lanczos start %.6f)", lam, want, vals[0])
	}
	if r := Residual(l, lam, x); r > 1e-8 {
		t.Fatalf("RQI residual %g", r)
	}
}

func TestShiftedOperator(t *testing.T) {
	m := randomSymmetric(6, 4)
	s := &Shifted{A: m, Sigma: 2.5}
	x := make([]float64, 6)
	x[2] = 1
	d1 := make([]float64, 6)
	d2 := make([]float64, 6)
	m.MulVec(d1, x)
	s.MulVec(d2, x)
	for i := range d1 {
		want := d1[i]
		if i == 2 {
			want -= 2.5
		}
		if math.Abs(d2[i]-want) > 1e-14 {
			t.Fatalf("shifted mulvec wrong at %d", i)
		}
	}
}

func TestConstantVectorIsUnitNullVector(t *testing.T) {
	g := graph.Grid2D(5, 5)
	l := sparse.Laplacian(g)
	c := ConstantVector(25)
	if math.Abs(Norm2(c)-1) > 1e-12 {
		t.Fatal("constant vector not unit")
	}
	out := make([]float64, 25)
	l.MulVec(out, c)
	if Norm2(out) > 1e-12 {
		t.Fatalf("L*1 = %g, want 0", Norm2(out))
	}
}
