package eig

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/rng"
)

// LanczosOptions configures SmallestEigenpairs.
type LanczosOptions struct {
	// MaxDim caps the Krylov subspace dimension. 0 means automatic
	// (min(n, max(2*nev+40, 80)), doubled on demand up to n).
	MaxDim int
	// Tol is the residual tolerance ||A y - theta y|| relative to the
	// largest Ritz value magnitude. 0 means 1e-8.
	Tol float64
	// Deflate lists orthonormal vectors to project out of the Krylov space
	// (e.g. the constant null vector of a connected Laplacian).
	Deflate [][]float64
	// Seed determines the random start vector.
	Seed int64
	// Ctx optionally makes the factorization cancellable: the iteration is
	// abandoned at the next Lanczos step once Ctx is done and ctx.Err() is
	// returned. Nil means never cancelled.
	Ctx context.Context
}

// SmallestEigenpairs computes the nev smallest eigenpairs of the symmetric
// operator a, restricted to the orthogonal complement of opt.Deflate, using
// Lanczos with full reorthogonalization (the regime Chaco applies to graphs
// below ~10,000 vertices).
func SmallestEigenpairs(a Operator, nev int, opt LanczosOptions) (values []float64, vectors [][]float64, err error) {
	n := a.Dim()
	free := n - len(opt.Deflate)
	if nev <= 0 {
		return nil, nil, fmt.Errorf("eig: nev must be positive, got %d", nev)
	}
	if nev > free {
		return nil, nil, fmt.Errorf("eig: requested %d eigenpairs but only %d dimensions remain after deflation", nev, free)
	}
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-8
	}
	dim := opt.MaxDim
	if dim == 0 {
		dim = 2*nev + 40
		if dim < 80 {
			dim = 80
		}
	}
	if dim > free {
		dim = free
	}
	if dim < nev {
		dim = nev
	}
	r := rng.New(opt.Seed)
	var done <-chan struct{}
	if opt.Ctx != nil {
		done = opt.Ctx.Done()
	}

	for {
		vals, vecs, resid, runErr := lanczosRun(a, nev, dim, opt.Deflate, r, done)
		if runErr != nil {
			if runErr == errCancelled {
				runErr = opt.Ctx.Err()
			}
			return nil, nil, runErr
		}
		scaleRef := math.Abs(vals[len(vals)-1])
		if scaleRef < 1 {
			scaleRef = 1
		}
		if resid <= tol*scaleRef || dim >= free {
			return vals, vecs, nil
		}
		dim *= 2
		if dim > free {
			dim = free
		}
	}
}

// errCancelled is the internal sentinel lanczosRun reports when the caller's
// context fired; SmallestEigenpairs maps it to ctx.Err().
var errCancelled = fmt.Errorf("eig: cancelled")

// lanczosRun performs one full-reorthogonalization Lanczos factorization of
// dimension at most dim and extracts the nev smallest Ritz pairs. It returns
// the worst residual among those pairs.
func lanczosRun(a Operator, nev, dim int, deflate [][]float64, r *rand.Rand, done <-chan struct{}) (values []float64, vectors [][]float64, worstResid float64, err error) {
	n := a.Dim()
	v := make([][]float64, 0, dim)
	alpha := make([]float64, 0, dim)
	beta := make([]float64, 0, dim) // beta[j] couples v[j] and v[j+1]

	cur := make([]float64, n)
	randomUnit(r, cur, deflate)
	v = append(v, append([]float64(nil), cur...))

	w := make([]float64, n)
	for j := 0; j < dim; j++ {
		select {
		case <-done:
			return nil, nil, 0, errCancelled
		default:
		}
		a.MulVec(w, v[j])
		if j > 0 {
			axpy(-beta[j-1], v[j-1], w)
		}
		aj := Dot(v[j], w)
		alpha = append(alpha, aj)
		axpy(-aj, v[j], w)
		// Full reorthogonalization against the basis and deflation set.
		projectOut(w, deflate)
		projectOut(w, v)
		if j == dim-1 {
			break
		}
		bj := Norm2(w)
		if bj < 1e-12 {
			// Invariant subspace found; continue in a fresh direction.
			beta = append(beta, 0)
			next := make([]float64, n)
			randomUnit(r, next, append(append([][]float64{}, deflate...), v...))
			v = append(v, next)
			continue
		}
		beta = append(beta, bj)
		next := append([]float64(nil), w...)
		scale(1/bj, next)
		v = append(v, next)
	}

	m := len(alpha)
	tvals, tvecs, err := TridiagQL(alpha, append(beta, 0))
	if err != nil {
		return nil, nil, 0, err
	}
	if nev > m {
		nev = m
	}
	values = tvals[:nev]
	vectors = make([][]float64, nev)
	worstResid = 0.0
	for k := 0; k < nev; k++ {
		y := make([]float64, n)
		for j := 0; j < m; j++ {
			axpy(tvecs[k][j], v[j], y)
		}
		if nrm := Norm2(y); nrm > 0 {
			scale(1/nrm, y)
		}
		vectors[k] = y
		if res := Residual(a, values[k], y); res > worstResid {
			worstResid = res
		}
	}
	return values, vectors, worstResid, nil
}
