package eig

import (
	"fmt"
	"math"
)

// TridiagQL computes all eigenvalues and eigenvectors of the symmetric
// tridiagonal matrix with diagonal d (length n) and subdiagonal e (length n,
// e[i] couples rows i and i+1; e[n-1] is ignored). It is a port of the
// EISPACK/JAMA tql2 routine (QL with implicit shifts).
//
// On return, values holds the eigenvalues in ascending order and vectors[k]
// is the unit eigenvector for values[k], expressed in the input basis.
func TridiagQL(d, e []float64) (values []float64, vectors [][]float64, err error) {
	n := len(d)
	if n == 0 {
		return nil, nil, nil
	}
	dd := append([]float64(nil), d...)
	ee := make([]float64, n)
	copy(ee, e[:n-1])
	// z is the accumulated orthogonal transform, initially the identity,
	// stored column-major: z[j] is column j (eigenvector j at the end).
	z := make([][]float64, n)
	for j := range z {
		z[j] = make([]float64, n)
		z[j][j] = 1
	}

	// Note: JAMA's tql2 shifts its subdiagonal array up one slot on entry
	// because its input convention couples rows i-1 and i. Our convention
	// (e[i] couples rows i and i+1) already matches the post-shift layout.
	f := 0.0
	tst1 := 0.0
	eps := math.Pow(2, -52)
	for l := 0; l < n; l++ {
		tst1 = math.Max(tst1, math.Abs(dd[l])+math.Abs(ee[l]))
		m := l
		for m < n && math.Abs(ee[m]) > eps*tst1 {
			m++
		}
		if m > l {
			for iter := 0; ; iter++ {
				if iter > 64 {
					return nil, nil, fmt.Errorf("eig: tridiagonal QL failed to converge at row %d", l)
				}
				g := dd[l]
				p := (dd[l+1] - g) / (2 * ee[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				dd[l] = ee[l] / (p + r)
				dd[l+1] = ee[l] * (p + r)
				dl1 := dd[l+1]
				h := g - dd[l]
				for i := l + 2; i < n; i++ {
					dd[i] -= h
				}
				f += h

				p = dd[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := ee[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3, c2, s2 = c2, c, s
					g = c * ee[i]
					h = c * p
					r = math.Hypot(p, ee[i])
					ee[i+1] = s * r
					s = ee[i] / r
					c = p / r
					p = c*dd[i] - s*g
					dd[i+1] = h + s*(c*g+s*dd[i])
					for k := 0; k < n; k++ {
						h = z[i+1][k]
						z[i+1][k] = s*z[i][k] + c*h
						z[i][k] = c*z[i][k] - s*h
					}
				}
				p = -s * s2 * c3 * el1 * ee[l] / dl1
				ee[l] = s * p
				dd[l] = c * p
				if math.Abs(ee[l]) <= eps*tst1 {
					break
				}
			}
		}
		dd[l] += f
		ee[l] = 0
	}

	// Sort eigenvalues ascending, permuting vectors alongside.
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if dd[j] < dd[k] {
				k = j
			}
		}
		if k != i {
			dd[i], dd[k] = dd[k], dd[i]
			z[i], z[k] = z[k], z[i]
		}
	}
	return dd, z, nil
}
