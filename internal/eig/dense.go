package eig

import (
	"fmt"
	"math"
)

// SymEigenDense computes all eigenvalues and eigenvectors of the dense
// symmetric matrix a (row-major n x n) with the cyclic Jacobi method.
// Eigenvalues are returned in ascending order; vectors[k] is the unit
// eigenvector of values[k]. It is O(n^3) per sweep and intended for small
// matrices: coarse-graph spectral fallback and test oracles.
func SymEigenDense(n int, a []float64) (values []float64, vectors [][]float64, err error) {
	if len(a) != n*n {
		return nil, nil, fmt.Errorf("eig: matrix length %d != %d^2", len(a), n)
	}
	m := append([]float64(nil), a...)
	// v[col][row]: accumulated rotations, initially identity.
	v := make([][]float64, n)
	for j := range v {
		v[j] = make([]float64, n)
		v[j][j] = 1
	}
	at := func(i, j int) float64 { return m[i*n+j] }
	set := func(i, j int, x float64) { m[i*n+j] = x }

	off := func() float64 {
		s := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				s += at(i, j) * at(i, j)
			}
		}
		return s
	}
	norm := 0.0
	for _, x := range m {
		norm += x * x
	}
	tol := 1e-24 * math.Max(norm, 1)

	for sweep := 0; sweep < 100; sweep++ {
		if off() <= tol {
			break
		}
		if sweep == 99 {
			return nil, nil, fmt.Errorf("eig: Jacobi failed to converge in 100 sweeps")
		}
		for p := 0; p < n; p++ {
			for q := p + 1; q < n; q++ {
				apq := at(p, q)
				if math.Abs(apq) < 1e-300 {
					continue
				}
				app, aqq := at(p, p), at(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Rotate rows/columns p and q.
				for k := 0; k < n; k++ {
					akp, akq := at(k, p), at(k, q)
					set(k, p, c*akp-s*akq)
					set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := at(p, k), at(q, k)
					set(p, k, c*apk-s*aqk)
					set(q, k, s*apk+c*aqk)
				}
				for k := 0; k < n; k++ {
					vp, vq := v[p][k], v[q][k]
					v[p][k] = c*vp - s*vq
					v[q][k] = s*vp + c*vq
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = at(i, i)
	}
	// Sort ascending with vectors.
	for i := 0; i < n-1; i++ {
		k := i
		for j := i + 1; j < n; j++ {
			if vals[j] < vals[k] {
				k = j
			}
		}
		if k != i {
			vals[i], vals[k] = vals[k], vals[i]
			v[i], v[k] = v[k], v[i]
		}
	}
	return vals, v, nil
}
