package eig

import (
	"context"
	"math"
)

// MinresOptions configures the MINRES solver.
type MinresOptions struct {
	// Tol is the relative residual tolerance ||r|| <= Tol*||b||. 0 = 1e-10.
	Tol float64
	// MaxIter caps the iteration count. 0 means 4*n.
	MaxIter int
	// Deflate lists orthonormal vectors; the solve is restricted to their
	// orthogonal complement (b is projected, and every Lanczos vector too).
	// This keeps nearly-singular shifted Laplacian systems well posed.
	Deflate [][]float64
	// Ctx optionally makes the solve cancellable: once Ctx is done the
	// iteration stops and the current iterate is returned as best effort.
	// Nil means never cancelled.
	Ctx context.Context
}

// Minres solves the symmetric (possibly indefinite) system A x = b with the
// Paige-Saunders MINRES method. It fills x (which must be zeroed or hold an
// ignored value) and returns the final relative residual estimate and the
// iteration count.
//
// In this repository it plays the role SYMMLQ plays inside Chaco's
// RQI/Symmlq eigensolver: both are Paige-Saunders Krylov methods for
// symmetric indefinite systems built on the same Lanczos process; MINRES is
// the minimum-residual variant, which is more robust when the shifted
// operator is nearly singular — exactly the RQI regime.
func Minres(a Operator, b, x []float64, opt MinresOptions) (relres float64, iters int) {
	n := a.Dim()
	tol := opt.Tol
	if tol == 0 {
		tol = 1e-10
	}
	maxIter := opt.MaxIter
	if maxIter == 0 {
		maxIter = 4 * n
	}

	for i := range x {
		x[i] = 0
	}
	r := append([]float64(nil), b...)
	projectOut(r, opt.Deflate)
	beta1 := Norm2(r)
	if beta1 == 0 {
		return 0, 0
	}

	// Lanczos vectors v_{k-1}, v_k and scratch.
	vPrev := make([]float64, n)
	v := append([]float64(nil), r...)
	scale(1/beta1, v)
	tmp := make([]float64, n)

	// Givens rotation state: (c2, s2) from step k-2, (c1, s1) from k-1.
	c2, s2 := 1.0, 0.0
	c1, s1 := 1.0, 0.0
	// Direction vectors w_{k-2}, w_{k-1}.
	w2 := make([]float64, n)
	w1 := make([]float64, n)
	phiBar := beta1
	betaK := 0.0 // beta_k couples v_{k-1}, v_k

	var done <-chan struct{}
	if opt.Ctx != nil {
		done = opt.Ctx.Done()
	}
	for k := 1; k <= maxIter; k++ {
		select {
		case <-done:
			return math.Abs(phiBar) / beta1, k - 1
		default:
		}
		// Lanczos step: tmp = A v - beta_k v_{k-1}; alpha = v.tmp.
		a.MulVec(tmp, v)
		if betaK != 0 {
			axpy(-betaK, vPrev, tmp)
		}
		alpha := Dot(v, tmp)
		axpy(-alpha, v, tmp)
		projectOut(tmp, opt.Deflate)
		betaNext := Norm2(tmp)

		// Apply previous rotations to the new column (beta_k, alpha, betaNext).
		rho3 := s2 * betaK
		deltaTilde := c2 * betaK
		rho2 := c1*deltaTilde + s1*alpha
		gammaTilde := -s1*deltaTilde + c1*alpha

		// New rotation to annihilate betaNext.
		rho1 := math.Hypot(gammaTilde, betaNext)
		if rho1 == 0 {
			// Exactly singular projected system; return best effort.
			return phiBar / beta1, k - 1
		}
		c := gammaTilde / rho1
		s := betaNext / rho1

		// Update direction: w = (v - rho3*w2 - rho2*w1)/rho1.
		for i := 0; i < n; i++ {
			wi := (v[i] - rho3*w2[i] - rho2*w1[i]) / rho1
			w2[i] = w1[i]
			w1[i] = wi
		}
		phi := c * phiBar
		phiBar = -s * phiBar
		axpy(phi, w1, x)

		if math.Abs(phiBar) <= tol*beta1 {
			return math.Abs(phiBar) / beta1, k
		}
		if betaNext < 1e-14 {
			// Krylov space exhausted.
			return math.Abs(phiBar) / beta1, k
		}

		// Advance Lanczos vectors and rotation history.
		vPrev, v, tmp = v, tmp, vPrev
		scale(1/betaNext, v)
		betaK = betaNext
		c2, s2 = c1, s1
		c1, s1 = c, s
	}
	return math.Abs(phiBar) / beta1, maxIter
}
