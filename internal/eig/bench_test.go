package eig

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sparse"
)

// BenchmarkLanczosFiedler measures the eigensolver configuration the
// spectral rows of Table 1 use: smallest non-trivial eigenpair of a graph
// Laplacian with full reorthogonalization.
func BenchmarkLanczosFiedler(b *testing.B) {
	g := graph.Grid2D(32, 32)
	l := sparse.Laplacian(g)
	deflate := [][]float64{ConstantVector(g.NumVertices())}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SmallestEigenpairs(l, 1, LanczosOptions{Deflate: deflate, Seed: 1, Tol: 1e-7}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinresShiftedLaplacian(b *testing.B) {
	g := graph.Grid2D(32, 32)
	l := sparse.Laplacian(g)
	op := &Shifted{A: l, Sigma: 0.7}
	n := g.NumVertices()
	r := rng.New(4)
	rhs := make([]float64, n)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	x := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Minres(op, rhs, x, MinresOptions{Tol: 1e-8, MaxIter: 4 * n})
	}
}

func BenchmarkTridiagQL(b *testing.B) {
	const n = 200
	d := make([]float64, n)
	e := make([]float64, n)
	r := rng.New(5)
	for i := range d {
		d[i] = r.NormFloat64() * 2
		e[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := TridiagQL(d, e); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRQIPolish(b *testing.B) {
	g := graph.Grid2D(32, 32)
	l := sparse.Laplacian(g)
	deflate := [][]float64{ConstantVector(g.NumVertices())}
	_, rough, err := SmallestEigenpairs(l, 1, LanczosOptions{MaxDim: 25, Tol: 0.3, Deflate: deflate, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		RQI(l, rough[0], RQIOptions{Deflate: deflate})
	}
}
