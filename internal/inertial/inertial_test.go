package inertial

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/rng"
)

// twoClusters builds a geometric graph with two well-separated point
// clusters joined by a single edge.
func twoClusters() (*graph.Graph, []float64, []float64) {
	r := rng.New(3)
	n := 40
	x := make([]float64, n)
	y := make([]float64, n)
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		if i < n/2 {
			x[i], y[i] = r.Float64(), r.Float64()
		} else {
			x[i], y[i] = 10+r.Float64(), r.Float64()
		}
	}
	// Connect each cluster internally (nearest few) and one bridge.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := x[i]-x[j], y[i]-y[j]
			if dx*dx+dy*dy < 0.3 {
				b.AddEdge(i, j, 1)
			}
		}
	}
	b.AddEdge(0, n/2, 1)
	g := b.MustBuild()
	return g, x, y
}

func TestBisectSeparatesClusters(t *testing.T) {
	g, x, y := twoClusters()
	p, err := Partition(g, x, y, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// All of cluster 1 on one side, cluster 2 on the other.
	side0 := p.Part(0)
	for v := 1; v < 20; v++ {
		if p.Part(v) != side0 {
			t.Fatalf("cluster 1 split at vertex %d", v)
		}
	}
	for v := 20; v < 40; v++ {
		if p.Part(v) == side0 {
			t.Fatalf("cluster 2 leaked at vertex %d", v)
		}
	}
}

func TestPrincipalAxisHorizontalSpread(t *testing.T) {
	g, x, y := twoClusters()
	verts := make([]int32, g.NumVertices())
	for i := range verts {
		verts[i] = int32(i)
	}
	ax, ay := principalAxis(g, x, y, verts)
	// Spread is along x; axis must be nearly horizontal.
	if math.Abs(ax) < 0.99 {
		t.Fatalf("principal axis (%.3f, %.3f) not horizontal", ax, ay)
	}
}

func TestMultiwayBandsBalanced(t *testing.T) {
	g := graph.Grid2D(10, 10)
	x := make([]float64, 100)
	y := make([]float64, 100)
	for v := 0; v < 100; v++ {
		x[v], y[v] = float64(v%10), float64(v/10)
	}
	p, err := Partition(g, x, y, 4, Options{Arity: 4})
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 4; a++ {
		if p.PartSize(a) != 25 {
			t.Fatalf("band %d has %d vertices, want 25", a, p.PartSize(a))
		}
	}
	if imb := objective.Imbalance(p); imb > 1e-9 {
		t.Fatalf("imbalance %g", imb)
	}
}

func TestKLImproves(t *testing.T) {
	g, x, y := twoClusters()
	// Shuffle coordinates so inertial alone mis-cuts, then KL must help.
	r := rng.New(9)
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	r.Shuffle(len(xs), func(i, j int) {
		xs[i], xs[j] = xs[j], xs[i]
		ys[i], ys[j] = ys[j], ys[i]
	})
	plain, err := Partition(g, xs, ys, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	kl, err := Partition(g, xs, ys, 2, Options{KL: true})
	if err != nil {
		t.Fatal(err)
	}
	if kl.CrossingWeight() > plain.CrossingWeight() {
		t.Fatalf("KL worsened: %g -> %g", plain.CrossingWeight(), kl.CrossingWeight())
	}
}

func TestErrors(t *testing.T) {
	g := graph.Path(4)
	xy := []float64{0, 1, 2, 3}
	if _, err := Partition(g, xy[:3], xy, 2, Options{}); err == nil {
		t.Fatal("short coordinates accepted")
	}
	if _, err := Partition(g, xy, xy, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Partition(g, xy, xy, 2, Options{Arity: 3}); err == nil {
		t.Fatal("arity 3 accepted")
	}
}

func TestNonPowerOfTwoK(t *testing.T) {
	g := graph.Grid2D(8, 8)
	x := make([]float64, 64)
	y := make([]float64, 64)
	for v := 0; v < 64; v++ {
		x[v], y[v] = float64(v%8), float64(v/8)
	}
	for _, k := range []int{3, 5, 7} {
		p, err := Partition(g, x, y, k, Options{})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.NumParts() != k {
			t.Fatalf("k=%d: NumParts = %d", k, p.NumParts())
		}
	}
}
