// Package inertial implements Chaco's inertial (geometric) partitioning
// method, the remaining global scheme of the toolchain the paper benchmarks
// against: vertices carry coordinates, and each split cuts the point set by
// a hyperplane orthogonal to the principal axis of inertia at the weighted
// median. It needs geometry (the airspace workload provides sector centers)
// and ignores edges entirely unless KL refinement is enabled — a useful
// baseline between "linear" (ignores everything) and "spectral" (uses the
// full edge structure).
package inertial

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/refine"
)

// Options configures inertial partitioning.
type Options struct {
	// Arity is the split width per recursion level (2, 4 or 8; default 2).
	// Multiway splits slice the axis into equal-weight bands.
	Arity int
	// KL enables Kernighan-Lin refinement after each split.
	KL bool
	// Imbalance is passed to KL (default 0.05).
	Imbalance float64
}

// Partition cuts g into k parts using vertex coordinates (x[i], y[i]).
func Partition(g *graph.Graph, x, y []float64, k int, opt Options) (*partition.P, error) {
	n := g.NumVertices()
	if len(x) != n || len(y) != n {
		return nil, fmt.Errorf("inertial: coordinate arrays must have length %d", n)
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("inertial: k=%d out of range [1,%d]", k, n)
	}
	if opt.Arity == 0 {
		opt.Arity = 2
	}
	if opt.Arity != 2 && opt.Arity != 4 && opt.Arity != 8 {
		return nil, fmt.Errorf("inertial: arity must be 2, 4 or 8, got %d", opt.Arity)
	}
	assign := make([]int32, n)
	verts := make([]int32, n)
	for v := range verts {
		verts[v] = int32(v)
	}
	nextPart := int32(0)
	split(g, x, y, verts, k, opt, assign, &nextPart)
	return partition.FromAssignment(g, assign, k)
}

func split(g *graph.Graph, x, y []float64, verts []int32, kNode int, opt Options, assign []int32, nextPart *int32) {
	if kNode == 1 {
		id := *nextPart
		*nextPart++
		for _, v := range verts {
			assign[v] = id
		}
		return
	}
	groups := opt.Arity
	for groups > kNode {
		groups /= 2
	}
	if groups < 2 {
		groups = 2
	}
	kPer := make([]int, groups)
	for i := range kPer {
		kPer[i] = kNode / groups
		if i < kNode%groups {
			kPer[i]++
		}
	}

	// Principal axis of inertia of the weighted point set.
	ax, ay := principalAxis(g, x, y, verts)
	proj := make([]float64, len(verts))
	order := make([]int, len(verts))
	for i, v := range verts {
		proj[i] = ax*x[v] + ay*y[v]
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return proj[order[a]] < proj[order[b]] })

	// Slice the sorted projection into bands with weight proportional to
	// the part counts, keeping at least one vertex per band and enough for
	// the bands after it.
	totalW := 0.0
	for _, v := range verts {
		totalW += g.VertexWeight(int(v))
	}
	needAfter := make([]int, groups+1)
	for gi := groups - 1; gi >= 0; gi-- {
		needAfter[gi] = needAfter[gi+1] + kPer[gi]
	}
	local := make([]int32, len(verts))
	idx := 0
	accW := 0.0
	for gi := 0; gi < groups; gi++ {
		targetW := accW + totalW*float64(kPer[gi])/float64(kNode)
		start := idx
		for idx < len(order) {
			if len(order)-idx <= needAfter[gi+1] {
				break
			}
			vw := g.VertexWeight(int(verts[order[idx]]))
			if gi < groups-1 && idx-start >= kPer[gi] && accW+vw > targetW+1e-12 {
				break
			}
			accW += vw
			local[order[idx]] = int32(gi)
			idx++
		}
	}

	if opt.KL {
		sub := graph.Induced(g, verts)
		if groups == 2 {
			side := append([]int32(nil), local...)
			w0 := 0.0
			for i := range side {
				if side[i] == 0 {
					w0 += g.VertexWeight(int(verts[i]))
				}
			}
			refine.KL(sub.G, side, refine.BisectOptions{TargetWeight0: w0, Imbalance: opt.Imbalance})
			copy(local, side)
		} else {
			refine.PairwiseKL(sub.G, local, groups, refine.BisectOptions{Imbalance: opt.Imbalance})
		}
	}

	chunkOf := make([][]int32, groups)
	for i, v := range verts {
		chunkOf[local[i]] = append(chunkOf[local[i]], v)
	}
	for gi := 0; gi < groups; gi++ {
		if len(chunkOf[gi]) == 0 {
			*nextPart += int32(kPer[gi])
			continue
		}
		kgi := kPer[gi]
		if kgi > len(chunkOf[gi]) {
			*nextPart += int32(kPer[gi] - len(chunkOf[gi]))
			kgi = len(chunkOf[gi])
		}
		split(g, x, y, chunkOf[gi], kgi, opt, assign, nextPart)
	}
}

// principalAxis returns the unit eigenvector of the 2x2 inertia tensor with
// the larger eigenvalue — the direction of maximal spread, which the
// hyperplane cuts orthogonally.
func principalAxis(g *graph.Graph, x, y []float64, verts []int32) (float64, float64) {
	var wsum, cx, cy float64
	for _, v := range verts {
		w := g.VertexWeight(int(v))
		wsum += w
		cx += w * x[v]
		cy += w * y[v]
	}
	if wsum == 0 {
		return 1, 0
	}
	cx /= wsum
	cy /= wsum
	var sxx, sxy, syy float64
	for _, v := range verts {
		w := g.VertexWeight(int(v))
		dx, dy := x[v]-cx, y[v]-cy
		sxx += w * dx * dx
		sxy += w * dx * dy
		syy += w * dy * dy
	}
	// Largest eigenpair of [[sxx, sxy], [sxy, syy]] in closed form.
	tr := sxx + syy
	det := sxx*syy - sxy*sxy
	disc := math.Sqrt(math.Max(0, tr*tr/4-det))
	lambda := tr/2 + disc
	// Eigenvector: (sxy, lambda-sxx), or (lambda-syy, sxy); pick the more
	// numerically robust of the two.
	ax, ay := sxy, lambda-sxx
	if math.Abs(ax)+math.Abs(ay) < 1e-12 {
		ax, ay = lambda-syy, sxy
	}
	if math.Abs(ax)+math.Abs(ay) < 1e-12 {
		return 1, 0 // isotropic point set: any axis works
	}
	nrm := math.Hypot(ax, ay)
	return ax / nrm, ay / nrm
}
