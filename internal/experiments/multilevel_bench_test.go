package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/vcycle"
)

// Multilevel-vs-flat time-to-quality comparison, the committed
// BENCH_multilevel.json baseline. The claim under test is the ISSUE-4
// acceptance criterion: on a >= 10k-vertex graph, multilevel fusion-fission
// reaches the flat search's mean Mcut (5 seeds) in at most HALF the flat
// wall-clock budget — the V-cycle searches a few-hundred-vertex coarse
// graph where steps are cheap and moves are global, then pays only
// pass-capped refinement sweeps on the way up. Regenerate with:
//
//	BENCH_MULTILEVEL_BASELINE=1 go test -run TestWriteMultilevelBaseline -timeout 60m ./internal/experiments/
//
// BenchmarkMultilevelVsFlat below is the CI smoke-sized (step-capped,
// seconds-long) version of the same measurement.

func multilevelSolve(tb testing.TB, g *graph.Graph, k int, cfg RunConfig) (float64, *vcycle.Stats) {
	tb.Helper()
	spec, err := MethodByName("Fusion Fission")
	if err != nil {
		tb.Fatal(err)
	}
	res, err := spec.Run(context.Background(), g, k, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return objective.MCut.Evaluate(res.P), res.Hierarchy
}

// BenchmarkMultilevelVsFlat reports flat and multilevel Mcut at an equal
// step cap on a small instance; -benchtime 1x keeps it smoke-test sized.
func BenchmarkMultilevelVsFlat(b *testing.B) {
	g := graph.RandomGeometric(2000, 0.04, 1)
	const k = 16
	const steps = 1500
	var flat, ml float64
	for i := 0; i < b.N; i++ {
		flat, _ = multilevelSolve(b, g, k, RunConfig{Objective: objective.MCut, MaxSteps: steps, Seed: 1})
		ml, _ = multilevelSolve(b, g, k, RunConfig{Objective: objective.MCut, MaxSteps: steps, Seed: 1, Multilevel: true})
	}
	b.ReportMetric(flat, "mcut_flat")
	b.ReportMetric(ml, "mcut_multilevel")
}

// multilevelBaseline is the committed BENCH_multilevel.json document.
type multilevelBaseline struct {
	Graph            string        `json:"graph"`
	K                int           `json:"k"`
	Seeds            []int64       `json:"seeds"`
	Note             string        `json:"note"`
	FlatBudget       string        `json:"flat_budget"`
	MultilevelBudget string        `json:"multilevel_budget"`
	FlatMcut         []float64     `json:"flat_mcut"`
	FlatMean         float64       `json:"flat_mean"`
	MultilevelMcut   []float64     `json:"multilevel_mcut"`
	MultilevelMean   float64       `json:"multilevel_mean"`
	Hierarchy        *vcycle.Stats `json:"hierarchy"`
	Compose          composeRecord `json:"portfolio_compose"`
}

// composeRecord documents that Parallelism > 1 composes with Multilevel
// deterministically under step caps.
type composeRecord struct {
	Parallelism   int     `json:"parallelism"`
	MaxSteps      int     `json:"max_steps"`
	Deterministic bool    `json:"deterministic"`
	Mcut          float64 `json:"mcut"`
}

func TestWriteMultilevelBaseline(t *testing.T) {
	if os.Getenv("BENCH_MULTILEVEL_BASELINE") == "" {
		t.Skip("set BENCH_MULTILEVEL_BASELINE=1 to regenerate BENCH_multilevel.json")
	}
	g := graph.RandomGeometric(10000, 0.02, 1)
	const k = 32
	flatBudget := 4 * time.Second
	mlBudget := flatBudget / 2

	doc := multilevelBaseline{
		Graph:            fmt.Sprintf("RandomGeometric(10000, 0.02, seed 1): %d vertices, %d edges", g.NumVertices(), g.NumEdges()),
		K:                k,
		FlatBudget:       flatBudget.String(),
		MultilevelBudget: mlBudget.String(),
		Note: "time-to-quality: multilevel fusion-fission at HALF the flat budget must reach the " +
			"flat search's mean Mcut over the seed set; portfolio_compose records that " +
			"parallelism and multilevel together are step-cap deterministic",
	}
	var flatSum, mlSum float64
	for s := int64(1); s <= 5; s++ {
		doc.Seeds = append(doc.Seeds, s)
		flat, _ := multilevelSolve(t, g, k, RunConfig{Objective: objective.MCut, Budget: flatBudget, MaxSteps: 1 << 30, Seed: s})
		ml, h := multilevelSolve(t, g, k, RunConfig{Objective: objective.MCut, Budget: mlBudget, MaxSteps: 1 << 30, Seed: s, Multilevel: true})
		doc.FlatMcut = append(doc.FlatMcut, flat)
		doc.MultilevelMcut = append(doc.MultilevelMcut, ml)
		flatSum += flat
		mlSum += ml
		doc.Hierarchy = h
		t.Logf("seed %d: flat(%.1fs)=%.4f multilevel(%.1fs)=%.4f", s, flatBudget.Seconds(), flat, mlBudget.Seconds(), ml)
	}
	doc.FlatMean = flatSum / 5
	doc.MultilevelMean = mlSum / 5
	if doc.MultilevelMean > doc.FlatMean {
		t.Errorf("multilevel mean %.4f at half budget did not reach flat mean %.4f", doc.MultilevelMean, doc.FlatMean)
	}

	// Determinism of the multilevel portfolio under a step cap.
	spec, err := MethodByName("Fusion Fission")
	if err != nil {
		t.Fatal(err)
	}
	compose := func() ([]int32, float64) {
		res, err := spec.Run(context.Background(), g, k, RunConfig{
			Objective: objective.MCut, MaxSteps: 2000, Seed: 1,
			Parallelism: 4, Multilevel: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.P.Compact(), objective.MCut.Evaluate(res.P)
	}
	a, mcut := compose()
	b, _ := compose()
	doc.Compose = composeRecord{Parallelism: 4, MaxSteps: 2000, Deterministic: reflect.DeepEqual(a, b), Mcut: mcut}
	if !doc.Compose.Deterministic {
		t.Error("multilevel portfolio not deterministic under step cap")
	}

	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_multilevel.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("flat mean %.4f (%s) vs multilevel mean %.4f (%s)", doc.FlatMean, flatBudget, doc.MultilevelMean, mlBudget)
}
