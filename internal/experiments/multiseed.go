package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
)

// Variance quantifies a stochastic method's run-to-run spread — the paper
// reports single runs; this harness reports mean, standard deviation and
// extremes over independent seeds, with the runs spread across CPUs.

// VarianceRow aggregates one method's results over the seed set.
type VarianceRow struct {
	Name               string
	Objective          objective.Objective
	Mean, Std          float64
	Min, Max           float64
	Runs               int
	Failed             int
	MeanElapsedSeconds float64
}

// VarianceOptions configures RunVariance.
type VarianceOptions struct {
	// K is the part count (default 32).
	K int
	// Seeds are the independent seeds (default 1..8).
	Seeds []int64
	// Objective that the metaheuristics target and that is reported
	// (default MCut).
	Objective objective.Objective
	// Budget per run (default 1s).
	Budget time.Duration
	// Methods restricts the study; nil means the three metaheuristics.
	Methods []string
	// Workers caps concurrent runs (default GOMAXPROCS).
	Workers int
	// Parallelism is each run's own portfolio width (<= 1 serial). Total
	// concurrency is Workers x Parallelism; keep the product near the
	// core count.
	Parallelism int
	// Multilevel runs each supporting metaheuristic inside a V-cycle
	// (RunConfig.Multilevel); CoarsenTo is its coarsening cutoff (0 =
	// default).
	Multilevel bool
	CoarsenTo  int
}

// RunVariance runs each selected method once per seed, in parallel, and
// aggregates the objective values.
func RunVariance(g *graph.Graph, opt VarianceOptions) ([]VarianceRow, error) {
	if opt.K == 0 {
		opt.K = 32
	}
	if len(opt.Seeds) == 0 {
		for s := int64(1); s <= 8; s++ {
			opt.Seeds = append(opt.Seeds, s)
		}
	}
	if opt.Budget == 0 {
		opt.Budget = time.Second
	}
	methods := opt.Methods
	if methods == nil {
		methods = []string{"Simulated annealing", "Ant colony", "Fusion Fission"}
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	type job struct {
		method string
		seed   int64
	}
	type outcome struct {
		method  string
		value   float64
		seconds float64
		err     error
	}
	jobs := make(chan job)
	results := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				spec, err := MethodByName(j.method)
				if err != nil {
					results <- outcome{method: j.method, err: err}
					continue
				}
				start := time.Now()
				res, err := spec.Run(context.Background(), g, opt.K, RunConfig{
					Objective: opt.Objective, Budget: opt.Budget,
					Seed: j.seed, Parallelism: opt.Parallelism,
					Multilevel: opt.Multilevel && spec.Multilevel, CoarsenTo: opt.CoarsenTo,
				})
				if err != nil {
					results <- outcome{method: j.method, err: err}
					continue
				}
				results <- outcome{
					method:  j.method,
					value:   opt.Objective.Evaluate(res.P),
					seconds: time.Since(start).Seconds(),
				}
			}
		}()
	}
	go func() {
		for _, m := range methods {
			for _, s := range opt.Seeds {
				jobs <- job{m, s}
			}
		}
		close(jobs)
		wg.Wait()
		close(results)
	}()

	acc := make(map[string]*VarianceRow, len(methods))
	values := make(map[string][]float64, len(methods))
	for _, m := range methods {
		acc[m] = &VarianceRow{Name: m, Objective: opt.Objective, Min: math.Inf(1), Max: math.Inf(-1)}
	}
	for out := range results {
		row := acc[out.method]
		if out.err != nil {
			row.Failed++
			continue
		}
		row.Runs++
		row.MeanElapsedSeconds += out.seconds
		values[out.method] = append(values[out.method], out.value)
		if out.value < row.Min {
			row.Min = out.value
		}
		if out.value > row.Max {
			row.Max = out.value
		}
	}
	rows := make([]VarianceRow, 0, len(methods))
	for _, m := range methods {
		row := acc[m]
		vs := values[m]
		if len(vs) > 0 {
			sum := 0.0
			for _, v := range vs {
				sum += v
			}
			row.Mean = sum / float64(len(vs))
			ss := 0.0
			for _, v := range vs {
				ss += (v - row.Mean) * (v - row.Mean)
			}
			if len(vs) > 1 {
				row.Std = math.Sqrt(ss / float64(len(vs)-1))
			}
			row.MeanElapsedSeconds /= float64(len(vs))
		}
		rows = append(rows, *row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Mean < rows[j].Mean })
	return rows, nil
}

// FormatVariance renders the aggregate table.
func FormatVariance(rows []VarianceRow) string {
	var b strings.Builder
	if len(rows) == 0 {
		return "(no rows)\n"
	}
	fmt.Fprintf(&b, "%-24s %12s %10s %10s %10s %6s %8s\n",
		"method", "mean "+rows[0].Objective.String(), "std", "min", "max", "runs", "avg sec")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %12.3f %10.3f %10.3f %10.3f %6d %8.2f\n",
			r.Name, r.Mean, r.Std, r.Min, r.Max, r.Runs, r.MeanElapsedSeconds)
		if r.Failed > 0 {
			fmt.Fprintf(&b, "%-24s %d runs FAILED\n", "", r.Failed)
		}
	}
	return b.String()
}
