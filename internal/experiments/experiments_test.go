package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/airspace"
	"repro/internal/graph"
)

// smallATC returns a scaled-down airspace instance that keeps the tests
// fast while exercising the full harness.
func smallATC(t *testing.T) *graph.Graph {
	t.Helper()
	g, _, err := airspace.Generate(airspace.Spec{
		Sectors: 180, Edges: 640, Hubs: 12, Flights: 8000, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestTable1AllRowsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs all seventeen Table 1 methods; skipped in -short")
	}
	g := smallATC(t)
	rows := Table1(g, Table1Options{K: 8, Seed: 1, MetaBudget: 150 * time.Millisecond})
	if len(rows) != 17 {
		t.Fatalf("got %d rows, want 17 (the paper's table)", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("%s failed: %s", r.Name, r.Err)
			continue
		}
		if r.Cut <= 0 || r.Ncut <= 0 || r.Mcut <= 0 {
			t.Errorf("%s produced non-positive objectives: %+v", r.Name, r)
		}
		if math.IsInf(r.Mcut, 1) || math.IsNaN(r.Mcut) {
			t.Errorf("%s produced non-finite Mcut", r.Name)
		}
	}
	text := FormatTable1(rows)
	for _, want := range []string{"Fusion Fission", "Cut/1000", "Percolation", "Spectral (RQI, Oct, KL)"} {
		if !strings.Contains(text, want) {
			t.Errorf("formatted table missing %q", want)
		}
	}
}

func TestTable1ShapeMetaheuristicsWinMcut(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second metaheuristic budgets; skipped in -short")
	}
	// The paper's headline: on Mcut, the metaheuristics (FF first) beat the
	// spectral/multilevel/linear family. Give the metaheuristics a modest
	// budget and check the ordering that defines the paper's conclusion.
	g := smallATC(t)
	rows := Table1(g, Table1Options{K: 8, Seed: 3, MetaBudget: 900 * time.Millisecond})
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	ff := byName["Fusion Fission"].Mcut
	bestClassic := math.Inf(1)
	for _, r := range rows {
		switch r.Name {
		case "Fusion Fission", "Simulated annealing", "Ant colony":
		default:
			if r.Mcut < bestClassic {
				bestClassic = r.Mcut
			}
		}
	}
	if ff > bestClassic*1.15 {
		t.Fatalf("fusion fission Mcut %.3f clearly worse than best classical %.3f — paper shape lost", ff, bestClassic)
	}
}

func TestMethodByName(t *testing.T) {
	if _, err := MethodByName("Fusion Fission"); err != nil {
		t.Fatal(err)
	}
	if _, err := MethodByName("nope"); err == nil {
		t.Fatal("unknown method accepted")
	}
}

func TestFigure1SeriesShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three metaheuristic traces; skipped in -short")
	}
	g := smallATC(t)
	res, err := Figure1(g, Figure1Options{K: 8, Seed: 2, Budget: 400 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("got %d series, want 3", len(res.Series))
	}
	for _, s := range res.Series {
		if len(s.Points) == 0 {
			t.Fatalf("series %s empty", s.Name)
		}
		final := s.At(time.Hour)
		if math.IsInf(final, 1) {
			t.Fatalf("series %s never produced a value", s.Name)
		}
		// Anytime property: cumulative best is non-increasing.
		prev := math.Inf(1)
		for _, p := range s.Points {
			if p.Mcut > prev+1e-9 {
				t.Fatalf("series %s trace not monotone", s.Name)
			}
			prev = p.Mcut
		}
	}
	if math.IsInf(res.SpectralMcut, 1) || math.IsInf(res.MultilevelMcut, 1) {
		t.Fatal("reference levels missing")
	}
	text := FormatFigure1(res)
	if !strings.Contains(text, "fusion fission") || !strings.Contains(text, "reference:") {
		t.Fatalf("formatted figure incomplete:\n%s", text)
	}
}

func TestSeriesAt(t *testing.T) {
	s := Figure1Series{Name: "x", Points: []Figure1Point{
		{10 * time.Millisecond, 5},
		{20 * time.Millisecond, 3},
		{30 * time.Millisecond, 4}, // regression should not raise the best
	}}
	if got := s.At(5 * time.Millisecond); !math.IsInf(got, 1) {
		t.Fatalf("At before first point = %g", got)
	}
	if got := s.At(25 * time.Millisecond); got != 3 {
		t.Fatalf("At(25ms) = %g, want 3", got)
	}
	if got := s.At(time.Second); got != 3 {
		t.Fatalf("At(inf) = %g, want 3", got)
	}
}

func TestObjectiveColumnsIndependent(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second metaheuristic budgets; skipped in -short")
	}
	// Metaheuristic rows must target each column's objective: the Cut cell
	// of an Mcut-driven run would be systematically worse. Verify the Cut
	// column of FF is within range of the best classical Cut.
	g := smallATC(t)
	rows := Table1(g, Table1Options{K: 8, Seed: 5, MetaBudget: 700 * time.Millisecond})
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	ffCut := byName["Fusion Fission"].Cut
	mlCut := byName["Multilevel (Bi)"].Cut
	if ffCut > mlCut*1.6 {
		t.Fatalf("FF Cut %.0f far above multilevel %.0f — Cut column not optimized", ffCut, mlCut)
	}
}
