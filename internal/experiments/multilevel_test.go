package experiments

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
)

// TestMultilevelAllMethods runs every V-cycle-capable method once with
// RunConfig.Multilevel and checks the result is a complete k-way partition
// carrying hierarchy stats.
func TestMultilevelAllMethods(t *testing.T) {
	g := graph.RandomGeometric(500, 0.08, 1)
	const k = 6
	for _, m := range append(Methods, ExtensionMethods...) {
		if !m.Multilevel {
			continue
		}
		m := m
		t.Run(m.Name, func(t *testing.T) {
			res, err := m.Run(context.Background(), g, k, RunConfig{
				Objective: objective.MCut, MaxSteps: 60, Seed: 3,
				Multilevel: true, CoarsenTo: 60,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.P == nil || !res.P.Complete() || res.P.NumParts() != k {
				t.Fatalf("bad partition: %+v", res.P)
			}
			if res.P.Graph() != g {
				t.Fatal("partition is not of the input graph")
			}
			if err := res.P.Validate(); err != nil {
				t.Fatal(err)
			}
			h := res.Hierarchy
			if h == nil || h.Levels < 1 || h.CoarsestVertices > 60 || h.CoarsestVertices <= k {
				t.Fatalf("hierarchy stats = %+v", h)
			}
		})
	}
}

// TestMultilevelPortfolioDeterministic is the acceptance guarantee that
// Parallelism > 1 composes with Multilevel deterministically under step
// caps: same (seed, width, hierarchy) in, bit-identical partition out.
func TestMultilevelPortfolioDeterministic(t *testing.T) {
	g := graph.RandomGeometric(600, 0.07, 2)
	const k = 5
	for _, name := range []string{"Fusion Fission", "Simulated annealing", "Genetic algorithm"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, err := MethodByName(name)
			if err != nil {
				t.Fatal(err)
			}
			run := func() []int32 {
				res, err := spec.Run(context.Background(), g, k, RunConfig{
					Objective: objective.MCut, MaxSteps: 120, Seed: 7,
					Parallelism: 3, Multilevel: true, CoarsenTo: 80,
				})
				if err != nil {
					t.Fatal(err)
				}
				if res.Workers != 3 {
					t.Fatalf("workers = %d, want 3", res.Workers)
				}
				return res.P.Compact()
			}
			if a, b := run(), run(); !reflect.DeepEqual(a, b) {
				t.Fatal("two identical step-capped multilevel portfolio runs diverged")
			}
		})
	}
}

// TestMultilevelIgnoredByFlatConfig pins that Multilevel: false keeps the
// pre-existing flat path byte-for-byte (golden tests cover the flat path
// itself; this checks the dispatch does not disturb it).
func TestMultilevelIgnoredByFlatConfig(t *testing.T) {
	g := graph.RandomGeometric(300, 0.1, 4)
	spec, err := MethodByName("Fusion Fission")
	if err != nil {
		t.Fatal(err)
	}
	run := func(cfg RunConfig) []int32 {
		res, err := spec.Run(context.Background(), g, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.P.Compact()
	}
	flat := run(RunConfig{Objective: objective.MCut, MaxSteps: 150, Seed: 5})
	ml := run(RunConfig{Objective: objective.MCut, MaxSteps: 150, Seed: 5, Multilevel: true})
	if reflect.DeepEqual(flat, ml) {
		t.Log("flat and multilevel agree on this instance (possible, not required)")
	}
	res, err := spec.Run(context.Background(), g, 4, RunConfig{Objective: objective.MCut, MaxSteps: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hierarchy != nil {
		t.Fatal("flat run reported hierarchy stats")
	}
	if !reflect.DeepEqual(run(RunConfig{Objective: objective.MCut, MaxSteps: 150, Seed: 5}), flat) {
		t.Fatal("flat run not reproducible")
	}
}

// TestMultilevelCancellation: a cancelled multilevel run still returns a
// valid partition marked partial (metaheuristic anytime semantics).
func TestMultilevelCancellation(t *testing.T) {
	g := graph.RandomGeometric(400, 0.08, 8)
	spec, err := MethodByName("Fusion Fission")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// Already-done context: the coarse solver errors out before a first
	// solution, and the error surfaces.
	if _, err := spec.Run(ctx, g, 4, RunConfig{Objective: objective.MCut, Multilevel: true}); err == nil {
		t.Fatal("done context did not error")
	}
}
