// Package experiments reproduces the paper's evaluation: Table 1 (the
// seventeen-method comparison on the 762-sector core-area graph at k = 32,
// under the Cut, Ncut and Mcut objectives) and Figure 1 (anytime Mcut
// quality of the three metaheuristics against the spectral and multilevel
// reference levels).
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/anneal"
	"repro/internal/antcolony"
	"repro/internal/core"
	"repro/internal/genetic"
	"repro/internal/graph"
	"repro/internal/linear"
	"repro/internal/multilevel"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/percolation"
	"repro/internal/spectral"
)

// MethodSpec describes one Table 1 row.
type MethodSpec struct {
	// Name is the row label, matching the paper's abbreviations.
	Name string
	// Metaheuristic marks the rows that target a specific objective and
	// accept a time budget.
	Metaheuristic bool
	// Run produces a k-way partition. For deterministic methods obj and
	// budget are ignored. Every method honours ctx cooperatively: a
	// classical method returns ctx.Err() once ctx fires (partial is always
	// false), a metaheuristic stops and returns its best partition so far
	// with partial set — the solver's own record of having observed the
	// cancellation, free of any race against the context timer.
	Run func(ctx context.Context, g *graph.Graph, k int, obj objective.Objective, budget time.Duration, steps int, seed int64) (p *partition.P, partial bool, err error)
}

// Methods lists the Table 1 rows in the paper's order.
var Methods = []MethodSpec{
	{Name: "Linear (Bi)", Run: runLinear(2, false)},
	{Name: "Linear (Bi, KL)", Run: runLinear(2, true)},
	{Name: "Linear (Oct, KL)", Run: runLinear(8, true)},
	{Name: "Spectral (Lanc, Bi)", Run: runSpectral(spectral.Lanczos, 2, false)},
	{Name: "Spectral (Lanc, Bi, KL)", Run: runSpectral(spectral.Lanczos, 2, true)},
	{Name: "Spectral (Lanc, Oct)", Run: runSpectral(spectral.Lanczos, 8, false)},
	{Name: "Spectral (Lanc, Oct, KL)", Run: runSpectral(spectral.Lanczos, 8, true)},
	{Name: "Spectral (RQI, Bi)", Run: runSpectral(spectral.RQI, 2, false)},
	{Name: "Spectral (RQI, Bi, KL)", Run: runSpectral(spectral.RQI, 2, true)},
	{Name: "Spectral (RQI, Oct)", Run: runSpectral(spectral.RQI, 8, false)},
	{Name: "Spectral (RQI, Oct, KL)", Run: runSpectral(spectral.RQI, 8, true)},
	{Name: "Multilevel (Bi)", Run: runMultilevel(2)},
	{Name: "Multilevel (Oct)", Run: runMultilevel(8)},
	{Name: "Percolation", Run: runPercolation},
	{Name: "Simulated annealing", Metaheuristic: true, Run: runAnneal},
	{Name: "Ant colony", Metaheuristic: true, Run: runAntColony},
	{Name: "Fusion Fission", Metaheuristic: true, Run: runFusionFission},
}

// ExtensionMethods lists partitioners beyond the paper's Table 1: the
// remaining Chaco-style baselines, the direct k-way multilevel scheme, the
// genetic-algorithm metaheuristic the paper's introduction cites as prior
// work, and the parallel fusion-fission ensemble. They never appear in the
// Table 1 reproduction, only through the facade and the ablation benches.
var ExtensionMethods = []MethodSpec{
	{Name: "Random", Run: func(ctx context.Context, g *graph.Graph, k int, _ objective.Objective, _ time.Duration, _ int, seed int64) (*partition.P, bool, error) {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		p, err := linear.Random(g, k, seed)
		return p, false, err
	}},
	{Name: "Scattered", Run: func(ctx context.Context, g *graph.Graph, k int, _ objective.Objective, _ time.Duration, _ int, _ int64) (*partition.P, bool, error) {
		if err := ctx.Err(); err != nil {
			return nil, false, err
		}
		p, err := linear.Scattered(g, k)
		return p, false, err
	}},
	{Name: "Multilevel (KWay)", Run: func(ctx context.Context, g *graph.Graph, k int, _ objective.Objective, _ time.Duration, _ int, seed int64) (*partition.P, bool, error) {
		p, err := multilevel.PartitionKWayContext(ctx, g, k, multilevel.Options{Seed: seed})
		return p, false, err
	}},
	{Name: "Genetic algorithm", Metaheuristic: true, Run: func(ctx context.Context, g *graph.Graph, k int, obj objective.Objective, budget time.Duration, steps int, seed int64) (*partition.P, bool, error) {
		res, err := genetic.PartitionContext(ctx, g, k, genetic.Options{
			Objective: obj, Budget: budget, Generations: stepsOr(steps, 100_000), Seed: seed,
		})
		if err != nil {
			return nil, false, err
		}
		return res.Best, res.Cancelled, nil
	}},
	{Name: "Fusion Fission (ensemble)", Metaheuristic: true, Run: func(ctx context.Context, g *graph.Graph, k int, obj objective.Objective, budget time.Duration, steps int, seed int64) (*partition.P, bool, error) {
		res, err := core.EnsembleContext(ctx, g, k, core.EnsembleOptions{Base: core.Options{
			Objective: obj, Budget: budget, MaxSteps: stepsOr(steps, 2_000_000), Seed: seed,
		}})
		if err != nil {
			return nil, false, err
		}
		return res.Best, res.Cancelled, nil
	}},
}

// MethodByName returns the spec with the given row label, searching the
// Table 1 rows first and the extensions second.
func MethodByName(name string) (MethodSpec, error) {
	for _, m := range Methods {
		if m.Name == name {
			return m, nil
		}
	}
	for _, m := range ExtensionMethods {
		if m.Name == name {
			return m, nil
		}
	}
	return MethodSpec{}, fmt.Errorf("experiments: unknown method %q", name)
}

func runLinear(arity int, kl bool) func(context.Context, *graph.Graph, int, objective.Objective, time.Duration, int, int64) (*partition.P, bool, error) {
	return func(ctx context.Context, g *graph.Graph, k int, _ objective.Objective, _ time.Duration, _ int, _ int64) (*partition.P, bool, error) {
		p, err := linear.PartitionContext(ctx, g, k, linear.Options{Arity: arity, KL: kl})
		return p, false, err
	}
}

func runSpectral(solver spectral.Solver, arity int, kl bool) func(context.Context, *graph.Graph, int, objective.Objective, time.Duration, int, int64) (*partition.P, bool, error) {
	return func(ctx context.Context, g *graph.Graph, k int, _ objective.Objective, _ time.Duration, _ int, seed int64) (*partition.P, bool, error) {
		p, err := spectral.PartitionContext(ctx, g, k, spectral.Options{Solver: solver, Arity: arity, KL: kl, Seed: seed})
		return p, false, err
	}
}

func runMultilevel(arity int) func(context.Context, *graph.Graph, int, objective.Objective, time.Duration, int, int64) (*partition.P, bool, error) {
	return func(ctx context.Context, g *graph.Graph, k int, _ objective.Objective, _ time.Duration, _ int, seed int64) (*partition.P, bool, error) {
		p, err := multilevel.PartitionContext(ctx, g, k, multilevel.Options{Arity: arity, Seed: seed})
		return p, false, err
	}
}

func runPercolation(ctx context.Context, g *graph.Graph, k int, _ objective.Objective, _ time.Duration, _ int, seed int64) (*partition.P, bool, error) {
	p, err := percolation.PartitionContext(ctx, g, k, percolation.Options{Seed: seed})
	return p, false, err
}

func runAnneal(ctx context.Context, g *graph.Graph, k int, obj objective.Objective, budget time.Duration, steps int, seed int64) (*partition.P, bool, error) {
	res, err := anneal.PartitionContext(ctx, g, k, anneal.Options{
		Objective: obj, Budget: budget, MaxSteps: stepsOr(steps, 2_000_000), Seed: seed,
	})
	if err != nil {
		return nil, false, err
	}
	return res.Best, res.Cancelled, nil
}

func runAntColony(ctx context.Context, g *graph.Graph, k int, obj objective.Objective, budget time.Duration, steps int, seed int64) (*partition.P, bool, error) {
	res, err := antcolony.PartitionContext(ctx, g, k, antcolony.Options{
		Objective: obj, Budget: budget, Iterations: stepsOr(steps, 1_000_000), Seed: seed,
	})
	if err != nil {
		return nil, false, err
	}
	return res.Best, res.Cancelled, nil
}

func runFusionFission(ctx context.Context, g *graph.Graph, k int, obj objective.Objective, budget time.Duration, steps int, seed int64) (*partition.P, bool, error) {
	res, err := core.PartitionContext(ctx, g, k, core.Options{
		Objective: obj, Budget: budget, MaxSteps: stepsOr(steps, 2_000_000), Seed: seed,
	})
	if err != nil {
		return nil, false, err
	}
	return res.Best, res.Cancelled, nil
}

func stepsOr(steps, def int) int {
	if steps > 0 {
		return steps
	}
	return def
}
