// Package experiments reproduces the paper's evaluation: Table 1 (the
// seventeen-method comparison on the 762-sector core-area graph at k = 32,
// under the Cut, Ncut and Mcut objectives) and Figure 1 (anytime Mcut
// quality of the three metaheuristics against the spectral and multilevel
// reference levels).
package experiments

import (
	"context"
	"fmt"
	"time"

	"repro/internal/anneal"
	"repro/internal/antcolony"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/genetic"
	"repro/internal/graph"
	"repro/internal/linear"
	"repro/internal/multilevel"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/percolation"
	"repro/internal/spectral"
	"repro/internal/vcycle"
)

// RunConfig carries the method-independent knobs of one solve.
type RunConfig struct {
	// Objective is the criterion metaheuristics target; classical methods
	// ignore it.
	Objective objective.Objective
	// Budget caps a metaheuristic's wall-clock time; 0 means no limit.
	Budget time.Duration
	// MaxSteps caps a metaheuristic's steps (0 = the method default).
	MaxSteps int
	// Seed drives all randomness; a portfolio derives per-worker seeds
	// from it.
	Seed int64
	// Parallelism is the portfolio width for metaheuristics: that many
	// concurrent workers search from independently derived seeds and
	// periodically exchange incumbents. Values <= 1 run the plain serial
	// solver; classical methods always run serially.
	Parallelism int
	// Multilevel runs a metaheuristic inside a multilevel V-cycle (package
	// vcycle): coarsen by heavy-edge matching, search the coarsest graph,
	// project up with refinement per level. Under a portfolio each worker
	// runs its own V-cycle over one shared hierarchy and incumbents are
	// exchanged at level boundaries. Ignored by methods whose MethodSpec
	// does not mark Multilevel support.
	Multilevel bool
	// CoarsenTo is the V-cycle's coarsening cutoff in vertices (0 selects
	// vcycle.DefaultCoarsenTo(k)); meaningful with Multilevel or
	// MemeticCrossover.
	CoarsenTo int
	// MemeticCrossover switches the genetic algorithm's crossover to the
	// cut-protecting V-cycle recombination of internal/memetic (offspring
	// floor-guaranteed never worse than the better parent). Takes precedence
	// over Multilevel for the GA — memetic recombination is its multilevel
	// mode. Ignored by methods whose MethodSpec does not mark Memetic
	// support.
	MemeticCrossover bool
	// Monitor optionally receives live progress (steps, best objective,
	// workers); used by the server's job-polling endpoint.
	Monitor *engine.Incumbent
	// Island is this process's island index in a federated run; it offsets
	// worker-seed derivation (island*width) and breaks cross-island winner
	// ties. 0 for single-process runs.
	Island int
	// Relay, when non-nil, federates the portfolio's incumbent exchange
	// across islands: each round's local winner is traded with the peers
	// and every worker receives the fleet-wide winner. Used by the server's
	// HTTP island transport; nil for single-process runs.
	Relay engine.Relay
	// WarmStart optionally seeds a metaheuristic with a previous assignment
	// (one part id in [0, k) per vertex): every portfolio worker starts from
	// it instead of cold initialization. The facade repairs the assignment
	// with refine.KWay before it lands here, so solvers receive a locally
	// optimal seed. Incompatible with Multilevel (the V-cycle solves the
	// coarsest graph, where a fine-graph assignment is meaningless) and
	// ignored by classical methods.
	WarmStart []int32
}

// RunResult is one method run's outcome.
type RunResult struct {
	// P is the computed partition.
	P *partition.P
	// Partial marks a metaheuristic interrupted by context cancellation:
	// P is the best partition found so far.
	Partial bool
	// Workers is the number of portfolio workers that ran (1 for serial
	// runs and classical methods).
	Workers int
	// Hierarchy describes the V-cycle's coarsening ladder when the run was
	// multilevel (RunConfig.Multilevel on a supporting method); nil
	// otherwise.
	Hierarchy *vcycle.Stats
}

// MethodSpec describes one Table 1 row.
type MethodSpec struct {
	// Name is the row label, matching the paper's abbreviations.
	Name string
	// Metaheuristic marks the rows that target a specific objective and
	// accept a time budget and a portfolio width.
	Metaheuristic bool
	// Multilevel marks the metaheuristics that can run inside the V-cycle
	// driver (RunConfig.Multilevel). The classical multilevel rows are their
	// own multilevel scheme and the ensemble manages its own workers, so
	// neither carries the flag.
	Multilevel bool
	// Memetic marks the methods that honour RunConfig.MemeticCrossover
	// (currently the genetic algorithm only).
	Memetic bool
	// Run produces a k-way partition. Every method honours ctx
	// cooperatively: a classical method returns ctx.Err() once ctx fires,
	// a metaheuristic stops and returns its best partition so far with
	// RunResult.Partial set — the solver's own record of having observed
	// the cancellation, free of any race against the context timer.
	Run func(ctx context.Context, g *graph.Graph, k int, cfg RunConfig) (RunResult, error)
}

// Methods lists the Table 1 rows in the paper's order.
var Methods = []MethodSpec{
	{Name: "Linear (Bi)", Run: runLinear(2, false)},
	{Name: "Linear (Bi, KL)", Run: runLinear(2, true)},
	{Name: "Linear (Oct, KL)", Run: runLinear(8, true)},
	{Name: "Spectral (Lanc, Bi)", Run: runSpectral(spectral.Lanczos, 2, false)},
	{Name: "Spectral (Lanc, Bi, KL)", Run: runSpectral(spectral.Lanczos, 2, true)},
	{Name: "Spectral (Lanc, Oct)", Run: runSpectral(spectral.Lanczos, 8, false)},
	{Name: "Spectral (Lanc, Oct, KL)", Run: runSpectral(spectral.Lanczos, 8, true)},
	{Name: "Spectral (RQI, Bi)", Run: runSpectral(spectral.RQI, 2, false)},
	{Name: "Spectral (RQI, Bi, KL)", Run: runSpectral(spectral.RQI, 2, true)},
	{Name: "Spectral (RQI, Oct)", Run: runSpectral(spectral.RQI, 8, false)},
	{Name: "Spectral (RQI, Oct, KL)", Run: runSpectral(spectral.RQI, 8, true)},
	{Name: "Multilevel (Bi)", Run: runMultilevel(2)},
	{Name: "Multilevel (Oct)", Run: runMultilevel(8)},
	{Name: "Percolation", Run: runPercolation},
	{Name: "Simulated annealing", Metaheuristic: true, Multilevel: true, Run: runAnneal},
	{Name: "Ant colony", Metaheuristic: true, Multilevel: true, Run: runAntColony},
	{Name: "Fusion Fission", Metaheuristic: true, Multilevel: true, Run: runFusionFission},
}

// ExtensionMethods lists partitioners beyond the paper's Table 1: the
// remaining Chaco-style baselines, the direct k-way multilevel scheme, the
// genetic-algorithm metaheuristic the paper's introduction cites as prior
// work, and the parallel fusion-fission ensemble. They never appear in the
// Table 1 reproduction, only through the facade and the ablation benches.
var ExtensionMethods = []MethodSpec{
	{Name: "Random", Run: func(ctx context.Context, g *graph.Graph, k int, cfg RunConfig) (RunResult, error) {
		if err := ctx.Err(); err != nil {
			return RunResult{}, err
		}
		p, err := linear.Random(g, k, cfg.Seed)
		return serial(p), err
	}},
	{Name: "Scattered", Run: func(ctx context.Context, g *graph.Graph, k int, _ RunConfig) (RunResult, error) {
		if err := ctx.Err(); err != nil {
			return RunResult{}, err
		}
		p, err := linear.Scattered(g, k)
		return serial(p), err
	}},
	{Name: "Multilevel (KWay)", Run: func(ctx context.Context, g *graph.Graph, k int, cfg RunConfig) (RunResult, error) {
		p, err := multilevel.PartitionKWayContext(ctx, g, k, multilevel.Options{Seed: cfg.Seed})
		return serial(p), err
	}},
	{Name: "Genetic algorithm", Metaheuristic: true, Multilevel: true, Memetic: true, Run: runGenetic},
	{Name: "Fusion Fission (ensemble)", Metaheuristic: true, Run: func(ctx context.Context, g *graph.Graph, k int, cfg RunConfig) (RunResult, error) {
		init, err := warmInitial(g, cfg, g.NumVertices())
		if err != nil {
			return RunResult{}, err
		}
		res, err := core.EnsembleContext(ctx, g, k, core.EnsembleOptions{Base: core.Options{
			Objective: cfg.Objective, Budget: cfg.Budget, MaxSteps: stepsOr(cfg.MaxSteps, 2_000_000), Seed: cfg.Seed,
			Initial: init,
		}})
		if err != nil {
			return RunResult{}, err
		}
		return RunResult{P: res.Best, Partial: res.Cancelled, Workers: 1}, nil
	}},
}

// MethodByName returns the spec with the given row label, searching the
// Table 1 rows first and the extensions second.
func MethodByName(name string) (MethodSpec, error) {
	for _, m := range Methods {
		if m.Name == name {
			return m, nil
		}
	}
	for _, m := range ExtensionMethods {
		if m.Name == name {
			return m, nil
		}
	}
	return MethodSpec{}, fmt.Errorf("experiments: unknown method %q", name)
}

func serial(p *partition.P) RunResult { return RunResult{P: p, Workers: 1} }

// portfolio runs solve as a cfg.Parallelism-wide engine portfolio (serial
// for widths <= 1, bit-identical to a direct call) and reduces the workers'
// results to the deterministic winner. syncEvery is the incumbent-exchange
// cadence in the solver's own step unit.
func portfolio[R any](ctx context.Context, cfg RunConfig, syncEvery int,
	energy func(R) float64,
	solve func(ctx context.Context, rt *engine.Runtime, seed int64) (R, error),
) (R, int, error) {
	workers := cfg.Parallelism
	if workers < 1 {
		workers = 1
	}
	return engine.Portfolio(ctx, engine.PortfolioOptions{
		Workers: workers, Seed: cfg.Seed, SyncEvery: syncEvery, Monitor: cfg.Monitor,
		// The fleet-global seed offset: island i's workers are indices
		// [i*width, (i+1)*width), so islands sharing a base seed still draw
		// from disjoint splitmix64 streams.
		Island: cfg.Island, WorkerOffset: cfg.Island * workers, Relay: cfg.Relay,
	}, energy, solve)
}

// vcSolver adapts one metaheuristic to the coarsest level of a V-cycle.
// budget is the wall-clock share the driver grants the solve, seed the
// portfolio worker's derived seed, rt a monitor-only runtime (or nil).
type vcSolver func(ctx context.Context, cg *graph.Graph, k int, cfg RunConfig, budget time.Duration, seed int64, rt *engine.Runtime) (*partition.P, bool, error)

// runVCycle runs solve inside a multilevel V-cycle, as a portfolio when
// cfg.Parallelism asks for one: the hierarchy is coarsened once from the
// base seed and shared by every worker, each worker V-cycles independently
// from its derived seed, and incumbents are exchanged at level boundaries.
func runVCycle(ctx context.Context, g *graph.Graph, k int, cfg RunConfig, solve vcSolver) (RunResult, error) {
	if cfg.WarmStart != nil {
		// The V-cycle's solver runs on the coarsest graph, where a
		// fine-graph assignment is meaningless; callers must choose.
		return RunResult{}, fmt.Errorf("experiments: warm start is incompatible with multilevel")
	}
	buildStart := time.Now()
	h, err := vcycle.Build(ctx, g, cfg.CoarsenTo, k, cfg.Seed)
	if err != nil {
		return RunResult{}, err
	}
	// Coarsening time is metaheuristic wall-clock too: charge it against
	// the budget so a multilevel solve keeps the same time envelope as a
	// flat one. A budget the ladder ate entirely leaves a token slice — the
	// anytime contract still owes a valid partition.
	budget := cfg.Budget
	if budget > 0 {
		if budget -= time.Since(buildStart); budget < time.Millisecond {
			budget = time.Millisecond
		}
	}
	stats := h.Stats()
	type out struct {
		p       *partition.P
		partial bool
	}
	res, workers, err := portfolio(ctx, cfg, 0, // boundary exchanges only, no step cadence
		func(o out) float64 { return cfg.Objective.Evaluate(o.p) },
		func(ctx context.Context, rt *engine.Runtime, seed int64) (out, error) {
			p, partial, err := vcycle.Run(ctx, h, k, vcycle.Options{
				Objective: cfg.Objective, Budget: budget, Runtime: rt,
			}, func(sctx context.Context, cg *graph.Graph, k int, budget time.Duration, srt *engine.Runtime) (*partition.P, bool, error) {
				return solve(sctx, cg, k, cfg, budget, seed, srt)
			})
			return out{p, partial}, err
		})
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{P: res.p, Partial: res.partial, Workers: workers, Hierarchy: &stats}, nil
}

func runLinear(arity int, kl bool) func(context.Context, *graph.Graph, int, RunConfig) (RunResult, error) {
	return func(ctx context.Context, g *graph.Graph, k int, _ RunConfig) (RunResult, error) {
		p, err := linear.PartitionContext(ctx, g, k, linear.Options{Arity: arity, KL: kl})
		return serial(p), err
	}
}

func runSpectral(solver spectral.Solver, arity int, kl bool) func(context.Context, *graph.Graph, int, RunConfig) (RunResult, error) {
	return func(ctx context.Context, g *graph.Graph, k int, cfg RunConfig) (RunResult, error) {
		p, err := spectral.PartitionContext(ctx, g, k, spectral.Options{Solver: solver, Arity: arity, KL: kl, Seed: cfg.Seed})
		return serial(p), err
	}
}

func runMultilevel(arity int) func(context.Context, *graph.Graph, int, RunConfig) (RunResult, error) {
	return func(ctx context.Context, g *graph.Graph, k int, cfg RunConfig) (RunResult, error) {
		p, err := multilevel.PartitionContext(ctx, g, k, multilevel.Options{Arity: arity, Seed: cfg.Seed})
		return serial(p), err
	}
}

func runPercolation(ctx context.Context, g *graph.Graph, k int, cfg RunConfig) (RunResult, error) {
	p, err := percolation.PartitionContext(ctx, g, k, percolation.Options{Seed: cfg.Seed})
	return serial(p), err
}

func runAnneal(ctx context.Context, g *graph.Graph, k int, cfg RunConfig) (RunResult, error) {
	if cfg.Multilevel {
		return runVCycle(ctx, g, k, cfg, annealSolve)
	}
	// Annealing moves are cheap, so workers exchange on a coarse cadence.
	res, workers, err := portfolio(ctx, cfg, 16_384,
		func(r *anneal.Result) float64 { return r.Energy },
		func(ctx context.Context, rt *engine.Runtime, seed int64) (*anneal.Result, error) {
			res, err := annealSolveRes(ctx, g, k, cfg, cfg.Budget, seed, rt)
			return res, err
		})
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{P: res.Best, Partial: res.Cancelled, Workers: workers}, nil
}

func annealSolveRes(ctx context.Context, g *graph.Graph, k int, cfg RunConfig, budget time.Duration, seed int64, rt *engine.Runtime) (*anneal.Result, error) {
	init, err := warmInitial(g, cfg, k)
	if err != nil {
		return nil, err
	}
	return anneal.PartitionContext(ctx, g, k, anneal.Options{
		Objective: cfg.Objective, Budget: budget,
		MaxSteps: stepsOr(cfg.MaxSteps, 2_000_000), Seed: seed, Runtime: rt,
		Initial: init,
	})
}

func annealSolve(ctx context.Context, cg *graph.Graph, k int, cfg RunConfig, budget time.Duration, seed int64, rt *engine.Runtime) (*partition.P, bool, error) {
	res, err := annealSolveRes(ctx, cg, k, cfg, budget, seed, rt)
	if err != nil {
		return nil, false, err
	}
	return res.Best, res.Cancelled, nil
}

func runAntColony(ctx context.Context, g *graph.Graph, k int, cfg RunConfig) (RunResult, error) {
	if cfg.Multilevel {
		return runVCycle(ctx, g, k, cfg, antColonySolve)
	}
	// One step is a whole colony iteration: exchange often.
	res, workers, err := portfolio(ctx, cfg, 32,
		func(r *antcolony.Result) float64 { return r.Energy },
		func(ctx context.Context, rt *engine.Runtime, seed int64) (*antcolony.Result, error) {
			return antColonySolveRes(ctx, g, k, cfg, cfg.Budget, seed, rt)
		})
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{P: res.Best, Partial: res.Cancelled, Workers: workers}, nil
}

func antColonySolveRes(ctx context.Context, g *graph.Graph, k int, cfg RunConfig, budget time.Duration, seed int64, rt *engine.Runtime) (*antcolony.Result, error) {
	init, err := warmInitial(g, cfg, k)
	if err != nil {
		return nil, err
	}
	return antcolony.PartitionContext(ctx, g, k, antcolony.Options{
		Objective: cfg.Objective, Budget: budget,
		Iterations: stepsOr(cfg.MaxSteps, 1_000_000), Seed: seed, Runtime: rt,
		Initial: init,
	})
}

func antColonySolve(ctx context.Context, cg *graph.Graph, k int, cfg RunConfig, budget time.Duration, seed int64, rt *engine.Runtime) (*partition.P, bool, error) {
	res, err := antColonySolveRes(ctx, cg, k, cfg, budget, seed, rt)
	if err != nil {
		return nil, false, err
	}
	return res.Best, res.Cancelled, nil
}

func runFusionFission(ctx context.Context, g *graph.Graph, k int, cfg RunConfig) (RunResult, error) {
	if cfg.Multilevel {
		return runVCycle(ctx, g, k, cfg, fusionFissionSolve)
	}
	res, workers, err := portfolio(ctx, cfg, 1024,
		func(r *core.Result) float64 { return r.Energy },
		func(ctx context.Context, rt *engine.Runtime, seed int64) (*core.Result, error) {
			return fusionFissionSolveRes(ctx, g, k, cfg, cfg.Budget, seed, rt)
		})
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{P: res.Best, Partial: res.Cancelled, Workers: workers}, nil
}

func fusionFissionSolveRes(ctx context.Context, g *graph.Graph, k int, cfg RunConfig, budget time.Duration, seed int64, rt *engine.Runtime) (*core.Result, error) {
	// Fusion-fission needs a part slot per vertex so atoms can split freely.
	init, err := warmInitial(g, cfg, g.NumVertices())
	if err != nil {
		return nil, err
	}
	return core.PartitionContext(ctx, g, k, core.Options{
		Objective: cfg.Objective, Budget: budget,
		MaxSteps: stepsOr(cfg.MaxSteps, 2_000_000), Seed: seed, Runtime: rt,
		Initial: init,
	})
}

func fusionFissionSolve(ctx context.Context, cg *graph.Graph, k int, cfg RunConfig, budget time.Duration, seed int64, rt *engine.Runtime) (*partition.P, bool, error) {
	res, err := fusionFissionSolveRes(ctx, cg, k, cfg, budget, seed, rt)
	if err != nil {
		return nil, false, err
	}
	return res.Best, res.Cancelled, nil
}

func runGenetic(ctx context.Context, g *graph.Graph, k int, cfg RunConfig) (RunResult, error) {
	if cfg.Multilevel && !cfg.MemeticCrossover {
		return runVCycle(ctx, g, k, cfg, geneticSolve)
	}
	// One step is a whole generation: exchange often.
	res, workers, err := portfolio(ctx, cfg, 4,
		func(r *genetic.Result) float64 { return r.Energy },
		func(ctx context.Context, rt *engine.Runtime, seed int64) (*genetic.Result, error) {
			return geneticSolveRes(ctx, g, k, cfg, cfg.Budget, seed, rt)
		})
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{P: res.Best, Partial: res.Cancelled, Workers: workers}, nil
}

func geneticSolveRes(ctx context.Context, g *graph.Graph, k int, cfg RunConfig, budget time.Duration, seed int64, rt *engine.Runtime) (*genetic.Result, error) {
	init, err := warmInitial(g, cfg, k)
	if err != nil {
		return nil, err
	}
	return genetic.PartitionContext(ctx, g, k, genetic.Options{
		Objective: cfg.Objective, Budget: budget,
		Generations: stepsOr(cfg.MaxSteps, 100_000), Seed: seed, Runtime: rt,
		Initial:          init,
		MemeticCrossover: cfg.MemeticCrossover, CoarsenTo: cfg.CoarsenTo,
	})
}

func geneticSolve(ctx context.Context, cg *graph.Graph, k int, cfg RunConfig, budget time.Duration, seed int64, rt *engine.Runtime) (*partition.P, bool, error) {
	res, err := geneticSolveRes(ctx, cg, k, cfg, budget, seed, rt)
	if err != nil {
		return nil, false, err
	}
	return res.Best, res.Cancelled, nil
}

// warmInitial materializes cfg.WarmStart as a starting partition for the
// graph being solved, with the part-slot capacity the solver requires
// (fusion-fission needs n slots so atoms can split freely; the others want
// exactly k to keep their per-part scans tight). nil when no warm start is
// present.
func warmInitial(g *graph.Graph, cfg RunConfig, capacity int) (*partition.P, error) {
	if cfg.WarmStart == nil {
		return nil, nil
	}
	p, err := partition.FromAssignment(g, cfg.WarmStart, capacity)
	if err != nil {
		return nil, fmt.Errorf("experiments: warm start: %w", err)
	}
	return p, nil
}

func stepsOr(steps, def int) int {
	if steps > 0 {
		return steps
	}
	return def
}
