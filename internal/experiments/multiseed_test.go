package experiments

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/objective"
)

func TestRunVarianceAggregates(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three metaheuristics over four seeds; skipped in -short")
	}
	g := smallATC(t)
	rows, err := RunVariance(g, VarianceOptions{
		K:         6,
		Seeds:     []int64{1, 2, 3, 4},
		Objective: objective.MCut,
		Budget:    120 * time.Millisecond,
		Workers:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3 metaheuristics", len(rows))
	}
	for _, r := range rows {
		if r.Failed > 0 {
			t.Errorf("%s: %d failed runs", r.Name, r.Failed)
		}
		if r.Runs != 4 {
			t.Errorf("%s: %d runs, want 4", r.Name, r.Runs)
		}
		if math.IsInf(r.Mean, 0) || r.Mean <= 0 {
			t.Errorf("%s: mean %g", r.Name, r.Mean)
		}
		if r.Min > r.Mean || r.Max < r.Mean {
			t.Errorf("%s: min %g mean %g max %g inconsistent", r.Name, r.Min, r.Mean, r.Max)
		}
		if r.Std < 0 {
			t.Errorf("%s: negative std", r.Name)
		}
	}
	// Rows are sorted by mean.
	for i := 1; i < len(rows); i++ {
		if rows[i].Mean < rows[i-1].Mean {
			t.Fatal("rows not sorted by mean")
		}
	}
	text := FormatVariance(rows)
	if !strings.Contains(text, "Fusion Fission") || !strings.Contains(text, "mean Mcut") {
		t.Fatalf("format incomplete:\n%s", text)
	}
}

func TestRunVarianceSubsetAndErrors(t *testing.T) {
	g := smallATC(t)
	rows, err := RunVariance(g, VarianceOptions{
		K:       6,
		Seeds:   []int64{1, 2},
		Methods: []string{"Percolation"},
		Budget:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0].Runs != 2 {
		t.Fatalf("subset run wrong: %+v", rows)
	}
	rows, err = RunVariance(g, VarianceOptions{
		K:       6,
		Seeds:   []int64{1},
		Methods: []string{"No Such Method"},
		Budget:  10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Failed != 1 {
		t.Fatalf("unknown method did not fail: %+v", rows[0])
	}
}

func TestFormatVarianceEmpty(t *testing.T) {
	if got := FormatVariance(nil); !strings.Contains(got, "no rows") {
		t.Fatalf("empty format = %q", got)
	}
}
