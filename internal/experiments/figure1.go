package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/anneal"
	"repro/internal/antcolony"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/multilevel"
	"repro/internal/objective"
	"repro/internal/spectral"
)

// Figure1Point is one sample of an anytime curve.
type Figure1Point struct {
	Elapsed time.Duration
	Mcut    float64
}

// Figure1Series is the anytime curve of one metaheuristic.
type Figure1Series struct {
	Name   string
	Points []Figure1Point // cumulative best Mcut over time, non-increasing
}

// Figure1Result bundles the metaheuristic curves with the reference levels
// (the horizontal "best spectral cut" and "best multilevel cut" lines of the
// paper's figure).
type Figure1Result struct {
	Series         []Figure1Series
	SpectralMcut   float64
	MultilevelMcut float64
	SpectralTime   time.Duration
	MultilevelTime time.Duration
}

// Figure1Options configures the run.
type Figure1Options struct {
	// K is the part count (paper: 32).
	K int
	// Seed drives every stochastic method.
	Seed int64
	// Budget is the wall-clock budget per metaheuristic (the paper's axis
	// runs from 1 s to 60 m; default 3s — scale up at will).
	Budget time.Duration
}

// Figure1 reproduces the paper's running-time figure: the three
// metaheuristics' best-so-far Mcut traces on g, plus the best spectral and
// multilevel values as reference levels.
func Figure1(g *graph.Graph, opt Figure1Options) (*Figure1Result, error) {
	if opt.K == 0 {
		opt.K = 32
	}
	if opt.Budget == 0 {
		opt.Budget = 3 * time.Second
	}
	res := &Figure1Result{}

	// Reference levels: best Mcut over the spectral rows and over the
	// multilevel rows, timed.
	start := time.Now()
	res.SpectralMcut = math.Inf(1)
	for _, arity := range []int{2, 8} {
		for _, kl := range []bool{false, true} {
			p, err := spectral.Partition(g, opt.K, spectral.Options{Arity: arity, KL: kl, Seed: opt.Seed})
			if err != nil {
				return nil, fmt.Errorf("figure1 spectral reference: %w", err)
			}
			if m := objective.MCut.Evaluate(p); m < res.SpectralMcut {
				res.SpectralMcut = m
			}
		}
	}
	res.SpectralTime = time.Since(start)
	start = time.Now()
	res.MultilevelMcut = math.Inf(1)
	for _, arity := range []int{2, 8} {
		p, err := multilevel.Partition(g, opt.K, multilevel.Options{Arity: arity, Seed: opt.Seed})
		if err != nil {
			return nil, fmt.Errorf("figure1 multilevel reference: %w", err)
		}
		if m := objective.MCut.Evaluate(p); m < res.MultilevelMcut {
			res.MultilevelMcut = m
		}
	}
	res.MultilevelTime = time.Since(start)

	// Metaheuristic anytime traces (each targets Mcut, the figure's axis).
	sa, err := anneal.Partition(g, opt.K, anneal.Options{
		Objective: objective.MCut, Budget: opt.Budget, MaxSteps: 1 << 30, Seed: opt.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("figure1 annealing: %w", err)
	}
	res.Series = append(res.Series, seriesFrom("simulated annealing", tracePoints(sa.Trace)))

	ac, err := antcolony.Partition(g, opt.K, antcolony.Options{
		Objective: objective.MCut, Budget: opt.Budget, Iterations: 1 << 30, Seed: opt.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("figure1 ant colony: %w", err)
	}
	res.Series = append(res.Series, seriesFrom("ant colony", tracePoints(ac.Trace)))

	ff, err := core.Partition(g, opt.K, core.Options{
		Objective: objective.MCut, Budget: opt.Budget, MaxSteps: 1 << 30, Seed: opt.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("figure1 fusion fission: %w", err)
	}
	res.Series = append(res.Series, seriesFrom("fusion fission", tracePoints(ff.Trace)))
	return res, nil
}

// tracePoints converts an engine trace (every solver aliases
// engine.TracePoint) to figure points.
func tracePoints(tr []engine.TracePoint) []Figure1Point {
	out := make([]Figure1Point, len(tr))
	for i, t := range tr {
		out[i] = Figure1Point{t.Elapsed, t.Energy}
	}
	return out
}

func seriesFrom(name string, pts []Figure1Point) Figure1Series {
	sort.Slice(pts, func(i, j int) bool { return pts[i].Elapsed < pts[j].Elapsed })
	return Figure1Series{Name: name, Points: pts}
}

// At returns the best value achieved by the series at or before t, or +Inf.
func (s Figure1Series) At(t time.Duration) float64 {
	best := math.Inf(1)
	for _, p := range s.Points {
		if p.Elapsed > t {
			break
		}
		if p.Mcut < best {
			best = p.Mcut
		}
	}
	return best
}

// FormatFigure1 renders the curves as a text table sampled on a geometric
// time ladder, mirroring the paper's log-scale time axis.
func FormatFigure1(r *Figure1Result) string {
	var b strings.Builder
	maxT := time.Duration(0)
	for _, s := range r.Series {
		if n := len(s.Points); n > 0 && s.Points[n-1].Elapsed > maxT {
			maxT = s.Points[n-1].Elapsed
		}
	}
	if maxT == 0 {
		maxT = time.Second
	}
	ladder := []time.Duration{maxT}
	for t := maxT; t > time.Millisecond; t /= 3 {
		ladder = append(ladder, t/3)
	}
	sort.Slice(ladder, func(i, j int) bool { return ladder[i] < ladder[j] })

	fmt.Fprintf(&b, "%-12s", "time")
	for _, s := range r.Series {
		fmt.Fprintf(&b, " %20s", s.Name)
	}
	b.WriteByte('\n')
	for _, t := range ladder {
		fmt.Fprintf(&b, "%-12s", t.Round(time.Millisecond))
		for _, s := range r.Series {
			v := s.At(t)
			if math.IsInf(v, 1) {
				fmt.Fprintf(&b, " %20s", "-")
			} else {
				fmt.Fprintf(&b, " %20.2f", v)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "reference: best spectral Mcut %.2f (%s), best multilevel Mcut %.2f (%s)\n",
		r.SpectralMcut, r.SpectralTime.Round(time.Millisecond),
		r.MultilevelMcut, r.MultilevelTime.Round(time.Millisecond))
	return b.String()
}
