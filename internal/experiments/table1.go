package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
)

// Table1Row is one line of the reproduced Table 1.
type Table1Row struct {
	Name    string
	Cut     float64 // paper convention, divided by 1000 at print time
	Ncut    float64
	Mcut    float64
	Elapsed time.Duration
	Err     string
}

// Table1Options configures the Table 1 run.
type Table1Options struct {
	// K is the part count (paper: 32).
	K int
	// Seed drives every stochastic method.
	Seed int64
	// MetaBudget is the wall-clock budget per metaheuristic per objective
	// (default 2s). The paper ran minutes-long searches; the shape of the
	// comparison is budget-stable, see EXPERIMENTS.md.
	MetaBudget time.Duration
	// MetaSteps optionally caps steps instead of (or with) time.
	MetaSteps int
	// Parallelism is the metaheuristics' portfolio width (<= 1 serial).
	Parallelism int
	// Multilevel runs each supporting metaheuristic inside a V-cycle
	// (RunConfig.Multilevel); CoarsenTo is its coarsening cutoff (0 =
	// default).
	Multilevel bool
	CoarsenTo  int
}

// Table1 reproduces the paper's Table 1 on g: every classical method runs
// once and is scored under all three objectives; every metaheuristic is run
// once per objective, targeting that objective — the adaptivity the paper
// highlights ("this method can easily change of goals, ie. criteria").
func Table1(g *graph.Graph, opt Table1Options) []Table1Row {
	if opt.K == 0 {
		opt.K = 32
	}
	if opt.MetaBudget == 0 {
		opt.MetaBudget = 2 * time.Second
	}
	rows := make([]Table1Row, 0, len(Methods))
	for _, m := range Methods {
		row := Table1Row{Name: m.Name}
		start := time.Now()
		if !m.Metaheuristic {
			res, err := m.Run(context.Background(), g, opt.K, RunConfig{Objective: objective.MCut, Seed: opt.Seed})
			if err != nil {
				row.Err = err.Error()
			} else {
				row.Cut, row.Ncut, row.Mcut = objective.EvaluateAll(res.P)
			}
		} else {
			for _, obj := range objective.All {
				res, err := m.Run(context.Background(), g, opt.K, RunConfig{
					Objective: obj, Budget: opt.MetaBudget, MaxSteps: opt.MetaSteps,
					Seed: opt.Seed, Parallelism: opt.Parallelism,
					Multilevel: opt.Multilevel && m.Multilevel, CoarsenTo: opt.CoarsenTo,
				})
				if err != nil {
					row.Err = err.Error()
					break
				}
				switch obj {
				case objective.Cut:
					row.Cut = objective.Cut.Evaluate(res.P)
				case objective.NCut:
					row.Ncut = objective.NCut.Evaluate(res.P)
				case objective.MCut:
					row.Mcut = objective.MCut.Evaluate(res.P)
				}
			}
		}
		row.Elapsed = time.Since(start)
		rows = append(rows, row)
	}
	return rows
}

// FormatTable1 renders rows in the paper's layout ("Cut results are divided
// by 1000").
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %10s %10s %10s\n", "Method", "Cut/1000", "Ncut", "Mcut", "time")
	b.WriteString(strings.Repeat("-", 74))
	b.WriteByte('\n')
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-28s ERROR: %s\n", r.Name, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-28s %10.1f %10.2f %10.2f %10s\n",
			r.Name, r.Cut/1000, r.Ncut, r.Mcut, r.Elapsed.Round(time.Millisecond))
	}
	return b.String()
}
