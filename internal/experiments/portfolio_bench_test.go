package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
)

// Serial-vs-portfolio quality comparison. A portfolio at equal wall-clock
// budget on a multi-core machine gives every worker the serial run's step
// budget, so the comparison is run step-capped: serial gets S steps, each
// of the 4 workers gets the same S — the multi-core equal-wall-clock
// equivalent that stays meaningful (and deterministic) on any CI core
// count. The committed BENCH_portfolio.json baseline is regenerated with:
//
//	BENCH_PORTFOLIO_BASELINE=1 go test -run TestWritePortfolioBaseline -timeout 60m ./internal/experiments/
//
// on the 10k-vertex geometric graph; the small benchmark below is the CI
// smoke-sized version of the same measurement.

// benchMethod describes one portfolio-vs-serial measurement.
type benchMethod struct {
	name  string
	steps int // per run serially, per worker in the portfolio
}

func benchSolve(b testing.TB, g *graph.Graph, name string, k, steps, parallelism int, seed int64) float64 {
	spec, err := MethodByName(name)
	if err != nil {
		b.Fatal(err)
	}
	res, err := spec.Run(context.Background(), g, k, RunConfig{
		Objective: objective.MCut, MaxSteps: steps, Seed: seed, Parallelism: parallelism,
	})
	if err != nil {
		b.Fatal(err)
	}
	return objective.MCut.Evaluate(res.P)
}

// BenchmarkPortfolioVsSerial reports serial and 4-worker Mcut as metrics on
// a small instance; -benchtime 1x keeps it smoke-test sized.
func BenchmarkPortfolioVsSerial(b *testing.B) {
	g := graph.RandomGeometric(1000, 0.06, 1)
	const k = 8
	for _, m := range []benchMethod{
		{"Fusion Fission", 400},
		{"Simulated annealing", 20_000},
		{"Genetic algorithm", 6},
	} {
		b.Run(m.name, func(b *testing.B) {
			var serial, par float64
			for i := 0; i < b.N; i++ {
				serial = benchSolve(b, g, m.name, k, m.steps, 1, 1)
				par = benchSolve(b, g, m.name, k, m.steps, 4, 1)
			}
			b.ReportMetric(serial, "mcut_serial")
			b.ReportMetric(par, "mcut_portfolio4")
		})
	}
}

// portfolioBaseline is the committed BENCH_portfolio.json document.
type portfolioBaseline struct {
	Graph       string             `json:"graph"`
	K           int                `json:"k"`
	Seeds       []int64            `json:"seeds"`
	Parallelism int                `json:"parallelism"`
	Note        string             `json:"note"`
	Methods     map[string]*series `json:"methods"`
}

type series struct {
	StepsPerWorker int       `json:"steps_per_worker"`
	SerialMcut     []float64 `json:"serial_mcut"`
	Portfolio4Mcut []float64 `json:"portfolio4_mcut"`
	SerialMean     float64   `json:"serial_mean"`
	Portfolio4Mean float64   `json:"portfolio4_mean"`
}

// TestWritePortfolioBaseline regenerates BENCH_portfolio.json (guarded by
// BENCH_PORTFOLIO_BASELINE=1; takes minutes). It fails if the 4-worker
// portfolio's mean Mcut exceeds the serial mean for any method, so a
// committed baseline always witnesses the portfolio's advantage.
func TestWritePortfolioBaseline(t *testing.T) {
	if os.Getenv("BENCH_PORTFOLIO_BASELINE") == "" {
		t.Skip("set BENCH_PORTFOLIO_BASELINE=1 to regenerate BENCH_portfolio.json")
	}
	g := graph.RandomGeometric(10_000, 0.02, 1)
	doc := portfolioBaseline{
		Graph:       fmt.Sprintf("RandomGeometric(10000, 0.02, seed 1): %d vertices, %d edges", g.NumVertices(), g.NumEdges()),
		K:           32,
		Seeds:       []int64{1, 2, 3, 4, 5},
		Parallelism: 4,
		Note: "step-capped runs: the portfolio gives each of its 4 workers the serial step budget, " +
			"which is what an equal wall-clock budget buys on a 4-core machine",
		Methods: map[string]*series{},
	}
	for _, m := range []benchMethod{
		{"Fusion Fission", 3000},
		{"Simulated annealing", 150_000},
		{"Genetic algorithm", 12},
	} {
		s := &series{StepsPerWorker: m.steps}
		for _, seed := range doc.Seeds {
			s.SerialMcut = append(s.SerialMcut, benchSolve(t, g, m.name, doc.K, m.steps, 1, seed))
			s.Portfolio4Mcut = append(s.Portfolio4Mcut, benchSolve(t, g, m.name, doc.K, m.steps, doc.Parallelism, seed))
		}
		s.SerialMean = mean(s.SerialMcut)
		s.Portfolio4Mean = mean(s.Portfolio4Mcut)
		doc.Methods[m.name] = s
		t.Logf("%-22s serial mean %.4f, portfolio mean %.4f", m.name, s.SerialMean, s.Portfolio4Mean)
		if s.Portfolio4Mean > s.SerialMean {
			t.Errorf("%s: portfolio mean %.4f worse than serial %.4f", m.name, s.Portfolio4Mean, s.SerialMean)
		}
	}
	buf, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_portfolio.json", append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

func mean(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}
