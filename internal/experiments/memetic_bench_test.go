package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
)

// Memetic-GA acceptance comparison, the committed BENCH_memetic.json
// baseline. The claim under test is the ISSUE-9 acceptance criterion: on the
// 10k-vertex/k=32 harness, the genetic algorithm with cut-protecting V-cycle
// recombination (Options.MemeticCrossover) beats BOTH the flat GA and the
// GA-inside-a-V-cycle portfolio on Mcut at equal wall-clock budget, on every
// one of the 5 seeds. Regenerate with:
//
//	BENCH_MEMETIC_BASELINE=1 go test -run TestWriteMemeticBaseline -timeout 60m ./internal/experiments/
//
// TestMemeticBenchSmoke is the CI-sized regression gate against that file,
// mirroring the BENCH_anneal pattern: the committed document is validated on
// every run, and a quick step-capped quality-ratio re-measurement (skipped
// under -short, where -race distorts timing-free comparisons least but CI
// budget matters most) fails on a >30% regression.

func geneticRun(tb testing.TB, g *graph.Graph, k int, cfg RunConfig) float64 {
	tb.Helper()
	spec, err := MethodByName("Genetic algorithm")
	if err != nil {
		tb.Fatal(err)
	}
	res, err := spec.Run(context.Background(), g, k, cfg)
	if err != nil {
		tb.Fatal(err)
	}
	return objective.MCut.Evaluate(res.P)
}

// memeticBaseline is the committed BENCH_memetic.json document.
type memeticBaseline struct {
	Graph          string        `json:"graph"`
	K              int           `json:"k"`
	Seeds          []int64       `json:"seeds"`
	Note           string        `json:"note"`
	Budget         string        `json:"budget"`
	Parallelism    int           `json:"parallelism"`
	FlatMcut       []float64     `json:"flat_ga_mcut"`
	FlatMean       float64       `json:"flat_ga_mean"`
	MultilevelMcut []float64     `json:"multilevel_ga_mcut"`
	MultilevelMean float64       `json:"multilevel_ga_mean"`
	MemeticMcut    []float64     `json:"memetic_ga_mcut"`
	MemeticMean    float64       `json:"memetic_ga_mean"`
	Compose        composeRecord `json:"portfolio_compose"`
}

func TestWriteMemeticBaseline(t *testing.T) {
	if os.Getenv("BENCH_MEMETIC_BASELINE") == "" {
		t.Skip("set BENCH_MEMETIC_BASELINE=1 to regenerate BENCH_memetic.json")
	}
	g := graph.RandomGeometric(10000, 0.02, 1)
	const k = 32
	const width = 4
	budget := 4 * time.Second

	doc := memeticBaseline{
		Graph:       fmt.Sprintf("RandomGeometric(10000, 0.02, seed 1): %d vertices, %d edges", g.NumVertices(), g.NumEdges()),
		K:           k,
		Budget:      budget.String(),
		Parallelism: width,
		Note: "equal-budget Mcut of three genetic configurations: flat crossover, GA inside a " +
			"multilevel V-cycle, and memetic cut-protecting V-cycle recombination. The ISSUE-9 " +
			"acceptance gate is memetic < flat AND memetic < multilevel on every seed; " +
			"portfolio_compose records that memetic_crossover composes deterministically with " +
			"parallelism under a step cap",
	}
	base := RunConfig{Objective: objective.MCut, Budget: budget, MaxSteps: 1 << 30, Parallelism: width}
	var flatSum, mlSum, memSum float64
	for s := int64(1); s <= 5; s++ {
		doc.Seeds = append(doc.Seeds, s)
		cfg := base
		cfg.Seed = s
		flat := geneticRun(t, g, k, cfg)
		cfg.Multilevel = true
		ml := geneticRun(t, g, k, cfg)
		cfg.Multilevel = false
		cfg.MemeticCrossover = true
		mem := geneticRun(t, g, k, cfg)
		doc.FlatMcut = append(doc.FlatMcut, flat)
		doc.MultilevelMcut = append(doc.MultilevelMcut, ml)
		doc.MemeticMcut = append(doc.MemeticMcut, mem)
		flatSum += flat
		mlSum += ml
		memSum += mem
		t.Logf("seed %d: flat=%.4f multilevel=%.4f memetic=%.4f", s, flat, ml, mem)
		if mem >= flat || mem >= ml {
			t.Errorf("seed %d: memetic %.4f did not beat flat %.4f and multilevel %.4f", s, mem, flat, ml)
		}
	}
	doc.FlatMean = flatSum / 5
	doc.MultilevelMean = mlSum / 5
	doc.MemeticMean = memSum / 5

	// Determinism of the memetic portfolio under a step cap (width > 1).
	spec, err := MethodByName("Genetic algorithm")
	if err != nil {
		t.Fatal(err)
	}
	compose := func() ([]int32, float64) {
		res, err := spec.Run(context.Background(), g, k, RunConfig{
			Objective: objective.MCut, MaxSteps: 3, Seed: 1,
			Parallelism: 4, MemeticCrossover: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.P.Compact(), objective.MCut.Evaluate(res.P)
	}
	a, mcut := compose()
	b, _ := compose()
	doc.Compose = composeRecord{Parallelism: 4, MaxSteps: 3, Deterministic: reflect.DeepEqual(a, b), Mcut: mcut}
	if !doc.Compose.Deterministic {
		t.Error("memetic portfolio not deterministic under step cap")
	}

	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_memetic.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("means: flat %.4f, multilevel %.4f, memetic %.4f", doc.FlatMean, doc.MultilevelMean, doc.MemeticMean)
}

// TestMemeticBenchSmoke is the CI regression gate. The committed
// BENCH_memetic.json is validated on every run — memetic must beat flat and
// multilevel on each seed and on the means. The live half re-measures the
// memetic-vs-flat quality ratio at an equal step cap on a smoke-sized
// instance and fails if the advantage eroded more than 30% relative to the
// committed baseline ratio; quality ratios at fixed steps are
// machine-independent, so the gate is stable on shared CI boxes.
func TestMemeticBenchSmoke(t *testing.T) {
	buf, err := os.ReadFile("../../BENCH_memetic.json")
	if err != nil {
		t.Fatalf("missing BENCH_memetic.json baseline (regenerate with BENCH_MEMETIC_BASELINE=1): %v", err)
	}
	var base memeticBaseline
	if err := json.Unmarshal(buf, &base); err != nil {
		t.Fatal(err)
	}
	if len(base.MemeticMcut) != len(base.Seeds) || len(base.FlatMcut) != len(base.Seeds) || len(base.MultilevelMcut) != len(base.Seeds) {
		t.Fatalf("baseline document is incomplete: %d seeds, %d/%d/%d samples",
			len(base.Seeds), len(base.FlatMcut), len(base.MultilevelMcut), len(base.MemeticMcut))
	}
	for i := range base.Seeds {
		if base.MemeticMcut[i] >= base.FlatMcut[i] || base.MemeticMcut[i] >= base.MultilevelMcut[i] {
			t.Errorf("baseline seed %d: memetic %.4f did not beat flat %.4f and multilevel %.4f",
				base.Seeds[i], base.MemeticMcut[i], base.FlatMcut[i], base.MultilevelMcut[i])
		}
	}
	if base.MemeticMean >= base.FlatMean || base.MemeticMean >= base.MultilevelMean {
		t.Errorf("baseline means: memetic %.4f did not beat flat %.4f and multilevel %.4f",
			base.MemeticMean, base.FlatMean, base.MultilevelMean)
	}
	if !base.Compose.Deterministic {
		t.Error("baseline records a non-deterministic memetic portfolio")
	}
	if testing.Short() {
		t.Skip("skipping live ratio re-measurement in -short mode; baseline document validated")
	}

	g := graph.RandomGeometric(2000, 0.04, 1)
	const k = 16
	const gens = 6
	cfg := RunConfig{Objective: objective.MCut, MaxSteps: gens, Seed: 1}
	flat := geneticRun(t, g, k, cfg)
	cfg.MemeticCrossover = true
	mem := geneticRun(t, g, k, cfg)
	ratio := mem / flat
	baseRatio := base.MemeticMean / base.FlatMean
	t.Logf("smoke memetic/flat Mcut ratio %.3f (baseline %.3f)", ratio, baseRatio)
	// Lower is better; the smoke instance differs from the acceptance one,
	// so gate on "memetic still clearly ahead", scaled by the baseline
	// advantage with 30% slack.
	if ratio > 1.3*baseRatio && ratio >= 1 {
		t.Errorf("memetic advantage regressed: smoke ratio %.3f vs baseline %.3f (+30%% slack)", ratio, baseRatio)
	}
}

// TestMemeticPortfolioDeterministic pins the ISSUE-9 determinism satellite at
// width > 1: a step-capped memetic-GA portfolio returns the identical
// partition on every run.
func TestMemeticPortfolioDeterministic(t *testing.T) {
	g := graph.RandomGeometric(600, 0.07, 2)
	const k = 8
	spec, err := MethodByName("Genetic algorithm")
	if err != nil {
		t.Fatal(err)
	}
	run := func() []int32 {
		res, err := spec.Run(context.Background(), g, k, RunConfig{
			Objective: objective.MCut, MaxSteps: 4, Seed: 3,
			Parallelism: 4, MemeticCrossover: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.P.Compact()
	}
	a := run()
	b := run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("width-4 step-capped memetic portfolio not deterministic")
	}
}
