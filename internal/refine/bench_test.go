package refine

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
)

func benchBisection(b *testing.B) (*graph.Graph, []int32) {
	b.Helper()
	g := graph.RandomGeometric(400, 0.09, 6)
	r := rng.New(7)
	side := make([]int32, g.NumVertices())
	for v := range side {
		side[v] = int32(r.Intn(2))
	}
	return g, side
}

func BenchmarkFM(b *testing.B) {
	g, side := benchBisection(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := append([]int32(nil), side...)
		FM(g, s, BisectOptions{MaxPasses: 2})
	}
}

func BenchmarkKL(b *testing.B) {
	g, side := benchBisection(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := append([]int32(nil), side...)
		KL(g, s, BisectOptions{MaxPasses: 2})
	}
}

func BenchmarkKWay(b *testing.B) {
	g := graph.RandomGeometric(400, 0.09, 8)
	r := rng.New(9)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(r.Intn(8))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := partition.FromAssignment(g, assign, 8)
		if err != nil {
			b.Fatal(err)
		}
		KWay(p, KWayOptions{Objective: objective.Cut, MaxPasses: 2})
	}
}
