// Package refine implements the local refinement methods of section 2.3:
// the Kernighan-Lin pairwise-swap bisection heuristic [20], a
// Fiduccia-Mattheyses-style single-move refinement with rollback [9] used by
// the multilevel method, and a greedy k-way boundary refinement that plays
// the role of KL for multiway (octasection) partitions.
//
// KL and FM operate on a graph plus a 0/1 side array so they can run on
// induced subgraphs inside recursive bisection without building partition
// state; the k-way pass operates on a *partition.P.
package refine

import (
	"container/heap"
	"context"
	"os"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/score"
)

// useBatch gates KWay's batched interior pre-filter, probed once at startup.
// The pre-filter only skips vertices the per-vertex scan would provably
// leave unmoved, so FF_NOBATCH=1 changes no results — it routes the sweep
// through the plain per-vertex path (and, in internal/score, the scalar
// kernels) for bisecting a suspected batching/SIMD artifact.
var useBatch = os.Getenv("FF_NOBATCH") == ""

// kwayBatch is the block size of KWay's interior pre-filter: one cache line
// of verdicts, evaluated in a prefetch-friendly burst over consecutive
// vertices — after a locality relayout, consecutive vertices are also
// adjacency-contiguous, so the sweep walks the CSR arrays nearly linearly.
const kwayBatch = 64

// BisectOptions configures KL and FM.
type BisectOptions struct {
	// TargetWeight0 is the desired total vertex weight of side 0.
	// 0 means half of the graph's total vertex weight.
	TargetWeight0 float64
	// Imbalance is the allowed relative deviation from the target
	// (default 0.05). FM refuses moves that push a side beyond
	// target*(1+Imbalance); KL swaps keep side weights nearly constant.
	Imbalance float64
	// MaxPasses bounds the number of improvement passes (default 8).
	MaxPasses int
	// Ctx optionally makes the refinement cancellable: once Ctx is done no
	// further pass starts and the refinement returns with the side array in
	// a consistent (partially refined) state. Nil means never cancelled.
	Ctx context.Context
}

// cancelled reports whether ctx (possibly nil) is done; the refinement loops
// poll it at pass boundaries so the arrays they mutate stay consistent.
func cancelled(ctx context.Context) bool {
	if ctx == nil {
		return false
	}
	select {
	case <-ctx.Done():
		return true
	default:
		return false
	}
}

func (o BisectOptions) withDefaults(g *graph.Graph) BisectOptions {
	if o.TargetWeight0 == 0 {
		o.TargetWeight0 = g.TotalVertexWeight() / 2
	}
	if o.Imbalance == 0 {
		o.Imbalance = 0.05
	}
	if o.MaxPasses == 0 {
		o.MaxPasses = 8
	}
	return o
}

// cutOf returns the crossing weight of a 2-way side assignment.
func cutOf(g *graph.Graph, side []int32) float64 {
	cut := 0.0
	g.ForEachEdge(func(u, v int, w float64) {
		if side[u] != side[v] {
			cut += w
		}
	})
	return cut
}

// dValues computes the KL "D" value of every vertex: external minus internal
// connection weight. Moving v to the other side changes the cut by -D[v].
func dValues(g *graph.Graph, side []int32) []float64 {
	n := g.NumVertices()
	d := make([]float64, n)
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		wts := g.Weights(v)
		for i, u := range nbrs {
			if side[u] == side[v] {
				d[v] -= wts[i]
			} else {
				d[v] += wts[i]
			}
		}
	}
	return d
}

// KL refines the bisection in side with the Kernighan-Lin algorithm:
// repeated passes of tentative best-pair swaps followed by rollback to the
// best prefix. Side weights are preserved up to vertex-weight differences of
// the swapped pairs. It returns the final crossing weight.
func KL(g *graph.Graph, side []int32, opt BisectOptions) float64 {
	opt = opt.withDefaults(g)
	n := g.NumVertices()
	if n < 2 {
		return cutOf(g, side)
	}
	// Balance bookkeeping: swaps of unequal-weight vertices may not drift
	// side 0 beyond the imbalance tolerance (plus one-heaviest-vertex slack
	// so unit-weight graphs behave exactly like classic KL).
	heaviest := 0.0
	w0 := 0.0
	for v := 0; v < n; v++ {
		if w := g.VertexWeight(v); w > heaviest {
			heaviest = w
		}
		if side[v] == 0 {
			w0 += g.VertexWeight(v)
		}
	}
	slack := opt.Imbalance*g.TotalVertexWeight()/2 + heaviest

	for pass := 0; pass < opt.MaxPasses && !cancelled(opt.Ctx); pass++ {
		d := dValues(g, side)
		locked := make([]bool, n)
		type swap struct{ a, b int }
		var seq []swap
		cum := 0.0
		bestCum, bestLen := 0.0, 0
		passW0 := w0

		pairs := min(countSide(side, 0), countSide(side, 1))
		for it := 0; it < pairs; it++ {
			// Each bestSwap scan is itself expensive on large sides, so a
			// pass polls per swap selection; breaking here falls through to
			// the rollback below, leaving the side array consistent.
			if cancelled(opt.Ctx) {
				break
			}
			a, b, gain, ok := bestSwap(g, side, d, locked, passW0, opt.TargetWeight0, slack)
			if !ok {
				break
			}
			// Tentatively swap and lock.
			locked[a], locked[b] = true, true
			applySwapD(g, side, d, a, b)
			side[a], side[b] = side[b], side[a]
			passW0 += g.VertexWeight(b) - g.VertexWeight(a)
			seq = append(seq, swap{a, b})
			cum += gain
			if cum > bestCum+1e-12 {
				bestCum, bestLen = cum, len(seq)
			}
		}
		// Roll back swaps beyond the best prefix.
		for i := len(seq) - 1; i >= bestLen; i-- {
			s := seq[i]
			side[s.a], side[s.b] = side[s.b], side[s.a]
			passW0 += g.VertexWeight(s.a) - g.VertexWeight(s.b)
		}
		w0 = passW0
		if bestLen == 0 || bestCum <= 1e-12 {
			break
		}
	}
	return cutOf(g, side)
}

func countSide(side []int32, s int32) int {
	c := 0
	for _, x := range side {
		if x == s {
			c++
		}
	}
	return c
}

// bestSwap finds the unlocked pair (a on side 0, b on side 1) maximizing
// gain = D[a] + D[b] - 2 w(a,b), using the classic sorted-D pruning: once
// D[a]+D[b] cannot beat the best gain found, the scan stops. Pairs whose
// weight difference would push side 0 outside target±slack are skipped.
func bestSwap(g *graph.Graph, side []int32, d []float64, locked []bool, w0, target0, slack float64) (a, b int, gain float64, ok bool) {
	var s0, s1 []int
	for v := range side {
		if locked[v] {
			continue
		}
		if side[v] == 0 {
			s0 = append(s0, v)
		} else {
			s1 = append(s1, v)
		}
	}
	if len(s0) == 0 || len(s1) == 0 {
		return 0, 0, 0, false
	}
	sortByDDesc(s0, d)
	sortByDDesc(s1, d)
	best := -1.0e300
	found := false
	for _, x := range s0 {
		if d[x]+d[s1[0]] <= best {
			break
		}
		for _, y := range s1 {
			bound := d[x] + d[y]
			if bound <= best {
				break
			}
			newW0 := w0 - g.VertexWeight(x) + g.VertexWeight(y)
			if newW0 < target0-slack || newW0 > target0+slack {
				continue
			}
			w, _ := g.EdgeWeight(x, y)
			if gxy := bound - 2*w; gxy > best {
				best, a, b = gxy, x, y
				found = true
			}
		}
	}
	return a, b, best, found
}

func sortByDDesc(vs []int, d []float64) {
	// Insertion sort: candidate lists are reused many times and often small.
	for i := 1; i < len(vs); i++ {
		x := vs[i]
		j := i - 1
		for j >= 0 && d[vs[j]] < d[x] {
			vs[j+1] = vs[j]
			j--
		}
		vs[j+1] = x
	}
}

// applySwapD updates D values for a tentative swap of a (side 0) and b
// (side 1). Every neighbor's D changes by ±2w depending on which endpoint it
// touches; a and b themselves are locked so their D is irrelevant.
func applySwapD(g *graph.Graph, side []int32, d []float64, a, b int) {
	for _, v := range []int{a, b} {
		nbrs := g.Neighbors(v)
		wts := g.Weights(v)
		for i, u := range nbrs {
			if int(u) == a || int(u) == b {
				continue
			}
			// v leaves side[v]: a former same-side neighbor gains external
			// weight (+2w), a former cross-side neighbor loses it (-2w).
			if side[u] == side[v] {
				d[u] += 2 * wts[i]
			} else {
				d[u] -= 2 * wts[i]
			}
		}
	}
}

// FM refines the bisection in side with single-vertex moves in best-gain
// order under a balance constraint, rolling back to the best prefix after
// each pass (Fiduccia-Mattheyses with a lazy priority queue standing in for
// integer gain buckets, since edge weights are real-valued here).
// It returns the final crossing weight.
func FM(g *graph.Graph, side []int32, opt BisectOptions) float64 {
	opt = opt.withDefaults(g)
	n := g.NumVertices()
	if n < 2 {
		return cutOf(g, side)
	}
	target := [2]float64{opt.TargetWeight0, g.TotalVertexWeight() - opt.TargetWeight0}
	maxW := [2]float64{target[0] * (1 + opt.Imbalance), target[1] * (1 + opt.Imbalance)}
	// Guard degenerate targets (e.g. tiny sides) with an absolute slack of
	// the heaviest vertex so progress is always possible.
	heaviest := 0.0
	for v := 0; v < n; v++ {
		if w := g.VertexWeight(v); w > heaviest {
			heaviest = w
		}
	}
	maxW[0] += heaviest
	maxW[1] += heaviest

	weight := [2]float64{}
	for v := 0; v < n; v++ {
		weight[side[v]] += g.VertexWeight(v)
	}

	for pass := 0; pass < opt.MaxPasses && !cancelled(opt.Ctx); pass++ {
		d := dValues(g, side)
		locked := make([]bool, n)
		stamp := make([]int64, n)
		pq := &gainHeap{}
		heap.Init(pq)
		for v := 0; v < n; v++ {
			heap.Push(pq, gainItem{v: v, gain: d[v], stamp: 0})
		}
		var seq []int
		cum, bestCum, bestLen := 0.0, 0.0, 0

		pops := 0
		for pq.Len() > 0 {
			// A pass pops O(n log n) queue entries; poll periodically and
			// fall through to the rollback so the side array stays
			// consistent.
			if pops++; pops&255 == 0 && cancelled(opt.Ctx) {
				break
			}
			it := heap.Pop(pq).(gainItem)
			if locked[it.v] || it.stamp != stamp[it.v] {
				continue
			}
			from := side[it.v]
			to := 1 - from
			vw := g.VertexWeight(it.v)
			if weight[to]+vw > maxW[to] || weight[from]-vw <= 0 {
				continue // balance would break or side would empty
			}
			// Apply tentatively.
			locked[it.v] = true
			cum += d[it.v]
			nbrs := g.Neighbors(it.v)
			wts := g.Weights(it.v)
			for i, u := range nbrs {
				if locked[u] {
					continue
				}
				if side[u] == from {
					d[u] += 2 * wts[i]
				} else {
					d[u] -= 2 * wts[i]
				}
				stamp[u]++
				heap.Push(pq, gainItem{v: int(u), gain: d[u], stamp: stamp[u]})
			}
			side[it.v] = to
			weight[from] -= vw
			weight[to] += vw
			seq = append(seq, it.v)
			if cum > bestCum+1e-12 {
				bestCum, bestLen = cum, len(seq)
			}
		}
		// Roll back moves beyond the best prefix.
		for i := len(seq) - 1; i >= bestLen; i-- {
			v := seq[i]
			to := 1 - side[v]
			vw := g.VertexWeight(v)
			weight[side[v]] -= vw
			weight[to] += vw
			side[v] = to
		}
		if bestLen == 0 || bestCum <= 1e-12 {
			break
		}
	}
	return cutOf(g, side)
}

type gainItem struct {
	v     int
	gain  float64
	stamp int64
}

type gainHeap []gainItem

func (h gainHeap) Len() int            { return len(h) }
func (h gainHeap) Less(i, j int) bool  { return h[i].gain > h[j].gain }
func (h gainHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *gainHeap) Push(x interface{}) { *h = append(*h, x.(gainItem)) }
func (h *gainHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// PairwiseKL refines a multiway assignment (values 0..groups-1 in assign) by
// running 2-way KL on every pair of groups that shares at least one edge,
// holding all other groups fixed. This is how KL refinement is applied to the
// octasection rows of Table 1.
func PairwiseKL(g *graph.Graph, assign []int32, groups int, opt BisectOptions) {
	// Which group pairs are adjacent?
	adjacent := make(map[[2]int32]bool)
	g.ForEachEdge(func(u, v int, w float64) {
		a, b := assign[u], assign[v]
		if a == b {
			return
		}
		if a > b {
			a, b = b, a
		}
		adjacent[[2]int32{a, b}] = true
	})
	for a := int32(0); a < int32(groups); a++ {
		for b := a + 1; b < int32(groups); b++ {
			if cancelled(opt.Ctx) {
				return
			}
			if !adjacent[[2]int32{a, b}] {
				continue
			}
			var verts []int32
			for v, gr := range assign {
				if gr == a || gr == b {
					verts = append(verts, int32(v))
				}
			}
			if len(verts) < 2 {
				continue
			}
			sub := graph.Induced(g, verts)
			side := make([]int32, len(verts))
			w0 := 0.0
			for i, v := range verts {
				if assign[v] == b {
					side[i] = 1
				} else {
					w0 += g.VertexWeight(int(v))
				}
			}
			o := opt
			o.TargetWeight0 = w0
			KL(sub.G, side, o)
			for i, v := range verts {
				if side[i] == 0 {
					assign[v] = a
				} else {
					assign[v] = b
				}
			}
		}
	}
}

// RelieveStarvation grows parts whose interior is starved — zero internal
// weight, or a cut-to-internal ratio above maxRatio — by absorbing their
// strongest-connected neighboring vertex, up to maxAbsorb vertices per part.
// Cut-driven methods (percolation's surface tension, k-way refinement) can
// leave such parts behind; they make Mcut/Ncut degenerate or infinite while
// being trivially repairable. Donor parts are never emptied.
func RelieveStarvation(p *partition.P, maxAbsorb int, maxRatio float64) {
	g := p.Graph()
	for _, a := range p.NonEmptyParts() {
		for absorbed := 0; absorbed < maxAbsorb; absorbed++ {
			w := p.PartInternalOrdered(a)
			cut := p.PartCut(a)
			if w > 0 && cut/w <= maxRatio {
				break
			}
			bestU, bestW := -1, 0.0
			for _, v := range p.VerticesOf(a) {
				nbrs := g.Neighbors(int(v))
				wts := g.Weights(int(v))
				for i, u := range nbrs {
					b := p.Part(int(u))
					if b == a || b == partition.Unassigned || p.PartSize(b) <= 1 {
						continue
					}
					if wts[i] > bestW {
						bestU, bestW = int(u), wts[i]
					}
				}
			}
			if bestU < 0 {
				break
			}
			p.Move(bestU, a)
		}
	}
}

// KWayOptions configures the greedy k-way boundary refinement.
type KWayOptions struct {
	// Objective to improve; defaults to Cut, matching Chaco's KL.
	Objective objective.Objective
	// Imbalance is the allowed part weight relative to the ideal share
	// (default 0.10 — k-way refinement needs more slack than bisection).
	Imbalance float64
	// MaxPasses bounds the number of sweeps (default 6).
	MaxPasses int
	// Ctx optionally makes the refinement cancellable at sweep boundaries.
	// Nil means never cancelled.
	Ctx context.Context
}

// KWay greedily moves boundary vertices to the neighboring part that most
// improves the objective, respecting balance and never emptying a part.
// It mutates p in place and returns the final objective value.
//
// Candidate moves are scored through a score.Tracker: each candidate costs
// one O(deg v) hypothetical evaluation (score.Tracker.MoveValue) instead of
// the Move + full O(k) Objective.Evaluate + un-Move scan this loop used to
// pay, so a sweep is O(n·deg) rather than O(n·deg·k).
//
// Part-count invariant: maxW is derived from p.NumParts() at entry only,
// and that is sound because a sweep can never change the part count — the
// PartSize guard below refuses to move the last vertex out of a part, and
// every destination is a neighbor's (hence non-empty) part, so no part is
// emptied and no new part appears. KWay therefore returns with exactly as
// many non-empty parts as it started with.
func KWay(p *partition.P, opt KWayOptions) float64 {
	if opt.Imbalance == 0 {
		opt.Imbalance = 0.10
	}
	if opt.MaxPasses == 0 {
		opt.MaxPasses = 6
	}
	g := p.Graph()
	n := g.NumVertices()
	k := p.NumParts()
	if k < 2 {
		return opt.Objective.Evaluate(p)
	}
	maxW := g.TotalVertexWeight() / float64(k) * (1 + opt.Imbalance)
	tr := score.NewTracker(p, opt.Objective, 0)
	cur := tr.Value()

	// Reusable candidate scratch: mark[b] == stamp means part b has already
	// been collected for the current vertex, and connW[b] accumulates v's
	// edge weight into b during the same scan. One allocation per KWay call
	// replaces the map[int]bool plus cands slice the old loop allocated for
	// every vertex of every pass — and with the connections in hand, each
	// candidate is evaluated in O(1) (MoveValueConn) instead of re-scanning
	// v's neighborhood per candidate.
	mark := make([]int64, p.Capacity())
	connW := make([]float64, p.Capacity())
	cands := make([]int, 0, 16)
	stamp := int64(0)

	// Batched interior pre-filter: most vertices of a refined partition are
	// interior (every neighbor in their own part), and the per-vertex loop
	// below spends its time discovering that one weighted adjacency scan at a
	// time. Each kwayBatch-aligned block instead runs one compare-only sweep
	// (score.NeighborsAllIn — the SIMD conns kernel on eligible graphs) whose
	// verdicts let the sweep skip interior vertices without touching the
	// stamp/connW bookkeeping. A verdict is trusted only while no move has
	// been committed since its block was evaluated — a committed move can
	// turn an interior vertex into a boundary one — so skipped vertices are
	// exactly those the unbatched scan would have left unmoved, and the
	// refined partition is bit-identical with the pre-filter on or off
	// (TestKWayBatchInvariance pins this).
	var allIn [kwayBatch]bool
	committed := 0
	for pass := 0; pass < opt.MaxPasses && !cancelled(opt.Ctx); pass++ {
		improved := false
		blockStart := -1
		blockMoves := 0
		for v := 0; v < n; v++ {
			// A pass over a large graph is still long; poll mid-pass too.
			if v&511 == 0 && cancelled(opt.Ctx) {
				return cur
			}
			if useBatch {
				if b := v &^ (kwayBatch - 1); b != blockStart {
					blockStart = b
					blockMoves = committed
					end := b + kwayBatch
					if end > n {
						end = n
					}
					for j := b; j < end; j++ {
						allIn[j-b] = score.NeighborsAllIn(p, j, p.Part(j))
					}
				}
				if committed == blockMoves && allIn[v-blockStart] {
					continue // interior: the scan below would find no candidate
				}
			}
			from := p.Part(v)
			if p.PartSize(from) <= 1 {
				continue
			}
			// Candidate parts (those v is connected to) and the connection
			// weight to each, in a single adjacency scan.
			stamp++
			mark[from] = stamp
			connW[from] = 0
			cands = cands[:0]
			assigned := 0.0
			wts := g.Weights(v)
			for i, u := range g.Neighbors(v) {
				b := p.Part(int(u))
				if b == partition.Unassigned {
					continue
				}
				w := wts[i]
				assigned += w
				if mark[b] != stamp {
					mark[b] = stamp
					connW[b] = 0
					cands = append(cands, b)
				}
				connW[b] += w
			}
			vw := g.VertexWeight(v)
			bestPart, bestVal := -1, cur
			for _, to := range cands {
				if p.PartVertexWeight(to)+vw > maxW {
					continue
				}
				val := tr.MoveValueConn(v, from, to,
					connW[from], connW[to], assigned-connW[from]-connW[to])
				if val < bestVal-1e-12 {
					bestVal, bestPart = val, to
				}
			}
			if bestPart >= 0 {
				tr.Apply(v, bestPart)
				cur = tr.Value()
				improved = true
				committed++
			}
		}
		if !improved {
			break
		}
	}
	return cur
}
