package refine

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
)

// badDumbbellSplit returns a dumbbell graph and a deliberately bad bisection
// that mixes the cliques.
func badDumbbellSplit() (*graph.Graph, []int32) {
	g := graph.Dumbbell(8, 8, 2)
	side := make([]int32, 16)
	for v := 0; v < 16; v++ {
		side[v] = int32(v % 2) // alternate: terrible cut
	}
	return g, side
}

func TestKLFindsDumbbellCut(t *testing.T) {
	g, side := badDumbbellSplit()
	before := cutOf(g, side)
	after := KL(g, side, BisectOptions{})
	if after >= before {
		t.Fatalf("KL did not improve: %g -> %g", before, after)
	}
	if after != 2 {
		t.Fatalf("KL cut = %g, want optimal 2 (the bridge)", after)
	}
	// Sides must have been preserved in size (swap-based).
	if c := countSide(side, 0); c != 8 {
		t.Fatalf("side 0 has %d vertices, want 8", c)
	}
}

func TestFMFindsDumbbellCut(t *testing.T) {
	g, side := badDumbbellSplit()
	before := cutOf(g, side)
	after := FM(g, side, BisectOptions{})
	if after >= before {
		t.Fatalf("FM did not improve: %g -> %g", before, after)
	}
	if after != 2 {
		t.Fatalf("FM cut = %g, want optimal 2", after)
	}
}

func TestFMRespectsBalance(t *testing.T) {
	// A star pulls everything toward the hub; FM must not empty a side.
	g := graph.Star(20)
	side := make([]int32, 20)
	for v := 10; v < 20; v++ {
		side[v] = 1
	}
	FM(g, side, BisectOptions{Imbalance: 0.05})
	c0 := countSide(side, 0)
	if c0 < 8 || c0 > 12 {
		t.Fatalf("FM broke balance: side 0 has %d of 20", c0)
	}
}

func TestKLNoOpOnOptimal(t *testing.T) {
	g := graph.Dumbbell(6, 6, 1)
	side := make([]int32, 12)
	for v := 6; v < 12; v++ {
		side[v] = 1
	}
	if after := KL(g, side, BisectOptions{}); after != 1 {
		t.Fatalf("KL degraded an optimal bisection to %g", after)
	}
}

func TestTinyGraphs(t *testing.T) {
	g := graph.Path(1)
	side := []int32{0}
	if KL(g, side, BisectOptions{}) != 0 {
		t.Fatal("single vertex KL cut != 0")
	}
	if FM(g, side, BisectOptions{}) != 0 {
		t.Fatal("single vertex FM cut != 0")
	}
}

// Property: KL and FM never increase the cut, on random graphs and random
// initial bisections.
func TestRefinementNeverWorsens(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 6 + r.Intn(40)
		g := graph.GNP(n, 0.2, seed)
		side := make([]int32, n)
		for v := range side {
			side[v] = int32(r.Intn(2))
		}
		if countSide(side, 0) == 0 || countSide(side, 1) == 0 {
			side[0], side[1] = 0, 1
		}
		before := cutOf(g, side)
		klSide := append([]int32(nil), side...)
		fmSide := append([]int32(nil), side...)
		if KL(g, klSide, BisectOptions{}) > before+1e-9 {
			return false
		}
		return FM(g, fmSide, BisectOptions{}) <= before+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPairwiseKLImprovesMultiway(t *testing.T) {
	// Grid split into 4 interleaved (awful) groups.
	g := graph.Grid2D(8, 8)
	assign := make([]int32, 64)
	for v := range assign {
		assign[v] = int32(v % 4)
	}
	before := multiCut(g, assign)
	PairwiseKL(g, assign, 4, BisectOptions{})
	after := multiCut(g, assign)
	if after >= before {
		t.Fatalf("PairwiseKL did not improve: %g -> %g", before, after)
	}
	// Group sizes preserved by swaps.
	counts := map[int32]int{}
	for _, a := range assign {
		counts[a]++
	}
	for gr, c := range counts {
		if c != 16 {
			t.Fatalf("group %d has %d vertices, want 16", gr, c)
		}
	}
}

func multiCut(g *graph.Graph, assign []int32) float64 {
	cut := 0.0
	g.ForEachEdge(func(u, v int, w float64) {
		if assign[u] != assign[v] {
			cut += w
		}
	})
	return cut
}

func TestKWayImprovesCut(t *testing.T) {
	g := graph.Grid2D(10, 10)
	r := rng.New(4)
	assign := make([]int32, 100)
	for v := range assign {
		assign[v] = int32(r.Intn(4))
	}
	p, err := partition.FromAssignment(g, assign, 4)
	if err != nil {
		t.Fatal(err)
	}
	before := objective.Cut.Evaluate(p)
	after := KWay(p, KWayOptions{Objective: objective.Cut})
	if after >= before {
		t.Fatalf("KWay did not improve: %g -> %g", before, after)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 4 {
		t.Fatalf("KWay emptied parts: %d left", p.NumParts())
	}
}

func TestKWayRespectsObjective(t *testing.T) {
	g := graph.Dumbbell(10, 10, 3)
	r := rng.New(9)
	assign := make([]int32, 20)
	for v := range assign {
		assign[v] = int32(r.Intn(2))
	}
	assign[0], assign[10] = 0, 1
	p, err := partition.FromAssignment(g, assign, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := objective.MCut.Evaluate(p)
	after := KWay(p, KWayOptions{Objective: objective.MCut})
	if after > before+1e-9 {
		t.Fatalf("KWay(Mcut) worsened: %g -> %g", before, after)
	}
}

func TestKWaySinglePartNoOp(t *testing.T) {
	g := graph.Path(5)
	p, _ := partition.FromAssignment(g, []int32{0, 0, 0, 0, 0}, 1)
	if got := KWay(p, KWayOptions{}); got != 0 {
		t.Fatalf("single-part KWay = %g", got)
	}
}

// TestKWayNeverEmptiesParts is the regression test for the part-count
// invariant KWay's maxW computation relies on: maxW is derived from
// p.NumParts() at entry only, which is sound because no sweep may empty a
// part (the last vertex of a part is never moved) or create one (every
// destination is a neighbor's non-empty part). Random graphs, random skewed
// partitions, every objective: the non-empty part count after KWay must
// equal the count at entry, even when tiny parts sit next to huge ones.
func TestKWayNeverEmptiesParts(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rng.New(seed)
		g := graph.GNP(40+r.Intn(40), 0.15, seed)
		n := g.NumVertices()
		k := 2 + r.Intn(6)
		assign := make([]int32, n)
		for v := range assign {
			// Skewed sizes: most vertices in part 0, the rest scattered, so
			// some parts enter as near-singletons (the emptying hazard).
			if r.Intn(3) > 0 {
				assign[v] = 0
			} else {
				assign[v] = int32(r.Intn(k))
			}
		}
		for a := 0; a < k; a++ {
			assign[r.Intn(n)] = int32(a) // every part non-empty
		}
		p, err := partition.FromAssignment(g, assign, k)
		if err != nil {
			t.Fatal(err)
		}
		entry := p.NumParts()
		for _, obj := range objective.All {
			q := p.Clone()
			KWay(q, KWayOptions{Objective: obj, MaxPasses: 3})
			if got := q.NumParts(); got != entry {
				t.Fatalf("seed %d obj %v: KWay changed part count %d -> %d", seed, obj, entry, got)
			}
			if err := q.Validate(); err != nil {
				t.Fatalf("seed %d obj %v: %v", seed, obj, err)
			}
		}
	}
}

// TestKWayReturnMatchesEvaluate: the value KWay reports from its incremental
// tracker must agree with a from-scratch evaluation of the final partition.
func TestKWayReturnMatchesEvaluate(t *testing.T) {
	r := rng.New(12)
	g := graph.RandomGeometric(300, 0.1, 12)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(r.Intn(6))
	}
	for _, obj := range objective.All {
		p, err := partition.FromAssignment(g, assign, 6)
		if err != nil {
			t.Fatal(err)
		}
		got := KWay(p, KWayOptions{Objective: obj})
		want := obj.Evaluate(p)
		if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
			t.Fatalf("obj %v: KWay returned %.15g, Evaluate says %.15g", obj, got, want)
		}
	}
}

// TestKWayBatchInvariance pins the contract of KWay's interior pre-filter:
// the batched sweep (NeighborsAllIn verdicts, SIMD kernel where eligible)
// skips only vertices the plain per-vertex scan would leave unmoved, so the
// refined assignment and the returned objective are bit-identical with the
// pre-filter on or off — the invariant FF_NOBATCH relies on.
func TestKWayBatchInvariance(t *testing.T) {
	defer func(old bool) { useBatch = old }(useBatch)
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 40 + r.Intn(200)
		g := graph.GNP(n, 4/float64(n), seed)
		k := 2 + r.Intn(6)
		assign := make([]int32, n)
		for v := range assign {
			assign[v] = int32(r.Intn(k))
		}
		for _, obj := range []objective.Objective{objective.Cut, objective.NCut, objective.MCut} {
			run := func(batched bool) ([]int32, float64) {
				useBatch = batched
				p, err := partition.FromAssignment(g, assign, k)
				if err != nil {
					t.Fatal(err)
				}
				val := KWay(p, KWayOptions{Objective: obj})
				out := make([]int32, n)
				for v := 0; v < n; v++ {
					out[v] = int32(p.Part(v))
				}
				return out, val
			}
			batchedAssign, batchedVal := run(true)
			plainAssign, plainVal := run(false)
			if math.Float64bits(batchedVal) != math.Float64bits(plainVal) {
				t.Logf("seed %d obj %v: value %v batched vs %v plain", seed, obj, batchedVal, plainVal)
				return false
			}
			for v := range batchedAssign {
				if batchedAssign[v] != plainAssign[v] {
					t.Logf("seed %d obj %v: vertex %d assigned %d batched vs %d plain",
						seed, obj, v, batchedAssign[v], plainAssign[v])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
