// Package objective implements the three partitioning objectives of the
// paper (section 1), evaluated from the incremental statistics maintained by
// package partition:
//
//	Cut(P)  = sum over parts A of cut(A, V-A)
//	Ncut(P) = sum over parts A of cut(A, V-A) / assoc(A, V)
//	Mcut(P) = sum over parts A of cut(A, V-A) / W(A)
//
// where W(A) is the paper's ordered-pair internal weight (twice the unordered
// internal edge weight) and assoc(A, V) = cut(A, V-A) + W(A).
//
// Note the paper's Cut counts every crossing edge twice (once per side); the
// conventional "edge cut" is CrossingWeight = Cut/2. Table 1 is reproduced
// with the paper's convention.
package objective

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/partition"
)

// Objective selects one of the paper's three criteria.
type Objective int

const (
	// MCut is the Ding et al. min-max cut; the objective the paper's Air
	// Traffic Control application targets. It is the zero value, so every
	// options struct in this repository defaults to the paper's criterion.
	MCut Objective = iota
	// Cut is the minimum-cut criterion (sum over parts of cut(A, V-A)).
	Cut
	// NCut is the Shi-Malik normalized cut.
	NCut
)

// All lists the objectives in Table 1 column order.
var All = []Objective{Cut, NCut, MCut}

// String returns the paper's name for the objective.
func (o Objective) String() string {
	switch o {
	case Cut:
		return "Cut"
	case NCut:
		return "Ncut"
	case MCut:
		return "Mcut"
	}
	return fmt.Sprintf("Objective(%d)", int(o))
}

// Parse recognizes "cut", "ncut" and "mcut" (case-insensitive).
func Parse(s string) (Objective, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "cut":
		return Cut, nil
	case "ncut":
		return NCut, nil
	case "mcut":
		return MCut, nil
	}
	return 0, fmt.Errorf("objective: unknown objective %q (want cut, ncut or mcut)", s)
}

// Evaluate returns the exact objective value of p. Parts with zero internal
// weight but positive cut make Mcut +Inf (the mathematical value); search
// loops should use EvaluateSmoothed instead so such states stay comparable.
func (o Objective) Evaluate(p *partition.P) float64 {
	return o.eval(p, 0)
}

// EvaluateSmoothed is Evaluate with eps added to every Mcut/Ncut denominator,
// keeping degenerate states (singleton atoms, empty-interior parts) finite
// and ordered. eps should be small relative to typical part internal weight;
// fusion-fission uses a fraction of the mean weighted degree.
func (o Objective) EvaluateSmoothed(p *partition.P, eps float64) float64 {
	return o.eval(p, eps)
}

func (o Objective) eval(p *partition.P, eps float64) float64 {
	total := 0.0
	for _, a := range p.NonEmptyParts() {
		total += o.Term(p.PartCut(a), p.PartInternalOrdered(a), eps)
	}
	return total
}

// Term returns one part's contribution to the smoothed objective from its
// cut and ordered internal weight W(A): cut itself for Cut,
// cut/(cut+W+eps) for Ncut, cut/(W+eps) for Mcut — +Inf for the eps = 0
// Mcut degenerate state (positive cut, no internal weight), 0 for a part
// with nothing (so empty parts contribute nothing). This is the single
// source of truth for the per-part summand: Evaluate sums it over the
// non-empty parts in ascending order, and the incremental scoring layer
// (internal/score) caches it per part — the two agree bit-for-bit because
// they share this function.
func (o Objective) Term(cut, w, eps float64) float64 {
	switch o {
	case Cut:
		return cut
	case NCut:
		if d := cut + w + eps; d > 0 {
			return cut / d
		}
		return 0
	default: // MCut
		if d := w + eps; d > 0 {
			return cut / d
		}
		if cut > 0 {
			return math.Inf(1)
		}
		return 0
	}
}

// EvaluateAll returns all three objectives of p in Table 1 column order.
func EvaluateAll(p *partition.P) (cut, ncut, mcut float64) {
	return Cut.Evaluate(p), NCut.Evaluate(p), MCut.Evaluate(p)
}

// Imbalance returns max_A vw(A) / (totalVW / k) - 1 over the k non-empty
// parts: 0 means perfectly balanced, 0.05 means the heaviest part is 5% over
// the ideal share. Returns 0 for partitions with no parts.
func Imbalance(p *partition.P) float64 {
	parts := p.NonEmptyParts()
	if len(parts) == 0 {
		return 0
	}
	ideal := p.Graph().TotalVertexWeight() / float64(len(parts))
	maxW := 0.0
	for _, a := range parts {
		if w := p.PartVertexWeight(a); w > maxW {
			maxW = w
		}
	}
	return maxW/ideal - 1
}
