package objective

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/rng"
)

func bisectedCycle(t *testing.T) *partition.P {
	t.Helper()
	g := graph.Cycle(8)
	p, err := partition.FromAssignment(g, []int32{0, 0, 0, 0, 1, 1, 1, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestHandValuesOnCycle(t *testing.T) {
	p := bisectedCycle(t)
	// Each side: cut = 2, internal unordered = 3 so W(A) = 6, assoc = 8.
	if got := Cut.Evaluate(p); got != 4 {
		t.Fatalf("Cut = %g, want 4", got)
	}
	if got := NCut.Evaluate(p); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Ncut = %g, want 0.5", got)
	}
	if got := MCut.Evaluate(p); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Fatalf("Mcut = %g, want 2/3", got)
	}
	c, n, m := EvaluateAll(p)
	if c != 4 || math.Abs(n-0.5) > 1e-12 || math.Abs(m-2.0/3.0) > 1e-12 {
		t.Fatalf("EvaluateAll = %g,%g,%g", c, n, m)
	}
}

func TestMcutInfiniteOnSingletons(t *testing.T) {
	g := graph.Path(3)
	p, _ := partition.FromAssignment(g, []int32{0, 1, 2}, 3)
	if !math.IsInf(MCut.Evaluate(p), 1) {
		t.Fatal("Mcut of all-singleton partition should be +Inf")
	}
	sm := MCut.EvaluateSmoothed(p, 0.5)
	if math.IsInf(sm, 1) || sm <= 0 {
		t.Fatalf("smoothed Mcut = %g, want finite positive", sm)
	}
}

func TestSmoothedConvergesToExact(t *testing.T) {
	p := bisectedCycle(t)
	exact := MCut.Evaluate(p)
	sm := MCut.EvaluateSmoothed(p, 1e-9)
	if math.Abs(exact-sm) > 1e-6 {
		t.Fatalf("smoothed %g differs from exact %g", sm, exact)
	}
}

func TestStringAndParse(t *testing.T) {
	for _, o := range All {
		got, err := Parse(o.String())
		if err != nil || got != o {
			t.Fatalf("Parse(%q) = %v, %v", o.String(), got, err)
		}
	}
	if _, err := Parse("modularity"); err == nil {
		t.Fatal("expected error for unknown objective")
	}
	if Objective(99).String() == "" {
		t.Fatal("String of invalid objective should be non-empty")
	}
}

func TestImbalance(t *testing.T) {
	g := graph.Path(4)
	p, _ := partition.FromAssignment(g, []int32{0, 0, 0, 1}, 2)
	// Heaviest part has 3 of 4 vertices; ideal is 2 → imbalance 0.5.
	if got := Imbalance(p); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("Imbalance = %g, want 0.5", got)
	}
	q, _ := partition.FromAssignment(g, []int32{0, 0, 1, 1}, 2)
	if got := Imbalance(q); math.Abs(got) > 1e-12 {
		t.Fatalf("Imbalance of balanced partition = %g, want 0", got)
	}
}

// brute-force evaluation by definition, for the property test below.
func bruteForce(g *graph.Graph, assign []int32, k int, o Objective) float64 {
	cut := make([]float64, k)
	internal := make([]float64, k)
	g.ForEachEdge(func(u, v int, w float64) {
		if assign[u] == assign[v] {
			internal[assign[u]] += 2 * w // ordered pairs
		} else {
			cut[assign[u]] += w
			cut[assign[v]] += w
		}
	})
	present := make([]bool, k)
	for _, a := range assign {
		present[a] = true
	}
	total := 0.0
	for a := 0; a < k; a++ {
		if !present[a] {
			continue
		}
		switch o {
		case Cut:
			total += cut[a]
		case NCut:
			if d := cut[a] + internal[a]; d > 0 {
				total += cut[a] / d
			}
		case MCut:
			if internal[a] > 0 {
				total += cut[a] / internal[a]
			} else if cut[a] > 0 {
				return math.Inf(1)
			}
		}
	}
	return total
}

// Property: Evaluate agrees with a from-definition recomputation on random
// graphs and random assignments, for all three objectives.
func TestEvaluateMatchesDefinition(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(25)
		g := graph.GNP(n, 0.25, seed)
		k := 2 + r.Intn(4)
		assign := make([]int32, n)
		for v := range assign {
			assign[v] = int32(r.Intn(k))
		}
		p, err := partition.FromAssignment(g, assign, k)
		if err != nil {
			return false
		}
		for _, o := range All {
			want := bruteForce(g, assign, k, o)
			got := o.Evaluate(p)
			if math.IsInf(want, 1) != math.IsInf(got, 1) {
				return false
			}
			if !math.IsInf(want, 1) && math.Abs(want-got) > 1e-9*(1+math.Abs(want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
