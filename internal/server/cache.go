package server

import (
	"container/list"
	"sync"

	ff "repro"
)

// resultCache is a thread-safe LRU over computed partitions, keyed by
// cacheKey (graph content hash + method + K + objective + seed + work caps).
// Values are shared *ff.Result pointers; callers must treat them as
// immutable.
type resultCache struct {
	mu           sync.Mutex
	cap          int
	ll           *list.List // front = most recently used
	items        map[string]*list.Element
	hits, misses int64
}

type cacheEntry struct {
	key string
	res *ff.Result
}

// newResultCache returns a cache holding up to capacity results; a
// non-positive capacity disables caching (every lookup misses, stores are
// dropped).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element),
	}
}

func (c *resultCache) get(key string) (*ff.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

func (c *resultCache) add(key string, res *ff.Result) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).res = res
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key, res})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// cacheStats is the snapshot reported by /healthz.
type cacheStats struct {
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
}

func (c *resultCache) stats() cacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStats{Size: c.ll.Len(), Capacity: c.cap, Hits: c.hits, Misses: c.misses}
}
