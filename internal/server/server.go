// Package server turns the fusionfission library into a partition-as-a-
// service HTTP API:
//
//	POST   /v1/partition           submit a graph + options, get a partition
//	GET    /v1/jobs/{id}           poll an asynchronous job
//	DELETE /v1/jobs/{id}           cancel a queued or running job
//	PUT    /v1/graphs              upload a graph, get its content id
//	GET    /v1/graphs              graph-store occupancy statistics
//	GET    /v1/graphs/{id}         stored-graph metadata
//	DELETE /v1/graphs/{id}         drop a stored graph
//	POST   /v1/graphs/{id}/mutate  derive a new graph by edge edits
//	GET    /v1/methods             list available methods and objectives
//	GET    /healthz                liveness + pool/cache/store statistics
//
// Requests run on a bounded worker pool with a per-job deadline covering
// queue wait plus execution. Identical concurrent requests (same cache key
// and same timeout — a shorter deadline could truncate the shared run) are
// coalesced onto a single computation, and finished results are served from an LRU cache
// keyed by (graph content hash, method, K, objective, seed, work caps) —
// with deterministic seeds, a repeat query never recomputes.
package server

import (
	"context"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"time"

	ff "repro"
	"repro/internal/graph"
	"repro/internal/store"
	"repro/internal/wire"
)

// Config sizes the service. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of concurrent partition computations
	// (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds jobs waiting for a worker (default 64); beyond it
	// submissions fail with 503.
	QueueDepth int
	// CacheSize is the LRU result-cache capacity in entries (default 256;
	// negative disables caching).
	CacheSize int
	// MaxBudget clamps the per-request metaheuristic budget (default 30s).
	MaxBudget time.Duration
	// MaxParallelism clamps the per-request portfolio width (default
	// GOMAXPROCS; negative disables portfolios entirely, forcing serial
	// runs). Each portfolio worker occupies a CPU core, so the product of
	// Workers and MaxParallelism is how oversubscribed the host can get.
	MaxParallelism int
	// Grace is added to a request's budget to form the default per-job
	// deadline, covering queue wait and fixed method overhead
	// (default 10s).
	Grace time.Duration
	// JobTTL is how long finished jobs stay pollable (default 15m).
	JobTTL time.Duration
	// MaxBodyBytes bounds request bodies (default 32 MiB).
	MaxBodyBytes int64

	// IslandID identifies this instance inside a federated fleet; it is the
	// deterministic reduction tie-break after the objective, so every fleet
	// member needs a distinct id. Meaningful only with Peers.
	IslandID int
	// Peers lists the base URLs (scheme://host:port) of the other islands in
	// the fleet. Non-empty Peers enables POST /v1/islands/exchange and lets
	// requests opt into federation with "federate": true.
	Peers []string
	// ExchangeWait caps the long-poll for a peer's candidate in one exchange
	// round (default 30s). A peer that cannot answer within the window is
	// skipped for that round; the run continues with the remaining
	// candidates.
	ExchangeWait time.Duration

	// StoreDir is the graph store's spill directory. When set, uploaded
	// graphs persist as binary CSR files and survive restarts and memory
	// eviction; when empty the store is memory-only and eviction is
	// permanent (evicted ids answer 404).
	StoreDir string
	// StoreMaxBytes bounds the graph store's in-memory tier by encoded
	// graph size (default store.DefaultMaxBytes).
	StoreMaxBytes int64
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.MaxBudget <= 0 {
		c.MaxBudget = 30 * time.Second
	}
	if c.MaxParallelism == 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxParallelism < 0 {
		c.MaxParallelism = 1
	}
	if c.Grace <= 0 {
		c.Grace = 10 * time.Second
	}
	if c.JobTTL <= 0 {
		c.JobTTL = 15 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	return c
}

// Server is the partition service. Create with New, mount via Handler,
// release the workers with Close.
type Server struct {
	cfg   Config
	cache *resultCache
	pool  *pool
	store *store.Store
	hub   *islandHub // nil unless the server has island peers
	start time.Time
}

// New builds a server with its worker pool already running. The only error
// source is opening the graph store's spill directory.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	st, err := store.Open(cfg.StoreDir, cfg.StoreMaxBytes)
	if err != nil {
		return nil, err
	}
	cache := newResultCache(cfg.CacheSize)
	s := &Server{
		cfg:   cfg,
		cache: cache,
		pool:  newPool(cfg.Workers, cfg.QueueDepth, cache, cfg.JobTTL),
		store: st,
		start: time.Now(),
	}
	if len(cfg.Peers) > 0 {
		s.hub = newIslandHub(cfg.IslandID, cfg.Peers, cfg.ExchangeWait)
	}
	return s, nil
}

// Close stops accepting jobs and waits for in-flight work to finish.
func (s *Server) Close() { s.pool.close() }

// Handler returns the HTTP routing for the service.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/methods", s.handleMethods)
	mux.HandleFunc("/v1/partition", s.handlePartition)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/graphs", s.handleGraphs)
	mux.HandleFunc("/v1/graphs/", s.handleGraphByID)
	mux.HandleFunc(islandExchangePath, s.handleIslandExchange)
	return mux
}

// partitionResponse is the body for job submission and polling.
type partitionResponse struct {
	JobID  string     `json:"job_id"`
	Status jobStatus  `json:"status"`
	Cached bool       `json:"cached,omitempty"`
	Result *ff.Result `json:"result,omitempty"`
	Error  string     `json:"error,omitempty"`
	// Progress reports a queued or running job's live counters: steps
	// executed, best objective so far, portfolio width.
	Progress *ff.Progress `json:"progress,omitempty"`
	// Poll is the status URL for asynchronous submissions.
	Poll string `json:"poll,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	body := map[string]any{
		"status":         "ok",
		"uptime_seconds": time.Since(s.start).Seconds(),
		"pool":           s.pool.snapshot(),
		"cache":          s.cache.stats(),
		"store":          s.store.Stats(),
	}
	if s.hub != nil {
		body["island"] = map[string]any{"id": s.cfg.IslandID, "peers": s.hub.peers}
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMethods(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"methods":    ff.MethodInfos(),
		"objectives": []string{"cut", "ncut", "mcut"},
	})
}

func (s *Server) handlePartition(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req PartitionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	g, digest, err := s.resolveGraph(req.Graph)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	opt, err := req.options(s.cfg.MaxBudget, s.cfg.MaxParallelism)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}
	if opt.K > g.NumVertices() {
		writeError(w, http.StatusBadRequest, "k = %d exceeds vertex count %d", opt.K, g.NumVertices())
		return
	}
	if len(opt.WarmStart) != 0 && len(opt.WarmStart) != g.NumVertices() {
		writeError(w, http.StatusBadRequest, "warm_start has %d labels for %d vertices", len(opt.WarmStart), g.NumVertices())
		return
	}
	timeout, err := req.timeout(opt.Budget + s.cfg.Grace)
	if err != nil {
		s.writeRequestError(w, err)
		return
	}

	// The graph content is hashed at most once per request: stored graphs
	// carry the digest in their id, and inline graphs hash lazily here only
	// when federation or the cache actually needs a key.
	contentID := func() string {
		if digest == "" {
			digest = graphDigest(g)
		}
		return digest
	}

	// Federated jobs never touch the result cache (key stays ""): a cache
	// hit on one island would skip the run — and its exchange rounds — while
	// a recomputing peer still expects a partner every round.
	var fed *federation
	if req.Federate {
		if s.hub == nil {
			writeError(w, http.StatusBadRequest,
				"federate requested but this server has no island peers (start ffserve with -island-id and -peers)")
			return
		}
		opt.Island = s.cfg.IslandID
		id := contentID()
		// The wire hash is the digest's raw bytes — submitting by stored
		// graph id federates without the graph content ever being rehashed
		// (or even sent) on this path.
		var h [wire.HashLen]byte
		if _, err := hex.Decode(h[:], []byte(id)); err != nil {
			writeError(w, http.StatusInternalServerError, "bad graph digest %q: %v", id, err)
			return
		}
		fed = &federation{hub: s.hub, key: exchangeKey(id, opt), hash: h}
	}

	key := ""
	if !req.NoCache && fed == nil {
		key = cacheKey(contentID(), opt)
		if res, ok := s.cache.get(key); ok {
			writeJSON(w, http.StatusOK, partitionResponse{
				JobID: "", Status: statusDone, Cached: true, Result: res,
			})
			return
		}
	}

	j, err := s.pool.submit(g, opt, key, timeout, fed)
	if err != nil {
		if errors.Is(err, errQueueFull) {
			w.Header().Set("Retry-After", "1")
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}

	if req.Wait != nil && !*req.Wait {
		writeJSON(w, http.StatusAccepted, partitionResponse{
			JobID: j.id, Status: statusQueued, Poll: "/v1/jobs/" + j.id,
		})
		return
	}

	// The wait is bounded by this request's own timeout, not the job's:
	// a request that coalesced onto an earlier submission may have asked
	// for a much shorter deadline than the job it attached to.
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-j.done:
		s.writeJobOutcome(w, j)
	case <-timer.C:
		writeJSON(w, http.StatusGatewayTimeout, partitionResponse{
			JobID: j.id, Status: statusRunning,
			Error: "timed out waiting; the job may still complete",
			Poll:  "/v1/jobs/" + j.id,
		})
	case <-r.Context().Done():
		// Client gone; the job keeps running and will populate the cache.
		writeError(w, statusClientClosedRequest, "client closed request; job %s still running", j.id)
	}
}

// statusClientClosedRequest is nginx's conventional code for a client that
// disconnected mid-request; the response is never seen, the code feeds logs.
const statusClientClosedRequest = 499

// writeRequestError maps codec errors: client mistakes get 400, absent
// resources 404, anything else 500.
func (s *Server) writeRequestError(w http.ResponseWriter, err error) {
	var bad *badRequestError
	if errors.As(err, &bad) {
		writeError(w, http.StatusBadRequest, "%s", bad.msg)
		return
	}
	var missing *notFoundError
	if errors.As(err, &missing) {
		writeError(w, http.StatusNotFound, "%s", missing.msg)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}

// resolveGraph materializes a request's graph. Stored graphs come out of
// the store with their content digest for free (the id is the digest,
// verified at upload); inline graphs return digest "" and handlePartition
// hashes them lazily if a key is needed.
func (s *Server) resolveGraph(spec GraphSpec) (*graph.Graph, string, error) {
	hasInline := spec.METIS != "" || spec.N != 0 || len(spec.Edges) != 0 || len(spec.VertexWeights) != 0
	if spec.ID != "" && !hasInline {
		g, ok := s.store.Get(spec.ID)
		if !ok {
			return nil, "", notFoundf("unknown graph id %q (never uploaded, evicted, or deleted)", spec.ID)
		}
		return g, spec.ID, nil
	}
	g, err := decodeGraph(spec) // also rejects id + inline content
	if err != nil {
		return nil, "", err
	}
	return g, "", nil
}

// writeJobOutcome renders a finished job.
func (s *Server) writeJobOutcome(w http.ResponseWriter, j *job) {
	status, res, err, _ := j.snapshot()
	switch status {
	case statusDone:
		writeJSON(w, http.StatusOK, partitionResponse{JobID: j.id, Status: status, Result: res})
	case statusCancelled:
		writeJSON(w, http.StatusConflict, partitionResponse{JobID: j.id, Status: status, Error: "job cancelled"})
	default:
		code := http.StatusUnprocessableEntity
		if errors.Is(err, context.DeadlineExceeded) {
			code = http.StatusGatewayTimeout
		}
		writeJSON(w, code, partitionResponse{JobID: j.id, Status: status, Error: err.Error()})
	}
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "bad job path")
		return
	}
	switch r.Method {
	case http.MethodGet:
		j, ok := s.pool.get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown job %q", id)
			return
		}
		status, res, err, _ := j.snapshot()
		resp := partitionResponse{JobID: j.id, Status: status}
		switch status {
		case statusDone:
			resp.Result = res
		case statusFailed, statusCancelled:
			resp.Error = err.Error()
		default:
			// Queued or running: surface the engine's live incumbent
			// snapshot so pollers can watch the search converge.
			progress := j.mon.Progress()
			resp.Progress = &progress
		}
		writeJSON(w, http.StatusOK, resp)
	case http.MethodDelete:
		cancelled, found := s.pool.cancelJob(id)
		if !found {
			writeError(w, http.StatusNotFound, "unknown job %q", id)
			return
		}
		if !cancelled {
			writeError(w, http.StatusConflict, "job %q already finished", id)
			return
		}
		writeJSON(w, http.StatusOK, partitionResponse{JobID: id, Status: statusCancelled})
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or DELETE")
	}
}
