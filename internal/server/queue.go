package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	ff "repro"
	"repro/internal/graph"
)

// jobStatus is the lifecycle of a submitted partition job.
type jobStatus string

const (
	statusQueued    jobStatus = "queued"
	statusRunning   jobStatus = "running"
	statusDone      jobStatus = "done"
	statusFailed    jobStatus = "failed"
	statusCancelled jobStatus = "cancelled"
)

// errQueueFull maps to HTTP 503.
var errQueueFull = errors.New("server: job queue full, retry later")

// job is one partition computation moving through the pool. Identical
// concurrent requests (same cache key and same timeout) coalesce onto a
// single job: the computation runs once and every waiter reads the shared
// outcome. The timeout is part of the coalescing identity — not the cache
// key — because a job's deadline can truncate a metaheuristic to a partial
// result, which must not be handed to a waiter that asked for longer.
type job struct {
	id    string
	key   string // cache key; "" for no_cache jobs, which never coalesce
	coKey string // coalescing key: cache key + timeout; "" never coalesces

	g   *graph.Graph
	opt ff.Options
	mon *ff.Monitor // live progress, snapshotted by GET /v1/jobs/{id}

	// hub and fedKey bind a federated job to the island hub: finish()
	// notifies the hub so peers polling later rounds get the final
	// candidate instead of hanging. Both zero for local jobs.
	hub    *islandHub
	fedKey string

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{} // closed exactly once, when the job finishes

	mu         sync.Mutex
	status     jobStatus
	result     *ff.Result
	err        error
	coalesced  int // extra requests served by this one computation
	createdAt  time.Time
	finishedAt time.Time
}

// snapshot reads the job state consistently.
func (j *job) snapshot() (jobStatus, *ff.Result, error, int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status, j.result, j.err, j.coalesced
}

// finish records the outcome and wakes all waiters. Only the first call
// takes effect.
func (j *job) finish(status jobStatus, res *ff.Result, err error) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status == statusDone || j.status == statusFailed || j.status == statusCancelled {
		return false
	}
	j.status = status
	j.result = res
	j.err = err
	j.finishedAt = time.Now()
	close(j.done)
	if j.hub != nil {
		j.hub.finish(j.fedKey)
	}
	return true
}

// poolStats is the counters snapshot reported by /healthz.
type poolStats struct {
	Workers    int   `json:"workers"`
	QueueDepth int   `json:"queue_depth"`
	Queued     int   `json:"queued"`
	Submitted  int64 `json:"submitted"`
	Coalesced  int64 `json:"coalesced"`
	Completed  int64 `json:"completed"`
	Failed     int64 `json:"failed"`
	Cancelled  int64 `json:"cancelled"`
}

// pool runs jobs on a fixed set of workers over a bounded queue.
type pool struct {
	queue   chan *job
	cache   *resultCache
	workers int
	jobTTL  time.Duration
	wg      sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	seq      int64
	jobs     map[string]*job // by id, finished jobs retained for jobTTL
	inflight map[string]*job // by coalescing key, queued or running only
	lastGC   time.Time
	stats    poolStats
}

func newPool(workers, depth int, cache *resultCache, jobTTL time.Duration) *pool {
	p := &pool{
		queue:    make(chan *job, depth),
		cache:    cache,
		workers:  workers,
		jobTTL:   jobTTL,
		jobs:     make(map[string]*job),
		inflight: make(map[string]*job),
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

// submit enqueues a computation, or attaches to an in-flight job with the
// same cache key. timeout bounds the job end to end: queue wait plus run.
// fed, when non-nil, binds the job to the island hub: the run exchanges
// incumbents through the fleet and the hub learns when the job finishes.
func (p *pool) submit(g *graph.Graph, opt ff.Options, key string, timeout time.Duration, fed *federation) (*job, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, errors.New("server: shutting down")
	}
	p.gcLocked()
	coKey := ""
	if key != "" {
		coKey = fmt.Sprintf("%s|%d", key, timeout)
		if j, ok := p.inflight[coKey]; ok {
			j.mu.Lock()
			j.coalesced++
			j.mu.Unlock()
			p.stats.Coalesced++
			return j, nil
		}
	}
	p.seq++
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	if fed != nil {
		opt.Exchange = fed.hub.open(ctx, fed.key, fed.hash, opt.K)
	}
	j := &job{
		id:        fmt.Sprintf("job-%06d", p.seq),
		key:       key,
		coKey:     coKey,
		g:         g,
		opt:       opt,
		mon:       ff.NewMonitor(),
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		status:    statusQueued,
		createdAt: time.Now(),
	}
	if fed != nil {
		j.hub = fed.hub
		j.fedKey = fed.key
	}
	select {
	case p.queue <- j:
	default:
		cancel()
		return nil, errQueueFull
	}
	p.jobs[j.id] = j
	if coKey != "" {
		p.inflight[coKey] = j
	}
	p.stats.Submitted++
	return j, nil
}

// get looks up a job by id.
func (p *pool) get(id string) (*job, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	j, ok := p.jobs[id]
	return j, ok
}

// cancelJob cancels a queued or running job. Cancellation is idempotent:
// cancelled is true whenever the job ends up in the cancelled state, no
// matter which goroutine got there first; a job that already finished done
// or failed returns (false, true).
func (p *pool) cancelJob(id string) (cancelled, found bool) {
	j, ok := p.get(id)
	if !ok {
		return false, false
	}
	j.cancel()
	if j.finish(statusCancelled, nil, context.Canceled) {
		p.detach(j)
		p.mu.Lock()
		p.stats.Cancelled++
		p.mu.Unlock()
		return true, true
	}
	status, _, _, _ := j.snapshot()
	return status == statusCancelled, true
}

// detach removes a finished job from the coalescing index.
func (p *pool) detach(j *job) {
	if j.coKey == "" {
		return
	}
	p.mu.Lock()
	if p.inflight[j.coKey] == j {
		delete(p.inflight, j.coKey)
	}
	p.mu.Unlock()
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		p.run(j)
	}
}

func (p *pool) run(j *job) {
	j.mu.Lock()
	if j.status != statusQueued {
		j.mu.Unlock() // already cancelled while queued
		return
	}
	if err := j.ctx.Err(); err != nil {
		j.mu.Unlock()
		j.finish(statusFailed, nil, fmt.Errorf("server: job expired in queue: %w", err))
		p.detach(j)
		p.bump(&p.stats.Failed)
		return
	}
	j.status = statusRunning
	j.mu.Unlock()

	// Cancellation is cooperative all the way down: PartitionContext runs
	// the solver on this goroutine and the solver itself observes j.ctx, so
	// a DELETE or an expired deadline returns control (and this worker
	// slot) promptly — nothing keeps computing in the background.
	res, err := ff.PartitionMonitored(j.ctx, j.g, j.opt, j.mon)
	j.cancel()
	if err != nil {
		// An explicit DELETE surfaces as context.Canceled; whichever of
		// this goroutine and cancelJob finishes the job first, the
		// recorded outcome is "cancelled", not "failed".
		status := statusFailed
		if errors.Is(err, context.Canceled) {
			status = statusCancelled
		}
		if j.finish(status, nil, err) {
			p.detach(j)
			if status == statusCancelled {
				p.bump(&p.stats.Cancelled)
			} else {
				p.bump(&p.stats.Failed)
			}
		}
		return
	}
	if j.finish(statusDone, res, nil) {
		// A metaheuristic interrupted by the deadline returns its best
		// partition so far; serve it to the waiters but never cache it —
		// a repeat of the request deserves the full budget.
		if j.key != "" && !res.Cancelled {
			p.cache.add(j.key, res)
		}
		p.detach(j)
		p.bump(&p.stats.Completed)
	}
}

func (p *pool) bump(counter *int64) {
	p.mu.Lock()
	*counter++
	p.mu.Unlock()
}

// gcLocked drops finished jobs older than jobTTL. The full-map sweep is
// amortized: at most once per gc interval, so submission stays O(1) under
// sustained traffic. Caller holds p.mu.
func (p *pool) gcLocked() {
	if p.jobTTL <= 0 {
		return
	}
	interval := 30 * time.Second
	if p.jobTTL < interval {
		interval = p.jobTTL
	}
	now := time.Now()
	if now.Sub(p.lastGC) < interval {
		return
	}
	p.lastGC = now
	cutoff := now.Add(-p.jobTTL)
	for id, j := range p.jobs {
		j.mu.Lock()
		expired := !j.finishedAt.IsZero() && j.finishedAt.Before(cutoff)
		j.mu.Unlock()
		if expired {
			delete(p.jobs, id)
		}
	}
}

func (p *pool) snapshot() poolStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := p.stats
	s.Workers = p.workers
	s.QueueDepth = cap(p.queue)
	s.Queued = len(p.queue)
	return s
}

// close drains the pool: no new submissions, workers finish queued jobs.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.queue)
	p.wg.Wait()
}
