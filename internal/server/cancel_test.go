package server

import (
	"encoding/json"
	"net/http"
	"runtime"
	"testing"
	"time"

	ff "repro"
)

// These tests pin down the service half of cooperative cancellation: a
// DELETE'd job must stop its computation (not just be marked cancelled),
// releasing its worker slot promptly and leaving no goroutine behind. A
// hand-rolled goroutine-count check stands in for go.uber.org/goleak, which
// this repository does not depend on.

// deleteJob issues DELETE /v1/jobs/{id} and returns the HTTP status code.
func deleteJob(t *testing.T, url, id string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, url+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr partitionResponse
	_ = json.NewDecoder(resp.Body).Decode(&pr)
	return resp.StatusCode
}

func TestCancelledJobFreesWorkerSlot(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	// Pin the only worker with a job that would otherwise run for 30s.
	code, hog := post(t, ts, slowJob("30s"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	// Wait until it is actually running (occupying the slot).
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got partitionResponse
		if code := getJSON(t, ts.URL+"/v1/jobs/"+hog.JobID, &got); code != http.StatusOK {
			t.Fatalf("poll: code %d", code)
		}
		if got.Status == statusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started running: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}

	if code := deleteJob(t, ts.URL, hog.JobID); code != http.StatusOK {
		t.Fatalf("cancel: code %d", code)
	}

	// The slot must come back promptly: a fresh synchronous job completes
	// in well under the 30s the cancelled computation had left.
	req := baseRequest()
	req.NoCache = true
	start := time.Now()
	code, pr := post(t, ts, req)
	if code != http.StatusOK || pr.Result == nil {
		t.Fatalf("job after cancel: code %d, %+v", code, pr)
	}
	if waited := time.Since(start); waited > 10*time.Second {
		t.Fatalf("worker slot held for %v after cancellation", waited)
	}
}

func TestCancelledJobLeaksNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	s, err := New(Config{Workers: 2, QueueDepth: 8, CacheSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	g, err := decodeGraph(ring(64))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := ff.Normalize(ff.Options{K: 4, Method: "fusion-fission", Budget: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	j, err := s.pool.submit(g, opt, "", time.Minute, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Let the computation start, then cancel it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, _, _, _ := j.snapshot()
		if st == statusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %v", st)
		}
		time.Sleep(time.Millisecond)
	}
	if cancelled, found := s.pool.cancelJob(j.id); !cancelled || !found {
		t.Fatalf("cancelJob: cancelled=%v found=%v", cancelled, found)
	}
	<-j.done

	// Close waits for the workers; if the cancelled solver were still
	// computing, this would block for its whole 30s budget.
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
	case <-time.After(10 * time.Second):
		t.Fatal("Close blocked: the cancelled computation still holds its worker")
	}

	// Workers and solver gone: the goroutine count returns to its baseline
	// (small slack for runtime/test-harness goroutines winding down).
	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			t.Fatalf("goroutine leak: %d before, %d after cancelled job", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDifferentTimeoutsDoNotCoalesce(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	// Identical cacheable requests that differ only in timeout must not
	// share a job: the shorter deadline could truncate the run and hand the
	// longer-timeout caller a partial result it never asked for.
	f := false
	short := PartitionRequest{
		Graph: ring(64), K: 4, Method: "fusion-fission",
		Budget: "2s", Timeout: "150ms", Wait: &f,
	}
	long := short
	long.Timeout = "30s"
	if code, _ := post(t, ts, short); code != http.StatusAccepted {
		t.Fatal("short submit failed")
	}
	if code, _ := post(t, ts, long); code != http.StatusAccepted {
		t.Fatal("long submit failed")
	}
	stats := s.pool.snapshot()
	if stats.Submitted != 2 || stats.Coalesced != 0 {
		t.Fatalf("requests with different timeouts coalesced: %+v", stats)
	}
	// Same timeout still coalesces.
	if code, _ := post(t, ts, long); code != http.StatusAccepted {
		t.Fatal("repeat submit failed")
	}
	if stats := s.pool.snapshot(); stats.Coalesced != 1 {
		t.Fatalf("identical request did not coalesce: %+v", stats)
	}
}

func TestDeadlinePartialResultNotCached(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})

	// A cacheable metaheuristic job whose deadline expires mid-run: the
	// caller gets the best-so-far partition, marked cancelled, and a repeat
	// of the identical request must not be served from the cache. Submitted
	// asynchronously and polled, so the test never races the waiter timer
	// against the job deadline.
	f := false
	req := PartitionRequest{
		Graph:   ring(64),
		K:       4,
		Method:  "fusion-fission",
		Budget:  "30s",
		Timeout: "150ms",
		Wait:    &f,
	}
	code, pr := post(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d, %+v", code, pr)
	}
	deadline := time.Now().Add(10 * time.Second)
	var got partitionResponse
	for {
		if code := getJSON(t, ts.URL+"/v1/jobs/"+pr.JobID, &got); code != http.StatusOK {
			t.Fatalf("poll: code %d", code)
		}
		if got.Status != statusQueued && got.Status != statusRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished: %+v", got)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.Status != statusDone || got.Result == nil {
		t.Fatalf("deadline-bounded job: %+v", got)
	}
	if !got.Result.Cancelled {
		t.Fatalf("mid-run deadline should mark the result cancelled: %+v", got.Result)
	}
	// A cached partial would answer the resubmission instantly with
	// Cached=true and status 200; a fresh computation is a 202.
	if code, pr2 := post(t, ts, req); code != http.StatusAccepted || pr2.Cached {
		t.Fatalf("partial result served from cache: code %d, %+v", code, pr2)
	}
}
