package server

import (
	"strings"
	"testing"
	"time"

	ff "repro"
	"repro/internal/graph"
)

func mustDecode(t *testing.T, spec GraphSpec) *graph.Graph {
	t.Helper()
	g, err := decodeGraph(spec)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphDigestCanonical(t *testing.T) {
	ringEdges := GraphSpec{N: 4, Edges: [][]float64{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}
	scrambled := GraphSpec{N: 4, Edges: [][]float64{{3, 0}, {2, 3}, {0, 1}, {1, 2}}}
	metis := GraphSpec{METIS: "4 4\n2 4\n1 3\n2 4\n3 1\n"}

	d1 := graphDigest(mustDecode(t, ringEdges))
	d2 := graphDigest(mustDecode(t, scrambled))
	d3 := graphDigest(mustDecode(t, metis))
	if d1 != d2 || d1 != d3 {
		t.Fatalf("same graph, different digests: %s %s %s", d1, d2, d3)
	}

	// Any content change must move the digest.
	weighted := GraphSpec{N: 4, Edges: [][]float64{{0, 1, 2}, {1, 2}, {2, 3}, {3, 0}}}
	if graphDigest(mustDecode(t, weighted)) == d1 {
		t.Fatal("edge weight ignored by digest")
	}
	vertexW := ringEdges
	vertexW.VertexWeights = []float64{2, 1, 1, 1}
	if graphDigest(mustDecode(t, vertexW)) == d1 {
		t.Fatal("vertex weight ignored by digest")
	}
	bigger := GraphSpec{N: 5, Edges: [][]float64{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}
	if graphDigest(mustDecode(t, bigger)) == d1 {
		t.Fatal("vertex count ignored by digest")
	}
}

func TestCacheKeySeparatesOptions(t *testing.T) {
	g := mustDecode(t, GraphSpec{N: 4, Edges: [][]float64{{0, 1}, {1, 2}, {2, 3}, {3, 0}}})
	d := graphDigest(g)
	base := ff.Options{K: 2, Method: "fusion-fission", Objective: "mcut", Seed: 1, Budget: time.Second}
	keys := map[string]bool{cacheKey(d, base): true}
	for _, v := range []ff.Options{
		{K: 3, Method: "fusion-fission", Objective: "mcut", Seed: 1, Budget: time.Second},
		{K: 2, Method: "annealing", Objective: "mcut", Seed: 1, Budget: time.Second},
		{K: 2, Method: "fusion-fission", Objective: "cut", Seed: 1, Budget: time.Second},
		{K: 2, Method: "fusion-fission", Objective: "mcut", Seed: 2, Budget: time.Second},
		{K: 2, Method: "fusion-fission", Objective: "mcut", Seed: 1, Budget: 2 * time.Second},
		{K: 2, Method: "fusion-fission", Objective: "mcut", Seed: 1, Budget: time.Second, MaxSteps: 5},
		{K: 2, Method: "fusion-fission", Objective: "mcut", Seed: 1, Budget: time.Second, MaxSteps: 5, Parallelism: 4},
		{K: 2, Method: "fusion-fission", Objective: "mcut", Seed: 1, Budget: time.Second, Multilevel: true},
		{K: 2, Method: "fusion-fission", Objective: "mcut", Seed: 1, Budget: time.Second, Multilevel: true, CoarsenTo: 64},
		{K: 2, Method: "fusion-fission", Objective: "mcut", Seed: 1, Budget: time.Second, Relayout: true},
	} {
		k := cacheKey(d, v)
		if keys[k] {
			t.Fatalf("option change did not change key: %+v", v)
		}
		keys[k] = true
	}
	// Relayout is part of the federation identity too: islands exchanging
	// candidates must agree on the vertex numbering those candidates use.
	if exchangeKey(d, base) == exchangeKey(d, ff.Options{K: 2, Method: "fusion-fission", Objective: "mcut", Seed: 1, Budget: time.Second, Relayout: true}) {
		t.Fatal("relayout ignored by exchangeKey")
	}
}

func TestRequestOptionsNormalizeAndClamp(t *testing.T) {
	r := PartitionRequest{K: 2}
	opt, err := r.options(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Method != "fusion-fission" || opt.Objective != "mcut" || opt.Budget != 2*time.Second {
		t.Fatalf("defaults not applied: %+v", opt)
	}

	r = PartitionRequest{K: 2, Budget: "10s"}
	opt, err = r.options(3*time.Second, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Budget != 3*time.Second {
		t.Fatalf("budget not clamped: %v", opt.Budget)
	}

	if _, err := (&PartitionRequest{K: 0}).options(0, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := (&PartitionRequest{K: 2, Budget: "0s"}).options(0, 0); err == nil {
		t.Fatal("zero budget accepted")
	}
	if _, err := (&PartitionRequest{K: 2, Parallelism: -1}).options(0, 0); err == nil {
		t.Fatal("negative parallelism accepted")
	}

	r = PartitionRequest{K: 2, Parallelism: 64}
	opt, err = r.options(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Parallelism != 4 {
		t.Fatalf("parallelism not clamped: %d", opt.Parallelism)
	}

	// V-cycle fields pass through on supporting methods and normalize away
	// on the rest, so equivalent requests share one cache key.
	r = PartitionRequest{K: 2, Multilevel: true, CoarsenTo: 64}
	opt, err = r.options(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !opt.Multilevel || opt.CoarsenTo != 64 {
		t.Fatalf("multilevel fields dropped: %+v", opt)
	}
	r = PartitionRequest{K: 2, Method: "multilevel-bi", Multilevel: true, CoarsenTo: 64}
	opt, err = r.options(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Multilevel || opt.CoarsenTo != 0 {
		t.Fatalf("multilevel fields kept on a classical method: %+v", opt)
	}
	if _, err := (&PartitionRequest{K: 2, CoarsenTo: -5}).options(0, 0); err == nil {
		t.Fatal("negative coarsen_to accepted")
	}
}

func TestLRUEvictionAndStats(t *testing.T) {
	c := newResultCache(2)
	r := func(m string) *ff.Result { return &ff.Result{Method: m} }
	c.add("a", r("a"))
	c.add("b", r("b"))
	if _, ok := c.get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.add("c", r("c")) // evicts b
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived")
	}
	if _, ok := c.get("c"); !ok {
		t.Fatal("c missing")
	}
	st := c.stats()
	if st.Size != 2 || st.Capacity != 2 || st.Hits != 3 || st.Misses != 1 {
		t.Fatalf("stats: %+v", st)
	}
	// Updating an existing key must not grow the cache.
	c.add("c", r("c2"))
	if got, _ := c.get("c"); got.Method != "c2" || c.len() != 2 {
		t.Fatalf("update in place failed: %+v len %d", got, c.len())
	}
}

func TestLRUDisabled(t *testing.T) {
	c := newResultCache(0)
	c.add("a", &ff.Result{})
	if _, ok := c.get("a"); ok || c.len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

func TestDecodeGraphErrors(t *testing.T) {
	for name, spec := range map[string]GraphSpec{
		"empty":        {},
		"both":         {METIS: "1 0\n\n", N: 1},
		"zero n":       {Edges: [][]float64{{0, 1}}},
		"bad metis":    {METIS: "not a graph"},
		"weight len":   {N: 2, Edges: [][]float64{{0, 1}}, VertexWeights: []float64{1, 2, 3}},
		"negative vw":  {N: 2, Edges: [][]float64{{0, 1}}, VertexWeights: []float64{-1, 1}},
		"fractional":   {N: 2, Edges: [][]float64{{0.5, 1}}},
		"arity":        {N: 2, Edges: [][]float64{{0, 1, 1, 1}}},
		"self loop":    {N: 2, Edges: [][]float64{{1, 1}}},
		"out of range": {N: 2, Edges: [][]float64{{0, 2}}},
		"negative idx": {N: 2, Edges: [][]float64{{-1, 1}}},
	} {
		t.Run(name, func(t *testing.T) {
			if _, err := decodeGraph(spec); err == nil {
				t.Fatalf("spec %+v accepted", spec)
			} else if !strings.Contains(err.Error(), "graph") {
				t.Fatalf("unhelpful error: %v", err)
			}
		})
	}
}
