package server

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/wire"
)

// islandExchangePath is the gossip endpoint federated ffserve instances
// trade incumbents over.
const islandExchangePath = "/v1/islands/exchange"

// maxExchangeBody bounds a peer's candidate message (64 MiB ≈ a 16M-vertex
// assignment — far beyond anything this service partitions inline).
const maxExchangeBody = 64 << 20

// islandHub is one ffserve instance's side of the fleet gossip: it holds,
// per fanned-out job, the candidates this island has deposited round by
// round, and answers peers' long-polls for them. The protocol is symmetric
// push-pull: an island POSTs its own round-R candidate to every peer and
// the response carries that peer's round-R candidate; each side then
// reduces the identical candidate set with the identical comparison
// (engine.ReduceWinner), so all islands leave round R holding the same
// winner without any coordinator.
type islandHub struct {
	island int
	peers  []string
	wait   time.Duration // long-poll cap for a missing deposit
	client *http.Client

	mu   sync.Mutex
	jobs map[string]*islandJob
	gcAt time.Time
}

// islandJob is the hub's state for one exchange key: the rounds this island
// has deposited, and whether the local job has finished (after which every
// future round is answered immediately with the final candidate, so peers
// whose runs drift a round past ours never hang).
type islandJob struct {
	mu   sync.Mutex
	cond *sync.Cond

	// hash pins the graph the job partitions; zero until a local job opens
	// the key (a peer's early poll creates a placeholder without it).
	hash    [wire.HashLen]byte
	hasHash bool

	deposits map[uint64]*wire.Message
	last     *wire.Message // most recent deposit; the final answer once done
	done     bool

	createdAt  time.Time
	finishedAt time.Time
}

func newIslandHub(island int, peers []string, wait time.Duration) *islandHub {
	if wait <= 0 {
		wait = 30 * time.Second
	}
	return &islandHub{
		island: island,
		peers:  peers,
		wait:   wait,
		client: &http.Client{}, // per-request contexts bound the long-polls
		jobs:   make(map[string]*islandJob),
	}
}

// jobFor returns the hub entry for key, creating a placeholder if needed.
func (h *islandHub) jobFor(key string) *islandJob {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.gcLocked()
	j, ok := h.jobs[key]
	if !ok {
		j = &islandJob{deposits: make(map[uint64]*wire.Message), createdAt: time.Now()}
		j.cond = sync.NewCond(&j.mu)
		h.jobs[key] = j
	}
	return j
}

// gcLocked drops entries finished (or abandoned as placeholders) long ago.
// Finished entries linger for a grace window so a peer that is a round
// behind can still collect the final candidate. Caller holds h.mu.
func (h *islandHub) gcLocked() {
	const grace = 2 * time.Minute
	now := time.Now()
	if now.Sub(h.gcAt) < grace/4 {
		return
	}
	h.gcAt = now
	for key, j := range h.jobs {
		j.mu.Lock()
		expired := (j.done && now.Sub(j.finishedAt) > grace) ||
			(!j.done && !j.hasHash && now.Sub(j.createdAt) > grace) // peer poked a job we never received
		j.mu.Unlock()
		if expired {
			delete(h.jobs, key)
		}
	}
}

// federation carries a federated submission's island-fleet binding from
// the HTTP handler into the pool.
type federation struct {
	hub  *islandHub
	key  string
	hash [wire.HashLen]byte
}

// open binds a local job to its exchange key and returns the relay its
// portfolio exchanges through. ctx is the job's context: it bounds every
// peer call, so cancelling the job unblocks in-flight gossip.
func (h *islandHub) open(ctx context.Context, key string, hash [wire.HashLen]byte, k int) *islandRelay {
	j := h.jobFor(key)
	j.mu.Lock()
	j.hash = hash
	j.hasHash = true
	// A resubmitted key (e.g. a NoCache repeat of a finished fan-out)
	// starts a fresh round ledger.
	if j.done {
		j.done = false
		j.deposits = make(map[uint64]*wire.Message)
		j.last = nil
	}
	j.mu.Unlock()
	return &islandRelay{hub: h, job: j, key: key, hash: hash, k: k, ctx: ctx}
}

// finish marks the job done: peers polling any future round immediately
// receive the final deposited candidate.
func (h *islandHub) finish(key string) {
	h.mu.Lock()
	j, ok := h.jobs[key]
	h.mu.Unlock()
	if !ok {
		return
	}
	j.mu.Lock()
	j.done = true
	j.finishedAt = time.Now()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// deposit publishes this island's round-r candidate and wakes peer polls.
func (j *islandJob) deposit(r uint64, msg *wire.Message) {
	j.mu.Lock()
	j.deposits[r] = msg
	j.last = msg
	j.cond.Broadcast()
	j.mu.Unlock()
}

// await long-polls for this island's round-r candidate: it returns the
// deposit once it lands, the final candidate once the job is done, or nil
// when ctx expires first.
func (j *islandJob) await(r uint64, ctx context.Context) *wire.Message {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if m, ok := j.deposits[r]; ok {
			return m
		}
		if j.done {
			return j.last // may be nil: job finished without any deposit
		}
		if ctx.Err() != nil {
			return nil
		}
		// cond has no context-aware wait; a watcher goroutine per await
		// would be heavier than waking all waiters on a coarse tick.
		waitCond(j.cond, &j.mu, ctx)
	}
}

// waitCond waits on cond, waking when ctx fires. The spawned watcher exists
// only while the wait is blocked. Caller holds mu.
func waitCond(cond *sync.Cond, mu *sync.Mutex, ctx context.Context) {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			mu.Lock()
			cond.Broadcast()
			mu.Unlock()
		case <-done:
		}
	}()
	cond.Wait()
	close(done)
}

// islandRelay implements engine.Relay for one job: deposit the local round
// winner, push-pull it against every peer, and reduce the global winner.
type islandRelay struct {
	hub  *islandHub
	job  *islandJob
	key  string
	hash [wire.HashLen]byte
	k    int
	ctx  context.Context

	warned sync.Map // peer URL -> struct{}: log each unreachable peer once
}

// Exchange implements engine.Relay. Peer failures (down, slow, cross-graph)
// skip that peer's candidate and the round degrades toward the local
// winner; the run never blocks on a dead island beyond the long-poll cap.
func (r *islandRelay) Exchange(round uint64, local engine.Candidate) (engine.Candidate, bool, error) {
	msg := &wire.Message{
		K:         int32(r.k),
		Island:    int32(r.hub.island),
		Worker:    int32(local.Worker),
		Round:     round,
		Objective: local.Energy,
		GraphHash: r.hash,
		Key:       r.key,
		Has:       local.Has,
	}
	if local.Has {
		msg.Assign = local.Assign
	}
	r.job.deposit(round, msg)

	cands := make([]engine.Candidate, 1, 1+len(r.hub.peers))
	cands[0] = local
	var mu sync.Mutex
	var wg sync.WaitGroup
	body := msg.Encode()
	for _, peer := range r.hub.peers {
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			c, err := r.askPeer(peer, body)
			if err != nil {
				// A cancelled job tears down its in-flight gossip; that is
				// not a peer failure worth a log line.
				if !errors.Is(err, context.Canceled) {
					if _, dup := r.warned.LoadOrStore(peer, struct{}{}); !dup {
						log.Printf("island %d: exchange with %s failed: %v", r.hub.island, peer, err)
					}
				}
				return
			}
			if c.Has {
				mu.Lock()
				cands = append(cands, c)
				mu.Unlock()
			}
		}(peer)
	}
	wg.Wait()
	win, ok := engine.ReduceWinner(cands)
	return win, ok, nil
}

// askPeer POSTs this island's candidate to one peer and decodes the peer's
// candidate for the same round from the response.
func (r *islandRelay) askPeer(peer string, body []byte) (engine.Candidate, error) {
	ctx, cancel := context.WithTimeout(r.ctx, r.hub.wait)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+islandExchangePath, bytes.NewReader(body))
	if err != nil {
		return engine.Candidate{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := r.hub.client.Do(req)
	if err != nil {
		return engine.Candidate{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNoContent {
		return engine.Candidate{}, nil // peer had no candidate in time
	}
	if resp.StatusCode != http.StatusOK {
		return engine.Candidate{}, fmt.Errorf("peer answered %s", resp.Status)
	}
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxExchangeBody+1))
	if err != nil {
		return engine.Candidate{}, err
	}
	if len(data) > maxExchangeBody {
		return engine.Candidate{}, fmt.Errorf("peer response exceeds %d bytes", maxExchangeBody)
	}
	m, err := wire.Decode(data)
	if err != nil {
		return engine.Candidate{}, err
	}
	if m.GraphHash != r.hash {
		return engine.Candidate{}, fmt.Errorf("peer candidate is for a different graph (content hash mismatch)")
	}
	if !m.Has {
		return engine.Candidate{}, nil
	}
	if int(m.K) != r.k {
		return engine.Candidate{}, fmt.Errorf("peer candidate has k=%d, want %d", m.K, r.k)
	}
	return engine.Candidate{
		Assign: m.Assign,
		Energy: m.Objective,
		Island: int(m.Island),
		Worker: int(m.Worker),
		Has:    true,
	}, nil
}

// handleIslandExchange serves POST /v1/islands/exchange: a peer pushes its
// round-R candidate and long-polls for ours. 204 means "no candidate in
// time" (the peer degrades its round to the remaining candidates), 409
// refuses a candidate for a different graph than our job's.
func (s *Server) handleIslandExchange(w http.ResponseWriter, req *http.Request) {
	if s.hub == nil {
		writeError(w, http.StatusNotFound, "this server is not part of an island fleet (start with -island-id and -peers)")
		return
	}
	if req.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	data, err := io.ReadAll(io.LimitReader(req.Body, maxExchangeBody+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(data) > maxExchangeBody {
		writeError(w, http.StatusRequestEntityTooLarge, "candidate exceeds %d bytes", maxExchangeBody)
		return
	}
	m, err := wire.Decode(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := s.hub.jobFor(m.Key)
	j.mu.Lock()
	refuse := j.hasHash && j.hash != m.GraphHash
	j.mu.Unlock()
	if refuse {
		writeError(w, http.StatusConflict, "candidate is for a different graph than job %q", m.Key)
		return
	}
	ctx, cancel := context.WithTimeout(req.Context(), s.hub.wait)
	defer cancel()
	own := j.await(m.Round, ctx)
	if own == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(own.Encode())
}
