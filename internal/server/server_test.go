package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	ff "repro"
)

// newTestServer spins up the service behind httptest and tears it down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// twoSquares is the facade test graph: two 4-cycles joined by one edge. The
// natural 2-partition is one square per part.
func twoSquares() GraphSpec {
	return GraphSpec{N: 8, Edges: [][]float64{
		{0, 1}, {1, 2}, {2, 3}, {3, 0},
		{4, 5}, {5, 6}, {6, 7}, {7, 4},
		{0, 4},
	}}
}

// ring returns an n-cycle as an edge list.
func ring(n int) GraphSpec {
	edges := make([][]float64, n)
	for i := 0; i < n; i++ {
		edges[i] = []float64{float64(i), float64((i + 1) % n)}
	}
	return GraphSpec{N: n, Edges: edges}
}

func post(t *testing.T, ts *httptest.Server, body any) (int, partitionResponse) {
	t.Helper()
	var buf bytes.Buffer
	switch b := body.(type) {
	case string:
		buf.WriteString(b)
	default:
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/partition", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr partitionResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, pr
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

// baseRequest is a deterministic fusion-fission request: a fixed seed plus
// a step cap (with a generous budget) makes reruns bit-identical.
func baseRequest() PartitionRequest {
	return PartitionRequest{
		Graph:    twoSquares(),
		K:        2,
		Method:   "fusion-fission",
		Seed:     7,
		Budget:   "5s",
		MaxSteps: 2000,
	}
}

func TestPartitionEndToEndAndCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, pr := post(t, ts, baseRequest())
	if code != http.StatusOK {
		t.Fatalf("first POST: code %d, resp %+v", code, pr)
	}
	if pr.Status != statusDone || pr.Cached || pr.Result == nil {
		t.Fatalf("first POST: %+v", pr)
	}
	if len(pr.Result.Parts) != 8 || pr.Result.NumParts != 2 {
		t.Fatalf("bad partition: %+v", pr.Result)
	}
	if pr.Result.Mcut <= 0 {
		t.Fatalf("Mcut = %g", pr.Result.Mcut)
	}

	code, pr2 := post(t, ts, baseRequest())
	if code != http.StatusOK || !pr2.Cached {
		t.Fatalf("second POST not a cache hit: code %d, %+v", code, pr2)
	}
	if !reflect.DeepEqual(pr.Result.Parts, pr2.Result.Parts) {
		t.Fatalf("cache returned different parts: %v vs %v", pr.Result.Parts, pr2.Result.Parts)
	}
}

func TestMETISAndEdgeListShareCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// The same 4-ring, once as METIS text, once as an edge list (in a
	// scrambled order): content hashing must land both on one cache entry.
	metis := PartitionRequest{
		Graph:  GraphSpec{METIS: "4 4\n2 4\n1 3\n2 4\n3 1\n"},
		K:      2,
		Method: "multilevel-bi",
	}
	edges := PartitionRequest{
		Graph:  GraphSpec{N: 4, Edges: [][]float64{{2, 3}, {0, 1}, {3, 0}, {1, 2}}},
		K:      2,
		Method: "multilevel-bi",
	}
	if code, pr := post(t, ts, metis); code != http.StatusOK || pr.Cached {
		t.Fatalf("metis request: code %d, %+v", code, pr)
	}
	code, pr := post(t, ts, edges)
	if code != http.StatusOK || !pr.Cached {
		t.Fatalf("edge-list request should hit the metis entry: code %d, cached %v", code, pr.Cached)
	}
}

func TestCacheDeterminismWithNoCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req := baseRequest()
	_, first := post(t, ts, req)

	// Force two fresh computations; a fixed seed plus a step cap must
	// reproduce the identical partition every time.
	req.NoCache = true
	for i := 0; i < 2; i++ {
		code, pr := post(t, ts, req)
		if code != http.StatusOK || pr.Cached {
			t.Fatalf("no_cache run %d: code %d, cached %v", i, code, pr.Cached)
		}
		if !reflect.DeepEqual(first.Result.Parts, pr.Result.Parts) {
			t.Fatalf("run %d diverged: %v vs %v", i, first.Result.Parts, pr.Result.Parts)
		}
	}
}

func TestConcurrentClients(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 256})

	// 24 clients fire 4 distinct deterministic requests; every response
	// for a given seed must carry the identical partition, whether it was
	// computed, coalesced or cached.
	const clients = 24
	var (
		mu      sync.Mutex
		bySeeds = map[int64][]int32{}
		wg      sync.WaitGroup
	)
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			req := baseRequest()
			req.Seed = int64(c % 4)
			code, pr := post(t, ts, req)
			if code != http.StatusOK || pr.Result == nil {
				errs <- fmt.Errorf("client %d: code %d, resp %+v", c, code, pr)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if prev, ok := bySeeds[req.Seed]; ok {
				if !reflect.DeepEqual(prev, pr.Result.Parts) {
					errs <- fmt.Errorf("seed %d: divergent partitions under concurrency", req.Seed)
				}
			} else {
				bySeeds[req.Seed] = pr.Result.Parts
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	stats := s.pool.snapshot()
	if stats.Submitted < 4 {
		t.Fatalf("expected at least 4 real submissions, got %d", stats.Submitted)
	}
	cs := s.cache.stats()
	if got := stats.Coalesced + cs.Hits; got != clients-stats.Submitted {
		t.Errorf("accounting off: %d submitted, %d coalesced, %d cache hits for %d clients",
			stats.Submitted, stats.Coalesced, cs.Hits, clients)
	}
}

// slowJob returns an async no-cache request that pins a worker for roughly
// budget (the step cap is absent, so the budget binds).
func slowJob(budget string) PartitionRequest {
	f := false
	return PartitionRequest{
		Graph:   ring(64),
		K:       4,
		Method:  "fusion-fission",
		Budget:  budget,
		Wait:    &f,
		NoCache: true,
	}
}

func TestDeadlineExpiresQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	// Pin the only worker, then submit a synchronous request whose job
	// deadline elapses while it is still queued. The waiter gets its 504
	// at the timeout, without blocking until the worker frees up…
	if code, pr := post(t, ts, slowJob("600ms")); code != http.StatusAccepted {
		t.Fatalf("slow job: code %d, %+v", code, pr)
	}
	req := baseRequest()
	req.NoCache = true
	req.Timeout = "50ms"
	start := time.Now()
	code, pr := post(t, ts, req)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expected 504, got %d: %+v", code, pr)
	}
	if waited := time.Since(start); waited > 400*time.Millisecond {
		t.Fatalf("waiter blocked %v past its 50ms timeout", waited)
	}

	// …and once the worker reaches the expired job, it is recorded as
	// failed with the deadline error.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var got partitionResponse
		if code := getJSON(t, ts.URL+"/v1/jobs/"+pr.JobID, &got); code != http.StatusOK {
			t.Fatalf("poll: code %d", code)
		}
		if got.Status == statusFailed {
			if !strings.Contains(got.Error, "deadline") {
				t.Fatalf("failed without deadline error: %+v", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("expired job never failed: %+v", got)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestCancellation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	code, running := post(t, ts, slowJob("800ms"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}
	code, queued := post(t, ts, slowJob("800ms"))
	if code != http.StatusAccepted {
		t.Fatalf("submit: code %d", code)
	}

	// Cancel the queued job, then the running one.
	for _, id := range []string{queued.JobID, running.JobID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var pr partitionResponse
		json.NewDecoder(resp.Body).Decode(&pr)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || pr.Status != statusCancelled {
			t.Fatalf("cancel %s: code %d, %+v", id, resp.StatusCode, pr)
		}
		var got partitionResponse
		if code := getJSON(t, ts.URL+"/v1/jobs/"+id, &got); code != http.StatusOK || got.Status != statusCancelled {
			t.Fatalf("poll after cancel: code %d, %+v", code, got)
		}
	}

	// Cancellation is idempotent: a second DELETE still reports cancelled.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.JobID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("double cancel: code %d", resp.StatusCode)
	}
	var e errorResponse
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", &e); code != http.StatusNotFound {
		t.Fatalf("unknown job: code %d", code)
	}

	// Cancelling a job that already completed conflicts.
	done := baseRequest()
	done.NoCache = true
	code, pr := post(t, ts, done)
	if code != http.StatusOK {
		t.Fatalf("completed job: code %d", code)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+pr.JobID, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("cancel after done: code %d", resp.StatusCode)
	}
}

func TestCoalescedWaiterKeepsOwnTimeout(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 8})

	// A long cacheable job, submitted asynchronously…
	slow := PartitionRequest{Graph: ring(64), K: 4, Budget: "700ms"}
	f := false
	slow.Wait = &f
	if code, _ := post(t, ts, slow); code != http.StatusAccepted {
		t.Fatal("submit failed")
	}
	// …then an identical synchronous request with a much shorter timeout.
	// It coalesces onto the running job but must still give up at its own
	// deadline, pointing at the poll URL.
	slow.Wait = nil
	slow.Timeout = "60ms"
	start := time.Now()
	code, pr := post(t, ts, slow)
	if code != http.StatusGatewayTimeout || pr.Poll == "" {
		t.Fatalf("coalesced waiter: code %d, %+v", code, pr)
	}
	if waited := time.Since(start); waited > 500*time.Millisecond {
		t.Fatalf("waiter held for %v despite 60ms timeout", waited)
	}
}

func TestQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// First job occupies the worker, second fills the one queue slot, the
	// third must bounce with 503.
	if code, _ := post(t, ts, slowJob("700ms")); code != http.StatusAccepted {
		t.Fatalf("job 1: code %d", code)
	}
	if code, _ := post(t, ts, slowJob("700ms")); code != http.StatusAccepted {
		t.Fatalf("job 2: code %d", code)
	}
	code, pr := post(t, ts, slowJob("700ms"))
	if code != http.StatusServiceUnavailable {
		t.Fatalf("job 3: expected 503, got %d: %+v", code, pr)
	}
}

func TestAsyncJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req := baseRequest()
	f := false
	req.Wait = &f
	code, pr := post(t, ts, req)
	if code != http.StatusAccepted || pr.JobID == "" || pr.Poll == "" {
		t.Fatalf("async submit: code %d, %+v", code, pr)
	}

	deadline := time.Now().Add(10 * time.Second)
	var got partitionResponse
	for {
		if code := getJSON(t, ts.URL+pr.Poll, &got); code != http.StatusOK {
			t.Fatalf("poll: code %d", code)
		}
		if got.Status == statusDone {
			break
		}
		if got.Status == statusFailed || got.Status == statusCancelled {
			t.Fatalf("job ended %s: %s", got.Status, got.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", got.Status)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got.Result == nil || got.Result.NumParts != 2 {
		t.Fatalf("async result: %+v", got.Result)
	}

	// The finished async job populated the cache for synchronous callers.
	req.Wait = nil
	if code, pr := post(t, ts, req); code != http.StatusOK || !pr.Cached {
		t.Fatalf("expected cache hit after async job: code %d, cached %v", code, pr.Cached)
	}
}

func TestMalformedPayloads(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	square := GraphSpec{N: 4, Edges: [][]float64{{0, 1}, {1, 2}, {2, 3}, {3, 0}}}
	cases := []struct {
		name string
		body any
		want int
	}{
		{"invalid json", `{"graph": {`, http.StatusBadRequest},
		{"empty body", ``, http.StatusBadRequest},
		{"missing graph", PartitionRequest{K: 2}, http.StatusBadRequest},
		{"both encodings", PartitionRequest{K: 2, Graph: GraphSpec{METIS: "1 0\n\n", N: 1}}, http.StatusBadRequest},
		{"zero k", PartitionRequest{Graph: square, K: 0}, http.StatusBadRequest},
		{"k exceeds n", PartitionRequest{Graph: square, K: 9}, http.StatusBadRequest},
		{"unknown method", PartitionRequest{Graph: square, K: 2, Method: "magic"}, http.StatusBadRequest},
		{"bad objective", PartitionRequest{Graph: square, K: 2, Objective: "mincut"}, http.StatusBadRequest},
		{"bad budget", PartitionRequest{Graph: square, K: 2, Budget: "fast"}, http.StatusBadRequest},
		{"negative budget", PartitionRequest{Graph: square, K: 2, Budget: "-2s"}, http.StatusBadRequest},
		{"bad timeout", PartitionRequest{Graph: square, K: 2, Timeout: "later"}, http.StatusBadRequest},
		{"edge arity", PartitionRequest{K: 2, Graph: GraphSpec{N: 3, Edges: [][]float64{{0}}}}, http.StatusBadRequest},
		{"fractional endpoint", PartitionRequest{K: 2, Graph: GraphSpec{N: 3, Edges: [][]float64{{0, 1.5}}}}, http.StatusBadRequest},
		{"self loop", PartitionRequest{K: 2, Graph: GraphSpec{N: 3, Edges: [][]float64{{1, 1}}}}, http.StatusBadRequest},
		{"out of range", PartitionRequest{K: 2, Graph: GraphSpec{N: 3, Edges: [][]float64{{0, 5}}}}, http.StatusBadRequest},
		{"zero weight", PartitionRequest{K: 2, Graph: GraphSpec{N: 3, Edges: [][]float64{{0, 1, 0}}}}, http.StatusBadRequest},
		{"bad metis header", PartitionRequest{K: 2, Graph: GraphSpec{METIS: "x y\n"}}, http.StatusBadRequest},
		{"asymmetric metis", PartitionRequest{K: 2, Graph: GraphSpec{METIS: "2 1\n2\n\n"}}, http.StatusBadRequest},
		{"vertex weight mismatch", PartitionRequest{K: 2, Graph: GraphSpec{N: 3, Edges: [][]float64{{0, 1}}, VertexWeights: []float64{1}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, pr := post(t, ts, tc.body)
			if code != tc.want {
				t.Fatalf("code %d, want %d (%+v)", code, tc.want, pr)
			}
			if pr.Error == "" {
				t.Fatal("error body missing")
			}
		})
	}

	// Wrong verbs.
	if resp, err := http.Get(ts.URL + "/v1/partition"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/partition: %d", resp.StatusCode)
		}
	}
	if resp, err := http.Post(ts.URL+"/healthz", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /healthz: %d", resp.StatusCode)
		}
	}
}

func TestMethodsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var got struct {
		Methods    []ff.MethodInfo `json:"methods"`
		Objectives []string        `json:"objectives"`
	}
	if code := getJSON(t, ts.URL+"/v1/methods", &got); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if len(got.Objectives) != 3 {
		t.Fatalf("objectives: %v", got.Objectives)
	}
	table1, ext := 0, 0
	byID := map[string]ff.MethodInfo{}
	for _, m := range got.Methods {
		byID[m.ID] = m
		if m.Extension {
			ext++
		} else {
			table1++
		}
	}
	if table1 != 17 || ext != 5 {
		t.Fatalf("got %d table-1 and %d extension methods", table1, ext)
	}
	if m := byID["fusion-fission"]; !m.Metaheuristic || m.Label != "Fusion Fission" {
		t.Fatalf("fusion-fission metadata wrong: %+v", m)
	}
	if m := byID["multilevel-bi"]; m.Metaheuristic {
		t.Fatalf("multilevel-bi marked metaheuristic")
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 3})
	var got struct {
		Status string     `json:"status"`
		Pool   poolStats  `json:"pool"`
		Cache  cacheStats `json:"cache"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &got); code != http.StatusOK {
		t.Fatalf("code %d", code)
	}
	if got.Status != "ok" || got.Pool.Workers != 3 || got.Cache.Capacity != 256 {
		t.Fatalf("healthz: %+v", got)
	}
}

// TestMultilevelRequest exercises the V-cycle through the HTTP API: the
// multilevel result carries hierarchy stats, lands on its own cache entry
// (distinct from the flat request), and /v1/methods advertises which
// methods honour the flag.
func TestMultilevelRequest(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	req := PartitionRequest{
		Graph:    ring(240),
		K:        4,
		Method:   "fusion-fission",
		Seed:     3,
		Budget:   "5s",
		MaxSteps: 400,
	}
	code, flat := post(t, ts, req)
	if code != http.StatusOK || flat.Result == nil {
		t.Fatalf("flat POST: code %d, %+v", code, flat)
	}
	if flat.Result.Hierarchy != nil {
		t.Fatalf("flat run reported a hierarchy: %+v", flat.Result.Hierarchy)
	}

	req.Multilevel = true
	req.CoarsenTo = 30
	code, ml := post(t, ts, req)
	if code != http.StatusOK || ml.Result == nil {
		t.Fatalf("multilevel POST: code %d, %+v", code, ml)
	}
	if ml.Cached {
		t.Fatal("multilevel request hit the flat request's cache entry")
	}
	if ml.Result.NumParts != 4 || len(ml.Result.Parts) != 240 {
		t.Fatalf("bad multilevel partition: %+v", ml.Result)
	}
	h := ml.Result.Hierarchy
	if h == nil || h.Levels < 1 || h.CoarsestVertices >= 240 {
		t.Fatalf("hierarchy = %+v", h)
	}

	// Identical multilevel request: cache hit with identical parts.
	code, ml2 := post(t, ts, req)
	if code != http.StatusOK || !ml2.Cached {
		t.Fatalf("repeat multilevel POST not cached: code %d, %+v", code, ml2)
	}
	if !reflect.DeepEqual(ml.Result.Parts, ml2.Result.Parts) {
		t.Fatal("cache returned different parts")
	}

	// /v1/methods marks V-cycle support.
	var methods struct {
		Methods []ff.MethodInfo `json:"methods"`
	}
	if code := getJSON(t, ts.URL+"/v1/methods", &methods); code != http.StatusOK {
		t.Fatalf("GET /v1/methods: %d", code)
	}
	found := map[string]bool{}
	for _, m := range methods.Methods {
		if m.Multilevel {
			found[m.ID] = true
		}
	}
	want := []string{"fusion-fission", "annealing", "ant-colony", "genetic"}
	if len(found) != len(want) {
		t.Fatalf("multilevel methods = %v, want %v", found, want)
	}
	for _, id := range want {
		if !found[id] {
			t.Fatalf("%s not marked multilevel in %v", id, found)
		}
	}
}
