package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"reflect"
	"testing"
	"time"

	"repro/internal/wire"
)

// fleet is two federated servers listening on real loopback sockets.
type fleet struct {
	servers [2]*Server
	urls    [2]string
}

// newFleet starts two ffserve instances on 127.0.0.1, each configured with
// the other as its peer. Real listeners (not httptest) because each server
// must know its peer's URL at construction time: the listeners are opened
// first, the URLs read off them, and only then are the servers built.
func newFleet(t *testing.T, wait time.Duration) *fleet {
	t.Helper()
	var f fleet
	var lns [2]net.Listener
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		f.urls[i] = "http://" + ln.Addr().String()
	}
	for i := range f.servers {
		s, err := New(Config{
			Workers:        2,
			CacheSize:      -1,
			MaxParallelism: 2,
			IslandID:       i,
			Peers:          []string{f.urls[1-i]},
			ExchangeWait:   wait,
		})
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: s.Handler()}
		go func(ln net.Listener) { _ = hs.Serve(ln) }(lns[i])
		t.Cleanup(func() {
			_ = hs.Close()
			s.Close()
		})
		f.servers[i] = s
	}
	return &f
}

// federatedRequest is a deterministic two-island job: the genetic method
// exchanges every 4 steps, so a 120-step cap yields a fixed round count
// regardless of wall-clock speed.
func federatedRequest() PartitionRequest {
	return PartitionRequest{
		Graph:    twoSquares(),
		K:        2,
		Method:   "genetic",
		Seed:     7,
		Budget:   "20s",
		MaxSteps: 120,
		Federate: true,
	}
}

// postURL is post against an arbitrary base URL instead of an httptest server.
func postURL(t *testing.T, url string, body PartitionRequest) (int, partitionResponse) {
	t.Helper()
	buf := new(bytes.Buffer)
	if err := json.NewEncoder(buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/partition", "application/json", buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var pr partitionResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, pr
}

// TestIslandFleetLoopback fans one deterministic job out to a two-island
// loopback fleet and checks the federation contract: both islands finish,
// echo their ids and a matching exchange-round count, the client-side
// reduction picks the better island's incumbent, and the whole outcome is
// identical across repeated runs of fresh fleets.
func TestIslandFleetLoopback(t *testing.T) {
	type outcome struct {
		winnerIsland int
		winnerParts  []int32
		mcut         [2]float64
		rounds       int64
	}
	var first *outcome

	for rep := 0; rep < 3; rep++ {
		// A fresh fleet per repeat: reusing one fleet would reuse the
		// exchange key, and a round-0 deposit from the new run can pair
		// against the finished previous run on the peer (see islandHub.open).
		f := newFleet(t, 15*time.Second)

		var prs [2]partitionResponse
		done := make(chan int, 2)
		for i := 0; i < 2; i++ {
			go func(i int) {
				code, pr := postURL(t, f.urls[i], federatedRequest())
				if code != http.StatusOK {
					t.Errorf("island %d: code %d (%s)", i, code, pr.Error)
				}
				prs[i] = pr
				done <- i
			}(i)
		}
		<-done
		<-done
		if t.Failed() {
			t.FailNow()
		}

		var o outcome
		for i := 0; i < 2; i++ {
			res := prs[i].Result
			if res == nil {
				t.Fatalf("island %d: no result: %+v", i, prs[i])
			}
			if res.Island == nil || *res.Island != i {
				t.Fatalf("island %d: result reports island %v", i, res.Island)
			}
			if res.ExchangeRounds == 0 {
				t.Fatalf("island %d: no exchange rounds counted", i)
			}
			o.mcut[i] = res.Mcut
		}
		if a, b := prs[0].Result.ExchangeRounds, prs[1].Result.ExchangeRounds; a != b {
			t.Fatalf("exchange rounds diverge: island 0 ran %d, island 1 ran %d", a, b)
		}
		o.rounds = prs[0].Result.ExchangeRounds

		// Reduce exactly like the fleet does: objective first, island id as
		// the tie-break. The winner must be the better island's incumbent.
		o.winnerIsland = 0
		if o.mcut[1] < o.mcut[0] {
			o.winnerIsland = 1
		}
		o.winnerParts = prs[o.winnerIsland].Result.Parts

		if first == nil {
			first = &o
			continue
		}
		if o.winnerIsland != first.winnerIsland ||
			o.mcut != first.mcut ||
			o.rounds != first.rounds ||
			!reflect.DeepEqual(o.winnerParts, first.winnerParts) {
			t.Fatalf("repeat %d diverged from the first run:\n got %+v\nwant %+v", rep, o, *first)
		}
	}
}

// TestFederateWithoutPeersRejected: a server with no fleet configuration
// must refuse "federate": true rather than silently running standalone.
func TestFederateWithoutPeersRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	req := federatedRequest()
	code, pr := post(t, ts, req)
	if code != http.StatusBadRequest {
		t.Fatalf("code %d (%+v), want 400", code, pr)
	}
}

// TestIslandFleetPeerDown: a fleet member whose peer is unreachable still
// completes the federated job — every exchange round degrades to the local
// candidates instead of blocking on the dead island.
func TestIslandFleetPeerDown(t *testing.T) {
	// Reserve a port and close it again: connections to it fail fast.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadPeer := "http://" + ln.Addr().String()
	ln.Close()

	_, ts := newTestServer(t, Config{
		Workers: 1, CacheSize: -1, MaxParallelism: 2,
		IslandID: 1, Peers: []string{deadPeer}, ExchangeWait: 2 * time.Second,
	})
	code, pr := post(t, ts, federatedRequest())
	if code != http.StatusOK {
		t.Fatalf("code %d (%s)", code, pr.Error)
	}
	if pr.Result == nil || pr.Result.Island == nil || *pr.Result.Island != 1 {
		t.Fatalf("degraded run lost its island identity: %+v", pr.Result)
	}
	if pr.Result.ExchangeRounds == 0 {
		t.Fatal("degraded run skipped its exchange rounds entirely")
	}
}

// TestExchangeEndpointValidation exercises POST /v1/islands/exchange
// directly: non-fleet servers 404, garbage 400, cross-graph candidates 409,
// and a poll for a round nobody deposits times out with 204.
func TestExchangeEndpointValidation(t *testing.T) {
	postRaw := func(ts string, body []byte) *http.Response {
		t.Helper()
		resp, err := http.Post(ts+islandExchangePath, "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	t.Run("not a fleet member", func(t *testing.T) {
		_, ts := newTestServer(t, Config{Workers: 1})
		if resp := postRaw(ts.URL, sampleExchangeMessage().Encode()); resp.StatusCode != http.StatusNotFound {
			t.Fatalf("code %d, want 404", resp.StatusCode)
		}
	})

	s, ts := newTestServer(t, Config{
		Workers: 1, IslandID: 0, Peers: []string{"http://127.0.0.1:1"},
		ExchangeWait: 200 * time.Millisecond,
	})

	t.Run("garbage body", func(t *testing.T) {
		if resp := postRaw(ts.URL, []byte("not a wire message")); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("code %d, want 400", resp.StatusCode)
		}
	})

	t.Run("cross-graph candidate refused", func(t *testing.T) {
		var localHash [wire.HashLen]byte
		localHash[0] = 0xAB
		s.hub.open(context.Background(), "job-key", localHash, 2)
		msg := sampleExchangeMessage()
		msg.Key = "job-key"
		msg.GraphHash[0] = 0xCD // different graph
		if resp := postRaw(ts.URL, msg.Encode()); resp.StatusCode != http.StatusConflict {
			t.Fatalf("code %d, want 409", resp.StatusCode)
		}
	})

	t.Run("missing deposit times out with 204", func(t *testing.T) {
		msg := sampleExchangeMessage()
		msg.Key = "nobody-home"
		if resp := postRaw(ts.URL, msg.Encode()); resp.StatusCode != http.StatusNoContent {
			t.Fatalf("code %d, want 204", resp.StatusCode)
		}
	})
}

func sampleExchangeMessage() *wire.Message {
	return &wire.Message{
		K: 2, Island: 1, Worker: 0, Round: 0, Objective: 1.5,
		Key: "some-job", Has: true, Assign: []int32{0, 1},
	}
}
