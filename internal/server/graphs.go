package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"

	"repro/internal/graph"
)

// graphResponse describes one stored graph.
type graphResponse struct {
	// ID is the graph's content digest — the handle PartitionRequest's
	// graph.id and the mutate endpoint take.
	ID string `json:"id"`
	// Created is false when the upload deduplicated against a graph already
	// stored under the same digest.
	Created bool `json:"created,omitempty"`
	// Parent is the graph a mutation derived this one from.
	Parent string `json:"parent,omitempty"`
	N      int    `json:"n"`
	M      int    `json:"m"`
}

// mutateRequest is the body of POST /v1/graphs/{id}/mutate.
type mutateRequest struct {
	Edits []graph.EdgeEdit `json:"edits"`
}

// handleGraphs serves the collection endpoint:
//
//	PUT /v1/graphs  upload a graph; the body is either a JSON GraphSpec
//	                (inline metis text or edge list) or, with Content-Type
//	                application/octet-stream, the binary CSR encoding
//	                (graph.EncodeBinary). Replies with the content id;
//	                re-uploading an identical graph — in any encoding, any
//	                edge order — lands on the same id and stores one copy.
//	GET /v1/graphs  store occupancy statistics.
func (s *Server) handleGraphs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.store.Stats())
	case http.MethodPut, http.MethodPost:
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		g, err := decodeUpload(r)
		if err != nil {
			s.writeRequestError(w, err)
			return
		}
		id, created, err := s.store.Put(g)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		code := http.StatusOK
		if created {
			code = http.StatusCreated
		}
		writeJSON(w, code, graphResponse{ID: id, Created: created, N: g.NumVertices(), M: g.NumEdges()})
	default:
		writeError(w, http.StatusMethodNotAllowed, "use PUT to upload or GET for statistics")
	}
}

// decodeUpload materializes an uploaded graph from either encoding.
func decodeUpload(r *http.Request) (*graph.Graph, error) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), "application/octet-stream") {
		data, err := io.ReadAll(r.Body)
		if err != nil {
			return nil, badRequestf("reading body: %v", err)
		}
		g, err := graph.DecodeBinary(data)
		if err != nil {
			return nil, badRequestf("%v", err)
		}
		return g, nil
	}
	var spec GraphSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		return nil, badRequestf("bad request body: %v", err)
	}
	if spec.ID != "" {
		return nil, badRequestf("graph: uploads carry content, not an id")
	}
	return decodeGraph(spec)
}

// handleGraphByID serves the per-graph endpoints:
//
//	GET    /v1/graphs/{id}         metadata (404 when unknown or evicted)
//	DELETE /v1/graphs/{id}         drop the graph from memory and disk
//	POST   /v1/graphs/{id}/mutate  apply edge edits, store the result as a
//	                               new graph and return its id — the parent
//	                               stays addressable, so a warm-started
//	                               repartition of the child can still race
//	                               cold runs of the parent.
func (s *Server) handleGraphByID(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/graphs/")
	id, sub, hasSub := strings.Cut(rest, "/")
	if id == "" || (hasSub && sub != "mutate") {
		writeError(w, http.StatusNotFound, "bad graph path")
		return
	}
	if hasSub {
		s.handleGraphMutate(w, r, id)
		return
	}
	switch r.Method {
	case http.MethodGet:
		g, ok := s.store.Get(id)
		if !ok {
			writeError(w, http.StatusNotFound, "unknown graph id %q", id)
			return
		}
		writeJSON(w, http.StatusOK, graphResponse{ID: id, N: g.NumVertices(), M: g.NumEdges()})
	case http.MethodDelete:
		if !s.store.Delete(id) {
			writeError(w, http.StatusNotFound, "unknown graph id %q", id)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET, DELETE, or POST .../mutate")
	}
}

// handleGraphMutate derives a new stored graph from id by applying edge
// edits. The derived graph is content-addressed like any upload: mutating
// two stored graphs into the same content lands on the same id.
func (s *Server) handleGraphMutate(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	g, ok := s.store.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown graph id %q", id)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req mutateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Edits) == 0 {
		writeError(w, http.StatusBadRequest, "mutate: no edits given")
		return
	}
	derived, err := g.WithEdits(req.Edits)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	newID, created, err := s.store.Put(derived)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, graphResponse{
		ID: newID, Created: created, Parent: id,
		N: derived.NumVertices(), M: derived.NumEdges(),
	})
}
