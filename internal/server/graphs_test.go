package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"repro/internal/graph"
)

// putGraph uploads a body to PUT /v1/graphs and decodes the response.
func putGraph(t *testing.T, base string, contentType string, body []byte) (int, graphResponse) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPut, base+"/v1/graphs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var gr graphResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatalf("decoding upload response: %v", err)
	}
	return resp.StatusCode, gr
}

// putSpec uploads a GraphSpec as JSON.
func putSpec(t *testing.T, base string, spec GraphSpec) (int, graphResponse) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return putGraph(t, base, "application/json", body)
}

// mutateGraph POSTs edits to /v1/graphs/{id}/mutate.
func mutateGraph(t *testing.T, base, id string, edits []graph.EdgeEdit) (int, graphResponse) {
	t.Helper()
	body, err := json.Marshal(mutateRequest{Edits: edits})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/graphs/"+id+"/mutate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var gr graphResponse
	if err := json.NewDecoder(resp.Body).Decode(&gr); err != nil {
		t.Fatalf("decoding mutate response: %v", err)
	}
	return resp.StatusCode, gr
}

func doJSON(t *testing.T, method, url string) int {
	t.Helper()
	req, err := http.NewRequest(method, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

// TestGraphUploadDedupAndPartitionByID is the stored-graph happy path:
// upload (twice, in two encodings) dedups onto one content id, a partition
// by id matches the inline result, and — because the cache keys on the same
// digest either way — the stored-graph job is a cache hit after the inline
// one computed.
func TestGraphUploadDedupAndPartitionByID(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	code, up := putSpec(t, ts.URL, twoSquares())
	if code != http.StatusCreated || !up.Created || up.N != 8 || up.M != 9 {
		t.Fatalf("first upload: code %d, %+v", code, up)
	}
	if len(up.ID) != 64 {
		t.Fatalf("id %q is not a sha256 hex digest", up.ID)
	}

	code, again := putSpec(t, ts.URL, twoSquares())
	if code != http.StatusOK || again.Created || again.ID != up.ID {
		t.Fatalf("re-upload did not dedup: code %d, %+v", code, again)
	}

	// The same graph as binary CSR bytes lands on the same id.
	g, err := decodeGraph(twoSquares())
	if err != nil {
		t.Fatal(err)
	}
	code, bin := putGraph(t, ts.URL, "application/octet-stream", graph.EncodeBinary(g))
	if code != http.StatusOK || bin.Created || bin.ID != up.ID {
		t.Fatalf("binary upload did not dedup: code %d, %+v", code, bin)
	}

	// Inline run first, then by id: identical partitions, and the by-id job
	// hits the result cache because both key on the content digest.
	inline := baseRequest()
	code, pr := post(t, ts, inline)
	if code != http.StatusOK || pr.Result == nil {
		t.Fatalf("inline partition: code %d, %+v", code, pr)
	}
	byID := baseRequest()
	byID.Graph = GraphSpec{ID: up.ID}
	code, pr2 := post(t, ts, byID)
	if code != http.StatusOK || pr2.Result == nil {
		t.Fatalf("partition by id: code %d, %+v", code, pr2)
	}
	if !pr2.Cached {
		t.Fatal("stored-graph job missed the cache despite an identical inline run")
	}
	for v := range pr.Result.Parts {
		if pr.Result.Parts[v] != pr2.Result.Parts[v] {
			t.Fatalf("stored-graph partition diverges from inline at vertex %d", v)
		}
	}

	var meta graphResponse
	if code := getJSON(t, ts.URL+"/v1/graphs/"+up.ID, &meta); code != http.StatusOK || meta.N != 8 || meta.M != 9 {
		t.Fatalf("metadata: code %d, %+v", code, meta)
	}
	var stats map[string]any
	if code := getJSON(t, ts.URL+"/v1/graphs", &stats); code != http.StatusOK || stats["mem_entries"].(float64) < 1 {
		t.Fatalf("store stats: code %d, %v", code, stats)
	}
}

// TestGraphNotFoundAndValidation pins the 404 and 400 contract for every
// stored-graph surface.
func TestGraphNotFoundAndValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	const ghost = "00000000000000000000000000000000000000000000000000000000deadbeef"

	req := baseRequest()
	req.Graph = GraphSpec{ID: ghost}
	if code, pr := post(t, ts, req); code != http.StatusNotFound {
		t.Fatalf("partition by unknown id: code %d, %+v", code, pr)
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/"+ghost); code != http.StatusNotFound {
		t.Fatalf("GET unknown id: code %d", code)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/"+ghost); code != http.StatusNotFound {
		t.Fatalf("DELETE unknown id: code %d", code)
	}
	if code, _ := mutateGraph(t, ts.URL, ghost, []graph.EdgeEdit{{Op: "add", U: 0, V: 1}}); code != http.StatusNotFound {
		t.Fatalf("mutate unknown id: code %d", code)
	}

	// id + inline content in one spec is a client mistake, not a lookup.
	both := baseRequest()
	both.Graph.ID = ghost
	if code, _ := post(t, ts, both); code != http.StatusBadRequest {
		t.Fatalf("id + inline accepted: code %d", code)
	}
	// Uploads carry content, not an id.
	if code, _ := putSpec(t, ts.URL, GraphSpec{ID: ghost}); code != http.StatusBadRequest {
		t.Fatalf("upload of an id accepted: code %d", code)
	}
	if code, _ := putGraph(t, ts.URL, "application/octet-stream", []byte("junk")); code != http.StatusBadRequest {
		t.Fatalf("junk binary upload accepted: code %d", code)
	}
}

// TestGraphEvictionAnswers404 configures a memory-only store so small every
// upload evicts its predecessor: the evicted id must answer 404, the
// survivor must keep working.
func TestGraphEvictionAnswers404(t *testing.T) {
	_, ts := newTestServer(t, Config{StoreMaxBytes: 1})

	_, first := putSpec(t, ts.URL, twoSquares())
	_, second := putSpec(t, ts.URL, ring(16))

	req := baseRequest()
	req.Graph = GraphSpec{ID: first.ID}
	if code, pr := post(t, ts, req); code != http.StatusNotFound {
		t.Fatalf("evicted id: code %d, %+v", code, pr)
	}
	req.Graph = GraphSpec{ID: second.ID}
	req.K = 2
	if code, pr := post(t, ts, req); code != http.StatusOK || pr.Result == nil {
		t.Fatalf("surviving id: code %d, %+v", code, pr)
	}
}

// TestGraphDeleteThenGone: a deleted graph's id answers 404 everywhere.
func TestGraphDeleteThenGone(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, up := putSpec(t, ts.URL, twoSquares())
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/"+up.ID); code != http.StatusOK {
		t.Fatalf("delete: code %d", code)
	}
	req := baseRequest()
	req.Graph = GraphSpec{ID: up.ID}
	if code, _ := post(t, ts, req); code != http.StatusNotFound {
		t.Fatalf("partition after delete: code %d", code)
	}
}

// TestGraphStoreSurvivesRestart: with a spill directory, a second server
// over the same directory serves ids uploaded by the first.
func TestGraphStoreSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	id1, _, err := s1.store.Put(mustDecode(t, twoSquares()))
	if err != nil {
		t.Fatal(err)
	}
	s1.Close()

	_, ts := newTestServer(t, Config{StoreDir: dir})
	req := baseRequest()
	req.Graph = GraphSpec{ID: id1}
	if code, pr := post(t, ts, req); code != http.StatusOK || pr.Result == nil {
		t.Fatalf("partition by id after restart: code %d, %+v", code, pr)
	}
}

// TestGraphMutateAndWarmStart is the incremental-repartitioning loop the
// store exists for: upload, solve, mutate a few edges, warm-start the
// repartition of the derived graph from the previous assignment.
func TestGraphMutateAndWarmStart(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, up := putSpec(t, ts.URL, twoSquares())

	cold := baseRequest()
	cold.Graph = GraphSpec{ID: up.ID}
	code, pr := post(t, ts, cold)
	if code != http.StatusOK || pr.Result == nil {
		t.Fatalf("cold solve: code %d, %+v", code, pr)
	}

	code, mut := mutateGraph(t, ts.URL, up.ID, []graph.EdgeEdit{
		{Op: "add", U: 2, V: 6, W: 1.5},
		{Op: "reweight", U: 0, V: 4, W: 2},
	})
	if code != http.StatusOK || mut.Parent != up.ID || mut.ID == up.ID || mut.M != 10 {
		t.Fatalf("mutate: code %d, %+v", code, mut)
	}
	// The parent stays addressable after the derivation.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/"+up.ID); code != http.StatusOK {
		t.Fatalf("parent gone after mutate: code %d", code)
	}

	warm := baseRequest()
	warm.Graph = GraphSpec{ID: mut.ID}
	warm.WarmStart = pr.Result.Parts
	code, wr := post(t, ts, warm)
	if code != http.StatusOK || wr.Result == nil {
		t.Fatalf("warm solve: code %d, %+v", code, wr)
	}
	if !wr.Result.WarmStart {
		t.Fatal("result not marked warm-started")
	}

	// Wrong-length warm starts are rejected before any work happens.
	bad := warm
	bad.WarmStart = []int32{0, 1}
	if code, _ := post(t, ts, bad); code != http.StatusBadRequest {
		t.Fatalf("short warm start accepted: code %d", code)
	}
	// Strict edit semantics surface as 400s.
	if code, _ := mutateGraph(t, ts.URL, mut.ID, []graph.EdgeEdit{{Op: "frob", U: 0, V: 1}}); code != http.StatusBadRequest {
		t.Fatalf("unknown op accepted: code %d", code)
	}
	if code, _ := mutateGraph(t, ts.URL, mut.ID, nil); code != http.StatusBadRequest {
		t.Fatalf("empty edit list accepted: code %d", code)
	}
}

// TestFederatedPartitionByStoredGraphID is the fleet pairing contract for
// stored graphs: each island holds its own copy of the graph under the
// identical content id, both submissions name only that id, and the jobs
// pair up and exchange — no inline graph bytes anywhere in the flow.
func TestFederatedPartitionByStoredGraphID(t *testing.T) {
	f := newFleet(t, 15*time.Second)

	var id string
	for i, base := range f.urls {
		code, up := putSpec(t, base, twoSquares())
		if code != http.StatusCreated {
			t.Fatalf("island %d upload: code %d", i, code)
		}
		if id == "" {
			id = up.ID
		} else if up.ID != id {
			t.Fatalf("content ids diverge across islands: %q vs %q", id, up.ID)
		}
	}

	req := federatedRequest()
	req.Graph = GraphSpec{ID: id}
	var prs [2]partitionResponse
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func(i int) {
			code, pr := postURL(t, f.urls[i], req)
			if code != http.StatusOK {
				t.Errorf("island %d: code %d (%s)", i, code, pr.Error)
			}
			prs[i] = pr
			done <- struct{}{}
		}(i)
	}
	<-done
	<-done
	if t.Failed() {
		t.FailNow()
	}
	for i := 0; i < 2; i++ {
		if prs[i].Result == nil || prs[i].Result.ExchangeRounds == 0 {
			t.Fatalf("island %d did not exchange: %+v", i, prs[i])
		}
	}
	if a, b := prs[0].Result.ExchangeRounds, prs[1].Result.ExchangeRounds; a != b {
		t.Fatalf("exchange rounds diverge: %d vs %d", a, b)
	}
}
