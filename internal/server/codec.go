package server

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"strings"
	"time"

	ff "repro"
	"repro/internal/graph"
)

// PartitionRequest is the body of POST /v1/partition.
//
// The graph arrives inline, either as METIS/Chaco text or as an explicit
// edge list; exactly one of the two encodings must be present. All option
// fields are optional and default like the library facade (method
// "fusion-fission", objective "mcut", budget 2s, seed 0).
type PartitionRequest struct {
	Graph GraphSpec `json:"graph"`

	// K is the number of parts (required, >= 1).
	K int `json:"k"`
	// Method is a method identifier from GET /v1/methods.
	Method string `json:"method,omitempty"`
	// Objective is "cut", "ncut" or "mcut".
	Objective string `json:"objective,omitempty"`
	// Seed makes stochastic methods reproducible; identical requests with
	// the same seed return the identical partition (and hit the cache).
	Seed int64 `json:"seed,omitempty"`
	// Budget caps metaheuristic wall-clock time, as a Go duration string
	// ("250ms", "2s"). The server clamps it to its configured maximum.
	Budget string `json:"budget,omitempty"`
	// MaxSteps optionally caps metaheuristic steps for deterministic work.
	MaxSteps int `json:"max_steps,omitempty"`
	// Parallelism is the metaheuristic portfolio width: that many workers
	// search concurrently from derived seeds and the best result wins.
	// Clamped to the server's configured maximum; 0 and 1 run serially.
	Parallelism int `json:"parallelism,omitempty"`
	// Multilevel runs the metaheuristic inside a multilevel V-cycle
	// (coarsen, search the coarsest graph, refine on uncoarsening) —
	// typically much better quality per second on large graphs. Honoured by
	// the methods GET /v1/methods marks "multilevel"; ignored by the rest.
	Multilevel bool `json:"multilevel,omitempty"`
	// MemeticCrossover upgrades the genetic algorithm's crossover to the
	// cut-protecting V-cycle recombination (offspring never worse than the
	// better parent). Honoured by the methods GET /v1/methods marks
	// "memetic"; ignored by the rest. Takes precedence over multilevel.
	MemeticCrossover bool `json:"memetic_crossover,omitempty"`
	// CoarsenTo is the V-cycle coarsening cutoff in vertices (0 = a default
	// scaled to k); meaningful with multilevel or memetic_crossover.
	CoarsenTo int `json:"coarsen_to,omitempty"`
	// Relayout renumbers the graph with the deterministic locality ordering
	// before the solve (cache-friendlier adjacency walks for the hot-path
	// solvers); parts come back in the request's vertex numbering either
	// way. Changes stochastic trajectories for a given seed, so it is part
	// of the cache and federation identity.
	Relayout bool `json:"relayout,omitempty"`

	// Wait selects synchronous (default) or asynchronous handling. With
	// wait=false the server replies 202 with a job id to poll at
	// GET /v1/jobs/{id}.
	Wait *bool `json:"wait,omitempty"`
	// Timeout bounds the whole job (queue wait + run), as a Go duration
	// string. Default: budget plus the server's grace period.
	Timeout string `json:"timeout,omitempty"`
	// NoCache forces a fresh computation, bypassing the result cache for
	// both lookup and store.
	NoCache bool `json:"no_cache,omitempty"`
	// Federate opts this job into the island fleet: the run trades
	// incumbents with the server's configured peers at the usual exchange
	// points, and the result reports the island id and exchange round
	// count. Requires a server started with peers (400 otherwise). Submit
	// the identical request to every fleet member — the jobs pair up by
	// graph content and options; with graph.id they pair by stored graph
	// id, with no inline graph bytes on the wire at all. Federated jobs
	// bypass the result cache.
	Federate bool `json:"federate,omitempty"`

	// WarmStart seeds the solve with a previous assignment (one part id in
	// [0, k) per vertex) — the incremental-repartitioning path: the server
	// repairs the assignment locally and the solver starts from it instead
	// of solving cold, and the result is never worse than the repaired
	// seed. Metaheuristics only. Typically combined with graph.id after a
	// POST /v1/graphs/{id}/mutate.
	WarmStart []int32 `json:"warm_start,omitempty"`
}

// GraphSpec names the graph to partition in one of three ways: inline
// METIS text, an inline edge list, or the id of a graph previously uploaded
// to PUT /v1/graphs. Exactly one variant must be present.
type GraphSpec struct {
	// METIS is the graph in METIS/Chaco text format.
	METIS string `json:"metis,omitempty"`
	// N is the vertex count for the edge-list encoding.
	N int `json:"n,omitempty"`
	// Edges lists undirected edges as [u, v] or [u, v, weight] with
	// 0-based integer endpoints; weight defaults to 1.
	Edges [][]float64 `json:"edges,omitempty"`
	// VertexWeights optionally assigns per-vertex weights (length N).
	VertexWeights []float64 `json:"vertex_weights,omitempty"`
	// ID references a stored graph by its content id (the digest returned
	// by PUT /v1/graphs). Stored-graph jobs skip the parse and build
	// entirely — the id *is* the content hash, so the result cache and
	// island exchange keys come for free, with no rehash. Unknown or
	// evicted ids answer 404.
	ID string `json:"id,omitempty"`
}

// badRequestError marks client errors that map to HTTP 400.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badRequestf(format string, args ...any) error {
	return &badRequestError{fmt.Sprintf(format, args...)}
}

// notFoundError marks references to absent resources that map to HTTP 404 —
// an unknown or evicted graph id, most importantly.
type notFoundError struct{ msg string }

func (e *notFoundError) Error() string { return e.msg }

func notFoundf(format string, args ...any) error {
	return &notFoundError{fmt.Sprintf(format, args...)}
}

// decodeGraph materializes the request's inline graph (spec.ID resolution
// happens in the server, which owns the store).
func decodeGraph(spec GraphSpec) (*graph.Graph, error) {
	hasMETIS := spec.METIS != ""
	hasEdges := spec.N != 0 || len(spec.Edges) != 0 || len(spec.VertexWeights) != 0
	switch {
	case spec.ID != "" && (hasMETIS || hasEdges):
		return nil, badRequestf("graph: give a stored-graph id or inline content, not both")
	case hasMETIS && hasEdges:
		return nil, badRequestf("graph: give either metis text or an edge list, not both")
	case hasMETIS:
		g, err := graph.ReadMETIS(strings.NewReader(spec.METIS))
		if err != nil {
			return nil, badRequestf("%v", err) // already "graph:"-prefixed
		}
		return g, nil
	case hasEdges:
		return decodeEdgeList(spec)
	}
	return nil, badRequestf("graph: missing (want graph.id, graph.metis or graph.n + graph.edges)")
}

func decodeEdgeList(spec GraphSpec) (*graph.Graph, error) {
	if spec.N <= 0 {
		return nil, badRequestf("graph: n must be positive, got %d", spec.N)
	}
	if len(spec.VertexWeights) != 0 && len(spec.VertexWeights) != spec.N {
		return nil, badRequestf("graph: %d vertex weights for %d vertices", len(spec.VertexWeights), spec.N)
	}
	b := graph.NewBuilder(spec.N)
	for i, w := range spec.VertexWeights {
		b.SetVertexWeight(i, w)
	}
	for i, e := range spec.Edges {
		if len(e) != 2 && len(e) != 3 {
			return nil, badRequestf("graph: edge %d has %d entries (want [u,v] or [u,v,w])", i, len(e))
		}
		u, v := e[0], e[1]
		if u != math.Trunc(u) || v != math.Trunc(v) {
			return nil, badRequestf("graph: edge %d has non-integer endpoints [%g,%g]", i, u, v)
		}
		w := 1.0
		if len(e) == 3 {
			w = e[2]
		}
		b.AddEdge(int(u), int(v), w)
	}
	g, err := b.Build()
	if err != nil {
		return nil, badRequestf("%v", err)
	}
	return g, nil
}

// options converts the wire fields to library options, clamping the budget
// to maxBudget and the portfolio width to maxParallelism (0 = no clamp).
// The result is normalized so that equivalent requests produce identical
// cache keys.
func (r *PartitionRequest) options(maxBudget time.Duration, maxParallelism int) (ff.Options, error) {
	if r.K < 1 {
		return ff.Options{}, badRequestf("k must be >= 1, got %d", r.K)
	}
	if r.Parallelism < 0 {
		return ff.Options{}, badRequestf("parallelism must be >= 0, got %d", r.Parallelism)
	}
	if r.CoarsenTo < 0 {
		return ff.Options{}, badRequestf("coarsen_to must be >= 0, got %d", r.CoarsenTo)
	}
	opt := ff.Options{
		K:           r.K,
		Method:      r.Method,
		Objective:   r.Objective,
		Seed:        r.Seed,
		MaxSteps:    r.MaxSteps,
		Parallelism: r.Parallelism,
		Multilevel:  r.Multilevel,
		CoarsenTo:   r.CoarsenTo,
		Relayout:    r.Relayout,
		WarmStart:   r.WarmStart,

		MemeticCrossover: r.MemeticCrossover,
	}
	if maxParallelism > 0 && opt.Parallelism > maxParallelism {
		opt.Parallelism = maxParallelism
	}
	if r.Budget != "" {
		d, err := time.ParseDuration(r.Budget)
		if err != nil || d <= 0 {
			return ff.Options{}, badRequestf("bad budget %q (want a positive Go duration like \"500ms\")", r.Budget)
		}
		opt.Budget = d
	}
	opt, err := ff.Normalize(opt)
	if err != nil {
		return ff.Options{}, badRequestf("%v", err)
	}
	if maxBudget > 0 && opt.Budget > maxBudget {
		opt.Budget = maxBudget
	}
	return opt, nil
}

// timeout parses the job timeout; def applies when the field is absent.
func (r *PartitionRequest) timeout(def time.Duration) (time.Duration, error) {
	if r.Timeout == "" {
		return def, nil
	}
	d, err := time.ParseDuration(r.Timeout)
	if err != nil || d <= 0 {
		return 0, badRequestf("bad timeout %q (want a positive Go duration like \"5s\")", r.Timeout)
	}
	return d, nil
}

// graphDigest is the graph's content id in hex — graph.Digest, shared with
// the store (where it is the upload id) and the wire codec (where its raw
// bytes refuse cross-graph candidates). Inline submissions hash once per
// request; stored-graph submissions never hash at all, the id was verified
// at upload time.
func graphDigest(g *graph.Graph) string { return graph.Digest(g) }

// warmTag condenses a request's warm-start assignment for key purposes:
// jobs seeded from different previous assignments are different
// computations and must neither collide in the result cache nor pair up as
// federated partners. "-" for cold runs keeps old keys recognizable.
func warmTag(opt ff.Options) string {
	if len(opt.WarmStart) == 0 {
		return "-"
	}
	h := sha256.New()
	var buf [4]byte
	for _, a := range opt.WarmStart {
		binary.LittleEndian.PutUint32(buf[:], uint32(a))
		h.Write(buf[:])
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// cacheKey identifies a computation: graph content plus every option that
// influences the result (the portfolio width changes the winner, the
// V-cycle flags change the whole search trajectory, and a warm-start seed
// changes the starting point, so all are part of the key). Options must be
// normalized — normalization clears Multilevel and CoarsenTo on methods
// that ignore them, so equivalent requests collide.
func cacheKey(digest string, opt ff.Options) string {
	ml := 0
	if opt.Multilevel {
		ml = 1
	}
	mem := 0
	if opt.MemeticCrossover {
		mem = 1
	}
	rl := 0
	if opt.Relayout {
		rl = 1
	}
	return fmt.Sprintf("%s|%s|%d|%s|%d|%d|%d|%d|%d|%d|%d|%d|%s",
		digest, opt.Method, opt.K, opt.Objective, opt.Seed, int64(opt.Budget), opt.MaxSteps, opt.Parallelism, ml, opt.CoarsenTo, mem, rl, warmTag(opt))
}

// exchangeKey pairs fanned-out federated jobs across islands: the graph
// digest plus the option fields every island sees identically. Budget and
// parallelism are deliberately excluded — both are clamped by each server's
// own config, and a fleet of different widths is legitimate (each island
// still deposits one candidate per round). The island id itself is never
// part of the key.
func exchangeKey(digest string, opt ff.Options) string {
	ml := 0
	if opt.Multilevel {
		ml = 1
	}
	mem := 0
	if opt.MemeticCrossover {
		mem = 1
	}
	rl := 0
	if opt.Relayout {
		rl = 1
	}
	// Relayout must match across the fleet: all islands exchange candidates
	// in relabeled vertex ids (the ordering is a deterministic function of
	// the graph, so equal flags mean equal numberings).
	return fmt.Sprintf("%s|%s|%d|%s|%d|%d|%d|%d|%d|%d|%s",
		digest, opt.Method, opt.K, opt.Objective, opt.Seed, opt.MaxSteps, ml, opt.CoarsenTo, mem, rl, warmTag(opt))
}
