package server

import (
	"net/http"
	"testing"
	"time"
)

// cancelJob issues DELETE /v1/jobs/{id} and checks it succeeded.
func cancelJob(t *testing.T, base, poll string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, base+poll, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel %s: code %d", poll, resp.StatusCode)
	}
}

// TestJobProgressExchangeRounds: a running portfolio job's progress must
// count completed incumbent-exchange rounds, and a local (non-federated) run
// must not claim an island id.
func TestJobProgressExchangeRounds(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxParallelism: 2})

	// The genetic method exchanges every 4 steps, so rounds accumulate
	// almost immediately once the portfolio is running.
	req := slowJob("20s")
	req.Method = "genetic"
	req.Parallelism = 2
	code, pr := post(t, ts, req)
	if code != http.StatusAccepted || pr.JobID == "" {
		t.Fatalf("submit: code %d, %+v", code, pr)
	}

	deadline := time.Now().Add(15 * time.Second)
	var got partitionResponse
	for {
		if code := getJSON(t, ts.URL+pr.Poll, &got); code != http.StatusOK {
			t.Fatalf("poll: code %d", code)
		}
		if got.Status == statusDone || got.Status == statusFailed || got.Status == statusCancelled {
			t.Fatalf("slow job ended early: %s %s", got.Status, got.Error)
		}
		if got.Status == statusRunning && got.Progress != nil && got.Progress.ExchangeRounds > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no exchange rounds surfaced; last progress: %+v", got.Progress)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Progress.Island != nil {
		t.Fatalf("local run claims island %d", *got.Progress.Island)
	}
	cancelJob(t, ts.URL, pr.Poll)
}

// TestJobProgressFederatedIsland: while a federated job runs, its progress
// must report the configured island id alongside the exchange-round count.
func TestJobProgressFederatedIsland(t *testing.T) {
	f := newFleet(t, 10*time.Second)

	// A long-running federated job on each island, submitted asynchronously
	// so the test can poll island 1's progress mid-run.
	req := federatedRequest()
	req.Method = "genetic"
	req.MaxSteps = 0
	req.Budget = "20s"
	wait := false
	req.Wait = &wait

	var polls [2]string
	for i := 0; i < 2; i++ {
		code, pr := postURL(t, f.urls[i], req)
		if code != http.StatusAccepted || pr.JobID == "" {
			t.Fatalf("island %d submit: code %d, %+v", i, code, pr)
		}
		polls[i] = pr.Poll
	}

	deadline := time.Now().Add(15 * time.Second)
	var got partitionResponse
	for {
		if code := getJSON(t, f.urls[1]+polls[1], &got); code != http.StatusOK {
			t.Fatalf("poll: code %d", code)
		}
		if got.Status == statusDone || got.Status == statusFailed || got.Status == statusCancelled {
			t.Fatalf("federated job ended early: %s %s", got.Status, got.Error)
		}
		if got.Status == statusRunning && got.Progress != nil &&
			got.Progress.ExchangeRounds > 0 && got.Progress.Island != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("federated progress incomplete; last: %+v", got.Progress)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if *got.Progress.Island != 1 {
		t.Fatalf("island 1's progress reports island %d", *got.Progress.Island)
	}
	for i := 0; i < 2; i++ {
		cancelJob(t, f.urls[i], polls[i])
	}
}

// TestJobProgressWhileRunning polls a running portfolio job and expects the
// engine's live incumbent snapshot — steps, best objective, workers — to
// appear on GET /v1/jobs/{id}, then disappear once the job is cancelled.
func TestJobProgressWhileRunning(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxParallelism: 2})

	req := slowJob("20s")
	req.Parallelism = 2
	code, pr := post(t, ts, req)
	if code != http.StatusAccepted || pr.JobID == "" {
		t.Fatalf("submit: code %d, %+v", code, pr)
	}

	// Wait for the job to be running with visible progress. Steps and the
	// best objective appear as soon as the workers have searched a little.
	deadline := time.Now().Add(15 * time.Second)
	var got partitionResponse
	for {
		if code := getJSON(t, ts.URL+pr.Poll, &got); code != http.StatusOK {
			t.Fatalf("poll: code %d", code)
		}
		if got.Status == statusDone || got.Status == statusFailed || got.Status == statusCancelled {
			t.Fatalf("slow job ended early: %s %s", got.Status, got.Error)
		}
		if got.Status == statusRunning && got.Progress != nil &&
			got.Progress.Steps > 0 && got.Progress.BestObjective != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress surfaced; last: %+v (progress %+v)", got, got.Progress)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Progress.Workers != 2 {
		t.Fatalf("progress workers = %d, want the portfolio width 2", got.Progress.Workers)
	}
	if *got.Progress.BestObjective <= 0 {
		t.Fatalf("best objective = %v", *got.Progress.BestObjective)
	}

	// Cancel; the finished job must not carry progress any more.
	reqDel, err := http.NewRequest(http.MethodDelete, ts.URL+pr.Poll, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: code %d", resp.StatusCode)
	}
	got = partitionResponse{}
	if code := getJSON(t, ts.URL+pr.Poll, &got); code != http.StatusOK {
		t.Fatalf("poll after cancel: code %d", code)
	}
	if got.Status != statusCancelled || got.Progress != nil {
		t.Fatalf("after cancel: status %s, progress %+v", got.Status, got.Progress)
	}
}
