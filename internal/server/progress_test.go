package server

import (
	"net/http"
	"testing"
	"time"
)

// TestJobProgressWhileRunning polls a running portfolio job and expects the
// engine's live incumbent snapshot — steps, best objective, workers — to
// appear on GET /v1/jobs/{id}, then disappear once the job is cancelled.
func TestJobProgressWhileRunning(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, MaxParallelism: 2})

	req := slowJob("20s")
	req.Parallelism = 2
	code, pr := post(t, ts, req)
	if code != http.StatusAccepted || pr.JobID == "" {
		t.Fatalf("submit: code %d, %+v", code, pr)
	}

	// Wait for the job to be running with visible progress. Steps and the
	// best objective appear as soon as the workers have searched a little.
	deadline := time.Now().Add(15 * time.Second)
	var got partitionResponse
	for {
		if code := getJSON(t, ts.URL+pr.Poll, &got); code != http.StatusOK {
			t.Fatalf("poll: code %d", code)
		}
		if got.Status == statusDone || got.Status == statusFailed || got.Status == statusCancelled {
			t.Fatalf("slow job ended early: %s %s", got.Status, got.Error)
		}
		if got.Status == statusRunning && got.Progress != nil &&
			got.Progress.Steps > 0 && got.Progress.BestObjective != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no progress surfaced; last: %+v (progress %+v)", got, got.Progress)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got.Progress.Workers != 2 {
		t.Fatalf("progress workers = %d, want the portfolio width 2", got.Progress.Workers)
	}
	if *got.Progress.BestObjective <= 0 {
		t.Fatalf("best objective = %v", *got.Progress.BestObjective)
	}

	// Cancel; the finished job must not carry progress any more.
	reqDel, err := http.NewRequest(http.MethodDelete, ts.URL+pr.Poll, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(reqDel)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: code %d", resp.StatusCode)
	}
	got = partitionResponse{}
	if code := getJSON(t, ts.URL+pr.Poll, &got); code != http.StatusOK {
		t.Fatalf("poll after cancel: code %d", code)
	}
	if got.Status != statusCancelled || got.Progress != nil {
		t.Fatalf("after cancel: status %s, progress %+v", got.Status, got.Progress)
	}
}
