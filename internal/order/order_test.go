package order

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
)

// randomTestGraph builds a random graph with exactly representable (dyadic)
// edge and vertex weights, optional self-loops. Dyadic weights make every
// per-part accumulation exact regardless of summation order, which is what
// lets the invariance properties below demand bit-identical scores rather
// than scores-within-epsilon.
func randomTestGraph(seed int64) *graph.Graph {
	r := rng.New(seed)
	n := 8 + r.Intn(60)
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if r.Float64() < 0.15 {
				b.AddEdge(u, v, float64(1+r.Intn(16))/8)
			}
		}
	}
	// Guarantee connectivity is NOT required by relayout — leave isolated
	// vertices and multiple components as they fall.
	if seed%2 == 0 {
		for v := 0; v < n; v += 3 {
			b.SetVertexWeight(v, float64(1+r.Intn(8))/4)
		}
	}
	if seed%3 == 0 {
		for v := 0; v < n; v += 4 {
			b.AddSelfLoop(v, float64(1+r.Intn(8))/2)
		}
	}
	return b.MustBuild()
}

// TestLocalityIsPermutation: the ordering must be a bijection covering every
// vertex, including isolated ones and multi-component graphs.
func TestLocalityIsPermutation(t *testing.T) {
	check := func(seed int64) bool {
		g := randomTestGraph(seed)
		perm := Locality(g)
		if len(perm) != g.NumVertices() || !IsPermutation(perm) {
			t.Logf("seed %d: Locality is not a permutation", seed)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestInverseRoundTrip: Inverse(perm) composed with perm is the identity in
// both directions.
func TestInverseRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		g := randomTestGraph(seed)
		perm := Locality(g)
		inv := Inverse(perm)
		for old, p := range perm {
			if int(inv[p]) != old || perm[inv[p]] != p {
				t.Logf("seed %d: inverse round trip broken at %d", seed, old)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestRelabelPreservesStructure: the relabeled graph is isomorphic under
// perm — degrees, edge weights, vertex weights, self-loops, totals and the
// unit-weight fast-path flags all carry over exactly.
func TestRelabelPreservesStructure(t *testing.T) {
	check := func(seed int64) bool {
		g := randomTestGraph(seed)
		perm := Locality(g)
		rg, err := graph.Relabel(g, perm)
		if err != nil {
			t.Logf("seed %d: Relabel: %v", seed, err)
			return false
		}
		if rg.NumVertices() != g.NumVertices() || rg.NumEdges() != g.NumEdges() {
			t.Logf("seed %d: size mismatch", seed)
			return false
		}
		if rg.UnitEdgeWeights() != g.UnitEdgeWeights() || rg.UnitVertexWeights() != g.UnitVertexWeights() {
			t.Logf("seed %d: unit-weight flags changed", seed)
			return false
		}
		if rg.TotalEdgeWeight() != g.TotalEdgeWeight() || rg.TotalLoopWeight() != g.TotalLoopWeight() {
			t.Logf("seed %d: totals changed", seed)
			return false
		}
		for v := 0; v < g.NumVertices(); v++ {
			pv := int(perm[v])
			if rg.Degree(pv) != g.Degree(v) ||
				rg.VertexWeight(pv) != g.VertexWeight(v) ||
				rg.VertexLoop(pv) != g.VertexLoop(v) ||
				rg.WeightedDegree(pv) != g.WeightedDegree(v) {
				t.Logf("seed %d: vertex %d stats changed", seed, v)
				return false
			}
		}
		ok := true
		g.ForEachEdge(func(u, v int, w float64) {
			got, exists := rg.EdgeWeight(int(perm[u]), int(perm[v]))
			if !exists || got != w {
				t.Logf("seed %d: edge {%d,%d} weight %v -> (%v,%v)", seed, u, v, w, got, exists)
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRelabelUnitFlagsSurvive pins the fast-path flags on the two pure
// cases: a generator-made unit graph keeps both flags through Relabel, and
// a weighted one keeps them off.
func TestRelabelUnitFlagsSurvive(t *testing.T) {
	g := graph.RandomGeometric(400, 0.08, 11)
	if !g.UnitEdgeWeights() || !g.UnitVertexWeights() {
		t.Fatal("generator graph expected unit weights")
	}
	rg, err := graph.Relabel(g, Locality(g))
	if err != nil {
		t.Fatal(err)
	}
	if !rg.UnitEdgeWeights() || !rg.UnitVertexWeights() {
		t.Fatal("unit-weight flags lost through Relabel")
	}
}

// TestRelabelRejectsBadPermutations: wrong length, out-of-range targets and
// duplicated targets must all fail loudly, never merge vertices silently.
func TestRelabelRejectsBadPermutations(t *testing.T) {
	g := graph.GNP(10, 0.4, 3)
	if _, err := graph.Relabel(g, make([]int32, 9)); err == nil {
		t.Error("short permutation accepted")
	}
	bad := Locality(g)
	bad[3] = 42
	if _, err := graph.Relabel(g, bad); err == nil {
		t.Error("out-of-range target accepted")
	}
	dup := Locality(g)
	dup[3] = dup[4]
	if _, err := graph.Relabel(g, dup); err == nil {
		t.Error("duplicated target accepted")
	}
}

// TestRelayoutScoresBitIdentical is the core invariance property: for any
// assignment of the original graph, scoring the permuted assignment on the
// relabeled graph yields bit-identical per-part statistics and objective
// values, for every objective. Dyadic weights make all accumulations exact,
// so this is equality, not tolerance.
func TestRelayoutScoresBitIdentical(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		g := randomTestGraph(seed)
		n := g.NumVertices()
		perm := Locality(g)
		rg, err := graph.Relabel(g, perm)
		if err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		k := 2 + r.Intn(6)
		assign := make([]int32, n)
		relabeled := make([]int32, n)
		for v := range assign {
			assign[v] = int32(r.Intn(k))
			relabeled[perm[v]] = assign[v]
		}
		p, err := partition.FromAssignment(g, assign, k)
		if err != nil {
			return false
		}
		rp, err := partition.FromAssignment(rg, relabeled, k)
		if err != nil {
			return false
		}
		for a := 0; a < k; a++ {
			if p.PartSize(a) != rp.PartSize(a) ||
				p.PartVertexWeight(a) != rp.PartVertexWeight(a) ||
				p.PartCut(a) != rp.PartCut(a) ||
				p.PartInternalOrdered(a) != rp.PartInternalOrdered(a) {
				t.Logf("seed %d: part %d stats diverge through relayout", seed, a)
				return false
			}
		}
		for _, obj := range []objective.Objective{objective.Cut, objective.NCut, objective.MCut} {
			if ev, rev := obj.Evaluate(p), obj.Evaluate(rp); ev != rev {
				t.Logf("seed %d: %v evaluates %v vs %v through relayout", seed, obj, ev, rev)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestRelayoutMapsBackThroughInverse: a partition found on the relabeled
// graph, mapped back through the inverse permutation, scores bit-identically
// on the original graph — the exact contract the facade relies on when it
// returns relayout results in caller numbering.
func TestRelayoutMapsBackThroughInverse(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		g := randomTestGraph(seed)
		n := g.NumVertices()
		perm := Locality(g)
		inv := Inverse(perm)
		rg, err := graph.Relabel(g, perm)
		if err != nil {
			return false
		}
		k := 2 + r.Intn(6)
		found := make([]int32, n) // assignment in relabeled ids
		for v := range found {
			found[v] = int32(r.Intn(k))
		}
		back := make([]int32, n)
		for nv, a := range found {
			back[inv[nv]] = a
		}
		rp, err := partition.FromAssignment(rg, found, k)
		if err != nil {
			return false
		}
		p, err := partition.FromAssignment(g, back, k)
		if err != nil {
			return false
		}
		for _, obj := range []objective.Objective{objective.Cut, objective.NCut, objective.MCut} {
			if obj.Evaluate(p) != obj.Evaluate(rp) {
				t.Logf("seed %d: objective diverges mapping back", seed)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
