// Package order computes cache-friendly vertex orderings for the hot-path
// partitioners. The per-proposal cost of the annealer and the k-way refiner
// is dominated by random loads over graph-order CSR arrays — the neighbor
// ids of a proposal vertex index into the assignment mirror and the
// adjacency of consecutive proposals lands on unrelated cache lines. A
// locality relayout renumbers vertices so that topological neighborhoods
// become index neighborhoods: adjacency lists hold nearby ids, consecutive
// vertices share cache lines, and the same proposal loop touches a fraction
// of the lines it used to.
//
// The ordering is purely a renumbering: graph.Relabel applies it, and any
// partition of the relabeled graph maps back through Inverse with identical
// per-part statistics (the relayout-invariance property suite pins this,
// bit-for-bit on graphs with exactly representable weights).
package order

import "repro/internal/graph"

// Locality returns a permutation perm with perm[old] = new, computed by a
// BFS-windowed, degree-descending sweep: BFS components are explored from
// seed vertices taken in decreasing-degree order (ties to the lowest id),
// and each BFS wave appends neighbors in adjacency order. High-degree hubs
// — whose adjacency spans the most cache lines and whose ids appear in the
// most lists — get the densest, lowest id windows, and every BFS wave is a
// contiguous id range adjacent to the previous wave, so an edge's endpoints
// are rarely more than a couple of waves apart in the new numbering.
//
// The result is deterministic for a given graph: seeds and waves follow
// only degrees, ids and adjacency order.
func Locality(g *graph.Graph) []int32 {
	n := g.NumVertices()
	perm := make([]int32, n)
	if n == 0 {
		return perm
	}
	// Seeds in degree-descending order, lowest id first on ties: a counting
	// sort over degree buckets (max degree < n) keeps this O(n + m) and
	// allocation-lean — sorting ids by degree with a comparison sort would
	// dominate the relayout on big sparse graphs.
	maxDeg := 0
	for v := 0; v < n; v++ {
		if d := g.Degree(v); d > maxDeg {
			maxDeg = d
		}
	}
	count := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		count[maxDeg-g.Degree(v)+1]++
	}
	for i := 1; i < len(count); i++ {
		count[i] += count[i-1]
	}
	seeds := make([]int32, n)
	for v := 0; v < n; v++ { // ascending v keeps ties id-ordered
		b := maxDeg - g.Degree(v)
		seeds[count[b]] = int32(v)
		count[b]++
	}
	// BFS from each unvisited seed; the queue doubles as the visit order, so
	// the final sequence is one append per vertex.
	visited := make([]bool, n)
	queue := make([]int32, 0, n)
	for _, s := range seeds {
		if visited[s] {
			continue
		}
		visited[s] = true
		queue = append(queue, s)
		for head := len(queue) - 1; head < len(queue); head++ {
			v := queue[head]
			for _, u := range g.Neighbors(int(v)) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
	}
	for newID, old := range queue {
		perm[old] = int32(newID)
	}
	return perm
}

// Inverse returns the inverse permutation: inv[perm[old]] = old, i.e.
// indexing by a relabeled id yields the original id. Applying it to a
// partition of the relabeled graph recovers the caller's vertex numbering.
func Inverse(perm []int32) []int32 {
	inv := make([]int32, len(perm))
	for old, newID := range perm {
		inv[newID] = int32(old)
	}
	return inv
}

// IsPermutation reports whether perm is a bijection on [0, len(perm)) —
// the precondition of graph.Relabel, exported so request paths can validate
// wire-supplied permutations before trusting them.
func IsPermutation(perm []int32) bool {
	seen := make([]bool, len(perm))
	for _, p := range perm {
		if p < 0 || int(p) >= len(perm) || seen[p] {
			return false
		}
		seen[p] = true
	}
	return true
}
