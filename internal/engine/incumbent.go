package engine

import (
	"sync"
	"sync/atomic"
)

// Incumbent is the thread-safe best-so-far of a running (possibly
// multi-worker) solve, with copy-out. It doubles as the live-progress feed:
// workers add step counts and offer improvements as they search, and the
// HTTP layer snapshots Progress while the job runs.
type Incumbent struct {
	steps   atomic.Int64
	workers atomic.Int32
	rounds  atomic.Int64
	// island is the 1-biased island index of a federated run (0 = not
	// federated), so island 0 remains representable.
	island atomic.Int64

	mu     sync.Mutex
	has    bool
	energy float64
	assign []int32
}

// NewIncumbent returns an empty incumbent.
func NewIncumbent() *Incumbent { return &Incumbent{} }

// Offer records a new solution if it beats the current best. snapshot is
// invoked — under the lock, so at most once — only when the offer wins; it
// must return compact part labels the incumbent may retain. A nil snapshot
// records the energy alone.
func (inc *Incumbent) Offer(energy float64, snapshot func() []int32) bool {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if inc.has && energy >= inc.energy {
		return false
	}
	inc.has = true
	inc.energy = energy
	if snapshot != nil {
		inc.assign = snapshot()
	}
	return true
}

// Best copies out the best assignment and its energy. ok is false while no
// solution has been offered; assign is nil if the best was offered without
// a snapshot.
func (inc *Incumbent) Best() (assign []int32, energy float64, ok bool) {
	inc.mu.Lock()
	defer inc.mu.Unlock()
	if !inc.has {
		return nil, 0, false
	}
	if inc.assign != nil {
		assign = append([]int32(nil), inc.assign...)
	}
	return assign, inc.energy, true
}

// AddSteps adds a worker's freshly executed step count.
func (inc *Incumbent) AddSteps(n int64) { inc.steps.Add(n) }

// SetWorkers records how many portfolio workers feed this incumbent.
func (inc *Incumbent) SetWorkers(n int) { inc.workers.Store(int32(n)) }

// AddExchangeRound counts one completed incumbent-exchange round; the
// transport calls it so live monitoring can show gossip activity.
func (inc *Incumbent) AddExchangeRound() { inc.rounds.Add(1) }

// ExchangeRounds returns the number of exchange rounds completed so far.
func (inc *Incumbent) ExchangeRounds() int64 { return inc.rounds.Load() }

// SetIsland records that the solve is federated and which island this
// process is; Progress then reports the island id.
func (inc *Incumbent) SetIsland(island int) { inc.island.Store(int64(island) + 1) }

// Progress is a live snapshot of a running solve, served by the HTTP API on
// GET /v1/jobs/{id} while the job runs.
type Progress struct {
	// Steps is the total number of search steps executed so far, summed
	// across workers (each solver's own step unit: events, moves,
	// iterations, generations).
	Steps int64 `json:"steps"`
	// BestObjective is the best objective value found so far; absent until
	// a first solution exists.
	BestObjective *float64 `json:"best_objective,omitempty"`
	// Workers is the portfolio width of the solve.
	Workers int `json:"workers"`
	// ExchangeRounds counts completed incumbent-exchange rounds — step-
	// cadence barriers, V-cycle level boundaries, and cross-island gossip
	// rounds alike — so a poller can watch exchange activity.
	ExchangeRounds int64 `json:"exchange_rounds"`
	// Island is this process's island index when the solve is federated
	// across ffserve instances; absent for single-process runs.
	Island *int `json:"island,omitempty"`
}

// Progress snapshots the live counters.
func (inc *Incumbent) Progress() Progress {
	p := Progress{
		Steps:          inc.steps.Load(),
		Workers:        int(inc.workers.Load()),
		ExchangeRounds: inc.rounds.Load(),
	}
	if biased := inc.island.Load(); biased > 0 {
		island := int(biased - 1)
		p.Island = &island
	}
	inc.mu.Lock()
	if inc.has {
		e := inc.energy
		p.BestObjective = &e
	}
	inc.mu.Unlock()
	return p
}
