// Package engine is the shared search-engine runtime behind every
// metaheuristic in this repository (fusion-fission, simulated annealing, ant
// colony, genetic) and the cancellation-polling substrate of the classical
// solvers. It owns the run-loop plumbing the solver packages used to
// hand-roll individually:
//
//   - Loop: the anytime run loop — wall-clock budget, step cap, cadenced
//     context polling with the PR-2 Cancelled semantics, personal-best
//     tracking and the Figure-1 trace.
//   - Poll: the cadenced context check alone, for initialization phases and
//     classical solvers that have budgets of their own shape.
//   - Incumbent: a thread-safe best-so-far with copy-out, doubling as the
//     live-progress feed (steps, best objective, workers) behind the HTTP
//     API's GET /v1/jobs/{id}.
//   - Portfolio: N concurrent workers running independently seeded instances
//     of one solver, periodically exchanging incumbents KaFFPaE-style
//     (Sanders & Schulz, Distributed Evolutionary Graph Partitioning) and
//     reduced deterministically to a single winner.
//   - Transport: the incumbent-exchange boundary itself, as an interface —
//     the in-process barrier for single-machine portfolios, or a federated
//     transport that additionally trades each round's local winner against
//     peer islands through a Relay (the HTTP long-poll gossip in
//     internal/server), turning a fleet of processes into one portfolio.
//
// # Determinism
//
// The portfolio is deterministic for step-capped runs: worker w derives its
// seed as DeriveSeed(seed, w) (worker 0 keeps the base seed, so a one-worker
// portfolio is bit-for-bit the serial run), incumbent exchange happens at
// fixed step indices behind a barrier — never at wall-clock times — and the
// winner is reduced by (energy, worker id). Wall-clock-budgeted runs stop at
// machine-dependent step counts and are reproducible only in distribution,
// exactly as in the serial solvers.
package engine

import (
	"context"
	"time"
)

// TracePoint records the best objective seen at a point in time — one point
// of the paper's Figure 1 anytime curves. Every solver package aliases this
// type.
type TracePoint struct {
	Elapsed time.Duration
	Energy  float64
}

// Poll checks a context at a fixed call cadence, so hot loops pay a channel
// select only once per Every calls. Once the context fires, Poll remembers
// it and every later Due call reports true immediately.
type Poll struct {
	ctx   context.Context
	done  <-chan struct{}
	every uint32
	n     uint32
	fired bool
}

// NewPoll returns a poller that actually checks ctx on the first Due call
// and then once per every calls (every <= 1 checks on each call).
func NewPoll(ctx context.Context, every int) *Poll {
	if every < 1 {
		every = 1
	}
	return &Poll{ctx: ctx, done: ctx.Done(), every: uint32(every)}
}

// Due reports whether the context has fired, checking it at the configured
// cadence.
func (p *Poll) Due() bool {
	if p.fired {
		return true
	}
	due := p.n%p.every == 0
	p.n++
	if !due {
		return false
	}
	select {
	case <-p.done:
		p.fired = true
	default:
	}
	return p.fired
}

// Err returns the context's error; non-nil once the context has fired.
func (p *Poll) Err() error { return p.ctx.Err() }

// LoopOptions configures a run loop.
type LoopOptions struct {
	// Budget caps wall-clock time from NewLoop; 0 means no time limit.
	Budget time.Duration
	// MaxSteps caps the number of granted steps; <= 0 means no step cap.
	MaxSteps int
	// PollEvery is the context-polling cadence in steps (default 64).
	// Solvers with very cheap steps raise it; solvers with expensive steps
	// set 1.
	PollEvery int
	// BudgetEvery is the wall-clock check cadence in steps (default
	// PollEvery). time.Since costs more than a channel select, so cheap-step
	// solvers check the clock less often than the context.
	BudgetEvery int
	// ProgressEvery is the cadence (in steps) of step-counter publication
	// to the shared monitor (default 256). Solvers whose steps are whole
	// iterations or generations set 1 so live progress moves in real time;
	// the publication is one atomic add, coarse enough at any cadence not
	// to contend.
	ProgressEvery int
	// Runtime optionally attaches the loop to a portfolio worker slot and
	// the live-progress incumbent. Nil for standalone serial runs.
	Runtime *Runtime
}

// Loop is the anytime run loop every metaheuristic executes inside:
//
//	loop := engine.NewLoop(ctx, engine.LoopOptions{Budget: b, MaxSteps: n})
//	for loop.Next() {
//		// one paper-specific move
//		if better {
//			loop.Improved(energy, snapshot)
//		}
//	}
//	res := Result{Steps: loop.Steps(), Trace: loop.Trace(), Cancelled: loop.Cancelled()}
//
// Next grants steps until the step cap, the budget or the context stops the
// run; the solver's loop body only expresses its paper-specific moves. A
// loop attached to a portfolio Runtime additionally publishes progress and
// exchanges incumbents at the runtime's sync cadence, invisibly to the
// solver except through Foreign.
type Loop struct {
	poll        *Poll
	start       time.Time
	budget      time.Duration
	maxSteps    int
	budgetEvery int
	step        int
	cancelled   bool
	budgetHit   bool

	rt            *Runtime
	progressEvery int
	hasBest       bool
	deposited     bool // personal best already sits in the transport slot
	bestE         float64
	snapshot      func() []int32
	foreign       *Candidate
	trace         []TracePoint
	flushed       int64 // steps already published to the monitor
}

// NewLoop starts the budget clock and returns the loop.
func NewLoop(ctx context.Context, opt LoopOptions) *Loop {
	if opt.PollEvery < 1 {
		opt.PollEvery = 64
	}
	if opt.BudgetEvery < 1 {
		opt.BudgetEvery = opt.PollEvery
	}
	if opt.ProgressEvery < 1 {
		opt.ProgressEvery = 256
	}
	l := &Loop{
		poll:          NewPoll(ctx, opt.PollEvery),
		start:         time.Now(),
		budget:        opt.Budget,
		maxSteps:      opt.MaxSteps,
		budgetEvery:   opt.BudgetEvery,
		progressEvery: opt.ProgressEvery,
		rt:            opt.Runtime,
	}
	return l
}

// Next grants one more step, or reports that the run is over: step cap
// reached, context fired (Cancelled becomes true) or budget exhausted.
// Checks happen in that order, at their configured cadences, matching the
// hand-rolled loops this type replaced.
func (l *Loop) Next() bool {
	if l.cancelled || l.budgetHit {
		return false
	}
	if l.maxSteps > 0 && l.step >= l.maxSteps {
		l.flushProgress()
		return false
	}
	if l.poll.Due() {
		l.cancelled = true
		l.flushProgress()
		return false
	}
	if l.budget > 0 && l.step%l.budgetEvery == 0 && time.Since(l.start) > l.budget {
		l.budgetHit = true
		l.flushProgress()
		return false
	}
	l.step++
	if l.rt != nil {
		l.runtimeStep()
	}
	return true
}

// PollNow checks the context immediately, outside the step cadence — for
// inner loops (per child, per walk) nested within one step.
func (l *Loop) PollNow() bool {
	if l.cancelled {
		return true
	}
	select {
	case <-l.poll.done:
		l.cancelled = true
		l.flushProgress()
	default:
	}
	return l.cancelled
}

// Improved records a new personal best: one trace point, publication to the
// live-progress monitor, and the candidate the next portfolio exchange will
// deposit. snapshot must return the partition as compact labels in [0, K);
// it is called lazily — at most once here and once per exchange — and must
// keep reflecting the solver's current best if the underlying storage is
// reused.
func (l *Loop) Improved(energy float64, snapshot func() []int32) {
	l.trace = append(l.trace, TracePoint{time.Since(l.start), energy})
	l.hasBest = true
	l.deposited = false
	l.bestE = energy
	l.snapshot = snapshot
	if l.rt != nil && l.rt.Monitor != nil {
		l.rt.Monitor.Offer(energy, snapshot)
	}
}

// Mark appends a trace point without declaring a new best (anneal marks the
// final best at the moment the loop ends, mirroring its pre-engine trace).
func (l *Loop) Mark(energy float64) {
	l.trace = append(l.trace, TracePoint{time.Since(l.start), energy})
}

// Foreign hands the solver the best incumbent another worker published, if
// it strictly beats this worker's own best; the solver adopts it at a
// natural re-seeding point (a freezing restart, a population injection).
// The candidate is cleared on take and replaced at the next exchange.
func (l *Loop) Foreign() ([]int32, float64, bool) {
	c := l.foreign
	if c == nil {
		return nil, 0, false
	}
	l.foreign = nil
	return c.Assign, c.Energy, true
}

// Finish publishes any unreported progress. Next's own exits flush
// automatically; a solver that breaks out of the loop body itself (anneal's
// no-budget freezing exit) calls Finish before assembling its result so the
// monitor's step count stays exact. Idempotent.
func (l *Loop) Finish() { l.flushProgress() }

// Steps returns the number of steps granted so far.
func (l *Loop) Steps() int { return l.step }

// Cancelled reports that the context stopped the run — the solver's own
// record of the cancellation, free of any race against the context timer.
func (l *Loop) Cancelled() bool { return l.cancelled }

// Elapsed is the time since the loop (and its budget clock) started.
func (l *Loop) Elapsed() time.Duration { return time.Since(l.start) }

// Trace returns the accumulated anytime trace.
func (l *Loop) Trace() []TracePoint { return l.trace }

// runtimeStep publishes progress and runs the barrier exchange at their
// cadences. Called once per granted step when a Runtime is attached.
func (l *Loop) runtimeStep() {
	rt := l.rt
	if rt.Monitor != nil && l.step%l.progressEvery == 0 {
		l.flushProgress()
	}
	if rt.transport != nil && rt.SyncEvery > 0 && l.step%rt.SyncEvery == 0 {
		l.exchange()
	}
}

// exchange deposits this worker's personal best and waits for the round's
// winner; a strictly better foreign winner is surfaced through Foreign.
// Slots persist across rounds, so an unchanged best is not re-snapshotted
// or re-deposited.
func (l *Loop) exchange() {
	rt := l.rt
	var own Candidate
	if l.hasBest && !l.deposited {
		own = Candidate{Assign: l.snapshot(), Energy: l.bestE, Worker: rt.Worker, Has: true}
		l.deposited = true
	}
	win, ok := rt.transport.Sync(rt.Worker, own)
	if ok && !rt.ownCandidate(win) && (!l.hasBest || win.Energy < l.bestE) {
		l.foreign = &win
	}
}

// flushProgress publishes the unreported step delta to the monitor.
func (l *Loop) flushProgress() {
	if l.rt == nil || l.rt.Monitor == nil {
		return
	}
	if d := int64(l.step) - l.flushed; d > 0 {
		l.rt.Monitor.AddSteps(d)
		l.flushed = int64(l.step)
	}
}
