package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// toyResult is a synthetic solver outcome for portfolio tests.
type toyResult struct {
	seed    int64
	worker  int
	energy  float64
	foreign [][]int32 // every foreign incumbent this worker adopted
}

func toyEnergy(r *toyResult) float64 { return r.energy }

func TestPortfolioSingleWorkerRunsInline(t *testing.T) {
	var gid, solveGid int64
	gid = goid(t)
	res, workers, err := Portfolio(context.Background(), PortfolioOptions{Workers: 1, Seed: 9},
		toyEnergy,
		func(ctx context.Context, rt *Runtime, seed int64) (*toyResult, error) {
			solveGid = goid(t)
			if rt.Worker != 0 {
				t.Errorf("worker = %d", rt.Worker)
			}
			return &toyResult{seed: seed, energy: 1}, nil
		})
	if err != nil || workers != 1 {
		t.Fatalf("err=%v workers=%d", err, workers)
	}
	if res.seed != 9 {
		t.Fatalf("worker 0 seed = %d, want the base seed", res.seed)
	}
	if gid != solveGid {
		t.Fatal("single-worker solve did not run on the calling goroutine")
	}
}

// goid fingerprints the current goroutine via a stack-allocated marker: the
// test only needs "same goroutine or not", so the address of a local works.
func goid(t *testing.T) int64 {
	t.Helper()
	buf := make([]byte, 64)
	runtime.Stack(buf, false)
	var id int64
	fmt.Sscanf(string(buf), "goroutine %d ", &id)
	return id
}

func TestPortfolioDeterministicReduction(t *testing.T) {
	run := func() (*toyResult, int) {
		res, workers, err := Portfolio(context.Background(), PortfolioOptions{Workers: 4, Seed: 5},
			toyEnergy,
			func(ctx context.Context, rt *Runtime, seed int64) (*toyResult, error) {
				// Derived seeds decide the energy; two workers tie so the
				// reduction must break the tie by worker index.
				e := float64(seed % 97)
				if rt.Worker >= 2 {
					e = -1 // tie between workers 2 and 3
				}
				return &toyResult{seed: seed, worker: rt.Worker, energy: e}, nil
			})
		if err != nil {
			t.Fatal(err)
		}
		return res, workers
	}
	first, workers := run()
	if workers != 4 {
		t.Fatalf("workers = %d", workers)
	}
	if first.worker != 2 {
		t.Fatalf("tie broken to worker %d, want 2", first.worker)
	}
	for i := 0; i < 3; i++ {
		if again, _ := run(); again.worker != first.worker || again.seed != first.seed {
			t.Fatalf("run %d chose worker %d/seed %d, first chose %d/%d",
				i, again.worker, again.seed, first.worker, first.seed)
		}
	}
}

func TestPortfolioWorkerErrorsTolerated(t *testing.T) {
	boom := errors.New("boom")
	res, _, err := Portfolio(context.Background(), PortfolioOptions{Workers: 3, Seed: 1},
		toyEnergy,
		func(ctx context.Context, rt *Runtime, seed int64) (*toyResult, error) {
			if rt.Worker != 1 {
				return nil, boom
			}
			return &toyResult{worker: rt.Worker, energy: 4}, nil
		})
	if err != nil {
		t.Fatalf("portfolio failed despite a surviving worker: %v", err)
	}
	if res.worker != 1 {
		t.Fatalf("winner = worker %d", res.worker)
	}

	_, _, err = Portfolio(context.Background(), PortfolioOptions{Workers: 3, Seed: 1},
		toyEnergy,
		func(ctx context.Context, rt *Runtime, seed int64) (*toyResult, error) {
			return nil, fmt.Errorf("worker %d: %w", rt.Worker, boom)
		})
	if !errors.Is(err, boom) {
		t.Fatalf("all-fail error = %v", err)
	}
}

func TestPortfolioExchangeDeliversBestIncumbent(t *testing.T) {
	// Worker w publishes energy 10-w at its first step; every round the
	// barrier reduces to worker 3's incumbent, which all other workers must
	// observe through Foreign. Step-indexed syncs make this fully
	// deterministic, so the assertions are exact.
	const workers = 4
	res, _, err := Portfolio(context.Background(), PortfolioOptions{Workers: workers, Seed: 1, SyncEvery: 2},
		toyEnergy,
		func(ctx context.Context, rt *Runtime, seed int64) (*toyResult, error) {
			r := &toyResult{worker: rt.Worker, energy: float64(10 - rt.Worker)}
			loop := NewLoop(ctx, LoopOptions{MaxSteps: 6, PollEvery: 1, Runtime: rt})
			own := []int32{int32(rt.Worker)}
			loop.Improved(r.energy, func() []int32 { return own })
			for loop.Next() {
				if assign, e, ok := loop.Foreign(); ok {
					if e >= r.energy {
						return nil, fmt.Errorf("worker %d: foreign %g not better than own %g", rt.Worker, e, r.energy)
					}
					r.foreign = append(r.foreign, assign)
				}
			}
			return r, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.worker != 3 {
		t.Fatalf("winner = worker %d, want 3", res.worker)
	}
	// The winning worker never sees a foreign incumbent; the others see
	// worker 3's assignment at their first sync (step 2) and, having not
	// improved since, nothing new after.
	if len(res.foreign) != 0 {
		t.Fatalf("winner adopted %d foreign incumbents", len(res.foreign))
	}
}

func TestPortfolioCancellationUnblocksBarrier(t *testing.T) {
	// Workers 1..3 sync every step; worker 0 never syncs (it busy-loops on
	// a huge PollEvery-1 loop), so rounds can only complete when the
	// context fires and the exchanger aborts. The whole portfolio must
	// return promptly with the context error.
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	var started atomic.Int32
	_, _, err := Portfolio(ctx, PortfolioOptions{Workers: 4, Seed: 1, SyncEvery: 1},
		toyEnergy,
		func(ctx context.Context, rt *Runtime, seed int64) (*toyResult, error) {
			started.Add(1)
			sync := rt.SyncEvery
			if rt.Worker == 0 {
				sync = 0 // never participates in a round
			}
			loop := NewLoop(ctx, LoopOptions{PollEvery: 1, Runtime: &Runtime{
				Monitor: rt.Monitor, Worker: rt.Worker, SyncEvery: sync, transport: rt.transport,
			}})
			loop.Improved(float64(rt.Worker), func() []int32 { return []int32{0} })
			for loop.Next() {
			}
			return nil, ctx.Err()
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("portfolio took %v to unwind after cancellation", elapsed)
	}
	if started.Load() != 4 {
		t.Fatalf("only %d workers started", started.Load())
	}
}

func TestPortfolioMonitorAggregation(t *testing.T) {
	mon := NewIncumbent()
	_, workers, err := Portfolio(context.Background(), PortfolioOptions{Workers: 3, Seed: 2, Monitor: mon},
		toyEnergy,
		func(ctx context.Context, rt *Runtime, seed int64) (*toyResult, error) {
			loop := NewLoop(ctx, LoopOptions{MaxSteps: 1000, PollEvery: 1, Runtime: rt})
			loop.Improved(float64(rt.Worker+1), func() []int32 { return []int32{int32(rt.Worker)} })
			for loop.Next() {
			}
			return &toyResult{energy: float64(rt.Worker + 1)}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	p := mon.Progress()
	if p.Workers != workers || p.Workers != 3 {
		t.Fatalf("progress workers = %d", p.Workers)
	}
	if p.Steps != 3000 {
		t.Fatalf("progress steps = %d, want 3000", p.Steps)
	}
	if p.BestObjective == nil || *p.BestObjective != 1 {
		t.Fatalf("progress best = %v, want 1", p.BestObjective)
	}
}

func TestRuntimeSolo(t *testing.T) {
	var nilRT *Runtime
	if nilRT.Solo() != nil {
		t.Fatal("nil.Solo() != nil")
	}
	mon := NewIncumbent()
	rt := &Runtime{Monitor: mon, Worker: 3, SyncEvery: 64, transport: NewLocalTransport(2, nil)}
	solo := rt.Solo()
	if solo.Monitor != mon || solo.Worker != 3 {
		t.Fatal("Solo dropped monitor or worker index")
	}
	if solo.transport != nil || solo.SyncEvery != 0 {
		t.Fatal("Solo kept the exchange attachment")
	}
	// A detached runtime's Exchange is a non-blocking no-op.
	if _, _, ok := solo.Exchange(1.0, func() []int32 { return nil }); ok {
		t.Fatal("detached Exchange returned a winner")
	}
}

// TestRuntimeExchangeManual drives manual (level-boundary style) exchanges
// through a real portfolio: every worker deposits its own energy at two
// barriers, and all workers except the best must adopt the best worker's
// assignment.
func TestRuntimeExchangeManual(t *testing.T) {
	const workers = 4
	type got struct {
		adopted []int32
		ok      bool
	}
	results := make([]got, workers)
	_, _, err := Portfolio(context.Background(), PortfolioOptions{Workers: workers, Seed: 9},
		func(int) float64 { return 0 },
		func(ctx context.Context, rt *Runtime, seed int64) (int, error) {
			own := []int32{int32(rt.Worker)}
			// Round 1: worker w deposits energy 10+w; worker 0 wins.
			a, _, ok := rt.Exchange(float64(10+rt.Worker), func() []int32 { return own })
			// Round 2: all workers deposit the same improved energy; no
			// strict improvement for anyone, so nothing is adopted.
			if _, _, ok2 := rt.Exchange(5, func() []int32 { return own }); ok2 {
				return 0, fmt.Errorf("worker %d adopted at equal energy", rt.Worker)
			}
			results[rt.Worker] = got{a, ok}
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for w, r := range results {
		if w == 0 {
			if r.ok {
				t.Fatal("the winning worker adopted its own candidate")
			}
			continue
		}
		if !r.ok || len(r.adopted) != 1 || r.adopted[0] != 0 {
			t.Fatalf("worker %d: adopted=%v ok=%v, want worker 0's candidate", w, r.adopted, r.ok)
		}
	}
}
