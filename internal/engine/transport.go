package engine

import "sync"

// Candidate is one worker's deposited incumbent: a compact partition
// assignment, its objective value, and the (island, worker) coordinates that
// break ties deterministically. The zero value (Has false) is "no candidate
// yet" — a worker that reaches an exchange before any personal best still
// participates in the round.
type Candidate struct {
	// Assign is the partition as compact labels in [0, K).
	Assign []int32
	// Energy is the objective value of Assign (lower is better).
	Energy float64
	// Island identifies the process that produced the candidate in a
	// federated run; 0 for single-process portfolios.
	Island int
	// Worker is the producing worker's local index within its island.
	Worker int
	// Has marks a real deposit; false means the slot is empty.
	Has bool
}

// Less is the deterministic winner order: lowest energy first, ties to the
// lowest island, then the lowest worker index. Every reduction in the
// repository — the in-process barrier, the cross-island relay, and fleet
// clients reducing fanned-out results — uses this one comparison, which is
// what makes a step-capped federated run reproduce: any two sites holding
// the same candidate set pick the same winner.
func (c Candidate) Less(o Candidate) bool {
	if c.Energy != o.Energy {
		return c.Energy < o.Energy
	}
	if c.Island != o.Island {
		return c.Island < o.Island
	}
	return c.Worker < o.Worker
}

// ReduceWinner reduces candidates to the deterministic round winner under
// Candidate.Less, skipping empty slots. ok is false when no candidate Has.
func ReduceWinner(cands []Candidate) (Candidate, bool) {
	var win Candidate
	for _, c := range cands {
		if c.Has && (!win.Has || c.Less(win)) {
			win = c
		}
	}
	return win, win.Has
}

// Transport is the incumbent-exchange boundary of a portfolio: workers
// deposit their personal bests and receive each round's winner through it.
// The in-process implementation (NewLocalTransport) is a barrier over a
// mutex; a federated implementation additionally trades the local round
// winner against peer islands over the network before the round completes.
//
// The contract every implementation honours:
//
//   - Sync deposits worker w's candidate (an empty Candidate re-uses the
//     worker's previous deposit — slots persist across rounds), blocks until
//     the round completes for every active member, and returns the round
//     winner. After Stop, Sync returns the last winner immediately.
//   - Leave withdraws a finished worker; a round in which every remaining
//     member is already waiting completes without the departed worker, so a
//     departure never deadlocks the rest.
//   - Stop aborts all current and future rounds (context cancelled); every
//     blocked Sync returns.
type Transport interface {
	Sync(worker int, own Candidate) (Candidate, bool)
	Leave(worker int)
	Stop()
}

// Relay trades one island's local round winner against its peers and returns
// the global round winner (the deterministic reduction over all islands'
// candidates, including the local one). Implementations block until the
// round completes remotely — an HTTP long-poll in the server's island
// transport — and must unblock when their context is cancelled. ok is false
// when no island (local included) had a candidate; a non-nil error degrades
// the round to the local winner without aborting the run, so a slow or dead
// peer costs quality, never liveness.
type Relay interface {
	Exchange(round uint64, local Candidate) (Candidate, bool, error)
}

// exchanger is the barrier-synchronized incumbent exchange: each round,
// every active worker deposits its personal best, the last arriver reduces
// the round winner (Candidate.Less), and all workers leave the barrier with
// that same winner. Exchanging at step indices behind a barrier — rather
// than whenever wall-clock timing lets a worker peek — is what keeps a
// step-capped portfolio run deterministic.
//
// With a relay attached, the exchanger federates: the last arriver reduces
// the local winner, releases the lock, trades it against the peer islands
// through the relay, and completes the round with the global winner, so
// every local worker leaves the barrier holding the fleet-wide best. Island
// round counters advance in lockstep because every island's run visits the
// same exchange cadence under a step cap.
type exchanger struct {
	mu      sync.Mutex
	cond    *sync.Cond
	members int // workers still participating
	waiting int
	round   uint64
	slots   []Candidate
	winner  Candidate
	stopped bool // context fired: every sync returns immediately

	island int
	relay  Relay
	mon    *Incumbent // exchange-round telemetry; may be nil
}

// NewLocalTransport returns the in-process barrier transport for a
// workers-wide portfolio. mon, when non-nil, receives one AddExchangeRound
// per completed round for live progress reporting.
func NewLocalTransport(workers int, mon *Incumbent) Transport {
	return newExchanger(workers, 0, nil, mon)
}

// NewIslandTransport returns a federated transport: the local barrier of
// NewLocalTransport, plus a relay trade of each round's local winner against
// the peer islands. island stamps deposited candidates for the
// deterministic (energy, island, worker) tie-break.
func NewIslandTransport(workers, island int, relay Relay, mon *Incumbent) Transport {
	return newExchanger(workers, island, relay, mon)
}

func newExchanger(workers, island int, relay Relay, mon *Incumbent) *exchanger {
	x := &exchanger{members: workers, slots: make([]Candidate, workers), island: island, relay: relay, mon: mon}
	x.cond = sync.NewCond(&x.mu)
	return x
}

// Sync deposits worker w's best and blocks until the round completes (all
// active members arrived or the exchanger stopped), returning the round
// winner. Slots persist across rounds, so a worker that stopped early keeps
// contributing its final best.
func (x *exchanger) Sync(w int, own Candidate) (Candidate, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if own.Has {
		own.Island = x.island
		x.slots[w] = own
	}
	if x.stopped || (x.members <= 1 && x.relay == nil) {
		return x.winner, x.winner.Has
	}
	round := x.round
	x.waiting++
	if x.waiting == x.members {
		x.completeRoundLocked()
	} else {
		for x.round == round && !x.stopped {
			x.cond.Wait()
		}
	}
	return x.winner, x.winner.Has
}

// Leave withdraws a finished worker; if everyone else is already waiting,
// the round completes without it.
func (x *exchanger) Leave(int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.members--
	if x.members > 0 && x.waiting == x.members {
		x.completeRoundLocked()
	}
}

// Stop aborts all current and future rounds (context cancelled).
func (x *exchanger) Stop() {
	x.mu.Lock()
	x.stopped = true
	x.cond.Broadcast()
	x.mu.Unlock()
}

// completeRoundLocked reduces the round winner and wakes the waiters. With a
// relay attached, the reduction spans islands: the lock is released around
// the relay call — every member is parked in cond.Wait (or has left), so no
// slot can change underneath it — and a relay failure degrades the round to
// the local winner. Caller holds x.mu.
func (x *exchanger) completeRoundLocked() {
	win, _ := ReduceWinner(x.slots)
	if x.relay != nil && !x.stopped {
		round := x.round
		x.mu.Unlock()
		global, ok, err := x.relay.Exchange(round, win)
		x.mu.Lock()
		if err == nil && ok {
			win = global
		}
	}
	x.waiting = 0
	x.round++
	x.winner = win
	if x.mon != nil {
		x.mon.AddExchangeRound()
	}
	x.cond.Broadcast()
}
