package engine

import (
	"context"
	"runtime"
	"sync"
)

// DeriveSeed maps (base seed, worker index) to statistically independent
// seeds with a splitmix64 finalizer, so parallel workers are not
// seed-correlated. Worker 0 keeps the base seed itself: a one-worker
// portfolio consumes exactly the serial solver's random stream.
func DeriveSeed(base int64, worker int) int64 {
	if worker == 0 {
		return base
	}
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(worker)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Runtime attaches one worker's Loop to the portfolio's shared state. The
// zero value (and nil) mean a standalone serial run.
type Runtime struct {
	// Monitor receives live progress (steps, best objective); may be nil.
	Monitor *Incumbent
	// Worker is this worker's index in [0, Workers).
	Worker int
	// SyncEvery is the incumbent-exchange cadence in loop steps; 0 never
	// exchanges.
	SyncEvery int

	exch *exchanger
}

// Solo returns a runtime that shares this one's monitor and worker index but
// is detached from the portfolio's incumbent exchange. The multilevel
// V-cycle hands it to the coarsest-level solver so live progress keeps
// flowing while exchanges happen only at level boundaries (through
// Exchange), never at the solver's own step cadence — step-cadence
// exchanges would swap partitions of different hierarchy levels between
// workers. A nil receiver returns nil.
func (rt *Runtime) Solo() *Runtime {
	if rt == nil {
		return nil
	}
	return &Runtime{Monitor: rt.Monitor, Worker: rt.Worker}
}

// Exchange performs one manual incumbent exchange outside any Loop: it
// deposits (energy, snapshot()) as this worker's current best, blocks until
// every active worker has reached its own exchange point for this round, and
// returns the round winner's assignment and energy if it strictly beats the
// deposited one and came from another worker. The multilevel V-cycle calls
// it at level boundaries — its natural phase transitions — where all workers
// hold partitions of the same graph, so the traded assignments are
// commensurate. Deterministic for runs whose workers reach the same
// boundaries in the same order (step-capped V-cycles do). On a nil runtime,
// a runtime without portfolio attachment, or after cancellation stopped the
// exchanger, it returns (nil, 0, false) without blocking.
func (rt *Runtime) Exchange(energy float64, snapshot func() []int32) ([]int32, float64, bool) {
	if rt == nil || rt.exch == nil {
		return nil, 0, false
	}
	win, ok := rt.exch.sync(rt.Worker, candidate{assign: snapshot(), energy: energy, worker: rt.Worker, has: true})
	if ok && win.worker != rt.Worker && win.energy < energy {
		return win.assign, win.energy, true
	}
	return nil, 0, false
}

// candidate is one worker's deposited best.
type candidate struct {
	assign []int32
	energy float64
	worker int
	has    bool
}

// exchanger is the barrier-synchronized incumbent exchange: each round,
// every active worker deposits its personal best, the last arriver reduces
// the round winner (lowest energy, ties to the lowest worker id), and all
// workers leave the barrier with that same winner. Exchanging at step
// indices behind a barrier — rather than whenever wall-clock timing lets a
// worker peek — is what keeps a step-capped portfolio run deterministic.
type exchanger struct {
	mu      sync.Mutex
	cond    *sync.Cond
	members int // workers still participating
	waiting int
	round   uint64
	slots   []candidate
	winner  candidate
	stopped bool // context fired: every sync returns immediately
}

func newExchanger(workers int) *exchanger {
	x := &exchanger{members: workers, slots: make([]candidate, workers)}
	x.cond = sync.NewCond(&x.mu)
	return x
}

// sync deposits worker w's best and blocks until the round completes (all
// active members arrived or the exchanger stopped), returning the round
// winner. Slots persist across rounds, so a worker that stopped early keeps
// contributing its final best.
func (x *exchanger) sync(w int, own candidate) (candidate, bool) {
	x.mu.Lock()
	defer x.mu.Unlock()
	if own.has {
		x.slots[w] = own
	}
	if x.stopped || x.members <= 1 {
		return x.winner, x.winner.has
	}
	round := x.round
	x.waiting++
	if x.waiting == x.members {
		x.completeRoundLocked()
	} else {
		for x.round == round && !x.stopped {
			x.cond.Wait()
		}
	}
	return x.winner, x.winner.has
}

// leave withdraws a finished worker; if everyone else is already waiting,
// the round completes without it.
func (x *exchanger) leave() {
	x.mu.Lock()
	defer x.mu.Unlock()
	x.members--
	if x.members > 0 && x.waiting == x.members {
		x.completeRoundLocked()
	}
}

// stop aborts all current and future rounds (context cancelled).
func (x *exchanger) stop() {
	x.mu.Lock()
	x.stopped = true
	x.cond.Broadcast()
	x.mu.Unlock()
}

func (x *exchanger) completeRoundLocked() {
	x.waiting = 0
	x.round++
	win := candidate{}
	for _, c := range x.slots {
		if c.has && (!win.has || c.energy < win.energy) {
			win = c
		}
	}
	x.winner = win
	x.cond.Broadcast()
}

// PortfolioOptions configures a multi-worker portfolio run.
type PortfolioOptions struct {
	// Workers is the number of concurrent solver instances (<= 0 means
	// GOMAXPROCS). With Workers 1 the solve runs inline on the calling
	// goroutine and is bit-identical to a direct serial call.
	Workers int
	// Seed is the base seed; worker w solves with DeriveSeed(Seed, w).
	Seed int64
	// SyncEvery is the incumbent-exchange cadence in loop steps (0 = the
	// workers never exchange and the portfolio is an independent
	// multi-start).
	SyncEvery int
	// Monitor optionally receives live progress from all workers.
	Monitor *Incumbent
}

// Portfolio runs one solver as opt.Workers concurrent, independently seeded
// instances that exchange incumbents through their Loops, and reduces the
// outcomes to a deterministic winner: the lowest energy, ties to the lowest
// worker index. Worker errors are tolerated while at least one worker
// produces a result; if all fail, the lowest-indexed worker's error (or the
// context's, once it fired) is returned.
func Portfolio[R any](ctx context.Context, opt PortfolioOptions,
	energy func(R) float64,
	solve func(ctx context.Context, rt *Runtime, seed int64) (R, error),
) (R, int, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.Monitor != nil {
		opt.Monitor.SetWorkers(workers)
	}
	if workers == 1 {
		rt := &Runtime{Monitor: opt.Monitor, Worker: 0, SyncEvery: opt.SyncEvery}
		res, err := solve(ctx, rt, DeriveSeed(opt.Seed, 0))
		return res, 1, err
	}

	exch := newExchanger(workers)
	watchDone := make(chan struct{})
	go func() { // wake barrier waiters the moment the context fires
		select {
		case <-ctx.Done():
			exch.stop()
		case <-watchDone:
		}
	}()

	results := make([]R, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rt := &Runtime{Monitor: opt.Monitor, Worker: w, SyncEvery: opt.SyncEvery, exch: exch}
			defer exch.leave()
			results[w], errs[w] = solve(ctx, rt, DeriveSeed(opt.Seed, w))
		}(w)
	}
	wg.Wait()
	close(watchDone)

	bestW := -1
	var bestE float64
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			continue
		}
		if e := energy(results[w]); bestW < 0 || e < bestE {
			bestW, bestE = w, e
		}
	}
	if bestW < 0 {
		var zero R
		if err := ctx.Err(); err != nil {
			return zero, workers, err
		}
		for _, err := range errs {
			if err != nil {
				return zero, workers, err
			}
		}
		return zero, workers, errs[0] // unreachable: some err is non-nil
	}
	return results[bestW], workers, nil
}
