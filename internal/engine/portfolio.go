package engine

import (
	"context"
	"runtime"
	"sync"
)

// DeriveSeed maps (base seed, worker index) to statistically independent
// seeds with a splitmix64 finalizer, so parallel workers are not
// seed-correlated. Worker 0 keeps the base seed itself: a one-worker
// portfolio consumes exactly the serial solver's random stream. In a
// federated run the index is the worker's global index across the fleet
// (PortfolioOptions.WorkerOffset + local index), so two islands sharing a
// base seed never run identical streams.
func DeriveSeed(base int64, worker int) int64 {
	if worker == 0 {
		return base
	}
	z := uint64(base) + 0x9e3779b97f4a7c15*uint64(worker)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Runtime attaches one worker's Loop to the portfolio's shared state. The
// zero value (and nil) mean a standalone serial run.
type Runtime struct {
	// Monitor receives live progress (steps, best objective); may be nil.
	Monitor *Incumbent
	// Worker is this worker's index in [0, Workers).
	Worker int
	// Island is this process's island index in a federated run; 0 otherwise.
	// Winner candidates carry (island, worker) coordinates, so a worker
	// recognizes its own round win only when both match.
	Island int
	// SyncEvery is the incumbent-exchange cadence in loop steps; 0 never
	// exchanges.
	SyncEvery int

	transport Transport
}

// Solo returns a runtime that shares this one's monitor, worker index and
// island but is detached from the portfolio's incumbent exchange. The
// multilevel V-cycle hands it to the coarsest-level solver so live progress
// keeps flowing while exchanges happen only at level boundaries (through
// Exchange), never at the solver's own step cadence — step-cadence
// exchanges would swap partitions of different hierarchy levels between
// workers. A nil receiver returns nil.
func (rt *Runtime) Solo() *Runtime {
	if rt == nil {
		return nil
	}
	return &Runtime{Monitor: rt.Monitor, Worker: rt.Worker, Island: rt.Island}
}

// Exchange performs one manual incumbent exchange outside any Loop: it
// deposits (energy, snapshot()) as this worker's current best, blocks until
// every active worker has reached its own exchange point for this round, and
// returns the round winner's assignment and energy if it strictly beats the
// deposited one and came from another worker (or another island). The
// multilevel V-cycle calls it at level boundaries — its natural phase
// transitions — where all workers hold partitions of the same graph, so the
// traded assignments are commensurate. Deterministic for runs whose workers
// reach the same boundaries in the same order (step-capped V-cycles do). On
// a nil runtime, a runtime without transport attachment, or after
// cancellation stopped the transport, it returns (nil, 0, false) without
// blocking.
func (rt *Runtime) Exchange(energy float64, snapshot func() []int32) ([]int32, float64, bool) {
	if rt == nil || rt.transport == nil {
		return nil, 0, false
	}
	win, ok := rt.transport.Sync(rt.Worker, Candidate{Assign: snapshot(), Energy: energy, Worker: rt.Worker, Has: true})
	if ok && !rt.ownCandidate(win) && win.Energy < energy {
		return win.Assign, win.Energy, true
	}
	return nil, 0, false
}

// ownCandidate reports whether c was deposited by this very worker.
func (rt *Runtime) ownCandidate(c Candidate) bool {
	return c.Island == rt.Island && c.Worker == rt.Worker
}

// PortfolioOptions configures a multi-worker portfolio run.
type PortfolioOptions struct {
	// Workers is the number of concurrent solver instances (<= 0 means
	// GOMAXPROCS). With Workers 1 the solve runs inline on the calling
	// goroutine and is bit-identical to a direct serial call.
	Workers int
	// Seed is the base seed; worker w solves with
	// DeriveSeed(Seed, WorkerOffset+w).
	Seed int64
	// SyncEvery is the incumbent-exchange cadence in loop steps (0 = the
	// workers never exchange at step indices; manual Runtime.Exchange
	// boundaries still work).
	SyncEvery int
	// Monitor optionally receives live progress from all workers.
	Monitor *Incumbent
	// Island is this process's island index in a federated run; it stamps
	// deposited candidates for the deterministic (energy, island, worker)
	// tie-break. 0 for single-process runs.
	Island int
	// WorkerOffset is added to local worker indices when deriving seeds —
	// island*width in a federated fleet — so every worker across the fleet
	// draws from a distinct stream even though all islands share Seed.
	WorkerOffset int
	// Relay, when non-nil, federates the portfolio: each exchange round's
	// local winner is traded against the peer islands and the global winner
	// is what every worker receives. A relay forces the transport path even
	// for Workers 1 (a one-worker island still gossips).
	Relay Relay
}

// Portfolio runs one solver as opt.Workers concurrent, independently seeded
// instances that exchange incumbents through a Transport (the in-process
// barrier, federated across islands when a Relay is attached), and reduces
// the outcomes to a deterministic winner: the lowest energy, ties to the
// lowest worker index. Worker errors are tolerated while at least one worker
// produces a result; if all fail, the lowest-indexed worker's error (or the
// context's, once it fired) is returned.
func Portfolio[R any](ctx context.Context, opt PortfolioOptions,
	energy func(R) float64,
	solve func(ctx context.Context, rt *Runtime, seed int64) (R, error),
) (R, int, error) {
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if opt.Monitor != nil {
		opt.Monitor.SetWorkers(workers)
		if opt.Relay != nil {
			opt.Monitor.SetIsland(opt.Island)
		}
	}
	if workers == 1 && opt.Relay == nil {
		rt := &Runtime{Monitor: opt.Monitor, Worker: 0, Island: opt.Island, SyncEvery: opt.SyncEvery}
		res, err := solve(ctx, rt, DeriveSeed(opt.Seed, opt.WorkerOffset))
		return res, 1, err
	}

	exch := newExchanger(workers, opt.Island, opt.Relay, opt.Monitor)
	watchDone := make(chan struct{})
	go func() { // wake barrier waiters the moment the context fires
		select {
		case <-ctx.Done():
			exch.Stop()
		case <-watchDone:
		}
	}()

	results := make([]R, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rt := &Runtime{Monitor: opt.Monitor, Worker: w, Island: opt.Island, SyncEvery: opt.SyncEvery, transport: exch}
			defer exch.Leave(w)
			results[w], errs[w] = solve(ctx, rt, DeriveSeed(opt.Seed, opt.WorkerOffset+w))
		}(w)
	}
	wg.Wait()
	close(watchDone)

	bestW := -1
	var bestE float64
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			continue
		}
		if e := energy(results[w]); bestW < 0 || e < bestE {
			bestW, bestE = w, e
		}
	}
	if bestW < 0 {
		var zero R
		if err := ctx.Err(); err != nil {
			return zero, workers, err
		}
		for _, err := range errs {
			if err != nil {
				return zero, workers, err
			}
		}
		return zero, workers, errs[0] // unreachable: some err is non-nil
	}
	return results[bestW], workers, nil
}
