package engine

import (
	"context"
	"testing"
)

// BenchmarkLoopStep measures the per-step overhead the engine adds to a
// solver's hot loop (step accounting + cadenced polling, no runtime).
func BenchmarkLoopStep(b *testing.B) {
	loop := NewLoop(context.Background(), LoopOptions{MaxSteps: b.N, PollEvery: 64})
	b.ReportAllocs()
	for loop.Next() {
	}
	if loop.Steps() != b.N {
		b.Fatalf("granted %d of %d steps", loop.Steps(), b.N)
	}
}

// BenchmarkLoopStepPollEvery1 is the worst-case cadence: a context check on
// every step (fusion-fission and the ant colony run this way).
func BenchmarkLoopStepPollEvery1(b *testing.B) {
	loop := NewLoop(context.Background(), LoopOptions{MaxSteps: b.N, PollEvery: 1})
	b.ReportAllocs()
	for loop.Next() {
	}
}

// BenchmarkPortfolioExchange measures portfolio scheduling plus one
// incumbent exchange per 64 steps across 4 toy workers — the engine-side
// cost floor of a KaFFPaE-style run, with no solver work at all.
func BenchmarkPortfolioExchange(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, _, err := Portfolio(context.Background(), PortfolioOptions{Workers: 4, Seed: 1, SyncEvery: 64},
			func(r int) float64 { return float64(r) },
			func(ctx context.Context, rt *Runtime, seed int64) (int, error) {
				loop := NewLoop(ctx, LoopOptions{MaxSteps: 4096, PollEvery: 64, Runtime: rt})
				loop.Improved(float64(rt.Worker), func() []int32 { return []int32{int32(rt.Worker)} })
				for loop.Next() {
				}
				return rt.Worker, nil
			})
		if err != nil {
			b.Fatal(err)
		}
	}
}
