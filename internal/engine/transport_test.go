package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestDeriveSeedWorkerOffset pins the federated seed schedule: worker w of
// an island with offset o solves with DeriveSeed(base, o+w), worker 0 of
// island 0 keeps the base seed (serial bit-identity), and no two workers
// anywhere in a fleet share a stream.
func TestDeriveSeedWorkerOffset(t *testing.T) {
	const base, width = 42, 4

	if got := DeriveSeed(base, 0); got != base {
		t.Fatalf("DeriveSeed(base, 0) = %d, want the base seed %d", got, base)
	}

	// A portfolio with a worker offset must hand worker w the seed of
	// global index offset+w, not local index w.
	seeds := make([]int64, width)
	_, _, err := Portfolio(context.Background(),
		PortfolioOptions{Workers: width, Seed: base, Island: 1, WorkerOffset: 1 * width},
		func(int) float64 { return 0 },
		func(ctx context.Context, rt *Runtime, seed int64) (int, error) {
			seeds[rt.Worker] = seed
			if rt.Island != 1 {
				return 0, errors.New("runtime lost its island index")
			}
			return 0, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < width; w++ {
		if want := DeriveSeed(base, width+w); seeds[w] != want {
			t.Fatalf("island 1 worker %d got seed %d, want DeriveSeed(base, %d) = %d",
				w, seeds[w], width+w, want)
		}
	}

	// The regression this guards: before the offset, island i worker w used
	// DeriveSeed(base, w), so every island ran identical streams. Across a
	// 3-island fleet of width 4, all 12 derived seeds must be distinct.
	seen := map[int64]string{}
	for island := 0; island < 3; island++ {
		for w := 0; w < width; w++ {
			s := DeriveSeed(base, island*width+w)
			if prev, dup := seen[s]; dup {
				t.Fatalf("island %d worker %d collides with %s on seed %d", island, w, prev, s)
			}
			seen[s] = fmt.Sprintf("island %d worker %d", island, w)
		}
	}
}

// recordingRelay is a scriptable Relay for transport tests: it records every
// (round, local winner) it is handed and answers from a queue of outcomes.
type recordingRelay struct {
	mu     sync.Mutex
	rounds []uint64
	locals []Candidate
	global Candidate // returned when err is nil
	err    error
}

func (r *recordingRelay) Exchange(round uint64, local Candidate) (Candidate, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rounds = append(r.rounds, round)
	r.locals = append(r.locals, local)
	if r.err != nil {
		return Candidate{}, false, r.err
	}
	return r.global, r.global.Has, nil
}

// TestIslandTransportRelay drives the federated barrier with a scripted
// relay: the relay must receive each round's local winner, its global winner
// must be what every worker leaves the barrier with, and a relay failure
// must degrade the round to the local winner instead of wedging or aborting.
func TestIslandTransportRelay(t *testing.T) {
	relay := &recordingRelay{
		global: Candidate{Assign: []int32{9}, Energy: 1, Island: 0, Worker: 2, Has: true},
	}
	mon := NewIncumbent()
	tr := NewIslandTransport(2, 1, relay, mon)

	sync2 := func(e0, e1 float64) [2]Candidate {
		var got [2]Candidate
		var wg sync.WaitGroup
		for w, e := range []float64{e0, e1} {
			wg.Add(1)
			go func(w int, e float64) {
				defer wg.Done()
				win, ok := tr.Sync(w, Candidate{Assign: []int32{int32(w)}, Energy: e, Worker: w, Has: true})
				if !ok {
					t.Errorf("worker %d: round returned no winner", w)
				}
				got[w] = win
			}(w, e)
		}
		wg.Wait()
		return got
	}

	// Round 0: local winner is worker 1 (energy 3); the relay's global
	// winner (island 0, energy 1) must reach both workers.
	got := sync2(5, 3)
	for w, win := range got {
		if win.Energy != 1 || win.Island != 0 {
			t.Fatalf("worker %d left round 0 with %+v, want the relay's global winner", w, win)
		}
	}
	relay.mu.Lock()
	if len(relay.rounds) != 1 || relay.rounds[0] != 0 {
		t.Fatalf("relay saw rounds %v, want [0]", relay.rounds)
	}
	local := relay.locals[0]
	relay.mu.Unlock()
	if local.Energy != 3 || local.Island != 1 || local.Worker != 1 {
		t.Fatalf("relay was handed %+v, want worker 1's energy-3 candidate stamped island 1", local)
	}

	// Round 1: the relay fails; the round must degrade to the local winner
	// (worker 1 again, now energy 2) without blocking either worker.
	relay.mu.Lock()
	relay.err = errors.New("peer unreachable")
	relay.mu.Unlock()
	got = sync2(5, 2)
	for w, win := range got {
		if win.Energy != 2 || win.Island != 1 || win.Worker != 1 {
			t.Fatalf("worker %d left the degraded round with %+v, want the local winner", w, win)
		}
	}
	if n := mon.ExchangeRounds(); n != 2 {
		t.Fatalf("monitor counted %d exchange rounds, want 2", n)
	}
}

// TestOneWorkerIslandStillGossips: a width-1 portfolio with a relay must
// round through the barrier (the island still deposits and receives global
// winners) instead of taking the serial fast path.
func TestOneWorkerIslandStillGossips(t *testing.T) {
	relay := &recordingRelay{
		global: Candidate{Assign: []int32{7}, Energy: 0.5, Island: 0, Has: true},
	}
	tr := NewIslandTransport(1, 2, relay, nil)
	win, ok := tr.Sync(0, Candidate{Assign: []int32{0}, Energy: 4, Worker: 0, Has: true})
	if !ok || win.Energy != 0.5 || win.Island != 0 {
		t.Fatalf("one-worker island got %+v ok=%v, want the relay's global winner", win, ok)
	}
	relay.mu.Lock()
	defer relay.mu.Unlock()
	if len(relay.locals) != 1 || relay.locals[0].Island != 2 {
		t.Fatalf("relay saw %+v, want one island-2 deposit", relay.locals)
	}
}

// slowFlakyRelay sleeps and fails pseudo-randomly, stressing the
// lock-release window completeRoundLocked opens around the relay call.
type slowFlakyRelay struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (r *slowFlakyRelay) Exchange(round uint64, local Candidate) (Candidate, bool, error) {
	r.mu.Lock()
	sleep := time.Duration(r.rng.Intn(200)) * time.Microsecond
	fail := r.rng.Intn(3) == 0
	r.mu.Unlock()
	time.Sleep(sleep)
	if fail {
		return Candidate{}, false, errors.New("flaky")
	}
	return local, local.Has, nil
}

// TestExchangerLeaveStopRandomized hammers the barrier's departure and
// cancellation edges: workers run different numbers of rounds (so departures
// happen while peers are parked mid-round), a stopper may fire at a random
// instant, and half the runs add a slow, flaky relay. The invariant under
// -race: every Sync returns — a departing worker or a cancellation never
// deadlocks the remaining members.
func TestExchangerLeaveStopRandomized(t *testing.T) {
	for iter := 0; iter < 40; iter++ {
		rng := rand.New(rand.NewSource(int64(1000 + iter)))
		workers := 2 + rng.Intn(5)
		withStop := iter%2 == 0
		var relay Relay
		if iter%4 < 2 {
			relay = &slowFlakyRelay{rng: rand.New(rand.NewSource(int64(iter)))}
		}
		tr := newExchanger(workers, 1, relay, nil)

		rounds := make([]int, workers)
		for w := range rounds {
			rounds[w] = 1 + rng.Intn(8)
		}
		stopAfter := time.Duration(rng.Intn(2000)) * time.Microsecond

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				defer tr.Leave(w)
				for r := 0; r < rounds[w]; r++ {
					tr.Sync(w, Candidate{Assign: []int32{int32(w)}, Energy: float64(w + r), Worker: w, Has: true})
				}
			}(w)
		}
		if withStop {
			wg.Add(1)
			go func() {
				defer wg.Done()
				time.Sleep(stopAfter)
				tr.Stop()
			}()
		}

		done := make(chan struct{})
		go func() { wg.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("iter %d (workers=%d stop=%v relay=%v rounds=%v): barrier deadlocked",
				iter, workers, withStop, relay != nil, rounds)
		}
	}
}
