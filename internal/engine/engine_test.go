package engine

import (
	"context"
	"testing"
	"time"
)

func TestPollCadence(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := NewPoll(ctx, 4)
	for i := 0; i < 12; i++ {
		if p.Due() {
			t.Fatalf("call %d: due before cancellation", i)
		}
	}
	cancel()
	// Calls 12..15 fall inside the current cadence window; the check at
	// call 16 must observe the cancellation at the latest.
	fired := false
	for i := 0; i < 5 && !fired; i++ {
		fired = p.Due()
	}
	if !fired {
		t.Fatal("poll never observed the cancellation")
	}
	if !p.Due() {
		t.Fatal("a fired poll must stay fired")
	}
	if p.Err() == nil {
		t.Fatal("fired poll reports nil Err")
	}
}

func TestLoopGrantsExactlyMaxSteps(t *testing.T) {
	loop := NewLoop(context.Background(), LoopOptions{MaxSteps: 137})
	n := 0
	for loop.Next() {
		n++
	}
	if n != 137 || loop.Steps() != 137 {
		t.Fatalf("granted %d steps (Steps() = %d), want 137", n, loop.Steps())
	}
	if loop.Cancelled() {
		t.Fatal("step-capped run marked cancelled")
	}
}

func TestLoopBudgetStops(t *testing.T) {
	loop := NewLoop(context.Background(), LoopOptions{Budget: time.Millisecond, BudgetEvery: 1})
	deadline := time.Now().Add(5 * time.Second)
	for loop.Next() {
		if time.Now().After(deadline) {
			t.Fatal("budget never stopped the loop")
		}
	}
	if loop.Cancelled() {
		t.Fatal("budget exhaustion must not look like cancellation")
	}
}

func TestLoopCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	loop := NewLoop(ctx, LoopOptions{PollEvery: 1})
	for i := 0; i < 10; i++ {
		if !loop.Next() {
			t.Fatal("stopped before cancellation")
		}
	}
	cancel()
	if loop.Next() {
		t.Fatal("granted a step after cancellation with PollEvery 1")
	}
	if !loop.Cancelled() {
		t.Fatal("Cancelled not set")
	}
	if loop.Next() {
		t.Fatal("a stopped loop granted another step")
	}
}

func TestLoopPollNow(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	loop := NewLoop(ctx, LoopOptions{PollEvery: 1 << 20})
	if loop.PollNow() {
		t.Fatal("PollNow fired early")
	}
	cancel()
	if !loop.PollNow() {
		t.Fatal("PollNow missed the cancellation")
	}
	if !loop.Cancelled() {
		t.Fatal("PollNow did not record the cancellation")
	}
}

func TestLoopTraceAndImproved(t *testing.T) {
	loop := NewLoop(context.Background(), LoopOptions{MaxSteps: 10})
	loop.Improved(5, func() []int32 { return []int32{0} })
	for loop.Next() {
	}
	loop.Improved(3, func() []int32 { return []int32{1} })
	loop.Mark(3)
	tr := loop.Trace()
	if len(tr) != 3 || tr[0].Energy != 5 || tr[1].Energy != 3 || tr[2].Energy != 3 {
		t.Fatalf("trace = %+v", tr)
	}
	if _, _, ok := loop.Foreign(); ok {
		t.Fatal("standalone loop produced a foreign incumbent")
	}
}

func TestIncumbentOfferAndBest(t *testing.T) {
	inc := NewIncumbent()
	if _, _, ok := inc.Best(); ok {
		t.Fatal("empty incumbent has a best")
	}
	if !inc.Offer(7, func() []int32 { return []int32{1, 2} }) {
		t.Fatal("first offer rejected")
	}
	if inc.Offer(7, func() []int32 { t.Fatal("snapshot taken for a losing offer"); return nil }) {
		t.Fatal("equal-energy offer accepted")
	}
	if !inc.Offer(5, func() []int32 { return []int32{3, 4} }) {
		t.Fatal("better offer rejected")
	}
	assign, e, ok := inc.Best()
	if !ok || e != 5 || len(assign) != 2 || assign[0] != 3 {
		t.Fatalf("Best = %v, %v, %v", assign, e, ok)
	}
	assign[0] = 99 // the copy-out must be isolated
	again, _, _ := inc.Best()
	if again[0] != 3 {
		t.Fatal("Best returned a shared slice")
	}
}

func TestIncumbentProgress(t *testing.T) {
	inc := NewIncumbent()
	inc.SetWorkers(4)
	inc.AddSteps(100)
	inc.AddSteps(50)
	p := inc.Progress()
	if p.Steps != 150 || p.Workers != 4 || p.BestObjective != nil {
		t.Fatalf("progress = %+v", p)
	}
	inc.Offer(2.5, nil)
	p = inc.Progress()
	if p.BestObjective == nil || *p.BestObjective != 2.5 {
		t.Fatalf("best not surfaced: %+v", p)
	}
}

func TestDeriveSeed(t *testing.T) {
	if DeriveSeed(42, 0) != 42 {
		t.Fatal("worker 0 must keep the base seed")
	}
	seen := map[int64]bool{}
	for w := 0; w < 100; w++ {
		seen[DeriveSeed(42, w)] = true
	}
	if len(seen) != 100 {
		t.Fatalf("seed collisions: %d distinct of 100", len(seen))
	}
	if DeriveSeed(1, 1) == DeriveSeed(2, 1) {
		t.Fatal("different bases gave the same worker-1 seed")
	}
}
