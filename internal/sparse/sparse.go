// Package sparse provides the symmetric sparse-matrix substrate for the
// spectral partitioning methods: CSR storage, matrix-vector products, and
// graph Laplacian constructors.
package sparse

import (
	"math"

	"repro/internal/graph"
)

// Matrix is a symmetric sparse matrix in CSR form with an explicit diagonal.
// Only the off-diagonal pattern is stored in CSR; the diagonal is dense.
type Matrix struct {
	n    int
	xadj []int32
	cols []int32
	vals []float64
	diag []float64
}

// Dim returns the matrix dimension.
func (m *Matrix) Dim() int { return m.n }

// Diag returns the dense diagonal (shared; callers must not modify).
func (m *Matrix) Diag() []float64 { return m.diag }

// MulVec computes dst = M x. dst and x must have length Dim and not alias.
func (m *Matrix) MulVec(dst, x []float64) {
	for i := 0; i < m.n; i++ {
		s := m.diag[i] * x[i]
		for j := m.xadj[i]; j < m.xadj[i+1]; j++ {
			s += m.vals[j] * x[m.cols[j]]
		}
		dst[i] = s
	}
}

// Laplacian returns L = D - W for the weighted graph g, where D is the
// diagonal of weighted degrees and W the weighted adjacency matrix.
// L is symmetric positive semidefinite with L·1 = 0.
func Laplacian(g *graph.Graph) *Matrix {
	n := g.NumVertices()
	m := &Matrix{
		n:    n,
		xadj: make([]int32, n+1),
		diag: make([]float64, n),
	}
	nnz := 0
	for v := 0; v < n; v++ {
		nnz += g.Degree(v)
		m.xadj[v+1] = int32(nnz)
	}
	m.cols = make([]int32, nnz)
	m.vals = make([]float64, nnz)
	for v := 0; v < n; v++ {
		nbrs := g.Neighbors(v)
		wts := g.Weights(v)
		base := m.xadj[v]
		d := 0.0
		for i, u := range nbrs {
			m.cols[base+int32(i)] = u
			m.vals[base+int32(i)] = -wts[i]
			d += wts[i]
		}
		m.diag[v] = d
	}
	return m
}

// Adjacency returns the weighted adjacency matrix W of g (zero diagonal).
func Adjacency(g *graph.Graph) *Matrix {
	l := Laplacian(g)
	w := &Matrix{n: l.n, xadj: l.xadj, cols: l.cols, diag: make([]float64, l.n)}
	w.vals = make([]float64, len(l.vals))
	for i, v := range l.vals {
		w.vals[i] = -v
	}
	return w
}

// NormalizedLaplacian returns Lsym = D^{-1/2} (D - W) D^{-1/2} together with
// the scaling vector s with s[i] = d(i)^{-1/2} (s[i] = 0 for isolated
// vertices). Eigenvectors y of Lsym map to generalized eigenvectors
// x = s .* y of (D - W) x = lambda D x, the system the paper associates with
// the Ncut criterion.
func NormalizedLaplacian(g *graph.Graph) (*Matrix, []float64) {
	l := Laplacian(g)
	s := make([]float64, l.n)
	for i, d := range l.diag {
		if d > 0 {
			s[i] = 1 / math.Sqrt(d)
		}
	}
	nm := &Matrix{n: l.n, xadj: l.xadj, cols: l.cols, diag: make([]float64, l.n)}
	nm.vals = make([]float64, len(l.vals))
	for i := 0; i < l.n; i++ {
		if l.diag[i] > 0 {
			nm.diag[i] = 1
		}
		for j := l.xadj[i]; j < l.xadj[i+1]; j++ {
			nm.vals[j] = l.vals[j] * s[i] * s[l.cols[j]]
		}
	}
	return nm, s
}
