package sparse

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestLaplacianQuadraticFormEqualsCut(t *testing.T) {
	// x^T L x = sum over edges w(u,v) (x_u - x_v)^2; with x in {-1,+1} this
	// is 4 * crossing weight (the spectral identity from section 2.1).
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(20)
		g := graph.GNP(n, 0.3, seed)
		l := Laplacian(g)
		x := make([]float64, n)
		for i := range x {
			if r.Intn(2) == 0 {
				x[i] = -1
			} else {
				x[i] = 1
			}
		}
		lx := make([]float64, n)
		l.MulVec(lx, x)
		xlx := 0.0
		for i := range x {
			xlx += x[i] * lx[i]
		}
		cut := 0.0
		g.ForEachEdge(func(u, v int, w float64) {
			if x[u] != x[v] {
				cut += w
			}
		})
		return math.Abs(xlx-4*cut) < 1e-9*(1+math.Abs(xlx))
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestLaplacianRowSumsZero(t *testing.T) {
	g := graph.RandomGeometric(30, 0.3, 5)
	l := Laplacian(g)
	ones := make([]float64, 30)
	for i := range ones {
		ones[i] = 1
	}
	out := make([]float64, 30)
	l.MulVec(out, ones)
	for i, v := range out {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("row %d sum = %g", i, v)
		}
	}
}

func TestAdjacencyMulVec(t *testing.T) {
	g := graph.Path(4) // 0-1-2-3
	w := Adjacency(g)
	x := []float64{1, 0, 0, 2}
	out := make([]float64, 4)
	w.MulVec(out, x)
	want := []float64{0, 1, 2, 0}
	for i := range want {
		if math.Abs(out[i]-want[i]) > 1e-14 {
			t.Fatalf("out[%d] = %g, want %g", i, out[i], want[i])
		}
	}
}

func TestNormalizedLaplacianProperties(t *testing.T) {
	g := graph.Cycle(10)
	nl, s := NormalizedLaplacian(g)
	// For a regular graph, Lsym = L/d; cycle has d = 2.
	// Its null vector is D^{1/2} 1, i.e. proportional to the constant for
	// regular graphs.
	x := make([]float64, 10)
	for i := range x {
		x[i] = 1
	}
	out := make([]float64, 10)
	nl.MulVec(out, x)
	for i, v := range out {
		if math.Abs(v) > 1e-12 {
			t.Fatalf("Lsym * 1 row %d = %g for regular graph", i, v)
		}
	}
	for i, v := range s {
		if math.Abs(v-1/math.Sqrt(2)) > 1e-12 {
			t.Fatalf("scale[%d] = %g", i, v)
		}
	}
	if nl.Diag()[0] != 1 {
		t.Fatalf("normalized diagonal = %g, want 1", nl.Diag()[0])
	}
}
