//go:build !amd64

package partition

// useAVX2 is false on architectures without the AVX2 kernel; every scan
// takes the portable minKeyScanGeneric path.
const useAVX2 = false

// HasAVX2 reports whether this package's AVX2 kernels are active: never, on
// architectures without them.
func HasAVX2() bool { return false }

// minKeyScanAVX2 is never called when useAVX2 is false; this stub keeps the
// portable build compiling.
func minKeyScanAVX2(p *uint64, n, exclude int) (mk uint64, idx int) {
	panic("partition: minKeyScanAVX2 without AVX2 support")
}
