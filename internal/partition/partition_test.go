package partition

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func mustFrom(t *testing.T, g *graph.Graph, assign []int32, k int) *P {
	t.Helper()
	p, err := FromAssignment(g, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBisectionStats(t *testing.T) {
	// Path 0-1-2-3 split as {0,1} {2,3}: one crossing edge.
	g := graph.Path(4)
	p := mustFrom(t, g, []int32{0, 0, 1, 1}, 2)
	if p.NumParts() != 2 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
	if p.CrossingWeight() != 1 {
		t.Fatalf("crossing = %g, want 1", p.CrossingWeight())
	}
	if p.PartCut(0) != 1 || p.PartCut(1) != 1 {
		t.Fatalf("cuts = %g,%g", p.PartCut(0), p.PartCut(1))
	}
	if p.PartInternalOrdered(0) != 2 || p.PartInternalOrdered(1) != 2 {
		t.Fatalf("W(A) = %g,%g, want 2,2", p.PartInternalOrdered(0), p.PartInternalOrdered(1))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveUpdatesStats(t *testing.T) {
	g := graph.Cycle(6)
	p := mustFrom(t, g, []int32{0, 0, 0, 1, 1, 1}, 2)
	if p.CrossingWeight() != 2 {
		t.Fatalf("crossing = %g, want 2", p.CrossingWeight())
	}
	p.Move(2, 1)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.PartSize(0) != 2 || p.PartSize(1) != 4 {
		t.Fatalf("sizes = %d,%d", p.PartSize(0), p.PartSize(1))
	}
	if p.CrossingWeight() != 2 {
		t.Fatalf("crossing after move = %g, want 2", p.CrossingWeight())
	}
	// Move back restores.
	p.Move(2, 0)
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMoveEmptiesAndRevivesParts(t *testing.T) {
	g := graph.Path(3)
	p := mustFrom(t, g, []int32{0, 1, 2}, 4)
	if p.NumParts() != 3 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
	p.Move(1, 0) // part 1 now empty
	if p.NumParts() != 2 {
		t.Fatalf("NumParts after emptying = %d", p.NumParts())
	}
	if p.EmptySlot() == -1 {
		t.Fatal("expected an empty slot")
	}
	p.Move(2, 3) // occupy slot 3
	if p.NumParts() != 2 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMergeParts(t *testing.T) {
	g := graph.Grid2D(4, 4)
	assign := make([]int32, 16)
	for v := range assign {
		assign[v] = int32(v % 4)
	}
	p := mustFrom(t, g, assign, 4)
	p.MergeParts(0, 3)
	if p.NumParts() != 3 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
	if p.PartSize(3) != 0 || p.PartSize(0) != 8 {
		t.Fatalf("sizes after merge: %d, %d", p.PartSize(3), p.PartSize(0))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionAndConnectedParts(t *testing.T) {
	g := graph.Path(5) // 0-1-2-3-4
	p := mustFrom(t, g, []int32{0, 0, 1, 2, 2}, 3)
	if c := p.ConnectionToPart(2, 0); c != 1 {
		t.Fatalf("ConnectionToPart(2,0) = %g", c)
	}
	if c := p.ConnectionToPart(2, 2); c != 1 {
		t.Fatalf("ConnectionToPart(2,2) = %g", c)
	}
	cp := p.ConnectedParts(1)
	if len(cp) != 2 || cp[0] != 1 || cp[2] != 1 {
		t.Fatalf("ConnectedParts(1) = %v", cp)
	}
}

func TestCloneAndCopyFromIndependence(t *testing.T) {
	g := graph.Cycle(8)
	p := mustFrom(t, g, []int32{0, 0, 0, 0, 1, 1, 1, 1}, 2)
	q := p.Clone()
	p.Move(0, 1)
	if q.Part(0) != 0 {
		t.Fatal("clone mutated by original")
	}
	q.CopyFrom(p)
	if q.Part(0) != 1 {
		t.Fatal("CopyFrom did not copy")
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompact(t *testing.T) {
	g := graph.Path(4)
	p := mustFrom(t, g, []int32{5, 5, 9, 2}, 12)
	c := p.Compact()
	if c[0] != 0 || c[1] != 0 || c[2] != 1 || c[3] != 2 {
		t.Fatalf("Compact = %v", c)
	}
}

func TestVerticesOf(t *testing.T) {
	g := graph.Path(5)
	p := mustFrom(t, g, []int32{1, 0, 1, 0, 1}, 2)
	vs := p.VerticesOf(1)
	if len(vs) != 3 || vs[0] != 0 || vs[1] != 2 || vs[2] != 4 {
		t.Fatalf("VerticesOf(1) = %v", vs)
	}
}

// Property: an arbitrary sequence of random moves keeps the incrementally
// tracked statistics identical to a from-scratch recomputation.
func TestRandomMovesStayConsistent(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 5 + r.Intn(40)
		g := graph.GNP(n, 0.15, seed+1)
		k := 2 + r.Intn(5)
		assign := make([]int32, n)
		for v := range assign {
			assign[v] = int32(r.Intn(k))
		}
		p, err := FromAssignment(g, assign, k)
		if err != nil {
			return false
		}
		for step := 0; step < 200; step++ {
			p.Move(r.Intn(n), r.Intn(k))
		}
		return p.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sum over parts of cut(A) equals exactly twice the crossing
// weight, and internal+crossing equals the graph's total edge weight.
func TestCutIdentities(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 4 + r.Intn(30)
		g := graph.RandomGeometric(n, 0.4, seed)
		k := 2 + r.Intn(4)
		p := New(g, k)
		for v := 0; v < n; v++ {
			p.Assign(v, r.Intn(k))
		}
		sumCut, sumInt := 0.0, 0.0
		for a := 0; a < k; a++ {
			sumCut += p.PartCut(a)
			sumInt += p.PartInternalOrdered(a) / 2
		}
		if math.Abs(sumCut-2*p.CrossingWeight()) > 1e-9 {
			return false
		}
		return math.Abs(sumInt+p.CrossingWeight()-g.TotalEdgeWeight()) < 1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// referenceMinInternal is MinInternalPart's specification: scan non-empty
// parts in ascending id order, keep the first strictly smaller internal
// weight, skip the excluded part.
func referenceMinInternal(p *P, exclude int) int {
	best := -1
	bestW := math.Inf(1)
	for _, a := range p.NonEmptyParts() {
		if a == exclude {
			continue
		}
		if w := p.PartInternalOrdered(a); w < bestW {
			best, bestW = a, w
		}
	}
	return best
}

// Property: the incrementally tracked two-smallest argmin answers every
// MinInternalPart query identically to the from-scratch reference scan,
// under arbitrary interleavings of moves, queries, bulk restores, and the
// annealer's hot-phase "move into the argmin part" pattern (which is what
// repeatedly pushes the tracked minimum past the runner-up and exercises
// the lazy-rescan cases).
func TestMinInternalPartMatchesReference(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 6 + r.Intn(50)
		g := graph.GNP(n, 0.2, seed+3)
		if seed%2 == 0 {
			// Odd seeds keep the generator's unit weights (the narrow
			// composite-key path); even seeds rebuild with fractional edge
			// weights and self-loops so the wide bit-mapped-key path and
			// its vector kernel stay covered by the same property.
			b := graph.NewBuilder(n)
			g.ForEachEdge(func(u, v int, w float64) {
				b.AddEdge(u, v, float64(1+r.Intn(12))/4)
			})
			for v := 0; v < n; v += 3 {
				b.AddSelfLoop(v, float64(r.Intn(5))/2+0.5)
			}
			g = b.MustBuild()
		}
		k := 2 + r.Intn(12)
		capacity := k + r.Intn(4)
		assign := make([]int32, n)
		for v := range assign {
			assign[v] = int32(r.Intn(k))
		}
		p, err := FromAssignment(g, assign, capacity)
		if err != nil {
			return false
		}
		snap := p.Clone()
		query := func() bool {
			exclude := -1
			switch r.Intn(3) {
			case 0:
				exclude = r.Intn(capacity)
			case 1:
				exclude = p.Part(r.Intn(n)) // the annealer's form
			}
			return p.MinInternalPart(exclude) == referenceMinInternal(p, exclude)
		}
		for step := 0; step < 400; step++ {
			switch r.Intn(10) {
			case 0:
				p.CopyFrom(snap)
			case 1:
				snap.CopyFrom(p)
			case 2, 3:
				p.Move(r.Intn(n), r.Intn(capacity))
			default:
				// Hot-phase pattern: query, then feed the argmin part.
				v := r.Intn(n)
				if !query() {
					return false
				}
				if tgt := p.MinInternalPart(p.Part(v)); tgt >= 0 {
					p.Move(v, tgt)
				}
			}
			if !query() {
				return false
			}
		}
		return p.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDetectsCorruption(t *testing.T) {
	g := graph.Path(4)
	p := mustFrom(t, g, []int32{0, 0, 1, 1}, 2)
	p.part[0] = 1 // corrupt behind the API's back
	if err := p.Validate(); err == nil {
		t.Fatal("Validate missed corruption")
	}
}

func TestFromAssignmentErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := FromAssignment(g, []int32{0, 1}, 2); err == nil {
		t.Fatal("short assignment accepted")
	}
	if _, err := FromAssignment(g, []int32{0, 1, 5}, 2); err == nil {
		t.Fatal("out-of-range part accepted")
	}
	if _, err := FromAssignment(g, []int32{0, -1, 1}, 2); err == nil {
		t.Fatal("negative part accepted")
	}
}

// TestLoopWeightCountsAsInternal pins the V-cycle contract: a vertex's
// self-loop weight rides along in the internal weight of whatever part
// holds it, through Assign, Move and Validate alike.
func TestLoopWeightCountsAsInternal(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 1)
	b.AddSelfLoop(0, 2) // e.g. two contracted unit edges
	b.AddSelfLoop(2, 0.5)
	g := b.MustBuild()

	p := New(g, 2)
	p.Assign(0, 0)
	p.Assign(1, 0)
	p.Assign(2, 1)
	p.Assign(3, 1)
	// Part 0: edge {0,1} internal (1) + loop at 0 (2) => W(A) ordered = 6.
	if got := p.PartInternalOrdered(0); got != 6 {
		t.Fatalf("PartInternalOrdered(0) = %g, want 6", got)
	}
	// Part 1: edge {2,3} internal (1) + loop at 2 (0.5) => 3.
	if got := p.PartInternalOrdered(1); got != 3 {
		t.Fatalf("PartInternalOrdered(1) = %g, want 3", got)
	}
	// Loops never contribute to the cut.
	if got := p.CrossingWeight(); got != 1 {
		t.Fatalf("CrossingWeight = %g, want 1", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	// Moving vertex 2 carries its loop from part 1 to part 0.
	p.Move(2, 0)
	if got := p.PartInternalOrdered(1); got != 0 {
		t.Fatalf("after move, PartInternalOrdered(1) = %g, want 0", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	p.Move(2, 1)
	if got := p.PartInternalOrdered(1); got != 3 {
		t.Fatalf("after move back, PartInternalOrdered(1) = %g, want 3", got)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
