package partition

import (
	"math"
	"math/rand"
	"testing"
)

// referenceMinScan is the obvious specification: lowest index among the
// minimum keys, sentinel-aware.
func referenceMinScan(keys []uint64) (uint64, int) {
	mk := emptyMinKey
	idx := 0
	for a, k := range keys {
		if k < mk {
			mk, idx = k, a
		}
	}
	return mk, idx
}

func TestMinKeyScanGenericMatchesReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		keys := randomKeys(r)
		wantMK, wantIdx := referenceMinScan(keys)
		gotMK, gotIdx := minKeyScanGeneric(keys)
		if gotMK != wantMK || (wantMK != emptyMinKey && gotIdx != wantIdx) {
			t.Fatalf("trial %d len %d: generic = (%#x, %d), want (%#x, %d)",
				trial, len(keys), gotMK, gotIdx, wantMK, wantIdx)
		}
	}
}

func TestMinKeyScanAVX2MatchesReference(t *testing.T) {
	if !useAVX2 {
		t.Skip("no AVX2 on this machine")
	}
	r := rand.New(rand.NewSource(12))
	for trial := 0; trial < 5000; trial++ {
		keys := randomKeys(r)
		if len(keys) < 8 {
			continue
		}
		// Exercise every exclusion shape: none, in range, out of range.
		exclude := r.Intn(len(keys)+4) - 2
		masked := append([]uint64(nil), keys...)
		if exclude >= 0 && exclude < len(masked) {
			masked[exclude] = emptyMinKey
		}
		wantMK, wantIdx := referenceMinScan(masked)
		gotMK, gotIdx := minKeyScanAVX2(&keys[0], len(keys), exclude)
		if gotMK != wantMK || (wantMK != emptyMinKey && gotIdx != wantIdx) {
			t.Fatalf("trial %d len %d exclude %d: avx2 = (%#x, %d), want (%#x, %d)",
				trial, len(keys), exclude, gotMK, gotIdx, wantMK, wantIdx)
		}
	}
}

// randomKeys builds adversarial key arrays: ragged lengths around the
// 4-lane vector width, heavy duplication so ties exercise the lowest-index
// rule, realistic minKeyOf images of weights, sentinels, and raw patterns
// covering both halves of the sign-flip mapping.
func randomKeys(r *rand.Rand) []uint64 {
	n := 1 + r.Intn(133)
	keys := make([]uint64, n)
	for i := range keys {
		switch r.Intn(6) {
		case 0:
			keys[i] = emptyMinKey
		case 1:
			keys[i] = minKeyOf(float64(r.Intn(8))) // dense duplicates
		case 2:
			keys[i] = minKeyOf(r.NormFloat64() * 1e3) // signed weights
		case 3:
			keys[i] = r.Uint64()
		case 4:
			keys[i] = minKeyOf(0)
		default:
			keys[i] = minKeyOf(math.Inf(1))
		}
	}
	return keys
}

func TestMinKeyScanAllEmpty(t *testing.T) {
	keys := make([]uint64, 9)
	for i := range keys {
		keys[i] = emptyMinKey
	}
	if mk, _ := minKeyScanGeneric(keys); mk != emptyMinKey {
		t.Fatalf("generic on all-empty = %#x, want sentinel", mk)
	}
	if useAVX2 {
		if mk, _ := minKeyScanAVX2(&keys[0], len(keys), -1); mk != emptyMinKey {
			t.Fatalf("avx2 on all-empty = %#x, want sentinel", mk)
		}
	}
}
