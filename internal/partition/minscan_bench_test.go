package partition

import (
	"fmt"
	"testing"
)

// BenchmarkMinKeyScan measures the per-call cost of the argmin scan at the
// part counts the solvers actually use.
func BenchmarkMinKeyScan(b *testing.B) {
	for _, n := range []int{8, 32, 64} {
		keys := make([]uint64, n)
		for i := range keys {
			keys[i] = minKeyOf(float64((i*2654435761)%997) + 0.5)
		}
		b.Run(fmt.Sprintf("avx2/n%d", n), func(b *testing.B) {
			if !useAVX2 {
				b.Skip("no AVX2")
			}
			var s int
			for i := 0; i < b.N; i++ {
				_, idx := minKeyScanAVX2(&keys[0], n, i%n)
				s += idx
			}
			sinkInt = s
		})
		b.Run(fmt.Sprintf("generic/n%d", n), func(b *testing.B) {
			var s int
			for i := 0; i < b.N; i++ {
				ex := i % n
				saved := keys[ex]
				keys[ex] = emptyMinKey
				_, idx := minKeyScanGeneric(keys)
				keys[ex] = saved
				s += idx
			}
			sinkInt = s
		})
	}
}

var sinkInt int
