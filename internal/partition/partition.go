// Package partition maintains k-way partition state with O(deg) incremental
// updates of the per-part statistics every objective in the paper needs:
//
//	cut(A, V-A)  — total weight of edges with exactly one endpoint in A
//	W(A)         — paper's internal weight: sum over ordered pairs (u,v) in
//	               A x A of w(u,v), i.e. twice the unordered internal weight
//	|A|, vw(A)   — vertex count and vertex weight of A
//
// Parts are slots in [0, Capacity); slots may be empty, which is what lets
// the fusion-fission metaheuristic vary the number of "atoms" during the
// search without reallocating. NumParts reports the non-empty count.
//
// Vertex self-loop weights (graph.Graph.VertexLoop — the internal weight a
// coarsening contraction folded into a coarse vertex) count toward the
// internal weight of the part holding the vertex, so W(A), Ncut and Mcut of
// a coarse partition agree exactly with those of the fine partition it
// projects to. Loops never contribute to any cut.
package partition

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/graph"
)

// Unassigned is the part id of a vertex that has not been placed yet.
const Unassigned = -1

// P is a mutable k-way partition of a fixed graph.
type P struct {
	g        *graph.Graph
	part     []int32
	size     []int32   // vertices per part
	vw       []float64 // vertex weight per part
	internal []float64 // unordered internal edge weight per part (W(A)/2)
	cut      []float64 // cut(A, V-A) per part
	assigned int
	nonEmpty int
	crossing float64 // total crossing edge weight, each edge counted once

	// part16 mirrors part with int16 entries whenever the capacity fits
	// (part ids < 32768 — always, in practice). The mirror is half the
	// footprint of part, so the random per-neighbor assignment loads of the
	// score.moveConns hot loop stay L1-resident on graphs twice as large;
	// maintenance is a single extra store per mutation.
	part16 []int16

	// Argmin support for MinInternalPart, armed by its first call
	// (minTrack): callers that never ask for the argmin — refinement
	// sweeps, bulk construction — pay one predicted branch per mutation
	// and nothing else. minKey mirrors each non-empty part's internal
	// weight through the monotone float-to-uint64 map of minKeyOf (empty
	// slots hold the all-ones sentinel), so each mutation costs one
	// unconditional store and the argmin query is a short compare-and-cmov
	// integer reduction over one contiguous array instead of the
	// NonEmptyParts allocate-and-scan (with a method call per part) the
	// old hot path paid per proposal. Only a bulk CopyFrom sets minDirty
	// for a lazy refill.
	minTrack bool
	minDirty bool
	minKey   []uint64
	// minNarrow selects the composite-key scan: on unit-edge-weight,
	// loop-free graphs every part's internal weight is an exact small
	// integer, so (weight << 32 | part id) packs the full lexicographic
	// (weight, lowest-id) order into one uint64 — the plain min reduction
	// over minKeyC IS the argmin, with no index-recovery pass and no
	// vector kernel needed. Weighted or loop-carrying graphs keep the
	// bit-mapped float keys in minKey and the AVX2 scan.
	minNarrow bool
	minKeyC   []uint64
}

// New returns a partition of g with the given part capacity and every vertex
// unassigned.
func New(g *graph.Graph, capacity int) *P {
	if capacity <= 0 {
		panic("partition: capacity must be positive")
	}
	p := &P{
		g:        g,
		part:     make([]int32, g.NumVertices()),
		size:     make([]int32, capacity),
		vw:       make([]float64, capacity),
		internal: make([]float64, capacity),
		cut:      make([]float64, capacity),
	}
	if capacity <= math.MaxInt16 {
		// One padding entry past the end: the score package's gathered
		// conns kernel loads 32-bit lanes at part16[u], reading two bytes
		// beyond the last vertex's entry. The pad keeps that read inside
		// the allocation without the kernel needing a tail fixup.
		p.part16 = make([]int16, g.NumVertices()+1)[:g.NumVertices()]
		for i := range p.part16 {
			p.part16[i] = Unassigned
		}
	}
	for i := range p.part {
		p.part[i] = Unassigned
	}
	return p
}

// FromAssignment builds a fully-assigned partition from a part id per vertex.
// Ids must lie in [0, capacity).
func FromAssignment(g *graph.Graph, assign []int32, capacity int) (*P, error) {
	if len(assign) != g.NumVertices() {
		return nil, fmt.Errorf("partition: assignment length %d != vertex count %d", len(assign), g.NumVertices())
	}
	p := New(g, capacity)
	for v, a := range assign {
		if a < 0 || int(a) >= capacity {
			return nil, fmt.Errorf("partition: vertex %d assigned to invalid part %d", v, a)
		}
		p.Assign(v, int(a))
	}
	return p, nil
}

// Graph returns the underlying graph.
func (p *P) Graph() *graph.Graph { return p.g }

// Capacity returns the number of part slots.
func (p *P) Capacity() int { return len(p.size) }

// NumParts returns the number of non-empty parts.
func (p *P) NumParts() int { return p.nonEmpty }

// NumAssigned returns how many vertices have been placed.
func (p *P) NumAssigned() int { return p.assigned }

// Complete reports whether every vertex is assigned.
func (p *P) Complete() bool { return p.assigned == p.g.NumVertices() }

// Part returns the part of v, or Unassigned.
func (p *P) Part(v int) int { return int(p.partAt(v)) }

// partAt reads v's part through the int16 mirror when one exists: the mirror
// is half the footprint of the canonical int32 array, so the random
// per-proposal lookups stay L1-resident on graphs twice as large. The mirror
// is updated alongside every part write, so the two views never disagree.
func (p *P) partAt(v int) int32 {
	if p.part16 != nil {
		return int32(p.part16[v])
	}
	return p.part[v]
}

// PartSize returns the number of vertices in part a.
func (p *P) PartSize(a int) int { return int(p.size[a]) }

// PartVertexWeight returns the total vertex weight of part a.
func (p *P) PartVertexWeight(a int) float64 { return p.vw[a] }

// PartCut returns cut(A, V-A) for part a.
func (p *P) PartCut(a int) float64 { return p.cut[a] }

// PartInternalOrdered returns the paper's W(A): the ordered-pair internal
// weight, i.e. twice the sum of the weights of edges inside a.
func (p *P) PartInternalOrdered(a int) float64 { return 2 * p.internal[a] }

// CrossingWeight returns the total weight of crossing edges, each counted
// once. The paper's Cut objective equals exactly twice this value.
func (p *P) CrossingWeight() float64 { return p.crossing }

// Assign places an unassigned vertex v into part a.
func (p *P) Assign(v, a int) {
	if p.part[v] != Unassigned {
		panic(fmt.Sprintf("partition: vertex %d already assigned", v))
	}
	p.part[v] = int32(a)
	if p.part16 != nil {
		p.part16[v] = int16(a)
	}
	if p.size[a] == 0 {
		p.nonEmpty++
	}
	p.size[a]++
	p.vw[a] += p.g.VertexWeight(v)
	p.internal[a] += p.g.VertexLoop(v)
	p.assigned++
	nbrs := p.g.Neighbors(v)
	wts := p.g.Weights(v)
	for i, u := range nbrs {
		b := p.part[u]
		if b == Unassigned {
			continue
		}
		w := wts[i]
		if int(b) == a {
			p.internal[a] += w
		} else {
			p.cut[a] += w
			p.cut[b] += w
			p.crossing += w
		}
	}
	p.minTouch(a)
}

// Move transfers an assigned vertex v to part `to`, updating all statistics
// in O(deg(v)).
func (p *P) Move(v, to int) {
	from := int(p.partAt(v))
	if from == Unassigned {
		panic(fmt.Sprintf("partition: moving unassigned vertex %d", v))
	}
	if from == to {
		return
	}
	nbrs := p.g.Neighbors(v)
	wts := p.g.Weights(v)
	for i, u := range nbrs {
		b := int(p.part[u])
		w := wts[i]
		switch b {
		case Unassigned:
		case from:
			// Internal to `from` becomes crossing.
			p.internal[from] -= w
			p.cut[from] += w
			p.cut[to] += w
			p.crossing += w
		case to:
			// Crossing becomes internal to `to`.
			p.cut[from] -= w
			p.cut[to] -= w
			p.crossing -= w
			p.internal[to] += w
		default:
			// Crossing either way; only the v-side part changes.
			p.cut[from] -= w
			p.cut[to] += w
		}
	}
	p.part[v] = int32(to)
	if p.part16 != nil {
		p.part16[v] = int16(to)
	}
	p.size[from]--
	if p.size[from] == 0 {
		p.nonEmpty--
	}
	if p.size[to] == 0 {
		p.nonEmpty++
	}
	p.size[to]++
	vw := 1.0
	if !p.g.UnitVertexWeights() {
		vw = p.g.VertexWeight(v)
	}
	p.vw[from] -= vw
	p.vw[to] += vw
	if l := p.g.VertexLoop(v); l != 0 {
		p.internal[from] -= l
		p.internal[to] += l
	}
	p.minTouch(from)
	p.minTouch(to)
}

// MoveConns is Move for callers that already scanned v's neighborhood:
// connFrom and connTo are v's total edge weight into its current part and
// into `to`, other its weight into every other assigned neighbor's part
// (exactly score.moveConns' split). The statistics update is O(1) aggregated
// arithmetic instead of a per-edge loop — the same numbers grouped
// differently, exact whenever edge weights sum without rounding (integral
// weights, as in every golden instance) and within accumulator drift
// otherwise. score.Tracker.Apply uses it to commit a move whose connection
// weights MoveDelta already computed, eliminating one of the two adjacency
// scans an accepted proposal used to pay.
func (p *P) MoveConns(v, to int, connFrom, connTo, other float64) {
	from := int(p.partAt(v))
	if from == Unassigned {
		panic(fmt.Sprintf("partition: moving unassigned vertex %d", v))
	}
	if from == to {
		return
	}
	p.internal[from] -= connFrom
	p.internal[to] += connTo
	p.cut[from] += connFrom - connTo - other
	p.cut[to] += connFrom - connTo + other
	p.crossing += connFrom - connTo
	p.part[v] = int32(to)
	if p.part16 != nil {
		p.part16[v] = int16(to)
	}
	p.size[from]--
	if p.size[from] == 0 {
		p.nonEmpty--
	}
	if p.size[to] == 0 {
		p.nonEmpty++
	}
	p.size[to]++
	vw := 1.0
	if !p.g.UnitVertexWeights() {
		vw = p.g.VertexWeight(v)
	}
	p.vw[from] -= vw
	p.vw[to] += vw
	if l := p.g.VertexLoop(v); l != 0 {
		p.internal[from] -= l
		p.internal[to] += l
	}
	p.minTouch(from)
	p.minTouch(to)
}

// MergeParts moves every vertex of part b into part a. No-op when a == b.
func (p *P) MergeParts(a, b int) {
	if a == b || p.size[b] == 0 {
		return
	}
	for v := range p.part {
		if int(p.part[v]) == b {
			p.Move(v, a)
		}
	}
}

// EmptySlot returns the id of an empty part slot, or -1 if all are occupied.
func (p *P) EmptySlot() int {
	for a := range p.size {
		if p.size[a] == 0 {
			return a
		}
	}
	return -1
}

// NonEmptyParts returns the ids of all non-empty parts in increasing order.
func (p *P) NonEmptyParts() []int {
	out := make([]int, 0, p.nonEmpty)
	for a := range p.size {
		if p.size[a] > 0 {
			out = append(out, a)
		}
	}
	return out
}

// MinInternalPart returns the non-empty part with the smallest internal
// weight, excluding `exclude` (pass -1 to exclude nothing); ties resolve to
// the lowest part id, and -1 is returned when no eligible part exists. The
// ordering is identical to scanning NonEmptyParts in ascending order and
// keeping the first strictly-smaller PartInternalOrdered — the annealer's
// high-temperature "feed the starving part" target — but is O(1) amortized:
// the first call arms an incrementally maintained key array that turns the
// query into a short branchless reduction, so per-proposal callers pay
// neither the allocation nor the O(capacity) method-call scan the pre-cache
// code paid.
func (p *P) MinInternalPart(exclude int) int {
	if !p.minTrack || p.minDirty {
		p.refillMinKeys()
	}
	if p.minNarrow {
		return p.minCompositeScan(exclude)
	}
	keys := p.minKey
	if useAVX2 && len(keys) >= 8 {
		// The kernel neutralizes the excluded slot in-register: storing a
		// sentinel into the array just before the vector loads would stall
		// every call on failed store-to-load forwarding.
		mk, idx := minKeyScanAVX2(&keys[0], len(keys), exclude)
		if mk == emptyMinKey {
			return -1
		}
		return idx
	}
	masked := exclude >= 0 && exclude < len(keys)
	var saved uint64
	if masked { // mask the excluded slot for the duration of the scan
		saved = keys[exclude]
		keys[exclude] = emptyMinKey
	}
	mk, idx := minKeyScanGeneric(keys)
	best := -1
	if mk != emptyMinKey {
		best = idx
	}
	if masked {
		keys[exclude] = saved
	}
	return best
}

// minKeyScanGeneric is the portable argmin key scan: the minimum key and
// the lowest index holding it (idx is meaningless when every slot is
// emptyMinKey — callers check mk first).
//
// Pass 1 finds the minimum as a four-wide compare-and-cmov integer
// reduction — the keys are bit-mapped so unsigned order is weight order,
// and integer mins compile branchless where the float min builtin pays NaN
// and signed-zero fixups per element. Pass 2 finds the first slot holding
// it — the exact lowest-id tie-break of an ascending NonEmptyParts scan.
// For at most 64 slots pass 2 is a branchless equality bitmask plus a
// trailing-zero count; a first-match break loop mispredicts its exit every
// call, and that one mispredict costs more than the whole mask loop.
func minKeyScanGeneric(keys []uint64) (mk uint64, idx int) {
	m0, m1, m2, m3 := emptyMinKey, emptyMinKey, emptyMinKey, emptyMinKey
	i := 0
	for ; i+4 <= len(keys); i += 4 {
		m0 = min(m0, keys[i])
		m1 = min(m1, keys[i+1])
		m2 = min(m2, keys[i+2])
		m3 = min(m3, keys[i+3])
	}
	for ; i < len(keys); i++ {
		m0 = min(m0, keys[i])
	}
	mk = min(min(m0, m1), min(m2, m3))
	if mk == emptyMinKey {
		return mk, 0
	}
	if len(keys) <= 64 {
		var eq uint64
		for a, k := range keys {
			var bit uint64
			if k == mk {
				bit = 1
			}
			eq |= bit << uint(a)
		}
		return mk, bits.TrailingZeros64(eq)
	}
	for a, k := range keys {
		if k == mk {
			return mk, a
		}
	}
	return mk, 0
}

// emptyMinKey is the argmin key of an empty part slot: above minKeyOf of
// every float64, so empty slots can never win the reduction.
const emptyMinKey = ^uint64(0)

// minKeyOf maps a float64 onto a uint64 whose unsigned order is the float
// total order (the usual sign-flip trick). Equal weights map to equal keys,
// so pass 2's first-equal scan keeps the lowest-id tie-break; the one
// refinement over the old < scan is that a -0.0 weight orders before +0.0
// instead of tying, which no realizable internal weight hits.
func minKeyOf(f float64) uint64 {
	b := math.Float64bits(f)
	if b>>63 != 0 {
		return ^b
	}
	return b | 1<<63
}

// minTouch refreshes part a's argmin key after its internal weight or
// emptiness changed: one unconditional store.
func (p *P) minTouch(a int) {
	if !p.minTrack || p.minDirty {
		return
	}
	if p.minNarrow {
		p.minKeyC[a] = p.compositeKeyOf(a)
		return
	}
	if p.size[a] == 0 {
		p.minKey[a] = emptyMinKey
	} else {
		p.minKey[a] = minKeyOf(p.internal[a])
	}
}

// refillMinKeys re-derives every argmin key from the live statistics. It
// runs once when MinInternalPart first arms the cache and after a bulk
// CopyFrom, never in the per-move path.
func (p *P) refillMinKeys() {
	p.minTrack = true
	p.minDirty = false
	if p.minKey == nil && p.minKeyC == nil {
		g := p.g
		// The composite gate is graph-level and the graph is immutable, so
		// the choice is made once: integral edge weights summing below
		// 2^31 keep every internal weight exactly representable in the
		// high half of the composite.
		p.minNarrow = g.UnitEdgeWeights() && !g.HasLoops() &&
			g.TotalEdgeWeight() < float64(1<<31) && len(p.size) <= math.MaxUint32
		if p.minNarrow {
			p.minKeyC = make([]uint64, len(p.size))
		} else {
			p.minKey = make([]uint64, len(p.size))
		}
	}
	if p.minNarrow {
		for a := range p.minKeyC {
			p.minKeyC[a] = p.compositeKeyOf(a)
		}
		return
	}
	for a := range p.minKey {
		if p.size[a] == 0 {
			p.minKey[a] = emptyMinKey
		} else {
			p.minKey[a] = minKeyOf(p.internal[a])
		}
	}
}

// compositeKeyOf packs part a's argmin rank for the narrow path: the
// integral internal weight in the high 32 bits (the all-ones sentinel for
// an empty slot) and the part id in the low 32, so uint64 order is the
// lexicographic (weight, lowest id) order the argmin wants.
func (p *P) compositeKeyOf(a int) uint64 {
	if p.size[a] == 0 {
		return emptyCompositeBase | uint64(a)
	}
	return uint64(uint32(p.internal[a]))<<32 | uint64(a)
}

// emptyCompositeBase is the high half of an empty slot's composite key:
// larger than any real weight under the narrow gate (weights < 2^31).
const emptyCompositeBase = uint64(^uint32(0)) << 32

// minCompositeScan is the narrow-path argmin: a branchless four-chain min
// reduction over the composite (weight<<32 | id) keys. The composite order
// makes the index recovery free — the low half of the minimum is the part
// id — so this portable loop beats the vector scan that the wide path
// needs, on every architecture. The excluded slot is masked by an 8-byte
// aligned store the immediately following loads forward from cleanly (the
// wide kernel's store-to-load-stall concern applies to its 32-byte vector
// loads, not to scalar reloads).
func (p *P) minCompositeScan(exclude int) int {
	keys := p.minKeyC
	masked := exclude >= 0 && exclude < len(keys)
	var saved uint64
	if masked {
		saved = keys[exclude]
		keys[exclude] = emptyCompositeBase | uint64(exclude)
	}
	m0, m1, m2, m3 := ^uint64(0), ^uint64(0), ^uint64(0), ^uint64(0)
	i := 0
	for ; i+4 <= len(keys); i += 4 {
		m0 = min(m0, keys[i])
		m1 = min(m1, keys[i+1])
		m2 = min(m2, keys[i+2])
		m3 = min(m3, keys[i+3])
	}
	for ; i < len(keys); i++ {
		m0 = min(m0, keys[i])
	}
	mk := min(min(m0, m1), min(m2, m3))
	if masked {
		keys[exclude] = saved
	}
	if mk >= emptyCompositeBase {
		return -1
	}
	return int(uint32(mk))
}

// VerticesOf returns the vertices currently in part a.
func (p *P) VerticesOf(a int) []int32 {
	out := make([]int32, 0, p.size[a])
	for v, pa := range p.part {
		if int(pa) == a {
			out = append(out, int32(v))
		}
	}
	return out
}

// ConnectionToPart returns the total weight of edges from v to vertices of
// part a (excluding v itself).
func (p *P) ConnectionToPart(v, a int) float64 {
	total := 0.0
	nbrs := p.g.Neighbors(v)
	wts := p.g.Weights(v)
	for i, u := range nbrs {
		if int(p.part[u]) == a {
			total += wts[i]
		}
	}
	return total
}

// ConnectedParts returns, for part a, the map of neighboring part id to the
// total weight of edges between a and that part.
func (p *P) ConnectedParts(a int) map[int]float64 {
	out := make(map[int]float64)
	for v, pa := range p.part {
		if int(pa) != a {
			continue
		}
		nbrs := p.g.Neighbors(v)
		wts := p.g.Weights(v)
		for i, u := range nbrs {
			if b := int(p.part[u]); b != a && b != Unassigned {
				out[b] += wts[i]
			}
		}
	}
	return out
}

// Assignment returns a copy of the per-vertex part ids.
func (p *P) Assignment() []int32 {
	return append([]int32(nil), p.part...)
}

// PartView returns the live per-vertex part-id slice, NOT a copy. Callers
// must treat it as read-only and must not hold it across mutations; it
// exists so per-move hot loops (score.moveConns) can index assignments
// directly instead of paying a method call per neighbor.
func (p *P) PartView() []int32 { return p.part }

// PartView16 returns the live int16 mirror of the per-vertex part ids, or
// nil when the part capacity exceeds the int16 range. Same read-only,
// don't-hold-across-mutations contract as PartView; the narrower entries
// keep the moveConns random-access loads in L1 on graphs twice as large.
func (p *P) PartView16() []int16 { return p.part16 }

// Clone returns an independent deep copy.
func (p *P) Clone() *P {
	q := &P{
		g:        p.g,
		part:     append([]int32(nil), p.part...),
		size:     append([]int32(nil), p.size...),
		vw:       append([]float64(nil), p.vw...),
		internal: append([]float64(nil), p.internal...),
		cut:      append([]float64(nil), p.cut...),
		assigned: p.assigned,
		nonEmpty: p.nonEmpty,
		crossing: p.crossing,
	}
	if p.part16 != nil {
		// Padded like New's allocation for the gathered conns kernel.
		q.part16 = append(make([]int16, 0, len(p.part16)+1), p.part16...)
	}
	return q
}

// CopyFrom overwrites p's state with q's. Both must share the same graph and
// capacity; this is the allocation-free restore used by search loops.
func (p *P) CopyFrom(q *P) {
	if p.g != q.g || len(p.size) != len(q.size) {
		panic("partition: CopyFrom with incompatible partition")
	}
	copy(p.part, q.part)
	if p.part16 != nil {
		if q.part16 != nil {
			copy(p.part16, q.part16)
		} else {
			for i, a := range q.part {
				p.part16[i] = int16(a)
			}
		}
	}
	copy(p.size, q.size)
	copy(p.vw, q.vw)
	copy(p.internal, q.internal)
	copy(p.cut, q.cut)
	p.assigned = q.assigned
	p.nonEmpty = q.nonEmpty
	p.crossing = q.crossing
	p.minDirty = true // bulk overwrite: revalidate the argmin on next query
}

// Compact renumbers non-empty parts to 0..NumParts-1 and returns the final
// assignment. The partition itself is left untouched.
func (p *P) Compact() []int32 {
	remap := make(map[int32]int32, p.nonEmpty)
	next := int32(0)
	out := make([]int32, len(p.part))
	for v, a := range p.part {
		if a == Unassigned {
			out[v] = Unassigned
			continue
		}
		id, ok := remap[a]
		if !ok {
			id = next
			remap[a] = id
			next++
		}
		out[v] = id
	}
	return out
}

// Validate recomputes every statistic from scratch and returns an error on
// the first mismatch. Used by tests and enabled invariant checks.
func (p *P) Validate() error {
	n := p.g.NumVertices()
	cap_ := len(p.size)
	size := make([]int32, cap_)
	vw := make([]float64, cap_)
	internal := make([]float64, cap_)
	cut := make([]float64, cap_)
	crossing := 0.0
	assigned := 0
	for v := 0; v < n; v++ {
		a := p.part[v]
		if a == Unassigned {
			continue
		}
		if int(a) >= cap_ {
			return fmt.Errorf("partition: vertex %d in out-of-range part %d", v, a)
		}
		assigned++
		size[a]++
		vw[a] += p.g.VertexWeight(v)
		internal[a] += p.g.VertexLoop(v)
	}
	p.g.ForEachEdge(func(u, v int, w float64) {
		a, b := p.part[u], p.part[v]
		if a == Unassigned || b == Unassigned {
			return
		}
		if a == b {
			internal[a] += w
		} else {
			cut[a] += w
			cut[b] += w
			crossing += w
		}
	})
	nonEmpty := 0
	for a := 0; a < cap_; a++ {
		if size[a] > 0 {
			nonEmpty++
		}
		if size[a] != p.size[a] {
			return fmt.Errorf("partition: part %d size %d, tracked %d", a, size[a], p.size[a])
		}
		if !approxEq(vw[a], p.vw[a]) {
			return fmt.Errorf("partition: part %d vertex weight %g, tracked %g", a, vw[a], p.vw[a])
		}
		if !approxEq(internal[a], p.internal[a]) {
			return fmt.Errorf("partition: part %d internal %g, tracked %g", a, internal[a], p.internal[a])
		}
		if !approxEq(cut[a], p.cut[a]) {
			return fmt.Errorf("partition: part %d cut %g, tracked %g", a, cut[a], p.cut[a])
		}
	}
	if assigned != p.assigned {
		return fmt.Errorf("partition: assigned %d, tracked %d", assigned, p.assigned)
	}
	if nonEmpty != p.nonEmpty {
		return fmt.Errorf("partition: nonEmpty %d, tracked %d", nonEmpty, p.nonEmpty)
	}
	if !approxEq(crossing, p.crossing) {
		return fmt.Errorf("partition: crossing %g, tracked %g", crossing, p.crossing)
	}
	return nil
}

func approxEq(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= 1e-6*scale
}
