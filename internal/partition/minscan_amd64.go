//go:build amd64

package partition

import "os"

// useAVX2 gates the vector argmin kernel, probed once at startup.
var useAVX2 = x86HasAVX2() && os.Getenv("FF_NOAVX2") == ""

// HasAVX2 reports whether this package's AVX2 kernels are active (CPU+OS
// support, not disabled via FF_NOAVX2). Sibling packages with their own
// vector kernels (score's gathered conns sweep) share the probe so one
// escape hatch governs every hand-written kernel.
func HasAVX2() bool { return useAVX2 }

// x86HasAVX2 reports whether the CPU and OS support AVX2 with YMM state.
// Implemented in minscan_amd64.s.
func x86HasAVX2() bool

// minKeyScanAVX2 returns the minimum bit-mapped key in keys[0:n] and the
// lowest index holding it, treating keys[exclude] as emptyMinKey without
// touching the array (pass a negative exclude for a plain scan). Requires
// n >= 8 and useAVX2; callers fall back to minKeyScanGeneric otherwise.
// Implemented in minscan_amd64.s.
func minKeyScanAVX2(p *uint64, n, exclude int) (mk uint64, idx int)
