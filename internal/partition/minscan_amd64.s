// AVX2 kernel for the incremental-argmin key scan. The keys are the
// bit-mapped uint64 images of float64 internal weights (see minKeyOf):
// unsigned integer order on the keys is exactly weight order, and unsigned
// order equals signed order after XOR-ing the high bit, which is what lets
// the kernel use VPCMPGTQ (AVX2 has no unsigned 64-bit compare or min).
//
// The scan is one pass with vector index tracking: two independent
// (min, argmin) lane chains so the blend dependency chains overlap, each
// window's lanes carrying their real element indexes. The excluded slot is
// neutralized in-register — its lane is OR-ed to the sentinel after the
// load — rather than by storing a sentinel into the array, because an
// 8-byte store immediately before a 32-byte vector load of the same line
// stalls on failed store-to-load forwarding. Ragged tails reload the last
// four keys; the duplicated lanes carry their true indexes and the merge
// is strict, so duplicates can change neither the minimum nor the
// lowest-index tie-break.

#include "textflag.h"

DATA ·minScanIdxInit+0(SB)/8, $0
DATA ·minScanIdxInit+8(SB)/8, $1
DATA ·minScanIdxInit+16(SB)/8, $2
DATA ·minScanIdxInit+24(SB)/8, $3
GLOBL ·minScanIdxInit(SB), RODATA|NOPTR, $32

DATA ·minScanIdxInitB+0(SB)/8, $4
DATA ·minScanIdxInitB+8(SB)/8, $5
DATA ·minScanIdxInitB+16(SB)/8, $6
DATA ·minScanIdxInitB+24(SB)/8, $7
GLOBL ·minScanIdxInitB(SB), RODATA|NOPTR, $32

DATA ·minScanSign+0(SB)/8, $0x8000000000000000
GLOBL ·minScanSign(SB), RODATA|NOPTR, $8

DATA ·minScanEight+0(SB)/8, $8
GLOBL ·minScanEight(SB), RODATA|NOPTR, $8

// func minKeyScanAVX2(p *uint64, n int, exclude int) (mk uint64, idx int)
// Requires n >= 8 and AVX2 support (gated by useAVX2).
TEXT ·minKeyScanAVX2(SB), NOSPLIT, $0-40
	MOVQ p+0(FP), SI
	MOVQ n+8(FP), CX

	VPBROADCASTQ exclude+16(FP), Y15 // excluded index, all lanes
	VPBROADCASTQ ·minScanSign(SB), Y0 // sign-flip constant
	VPBROADCASTQ ·minScanEight(SB), Y14 // index increment per iteration
	VMOVDQU ·minScanIdxInit(SB), Y5 // lane indexes of window A: [0 1 2 3]
	VMOVDQU ·minScanIdxInitB(SB), Y6 // lane indexes of window B: [4 5 6 7]

	// Prime both chains from the first eight keys.
	VMOVDQU (SI), Y1
	VPCMPEQQ Y5, Y15, Y8
	VPOR Y8, Y1, Y1 // excluded lane -> unsigned sentinel
	VPXOR Y0, Y1, Y1 // signed domain; sentinel -> int64 max
	VMOVDQA Y5, Y3
	VMOVDQU 32(SI), Y2
	VPCMPEQQ Y6, Y15, Y8
	VPOR Y8, Y2, Y2
	VPXOR Y0, Y2, Y2
	VMOVDQA Y6, Y4

	MOVQ $8, DX
loop8:
	LEAQ 8(DX), BX
	CMPQ BX, CX
	JG   tails
	VPADDQ Y14, Y5, Y5
	VPADDQ Y14, Y6, Y6
	VMOVDQU (SI)(DX*8), Y7
	VPCMPEQQ Y5, Y15, Y8
	VPOR Y8, Y7, Y7
	VPXOR Y0, Y7, Y7
	VPCMPGTQ Y7, Y1, Y9 // lanes where window A improves chain A
	VBLENDVPD Y9, Y7, Y1, Y1
	VBLENDVPD Y9, Y5, Y3, Y3
	VMOVDQU 32(SI)(DX*8), Y10
	VPCMPEQQ Y6, Y15, Y11
	VPOR Y11, Y10, Y10
	VPXOR Y0, Y10, Y10
	VPCMPGTQ Y10, Y2, Y12
	VBLENDVPD Y12, Y10, Y2, Y2
	VBLENDVPD Y12, Y6, Y4, Y4
	MOVQ BX, DX
	JMP  loop8
tails:
	MOVQ CX, BX
	SUBQ DX, BX
	CMPQ BX, $4
	JL   tail1
	VMOVQ DX, X7
	VPBROADCASTQ X7, Y7
	VPADDQ ·minScanIdxInit(SB), Y7, Y5 // [DX .. DX+3]
	VMOVDQU (SI)(DX*8), Y7
	VPCMPEQQ Y5, Y15, Y8
	VPOR Y8, Y7, Y7
	VPXOR Y0, Y7, Y7
	VPCMPGTQ Y7, Y1, Y9
	VBLENDVPD Y9, Y7, Y1, Y1
	VBLENDVPD Y9, Y5, Y3, Y3
	ADDQ $4, DX
tail1:
	CMPQ DX, CX
	JE   merge
	LEAQ -4(CX), DX // overlapping final window
	VMOVQ DX, X7
	VPBROADCASTQ X7, Y7
	VPADDQ ·minScanIdxInit(SB), Y7, Y6
	VMOVDQU (SI)(DX*8), Y10
	VPCMPEQQ Y6, Y15, Y11
	VPOR Y11, Y10, Y10
	VPXOR Y0, Y10, Y10
	VPCMPGTQ Y10, Y2, Y12
	VBLENDVPD Y12, Y10, Y2, Y2
	VBLENDVPD Y12, Y6, Y4, Y4
merge:
	// Merge chain B into chain A with the composite (key, index) order:
	// take B where keyA > keyB, or keys equal and idxA > idxB.
	VPCMPGTQ Y2, Y1, Y7
	VPCMPEQQ Y2, Y1, Y8
	VPCMPGTQ Y4, Y3, Y9
	VPAND Y9, Y8, Y8
	VPOR Y8, Y7, Y7
	VBLENDVPD Y7, Y2, Y1, Y1
	VBLENDVPD Y7, Y4, Y3, Y3
	// Horizontal reduction of the four surviving (key, index) lanes in the
	// scalar domain: a lexicographic (key, index) comparison is a signed
	// 128-bit subtract (SUB low / SBB high), and two CMOVs off its flags
	// replace a compare-and-blend chain whose serial latency dominates the
	// vector version of this reduction.
	VEXTRACTI128 $1, Y1, X2
	VEXTRACTI128 $1, Y3, X4
	VMOVQ X1, AX
	VPEXTRQ $1, X1, BX
	VMOVQ X2, R10
	VPEXTRQ $1, X2, R11
	VMOVQ X3, R8
	VPEXTRQ $1, X3, R9
	VMOVQ X4, R12
	VPEXTRQ $1, X4, R13
	// lane1 -> lane0
	MOVQ R9, DI
	SUBQ R8, DI
	MOVQ BX, DX
	SBBQ AX, DX
	CMOVQLT BX, AX
	CMOVQLT R9, R8
	// lane3 -> lane2
	MOVQ R13, DI
	SUBQ R12, DI
	MOVQ R11, DX
	SBBQ R10, DX
	CMOVQLT R11, R10
	CMOVQLT R13, R12
	// lane2 -> lane0
	MOVQ R12, DI
	SUBQ R8, DI
	MOVQ R10, DX
	SBBQ AX, DX
	CMOVQLT R10, AX
	CMOVQLT R12, R8
	MOVQ $0x8000000000000000, BX
	XORQ BX, AX // back to the unsigned key domain
	MOVQ AX, mk+24(FP)
	MOVQ R8, idx+32(FP)
	VZEROUPPER
	RET

// func x86HasAVX2() bool
// CPUID/XGETBV feature probe: OSXSAVE and AVX advertised, YMM state enabled
// by the OS, and the AVX2 leaf bit set.
TEXT ·x86HasAVX2(SB), NOSPLIT, $0-1
	MOVL $0, AX
	CPUID
	CMPL AX, $7
	JL   no
	MOVL $1, AX
	CPUID
	MOVL CX, R8
	ANDL $(1<<27 | 1<<28), R8
	CMPL R8, $(1<<27 | 1<<28)
	JNE  no
	MOVL $0, CX
	XGETBV
	ANDL $6, AX
	CMPL AX, $6
	JNE  no
	MOVL $7, AX
	MOVL $0, CX
	CPUID
	ANDL $(1<<5), BX
	JZ   no
	MOVB $1, ret+0(FP)
	RET
no:
	MOVB $0, ret+0(FP)
	RET
