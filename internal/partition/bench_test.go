package partition

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

func benchPartition(b *testing.B, k int) (*P, *graph.Graph) {
	b.Helper()
	g := graph.Torus2D(40, 40)
	r := rng.New(1)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(r.Intn(k))
	}
	p, err := FromAssignment(g, assign, k)
	if err != nil {
		b.Fatal(err)
	}
	return p, g
}

// BenchmarkMove measures the incremental statistics update, the inner-loop
// primitive of every metaheuristic.
func BenchmarkMove(b *testing.B) {
	p, g := benchPartition(b, 8)
	n := g.NumVertices()
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := r.Intn(n)
		to := r.Intn(8)
		if p.PartSize(p.Part(v)) > 1 {
			p.Move(v, to)
		}
	}
}

func BenchmarkFromAssignment(b *testing.B) {
	g := graph.Torus2D(40, 40)
	r := rng.New(3)
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(r.Intn(16))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FromAssignment(g, assign, 16); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCloneAndCopyFrom(b *testing.B) {
	p, _ := benchPartition(b, 8)
	q := p.Clone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.CopyFrom(p)
	}
}

func BenchmarkConnectedParts(b *testing.B) {
	p, _ := benchPartition(b, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.ConnectedParts(i % 8)
	}
}
