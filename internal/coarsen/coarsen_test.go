package coarsen

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
)

func TestHEMReducesAndPreservesWeight(t *testing.T) {
	g := graph.Grid2D(16, 16)
	ladder := HEM(g, 40, 3)
	if len(ladder) == 0 {
		t.Fatal("no coarsening")
	}
	prev := g
	for i, lvl := range ladder {
		if lvl.G.NumVertices() >= prev.NumVertices() {
			t.Fatalf("level %d did not shrink: %d -> %d", i, prev.NumVertices(), lvl.G.NumVertices())
		}
		if lvl.G.TotalVertexWeight() != prev.TotalVertexWeight() {
			t.Fatalf("level %d lost vertex weight", i)
		}
		prev = lvl.G
	}
	if prev.NumVertices() > 40 {
		t.Fatalf("coarsest still has %d vertices", prev.NumVertices())
	}
}

func TestHEMMapsAreSurjective(t *testing.T) {
	g := graph.RandomGeometric(120, 0.18, 9)
	ladder := HEM(g, 20, 9)
	prev := g
	for _, lvl := range ladder {
		hit := make([]bool, lvl.G.NumVertices())
		if len(lvl.Map) != prev.NumVertices() {
			t.Fatalf("map length %d != fine size %d", len(lvl.Map), prev.NumVertices())
		}
		for _, c := range lvl.Map {
			hit[c] = true
		}
		for c, ok := range hit {
			if !ok {
				t.Fatalf("coarse vertex %d has no preimage", c)
			}
		}
		prev = lvl.G
	}
}

func TestHEMPrefersHeavyEdges(t *testing.T) {
	// A path with one very heavy edge: the heavy pair must be contracted
	// in the first level.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 100)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g := b.MustBuild()
	ladder := HEM(g, 2, 1)
	if len(ladder) == 0 {
		t.Fatal("no coarsening")
	}
	m := ladder[0].Map
	if m[2] != m[3] {
		t.Fatalf("heavy edge {2,3} not contracted: %v", m)
	}
}

func TestHEMEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(5).MustBuild()
	if ladder := HEM(g, 2, 1); len(ladder) != 0 {
		t.Fatalf("edgeless graph coarsened %d levels", len(ladder))
	}
}

// TestContractConservesTotalWeight checks the folding invariant level by
// level: edge weight never disappears, it only migrates from the adjacency
// into coarse-vertex self-loops, and vertex weight is preserved exactly.
func TestContractConservesTotalWeight(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid2D(20, 20)},
		{"geometric", graph.RandomGeometric(400, 0.1, 5)},
		{"gnp", graph.GNP(300, 0.03, 11)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			total := tc.g.TotalEdgeWeight() + tc.g.TotalLoopWeight()
			ladder := HEM(tc.g, 25, 7)
			if len(ladder) < 2 {
				t.Fatalf("want a multi-level ladder, got %d levels", len(ladder))
			}
			for i, lvl := range ladder {
				got := lvl.G.TotalEdgeWeight() + lvl.G.TotalLoopWeight()
				if !almost(got, total) {
					t.Fatalf("level %d: edge+loop weight %g, want %g", i, got, total)
				}
				if !almost(lvl.G.TotalVertexWeight(), tc.g.TotalVertexWeight()) {
					t.Fatalf("level %d: vertex weight %g, want %g", i, lvl.G.TotalVertexWeight(), tc.g.TotalVertexWeight())
				}
			}
		})
	}
}

// TestProjectPreservesObjectives is the core V-cycle guarantee: a partition
// of any coarse level, projected down to any finer level, keeps the same
// number of non-empty parts and identical Cut, Ncut and Mcut — because the
// internal weight folded into self-loops is counted by package partition.
func TestProjectPreservesObjectives(t *testing.T) {
	g := graph.RandomGeometric(600, 0.08, 3)
	ladder := HEM(g, 40, 3)
	if len(ladder) < 2 {
		t.Fatalf("want a multi-level ladder, got %d levels", len(ladder))
	}
	const k = 7
	coarsest := ladder[len(ladder)-1].G
	r := rng.New(13)
	assign := make([]int32, coarsest.NumVertices())
	for v := range assign {
		assign[v] = int32(r.Intn(k))
	}
	cp, err := partition.FromAssignment(coarsest, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	wantCut, wantNcut, wantMcut := objective.EvaluateAll(cp)
	wantParts := cp.NumParts()

	for li := len(ladder) - 1; li >= 0; li-- {
		assign = ladder[li].Project(assign)
		fine := g
		if li > 0 {
			fine = ladder[li-1].G
		}
		fp, err := partition.FromAssignment(fine, assign, k)
		if err != nil {
			t.Fatalf("level %d: %v", li, err)
		}
		if fp.NumParts() != wantParts {
			t.Fatalf("level %d: %d parts, want %d", li, fp.NumParts(), wantParts)
		}
		cut, ncut, mcut := objective.EvaluateAll(fp)
		if !almost(cut, wantCut) || !almost(ncut, wantNcut) || !almost(mcut, wantMcut) {
			t.Fatalf("level %d: (Cut,Ncut,Mcut)=(%g,%g,%g), want (%g,%g,%g)",
				li, cut, ncut, mcut, wantCut, wantNcut, wantMcut)
		}
		if err := fp.Validate(); err != nil {
			t.Fatalf("level %d: %v", li, err)
		}
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > 1 || b < -1 {
		if b < 0 {
			scale = -b
		} else {
			scale = b
		}
	}
	return d <= 1e-9*scale
}

// serialHeavyEdgeMatching is the pre-parallelization algorithm, kept as the
// reference the speculate-then-commit matching must reproduce bit for bit.
func serialHeavyEdgeMatching(g *graph.Graph, r *rand.Rand) []int32 {
	n := g.NumVertices()
	match := make([]int32, n)
	for v := range match {
		match[v] = int32(v)
	}
	order := make([]int, n)
	rng.Perm(r, order)
	for _, v := range order {
		if match[v] != int32(v) {
			continue
		}
		nbrs := g.Neighbors(v)
		wts := g.Weights(v)
		best, bestW := -1, 0.0
		for i, u := range nbrs {
			if match[u] == u && int(u) != v && wts[i] > bestW {
				best, bestW = int(u), wts[i]
			}
		}
		if best >= 0 {
			match[v] = int32(best)
			match[best] = int32(v)
		}
	}
	return match
}

// TestParallelMatchingMatchesSerial drives both matchings from identical RNG
// states over graphs on both sides of the parallelMatchMin threshold —
// including weighted grids with heavy duplicate-weight ties — and requires
// identical output. Run under -race this also proves the speculative phase
// is data-race-free.
func TestParallelMatchingMatchesSerial(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid20x20": graph.Grid2D(20, 20),
		"gnp1000":   graph.GNP(1000, 0.01, 5),
		"wgrid80x80": graph.WeightedGrid2D(80, 80, func(u, v int) float64 {
			return float64(1 + (u+v)%3) // many equal-weight ties
		}),
	}
	seeds := int64(4)
	if testing.Short() {
		// -short (CI runs it under -race) drops to one seed and skips the
		// O(n^2)-to-construct random graphs, whose generators dominate the
		// instrumented run. wgrid80x80 (6400 vertices) stays above
		// parallelMatchMin, so the speculative phase still runs raced.
		seeds = 1
	} else {
		graphs["geo5000"] = graph.RandomGeometric(5000, 0.015, 2)
		graphs["gnp6000"] = graph.GNP(6000, 0.002, 9)
	}
	for name, g := range graphs {
		for seed := int64(0); seed < seeds; seed++ {
			got := heavyEdgeMatching(g, rng.New(seed))
			want := serialHeavyEdgeMatching(g, rng.New(seed))
			if len(got) != len(want) {
				t.Fatalf("%s seed %d: length %d vs %d", name, seed, len(got), len(want))
			}
			for v := range got {
				if got[v] != want[v] {
					t.Fatalf("%s seed %d: match[%d] = %d, serial reference %d",
						name, seed, v, got[v], want[v])
				}
			}
		}
	}
}

// TestHEMDeterministic: identical seeds must yield identical ladders even
// with the parallel speculative phase in play.
func TestHEMDeterministic(t *testing.T) {
	var g *graph.Graph
	if testing.Short() {
		// The O(n^2) geometric generator dominates an instrumented (-race)
		// run; a weighted grid builds in O(n) and, at 4900 vertices, still
		// drives the parallel speculative phase on the first levels.
		g = graph.WeightedGrid2D(70, 70, func(u, v int) float64 {
			return float64(1 + (u*7+v)%5)
		})
	} else {
		g = graph.RandomGeometric(5000, 0.015, 3)
	}
	a := HEM(g, 64, 42)
	b := HEM(g, 64, 42)
	if len(a) != len(b) {
		t.Fatalf("ladder lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].G.NumVertices() != b[i].G.NumVertices() || a[i].G.NumEdges() != b[i].G.NumEdges() {
			t.Fatalf("level %d shapes differ", i)
		}
		for v := range a[i].Map {
			if a[i].Map[v] != b[i].Map[v] {
				t.Fatalf("level %d: map[%d] differs", i, v)
			}
		}
	}
}
