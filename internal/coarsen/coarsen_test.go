package coarsen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
)

func TestHEMReducesAndPreservesWeight(t *testing.T) {
	g := graph.Grid2D(16, 16)
	ladder := HEM(g, 40, 3)
	if len(ladder) == 0 {
		t.Fatal("no coarsening")
	}
	prev := g
	for i, lvl := range ladder {
		if lvl.G.NumVertices() >= prev.NumVertices() {
			t.Fatalf("level %d did not shrink: %d -> %d", i, prev.NumVertices(), lvl.G.NumVertices())
		}
		if lvl.G.TotalVertexWeight() != prev.TotalVertexWeight() {
			t.Fatalf("level %d lost vertex weight", i)
		}
		prev = lvl.G
	}
	if prev.NumVertices() > 40 {
		t.Fatalf("coarsest still has %d vertices", prev.NumVertices())
	}
}

func TestHEMMapsAreSurjective(t *testing.T) {
	g := graph.RandomGeometric(120, 0.18, 9)
	ladder := HEM(g, 20, 9)
	prev := g
	for _, lvl := range ladder {
		hit := make([]bool, lvl.G.NumVertices())
		if len(lvl.Map) != prev.NumVertices() {
			t.Fatalf("map length %d != fine size %d", len(lvl.Map), prev.NumVertices())
		}
		for _, c := range lvl.Map {
			hit[c] = true
		}
		for c, ok := range hit {
			if !ok {
				t.Fatalf("coarse vertex %d has no preimage", c)
			}
		}
		prev = lvl.G
	}
}

func TestHEMPrefersHeavyEdges(t *testing.T) {
	// A path with one very heavy edge: the heavy pair must be contracted
	// in the first level.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 100)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g := b.MustBuild()
	ladder := HEM(g, 2, 1)
	if len(ladder) == 0 {
		t.Fatal("no coarsening")
	}
	m := ladder[0].Map
	if m[2] != m[3] {
		t.Fatalf("heavy edge {2,3} not contracted: %v", m)
	}
}

func TestHEMEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(5).MustBuild()
	if ladder := HEM(g, 2, 1); len(ladder) != 0 {
		t.Fatalf("edgeless graph coarsened %d levels", len(ladder))
	}
}

// TestContractConservesTotalWeight checks the folding invariant level by
// level: edge weight never disappears, it only migrates from the adjacency
// into coarse-vertex self-loops, and vertex weight is preserved exactly.
func TestContractConservesTotalWeight(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *graph.Graph
	}{
		{"grid", graph.Grid2D(20, 20)},
		{"geometric", graph.RandomGeometric(400, 0.1, 5)},
		{"gnp", graph.GNP(300, 0.03, 11)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			total := tc.g.TotalEdgeWeight() + tc.g.TotalLoopWeight()
			ladder := HEM(tc.g, 25, 7)
			if len(ladder) < 2 {
				t.Fatalf("want a multi-level ladder, got %d levels", len(ladder))
			}
			for i, lvl := range ladder {
				got := lvl.G.TotalEdgeWeight() + lvl.G.TotalLoopWeight()
				if !almost(got, total) {
					t.Fatalf("level %d: edge+loop weight %g, want %g", i, got, total)
				}
				if !almost(lvl.G.TotalVertexWeight(), tc.g.TotalVertexWeight()) {
					t.Fatalf("level %d: vertex weight %g, want %g", i, lvl.G.TotalVertexWeight(), tc.g.TotalVertexWeight())
				}
			}
		})
	}
}

// TestProjectPreservesObjectives is the core V-cycle guarantee: a partition
// of any coarse level, projected down to any finer level, keeps the same
// number of non-empty parts and identical Cut, Ncut and Mcut — because the
// internal weight folded into self-loops is counted by package partition.
func TestProjectPreservesObjectives(t *testing.T) {
	g := graph.RandomGeometric(600, 0.08, 3)
	ladder := HEM(g, 40, 3)
	if len(ladder) < 2 {
		t.Fatalf("want a multi-level ladder, got %d levels", len(ladder))
	}
	const k = 7
	coarsest := ladder[len(ladder)-1].G
	r := rng.New(13)
	assign := make([]int32, coarsest.NumVertices())
	for v := range assign {
		assign[v] = int32(r.Intn(k))
	}
	cp, err := partition.FromAssignment(coarsest, assign, k)
	if err != nil {
		t.Fatal(err)
	}
	wantCut, wantNcut, wantMcut := objective.EvaluateAll(cp)
	wantParts := cp.NumParts()

	for li := len(ladder) - 1; li >= 0; li-- {
		assign = ladder[li].Project(assign)
		fine := g
		if li > 0 {
			fine = ladder[li-1].G
		}
		fp, err := partition.FromAssignment(fine, assign, k)
		if err != nil {
			t.Fatalf("level %d: %v", li, err)
		}
		if fp.NumParts() != wantParts {
			t.Fatalf("level %d: %d parts, want %d", li, fp.NumParts(), wantParts)
		}
		cut, ncut, mcut := objective.EvaluateAll(fp)
		if !almost(cut, wantCut) || !almost(ncut, wantNcut) || !almost(mcut, wantMcut) {
			t.Fatalf("level %d: (Cut,Ncut,Mcut)=(%g,%g,%g), want (%g,%g,%g)",
				li, cut, ncut, mcut, wantCut, wantNcut, wantMcut)
		}
		if err := fp.Validate(); err != nil {
			t.Fatalf("level %d: %v", li, err)
		}
	}
}

func almost(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	scale := 1.0
	if b > 1 || b < -1 {
		if b < 0 {
			scale = -b
		} else {
			scale = b
		}
	}
	return d <= 1e-9*scale
}
