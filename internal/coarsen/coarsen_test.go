package coarsen

import (
	"testing"

	"repro/internal/graph"
)

func TestHEMReducesAndPreservesWeight(t *testing.T) {
	g := graph.Grid2D(16, 16)
	ladder := HEM(g, 40, 3)
	if len(ladder) == 0 {
		t.Fatal("no coarsening")
	}
	prev := g
	for i, lvl := range ladder {
		if lvl.G.NumVertices() >= prev.NumVertices() {
			t.Fatalf("level %d did not shrink: %d -> %d", i, prev.NumVertices(), lvl.G.NumVertices())
		}
		if lvl.G.TotalVertexWeight() != prev.TotalVertexWeight() {
			t.Fatalf("level %d lost vertex weight", i)
		}
		prev = lvl.G
	}
	if prev.NumVertices() > 40 {
		t.Fatalf("coarsest still has %d vertices", prev.NumVertices())
	}
}

func TestHEMMapsAreSurjective(t *testing.T) {
	g := graph.RandomGeometric(120, 0.18, 9)
	ladder := HEM(g, 20, 9)
	prev := g
	for _, lvl := range ladder {
		hit := make([]bool, lvl.G.NumVertices())
		if len(lvl.Map) != prev.NumVertices() {
			t.Fatalf("map length %d != fine size %d", len(lvl.Map), prev.NumVertices())
		}
		for _, c := range lvl.Map {
			hit[c] = true
		}
		for c, ok := range hit {
			if !ok {
				t.Fatalf("coarse vertex %d has no preimage", c)
			}
		}
		prev = lvl.G
	}
}

func TestHEMPrefersHeavyEdges(t *testing.T) {
	// A path with one very heavy edge: the heavy pair must be contracted
	// in the first level.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 100)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 5, 1)
	g := b.MustBuild()
	ladder := HEM(g, 2, 1)
	if len(ladder) == 0 {
		t.Fatal("no coarsening")
	}
	m := ladder[0].Map
	if m[2] != m[3] {
		t.Fatalf("heavy edge {2,3} not contracted: %v", m)
	}
}

func TestHEMEdgelessGraph(t *testing.T) {
	g := graph.NewBuilder(5).MustBuild()
	if ladder := HEM(g, 2, 1); len(ladder) != 0 {
		t.Fatalf("edgeless graph coarsened %d levels", len(ladder))
	}
}
