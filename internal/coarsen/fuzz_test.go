package coarsen

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// FuzzProtectedMatching closes the latent gap that the matcher — the one
// piece of the coarsener with a hand-rolled parallel phase — had no
// seeded-corpus fuzz target. The fuzzer builds adversarial graphs (three
// degree-distribution regimes: uniform random, hub-dominated star overlays,
// and near-path chains with duplicate edge weights, all with self-loops and
// non-unit vertex weights sprinkled in), draws a random protection mask from
// two random guide labelings, and asserts the matcher's whole contract:
//
//   - the committed matching equals the serial reference bit for bit at the
//     fuzzed speculative worker count (determinism across parallelism);
//   - it is an involution that never pairs a protected or identical vertex;
//   - it never panics, whatever the shape of the graph.
//
// The committed corpus lives under testdata/fuzz/FuzzProtectedMatching and
// is replayed as plain tests by the CI "Fuzz seeds smoke" step.
func FuzzProtectedMatching(f *testing.F) {
	// (n, edgeSeed, maskSeed, regime, workers) — the corpus pins one seed per
	// regime, a degenerate tiny graph, an everything-protected mask, and a
	// worker count far above the vertex count.
	f.Add(uint16(60), uint64(1), uint64(2), uint16(0), uint16(3))
	f.Add(uint16(120), uint64(7), uint64(0), uint16(1), uint16(4))
	f.Add(uint16(90), uint64(3), uint64(11), uint16(2), uint16(8))
	f.Add(uint16(2), uint64(0), uint64(0), uint16(0), uint16(1))
	f.Add(uint16(40), uint64(5), uint64(0xffff), uint16(1), uint16(64))
	f.Fuzz(func(t *testing.T, n uint16, edgeSeed, maskSeed uint64, regime, workers uint16) {
		g := fuzzGraph(int(n), int64(edgeSeed), int(regime%3))
		nv := g.NumVertices()

		// Random protection mask from two guide labelings, the exact shape
		// HEMProtected derives from parent partitions. maskSeed 0 means no
		// protection (exercises the nil-protect fast path).
		var protect Protect
		if maskSeed != 0 {
			mr := rng.New(int64(maskSeed))
			ka := 2 + mr.Intn(6)
			ga := make([]int32, nv)
			gb := make([]int32, nv)
			for v := range ga {
				ga[v] = int32(mr.Intn(ka))
				gb[v] = int32(mr.Intn(3))
			}
			protect = func(u, v int) bool { return ga[u] != ga[v] || gb[u] != gb[v] }
		}

		w := 1 + int(workers%64)
		got := heavyEdgeMatchingWorkers(g, rng.New(int64(edgeSeed)+42), protect, w)
		want := serialProtectedMatching(g, rng.New(int64(edgeSeed)+42), protect)
		for v := range got {
			if got[v] != want[v] {
				t.Fatalf("workers=%d: match[%d] = %d, serial reference %d", w, v, got[v], want[v])
			}
		}
		for v, m := range got {
			if int(m) == v {
				continue
			}
			if int(m) < 0 || int(m) >= nv {
				t.Fatalf("match[%d] = %d out of range", v, m)
			}
			if got[m] != int32(v) {
				t.Fatalf("match not an involution at %d (-> %d -> %d)", v, m, got[m])
			}
			if protect != nil && protect(v, int(m)) {
				t.Fatalf("protected pair {%d,%d} matched", v, m)
			}
		}
	})
}

// fuzzGraph builds a connected-ish test graph with n vertices (clamped to
// [2, 256]) in one of three degree regimes: 0 = uniform random edges,
// 1 = hub-dominated (a few vertices carry most of the degree), 2 = a path
// with random chords and heavy duplicate edge weights. All regimes add
// self-loops and non-unit vertex weights.
func fuzzGraph(n int, seed int64, regime int) *graph.Graph {
	if n < 2 {
		n = 2
	}
	if n > 256 {
		n = 256
	}
	r := rng.New(seed)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetVertexWeight(v, float64(1+r.Intn(5)))
	}
	addEdge := func(u, v int) {
		if u != v {
			b.AddEdge(u, v, float64(1+r.Intn(4)))
		}
	}
	switch regime {
	case 1: // hubs: vertex i%max(1,n/16) fans out everywhere
		hubs := n / 16
		if hubs < 1 {
			hubs = 1
		}
		for i := 0; i < 4*n; i++ {
			addEdge(r.Intn(hubs), r.Intn(n))
		}
	case 2: // path + chords, duplicate weights merge in the builder
		for v := 1; v < n; v++ {
			b.AddEdge(v-1, v, float64(1+v%3))
		}
		for i := 0; i < n; i++ {
			addEdge(r.Intn(n), r.Intn(n))
		}
	default: // uniform random
		for i := 0; i < 3*n; i++ {
			addEdge(r.Intn(n), r.Intn(n))
		}
	}
	for i := 0; i < n/6+1; i++ {
		b.AddSelfLoop(r.Intn(n), float64(1+r.Intn(3)))
	}
	return b.MustBuild()
}
