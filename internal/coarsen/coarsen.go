// Package coarsen implements the graph-coarsening substrate shared by the
// multilevel partitioner and the multilevel RQI eigensolver: repeated
// contraction of heavy-edge matchings, preserving vertex weights and
// accumulating parallel edge weights.
package coarsen

import (
	"math/rand"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Level is one rung of the coarsening ladder: the coarse graph together with
// the mapping from the previous (finer) graph's vertices to coarse vertices.
type Level struct {
	G   *graph.Graph
	Map []int32 // fine vertex id -> coarse vertex id
}

// HEM repeatedly contracts a heavy-edge matching (Hendrickson-Leland
// / Karypis-Kumar style) until the graph has at most minSize vertices or the
// reduction stalls. It returns the ladder from finest to coarsest; entry i
// maps the vertices of graph i-1 (or of g for i == 0) onto graph i.
func HEM(g *graph.Graph, minSize int, seed int64) []Level {
	r := rng.New(seed)
	var ladder []Level
	cur := g
	for cur.NumVertices() > minSize {
		match := heavyEdgeMatching(cur, r)
		coarse, toCoarse := contract(cur, match)
		if coarse.NumVertices() >= cur.NumVertices() {
			break // no reduction possible (e.g. edgeless graph)
		}
		ladder = append(ladder, Level{G: coarse, Map: toCoarse})
		if float64(coarse.NumVertices()) > 0.95*float64(cur.NumVertices()) {
			cur = coarse
			break // diminishing returns; stop coarsening
		}
		cur = coarse
	}
	return ladder
}

// heavyEdgeMatching visits vertices in random order and matches each
// unmatched vertex with its unmatched neighbor of maximum edge weight.
// match[v] == v for unmatched vertices.
func heavyEdgeMatching(g *graph.Graph, r *rand.Rand) []int32 {
	n := g.NumVertices()
	match := make([]int32, n)
	for v := range match {
		match[v] = int32(v)
	}
	order := make([]int, n)
	rng.Perm(r, order)
	for _, v := range order {
		if match[v] != int32(v) {
			continue
		}
		nbrs := g.Neighbors(v)
		wts := g.Weights(v)
		best, bestW := -1, 0.0
		for i, u := range nbrs {
			if match[u] == u && int(u) != v && wts[i] > bestW {
				best, bestW = int(u), wts[i]
			}
		}
		if best >= 0 {
			match[v] = int32(best)
			match[best] = int32(v)
		}
	}
	return match
}

// contract merges each matched pair into one coarse vertex. Coarse vertex
// weights are the sums of their constituents; parallel coarse edges are
// accumulated and self-loops dropped (their weight can never be cut).
func contract(g *graph.Graph, match []int32) (*graph.Graph, []int32) {
	n := g.NumVertices()
	toCoarse := make([]int32, n)
	for v := range toCoarse {
		toCoarse[v] = -1
	}
	nc := int32(0)
	for v := 0; v < n; v++ {
		if toCoarse[v] >= 0 {
			continue
		}
		toCoarse[v] = nc
		if m := int(match[v]); m != v && toCoarse[m] < 0 {
			toCoarse[m] = nc
		}
		nc++
	}
	b := graph.NewBuilder(int(nc))
	vw := make([]float64, nc)
	for v := 0; v < n; v++ {
		vw[toCoarse[v]] += g.VertexWeight(v)
	}
	for c, w := range vw {
		b.SetVertexWeight(c, w)
	}
	g.ForEachEdge(func(u, v int, w float64) {
		cu, cv := toCoarse[u], toCoarse[v]
		if cu != cv {
			b.AddEdge(int(cu), int(cv), w)
		}
	})
	return b.MustBuild(), toCoarse
}
