// Package coarsen implements the graph-coarsening substrate shared by the
// multilevel partitioner, the multilevel RQI eigensolver and the V-cycle
// metaheuristic driver (package vcycle): repeated contraction of heavy-edge
// matchings, preserving vertex weights and accumulating parallel edge
// weights.
//
// Contraction loses no weight: an edge that ends up inside a coarse vertex
// is folded into that vertex's self-loop weight (graph.Builder.AddSelfLoop),
// and self-loop weight already present on the finer level is carried along.
// Package partition counts self-loops toward part internal weight, so the
// Cut, Ncut and Mcut of a coarse partition equal those of its projection to
// any finer level exactly — which is what lets a metaheuristic optimize the
// true objective while searching the coarsest graph.
package coarsen

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Level is one rung of the coarsening ladder: the coarse graph together with
// the mapping from the previous (finer) graph's vertices to coarse vertices.
type Level struct {
	G   *graph.Graph
	Map []int32 // fine vertex id -> coarse vertex id
}

// Project maps a partition of this level's coarse graph back onto the finer
// level: fine vertex v inherits the part of the coarse vertex it contracted
// into. The result has one entry per finer-level vertex; coarse is not
// modified. Because contraction folds internal weight into self-loops, the
// projected partition has identical Cut, Ncut and Mcut (and the same
// non-empty parts) as the coarse one.
func (l Level) Project(coarse []int32) []int32 {
	fine := make([]int32, len(l.Map))
	for v := range fine {
		fine[v] = coarse[l.Map[v]]
	}
	return fine
}

// HEM repeatedly contracts a heavy-edge matching (Hendrickson-Leland
// / Karypis-Kumar style) until the graph has at most minSize vertices or the
// reduction stalls. It returns the ladder from finest to coarsest; entry i
// maps the vertices of graph i-1 (or of g for i == 0) onto graph i.
func HEM(g *graph.Graph, minSize int, seed int64) []Level {
	ladder, _ := HEMContext(context.Background(), g, minSize, seed)
	return ladder
}

// HEMContext is HEM under cooperative cancellation: each level — one O(m)
// matching-plus-contraction pass, the natural step boundary — polls ctx, and
// the call returns ctx.Err() once it fires. No partial ladder is returned.
func HEMContext(ctx context.Context, g *graph.Graph, minSize int, seed int64) ([]Level, error) {
	r := rng.New(seed)
	var ladder []Level
	cur := g
	for cur.NumVertices() > minSize {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		match := heavyEdgeMatching(cur, r)
		coarse, toCoarse := contract(cur, match)
		if coarse.NumVertices() >= cur.NumVertices() {
			break // no reduction possible (e.g. edgeless graph)
		}
		ladder = append(ladder, Level{G: coarse, Map: toCoarse})
		if float64(coarse.NumVertices()) > 0.95*float64(cur.NumVertices()) {
			cur = coarse
			break // diminishing returns; stop coarsening
		}
		cur = coarse
	}
	return ladder, nil
}

// HEMProtected is HEMContext with cut-edge protection: guides are complete
// vertex labelings of g (typically the two parent assignments of a memetic
// recombination), and an edge whose endpoints disagree under ANY guide is
// protected — the matcher never contracts it, at any level, so every guide's
// cut structure survives to the coarsest graph intact.
//
// Because contraction only ever merges vertices that agree under every
// guide, each coarse vertex is homogeneous with respect to all guides; the
// guides therefore project level by level (a coarse vertex inherits its
// constituents' shared label), and the returned coarseGuides are the input
// guides restated on the coarsest graph. Combined with the self-loop
// folding of contract, a guide's Cut, Ncut and Mcut on the coarsest graph
// equal its values on g exactly, so refinement at any level optimizes the
// true fine-graph objective.
//
// Coarsening stops at minSize vertices, when protection leaves no
// contractible edge, or when the reduction stalls; guides with a label set
// of k parts bound the coarsest size from below by roughly the number of
// connected intersection blocks of the guides (at most k^len(guides) for
// two k-way parents), which is the operator's point: the coarsest graph IS
// the overlay of the parent cuts. ctx is polled per level like HEMContext.
func HEMProtected(ctx context.Context, g *graph.Graph, minSize int, seed int64, guides [][]int32) (ladder []Level, coarseGuides [][]int32, err error) {
	for i, gd := range guides {
		if len(gd) != g.NumVertices() {
			return nil, nil, fmt.Errorf("coarsen: guide %d has %d labels for %d vertices", i, len(gd), g.NumVertices())
		}
	}
	r := rng.New(seed)
	cur := g
	coarseGuides = guides
	for cur.NumVertices() > minSize {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		cg := coarseGuides
		protect := func(u, v int) bool {
			for _, gd := range cg {
				if gd[u] != gd[v] {
					return true
				}
			}
			return false
		}
		match := heavyEdgeMatchingWorkers(cur, r, protect, matchWorkers(cur.NumVertices()))
		coarse, toCoarse := contract(cur, match)
		if coarse.NumVertices() >= cur.NumVertices() {
			break // no contractible (unprotected) edge left
		}
		ladder = append(ladder, Level{G: coarse, Map: toCoarse})
		coarseGuides = projectGuides(cg, toCoarse, coarse.NumVertices())
		if float64(coarse.NumVertices()) > 0.95*float64(cur.NumVertices()) {
			cur = coarse
			break // diminishing returns; stop coarsening
		}
		cur = coarse
	}
	return ladder, coarseGuides, nil
}

// projectGuides restates fine-level guides on the coarse graph: every fine
// vertex of a coarse vertex shares each guide's label (the protection
// invariant), so the coarse label is simply any constituent's.
func projectGuides(guides [][]int32, toCoarse []int32, nc int) [][]int32 {
	out := make([][]int32, len(guides))
	for i, gd := range guides {
		cg := make([]int32, nc)
		for v, c := range toCoarse {
			cg[c] = gd[v]
		}
		out[i] = cg
	}
	return out
}

// Protect forbids the matcher from contracting specific edges: when
// Protect(u, v) reports true the edge {u, v} is skipped by every candidate
// scan, so u and v can never be merged into one coarse vertex. The memetic
// recombination operator protects the edges cut by either parent partition;
// nil protects nothing. A Protect function must be symmetric and stable for
// the duration of one matching pass.
type Protect func(u, v int) bool

// heavyEdgeMatching visits vertices in random order and matches each
// unmatched vertex with its unmatched neighbor of maximum edge weight.
// match[v] == v for unmatched vertices.
func heavyEdgeMatching(g *graph.Graph, r *rand.Rand) []int32 {
	return heavyEdgeMatchingWorkers(g, r, nil, matchWorkers(g.NumVertices()))
}

// matchWorkers picks the speculative-scan worker count for an n-vertex
// graph: GOMAXPROCS, or one goroutine below parallelMatchMin where spawn
// overhead exceeds the scan work. The matching is bit-identical either way.
func matchWorkers(n int) int {
	workers := runtime.GOMAXPROCS(0)
	if n < parallelMatchMin {
		workers = 1
	}
	return workers
}

// heavyEdgeMatchingWorkers is the matching engine behind heavyEdgeMatching
// and the protected ladders, with the speculative worker count explicit so
// tests can pin it.
//
// The matching is computed speculate-then-commit so the O(m) neighbor scans
// — the V-cycle's serial prefix — run on every core while the result stays
// bit-identical to the serial algorithm for ANY worker count. At the start
// of a pass every vertex is unmatched, so each vertex's first candidate (its
// heaviest eligible neighbor under the serial scan's first-index-of-maximum
// tie-break) is a pure function of the graph and the protection mask;
// speculateHeaviest computes them in parallel. The commit pass then walks
// the random order exactly as the serial code did: a speculative candidate
// that is still unmatched IS the serial choice — the unmatched set only
// shrinks during a pass and the protection mask never changes, so the
// heaviest eligible neighbor in the start-of-pass superset, if still
// unmatched, is also the first-index maximum over the current subset — and
// a candidate that was matched in the meantime falls back to the serial
// rescan. Protected edges are excluded from both scans symmetrically, so a
// protected pair can never commit.
func heavyEdgeMatchingWorkers(g *graph.Graph, r *rand.Rand, protect Protect, workers int) []int32 {
	n := g.NumVertices()
	match := make([]int32, n)
	for v := range match {
		match[v] = int32(v)
	}
	order := make([]int, n)
	rng.Perm(r, order)
	spec := speculateHeaviest(g, protect, workers)
	for _, v := range order {
		if match[v] != int32(v) {
			continue
		}
		best := int(spec[v])
		if best >= 0 && match[best] != int32(best) {
			best = rescanHeaviest(g, match, protect, v)
		}
		if best >= 0 {
			match[v] = int32(best)
			match[best] = int32(v)
		}
	}
	return match
}

// parallelMatchMin is the vertex count below which speculateHeaviest stays
// on one goroutine: under it, spawn and synchronization overhead exceeds
// the scan work. The result is schedule-independent either way.
const parallelMatchMin = 4096

// speculateHeaviest returns, per vertex, the neighbor the serial heavy-edge
// scan would pick on an all-unmatched graph: the first index of the maximum
// edge weight among eligible (unprotected, non-self) edges, -1 for vertices
// with no eligible neighbor. Pure function of (g, protect), computed on
// contiguous vertex ranges across the given worker count; each worker
// writes a disjoint slice range, so the output is deterministic for any
// schedule and any worker count.
func speculateHeaviest(g *graph.Graph, protect Protect, workers int) []int32 {
	n := g.NumVertices()
	spec := make([]int32, n)
	scan := func(lo, hi int) {
		for v := lo; v < hi; v++ {
			nbrs := g.Neighbors(v)
			wts := g.Weights(v)
			best, bestW := -1, 0.0
			if protect == nil {
				for i, u := range nbrs {
					if int(u) != v && wts[i] > bestW {
						best, bestW = int(u), wts[i]
					}
				}
			} else {
				for i, u := range nbrs {
					if int(u) != v && wts[i] > bestW && !protect(v, int(u)) {
						best, bestW = int(u), wts[i]
					}
				}
			}
			spec[v] = int32(best)
		}
	}
	if workers <= 1 || n < workers {
		scan(0, n)
		return spec
	}
	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			scan(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return spec
}

// rescanHeaviest is the serial fallback when a speculative candidate was
// matched before v's turn: the original scan over currently unmatched,
// unprotected neighbors, first-index-of-maximum tie-break.
func rescanHeaviest(g *graph.Graph, match []int32, protect Protect, v int) int {
	nbrs := g.Neighbors(v)
	wts := g.Weights(v)
	best, bestW := -1, 0.0
	for i, u := range nbrs {
		if match[u] == u && int(u) != v && wts[i] > bestW &&
			(protect == nil || !protect(v, int(u))) {
			best, bestW = int(u), wts[i]
		}
	}
	return best
}

// contract merges each matched pair into one coarse vertex. Coarse vertex
// weights are the sums of their constituents; parallel coarse edges are
// accumulated; the weight of a contracted edge — which can never be cut
// again — is folded into the coarse vertex's self-loop weight, together
// with any self-loop weight the constituents carried from earlier levels.
func contract(g *graph.Graph, match []int32) (*graph.Graph, []int32) {
	n := g.NumVertices()
	toCoarse := make([]int32, n)
	for v := range toCoarse {
		toCoarse[v] = -1
	}
	nc := int32(0)
	for v := 0; v < n; v++ {
		if toCoarse[v] >= 0 {
			continue
		}
		toCoarse[v] = nc
		if m := int(match[v]); m != v && toCoarse[m] < 0 {
			toCoarse[m] = nc
		}
		nc++
	}
	b := graph.NewBuilder(int(nc))
	vw := make([]float64, nc)
	for v := 0; v < n; v++ {
		vw[toCoarse[v]] += g.VertexWeight(v)
	}
	for c, w := range vw {
		b.SetVertexWeight(c, w)
	}
	g.ForEachEdge(func(u, v int, w float64) {
		cu, cv := toCoarse[u], toCoarse[v]
		if cu != cv {
			b.AddEdge(int(cu), int(cv), w)
		} else {
			b.AddSelfLoop(int(cu), w)
		}
	})
	if g.HasLoops() {
		for v := 0; v < n; v++ {
			if l := g.VertexLoop(v); l > 0 {
				b.AddSelfLoop(int(toCoarse[v]), l)
			}
		}
	}
	return b.MustBuild(), toCoarse
}
