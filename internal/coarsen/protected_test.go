package coarsen

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/rng"
)

// Property suite for cut-edge-protected matching, the substrate of the
// memetic recombination operator: for random graphs and random parent
// pairs, (1) no protected edge is ever contracted at any level, (2) every
// guide's coarse objectives equal its projected fine objectives exactly —
// the PR-4 invariant extended to protected ladders — and (3) the parallel
// speculate-then-commit matcher is bit-identical to the serial reference
// for pinned worker counts {1, 2, 4, 8} (run under -race in CI, which also
// proves the speculative phase data-race free at every width).

// randomGuides returns two complete k-labelings of g, every label present.
func randomGuides(g *graph.Graph, k int, r *rand.Rand) [][]int32 {
	guides := make([][]int32, 2)
	for i := range guides {
		assign := make([]int32, g.NumVertices())
		for v := range assign {
			assign[v] = int32(r.Intn(k))
		}
		perm := make([]int, len(assign))
		rng.Perm(r, perm)
		for a := 0; a < k; a++ {
			assign[perm[a]] = int32(a)
		}
		guides[i] = assign
	}
	return guides
}

// lumpyGraph is a random geometric graph with non-unit vertex weights and
// scattered self-loops, so the protected-ladder invariants are exercised on
// the full weight model, not just the unit-weight fast paths.
func lumpyGraph(n int, seed int64) *graph.Graph {
	base := graph.RandomGeometric(n, 0.12, seed)
	r := rng.New(seed + 100)
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetVertexWeight(v, float64(1+r.Intn(4)))
	}
	base.ForEachEdge(func(u, v int, w float64) {
		b.AddEdge(u, v, w*float64(1+r.Intn(3)))
	})
	for i := 0; i < n/10; i++ {
		b.AddSelfLoop(r.Intn(n), float64(1+r.Intn(5)))
	}
	return b.MustBuild()
}

func TestProtectedLadderInvariants(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		k    int
	}{
		{"grid16", graph.Grid2D(16, 16), 4},
		{"lumpy300", lumpyGraph(300, 5), 6},
		{"gnp250", graph.GNP(250, 0.04, 11), 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(0); seed < 3; seed++ {
				r := rng.New(seed * 31)
				guides := randomGuides(tc.g, tc.k, r)
				ladder, coarseGuides, err := HEMProtected(context.Background(), tc.g, 2*tc.k, seed, guides)
				if err != nil {
					t.Fatal(err)
				}

				// Reference objective values of each guide on the fine graph.
				type objs struct{ cut, ncut, mcut float64 }
				want := make([]objs, len(guides))
				for i, gd := range guides {
					p, err := partition.FromAssignment(tc.g, gd, tc.k)
					if err != nil {
						t.Fatal(err)
					}
					want[i].cut, want[i].ncut, want[i].mcut = objective.EvaluateAll(p)
				}

				fine := tc.g
				fineGuides := guides
				for li, lvl := range ladder {
					// (1) No protected edge contracted: endpoints that
					// disagree under any guide must land in distinct coarse
					// vertices.
					fine.ForEachEdge(func(u, v int, w float64) {
						for gi, gd := range fineGuides {
							if gd[u] != gd[v] && lvl.Map[u] == lvl.Map[v] {
								t.Fatalf("level %d: protected edge {%d,%d} (guide %d: %d vs %d) contracted",
									li, u, v, gi, gd[u], gd[v])
							}
						}
					})
					nextGuides := projectGuides(fineGuides, lvl.Map, lvl.G.NumVertices())
					// (2) Objective preservation per guide at this level.
					for gi, cg := range nextGuides {
						cp, err := partition.FromAssignment(lvl.G, cg, tc.k)
						if err != nil {
							t.Fatalf("level %d guide %d: %v", li, gi, err)
						}
						cut, ncut, mcut := objective.EvaluateAll(cp)
						if !almost(cut, want[gi].cut) || !almost(ncut, want[gi].ncut) || !almost(mcut, want[gi].mcut) {
							t.Fatalf("level %d guide %d: (Cut,Ncut,Mcut)=(%g,%g,%g), fine (%g,%g,%g)",
								li, gi, cut, ncut, mcut, want[gi].cut, want[gi].ncut, want[gi].mcut)
						}
					}
					fine = lvl.G
					fineGuides = nextGuides
				}
				// The returned coarse guides are the last projection.
				for gi := range coarseGuides {
					for v := range coarseGuides[gi] {
						if coarseGuides[gi][v] != fineGuides[gi][v] {
							t.Fatalf("guide %d: returned coarse labels differ from re-projection at %d", gi, v)
						}
					}
				}
			}
		})
	}
}

// serialProtectedMatching is the serial reference for the protected matcher:
// the pre-parallelization scan with the protection mask applied inline.
func serialProtectedMatching(g *graph.Graph, r *rand.Rand, protect Protect) []int32 {
	n := g.NumVertices()
	match := make([]int32, n)
	for v := range match {
		match[v] = int32(v)
	}
	order := make([]int, n)
	rng.Perm(r, order)
	for _, v := range order {
		if match[v] != int32(v) {
			continue
		}
		nbrs := g.Neighbors(v)
		wts := g.Weights(v)
		best, bestW := -1, 0.0
		for i, u := range nbrs {
			if match[u] == u && int(u) != v && wts[i] > bestW &&
				(protect == nil || !protect(v, int(u))) {
				best, bestW = int(u), wts[i]
			}
		}
		if best >= 0 {
			match[v] = int32(best)
			match[best] = int32(v)
		}
	}
	return match
}

// TestProtectedMatchingBitIdenticalAcrossWorkers pins the speculative worker
// count to {1, 2, 4, 8} and demands the committed matching equal the serial
// reference bit for bit on every width — on graphs well under the automatic
// parallel threshold, so the parallel path is genuinely forced.
func TestProtectedMatchingBitIdenticalAcrossWorkers(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid20x20": graph.Grid2D(20, 20),
		"wgrid40x40": graph.WeightedGrid2D(40, 40, func(u, v int) float64 {
			return float64(1 + (u+v)%3) // heavy duplicate-weight ties
		}),
		"gnp600": graph.GNP(600, 0.02, 7),
	}
	for name, g := range graphs {
		for seed := int64(0); seed < 3; seed++ {
			guides := randomGuides(g, 5, rng.New(seed+77))
			protect := func(u, v int) bool {
				return guides[0][u] != guides[0][v] || guides[1][u] != guides[1][v]
			}
			want := serialProtectedMatching(g, rng.New(seed), protect)
			for _, workers := range []int{1, 2, 4, 8} {
				got := heavyEdgeMatchingWorkers(g, rng.New(seed), protect, workers)
				for v := range got {
					if got[v] != want[v] {
						t.Fatalf("%s seed %d workers %d: match[%d] = %d, serial reference %d",
							name, seed, workers, v, got[v], want[v])
					}
				}
			}
			// Sanity: the matching must be a protection-respecting involution.
			for v, m := range want {
				if int(m) != v {
					if want[m] != int32(v) {
						t.Fatalf("%s seed %d: match not an involution at %d", name, seed, v)
					}
					if protect(v, int(m)) {
						t.Fatalf("%s seed %d: protected pair {%d,%d} matched", name, seed, v, m)
					}
				}
			}
		}
	}
}

// TestHEMProtectedRejectsBadGuides: guide length must equal the vertex count.
func TestHEMProtectedRejectsBadGuides(t *testing.T) {
	g := graph.Grid2D(4, 4)
	if _, _, err := HEMProtected(context.Background(), g, 4, 1, [][]int32{make([]int32, 3)}); err == nil {
		t.Fatal("want error for short guide")
	}
}

// TestHEMProtectedAllCutStalls: when every edge is protected the ladder is
// empty and the guides come back untouched — the coarsest graph is the
// input graph itself.
func TestHEMProtectedAllCutStalls(t *testing.T) {
	g := graph.Grid2D(6, 6)
	n := g.NumVertices()
	alternating := make([]int32, n)
	for v := range alternating {
		alternating[v] = int32((v%6 + v/6) % 2) // checkerboard: every edge cut
	}
	uniform := make([]int32, n)
	ladder, cg, err := HEMProtected(context.Background(), g, 4, 1, [][]int32{alternating, uniform})
	if err != nil {
		t.Fatal(err)
	}
	if len(ladder) != 0 {
		t.Fatalf("checkerboard guide protected every edge, yet ladder has %d levels", len(ladder))
	}
	for v := range alternating {
		if cg[0][v] != alternating[v] || cg[1][v] != uniform[v] {
			t.Fatalf("guides mutated at %d", v)
		}
	}
}
