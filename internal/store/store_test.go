package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/graph"
)

func TestPutGetDelete(t *testing.T) {
	s, err := Open("", 0)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Grid2D(4, 4)
	id, created, err := s.Put(g)
	if err != nil || !created {
		t.Fatalf("Put: created=%v err=%v", created, err)
	}
	if id != graph.Digest(g) {
		t.Fatalf("id %s is not the content digest", id)
	}
	// Dedup: same content, same id, not created.
	id2, created2, err := s.Put(graph.Grid2D(4, 4))
	if err != nil || created2 || id2 != id {
		t.Fatalf("dedup Put: id=%s created=%v err=%v", id2, created2, err)
	}
	got, ok := s.Get(id)
	if !ok || graph.Digest(got) != id {
		t.Fatalf("Get: ok=%v", ok)
	}
	if !s.Contains(id) {
		t.Fatal("Contains false for stored id")
	}
	if !s.Delete(id) {
		t.Fatal("Delete reported missing")
	}
	if _, ok := s.Get(id); ok {
		t.Fatal("Get after Delete succeeded")
	}
	if s.Delete(id) {
		t.Fatal("second Delete reported present")
	}
}

func TestMemoryOnlyEvictionIsPermanent(t *testing.T) {
	g1, g2 := graph.Grid2D(6, 6), graph.Cycle(40)
	bound := int64(len(graph.EncodeBinary(g1)) + len(graph.EncodeBinary(g2)))
	s, err := Open("", bound)
	if err != nil {
		t.Fatal(err)
	}
	id1, _, _ := s.Put(g1)
	id2, _, _ := s.Put(g2)
	// A third graph overflows the bound; the LRU victim is g1.
	id3, _, _ := s.Put(graph.Complete(12))
	if _, ok := s.Get(id1); ok {
		t.Fatal("evicted id still addressable in a memory-only store")
	}
	for _, id := range []string{id2, id3} {
		if _, ok := s.Get(id); !ok {
			t.Fatalf("resident id %s lost", id[:12])
		}
	}
	st := s.Stats()
	if st.MemEntries != 2 || st.DiskEntries != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestLRUOrderRespectsGets(t *testing.T) {
	g1, g2 := graph.Grid2D(6, 6), graph.Cycle(40)
	bound := int64(len(graph.EncodeBinary(g1)) + len(graph.EncodeBinary(g2)))
	s, _ := Open("", bound)
	id1, _, _ := s.Put(g1)
	id2, _, _ := s.Put(g2)
	s.Get(id1) // touch: id2 becomes the LRU victim
	s.Put(graph.Path(10))
	if _, ok := s.Get(id1); !ok {
		t.Fatal("recently used id evicted")
	}
	if _, ok := s.Get(id2); ok {
		t.Fatal("least recently used id survived")
	}
}

func TestDiskSpillAndReload(t *testing.T) {
	dir := t.TempDir()
	g1, g2 := graph.Grid2D(6, 6), graph.Cycle(40)
	bound := int64(len(graph.EncodeBinary(g1)) + len(graph.EncodeBinary(g2)))
	s, err := Open(dir, bound)
	if err != nil {
		t.Fatal(err)
	}
	id1, _, _ := s.Put(g1)
	s.Put(g2)
	s.Put(graph.Complete(12)) // evicts g1 from memory; file stays
	if _, ok := s.Get(id1); !ok {
		t.Fatal("spilled id not reloadable")
	}
	st := s.Stats()
	if st.DiskEntries != 3 {
		t.Fatalf("want 3 disk entries, got %+v", st)
	}
}

func TestRestartRescan(t *testing.T) {
	dir := t.TempDir()
	s1, _ := Open(dir, 0)
	g := graph.GNP(50, 0.1, 3)
	id, _, _ := s1.Put(g)

	// A fresh store over the same directory sees the graph again.
	s2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(id)
	if !ok {
		t.Fatal("rescan lost the stored graph")
	}
	if graph.Digest(got) != id {
		t.Fatal("rescan returned a different graph")
	}
	// Dedup survives the restart too: re-uploading is not "created".
	_, created, err := s2.Put(g)
	if err != nil || created {
		t.Fatalf("re-upload after restart: created=%v err=%v", created, err)
	}

	// Junk in the directory is ignored, not served.
	if err := os.WriteFile(filepath.Join(dir, "junk.ffg"), []byte("not a graph"), 0o644); err != nil {
		t.Fatal(err)
	}
	misnamed := filepath.Join(dir, "0000000000000000000000000000000000000000000000000000000000000000.ffg")
	if err := os.WriteFile(misnamed, graph.EncodeBinary(graph.Path(3)), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Contains("junk") {
		t.Fatal("junk file indexed")
	}
	if s3.Contains("0000000000000000000000000000000000000000000000000000000000000000") {
		t.Fatal("misnamed file indexed")
	}
	if !s3.Contains(id) {
		t.Fatal("valid file skipped")
	}
}

func TestCorruptedSpillRefused(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, int64(len(graph.EncodeBinary(graph.Grid2D(6, 6)))))
	id, _, _ := s.Put(graph.Grid2D(6, 6))
	s.Put(graph.Cycle(40)) // evict the grid to disk only
	// Flip a byte in the spill file's body.
	path := filepath.Join(dir, id+".ffg")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(id); ok {
		t.Fatal("corrupted spill file served")
	}
}

func TestOversizeGraphStillWorks(t *testing.T) {
	s, _ := Open("", 16) // bound smaller than any encoding
	id, _, err := s.Put(graph.Grid2D(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(id); !ok {
		t.Fatal("oversize graph not addressable: the newest entry must never self-evict")
	}
}

func TestConcurrentAccess(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 1<<20)
	graphs := make([]*graph.Graph, 8)
	ids := make([]string, 8)
	for i := range graphs {
		graphs[i] = graph.GNP(30+i, 0.2, int64(i))
		ids[i] = graph.Digest(graphs[i])
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (w + i) % len(graphs)
				switch i % 3 {
				case 0:
					if _, _, err := s.Put(graphs[k]); err != nil {
						t.Errorf("Put: %v", err)
					}
				case 1:
					if g, ok := s.Get(ids[k]); ok && graph.Digest(g) != ids[k] {
						t.Error("Get returned the wrong graph")
					}
				case 2:
					s.Contains(ids[k])
				}
			}
		}(w)
	}
	wg.Wait()
	for i, id := range ids {
		if _, _, err := s.Put(graphs[i]); err != nil {
			t.Fatal(err)
		}
		if _, ok := s.Get(id); !ok {
			t.Fatalf("graph %d lost after concurrent churn", i)
		}
	}
}

func TestStatsShape(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir, 123456)
	for i := 0; i < 3; i++ {
		if _, _, err := s.Put(graph.Path(10 + i)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.MemEntries != 3 || st.DiskEntries != 3 || st.MaxBytes != 123456 {
		t.Fatalf("stats: %+v", st)
	}
	if st.MemBytes <= 0 || st.DiskBytes != st.MemBytes {
		t.Fatalf("byte accounting: %+v", st)
	}
	_ = fmt.Sprintf("%+v", st) // Stats must be printable (used in /v1/graphs listing)
}
