// Package store is the server's persistent, content-addressed graph store.
//
// Graphs are identified by their content digest (graph.Digest): uploading
// the same graph twice — in any encoding, any edge order — lands on the
// same id and stores one copy. The store keeps a bounded in-memory tier of
// decoded graphs in LRU order and, when configured with a directory, spills
// every graph to disk in the binary CSR format (graph.EncodeBinary) so
// evicted entries reload with zero parse cost and the whole store survives
// a restart. Without a directory the store is memory-only and eviction is
// permanent — exactly the "404 on evicted id" behaviour the service
// documents.
package store

import (
	"container/list"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/graph"
)

// DefaultMaxBytes bounds the in-memory tier when the caller passes 0:
// 256 MiB of encoded graph, roughly a couple hundred million edges.
const DefaultMaxBytes = 256 << 20

// fileExt is the on-disk suffix for spilled graphs: <digest>.ffg.
const fileExt = ".ffg"

// Store is a content-addressed graph store with an LRU memory tier and
// optional on-disk spill. All methods are safe for concurrent use.
type Store struct {
	dir      string
	maxBytes int64

	mu       sync.Mutex
	byID     map[string]*list.Element // id -> element in lru
	lru      *list.List               // front = most recently used; values are *entry
	memBytes int64
	onDisk   map[string]int64 // id -> encoded size, for graphs present on disk
}

// entry is one resident graph in the memory tier.
type entry struct {
	id   string
	g    *graph.Graph
	size int64 // encoded size, the unit the memory bound is in
}

// Stats is a point-in-time snapshot of the store's occupancy.
type Stats struct {
	// MemEntries and MemBytes describe the decoded in-memory tier; MemBytes
	// counts encoded sizes, the unit MaxBytes bounds.
	MemEntries int   `json:"mem_entries"`
	MemBytes   int64 `json:"mem_bytes"`
	// DiskEntries and DiskBytes describe the spill directory (zero for a
	// memory-only store).
	DiskEntries int   `json:"disk_entries"`
	DiskBytes   int64 `json:"disk_bytes"`
	// MaxBytes is the configured memory-tier bound.
	MaxBytes int64 `json:"max_bytes"`
}

// Open creates a store. dir == "" selects a memory-only store; otherwise
// dir is created if needed and rescanned, so graphs spilled by a previous
// process are immediately addressable again. maxBytes bounds the memory
// tier by encoded size (0 = DefaultMaxBytes).
func Open(dir string, maxBytes int64) (*Store, error) {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	s := &Store{
		dir:      dir,
		maxBytes: maxBytes,
		byID:     make(map[string]*list.Element),
		lru:      list.New(),
		onDisk:   make(map[string]int64),
	}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: scanning %s: %w", dir, err)
	}
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, fileExt) {
			continue
		}
		id := strings.TrimSuffix(name, fileExt)
		// Cheap header check: magic, version, counts, and that the file is
		// named by its own digest. Content integrity is verified on load.
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			continue
		}
		hdr := make([]byte, 64)
		k, _ := f.Read(hdr)
		f.Close()
		info, err := graph.PeekBinary(hdr[:k])
		if err != nil || info.Digest != id {
			continue // not ours; leave the file alone but don't index it
		}
		s.onDisk[id] = int64(info.EncodedLen)
	}
	return s, nil
}

// path returns the spill path for id.
func (s *Store) path(id string) string { return filepath.Join(s.dir, id+fileExt) }

// Put stores g and returns its content id. The second result reports
// whether the graph was new (false = deduplicated against an existing
// copy). The encoded form is written to disk before the id becomes
// addressable, so a crash never leaves a dangling id.
func (s *Store) Put(g *graph.Graph) (string, bool, error) {
	data := graph.EncodeBinary(g)
	id := graph.Digest(g)

	s.mu.Lock()
	if el, ok := s.byID[id]; ok {
		s.lru.MoveToFront(el)
		s.mu.Unlock()
		return id, false, nil
	}
	_, spilled := s.onDisk[id]
	s.mu.Unlock()

	if s.dir != "" && !spilled {
		if err := writeAtomic(s.path(id), data); err != nil {
			return "", false, fmt.Errorf("store: spilling %s: %w", id[:12], err)
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	created := !spilled
	if _, ok := s.byID[id]; ok {
		return id, false, nil // racing Put of the same graph won
	}
	s.admit(id, g, int64(len(data)))
	if s.dir != "" {
		s.onDisk[id] = int64(len(data))
	}
	return id, created, nil
}

// admit inserts an entry at the front of the memory tier and evicts from
// the back until the bound holds again. The entry being admitted is never
// evicted, so a graph larger than the whole bound still works (the tier
// just holds only it). Caller holds s.mu.
func (s *Store) admit(id string, g *graph.Graph, size int64) {
	el := s.lru.PushFront(&entry{id: id, g: g, size: size})
	s.byID[id] = el
	s.memBytes += size
	for s.memBytes > s.maxBytes && s.lru.Len() > 1 {
		oldest := s.lru.Back()
		e := oldest.Value.(*entry)
		s.lru.Remove(oldest)
		delete(s.byID, e.id)
		s.memBytes -= e.size
		// Disk-backed stores keep the spilled file: the id stays
		// addressable and reloads on demand. Memory-only eviction is
		// permanent.
	}
}

// Get returns the graph stored under id. A memory hit is O(1) and marks
// the entry most recently used; a disk hit reloads, re-admits and counts
// as a miss in no externally visible way. The second result is false when
// the id is unknown or was evicted from a memory-only store.
func (s *Store) Get(id string) (*graph.Graph, bool) {
	s.mu.Lock()
	if el, ok := s.byID[id]; ok {
		s.lru.MoveToFront(el)
		g := el.Value.(*entry).g
		s.mu.Unlock()
		return g, true
	}
	size, spilled := s.onDisk[id]
	s.mu.Unlock()
	if !spilled {
		return nil, false
	}
	// Load outside the lock; OpenBinary verifies the content digest, so a
	// corrupted spill file is refused rather than served.
	g, err := graph.OpenBinary(s.path(id))
	if err != nil || graph.Digest(g) != id {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.byID[id]; ok { // racing reload won
		s.lru.MoveToFront(el)
		return el.Value.(*entry).g, true
	}
	if _, still := s.onDisk[id]; !still {
		return nil, false // deleted while we were loading
	}
	s.admit(id, g, size)
	return g, true
}

// Contains reports whether id is currently addressable, without touching
// LRU order or loading anything.
func (s *Store) Contains(id string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.byID[id]; ok {
		return true
	}
	_, ok := s.onDisk[id]
	return ok
}

// Delete removes id from every tier and reports whether it existed.
func (s *Store) Delete(id string) bool {
	s.mu.Lock()
	el, inMem := s.byID[id]
	_, spilled := s.onDisk[id]
	if inMem {
		e := el.Value.(*entry)
		s.lru.Remove(el)
		delete(s.byID, id)
		s.memBytes -= e.size
	}
	delete(s.onDisk, id)
	s.mu.Unlock()
	if spilled {
		_ = os.Remove(s.path(id))
	}
	return inMem || spilled
}

// Stats returns a snapshot of the store's occupancy.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		MemEntries: s.lru.Len(),
		MemBytes:   s.memBytes,
		MaxBytes:   s.maxBytes,
	}
	for _, sz := range s.onDisk {
		st.DiskEntries++
		st.DiskBytes += sz
	}
	return st
}

// writeAtomic writes data to path via a temp file + rename, so a crashed
// write never leaves a half-written graph under a valid name.
func writeAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ffg-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
