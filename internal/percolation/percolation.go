// Package percolation implements the paper's percolation heuristic
// (section 4.4): k colored liquids start from k seed vertices and spread
// through the graph; a vertex joins the color whose liquid reaches it with
// the strongest bond, bonds are recomputed over the current territories each
// round, and the process stops when no vertex changes color.
//
// The paper writes the bond of a path from seed c_i to v as
//
//	bond(v, Pi) = sum over path edges e of w(e) / 2^d(e)
//
// with d(e) the hop distance of e from the seed. Taken literally this sum
// grows with every extra (positive) term, so on uniform weights the most
// distant seed would win every comparison — the opposite of a dripping
// liquid. We therefore compose the same per-edge factor multiplicatively:
//
//	bond(v) = bond(u) * w(u,v) / (2 * wMean)        (bond(c_i) = 1)
//
// computed in log domain. Strength halves per average-weight hop (the
// paper's 2^d damping), heavy corridors damp less and so attract the liquid,
// and bonds decay with distance as the physical picture demands. Fronts
// expand strongest-first via a priority queue; each round a liquid may only
// flow through its own territory, claiming frontier vertices by bond.
//
// Percolation is Table 1's "Percolation" row, initializes simulated
// annealing and the ant colony (figure 1), and cuts atoms in two during
// fusion-fission.
package percolation

import (
	"container/heap"
	"context"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/refine"
	"repro/internal/rng"
)

// Options configures Partition.
type Options struct {
	// Seeds optionally fixes the k starting vertices. When nil, seeds are
	// chosen by greedy farthest-point traversal from a random start.
	Seeds []int
	// MaxRounds adds recompute-reassign rounds after the balanced growth.
	// The growth phase already runs the percolation to a stable covering,
	// so the default is 0 (none); reassignment rounds progressively let
	// heavy corridors re-flood the map and are kept only for
	// experimentation.
	MaxRounds int
	// Seed drives the random start of automatic seed selection.
	Seed int64
}

// Partition colors g with k liquids and returns the resulting partition.
func Partition(g *graph.Graph, k int, opt Options) (*partition.P, error) {
	return PartitionContext(context.Background(), g, k, opt)
}

// PartitionContext is Partition under cooperative cancellation: the growth
// phases, fixed-point rounds and boundary refinement poll ctx and the call
// returns ctx.Err() once it fires. No partial partition is returned.
func PartitionContext(ctx context.Context, g *graph.Graph, k int, opt Options) (*partition.P, error) {
	n := g.NumVertices()
	if k < 1 || k > n {
		return nil, fmt.Errorf("percolation: k=%d out of range [1,%d]", k, n)
	}
	seeds := opt.Seeds
	if seeds == nil {
		r := rng.New(opt.Seed)
		seeds = graph.FarthestPointSeeds(g, r.Intn(n), k)
		// Disconnected graphs can yield fewer seeds; fill with unused
		// vertices so every color exists.
		used := make(map[int]bool, len(seeds))
		for _, s := range seeds {
			used[s] = true
		}
		for v := 0; v < n && len(seeds) < k; v++ {
			if !used[v] {
				seeds = append(seeds, v)
				used[v] = true
			}
		}
	}
	if len(seeds) != k {
		return nil, fmt.Errorf("percolation: got %d seeds for k=%d", len(seeds), k)
	}
	seen := make(map[int]bool, k)
	for _, s := range seeds {
		if s < 0 || s >= n {
			return nil, fmt.Errorf("percolation: seed %d out of range", s)
		}
		if seen[s] {
			return nil, fmt.Errorf("percolation: duplicate seed %d", s)
		}
		seen[s] = true
	}

	poll := engine.NewPoll(ctx, 1)
	if poll.Due() {
		return nil, poll.Err()
	}

	maxRounds := opt.MaxRounds
	logHalfMean := logDamping(g)

	// Phase 1 — balanced simultaneous growth. All liquids expand through a
	// single strongest-front queue (equal volumes of liquid dripping at
	// once): each claim colors a vertex immediately, and a liquid that has
	// filled its share stops until the volume caps are lifted. Without the
	// caps one liquid follows the heavy corridors across the whole map and
	// the rounds below can only erode it a frontier layer at a time.
	color, _ := balancedGrowth(ctx, g, seeds, logHalfMean)
	if poll.Due() {
		return nil, poll.Err()
	}

	// Phase 2 — the paper's fixed-point rounds: recompute every liquid's
	// bonds over its current territory and reassign each vertex to the
	// strongest, stopping when no vertex changes color. Hydrostatic
	// pressure — a log-domain discount on overfull liquids' bonds — keeps
	// the fixed point from re-flooding the heavy corridors that the
	// balanced growth phase just contained.
	const pressure = 4.0
	idealVW := g.TotalVertexWeight() / float64(k)
	bonds := make([][]float64, k)
	for i := range bonds {
		bonds[i] = make([]float64, n)
	}
	regionVW := make([]float64, k)
	for v := 0; v < n; v++ {
		if color[v] >= 0 {
			regionVW[color[v]] += g.VertexWeight(v)
		}
	}
	for round := 0; round < maxRounds; round++ {
		if poll.Due() {
			return nil, poll.Err()
		}
		for i := 0; i < k; i++ {
			propagate(g, seeds[i], int32(i), color, false, logHalfMean, bonds[i])
		}
		discount := make([]float64, k)
		for i := 0; i < k; i++ {
			if over := regionVW[i]/idealVW - 1.15; over > 0 {
				discount[i] = pressure * over
			}
		}
		changed := false
		for v := 0; v < n; v++ {
			best := color[v]
			bestBond := math.Inf(-1)
			if best >= 0 {
				bestBond = bonds[best][v] - discount[best]
			}
			for i := 0; i < k; i++ {
				if b := bonds[i][v] - discount[i]; b > bestBond {
					best, bestBond = int32(i), b
				}
			}
			if best != color[v] && best >= 0 {
				vw := g.VertexWeight(v)
				regionVW[color[v]] -= vw
				regionVW[best] += vw
				color[v] = best
				changed = true
			}
		}
		for i, s := range seeds {
			color[s] = int32(i) // seeds never change color
		}
		if !changed {
			break
		}
	}

	// Vertices never reached by any liquid (components without a seed):
	// spread them across colors so no part is overloaded arbitrarily.
	for v := 0; v < n; v++ {
		if color[v] < 0 {
			color[v] = int32(v % k)
		}
	}
	p, err := partition.FromAssignment(g, color, k)
	if err != nil {
		return nil, err
	}
	// Surface tension: when two liquids meet head-on along a heavy corridor
	// the raw fronts leave the border ON the corridor; a short greedy
	// boundary pass lets the border relax onto weak edges, which is where
	// any liquid interface settles physically.
	refine.KWay(p, refine.KWayOptions{
		Objective: objective.Cut, MaxPasses: 2, Imbalance: 0.25, Ctx: ctx,
	})
	if poll.Due() {
		return nil, poll.Err()
	}
	// Last: guarantee every region an internal edge so Ncut/Mcut stay
	// finite (the boundary pass may strip a region back to a star), and let
	// severely starved regions (interface weight far above their interior)
	// drink from their strongest bonds.
	growSingletons(p)
	refine.RelieveStarvation(p, 6, 20)
	return p, nil
}

// growSingletons guarantees every region at least one internal edge (so the
// Ncut/Mcut objectives stay finite): any region whose interior is empty —
// a singleton, or several mutually non-adjacent vertices — pulls in the
// neighbor it is most strongly bonded to, taken from a donor region that
// can spare a vertex.
func growSingletons(p *partition.P) {
	g := p.Graph()
	for _, a := range p.NonEmptyParts() {
		if p.PartInternalOrdered(a) > 0 {
			continue
		}
		bestU, bestW := -1, 0.0
		for _, v := range p.VerticesOf(a) {
			nbrs := g.Neighbors(int(v))
			wts := g.Weights(int(v))
			for i, u := range nbrs {
				b := p.Part(int(u))
				if b == a || b == partition.Unassigned || p.PartSize(b) <= 1 {
					continue
				}
				if wts[i] > bestW {
					bestU, bestW = int(u), wts[i]
				}
			}
		}
		if bestU >= 0 {
			p.Move(bestU, a)
		}
	}
}

// balancedGrowth expands all liquids simultaneously through one global
// strongest-front priority queue. Per-phase volume caps (1.15x, then 1.5x,
// 2.5x, then unlimited multiples of the ideal share) keep any single liquid
// from flooding the map along heavy corridors; later phases only run if
// vertices remain unclaimed. Returns the coloring and each claimed vertex's
// log-domain bond.
func balancedGrowth(ctx context.Context, g *graph.Graph, seeds []int, logHalfMean float64) ([]int32, []float64) {
	poll := engine.NewPoll(ctx, 4096)
	n := g.NumVertices()
	k := len(seeds)
	color := make([]int32, n)
	bondVal := make([]float64, n)
	for v := range color {
		color[v] = -1
		bondVal[v] = math.Inf(-1)
	}
	idealVW := g.TotalVertexWeight() / float64(k)
	claimedVW := make([]float64, k)
	claimedTotal := 0.0
	for i, s := range seeds {
		color[s] = int32(i)
		bondVal[s] = 0
		claimedVW[i] = g.VertexWeight(s)
		claimedTotal += g.VertexWeight(s)
	}

	phases := []float64{1.15, 1.3, 1.5, 1.8, 2.2, 3, 5, math.Inf(1)}
	for _, capFactor := range phases {
		if claimedTotal >= g.TotalVertexWeight() {
			break
		}
		capVW := capFactor * idealVW
		pq := &growHeap{}
		heap.Init(pq)
		// Seed the queue with every frontier arc of every liquid.
		for v := 0; v < n; v++ {
			c := color[v]
			if c < 0 {
				continue
			}
			nbrs := g.Neighbors(v)
			wts := g.Weights(v)
			for i, u := range nbrs {
				if color[u] < 0 {
					heap.Push(pq, growItem{
						v:    int(u),
						c:    c,
						bond: bondVal[v] + math.Log(wts[i]) - logHalfMean,
					})
				}
			}
		}
		for pq.Len() > 0 {
			// Cancellation abandons the growth mid-flood; the caller
			// discards the partial coloring and returns ctx.Err().
			if poll.Due() {
				return color, bondVal
			}
			it := heap.Pop(pq).(growItem)
			if color[it.v] >= 0 {
				continue
			}
			vw := g.VertexWeight(it.v)
			if claimedVW[it.c]+vw > capVW {
				continue // this liquid is full for the current phase
			}
			color[it.v] = it.c
			bondVal[it.v] = it.bond
			claimedVW[it.c] += vw
			claimedTotal += vw
			nbrs := g.Neighbors(it.v)
			wts := g.Weights(it.v)
			for i, u := range nbrs {
				if color[u] < 0 {
					heap.Push(pq, growItem{
						v:    int(u),
						c:    it.c,
						bond: it.bond + math.Log(wts[i]) - logHalfMean,
					})
				}
			}
		}
	}
	return color, bondVal
}

type growItem struct {
	v    int
	c    int32
	bond float64
}

type growHeap []growItem

func (h growHeap) Len() int            { return len(h) }
func (h growHeap) Less(i, j int) bool  { return h[i].bond > h[j].bond }
func (h growHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *growHeap) Push(x interface{}) { *h = append(*h, x.(growItem)) }
func (h *growHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// logDamping returns log(2 * mean edge weight), the per-hop log-domain
// damping divisor.
func logDamping(g *graph.Graph) float64 {
	if g.NumEdges() == 0 {
		return math.Log(2)
	}
	mean := g.TotalEdgeWeight() / float64(g.NumEdges())
	return math.Log(2 * mean)
}

// propagate computes log-domain bonds from the seed by strongest-front
// expansion. When free is true all vertices are traversable; otherwise the
// liquid flows only through its own territory, though it can bond to (and
// later claim) frontier vertices of any color. Unreached vertices get -Inf.
func propagate(g *graph.Graph, seed int, self int32, color []int32, free bool, logHalfMean float64, bond []float64) {
	n := g.NumVertices()
	done := make([]bool, n)
	for v := 0; v < n; v++ {
		bond[v] = math.Inf(-1)
	}
	pq := &bondHeap{}
	heap.Init(pq)
	heap.Push(pq, bondItem{v: seed, bond: 0})
	for pq.Len() > 0 {
		it := heap.Pop(pq).(bondItem)
		if done[it.v] {
			continue // a stronger front already claimed this vertex
		}
		done[it.v] = true
		bond[it.v] = it.bond
		// The liquid continues through this vertex only if it may flow here.
		if it.v != seed && !free && color[it.v] != self && color[it.v] != -1 {
			continue
		}
		nbrs := g.Neighbors(it.v)
		wts := g.Weights(it.v)
		for i, u := range nbrs {
			if !done[u] {
				heap.Push(pq, bondItem{
					v:    int(u),
					bond: it.bond + math.Log(wts[i]) - logHalfMean,
				})
			}
		}
	}
}

type bondItem struct {
	v    int
	bond float64
}

type bondHeap []bondItem

func (h bondHeap) Len() int            { return len(h) }
func (h bondHeap) Less(i, j int) bool  { return h[i].bond > h[j].bond }
func (h bondHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *bondHeap) Push(x interface{}) { *h = append(*h, x.(bondItem)) }
func (h *bondHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Bisect splits the vertices of g into two sides grown from seedA and seedB
// with a single free percolation sweep; it is the cutting primitive the
// fusion-fission method uses to break an atom (section 4.4). Unreachable
// vertices stay on side 0. The result is a 0/1 side per vertex.
func Bisect(g *graph.Graph, seedA, seedB int) []int32 {
	n := g.NumVertices()
	side := make([]int32, n)
	if seedA == seedB || n < 2 {
		return side
	}
	color := make([]int32, n)
	for v := range color {
		color[v] = -1
	}
	color[seedA], color[seedB] = 0, 1
	logHalfMean := logDamping(g)
	bondA := make([]float64, n)
	bondB := make([]float64, n)
	propagate(g, seedA, 0, color, true, logHalfMean, bondA)
	propagate(g, seedB, 1, color, true, logHalfMean, bondB)
	for v := 0; v < n; v++ {
		if bondB[v] > bondA[v] {
			side[v] = 1
		}
	}
	side[seedA], side[seedB] = 0, 1
	return side
}
