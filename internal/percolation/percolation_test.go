package percolation

import (
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/rng"
)

func TestPartitionCoversEverything(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 10 + r.Intn(60)
		g := graph.RandomGeometric(n, 0.25, seed)
		k := 2 + r.Intn(5)
		p, err := Partition(g, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		if !p.Complete() || p.NumParts() != k {
			return false
		}
		return p.Validate() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestSeedsKeepTheirColor(t *testing.T) {
	g := graph.Grid2D(8, 8)
	seeds := []int{0, 7, 56, 63}
	p, err := Partition(g, 4, Options{Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seeds {
		if p.Part(s) != i {
			t.Fatalf("seed %d has color %d, want %d", s, p.Part(s), i)
		}
	}
}

func TestRegionsAreLocal(t *testing.T) {
	// On a path with seeds at the two ends, percolation must produce the
	// two contiguous halves (possibly off by a bit in the middle).
	g := graph.Path(20)
	p, err := Partition(g, 2, Options{Seeds: []int{0, 19}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Part(1) != 0 || p.Part(18) != 1 {
		t.Fatalf("immediate neighbors not claimed by nearest seed")
	}
	if p.CrossingWeight() != 1 {
		t.Fatalf("crossing = %g, want 1", p.CrossingWeight())
	}
}

func TestHeavyCorridorAttracts(t *testing.T) {
	// Star of two hubs: a chain 0-1-2-3-4 where edge 1-2 is heavy and 2-3
	// is light; seeding 0 and 4, vertex 2 must join the side of the heavy
	// edge (the strong liquid wins).
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 2, 10)
	b.AddEdge(2, 3, 1)
	b.AddEdge(3, 4, 1)
	g := b.MustBuild()
	p, err := Partition(g, 2, Options{Seeds: []int{0, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Part(2) != p.Part(0) {
		t.Fatalf("vertex 2 joined the weak side")
	}
}

func TestDumbbellQuality(t *testing.T) {
	g := graph.Dumbbell(12, 12, 1)
	p, err := Partition(g, 2, Options{Seeds: []int{0, 12}})
	if err != nil {
		t.Fatal(err)
	}
	if p.CrossingWeight() != 1 {
		t.Fatalf("crossing = %g, want the bridge", p.CrossingWeight())
	}
}

func TestAutoSeedsDeterministic(t *testing.T) {
	g := graph.Grid2D(10, 10)
	p1, err := Partition(g, 5, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Partition(g, 5, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := p1.Assignment(), p2.Assignment()
	for v := range a1 {
		if a1[v] != a2[v] {
			t.Fatal("percolation not deterministic for fixed seed")
		}
	}
}

func TestErrors(t *testing.T) {
	g := graph.Path(5)
	if _, err := Partition(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Partition(g, 6, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Partition(g, 2, Options{Seeds: []int{1}}); err == nil {
		t.Fatal("wrong seed count accepted")
	}
	if _, err := Partition(g, 2, Options{Seeds: []int{1, 1}}); err == nil {
		t.Fatal("duplicate seeds accepted")
	}
	if _, err := Partition(g, 2, Options{Seeds: []int{1, 9}}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

func TestBisectSplitsBothSides(t *testing.T) {
	g := graph.Grid2D(6, 6)
	side := Bisect(g, 0, 35)
	c0, c1 := 0, 0
	for _, s := range side {
		if s == 0 {
			c0++
		} else {
			c1++
		}
	}
	if c0 == 0 || c1 == 0 {
		t.Fatalf("degenerate bisect: %d/%d", c0, c1)
	}
	if side[0] != 0 || side[35] != 1 {
		t.Fatal("seeds on wrong sides")
	}
}

func TestBisectDegenerate(t *testing.T) {
	g := graph.Path(2)
	side := Bisect(g, 0, 0) // same seed: everything side 0
	if side[0] != 0 || side[1] != 0 {
		t.Fatal("same-seed bisect should be all zero")
	}
}

func TestBalanceReasonableOnGrid(t *testing.T) {
	g := graph.Grid2D(12, 12)
	p, err := Partition(g, 4, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if imb := objective.Imbalance(p); imb > 1.0 {
		t.Fatalf("percolation imbalance %.2f absurdly large", imb)
	}
}
