package percolation

import (
	"testing"

	"repro/internal/graph"
)

func BenchmarkPartition32(b *testing.B) {
	g := graph.RandomGeometric(762, 0.055, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Partition(g, 32, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBisect(b *testing.B) {
	g := graph.Grid2D(28, 28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Bisect(g, 0, g.NumVertices()-1)
	}
}
