package vcycle

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
)

// roundRobin is a deterministic CoarseSolve stand-in: vertex v to part v%k.
func roundRobin(_ context.Context, g *graph.Graph, k int, _ time.Duration, _ *engine.Runtime) (*partition.P, bool, error) {
	assign := make([]int32, g.NumVertices())
	for v := range assign {
		assign[v] = int32(v % k)
	}
	p, err := partition.FromAssignment(g, assign, k)
	return p, false, err
}

func TestBuildClampsAndStats(t *testing.T) {
	g := graph.RandomGeometric(800, 0.07, 1)
	h := mustBuild(t, g, 0, 8, 1)
	if len(h.Levels) == 0 {
		t.Fatal("no coarsening on an 800-vertex graph")
	}
	st := h.Stats()
	if st.Levels != len(h.Levels) {
		t.Fatalf("Stats.Levels = %d, want %d", st.Levels, len(h.Levels))
	}
	if st.CoarsestVertices != h.Coarsest().NumVertices() {
		t.Fatalf("CoarsestVertices = %d, want %d", st.CoarsestVertices, h.Coarsest().NumVertices())
	}
	if len(st.VertexCounts) != st.Levels+1 || st.VertexCounts[0] != 800 {
		t.Fatalf("VertexCounts = %v", st.VertexCounts)
	}
	// The cutoff clamp keeps the coarsest graph above k vertices.
	const k = 40
	h = mustBuild(t, g, 3, k, 1) // absurdly low cutoff gets clamped to 2k
	if got := h.Coarsest().NumVertices(); got <= k {
		t.Fatalf("coarsest has %d vertices, want > %d", got, k)
	}
	// A graph already at the cutoff is left alone.
	small := graph.Grid2D(5, 5)
	h = mustBuild(t, small, 100, 4, 1)
	if len(h.Levels) != 0 || h.Coarsest() != small {
		t.Fatal("small graph was coarsened")
	}
}

func TestRunProducesValidPartition(t *testing.T) {
	g := graph.RandomGeometric(600, 0.08, 2)
	const k = 6
	h := mustBuild(t, g, 60, k, 2)
	if len(h.Levels) == 0 {
		t.Fatal("no coarsening")
	}
	p, partial, err := Run(context.Background(), h, k, Options{}, roundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if partial {
		t.Fatal("partial without cancellation")
	}
	if p.Graph() != g {
		t.Fatal("result is not a partition of the fine graph")
	}
	if !p.Complete() || p.NumParts() != k {
		t.Fatalf("complete=%v parts=%d, want complete %d-way", p.Complete(), p.NumParts(), k)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	// Refinement on uncoarsening must not make the projected partition
	// worse, and with a round-robin (i.e. terrible) coarse partition it
	// should strictly improve it.
	flat, _, err := roundRobin(context.Background(), g, k, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got, base := objective.MCut.Evaluate(p), objective.MCut.Evaluate(flat); got >= base {
		t.Fatalf("V-cycle Mcut %g did not improve on unrefined %g", got, base)
	}
}

func TestRunSolverError(t *testing.T) {
	g := graph.Grid2D(20, 20)
	h := mustBuild(t, g, 50, 4, 1)
	boom := errors.New("boom")
	_, _, err := Run(context.Background(), h, 4, Options{},
		func(context.Context, *graph.Graph, int, time.Duration, *engine.Runtime) (*partition.P, bool, error) {
			return nil, false, boom
		})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

func TestRunCancellation(t *testing.T) {
	g := graph.RandomGeometric(500, 0.08, 4)
	const k = 5
	h := mustBuild(t, g, 50, k, 4)
	ctx, cancel := context.WithCancel(context.Background())
	// Cancel while the "solver" runs: the V-cycle must still deliver a
	// valid fine partition, flagged partial.
	p, partial, err := Run(ctx, h, k, Options{},
		func(sctx context.Context, cg *graph.Graph, kk int, b time.Duration, rt *engine.Runtime) (*partition.P, bool, error) {
			cancel()
			<-sctx.Done()
			return roundRobin(sctx, cg, kk, b, rt)
		})
	if err != nil {
		t.Fatal(err)
	}
	if !partial {
		t.Fatal("cancelled run not marked partial")
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != k {
		t.Fatalf("parts = %d, want %d", p.NumParts(), k)
	}
}

// TestRunRealSolverDeterministic drives the V-cycle with the actual
// fusion-fission core under a step cap: two identical runs must agree
// bit-for-bit, the foundation of the portfolio determinism guarantee.
func TestRunRealSolverDeterministic(t *testing.T) {
	g := graph.RandomGeometric(400, 0.09, 6)
	const k = 4
	h := mustBuild(t, g, 60, k, 6)
	solve := func(ctx context.Context, cg *graph.Graph, kk int, budget time.Duration, rt *engine.Runtime) (*partition.P, bool, error) {
		res, err := core.PartitionContext(ctx, cg, kk, core.Options{
			MaxSteps: 300, Seed: 42, Runtime: rt,
		})
		if err != nil {
			return nil, false, err
		}
		return res.Best, res.Cancelled, nil
	}
	run := func() []int32 {
		p, _, err := Run(context.Background(), h, k, Options{}, solve)
		if err != nil {
			t.Fatal(err)
		}
		return p.Compact()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical step-capped V-cycles diverged")
	}
}

func mustBuild(t *testing.T, g *graph.Graph, coarsenTo, k int, seed int64) *Hierarchy {
	t.Helper()
	h, err := Build(context.Background(), g, coarsenTo, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestBuildCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Build(ctx, graph.Grid2D(40, 40), 50, 4, 1); err == nil {
		t.Fatal("done context did not stop coarsening")
	}
}
