// Package vcycle accelerates the metaheuristics with a multilevel V-cycle,
// the single biggest quality-per-second lever the memetic-multilevel line of
// work (Andre/Schlag/Schulz; Sanders/Schulz, KaFFPaE) established for
// evolutionary partitioning: coarsen the graph with heavy-edge matching,
// run the expensive search on the small coarsest graph where every step is
// cheap and moves are global, then project the partition up level by level
// with budgeted greedy refinement at each step.
//
// The driver is solver-agnostic: any engine-backed metaheuristic
// (fusion-fission, simulated annealing, genetic, ant colony) plugs in as a
// CoarseSolve callback. Because package coarsen folds contracted-edge weight
// into coarse-vertex self-loops and package partition counts those loops as
// internal weight, the objective the solver optimizes on the coarsest graph
// is exactly the fine graph's objective — not an approximation of it.
//
// Portfolios compose: each worker of an engine.Portfolio runs its own
// V-cycle over one shared Hierarchy, and workers exchange incumbents at
// level boundaries (engine.Runtime.Exchange) — the phase transitions where
// all workers hold partitions of the same graph — rather than at step
// indices inside the coarsest solve. Step-capped runs visit the same
// boundaries in the same order on every worker, so a (seed, parallelism,
// hierarchy) triple is exactly reproducible.
package vcycle

import (
	"context"
	"fmt"
	"time"

	"repro/internal/coarsen"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
	"repro/internal/refine"
)

// DefaultCoarsenTo is the default coarsening cutoff for a k-way solve:
// coarsening stops once the graph has at most this many vertices. Large
// enough that the coarsest graph retains real structure around k parts,
// small enough that metaheuristic steps there are cheap.
func DefaultCoarsenTo(k int) int {
	if c := 8 * k; c > 128 {
		return c
	}
	return 128
}

// Hierarchy is a coarsening ladder built once per solve and shared
// read-only by every portfolio worker — sharing it is what makes
// level-boundary incumbent exchange meaningful, since all workers then
// refine partitions of the identical graphs.
type Hierarchy struct {
	// Fine is the original input graph.
	Fine *graph.Graph
	// Levels is the ladder from finest to coarsest; Levels[i].Map sends the
	// vertices of the previous level (Fine for i == 0) onto Levels[i].G.
	// Empty when Fine is already at or below the cutoff.
	Levels []coarsen.Level
}

// Build coarsens g by repeated heavy-edge matching until at most coarsenTo
// vertices remain (0 selects DefaultCoarsenTo(k); the cutoff is clamped to
// at least 2k so the coarsest graph always has more than k vertices).
// Coarsening polls ctx at every level and returns ctx.Err() once it fires,
// so a cancelled job never burns CPU building a ladder nobody will use.
func Build(ctx context.Context, g *graph.Graph, coarsenTo, k int, seed int64) (*Hierarchy, error) {
	cutoff := coarsenTo
	if cutoff <= 0 {
		cutoff = DefaultCoarsenTo(k)
	}
	if cutoff < 2*k {
		cutoff = 2 * k
	}
	ladder, err := coarsen.HEMContext(ctx, g, cutoff, seed)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{Fine: g, Levels: ladder}, nil
}

// Coarsest returns the smallest graph of the hierarchy (Fine when no
// coarsening happened).
func (h *Hierarchy) Coarsest() *graph.Graph {
	if len(h.Levels) == 0 {
		return h.Fine
	}
	return h.Levels[len(h.Levels)-1].G
}

// graphAt returns the finer graph that level li projects onto: Fine for
// li == 0, the previous level's coarse graph otherwise.
func (h *Hierarchy) graphAt(li int) *graph.Graph {
	if li == 0 {
		return h.Fine
	}
	return h.Levels[li-1].G
}

// Stats describes the shape of a hierarchy; the facade reports it so
// callers can see what the V-cycle actually did.
type Stats struct {
	// Levels is the number of coarsening contractions performed.
	Levels int `json:"levels"`
	// CoarsestVertices and CoarsestEdges size the graph the metaheuristic
	// searched.
	CoarsestVertices int `json:"coarsest_vertices"`
	CoarsestEdges    int `json:"coarsest_edges"`
	// VertexCounts lists the vertex count per level, finest (the input
	// graph) first, coarsest last; length Levels+1.
	VertexCounts []int `json:"vertex_counts"`
}

// Stats summarizes the hierarchy's shape.
func (h *Hierarchy) Stats() Stats {
	s := Stats{
		Levels:           len(h.Levels),
		CoarsestVertices: h.Coarsest().NumVertices(),
		CoarsestEdges:    h.Coarsest().NumEdges(),
		VertexCounts:     make([]int, 0, len(h.Levels)+1),
	}
	s.VertexCounts = append(s.VertexCounts, h.Fine.NumVertices())
	for _, l := range h.Levels {
		s.VertexCounts = append(s.VertexCounts, l.G.NumVertices())
	}
	return s
}

// CoarseSolve runs one metaheuristic on the coarsest graph of a V-cycle.
// budget is the wall-clock share the driver grants the solve (0 = no time
// limit); rt is a monitor-only runtime (engine.Runtime.Solo) the solver
// should attach to its Loop for live progress, or nil. The returned partial
// flag is the solver's own record of a context interruption.
type CoarseSolve func(ctx context.Context, g *graph.Graph, k int, budget time.Duration, rt *engine.Runtime) (*partition.P, bool, error)

// Options configures one V-cycle run.
type Options struct {
	// Objective is the criterion refinement improves and boundary exchanges
	// compare on (default MCut, like everywhere in this repository).
	Objective objective.Objective
	// Budget caps the whole V-cycle's wall-clock time; the coarsest solve
	// receives solveFraction of it and uncoarsening refinement runs under a
	// deadline at the full budget. 0 means no time limit (step-capped runs).
	Budget time.Duration
	// Imbalance is the balance slack refinement respects (default 0.10).
	Imbalance float64
	// RefinePasses bounds the greedy k-way refinement sweeps per level
	// (default 4).
	RefinePasses int
	// Runtime optionally attaches the run to an engine portfolio worker
	// slot: live progress flows from the coarsest solve, and incumbents are
	// exchanged at level boundaries. Nil for standalone runs.
	Runtime *engine.Runtime
}

// solveFraction is the share of the budget the coarsest solve receives; the
// remainder bounds the uncoarsening refinement, which is cheap (a few
// pass-capped greedy sweeps per level) but must not run unbounded on huge
// fine graphs.
const solveFraction = 0.8

// Run executes one V-cycle over h: solve the coarsest graph, then project
// the partition up level by level, refining at each. It returns the final
// fine-graph partition; partial reports that ctx interrupted the run and
// the partition is best-effort. Cancellation is cooperative throughout —
// the coarsest solver polls at its step cadence, refinement at sweep
// boundaries — and a run interrupted mid-hierarchy still returns a valid
// k-way partition of the fine graph.
func Run(ctx context.Context, h *Hierarchy, k int, opt Options, solve CoarseSolve) (*partition.P, bool, error) {
	if opt.RefinePasses <= 0 {
		opt.RefinePasses = 4
	}
	if opt.Imbalance <= 0 {
		opt.Imbalance = 0.10
	}

	// The refinement phase honours the overall budget through a derived
	// deadline; hitting it is a budget-bounded completion, not a
	// cancellation, so partial tracks the parent context alone.
	rctx, cancel := ctx, context.CancelFunc(func() {})
	coarseBudget := time.Duration(0)
	if opt.Budget > 0 {
		coarseBudget = time.Duration(float64(opt.Budget) * solveFraction)
		if len(h.Levels) == 0 {
			// Nothing to refine: the solve IS the whole run, so reserving
			// refinement time would just leave budget unspent.
			coarseBudget = opt.Budget
		}
		rctx, cancel = context.WithTimeout(ctx, opt.Budget)
	}
	defer cancel()

	cp, _, err := solve(rctx, h.Coarsest(), k, coarseBudget, opt.Runtime.Solo())
	if err != nil {
		return nil, false, err
	}
	assign := cp.Compact()
	energy := opt.Objective.Evaluate(cp)

	// fp is the current level's refined partition; after the li == 0
	// iteration it is the fine-graph result itself.
	var fp *partition.P
	for li := len(h.Levels) - 1; li >= 0; li-- {
		// Level boundary: trade incumbents with the other portfolio workers
		// before spending refinement effort — a strictly better partition of
		// the same graph found elsewhere is a strictly better starting point.
		assign, energy = exchange(opt.Runtime, assign, energy)
		assign = h.Levels[li].Project(assign)

		fp, err = partition.FromAssignment(h.graphAt(li), assign, k)
		if err != nil {
			return nil, false, fmt.Errorf("vcycle: projecting level %d: %w", li, err)
		}
		refine.KWay(fp, refine.KWayOptions{
			Objective: opt.Objective,
			Imbalance: opt.Imbalance,
			MaxPasses: opt.RefinePasses,
			Ctx:       rctx,
		})
		assign = fp.Assignment()
		energy = opt.Objective.Evaluate(fp)
		if rt := opt.Runtime; rt != nil && rt.Monitor != nil {
			rt.Monitor.Offer(energy, func() []int32 { return fp.Compact() })
		}
	}

	if fp == nil { // no coarsening happened: the coarse solve was the solve
		if fp, err = partition.FromAssignment(h.Fine, assign, k); err != nil {
			return nil, false, fmt.Errorf("vcycle: final assembly: %w", err)
		}
	}
	return fp, ctx.Err() != nil, nil
}

// exchange deposits the worker's current (assignment, energy) and adopts the
// round winner if it strictly improves the objective, returning the possibly
// updated pair. Winners are commensurate because every worker reaches this
// boundary holding a partition of the same graph under the same objective.
// The length guard skips winners deposited for a different level by a worker
// that left its final slot behind — reachable only through an internal
// invariant break, since a V-cycle worker cannot fail after its first
// deposit; if it ever happens, the round degrades to no adoption (exchanger
// slots persist by design for the flat step-cadence path) and every worker
// simply keeps its own partition.
func exchange(rt *engine.Runtime, assign []int32, energy float64) ([]int32, float64) {
	foreign, fe, ok := rt.Exchange(energy, func() []int32 { return assign })
	if ok && len(foreign) == len(assign) {
		return foreign, fe
	}
	return assign, energy
}
