package spectral

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/objective"
)

func TestBisectDumbbell(t *testing.T) {
	g := graph.Dumbbell(10, 10, 2)
	for _, solver := range []Solver{Lanczos, RQI} {
		p, err := Partition(g, 2, Options{Solver: solver, Seed: 1})
		if err != nil {
			t.Fatalf("%v: %v", solver, err)
		}
		if p.CrossingWeight() != 2 {
			t.Fatalf("%v: crossing = %g, want 2 (the bridge)", solver, p.CrossingWeight())
		}
		if p.PartSize(0) != 10 || p.PartSize(1) != 10 {
			t.Fatalf("%v: sizes %d/%d", solver, p.PartSize(0), p.PartSize(1))
		}
	}
}

func TestBisectPathMiddle(t *testing.T) {
	g := graph.Path(20)
	p, err := Partition(g, 2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p.CrossingWeight() != 1 {
		t.Fatalf("crossing = %g, want 1", p.CrossingWeight())
	}
	// The Fiedler vector of a path is monotone, so the parts must be the
	// two contiguous halves.
	side0 := p.Part(0)
	for v := 1; v < 10; v++ {
		if p.Part(v) != side0 {
			t.Fatalf("first half not contiguous at %d", v)
		}
	}
}

func TestRecursiveBisection8PartsGrid(t *testing.T) {
	g := graph.Grid2D(12, 12)
	p, err := Partition(g, 8, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 8 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
	if imb := objective.Imbalance(p); imb > 0.25 {
		t.Fatalf("imbalance %.3f", imb)
	}
	// A 12x12 grid cut into 8 blocks should cost far less than random
	// (random 8-way expects ~7/8 of 264 edges crossing).
	if p.CrossingWeight() > 90 {
		t.Fatalf("crossing %g too large for spectral on a grid", p.CrossingWeight())
	}
}

func TestOctasectionGrid(t *testing.T) {
	g := graph.Grid2D(12, 12)
	p, err := Partition(g, 8, Options{Arity: 8, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 8 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
	if p.CrossingWeight() > 110 {
		t.Fatalf("octasection crossing %g too large", p.CrossingWeight())
	}
}

func TestKLImprovesOrMatchesSpectral(t *testing.T) {
	g := graph.RandomGeometric(120, 0.18, 5)
	plain, err := Partition(g, 4, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	kl, err := Partition(g, 4, Options{KL: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if kl.CrossingWeight() > plain.CrossingWeight()+1e-9 {
		t.Fatalf("KL worsened: %g -> %g", plain.CrossingWeight(), kl.CrossingWeight())
	}
}

func TestNonPowerOfTwoK(t *testing.T) {
	g := graph.Grid2D(9, 9)
	for _, k := range []int{3, 5, 6} {
		p, err := Partition(g, k, Options{Seed: 6})
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if p.NumParts() != k {
			t.Fatalf("k=%d: NumParts = %d", k, p.NumParts())
		}
	}
}

func TestNormalizedMode(t *testing.T) {
	g := graph.Dumbbell(8, 8, 1)
	p, err := Partition(g, 2, Options{Normalized: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if p.CrossingWeight() != 1 {
		t.Fatalf("normalized spectral crossing = %g, want 1", p.CrossingWeight())
	}
}

func TestRQIOctasection(t *testing.T) {
	g := graph.Grid2D(10, 10)
	p, err := Partition(g, 8, Options{Solver: RQI, Arity: 8, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 8 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
}

func TestErrors(t *testing.T) {
	g := graph.Path(4)
	if _, err := Partition(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := Partition(g, 9, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := Partition(g, 2, Options{Arity: 3}); err == nil {
		t.Fatal("arity 3 accepted")
	}
}

func TestSolverString(t *testing.T) {
	if Lanczos.String() != "Lanc" || RQI.String() != "RQI" {
		t.Fatal("solver names changed; Table 1 labels depend on them")
	}
}

func TestSmallGraphDegenerate(t *testing.T) {
	g := graph.Path(3)
	p, err := Partition(g, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.NumParts() != 3 {
		t.Fatalf("NumParts = %d", p.NumParts())
	}
}
