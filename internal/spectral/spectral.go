// Package spectral implements spectral graph partitioning (section 2.1):
// recursive bisection by the Fiedler vector of the graph Laplacian, and
// recursive multiway (quadrisection/octasection) splitting using the 2 or 3
// smallest non-trivial eigenvectors, exactly the Chaco modes the paper
// benchmarks. Two eigensolver backends are provided, matching Table 1's
// "Lanc" and "RQI" rows:
//
//   - Lanczos: full-reorthogonalization Lanczos on the Laplacian;
//   - RQI: a loose Lanczos estimate polished by Rayleigh Quotient Iteration
//     with a MINRES inner solver (Chaco's RQI/Symmlq).
//
// An optional normalized-Laplacian mode targets the Ncut relaxation
// (D-W)x = lambda D x from section 2.1 — an extension beyond the Chaco rows.
package spectral

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/coarsen"
	"repro/internal/eig"
	"repro/internal/graph"
	"repro/internal/partition"
	"repro/internal/refine"
	"repro/internal/sparse"
)

// Solver selects the eigensolver backend.
type Solver int

const (
	// Lanczos uses full-reorthogonalization Lanczos (Chaco's default for
	// graphs under ~10,000 vertices).
	Lanczos Solver = iota
	// RQI seeds Rayleigh Quotient Iteration with a cheap Lanczos estimate
	// and polishes with MINRES inner solves (Chaco's RQI/Symmlq).
	RQI
)

// String returns the Table 1 abbreviation of the solver.
func (s Solver) String() string {
	if s == RQI {
		return "RQI"
	}
	return "Lanc"
}

// Options configures spectral partitioning.
type Options struct {
	// Solver is the eigensolver backend (default Lanczos).
	Solver Solver
	// Arity is the split width per level: 2 (bisection), 4 (quadrisection)
	// or 8 (octasection). Default 2.
	Arity int
	// KL enables Kernighan-Lin refinement after each split.
	KL bool
	// Imbalance is passed to KL (default 0.05).
	Imbalance float64
	// Normalized uses the normalized Laplacian (Ncut relaxation) instead of
	// the combinatorial Laplacian.
	Normalized bool
	// Seed drives the random start vectors of the eigensolvers.
	Seed int64
}

// Partition cuts g into k parts by recursive spectral splitting.
func Partition(g *graph.Graph, k int, opt Options) (*partition.P, error) {
	return PartitionContext(context.Background(), g, k, opt)
}

// PartitionContext is Partition under cooperative cancellation: the
// eigensolver iterations (Lanczos steps, RQI outer iterations and their
// MINRES inner solves), the recursive splits and the KL refinement all poll
// ctx, and the call returns ctx.Err() once it fires. No partial partition is
// returned.
func PartitionContext(ctx context.Context, g *graph.Graph, k int, opt Options) (*partition.P, error) {
	n := g.NumVertices()
	if k < 1 || k > n {
		return nil, fmt.Errorf("spectral: k=%d out of range [1,%d]", k, n)
	}
	if opt.Arity == 0 {
		opt.Arity = 2
	}
	if opt.Arity != 2 && opt.Arity != 4 && opt.Arity != 8 {
		return nil, fmt.Errorf("spectral: arity must be 2, 4 or 8, got %d", opt.Arity)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	assign := make([]int32, n)
	verts := make([]int32, n)
	for v := range verts {
		verts[v] = int32(v)
	}
	nextPart := int32(0)
	if err := splitRec(ctx, g, verts, k, opt, assign, &nextPart); err != nil {
		return nil, err
	}
	return partition.FromAssignment(g, assign, k)
}

func splitRec(ctx context.Context, g *graph.Graph, verts []int32, kNode int, opt Options, assign []int32, nextPart *int32) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if kNode == 1 {
		id := *nextPart
		*nextPart++
		for _, v := range verts {
			assign[v] = id
		}
		return nil
	}
	groups := opt.Arity
	for groups > kNode {
		groups /= 2
	}
	if groups < 2 {
		groups = 2
	}
	kPer := make([]int, groups)
	for i := range kPer {
		kPer[i] = kNode / groups
		if i < kNode%groups {
			kPer[i]++
		}
	}

	sub := graph.Induced(g, verts)
	local, err := SplitGraphContext(ctx, sub.G, kPer, opt)
	if err != nil {
		return err
	}
	if opt.KL {
		if groups == 2 {
			w0target := sub.G.TotalVertexWeight() * float64(kPer[0]) / float64(kNode)
			refine.KL(sub.G, local, refine.BisectOptions{TargetWeight0: w0target, Imbalance: opt.Imbalance, Ctx: ctx})
		} else {
			refine.PairwiseKL(sub.G, local, groups, refine.BisectOptions{Imbalance: opt.Imbalance, Ctx: ctx})
		}
	}

	chunkOf := make([][]int32, groups)
	for i, v := range verts {
		chunkOf[local[i]] = append(chunkOf[local[i]], v)
	}
	for gi := 0; gi < groups; gi++ {
		if len(chunkOf[gi]) == 0 {
			*nextPart += int32(kPer[gi])
			continue
		}
		kgi := kPer[gi]
		if kgi > len(chunkOf[gi]) {
			kgi = len(chunkOf[gi])
			// Allocate the ids we cannot fill so numbering stays dense.
			*nextPart += int32(kPer[gi] - kgi)
		}
		if err := splitRec(ctx, g, chunkOf[gi], kgi, opt, assign, nextPart); err != nil {
			return err
		}
	}
	return nil
}

// SplitGraph splits an entire graph into len(kPer) groups with target vertex
// weights proportional to kPer, using log2(len(kPer)) eigenvectors. It
// returns the group of each vertex. Exposed for the multilevel method, which
// uses it as its coarse-graph solver.
func SplitGraph(g *graph.Graph, kPer []int, opt Options) ([]int32, error) {
	return SplitGraphContext(context.Background(), g, kPer, opt)
}

// SplitGraphContext is SplitGraph under cooperative cancellation; it returns
// ctx.Err() once ctx fires during the eigensolves.
func SplitGraphContext(ctx context.Context, g *graph.Graph, kPer []int, opt Options) ([]int32, error) {
	n := g.NumVertices()
	groups := len(kPer)
	local := make([]int32, n)
	if n == 0 {
		return local, nil
	}
	if groups == 1 {
		return local, nil
	}
	dims := 0
	for 1<<(dims+1) <= groups {
		dims++
	}
	if 1<<dims != groups {
		return nil, fmt.Errorf("spectral: group count %d is not a power of two", groups)
	}
	if n <= groups {
		// Degenerate: one vertex per group round-robin.
		for v := 0; v < n; v++ {
			local[v] = int32(v % groups)
		}
		return local, nil
	}
	vecs, err := fiedlerVectors(ctx, g, dims, opt)
	if err != nil {
		return nil, err
	}
	kNode := 0
	for _, kp := range kPer {
		kNode += kp
	}
	// Recursive median splitting: vector 0 separates the low half of the
	// group range from the high half at the proportional weight quantile;
	// vector 1 splits each side, and so on. This uses the eigenvectors "as
	// indicator vectors" (section 2.1) while keeping group weights on
	// target even when the kPer are uneven.
	idxAll := make([]int, n)
	for i := range idxAll {
		idxAll[i] = i
	}
	var rec func(idx []int, lo, hi, dim int)
	rec = func(idx []int, lo, hi, dim int) {
		if hi-lo == 1 {
			for _, v := range idx {
				local[v] = int32(lo)
			}
			return
		}
		mid := (lo + hi) / 2
		kLow := 0
		for gi := lo; gi < mid; gi++ {
			kLow += kPer[gi]
		}
		kBoth := kLow
		for gi := mid; gi < hi; gi++ {
			kBoth += kPer[gi]
		}
		f := vecs[dim]
		sort.SliceStable(idx, func(a, b int) bool { return f[idx[a]] < f[idx[b]] })
		totalW := 0.0
		for _, v := range idx {
			totalW += g.VertexWeight(v)
		}
		target := totalW * float64(kLow) / float64(kBoth)
		acc := 0.0
		cutAt := 0
		for cutAt < len(idx)-1 {
			vw := g.VertexWeight(idx[cutAt])
			if cutAt > 0 && acc+vw > target+1e-12 {
				break
			}
			acc += vw
			cutAt++
		}
		// Keep at least one vertex per side.
		if cutAt == 0 {
			cutAt = 1
		}
		if cutAt == len(idx) {
			cutAt = len(idx) - 1
		}
		nextDim := dim + 1
		if nextDim >= len(vecs) {
			nextDim = len(vecs) - 1
		}
		rec(idx[:cutAt], lo, mid, nextDim)
		rec(idx[cutAt:], mid, hi, nextDim)
	}
	rec(idxAll, 0, groups, 0)
	return local, nil
}

// fiedlerVectors returns the `dims` smallest non-trivial eigenvectors of the
// (possibly normalized) Laplacian of g, using the configured backend.
func fiedlerVectors(ctx context.Context, g *graph.Graph, dims int, opt Options) ([][]float64, error) {
	n := g.NumVertices()
	var op eig.Operator
	if opt.Normalized {
		nl, _ := sparse.NormalizedLaplacian(g)
		op = nl
	} else {
		op = sparse.Laplacian(g)
	}
	deflate := [][]float64{eig.ConstantVector(n)}
	if dims > n-1 {
		dims = n - 1
	}

	switch opt.Solver {
	case RQI:
		if !opt.Normalized {
			return multilevelRQI(ctx, g, dims, opt)
		}
		// Normalized Laplacians do not commute with matching contraction;
		// fall back to a rich Lanczos start polished by RQI.
		maxDim := 3*dims + 12
		if maxDim < 40 {
			maxDim = 40
		}
		_, rough, err := eig.SmallestEigenpairs(op, dims, eig.LanczosOptions{
			MaxDim:  maxDim,
			Tol:     0.3,
			Deflate: deflate,
			Seed:    opt.Seed + 1,
			Ctx:     ctx,
		})
		if err != nil {
			return nil, err
		}
		vecs := make([][]float64, 0, dims)
		for d := 0; d < dims; d++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			_, x, _ := eig.RQI(op, rough[d], eig.RQIOptions{
				Deflate: append(append([][]float64{}, deflate...), vecs...),
				Ctx:     ctx,
			})
			vecs = append(vecs, x)
		}
		return vecs, nil
	default:
		_, vecs, err := eig.SmallestEigenpairs(op, dims, eig.LanczosOptions{
			Deflate: deflate,
			Seed:    opt.Seed + 1,
			Tol:     1e-7,
			Ctx:     ctx,
		})
		return vecs, err
	}
}

// multilevelRQI is Chaco's RQI/Symmlq eigensolver: coarsen the graph by
// heavy-edge matching, solve the small eigenproblem accurately on the
// coarsest graph with Lanczos, then interpolate each eigenvector up the
// ladder, polishing with Rayleigh Quotient Iteration (MINRES inner solves)
// at every level. The interpolated start is close to the wanted
// eigenvector, which is what keeps RQI locked onto the Fiedler (and
// next-lowest) eigenvectors rather than an arbitrary eigenpair.
func multilevelRQI(ctx context.Context, g *graph.Graph, dims int, opt Options) ([][]float64, error) {
	minSize := 12 * dims
	if minSize < 40 {
		minSize = 40
	}
	ladder := coarsen.HEM(g, minSize, opt.Seed+7)
	coarsest := g
	if len(ladder) > 0 {
		coarsest = ladder[len(ladder)-1].G
	}
	cd := dims
	if max := coarsest.NumVertices() - 1; cd > max {
		cd = max
	}
	_, vecs, err := eig.SmallestEigenpairs(sparse.Laplacian(coarsest), cd, eig.LanczosOptions{
		Deflate: [][]float64{eig.ConstantVector(coarsest.NumVertices())},
		Seed:    opt.Seed + 1,
		Tol:     1e-8,
		Ctx:     ctx,
	})
	if err != nil {
		return nil, err
	}
	for li := len(ladder) - 1; li >= 0; li-- {
		fine := g
		if li > 0 {
			fine = ladder[li-1].G
		}
		nf := fine.NumVertices()
		op := sparse.Laplacian(fine)
		deflate := [][]float64{eig.ConstantVector(nf)}
		polished := make([][]float64, 0, len(vecs))
		for _, coarseVec := range vecs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			x := make([]float64, nf)
			for v := 0; v < nf; v++ {
				x[v] = coarseVec[ladder[li].Map[v]]
			}
			_, px, _ := eig.RQI(op, x, eig.RQIOptions{
				Deflate: append(append([][]float64{}, deflate...), polished...),
				Tol:     1e-8,
				Ctx:     ctx,
			})
			polished = append(polished, px)
		}
		vecs = polished
	}
	// If the coarsest graph was too small for every requested vector, top
	// up with accurate Lanczos vectors on the full graph.
	for len(vecs) < dims {
		_, more, err := eig.SmallestEigenpairs(sparse.Laplacian(g), dims, eig.LanczosOptions{
			Deflate: [][]float64{eig.ConstantVector(g.NumVertices())},
			Seed:    opt.Seed + 2,
			Tol:     1e-7,
			Ctx:     ctx,
		})
		if err != nil {
			return nil, err
		}
		vecs = more
	}
	return vecs, nil
}
