package graph

import (
	"fmt"
	"math"
)

// EdgeEdit is one edit in a graph mutation: add a new edge, remove an
// existing one, or change an existing edge's weight. Endpoints are 0-based
// and unordered ({u,v} and {v,u} name the same edge).
type EdgeEdit struct {
	// Op is "add", "remove" or "reweight".
	Op string `json:"op"`
	// U, V are the edge's endpoints.
	U int `json:"u"`
	V int `json:"v"`
	// W is the edge weight for add and reweight (defaulting to 1 when
	// omitted); ignored for remove.
	W float64 `json:"w,omitempty"`
}

// WithEdits returns a new graph derived from g by applying edits. The edits
// are strict — adding an edge that already exists, or removing/reweighting
// one that doesn't, is an error — so a drifting workload notices when its
// view of the graph and the stored graph disagree, instead of silently
// diverging. Vertex weights, vertex count and self-loop weights carry over
// unchanged; g itself is not modified.
//
// Duplicate edits to the same edge apply in order against the running state
// (remove then add is a legal replace; add then add is an error).
func (g *Graph) WithEdits(edits []EdgeEdit) (*Graph, error) {
	n := g.NumVertices()
	type key struct{ u, v int32 }
	norm := func(u, v int) (key, error) {
		if u == v {
			return key{}, fmt.Errorf("graph: edit names a self-loop at vertex %d", u)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return key{}, fmt.Errorf("graph: edit edge {%d,%d} out of range [0,%d)", u, v, n)
		}
		if u > v {
			u, v = v, u
		}
		return key{int32(u), int32(v)}, nil
	}
	// Running weight per edited edge; untouched edges never enter the map.
	edited := make(map[key]float64, len(edits))
	weightOf := func(k key) (float64, bool) {
		if w, ok := edited[k]; ok {
			return w, w > 0
		}
		w, ok := g.EdgeWeight(int(k.u), int(k.v))
		return w, ok
	}
	for i, e := range edits {
		k, err := norm(e.U, e.V)
		if err != nil {
			return nil, fmt.Errorf("%v (edit %d)", err, i)
		}
		w := e.W
		if w == 0 && e.Op != "remove" {
			w = 1
		}
		_, exists := weightOf(k)
		switch e.Op {
		case "add":
			if exists {
				return nil, fmt.Errorf("graph: edit %d adds edge {%d,%d} which already exists (use reweight)", i, k.u, k.v)
			}
		case "remove":
			if !exists {
				return nil, fmt.Errorf("graph: edit %d removes edge {%d,%d} which does not exist", i, k.u, k.v)
			}
			w = 0 // tombstone
		case "reweight":
			if !exists {
				return nil, fmt.Errorf("graph: edit %d reweights edge {%d,%d} which does not exist", i, k.u, k.v)
			}
		default:
			return nil, fmt.Errorf("graph: edit %d has unknown op %q (want add, remove or reweight)", i, e.Op)
		}
		if e.Op != "remove" && (!(w > 0) || math.IsInf(w, 1)) {
			return nil, fmt.Errorf("graph: edit %d sets non-positive or non-finite weight %g", i, e.W)
		}
		edited[k] = w
	}

	b := NewBuilder(n)
	b.Reserve(g.NumEdges() + len(edited))
	for v := 0; v < n; v++ {
		if w := g.VertexWeight(v); w != 1 {
			b.SetVertexWeight(v, w)
		}
		if w := g.VertexLoop(v); w > 0 {
			b.AddSelfLoop(v, w)
		}
	}
	g.ForEachEdge(func(u, v int, w float64) {
		if ew, ok := edited[key{int32(u), int32(v)}]; ok {
			if ew > 0 {
				b.AddEdge(u, v, ew)
			}
			delete(edited, key{int32(u), int32(v)})
			return
		}
		b.AddEdge(u, v, w)
	})
	// Whatever remains in the map is a freshly added edge.
	for k, w := range edited {
		if w > 0 {
			b.AddEdge(int(k.u), int(k.v), w)
		}
	}
	return b.Build()
}
