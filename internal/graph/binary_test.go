package graph

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// loopy returns a small graph with self-loops, non-unit vertex and edge
// weights — the shape a coarsened graph has.
func loopy() *Graph {
	b := NewBuilder(5)
	b.AddEdge(0, 1, 2.5)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 0.125)
	b.AddEdge(3, 4, 7)
	b.AddEdge(0, 4, 1)
	b.AddEdge(1, 4, 3)
	b.SetVertexWeight(0, 3)
	b.SetVertexWeight(3, 0.5)
	b.AddSelfLoop(1, 4.25)
	b.AddSelfLoop(4, 0.75)
	return b.MustBuild()
}

func binaryCases() map[string]*Graph {
	return map[string]*Graph{
		"path":        Path(6),
		"single":      Path(1),
		"empty-edges": NewBuilder(4).MustBuild(),
		"grid":        Grid2D(7, 5),
		"complete":    Complete(9),
		"gnp":         GNP(60, 0.1, 42),
		"loopy":       loopy(),
		"weighted": WeightedGrid2D(4, 4, func(u, v int) float64 {
			return 0.5 + float64(u*31+v)/7
		}),
	}
}

// graphsEqual does a field-by-field bit-identical comparison, derived
// arrays included.
func graphsEqual(t *testing.T, name string, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: shape %dv/%de vs %dv/%de", name, a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	n := a.NumVertices()
	for v := 0; v <= n; v++ {
		if a.xadj[v] != b.xadj[v] {
			t.Fatalf("%s: xadj[%d] = %d vs %d", name, v, a.xadj[v], b.xadj[v])
		}
	}
	for i := range a.adjncy {
		if a.adjncy[i] != b.adjncy[i] || a.adjwgt[i] != b.adjwgt[i] || a.arcEID[i] != b.arcEID[i] {
			t.Fatalf("%s: arc %d differs: (%d,%g,eid %d) vs (%d,%g,eid %d)", name, i,
				a.adjncy[i], a.adjwgt[i], a.arcEID[i], b.adjncy[i], b.adjwgt[i], b.arcEID[i])
		}
	}
	for e := range a.eu {
		if a.eu[e] != b.eu[e] || a.ev[e] != b.ev[e] || a.ewgt[e] != b.ewgt[e] {
			t.Fatalf("%s: edge %d differs", name, e)
		}
	}
	for v := 0; v < n; v++ {
		if a.vwgt[v] != b.vwgt[v] || a.wdeg[v] != b.wdeg[v] || a.VertexLoop(v) != b.VertexLoop(v) {
			t.Fatalf("%s: vertex %d differs: vwgt %g/%g wdeg %g/%g loop %g/%g", name, v,
				a.vwgt[v], b.vwgt[v], a.wdeg[v], b.wdeg[v], a.VertexLoop(v), b.VertexLoop(v))
		}
	}
	if a.totW != b.totW || a.totVW != b.totVW || a.totLW != b.totLW {
		t.Fatalf("%s: totals differ: (%g,%g,%g) vs (%g,%g,%g)", name,
			a.totW, a.totVW, a.totLW, b.totW, b.totVW, b.totLW)
	}
	if a.unitEW != b.unitEW || a.unitVW != b.unitVW {
		t.Fatalf("%s: unit-weight flags differ: (%v,%v) vs (%v,%v)", name,
			a.unitEW, a.unitVW, b.unitEW, b.unitVW)
	}
	if a.HasLoops() != b.HasLoops() {
		t.Fatalf("%s: HasLoops %v vs %v", name, a.HasLoops(), b.HasLoops())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for name, g := range binaryCases() {
		data := EncodeBinary(g)
		if len(data) != EncodedBinaryLen(g) {
			t.Fatalf("%s: encoded %d bytes, EncodedBinaryLen says %d", name, len(data), EncodedBinaryLen(g))
		}
		dec, err := DecodeBinary(data)
		if err != nil {
			t.Fatalf("%s: DecodeBinary: %v", name, err)
		}
		graphsEqual(t, name+"/decode", g, dec)
		// The encoding is canonical: re-encoding the decoded graph is
		// byte-identical, and the digest survives.
		if !bytes.Equal(EncodeBinary(dec), data) {
			t.Fatalf("%s: re-encode not byte-identical", name)
		}
		if Digest(dec) != Digest(g) {
			t.Fatalf("%s: digest changed across round trip", name)
		}
	}
}

func TestOpenBinary(t *testing.T) {
	dir := t.TempDir()
	for name, g := range binaryCases() {
		path := filepath.Join(dir, name+".ffg")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteBinary(f, g); err != nil {
			t.Fatalf("%s: WriteBinary: %v", name, err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		dec, err := OpenBinary(path)
		if err != nil {
			t.Fatalf("%s: OpenBinary: %v", name, err)
		}
		graphsEqual(t, name+"/open", g, dec)
	}
	if _, err := OpenBinary(filepath.Join(dir, "missing.ffg")); err == nil {
		t.Fatal("OpenBinary of a missing file succeeded")
	}
}

func TestPeekBinary(t *testing.T) {
	g := loopy()
	data := EncodeBinary(g)
	info, err := PeekBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != g.NumVertices() || info.M != g.NumEdges() || !info.HasLoops {
		t.Fatalf("header says %dv/%de loops=%v", info.N, info.M, info.HasLoops)
	}
	if info.Digest != Digest(g) {
		t.Fatalf("header digest %s, Digest %s", info.Digest, Digest(g))
	}
	if info.EncodedLen != len(data) {
		t.Fatalf("header implies %d bytes, encoding is %d", info.EncodedLen, len(data))
	}
	// Header-only prefix is enough for Peek.
	if _, err := PeekBinary(data[:binaryHeaderLen]); err != nil {
		t.Fatalf("peek of bare header: %v", err)
	}
	if _, err := PeekBinary(data[:binaryHeaderLen-1]); err == nil {
		t.Fatal("peek of truncated header succeeded")
	}
}

// TestContentHashLoopSensitivity pins the digest semantics: loop-free
// digests ignore the loop section entirely (so they are stable against
// pre-store releases), while loop weights do change the digest.
func TestContentHashLoopSensitivity(t *testing.T) {
	plain := Path(4)
	if plain.HasLoops() {
		t.Fatal("Path has loops?")
	}
	b := NewBuilder(4)
	for i := 0; i+1 < 4; i++ {
		b.AddEdge(i, i+1, 1)
	}
	b.AddSelfLoop(2, 1.5)
	looped := b.MustBuild()
	if Digest(plain) == Digest(looped) {
		t.Fatal("self-loop weight did not change the digest")
	}
	b2 := NewBuilder(4)
	for i := 0; i+1 < 4; i++ {
		b2.AddEdge(i, i+1, 1)
	}
	b2.AddSelfLoop(2, 2.5)
	if Digest(looped) == Digest(b2.MustBuild()) {
		t.Fatal("different self-loop weights hash identically")
	}
}

// corrupt returns a copy of data with the byte at off replaced.
func corrupt(data []byte, off int, b byte) []byte {
	out := append([]byte(nil), data...)
	out[off] = b
	return out
}

func TestDecodeBinaryRejects(t *testing.T) {
	g := GNP(30, 0.15, 7)
	data := EncodeBinary(g)
	n := g.NumVertices()

	cases := map[string][]byte{
		"empty":           nil,
		"truncated":       data[:len(data)-1],
		"trailing":        append(append([]byte(nil), data...), 0),
		"bad magic":       corrupt(data, 0, 'X'),
		"bad version":     corrupt(data, 4, 99),
		"unknown flags":   corrupt(data, 5, 0x80),
		"reserved set":    corrupt(data, 6, 1),
		"digest mismatch": corrupt(data, 16, data[16]^0xff),
	}
	// xadj out of monotone order: xadj[1] beyond xadj[2].
	nonMono := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(nonMono[binaryHeaderLen+4:], uint32(g.xadj[2]+1))
	cases["non-monotone xadj"] = nonMono
	// Neighbor out of range.
	badNbr := append([]byte(nil), data...)
	adjOff := binaryHeaderLen + pad8(4*(n+1))
	binary.LittleEndian.PutUint32(badNbr[adjOff:], uint32(n+5))
	cases["neighbor out of range"] = badNbr
	// Asymmetric weight: change one arc's weight without its mirror.
	badW := append([]byte(nil), data...)
	wOff := adjOff + pad8(4*2*g.NumEdges())
	binary.LittleEndian.PutUint64(badW[wOff:], math.Float64bits(123.0))
	cases["asymmetric weight"] = badW
	// Header claims fewer vertices than the body carries.
	shrunk := append([]byte(nil), data...)
	binary.LittleEndian.PutUint32(shrunk[8:], uint32(n-1))
	cases["count/length mismatch"] = shrunk
	// Oversized counts must be refused before any allocation.
	huge := append([]byte(nil), data[:binaryHeaderLen]...)
	binary.LittleEndian.PutUint32(huge[8:], 0xffffffff)
	cases["huge vertex count"] = huge

	for name, bad := range cases {
		if _, err := DecodeBinary(bad); err == nil {
			t.Errorf("%s: DecodeBinary accepted corrupted input", name)
		}
	}
}

// TestContentHashMatchesNeighborStream cross-checks ContentHash against an
// independent reimplementation of the documented stream.
func TestContentHashMatchesNeighborStream(t *testing.T) {
	g := loopy()
	var stream bytes.Buffer
	writeInt := func(x int64) {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], uint64(x))
		stream.Write(b[:])
	}
	writeFloat := func(f float64) { writeInt(int64(math.Float64bits(f))) }
	writeInt(int64(g.NumVertices()))
	writeInt(int64(g.NumEdges()))
	for v := 0; v < g.NumVertices(); v++ {
		writeFloat(g.VertexWeight(v))
		for i, u := range g.Neighbors(v) {
			if int(u) >= v {
				writeInt(int64(u))
				writeFloat(g.Weights(v)[i])
			}
		}
	}
	writeInt(-1)
	for v := 0; v < g.NumVertices(); v++ {
		writeFloat(g.VertexLoop(v))
	}
	want := sha256.Sum256(stream.Bytes())
	if got := ContentHash(g); got != want {
		t.Fatal("ContentHash does not match the documented byte stream")
	}
}
