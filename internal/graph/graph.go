// Package graph implements the weighted undirected graph substrate used by
// every partitioning method in this repository.
//
// Graphs are stored in compressed sparse row (CSR) form: adjacency for vertex
// v occupies adjncy[xadj[v]:xadj[v+1]] with parallel edge weights. Each
// undirected edge additionally carries a stable edge identifier in [0, m),
// exposed per arc through ArcEdgeIDs; the ant-colony pheromone fields and the
// FM refinement pass are keyed on those identifiers.
//
// The package also provides the standard helpers the partitioners need:
// builders, traversal, connected components, induced subgraphs, synthetic
// generators, and METIS/Chaco-format I/O.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable weighted undirected graph in CSR form.
// Vertex weights default to 1. Edge weights must be positive.
//
// A vertex may additionally carry a self-loop weight. Self-loops are not
// edges: they never appear in the adjacency, can never be cut, and exist so
// that graph coarsening can fold the weight of contracted edges into the
// coarse vertex instead of losing it — package partition counts them toward
// a part's internal weight, which keeps the Ncut/Mcut denominators of a
// coarse partition identical to those of the fine partition it projects to.
type Graph struct {
	xadj   []int32   // len n+1; adjacency offsets
	adjncy []int32   // len 2m; neighbor lists
	adjwgt []float64 // len 2m; weights parallel to adjncy
	arcEID []int32   // len 2m; undirected edge id per arc
	eu, ev []int32   // len m; endpoints of edge id e, eu[e] < ev[e]
	ewgt   []float64 // len m; weight of edge id e
	vwgt   []float64 // len n; vertex weights
	lwgt   []float64 // len n or nil; self-loop weight per vertex
	wdeg   []float64 // len n; weighted degree per vertex (self-loops excluded)
	totW   float64   // sum of undirected edge weights
	totVW  float64   // sum of vertex weights
	totLW  float64   // sum of self-loop weights
	unitEW bool      // every edge weight is exactly 1
	unitVW bool      // every vertex weight is exactly 1
}

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int { return len(g.xadj) - 1 }

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int { return len(g.eu) }

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int { return int(g.xadj[v+1] - g.xadj[v]) }

// Neighbors returns the neighbor list of v as a shared slice view.
// Callers must not modify the returned slice.
func (g *Graph) Neighbors(v int) []int32 { return g.adjncy[g.xadj[v]:g.xadj[v+1]] }

// Weights returns the edge weights parallel to Neighbors(v).
// Callers must not modify the returned slice.
func (g *Graph) Weights(v int) []float64 { return g.adjwgt[g.xadj[v]:g.xadj[v+1]] }

// ArcEdgeIDs returns, parallel to Neighbors(v), the undirected edge id of
// each incident edge. Callers must not modify the returned slice.
func (g *Graph) ArcEdgeIDs(v int) []int32 { return g.arcEID[g.xadj[v]:g.xadj[v+1]] }

// EdgeEndpoints returns the endpoints (u < v) of edge id e.
func (g *Graph) EdgeEndpoints(e int) (int, int) { return int(g.eu[e]), int(g.ev[e]) }

// EdgeWeightOf returns the weight of edge id e.
func (g *Graph) EdgeWeightOf(e int) float64 { return g.ewgt[e] }

// VertexWeight returns the weight of vertex v.
func (g *Graph) VertexWeight(v int) float64 { return g.vwgt[v] }

// VertexLoop returns the self-loop weight of vertex v (0 unless the graph
// was built with AddSelfLoop — in practice, a coarse graph whose vertex v
// absorbed contracted edges). Unordered convention: a fine edge of weight w
// contracted inside v contributes w here.
func (g *Graph) VertexLoop(v int) float64 {
	if g.lwgt == nil {
		return 0
	}
	return g.lwgt[v]
}

// HasLoops reports whether any vertex carries a self-loop weight.
func (g *Graph) HasLoops() bool { return g.lwgt != nil }

// TotalLoopWeight returns the sum of all self-loop weights.
func (g *Graph) TotalLoopWeight() float64 { return g.totLW }

// TotalVertexWeight returns the sum of all vertex weights.
func (g *Graph) TotalVertexWeight() float64 { return g.totVW }

// TotalEdgeWeight returns the sum of all undirected edge weights.
func (g *Graph) TotalEdgeWeight() float64 { return g.totW }

// WeightedDegree returns d(v) = sum of the weights of edges incident to v,
// precomputed at construction so per-move hot paths read it in O(1).
func (g *Graph) WeightedDegree(v int) float64 { return g.wdeg[v] }

// UnitEdgeWeights reports whether every edge weight is exactly 1.0, detected
// at construction. Per-move scoring loops use it to count incident edges with
// integer arithmetic instead of loading the weight array: a sum of 1.0s below
// 2^53 equals the float64 of its count exactly, so the fast path is
// bit-identical while touching half the memory.
func (g *Graph) UnitEdgeWeights() bool { return g.unitEW }

// UnitVertexWeights reports whether every vertex weight is exactly 1.0,
// detected at construction. Hot loops use it to substitute the constant 1.0
// for the random vwgt load their vertex draw would otherwise pay — the array
// outgrows L1 on large graphs, and the substituted arithmetic is
// bit-identical.
func (g *Graph) UnitVertexWeights() bool { return g.unitVW }

// EdgeWeight returns the weight of edge {u,v} and whether it exists.
// It scans the shorter of the two adjacency lists.
func (g *Graph) EdgeWeight(u, v int) (float64, bool) {
	if g.Degree(v) < g.Degree(u) {
		u, v = v, u
	}
	nbrs := g.Neighbors(u)
	wts := g.Weights(u)
	for i, x := range nbrs {
		if int(x) == v {
			return wts[i], true
		}
	}
	return 0, false
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v int, w float64)) {
	for e := range g.eu {
		fn(int(g.eu[e]), int(g.ev[e]), g.ewgt[e])
	}
}

// ForEachEdgeID is ForEachEdge with the undirected edge id included, for
// callers that key per-edge state (pheromone fields, FM gains) on edge ids.
func (g *Graph) ForEachEdgeID(fn func(e, u, v int, w float64)) {
	for e := range g.eu {
		fn(e, int(g.eu[e]), int(g.ev[e]), g.ewgt[e])
	}
}

// Builder accumulates edges and produces an immutable Graph.
// Parallel edges between the same vertex pair are merged by summing weights.
//
// Edges are buffered in a flat slice (24 bytes each, amortized) rather than a
// hash map and deduplicated by a sort-then-merge pass inside Build, so
// million-edge builds cost a fraction of the memory of the former
// map[[2]int32]float64 accumulator; see BenchmarkBuilderLargeBuild.
type Builder struct {
	n     int
	vwgt  []float64
	lwgt  []float64     // nil until the first AddSelfLoop
	edges []builderEdge // u < v normalized; parallels merged at Build time
	err   error
}

type builderEdge struct {
	u, v int32
	w    float64
}

// NewBuilder returns a builder for a graph with n vertices, all of weight 1.
func NewBuilder(n int) *Builder {
	b := &Builder{n: n, vwgt: make([]float64, n)}
	for i := range b.vwgt {
		b.vwgt[i] = 1
	}
	return b
}

// AddEdge adds an undirected edge {u,v} with weight w, merging parallels.
// Self-loops, out-of-range endpoints and non-positive weights are recorded as
// errors reported by Build.
func (b *Builder) AddEdge(u, v int, w float64) {
	if b.err != nil {
		return
	}
	switch {
	case u == v:
		b.err = fmt.Errorf("graph: self-loop at vertex %d", u)
	case u < 0 || u >= b.n || v < 0 || v >= b.n:
		b.err = fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, b.n)
	case w <= 0:
		b.err = fmt.Errorf("graph: edge {%d,%d} has non-positive weight %g", u, v, w)
	default:
		if u > v {
			u, v = v, u
		}
		b.edges = append(b.edges, builderEdge{int32(u), int32(v), w})
	}
}

// AddSelfLoop adds w to the self-loop weight of vertex v. Self-loops are
// deliberately separate from AddEdge (which rejects u == v): they never
// enter the adjacency and can never be cut; they record internal weight a
// coarsening contraction folded into v. Non-positive w and out-of-range v
// are recorded as errors reported by Build.
func (b *Builder) AddSelfLoop(v int, w float64) {
	if b.err != nil {
		return
	}
	switch {
	case v < 0 || v >= b.n:
		b.err = fmt.Errorf("graph: self-loop vertex %d out of range [0,%d)", v, b.n)
	case w <= 0:
		b.err = fmt.Errorf("graph: self-loop at vertex %d has non-positive weight %g", v, w)
	default:
		if b.lwgt == nil {
			b.lwgt = make([]float64, b.n)
		}
		b.lwgt[v] += w
	}
}

// Reserve grows the edge buffer to hold m additional edges, sparing the
// append-doubling copies on large builds where the caller knows the edge
// count up front (file headers, generators).
func (b *Builder) Reserve(m int) {
	if m <= 0 || b.err != nil {
		return
	}
	if cap(b.edges)-len(b.edges) < m {
		grown := make([]builderEdge, len(b.edges), len(b.edges)+m)
		copy(grown, b.edges)
		b.edges = grown
	}
}

// SetVertexWeight sets the weight of vertex v (default 1).
func (b *Builder) SetVertexWeight(v int, w float64) {
	if b.err != nil {
		return
	}
	if v < 0 || v >= b.n {
		b.err = fmt.Errorf("graph: vertex %d out of range [0,%d)", v, b.n)
		return
	}
	if w <= 0 {
		b.err = fmt.Errorf("graph: vertex %d has non-positive weight %g", v, w)
		return
	}
	b.vwgt[v] = w
}

// NumPendingEdges reports how many edges have been added so far; parallel
// edges are still counted separately, Build merges them.
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build constructs the CSR graph. The builder must not be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	if b.err != nil {
		return nil, b.err
	}
	n := b.n
	list := b.edges
	b.edges = nil
	// Stable, so parallel edges merge their weights in insertion order and
	// the summed floats match the order-of-add accumulation exactly.
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].u != list[j].u {
			return list[i].u < list[j].u
		}
		return list[i].v < list[j].v
	})
	// Merge parallel edges in place: after the sort they are adjacent.
	merged := list[:0]
	for _, e := range list {
		if k := len(merged); k > 0 && merged[k-1].u == e.u && merged[k-1].v == e.v {
			merged[k-1].w += e.w
			continue
		}
		merged = append(merged, e)
	}
	list = merged
	m := len(list)

	g := &Graph{
		xadj:   make([]int32, n+1),
		adjncy: make([]int32, 2*m),
		adjwgt: make([]float64, 2*m),
		arcEID: make([]int32, 2*m),
		eu:     make([]int32, m),
		ev:     make([]int32, m),
		ewgt:   make([]float64, m),
		vwgt:   b.vwgt,
		lwgt:   b.lwgt,
	}
	for _, w := range g.lwgt {
		g.totLW += w
	}
	deg := make([]int32, n)
	for _, e := range list {
		deg[e.u]++
		deg[e.v]++
	}
	for v := 0; v < n; v++ {
		g.xadj[v+1] = g.xadj[v] + deg[v]
	}
	pos := make([]int32, n)
	copy(pos, g.xadj[:n])
	for id, e := range list {
		g.eu[id], g.ev[id] = e.u, e.v
		g.ewgt[id] = e.w
		g.adjncy[pos[e.u]] = e.v
		g.adjwgt[pos[e.u]] = e.w
		g.arcEID[pos[e.u]] = int32(id)
		pos[e.u]++
		g.adjncy[pos[e.v]] = e.u
		g.adjwgt[pos[e.v]] = e.w
		g.arcEID[pos[e.v]] = int32(id)
		pos[e.v]++
		g.totW += e.w
	}
	for _, w := range g.vwgt {
		g.totVW += w
	}
	// Weighted degrees, summed in adjacency order — the exact accumulation
	// the per-call loop used before precomputation, so the values are
	// bit-identical.
	g.wdeg = make([]float64, n)
	for v := 0; v < n; v++ {
		d := 0.0
		for _, w := range g.adjwgt[g.xadj[v]:g.xadj[v+1]] {
			d += w
		}
		g.wdeg[v] = d
	}
	g.unitEW = true
	for _, w := range g.ewgt {
		if w != 1 {
			g.unitEW = false
			break
		}
	}
	g.unitVW = true
	for _, w := range g.vwgt {
		if w != 1 {
			g.unitVW = false
			break
		}
	}
	return g, nil
}

// MustBuild is Build but panics on error; intended for tests and generators
// whose inputs are correct by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
