package graph

// BFSLevels performs a breadth-first search from src and returns the hop
// distance of every vertex (-1 for unreachable vertices).
func BFSLevels(g *Graph, src int) []int32 {
	n := g.NumVertices()
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	level[src] = 0
	queue := make([]int32, 0, n)
	queue = append(queue, int32(src))
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range g.Neighbors(int(v)) {
			if level[u] < 0 {
				level[u] = level[v] + 1
				queue = append(queue, u)
			}
		}
	}
	return level
}

// Components labels each vertex with a connected-component id in [0, count)
// and returns the labels and the component count.
func Components(g *Graph) ([]int32, int) {
	n := g.NumVertices()
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	count := 0
	queue := make([]int32, 0, n)
	for s := 0; s < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = int32(count)
		queue = append(queue[:0], int32(s))
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, u := range g.Neighbors(int(v)) {
				if comp[u] < 0 {
					comp[u] = int32(count)
					queue = append(queue, u)
				}
			}
		}
		count++
	}
	return comp, count
}

// IsConnected reports whether g has exactly one connected component.
// The empty graph is considered connected.
func IsConnected(g *Graph) bool {
	if g.NumVertices() == 0 {
		return true
	}
	_, c := Components(g)
	return c == 1
}

// Subgraph is an induced subgraph together with the vertex mapping back to
// the parent graph.
type Subgraph struct {
	G    *Graph
	Orig []int32 // Orig[local] = parent vertex id
}

// Induced returns the subgraph induced by the given parent vertices.
// Edges with exactly one endpoint in the set are dropped. Vertex weights are
// inherited. The order of vertices in the subgraph follows the order given.
func Induced(g *Graph, vertices []int32) *Subgraph {
	local := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		local[v] = int32(i)
	}
	b := NewBuilder(len(vertices))
	for i, v := range vertices {
		b.SetVertexWeight(i, g.VertexWeight(int(v)))
		nbrs := g.Neighbors(int(v))
		wts := g.Weights(int(v))
		for j, u := range nbrs {
			lu, ok := local[u]
			if !ok || lu <= int32(i) {
				continue // outside the set, or already added from the other side
			}
			b.AddEdge(i, int(lu), wts[j])
		}
	}
	return &Subgraph{G: b.MustBuild(), Orig: append([]int32(nil), vertices...)}
}

// FarthestPointSeeds returns k well-spread vertices chosen by greedy
// farthest-point traversal on hop distance, starting from start. The start
// vertex is the first seed. If k exceeds the number of reachable vertices the
// result is truncated.
func FarthestPointSeeds(g *Graph, start, k int) []int {
	n := g.NumVertices()
	if k <= 0 || n == 0 {
		return nil
	}
	seeds := []int{start}
	dist := BFSLevels(g, start)
	for len(seeds) < k {
		best, bestD := -1, int32(-1)
		for v := 0; v < n; v++ {
			if dist[v] > bestD {
				best, bestD = v, dist[v]
			}
		}
		if best < 0 || bestD <= 0 {
			break // no further reachable vertex strictly away from the seed set
		}
		seeds = append(seeds, best)
		for v, d := range BFSLevels(g, best) {
			if d >= 0 && (dist[v] < 0 || d < dist[v]) {
				dist[v] = d
			}
		}
	}
	return seeds
}
