package graph

// Binary CSR codec: the persistent, content-addressed on-disk form of a
// Graph, designed so a stored graph is admitted into a solve with zero
// parsing and near-zero build cost.
//
// The layout is a fixed little-endian header followed by the canonical CSR
// arrays, each section padded to 8 bytes so every float64 section is aligned
// for direct aliasing:
//
//	offset  0  magic "FFGB"
//	offset  4  version byte (1)
//	offset  5  flags byte (bit 0: self-loop section present)
//	offset  6  reserved uint16 (zero)
//	offset  8  n uint32 (vertices)
//	offset 12  m uint32 (undirected edges)
//	offset 16  SHA-256 content digest (ContentHash of the graph)
//	offset 48  xadj    (n+1)*int32, zero-padded to 8 bytes
//	       ... adjncy  2m*int32, zero-padded to 8 bytes
//	       ... adjwgt  2m*float64
//	       ... vwgt    n*float64
//	       ... lwgt    n*float64, only when the loop flag is set
//
// Only the canonical content travels; the derived arrays (edge ids and
// endpoints, weighted degrees, totals, unit-weight flags) are reconstructed
// in one deterministic O(n+m) pass at decode time, so a tampered file cannot
// smuggle inconsistent derived state past the digest, and the reconstruction
// is bit-identical to what Builder.Build computes for the same graph.
//
// Decode validates everything before trusting anything: header counts
// against the buffer length (no attacker-controlled allocation), xadj
// monotonicity, the canonical neighbor order Build produces (ascending
// smaller-than-self prefix, ascending larger-than-self suffix), symmetric
// arcs with byte-identical weights, positive finite weights, zero padding,
// exact length (no trailing bytes), and finally the recomputed content
// digest against the header's.

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"
)

// binaryMagic identifies a binary-encoded graph.
var binaryMagic = [4]byte{'F', 'F', 'G', 'B'}

// BinaryVersion is the current binary-graph codec version; DecodeBinary
// rejects anything newer.
const BinaryVersion = 1

// binaryHeaderLen is the fixed header size (48 bytes, 8-aligned).
const binaryHeaderLen = 4 + 1 + 1 + 2 + 4 + 4 + sha256.Size

// binaryFlagLoops marks the presence of the self-loop weight section.
const binaryFlagLoops = 1 << 0

// maxBinaryVertices bounds the vertex/edge counts a decoder accepts; CSR
// indices are int32, so anything larger cannot round-trip anyway.
const maxBinaryVertices = 1<<31 - 1

// ContentHash hashes a graph's full content — vertex count, vertex weights,
// the sorted CSR adjacency with edge weights, and (when present) self-loop
// weights — so the same graph reaches the same digest no matter how it was
// supplied (METIS text, edge list, binary file, in any edge order). The
// digest is the graph's identity everywhere: the server's result-cache and
// island exchange keys, the wire codec's cross-graph refusal, and the id a
// stored graph is addressed by. Loop-free graphs hash the exact byte stream
// the pre-store releases hashed, so their digests are stable across
// versions.
func ContentHash(g *Graph) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(x int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(x))
		h.Write(buf[:])
	}
	writeFloat := func(f float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	n := g.NumVertices()
	writeInt(int64(n))
	writeInt(int64(g.NumEdges()))
	for v := 0; v < n; v++ {
		writeFloat(g.VertexWeight(v))
		nbrs := g.Neighbors(v)
		wts := g.Weights(v)
		for i, u := range nbrs {
			if int(u) < v {
				continue // count each undirected edge once, from its low endpoint
			}
			writeInt(int64(u))
			writeFloat(wts[i])
		}
	}
	if g.HasLoops() {
		// Appended only when loops exist, so loop-free digests are
		// byte-for-byte the historical ones.
		writeInt(-1) // section marker, unreachable as a neighbor id
		for v := 0; v < n; v++ {
			writeFloat(g.VertexLoop(v))
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// Digest is ContentHash rendered as lowercase hex — the string form used as
// a stored graph's id and in cache and exchange keys.
func Digest(g *Graph) string {
	h := ContentHash(g)
	return hex.EncodeToString(h[:])
}

// pad8 rounds up to the next multiple of 8.
func pad8(x int) int { return (x + 7) &^ 7 }

// binaryLen returns the exact encoded size for n vertices, m edges.
func binaryLen(n, m int, loops bool) int {
	size := binaryHeaderLen
	size += pad8(4 * (n + 1)) // xadj
	size += pad8(4 * 2 * m)   // adjncy
	size += 8 * 2 * m         // adjwgt
	size += 8 * n             // vwgt
	if loops {
		size += 8 * n // lwgt
	}
	return size
}

// EncodedBinaryLen returns the byte length EncodeBinary produces for g.
func EncodedBinaryLen(g *Graph) int {
	return binaryLen(g.NumVertices(), g.NumEdges(), g.HasLoops())
}

// EncodeBinary serializes g in the binary CSR format, header digest
// included. The encoding is canonical: equal graphs produce equal bytes.
func EncodeBinary(g *Graph) []byte {
	n, m := g.NumVertices(), g.NumEdges()
	buf := make([]byte, 0, EncodedBinaryLen(g))
	buf = append(buf, binaryMagic[:]...)
	buf = append(buf, BinaryVersion)
	flags := byte(0)
	if g.HasLoops() {
		flags |= binaryFlagLoops
	}
	buf = append(buf, flags)
	buf = binary.LittleEndian.AppendUint16(buf, 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(m))
	digest := ContentHash(g)
	buf = append(buf, digest[:]...)
	appendInt32s := func(xs []int32) {
		for _, x := range xs {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(x))
		}
		for len(buf)%8 != 0 {
			buf = append(buf, 0)
		}
	}
	appendFloats := func(xs []float64) {
		for _, x := range xs {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(x))
		}
	}
	appendInt32s(g.xadj)
	appendInt32s(g.adjncy)
	appendFloats(g.adjwgt)
	appendFloats(g.vwgt)
	if g.HasLoops() {
		appendFloats(g.lwgt)
	}
	return buf
}

// WriteBinary writes g's binary CSR encoding to w.
func WriteBinary(w io.Writer, g *Graph) error {
	_, err := w.Write(EncodeBinary(g))
	return err
}

// BinaryInfo is the decoded header of a binary graph file: enough to index
// a store without materializing the graph.
type BinaryInfo struct {
	// N and M are the vertex and undirected-edge counts.
	N, M int
	// HasLoops reports whether the file carries a self-loop section.
	HasLoops bool
	// Digest is the header's content digest in lowercase hex — the graph's
	// content address. PeekBinary reads it from the header without
	// verification; DecodeBinary and OpenBinary verify it.
	Digest string
	// EncodedLen is the exact file length the header implies.
	EncodedLen int
}

// PeekBinary decodes and sanity-checks only the fixed header. It validates
// magic, version, reserved bytes, counts against implementation limits and
// the implied length against len(data) when the full buffer is supplied —
// but not the digest; callers that need integrity must DecodeBinary. data
// may be just the first binaryHeaderLen bytes of a file.
func PeekBinary(data []byte) (BinaryInfo, error) {
	var info BinaryInfo
	if len(data) < binaryHeaderLen {
		return info, fmt.Errorf("graph: binary header truncated: %d bytes, want %d", len(data), binaryHeaderLen)
	}
	if data[0] != binaryMagic[0] || data[1] != binaryMagic[1] || data[2] != binaryMagic[2] || data[3] != binaryMagic[3] {
		return info, fmt.Errorf("graph: bad binary magic %q", data[:4])
	}
	if v := data[4]; v != BinaryVersion {
		return info, fmt.Errorf("graph: unsupported binary version %d (this build speaks %d)", v, BinaryVersion)
	}
	flags := data[5]
	if flags&^byte(binaryFlagLoops) != 0 {
		return info, fmt.Errorf("graph: unknown binary flags %#x", flags)
	}
	if binary.LittleEndian.Uint16(data[6:]) != 0 {
		return info, fmt.Errorf("graph: nonzero reserved header bytes")
	}
	n := int(binary.LittleEndian.Uint32(data[8:]))
	m := int(binary.LittleEndian.Uint32(data[12:]))
	if n > maxBinaryVertices || m > maxBinaryVertices/2 {
		return info, fmt.Errorf("graph: binary header counts %d %d exceed implementation limits", n, m)
	}
	info.N, info.M = n, m
	info.HasLoops = flags&binaryFlagLoops != 0
	info.Digest = hex.EncodeToString(data[16 : 16+sha256.Size])
	info.EncodedLen = binaryLen(n, m, info.HasLoops)
	return info, nil
}

// DecodeBinary parses, validates and materializes a binary-encoded graph.
// The returned graph owns its memory; data may be reused. Every structural
// property is checked before use and the content digest is recomputed and
// compared against the header, so a corrupted or tampered file is refused
// rather than admitted.
func DecodeBinary(data []byte) (*Graph, error) {
	return decodeBinary(data, false)
}

// OpenBinary reads and validates the binary graph at path. The big arrays
// (adjacency offsets and lists, edge and vertex weights) alias the read
// buffer directly instead of being copied — the zero-parse admission path a
// stored graph takes into a solve. The returned graph is immutable like any
// other; the buffer stays reachable for the graph's lifetime.
func OpenBinary(path string) (*Graph, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeBinary(data, true)
}

// aliasInt32 reinterprets a 4-aligned byte slice as []int32 without copying;
// falls back to a copy when the platform or alignment forbids aliasing.
func aliasInt32(b []byte, count int) []int32 {
	if count == 0 {
		return nil
	}
	if littleEndianHost && uintptr(unsafe.Pointer(&b[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), count)
	}
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// aliasFloat64 reinterprets an 8-aligned byte slice as []float64 without
// copying; falls back to a copy when alignment or endianness forbids it.
func aliasFloat64(b []byte, count int) []float64 {
	if count == 0 {
		return nil
	}
	if littleEndianHost && uintptr(unsafe.Pointer(&b[0]))%8 == 0 {
		return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), count)
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// littleEndianHost reports whether the host lays integers out little-endian
// (true on every platform this repository targets; the copying fallback
// keeps big-endian hosts correct anyway).
var littleEndianHost = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func copyInt32s(b []byte, count int) []int32 {
	out := make([]int32, count)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

func copyFloat64s(b []byte, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

func decodeBinary(data []byte, alias bool) (*Graph, error) {
	info, err := PeekBinary(data)
	if err != nil {
		return nil, err
	}
	if len(data) != info.EncodedLen {
		return nil, fmt.Errorf("graph: binary length %d, header implies %d", len(data), info.EncodedLen)
	}
	n, m := info.N, info.M

	// Section extraction. Padding bytes must be zero so the encoding stays
	// canonical (one graph, one byte string, one digest).
	off := binaryHeaderLen
	section := func(raw, padded int) ([]byte, error) {
		b := data[off : off+raw]
		for _, p := range data[off+raw : off+padded] {
			if p != 0 {
				return nil, fmt.Errorf("graph: nonzero padding byte in binary encoding")
			}
		}
		off += padded
		return b, nil
	}
	xadjB, err := section(4*(n+1), pad8(4*(n+1)))
	if err != nil {
		return nil, err
	}
	adjncyB, err := section(4*2*m, pad8(4*2*m))
	if err != nil {
		return nil, err
	}
	adjwgtB, _ := section(8*2*m, 8*2*m)
	vwgtB, _ := section(8*n, 8*n)
	var lwgtB []byte
	if info.HasLoops {
		lwgtB, _ = section(8*n, 8*n)
	}

	var xadj, adjncy []int32
	var adjwgt, vwgt, lwgt []float64
	if alias {
		xadj = aliasInt32(xadjB, n+1)
		adjncy = aliasInt32(adjncyB, 2*m)
		adjwgt = aliasFloat64(adjwgtB, 2*m)
		vwgt = aliasFloat64(vwgtB, n)
		if info.HasLoops {
			lwgt = aliasFloat64(lwgtB, n)
		}
	} else {
		xadj = copyInt32s(xadjB, n+1)
		adjncy = copyInt32s(adjncyB, 2*m)
		adjwgt = copyFloat64s(adjwgtB, 2*m)
		vwgt = copyFloat64s(vwgtB, n)
		if info.HasLoops {
			lwgt = copyFloat64s(lwgtB, n)
		}
	}

	// Structural validation: monotone offsets covering exactly 2m arcs.
	if len(xadj) == 0 || xadj[0] != 0 {
		return nil, fmt.Errorf("graph: binary xadj does not start at 0")
	}
	for v := 0; v < n; v++ {
		if xadj[v+1] < xadj[v] {
			return nil, fmt.Errorf("graph: binary xadj decreases at vertex %d", v)
		}
	}
	if int(xadj[n]) != 2*m {
		return nil, fmt.Errorf("graph: binary xadj covers %d arcs, header implies %d", xadj[n], 2*m)
	}
	for v := 0; v < n; v++ {
		if w := vwgt[v]; !(w > 0) || math.IsInf(w, 1) {
			return nil, fmt.Errorf("graph: binary vertex %d weight %g not positive and finite", v, w)
		}
	}
	if info.HasLoops {
		any := false
		for v := 0; v < n; v++ {
			w := lwgt[v]
			if w < 0 || math.IsNaN(w) || math.IsInf(w, 1) {
				return nil, fmt.Errorf("graph: binary vertex %d self-loop weight %g invalid", v, w)
			}
			if w > 0 {
				any = true
			}
		}
		if !any {
			return nil, fmt.Errorf("graph: binary loop section present but all-zero")
		}
	}

	g := &Graph{
		xadj:   xadj,
		adjncy: adjncy,
		adjwgt: adjwgt,
		vwgt:   vwgt,
		lwgt:   lwgt,
	}
	if err := g.rebuildDerived(); err != nil {
		return nil, err
	}
	if got := ContentHash(g); hex.EncodeToString(got[:]) != info.Digest {
		return nil, fmt.Errorf("graph: binary content digest mismatch (header %s, content %s)",
			info.Digest[:12], hex.EncodeToString(got[:])[:12])
	}
	return g, nil
}

// rebuildDerived reconstructs everything Builder.Build derives from the
// canonical CSR arrays — edge ids and endpoints, per-edge weights, weighted
// degrees, totals, unit-weight flags — in one O(n+m) pass, validating the
// canonical invariants as it goes. The adjacency of every vertex must be in
// Build's order: neighbors smaller than the vertex ascending, then neighbors
// larger than the vertex ascending, with edge ids assigned in (u,v)-lex
// order; symmetric arcs must exist and carry bit-identical weights.
func (g *Graph) rebuildDerived() error {
	n := g.NumVertices()
	m := len(g.adjncy) / 2
	g.arcEID = make([]int32, 2*m)
	g.eu = make([]int32, m)
	g.ev = make([]int32, m)
	g.ewgt = make([]float64, m)
	g.wdeg = make([]float64, n)
	// cursor[v] walks v's smaller-neighbor prefix as the reverse arcs of
	// edges (u, v), u < v, are discovered in ascending-u order.
	cursor := make([]int32, n)
	eid := int32(0)
	g.totW, g.totVW, g.totLW = 0, 0, 0
	g.unitEW, g.unitVW = true, true
	for u := 0; u < n; u++ {
		lo, hi := g.xadj[u], g.xadj[u+1]
		seenLarger := false
		prev := int32(-1)
		d := 0.0
		for a := lo; a < hi; a++ {
			v := g.adjncy[a]
			w := g.adjwgt[a]
			if v < 0 || int(v) >= n {
				return fmt.Errorf("graph: binary neighbor %d of vertex %d out of range [0,%d)", v, u, n)
			}
			if v == int32(u) {
				return fmt.Errorf("graph: binary self-arc at vertex %d", u)
			}
			if !(w > 0) || math.IsInf(w, 1) {
				return fmt.Errorf("graph: binary edge {%d,%d} weight %g not positive and finite", u, v, w)
			}
			d += w
			if v > int32(u) {
				// First arc of edge (u, v): assign the next edge id. The
				// suffix must ascend for ids to come out in (u,v)-lex order.
				if seenLarger && v <= prev {
					return fmt.Errorf("graph: binary adjacency of vertex %d not in canonical order", u)
				}
				seenLarger = true
				prev = v
				if int(eid) >= m {
					return fmt.Errorf("graph: binary adjacency implies more than %d edges", m)
				}
				g.eu[eid], g.ev[eid] = int32(u), v
				g.ewgt[eid] = w
				g.arcEID[a] = eid
				// The reverse arc must sit at v's cursor: v's prefix lists
				// its smaller neighbors in ascending order, and edges (·,v)
				// arrive here in ascending u.
				ra := g.xadj[v] + cursor[v]
				if ra >= g.xadj[v+1] || g.adjncy[ra] != int32(u) {
					return fmt.Errorf("graph: binary edge {%d,%d} has no symmetric arc", u, v)
				}
				if g.adjwgt[ra] != w {
					return fmt.Errorf("graph: binary edge {%d,%d} listed with weights %g and %g", u, v, g.adjwgt[ra], w)
				}
				g.arcEID[ra] = eid
				cursor[v]++
				eid++
				g.totW += w
			} else if seenLarger {
				return fmt.Errorf("graph: binary adjacency of vertex %d not in canonical order", u)
			}
		}
		// Every smaller neighbor must have been consumed by the time u's own
		// row is done being everyone's reverse target... checked globally
		// below via eid == m; a stray prefix arc surfaces as a missing
		// symmetric arc or an id shortfall.
		g.wdeg[u] = d
		if g.vwgt[u] != 1 {
			g.unitVW = false
		}
		g.totVW += g.vwgt[u]
	}
	if int(eid) != m {
		return fmt.Errorf("graph: binary adjacency implies %d edges, header says %d", eid, m)
	}
	for u := 0; u < n; u++ {
		if int(g.xadj[u]+cursor[u]) != firstLargerArc(g, u) {
			return fmt.Errorf("graph: binary adjacency of vertex %d not in canonical order", u)
		}
	}
	for _, w := range g.ewgt {
		if w != 1 {
			g.unitEW = false
			break
		}
	}
	for _, w := range g.lwgt {
		g.totLW += w
	}
	return nil
}

// firstLargerArc returns the index of u's first arc pointing to a neighbor
// larger than u (== the end of the smaller-neighbor prefix).
func firstLargerArc(g *Graph, u int) int {
	lo, hi := g.xadj[u], g.xadj[u+1]
	for a := lo; a < hi; a++ {
		if g.adjncy[a] > int32(u) {
			return int(a)
		}
	}
	return int(hi)
}
