package graph

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestBuilderBasic(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 2)
	b.AddEdge(1, 2, 3)
	b.AddEdge(2, 3, 4)
	b.AddEdge(3, 0, 5)
	b.SetVertexWeight(2, 7)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 4 {
		t.Fatalf("got n=%d m=%d, want 4,4", g.NumVertices(), g.NumEdges())
	}
	if w, ok := g.EdgeWeight(0, 3); !ok || w != 5 {
		t.Fatalf("EdgeWeight(0,3) = %v,%v, want 5,true", w, ok)
	}
	if w, ok := g.EdgeWeight(0, 2); ok {
		t.Fatalf("EdgeWeight(0,2) = %v, want absent", w)
	}
	if g.VertexWeight(2) != 7 {
		t.Fatalf("VertexWeight(2) = %v, want 7", g.VertexWeight(2))
	}
	if g.TotalVertexWeight() != 10 {
		t.Fatalf("TotalVertexWeight = %v, want 10", g.TotalVertexWeight())
	}
	if g.TotalEdgeWeight() != 14 {
		t.Fatalf("TotalEdgeWeight = %v, want 14", g.TotalEdgeWeight())
	}
	if d := g.WeightedDegree(0); d != 7 {
		t.Fatalf("WeightedDegree(0) = %v, want 7", d)
	}
}

func TestBuilderMergesParallelEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1, 1)
	b.AddEdge(1, 0, 2.5)
	g := b.MustBuild()
	if g.NumEdges() != 1 {
		t.Fatalf("parallel edges not merged: m=%d", g.NumEdges())
	}
	if w, _ := g.EdgeWeight(0, 1); w != 3.5 {
		t.Fatalf("merged weight = %v, want 3.5", w)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []func(*Builder){
		func(b *Builder) { b.AddEdge(0, 0, 1) },
		func(b *Builder) { b.AddEdge(0, 5, 1) },
		func(b *Builder) { b.AddEdge(-1, 0, 1) },
		func(b *Builder) { b.AddEdge(0, 1, 0) },
		func(b *Builder) { b.AddEdge(0, 1, -2) },
		func(b *Builder) { b.SetVertexWeight(9, 1) },
		func(b *Builder) { b.SetVertexWeight(0, 0) },
	}
	for i, f := range cases {
		b := NewBuilder(3)
		f(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestEdgeIDsConsistent(t *testing.T) {
	g := Grid2D(5, 7)
	seen := make(map[int32][2]int)
	for v := 0; v < g.NumVertices(); v++ {
		ids := g.ArcEdgeIDs(v)
		nbrs := g.Neighbors(v)
		for i, id := range ids {
			u := int(nbrs[i])
			a, b := v, u
			if a > b {
				a, b = b, a
			}
			if prev, ok := seen[id]; ok {
				if prev != [2]int{a, b} {
					t.Fatalf("edge id %d maps to both %v and %v", id, prev, [2]int{a, b})
				}
			} else {
				seen[id] = [2]int{a, b}
			}
			eu, ev := g.EdgeEndpoints(int(id))
			if eu != a || ev != b {
				t.Fatalf("EdgeEndpoints(%d) = (%d,%d), want (%d,%d)", id, eu, ev, a, b)
			}
		}
	}
	if len(seen) != g.NumEdges() {
		t.Fatalf("saw %d distinct edge ids, want %d", len(seen), g.NumEdges())
	}
}

func TestForEachEdgeVisitsEachOnce(t *testing.T) {
	g := Torus2D(4, 5)
	count := 0
	total := 0.0
	g.ForEachEdge(func(u, v int, w float64) {
		if u >= v {
			t.Fatalf("ForEachEdge gave u=%d >= v=%d", u, v)
		}
		count++
		total += w
	})
	if count != g.NumEdges() {
		t.Fatalf("visited %d edges, want %d", count, g.NumEdges())
	}
	if math.Abs(total-g.TotalEdgeWeight()) > 1e-12 {
		t.Fatalf("sum %v != total %v", total, g.TotalEdgeWeight())
	}
}

func TestGeneratorsShapes(t *testing.T) {
	cases := []struct {
		name string
		g    *Graph
		n, m int
	}{
		{"path", Path(10), 10, 9},
		{"cycle", Cycle(8), 8, 8},
		{"complete", Complete(6), 6, 15},
		{"star", Star(7), 7, 6},
		{"grid", Grid2D(3, 4), 12, 17},
		{"torus", Torus2D(3, 4), 12, 24},
		{"dumbbell", Dumbbell(5, 4, 2), 9, 10 + 6 + 2},
	}
	for _, c := range cases {
		if c.g.NumVertices() != c.n || c.g.NumEdges() != c.m {
			t.Errorf("%s: got (%d,%d), want (%d,%d)", c.name, c.g.NumVertices(), c.g.NumEdges(), c.n, c.m)
		}
		if !IsConnected(c.g) {
			t.Errorf("%s: not connected", c.name)
		}
	}
}

func TestRandomGeneratorsConnectedAndDeterministic(t *testing.T) {
	g1 := GNP(60, 0.05, 42)
	g2 := GNP(60, 0.05, 42)
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("GNP not deterministic: %d vs %d edges", g1.NumEdges(), g2.NumEdges())
	}
	if !IsConnected(g1) {
		t.Fatal("GNP graph not connected")
	}
	rg := RandomGeometric(80, 0.15, 7)
	if !IsConnected(rg) {
		t.Fatal("RandomGeometric graph not connected")
	}
	if rg.NumVertices() != 80 {
		t.Fatalf("RandomGeometric n = %d", rg.NumVertices())
	}
}

func TestBFSLevelsOnPath(t *testing.T) {
	g := Path(6)
	lv := BFSLevels(g, 2)
	want := []int32{2, 1, 0, 1, 2, 3}
	for i := range want {
		if lv[i] != want[i] {
			t.Fatalf("level[%d] = %d, want %d", i, lv[i], want[i])
		}
	}
}

func TestComponents(t *testing.T) {
	// Two disjoint triangles.
	b := NewBuilder(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		b.AddEdge(e[0], e[1], 1)
	}
	g := b.MustBuild()
	comp, count := Components(g)
	if count != 2 {
		t.Fatalf("count = %d, want 2", count)
	}
	if comp[0] != comp[1] || comp[0] != comp[2] || comp[3] != comp[4] || comp[3] != comp[5] || comp[0] == comp[3] {
		t.Fatalf("bad component labels %v", comp)
	}
	if IsConnected(g) {
		t.Fatal("IsConnected wrongly true")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := Grid2D(4, 4)
	// Take the top-left 2x2 block: vertices 0,1,4,5.
	sub := Induced(g, []int32{0, 1, 4, 5})
	if sub.G.NumVertices() != 4 {
		t.Fatalf("n = %d, want 4", sub.G.NumVertices())
	}
	if sub.G.NumEdges() != 4 {
		t.Fatalf("m = %d, want 4 (a 2x2 grid cycle)", sub.G.NumEdges())
	}
	for local, orig := range sub.Orig {
		if g.VertexWeight(int(orig)) != sub.G.VertexWeight(local) {
			t.Fatalf("vertex weight mismatch at local %d", local)
		}
	}
}

func TestFarthestPointSeeds(t *testing.T) {
	g := Path(30)
	seeds := FarthestPointSeeds(g, 0, 3)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds, want 3", len(seeds))
	}
	if seeds[0] != 0 || seeds[1] != 29 {
		t.Fatalf("seeds = %v, want start 0 then 29", seeds)
	}
	// Third seed should be near the middle.
	if seeds[2] < 10 || seeds[2] > 20 {
		t.Fatalf("third seed %d not near middle", seeds[2])
	}
}

func TestFarthestPointSeedsTruncates(t *testing.T) {
	g := Path(3)
	seeds := FarthestPointSeeds(g, 0, 10)
	if len(seeds) != 3 {
		t.Fatalf("got %d seeds, want all 3 vertices", len(seeds))
	}
}

// Property: for random graphs, the CSR structure is internally consistent —
// every arc appears in both directions with equal weight, and degree sums
// match twice the edge count.
func TestCSRSymmetryProperty(t *testing.T) {
	check := func(seed int64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(30)
		b := NewBuilder(n)
		edges := r.Intn(3 * n)
		for i := 0; i < edges; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u != v {
				b.AddEdge(u, v, 1+r.Float64()*9)
			}
		}
		g := b.MustBuild()
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(v)
			nbrs := g.Neighbors(v)
			wts := g.Weights(v)
			for i, u := range nbrs {
				w2, ok := g.EdgeWeight(int(u), v)
				if !ok || math.Abs(w2-wts[i]) > 1e-12 {
					return false
				}
			}
		}
		return degSum == 2*g.NumEdges()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSelfLoops(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 2)
	b.AddSelfLoop(1, 3)
	b.AddSelfLoop(1, 0.5)
	b.AddSelfLoop(2, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasLoops() {
		t.Fatal("HasLoops = false")
	}
	if got := g.VertexLoop(0); got != 0 {
		t.Fatalf("VertexLoop(0) = %g, want 0", got)
	}
	if got := g.VertexLoop(1); got != 3.5 {
		t.Fatalf("VertexLoop(1) = %g, want 3.5 (accumulated)", got)
	}
	if got := g.TotalLoopWeight(); got != 4.5 {
		t.Fatalf("TotalLoopWeight = %g, want 4.5", got)
	}
	// Loops are not edges: adjacency, edge count and edge weight unchanged.
	if g.NumEdges() != 1 || g.TotalEdgeWeight() != 2 || g.Degree(1) != 1 {
		t.Fatalf("loops leaked into the adjacency: m=%d totW=%g deg(1)=%d",
			g.NumEdges(), g.TotalEdgeWeight(), g.Degree(1))
	}

	// A loop-free graph reports zeros without allocating.
	g2 := NewBuilder(2).MustBuild()
	if g2.HasLoops() || g2.VertexLoop(0) != 0 || g2.TotalLoopWeight() != 0 {
		t.Fatal("loop state on a loop-free graph")
	}
}

func TestSelfLoopErrors(t *testing.T) {
	b := NewBuilder(2)
	b.AddSelfLoop(5, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("out-of-range self-loop not rejected")
	}
	b = NewBuilder(2)
	b.AddSelfLoop(0, -1)
	if _, err := b.Build(); err == nil {
		t.Fatal("non-positive self-loop weight not rejected")
	}
	// AddEdge still rejects u == v: a self-loop must be explicit.
	b = NewBuilder(2)
	b.AddEdge(1, 1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("AddEdge self-loop not rejected")
	}
}
