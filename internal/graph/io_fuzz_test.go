package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadMETIS asserts the reader's contract on arbitrary input: it must
// either return a graph or an error — never panic — and any graph it does
// accept must be internally consistent and survive a write/re-read
// round-trip.
func FuzzReadMETIS(f *testing.F) {
	seeds := []string{
		"",                                       // empty input
		"4 4\n2 4\n1 3\n2 4\n3 1\n",              // plain 4-ring
		"% comment\n\n4 4\n2 4\n1 3\n2 4\n3 1\n", // comments and blanks
		"4 4 011\n2 2 4 1\n3 1 1 2\n2 2 4 3\n3 3 1 1\n", // vertex + edge weights
		"4 4 001\n2 1 4 1\n1 1 3 1\n2 1 4 1\n3 1 1 1\n", // edge weights only
		"4 4 010\n1 2 4\n2 1 3\n1 2 4\n2 3 1\n",         // vertex weights only
		"4 4 100\n2 4\n1 3\n2 4\n3 1\n",                 // vertex sizes: unsupported
		"x y\n",                                         // non-numeric header
		"2 1\n2\n\n",                                    // asymmetric: only one endpoint lists the edge
		"2 1\n2 1\n",                                    // stray token parsed as weightless neighbor
		"2 1 001\n2\n1\n",                               // missing edge weight
		"2 1 001\n2 2\n1 3\n",                           // edge listed with two different weights
		"3 9 011\n",                                     // header promises more than the body holds
		"1 0\n\n",                                       // single vertex, no edges
		"2 1\n2 0.5\n1 0.5\n",                           // float where a neighbor index belongs
		"5 2\n2\n1 3\n2\n5\n4\n",                        // disconnected
		"2 1\n3\n1\n",                                   // neighbor index out of range
		"2 1\n-1\n1\n",                                  // negative neighbor index
		"2 1\n1\n2\n",                                   // self-loop via 1-indexing confusion
		"4 2\n2 4\n1 3\n2 4\n3 1\n",                     // header edge count disagrees
		"1000000000 0\n",                                // huge vertex count, no body: must fail fast
		"-1 0\n",                                        // negative vertex count
		"2 -1\n\n\n",                                    // negative edge count
		"3000000000 0\n",                                // vertex count beyond int32
		"2 1 001\n2 NaN\n1 NaN\n",                       // NaN edge weight
		"2 2\n2 2\n1 1\n",                               // edge listed four times
		"2 1\n2 2\n\n",                                  // one endpoint lists the edge twice, other never
		"3 2\n2 2\n1 1 3\n2\n",                          // repeated mention hiding among valid edges
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadMETIS(bytes.NewReader(data))
		if err != nil {
			if g != nil {
				t.Fatal("ReadMETIS returned both a graph and an error")
			}
			return
		}
		// Accepted graphs must be consistent…
		n := g.NumVertices()
		for v := 0; v < n; v++ {
			nbrs := g.Neighbors(v)
			wts := g.Weights(v)
			if len(nbrs) != len(wts) {
				t.Fatalf("vertex %d: %d neighbors, %d weights", v, len(nbrs), len(wts))
			}
			for i, u := range nbrs {
				if int(u) < 0 || int(u) >= n || int(u) == v {
					t.Fatalf("vertex %d: bad neighbor %d", v, u)
				}
				if wts[i] <= 0 {
					t.Fatalf("edge {%d,%d}: non-positive weight %g", v, u, wts[i])
				}
				if w, ok := g.EdgeWeight(int(u), v); !ok || w != wts[i] {
					t.Fatalf("edge {%d,%d} not symmetric", v, u)
				}
			}
		}
		// …and round-trip through the writer unchanged.
		var buf strings.Builder
		if err := WriteMETIS(&buf, g); err != nil {
			t.Fatalf("writing accepted graph: %v", err)
		}
		g2, err := ReadMETIS(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("re-reading written graph: %v\n%s", err, buf.String())
		}
		if g2.NumVertices() != n || g2.NumEdges() != g.NumEdges() {
			t.Fatalf("round trip changed shape: %dv/%de -> %dv/%de",
				n, g.NumEdges(), g2.NumVertices(), g2.NumEdges())
		}
		for v := 0; v < n; v++ {
			nbrs, nbrs2 := g.Neighbors(v), g2.Neighbors(v)
			if len(nbrs) != len(nbrs2) {
				t.Fatalf("round trip changed degree of %d", v)
			}
			for i := range nbrs {
				if nbrs[i] != nbrs2[i] || g.Weights(v)[i] != g2.Weights(v)[i] {
					t.Fatalf("round trip changed adjacency of %d", v)
				}
			}
		}
	})
}
