package graph

import (
	"math"

	"repro/internal/rng"
)

// Path returns the path graph on n vertices with unit edge weights.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.MustBuild()
}

// Cycle returns the cycle graph on n >= 3 vertices with unit edge weights.
func Cycle(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n, 1)
	}
	return b.MustBuild()
}

// Complete returns the complete graph on n vertices with unit edge weights.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j, 1)
		}
	}
	return b.MustBuild()
}

// Star returns a star with n-1 leaves attached to vertex 0.
func Star(n int) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, i, 1)
	}
	return b.MustBuild()
}

// Grid2D returns the rows x cols 4-neighbor grid graph with unit weights.
// Vertex (r, c) has index r*cols + c.
func Grid2D(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				b.AddEdge(v, v+1, 1)
			}
			if r+1 < rows {
				b.AddEdge(v, v+cols, 1)
			}
		}
	}
	return b.MustBuild()
}

// Torus2D returns the rows x cols grid with wrap-around edges.
func Torus2D(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			b.AddEdge(v, r*cols+(c+1)%cols, 1)
			b.AddEdge(v, ((r+1)%rows)*cols+c, 1)
		}
	}
	return b.MustBuild()
}

// Dumbbell returns two cliques of sizes a and b joined by `bridge` unit
// edges between distinct vertex pairs. It is the canonical test case for
// bisection methods: the optimal cut severs the bridge.
func Dumbbell(a, b, bridge int) *Graph {
	bd := NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := i + 1; j < a; j++ {
			bd.AddEdge(i, j, 1)
		}
	}
	for i := 0; i < b; i++ {
		for j := i + 1; j < b; j++ {
			bd.AddEdge(a+i, a+j, 1)
		}
	}
	if bridge > a || bridge > b {
		panic("graph: bridge count exceeds clique size")
	}
	for i := 0; i < bridge; i++ {
		bd.AddEdge(i, a+i, 1)
	}
	return bd.MustBuild()
}

// GNP returns an Erdos-Renyi G(n, p) graph with unit edge weights, made
// connected by linking each isolated component to vertex 0 if necessary.
func GNP(n int, p float64, seed int64) *Graph {
	r := rng.New(seed)
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if r.Float64() < p {
				b.AddEdge(i, j, 1)
			}
		}
	}
	g := b.MustBuild()
	comp, count := Components(g)
	if count == 1 {
		return g
	}
	b2 := NewBuilder(n)
	g.ForEachEdge(func(u, v int, w float64) { b2.AddEdge(u, v, w) })
	linked := make([]bool, count)
	linked[comp[0]] = true
	for v := 1; v < n; v++ {
		if !linked[comp[v]] {
			b2.AddEdge(0, v, 1)
			linked[comp[v]] = true
		}
	}
	return b2.MustBuild()
}

// RandomGeometric places n points uniformly in the unit square and connects
// pairs within the given radius; edge weight is 1. The graph is made
// connected by adding nearest-pair links between components.
func RandomGeometric(n int, radius float64, seed int64) *Graph {
	r := rng.New(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i], ys[i] = r.Float64(), r.Float64()
	}
	b := NewBuilder(n)
	r2 := radius * radius
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx, dy := xs[i]-xs[j], ys[i]-ys[j]
			if dx*dx+dy*dy <= r2 {
				b.AddEdge(i, j, 1)
			}
		}
	}
	g := b.MustBuild()
	for {
		comp, count := Components(g)
		if count == 1 {
			return g
		}
		// Link the closest pair of vertices in different components.
		bi, bj, bd := -1, -1, math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if comp[i] == comp[j] {
					continue
				}
				dx, dy := xs[i]-xs[j], ys[i]-ys[j]
				if d := dx*dx + dy*dy; d < bd {
					bi, bj, bd = i, j, d
				}
			}
		}
		b2 := NewBuilder(n)
		g.ForEachEdge(func(u, v int, w float64) { b2.AddEdge(u, v, w) })
		b2.AddEdge(bi, bj, 1)
		g = b2.MustBuild()
	}
}

// WeightedGrid2D returns a rows x cols grid whose edge weights are produced
// by fn(u, v); fn must return a positive weight. Useful for image-style
// similarity graphs.
func WeightedGrid2D(rows, cols int, fn func(u, v int) float64) *Graph {
	b := NewBuilder(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				b.AddEdge(v, v+1, fn(v, v+1))
			}
			if r+1 < rows {
				b.AddEdge(v, v+cols, fn(v, v+cols))
			}
		}
	}
	return b.MustBuild()
}
