package graph

import (
	"testing"
)

// TestForEachEdgeIDMatchesArcTables cross-checks the per-edge weight array
// against the arc-level CSR tables: every (e, u, v, w) from ForEachEdgeID
// must agree with EdgeEndpoints, EdgeWeightOf and the arc weight found by
// scanning u's adjacency for edge id e.
func TestForEachEdgeIDMatchesArcTables(t *testing.T) {
	g := RandomGeometric(200, 0.15, 3)
	visited := 0
	g.ForEachEdgeID(func(e, u, v int, w float64) {
		visited++
		if eu, ev := g.EdgeEndpoints(e); eu != u || ev != v {
			t.Fatalf("edge %d: endpoints (%d,%d) want (%d,%d)", e, u, v, eu, ev)
		}
		if got := g.EdgeWeightOf(e); got != w {
			t.Fatalf("edge %d: EdgeWeightOf %g, callback %g", e, got, w)
		}
		found := false
		for i, id := range g.ArcEdgeIDs(u) {
			if int(id) == e {
				if g.Weights(u)[i] != w {
					t.Fatalf("edge %d: arc weight %g, edge weight %g", e, g.Weights(u)[i], w)
				}
				found = true
			}
		}
		if !found {
			t.Fatalf("edge %d not present in arc table of %d", e, u)
		}
	})
	if visited != g.NumEdges() {
		t.Fatalf("visited %d edges, want %d", visited, g.NumEdges())
	}
}

// buildLarge constructs a ~1M-edge torus-like graph through the Builder,
// with every edge added twice so the parallel-merge path is exercised at
// scale. Shared by the benchmark and its correctness check.
func buildLarge(rows, cols int, reserve bool) (*Graph, error) {
	n := rows * cols
	b := NewBuilder(n)
	if reserve {
		b.Reserve(4 * n)
	}
	id := func(r, c int) int { return ((r+rows)%rows)*cols + (c+cols)%cols }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := id(r, c)
			b.AddEdge(v, id(r, c+1), 1)
			b.AddEdge(v, id(r+1, c), 1)
			// Parallel duplicates: merged by Build, weights summed.
			b.AddEdge(v, id(r, c+1), 0.5)
			b.AddEdge(v, id(r+1, c), 0.5)
		}
	}
	return b.Build()
}

func TestBuildLargeMergesAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("large build in -short mode")
	}
	const rows, cols = 250, 1000
	g, err := buildLarge(rows, cols, true)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := g.NumEdges(), 2*rows*cols; got != want {
		t.Fatalf("NumEdges = %d, want %d", got, want)
	}
	if got, want := g.TotalEdgeWeight(), 1.5*2*float64(rows*cols); got != want {
		t.Fatalf("TotalEdgeWeight = %g, want %g", got, want)
	}
}

// BenchmarkBuilderLargeBuild measures a ~1M-edge build (500k distinct edges
// added twice, i.e. 1M AddEdge calls with a full merge pass). Reference
// numbers on one 2.1 GHz Xeon core: the former map[[2]int32]float64
// accumulator took 279 ms/op, 71 MB/op, ~4100 allocs/op; the slice
// accumulator takes ~71 ms/op (117 MB/op grown, 45 MB/op with Reserve) in
// under 55 allocations.
func BenchmarkBuilderLargeBuild(b *testing.B) {
	const rows, cols = 250, 1000
	for _, mode := range []struct {
		name    string
		reserve bool
	}{{"grown", false}, {"reserved", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := buildLarge(rows, cols, mode.reserve)
				if err != nil {
					b.Fatal(err)
				}
				if g.NumEdges() != 2*rows*cols {
					b.Fatalf("NumEdges = %d", g.NumEdges())
				}
			}
		})
	}
}
