package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// The METIS/Chaco graph file format:
//
//	% comment lines start with '%'
//	<n> <m> [fmt]
//	neighbors of vertex 1 (1-indexed), optionally interleaved with weights
//	...
//
// fmt is a three-digit code: 1xx = vertex sizes (unsupported here),
// x1x = vertex weights, xx1 = edge weights. We support 000, 001, 010, 011.

// WriteMETIS writes g in METIS format. Edge weights are written whenever any
// weight differs from 1; vertex weights likewise. Weights are rendered with
// %g, so integral weights round-trip exactly.
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hasVW, hasEW := false, false
	for v := 0; v < g.NumVertices(); v++ {
		if g.VertexWeight(v) != 1 {
			hasVW = true
		}
		for _, ew := range g.Weights(v) {
			if ew != 1 {
				hasEW = true
			}
		}
	}
	code := "00"
	if hasVW {
		code = "01"
	}
	if hasEW {
		code += "1"
	} else {
		code += "0"
	}
	if _, err := fmt.Fprintf(bw, "%d %d %s\n", g.NumVertices(), g.NumEdges(), code); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		parts := make([]string, 0, 2*g.Degree(v)+1)
		if hasVW {
			parts = append(parts, strconv.FormatFloat(g.VertexWeight(v), 'g', -1, 64))
		}
		nbrs := g.Neighbors(v)
		wts := g.Weights(v)
		for i, u := range nbrs {
			parts = append(parts, strconv.Itoa(int(u)+1))
			if hasEW {
				parts = append(parts, strconv.FormatFloat(wts[i], 'g', -1, 64))
			}
		}
		if _, err := fmt.Fprintln(bw, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMETIS parses a graph in METIS format. Both endpoints must list every
// edge; the builder merges the two directed mentions (weights must agree, or
// the merged weight doubles — we check and reject asymmetric listings).
//
// The header is not trusted: all O(n) allocation is deferred until n
// adjacency lines have actually been read, so a tiny input claiming a huge
// vertex count fails fast instead of exhausting memory.
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: missing header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("graph: malformed header %q", line)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, fmt.Errorf("graph: bad vertex count: %w", err)
	}
	m, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("graph: bad edge count: %w", err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative header counts %d %d", n, m)
	}
	const maxID = 1<<31 - 1 // vertex and edge ids are int32 in CSR form
	if n > maxID || m > maxID/2 {
		return nil, fmt.Errorf("graph: header counts %d %d exceed implementation limits", n, m)
	}
	hasVW, hasEW := false, false
	if len(fields) >= 3 {
		code := fields[2]
		if len(code) != 3 || strings.Trim(code, "01") != "" || code[0] == '1' {
			return nil, fmt.Errorf("graph: unsupported format code %q", code)
		}
		hasVW = code[1] == '1'
		hasEW = code[2] == '1'
	}

	// Each undirected edge must be mentioned exactly twice, once per
	// endpoint; mention tracks which endpoint spoke first so a vertex
	// repeating its own mention cannot masquerade as the confirmation.
	type mention struct {
		w         float64
		from      int32
		confirmed bool
	}
	seen := make(map[[2]int32]mention)
	var vwgts []float64 // grown per line read, so memory tracks input size
	if hasVW {
		vwgts = make([]float64, 0)
	}
	for v := 0; v < n; v++ {
		line, err := nextBodyLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: missing adjacency line for vertex %d: %w", v+1, err)
		}
		toks := strings.Fields(line)
		i := 0
		if hasVW {
			if len(toks) == 0 {
				return nil, fmt.Errorf("graph: vertex %d: missing weight", v+1)
			}
			vw, err := strconv.ParseFloat(toks[0], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: vertex %d: bad weight: %w", v+1, err)
			}
			if !(vw > 0) || math.IsInf(vw, 1) {
				return nil, fmt.Errorf("graph: vertex %d: weight %g not positive and finite", v+1, vw)
			}
			vwgts = append(vwgts, vw)
			i = 1
		}
		for i < len(toks) {
			u, err := strconv.Atoi(toks[i])
			if err != nil {
				return nil, fmt.Errorf("graph: vertex %d: bad neighbor %q: %w", v+1, toks[i], err)
			}
			if u < 1 || u > n {
				return nil, fmt.Errorf("graph: vertex %d: neighbor %d out of range [1,%d]", v+1, u, n)
			}
			i++
			w := 1.0
			if hasEW {
				if i >= len(toks) {
					return nil, fmt.Errorf("graph: vertex %d: neighbor %d missing edge weight", v+1, u)
				}
				w, err = strconv.ParseFloat(toks[i], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: vertex %d: bad edge weight: %w", v+1, err)
				}
				if !(w > 0) || math.IsInf(w, 1) {
					return nil, fmt.Errorf("graph: vertex %d: edge weight %g not positive and finite", v+1, w)
				}
				i++
			}
			a, c := int32(v), int32(u-1)
			if a > c {
				a, c = c, a
			}
			key := [2]int32{a, c}
			switch prev, ok := seen[key]; {
			case !ok:
				seen[key] = mention{w: w, from: int32(v)}
			case prev.confirmed:
				return nil, fmt.Errorf("graph: edge {%d,%d} listed more than twice", a+1, c+1)
			case prev.from == int32(v):
				return nil, fmt.Errorf("graph: vertex %d lists neighbor %d twice", v+1, u)
			case prev.w != w:
				return nil, fmt.Errorf("graph: edge {%d,%d} listed with weights %g and %g", a+1, c+1, prev.w, w)
			default:
				seen[key] = mention{w: w, from: prev.from, confirmed: true}
			}
		}
	}

	// Both endpoints have reported; only now is O(n) allocation justified.
	b := NewBuilder(n)
	b.Reserve(len(seen))
	for v, w := range vwgts {
		b.SetVertexWeight(v, w)
	}
	for key, h := range seen {
		if !h.confirmed {
			return nil, fmt.Errorf("graph: edge {%d,%d} listed by only one endpoint", key[0]+1, key[1]+1)
		}
		b.AddEdge(int(key[0]), int(key[1]), h.w)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", m, g.NumEdges())
	}
	return g, nil
}

// nextDataLine returns the next non-blank, non-comment line; used for the
// header, where blank lines carry no meaning.
func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// nextBodyLine returns the next non-comment line. Unlike the header, a blank
// body line is meaningful: it is the (empty) adjacency list of an isolated
// vertex, exactly what WriteMETIS emits for one.
func nextBodyLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
