package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The METIS/Chaco graph file format:
//
//	% comment lines start with '%'
//	<n> <m> [fmt]
//	neighbors of vertex 1 (1-indexed), optionally interleaved with weights
//	...
//
// fmt is a three-digit code: 1xx = vertex sizes (unsupported here),
// x1x = vertex weights, xx1 = edge weights. We support 000, 001, 010, 011.

// WriteMETIS writes g in METIS format. Edge weights are written whenever any
// weight differs from 1; vertex weights likewise. Weights are rendered with
// %g, so integral weights round-trip exactly.
func WriteMETIS(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hasVW, hasEW := false, false
	for v := 0; v < g.NumVertices(); v++ {
		if g.VertexWeight(v) != 1 {
			hasVW = true
		}
		for _, ew := range g.Weights(v) {
			if ew != 1 {
				hasEW = true
			}
		}
	}
	code := "00"
	if hasVW {
		code = "01"
	}
	if hasEW {
		code += "1"
	} else {
		code += "0"
	}
	if _, err := fmt.Fprintf(bw, "%d %d %s\n", g.NumVertices(), g.NumEdges(), code); err != nil {
		return err
	}
	for v := 0; v < g.NumVertices(); v++ {
		parts := make([]string, 0, 2*g.Degree(v)+1)
		if hasVW {
			parts = append(parts, strconv.FormatFloat(g.VertexWeight(v), 'g', -1, 64))
		}
		nbrs := g.Neighbors(v)
		wts := g.Weights(v)
		for i, u := range nbrs {
			parts = append(parts, strconv.Itoa(int(u)+1))
			if hasEW {
				parts = append(parts, strconv.FormatFloat(wts[i], 'g', -1, 64))
			}
		}
		if _, err := fmt.Fprintln(bw, strings.Join(parts, " ")); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadMETIS parses a graph in METIS format. Both endpoints must list every
// edge; the builder merges the two directed mentions (weights must agree, or
// the merged weight doubles — we check and reject asymmetric listings).
func ReadMETIS(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: missing header: %w", err)
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return nil, fmt.Errorf("graph: malformed header %q", line)
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil {
		return nil, fmt.Errorf("graph: bad vertex count: %w", err)
	}
	m, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("graph: bad edge count: %w", err)
	}
	hasVW, hasEW := false, false
	if len(fields) >= 3 {
		code := fields[2]
		if len(code) != 3 || strings.Trim(code, "01") != "" || code[0] == '1' {
			return nil, fmt.Errorf("graph: unsupported format code %q", code)
		}
		hasVW = code[1] == '1'
		hasEW = code[2] == '1'
	}

	b := NewBuilder(n)
	type half struct{ w float64 }
	seen := make(map[[2]int32]half, m)
	for v := 0; v < n; v++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: missing adjacency line for vertex %d: %w", v+1, err)
		}
		toks := strings.Fields(line)
		i := 0
		if hasVW {
			if len(toks) == 0 {
				return nil, fmt.Errorf("graph: vertex %d: missing weight", v+1)
			}
			vw, err := strconv.ParseFloat(toks[0], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: vertex %d: bad weight: %w", v+1, err)
			}
			b.SetVertexWeight(v, vw)
			i = 1
		}
		for i < len(toks) {
			u, err := strconv.Atoi(toks[i])
			if err != nil {
				return nil, fmt.Errorf("graph: vertex %d: bad neighbor %q: %w", v+1, toks[i], err)
			}
			i++
			w := 1.0
			if hasEW {
				if i >= len(toks) {
					return nil, fmt.Errorf("graph: vertex %d: neighbor %d missing edge weight", v+1, u)
				}
				w, err = strconv.ParseFloat(toks[i], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: vertex %d: bad edge weight: %w", v+1, err)
				}
				i++
			}
			a, c := int32(v), int32(u-1)
			if a > c {
				a, c = c, a
			}
			key := [2]int32{a, c}
			if prev, ok := seen[key]; ok {
				if prev.w != w {
					return nil, fmt.Errorf("graph: edge {%d,%d} listed with weights %g and %g", a+1, c+1, prev.w, w)
				}
				delete(seen, key)
				b.AddEdge(int(a), int(c), w)
			} else {
				seen[key] = half{w}
			}
		}
	}
	if len(seen) != 0 {
		return nil, fmt.Errorf("graph: %d edges listed by only one endpoint", len(seen))
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	if g.NumEdges() != m {
		return nil, fmt.Errorf("graph: header declares %d edges, found %d", m, g.NumEdges())
	}
	return g, nil
}

func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}
