package graph

import "testing"

func TestWithEdits(t *testing.T) {
	g := Grid2D(3, 3)
	g2, err := g.WithEdits([]EdgeEdit{
		{Op: "add", U: 0, V: 8, W: 2},
		{Op: "remove", U: 0, V: 1},
		{Op: "reweight", U: 3, V: 4, W: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("add+remove should keep edge count: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
	if w, ok := g2.EdgeWeight(0, 8); !ok || w != 2 {
		t.Fatalf("added edge {0,8}: weight %g, present %v", w, ok)
	}
	if _, ok := g2.EdgeWeight(0, 1); ok {
		t.Fatal("removed edge {0,1} still present")
	}
	if w, _ := g2.EdgeWeight(3, 4); w != 5 {
		t.Fatalf("reweighted edge {3,4}: weight %g", w)
	}
	// The original is untouched.
	if w, ok := g.EdgeWeight(0, 1); !ok || w != 1 {
		t.Fatal("WithEdits modified the receiver")
	}
	// Content addressing: the derived graph has a different digest, and the
	// same edits applied again land on the same digest.
	if Digest(g2) == Digest(g) {
		t.Fatal("edits did not change the digest")
	}
	g3, err := g.WithEdits([]EdgeEdit{
		{Op: "remove", U: 0, V: 1},
		{Op: "reweight", U: 3, V: 4, W: 5},
		{Op: "add", U: 0, V: 8, W: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if Digest(g3) != Digest(g2) {
		t.Fatal("same edit set in a different order produced a different digest")
	}
}

func TestWithEditsSequencing(t *testing.T) {
	g := Path(4)
	// remove then re-add is a legal replace.
	g2, err := g.WithEdits([]EdgeEdit{
		{Op: "remove", U: 1, V: 2},
		{Op: "add", U: 1, V: 2, W: 9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g2.EdgeWeight(1, 2); w != 9 {
		t.Fatalf("replace left weight %g", w)
	}
	// add then reweight of the new edge applies in order.
	g3, err := g.WithEdits([]EdgeEdit{
		{Op: "add", U: 0, V: 3},
		{Op: "reweight", U: 0, V: 3, W: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g3.EdgeWeight(0, 3); w != 4 {
		t.Fatalf("add+reweight left weight %g", w)
	}
	// Default weight is 1.
	g4, err := g.WithEdits([]EdgeEdit{{Op: "add", U: 0, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if w, _ := g4.EdgeWeight(0, 2); w != 1 {
		t.Fatalf("default add weight %g", w)
	}
}

func TestWithEditsPreservesWeightsAndLoops(t *testing.T) {
	g := loopy()
	g2, err := g.WithEdits([]EdgeEdit{{Op: "remove", U: 1, V: 2}})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumVertices(); v++ {
		if g2.VertexWeight(v) != g.VertexWeight(v) {
			t.Fatalf("vertex %d weight changed", v)
		}
		if g2.VertexLoop(v) != g.VertexLoop(v) {
			t.Fatalf("vertex %d self-loop changed", v)
		}
	}
}

func TestWithEditsRejects(t *testing.T) {
	g := Path(4)
	cases := map[string][]EdgeEdit{
		"add existing":        {{Op: "add", U: 0, V: 1}},
		"remove missing":      {{Op: "remove", U: 0, V: 2}},
		"reweight missing":    {{Op: "reweight", U: 0, V: 2, W: 2}},
		"unknown op":          {{Op: "sever", U: 0, V: 1}},
		"self-loop":           {{Op: "add", U: 2, V: 2}},
		"out of range":        {{Op: "add", U: 0, V: 9}},
		"negative weight":     {{Op: "add", U: 0, V: 2, W: -1}},
		"double add":          {{Op: "add", U: 0, V: 2}, {Op: "add", U: 0, V: 2}},
		"remove then remove":  {{Op: "remove", U: 0, V: 1}, {Op: "remove", U: 0, V: 1}},
		"reweight of removed": {{Op: "remove", U: 0, V: 1}, {Op: "reweight", U: 0, V: 1, W: 2}},
	}
	for name, edits := range cases {
		if _, err := g.WithEdits(edits); err == nil {
			t.Errorf("%s: WithEdits accepted bad edits", name)
		}
	}
}
