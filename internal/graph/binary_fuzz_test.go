package graph

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzBinaryGraphDecode asserts the binary decoder's contract on arbitrary
// bytes: it either returns a valid graph or an error — never a panic, never
// an out-of-bounds access, never an attacker-sized allocation — and any
// graph it accepts must re-encode byte-identically (the format is
// canonical, so acceptance implies the input was a genuine encoding).
func FuzzBinaryGraphDecode(f *testing.F) {
	valid := EncodeBinary(Grid2D(3, 3))
	withLoops := EncodeBinary(loopy())
	seeds := [][]byte{
		nil,                       // empty
		valid,                     // a genuine encoding
		withLoops,                 // loop section present
		valid[:binaryHeaderLen/2], // truncated header
		valid[:binaryHeaderLen],   // header only, body missing
		valid[:len(valid)-3],      // truncated body
		append(append([]byte(nil), valid...), 1, 2, 3), // trailing bytes
		corrupt(valid, 0, 'Z'),                         // bad magic
		corrupt(valid, 4, 0),                           // version 0
		corrupt(valid, 4, 2),                           // version from the future
		corrupt(valid, 5, 0xff),                        // unknown flags
		corrupt(valid, 16, valid[16]^1),                // digest mismatch
	}
	// xadj out of monotone order.
	nonMono := append([]byte(nil), valid...)
	binary.LittleEndian.PutUint32(nonMono[binaryHeaderLen+4:], 0xfffffff0)
	seeds = append(seeds, nonMono)
	// Counts far beyond the buffer: must fail fast without allocating.
	huge := append([]byte(nil), valid[:binaryHeaderLen]...)
	binary.LittleEndian.PutUint32(huge[8:], 0x7fffffff)
	binary.LittleEndian.PutUint32(huge[12:], 0x3fffffff)
	seeds = append(seeds, huge)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := DecodeBinary(data)
		if err != nil {
			if g != nil {
				t.Fatal("DecodeBinary returned both a graph and an error")
			}
			return
		}
		if !bytes.Equal(EncodeBinary(g), data) {
			t.Fatal("accepted input is not the canonical encoding of the decoded graph")
		}
		// Spot-check internal consistency the way the METIS fuzzer does.
		n := g.NumVertices()
		for v := 0; v < n; v++ {
			for i, u := range g.Neighbors(v) {
				if int(u) < 0 || int(u) >= n || int(u) == v {
					t.Fatalf("vertex %d: bad neighbor %d", v, u)
				}
				if w, ok := g.EdgeWeight(int(u), v); !ok || w != g.Weights(v)[i] {
					t.Fatalf("edge {%d,%d} not symmetric", v, u)
				}
			}
		}
	})
}
