package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestMETISRoundTripUnweighted(t *testing.T) {
	g := Grid2D(4, 5)
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "20 31 000\n") {
		t.Fatalf("unexpected header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestMETISRoundTripWeighted(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1, 2.5)
	b.AddEdge(1, 2, 1)
	b.AddEdge(2, 3, 10)
	b.AddEdge(3, 4, 1)
	b.AddEdge(4, 0, 7)
	b.SetVertexWeight(0, 3)
	g := b.MustBuild()
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "5 5 011") {
		t.Fatalf("expected format 011, got header %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
	g2, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSameGraph(t, g, g2)
}

func TestMETISCommentsAndErrors(t *testing.T) {
	ok := "% a comment\n3 2\n2\n1 3\n2\n"
	g, err := ReadMETIS(strings.NewReader(ok))
	if err != nil {
		t.Fatalf("valid input rejected: %v", err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got (%d,%d)", g.NumVertices(), g.NumEdges())
	}

	bad := []string{
		"",                    // empty
		"3\n",                 // short header
		"3 2\n2\n1 3\n",       // missing line
		"3 5\n2\n1 3\n2\n",    // wrong edge count
		"3 2\n2\n1\n2\n",      // one-sided edge (2-3 missing from 3)
		"2 1 00x\n2\n1\n",     // bad format code
		"2 1 101\n2 1\n1 1\n", // vertex sizes unsupported
		"2 1 001\n2 5\n1 6\n", // asymmetric weights
		"2 1\nx\n1\n",         // bad neighbor token
		"2 1 001\n2\n1 3\n",   // missing edge weight on one side
		"2 1 010\n2\nz 1\n",   // bad vertex weight
	}
	for i, s := range bad {
		if _, err := ReadMETIS(strings.NewReader(s)); err == nil {
			t.Errorf("case %d: expected error for %q", i, s)
		}
	}
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape mismatch: (%d,%d) vs (%d,%d)",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		if a.VertexWeight(v) != b.VertexWeight(v) {
			t.Fatalf("vertex %d weight %g vs %g", v, a.VertexWeight(v), b.VertexWeight(v))
		}
	}
	a.ForEachEdge(func(u, v int, w float64) {
		w2, ok := b.EdgeWeight(u, v)
		if !ok || w2 != w {
			t.Fatalf("edge {%d,%d}: %g vs %g (present=%v)", u, v, w, w2, ok)
		}
	})
}
