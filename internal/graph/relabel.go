package graph

import "fmt"

// Relabel returns a graph isomorphic to g with vertex v renumbered to
// perm[v]. Edge weights, vertex weights and self-loops ride along, so every
// partition statistic of an assignment maps through the permutation
// unchanged; the unit-weight fast-path flags are re-detected from the same
// values and therefore survive. perm must be a bijection on the vertex ids
// (order.IsPermutation).
//
// The relabeled graph is built through Builder, which re-sorts each
// adjacency list into ascending neighbor order — exactly the invariant the
// locality orderings in internal/order are chosen to exploit: after
// relabeling with order.Locality, ascending neighbor ids are also
// cache-adjacent ids.
func Relabel(g *Graph, perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: relabel permutation has %d entries for %d vertices", len(perm), n)
	}
	// Validate the bijection up front: a duplicated target would otherwise
	// silently merge two distinct vertices' edges into one adjacency.
	seen := make([]bool, n)
	for v, p := range perm {
		if p < 0 || int(p) >= n {
			return nil, fmt.Errorf("graph: relabel maps vertex %d to out-of-range id %d", v, p)
		}
		if seen[p] {
			return nil, fmt.Errorf("graph: relabel maps two vertices to id %d", p)
		}
		seen[p] = true
	}
	b := NewBuilder(n)
	b.Reserve(g.NumEdges())
	g.ForEachEdge(func(u, v int, w float64) {
		b.AddEdge(int(perm[u]), int(perm[v]), w)
	})
	if !g.UnitVertexWeights() {
		for v := 0; v < n; v++ {
			b.SetVertexWeight(int(perm[v]), g.VertexWeight(v))
		}
	}
	if g.HasLoops() {
		for v := 0; v < n; v++ {
			if lw := g.VertexLoop(v); lw != 0 {
				b.AddSelfLoop(int(perm[v]), lw)
			}
		}
	}
	return b.Build()
}
