package fusionfission

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/store"
)

// BENCH_store.json measures the two claims the graph store makes:
//
//   - Admission: a stored-graph job starts solving at least 10x sooner than
//     an inline-METIS job, because the binary CSR decode skips the text
//     parse entirely (and the store's memory tier skips even the decode).
//   - Warm starts: after churning 1% of the edges, a warm-started
//     repartition seeded with the pre-churn assignment reaches the
//     cold-solve Mcut in at most 25% of the cold step budget.
//
// The committed baseline is regenerated on the 10k-vertex instance with:
//
//	BENCH_STORE_BASELINE=1 go test -run TestWriteStoreBaseline -timeout 30m .
//
// TestStoreBenchSmoke is the CI-sized regression gate against that file.

// storeBaseline is the committed BENCH_store.json document.
type storeBaseline struct {
	Graph string `json:"graph"`
	K     int    `json:"k"`
	Note  string `json:"note"`

	MetisParseNs     int64   `json:"metis_parse_ns"`
	BinaryDecodeNs   int64   `json:"binary_decode_ns"`
	StoreGetNs       int64   `json:"store_get_ns"`
	AdmissionSpeedup float64 `json:"admission_speedup"`

	ChurnedEdges   int     `json:"churned_edges"`
	ColdSteps      int     `json:"cold_steps"`
	ColdMcut       float64 `json:"cold_mcut"`
	WarmSteps      int     `json:"warm_steps"`
	WarmMcut       float64 `json:"warm_mcut"`
	WarmBudgetFrac float64 `json:"warm_budget_fraction"`
}

// bestOfDur runs f reps times and returns the fastest duration.
func bestOfDur(tb testing.TB, reps int, f func() error) time.Duration {
	tb.Helper()
	best := time.Duration(1<<63 - 1)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if err := f(); err != nil {
			tb.Fatal(err)
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// measureAdmission times the three graph-admission paths on g: METIS text
// parse+build, binary CSR decode, and a store memory-tier hit.
func measureAdmission(tb testing.TB, g *Graph, reps int) (parse, decode, memGet time.Duration) {
	tb.Helper()
	var metis strings.Builder
	if err := WriteMETIS(&metis, g); err != nil {
		tb.Fatal(err)
	}
	bin := graph.EncodeBinary(g)
	parse = bestOfDur(tb, reps, func() error {
		_, err := ReadMETIS(strings.NewReader(metis.String()))
		return err
	})
	decode = bestOfDur(tb, reps, func() error {
		_, err := graph.DecodeBinary(bin)
		return err
	})
	st, err := store.Open("", 0)
	if err != nil {
		tb.Fatal(err)
	}
	id, _, err := st.Put(g)
	if err != nil {
		tb.Fatal(err)
	}
	memGet = bestOfDur(tb, reps, func() error {
		if _, ok := st.Get(id); !ok {
			return fmt.Errorf("stored graph vanished")
		}
		return nil
	})
	return parse, decode, memGet
}

// churnEdges derives a graph from g by removing frac/2 of its edges and
// adding as many fresh random ones — the drifting-workload scenario the
// warm-start path exists for. Deterministic in seed.
func churnEdges(tb testing.TB, g *Graph, frac float64, seed int64) (*Graph, int) {
	tb.Helper()
	type uv struct{ u, v int }
	var edges []uv
	g.ForEachEdge(func(u, v int, w float64) { edges = append(edges, uv{u, v}) })
	n := g.NumVertices()
	half := int(frac * float64(len(edges)) / 2)
	if half < 1 {
		half = 1
	}
	r := rng.New(seed)
	var edits []graph.EdgeEdit
	// Remove: a deterministic sample without replacement.
	perm := make([]int, len(edges))
	rng.Perm(r, perm)
	removed := make(map[uv]bool, half)
	for _, i := range perm[:half] {
		e := edges[i]
		removed[e] = true
		edits = append(edits, graph.EdgeEdit{Op: "remove", U: e.u, V: e.v})
	}
	// Add: fresh edges not present before (and not just removed, so the
	// edit list stays strict-semantics clean in one pass).
	added := make(map[uv]bool, half)
	for len(added) < half {
		u, v := r.Intn(n), r.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := uv{u, v}
		if added[e] || removed[e] {
			continue
		}
		if _, exists := g.EdgeWeight(u, v); exists {
			continue
		}
		added[e] = true
		edits = append(edits, graph.EdgeEdit{Op: "add", U: u, V: v, W: 1})
	}
	out, err := g.WithEdits(edits)
	if err != nil {
		tb.Fatal(err)
	}
	return out, len(edits)
}

// solveMcut runs the annealing metaheuristic with a fixed step budget and
// returns the independently recomputed Mcut plus the assignment.
func solveMcut(tb testing.TB, g *Graph, k, steps int, warm []int32) (float64, []int32) {
	tb.Helper()
	res, err := Partition(g, Options{
		K: k, Method: "annealing", Seed: 1, MaxSteps: steps,
		Budget: 10 * time.Minute, WarmStart: warm,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return recomputeMcut(g, res.Parts, res.NumParts), res.Parts
}

// TestWriteStoreBaseline regenerates BENCH_store.json on the acceptance
// instance and enforces the ISSUE-8 criteria: stored-graph admission at
// least 10x faster than inline METIS, and the warm-started repartition no
// worse than the cold solve at a quarter of its step budget.
func TestWriteStoreBaseline(t *testing.T) {
	if os.Getenv("BENCH_STORE_BASELINE") == "" {
		t.Skip("set BENCH_STORE_BASELINE=1 to regenerate BENCH_store.json")
	}
	const k = 32
	const coldSteps = 2_000_000
	g := graph.RandomGeometric(10_000, 0.02, 1)

	parse, decode, memGet := measureAdmission(t, g, 7)

	_, before := solveMcut(t, g, k, coldSteps, nil)
	churned, edits := churnEdges(t, g, 0.01, 5)
	coldMcut, _ := solveMcut(t, churned, k, coldSteps, nil)
	warmMcut, _ := solveMcut(t, churned, k, coldSteps/4, before)

	doc := storeBaseline{
		Graph: fmt.Sprintf("RandomGeometric(10000, 0.02, seed 1): %d vertices, %d edges",
			g.NumVertices(), g.NumEdges()),
		K: k,
		Note: "Graph admission latency (best-of-7 on one core): METIS text parse+build vs " +
			"binary CSR decode vs a store memory-tier hit; admission_speedup = parse/decode " +
			"(the conservative ratio — the memory tier is orders of magnitude beyond it). " +
			"Warm start: annealing at k=32, 1% edge churn; the warm-started run gets 25% of " +
			"the cold step budget and must match or beat the cold Mcut. Gates: " +
			"admission_speedup >= 10, warm_mcut <= cold_mcut.",
		MetisParseNs:     parse.Nanoseconds(),
		BinaryDecodeNs:   decode.Nanoseconds(),
		StoreGetNs:       memGet.Nanoseconds(),
		AdmissionSpeedup: float64(parse) / float64(decode),
		ChurnedEdges:     edits,
		ColdSteps:        coldSteps,
		ColdMcut:         coldMcut,
		WarmSteps:        coldSteps / 4,
		WarmMcut:         warmMcut,
		WarmBudgetFrac:   0.25,
	}

	t.Logf("admission: parse %s, decode %s (%.1fx), store hit %s; cold Mcut %.4f (%d steps), warm Mcut %.4f (%d steps)",
		parse, decode, doc.AdmissionSpeedup, memGet, coldMcut, coldSteps, warmMcut, coldSteps/4)
	if doc.AdmissionSpeedup < 10 {
		t.Errorf("admission speedup %.1fx < 10x acceptance threshold", doc.AdmissionSpeedup)
	}
	if doc.WarmMcut > doc.ColdMcut {
		t.Errorf("warm-started Mcut %.4f worse than cold %.4f at 25%% of the budget", warmMcut, coldMcut)
	}

	data, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_store.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestStoreBenchSmoke is the CI regression gate: it validates the committed
// BENCH_store.json against the acceptance thresholds and re-measures both
// claims on a smoke-sized instance. The admission comparison is a ratio of
// two single-threaded measurements on the same machine, so it tolerates
// slow runners; it must stay above 40% of the committed baseline ratio
// (mirroring the BENCH_anneal.json smoke gate).
func TestStoreBenchSmoke(t *testing.T) {
	buf, err := os.ReadFile("BENCH_store.json")
	if err != nil {
		t.Fatalf("missing BENCH_store.json baseline (regenerate with BENCH_STORE_BASELINE=1): %v", err)
	}
	var base storeBaseline
	if err := json.Unmarshal(buf, &base); err != nil {
		t.Fatal(err)
	}
	if base.AdmissionSpeedup < 10 {
		t.Errorf("committed baseline admission_speedup %.1fx < 10x acceptance threshold", base.AdmissionSpeedup)
	}
	if base.WarmMcut > base.ColdMcut {
		t.Errorf("committed baseline warm_mcut %.4f worse than cold_mcut %.4f", base.WarmMcut, base.ColdMcut)
	}
	if base.WarmBudgetFrac > 0.25 {
		t.Errorf("committed baseline warm budget fraction %.2f > 0.25", base.WarmBudgetFrac)
	}
	if testing.Short() {
		// Under -race the timing ratio is distorted unevenly (the parser
		// allocates, the decoder mostly doesn't); CI re-runs the full smoke
		// in a dedicated uninstrumented step.
		t.Skip("skipping measurements in -short mode; baseline document validated")
	}

	const k = 32
	const coldSteps = 200_000
	g := graph.RandomGeometric(2000, 0.04, 1)

	parse, decode, _ := measureAdmission(t, g, 5)
	speedup := float64(parse) / float64(decode)
	t.Logf("smoke admission speedup %.1fx (baseline %.1fx)", speedup, base.AdmissionSpeedup)
	if speedup < 0.4*base.AdmissionSpeedup {
		t.Errorf("admission speedup regressed: measured %.1fx < 40%% of committed baseline %.1fx",
			speedup, base.AdmissionSpeedup)
	}

	_, before := solveMcut(t, g, k, coldSteps, nil)
	churned, _ := churnEdges(t, g, 0.01, 5)
	coldMcut, _ := solveMcut(t, churned, k, coldSteps, nil)
	warmMcut, _ := solveMcut(t, churned, k, coldSteps/4, before)
	t.Logf("smoke cold Mcut %.4f (%d steps), warm Mcut %.4f (%d steps)", coldMcut, coldSteps, warmMcut, coldSteps/4)
	if warmMcut > coldMcut {
		t.Errorf("warm-started Mcut %.4f worse than cold %.4f at 25%% of the budget", warmMcut, coldMcut)
	}
}
