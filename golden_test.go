package fusionfission

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
)

// Golden determinism anchor for the engine refactor: every method's exact
// partition on a fixed instance, seed and step cap, captured from the
// pre-engine (serial) solvers. The engine's Parallelism: 1 path must stay
// byte-identical to these outputs seed-for-seed, so any refactor that
// perturbs a solver's RNG consumption or loop-step accounting fails here.
//
// Regenerate (deliberately!) with:
//
//	GOLDEN_UPDATE=1 go test -run TestGoldenMethodPartitions .
//
// The fusion-fission ensemble method is excluded: its default run count is
// GOMAXPROCS, which varies across machines.
//
// Besides the per-method entries, the file pins named option-variant runs
// (goldenVariants): "genetic+memetic" captures the memetic V-cycle
// recombination mode of the GA, while the plain "genetic" entry keeps
// guarding that the flat GA is byte-identical with the option off — the
// memetic code path must not consume a single draw from the flat path's RNG
// stream.

const (
	goldenPath     = "testdata/golden_methods.json"
	goldenK        = 6
	goldenSeed     = 7
	goldenMaxSteps = 120
)

type goldenEntry struct {
	Parts []int32 `json:"parts"`
	Mcut  float64 `json:"mcut"`
}

type goldenFile struct {
	Graph    string                 `json:"graph"`
	K        int                    `json:"k"`
	Seed     int64                  `json:"seed"`
	MaxSteps int                    `json:"max_steps"`
	Methods  map[string]goldenEntry `json:"methods"`
}

func goldenGraph() *Graph { return graph.Grid2D(12, 12) }

func goldenMethodIDs() []string {
	var ids []string
	for _, id := range append(Methods(), ExtensionMethods()...) {
		if id == "fusion-fission-ensemble" {
			continue // default run count is GOMAXPROCS: machine-dependent
		}
		ids = append(ids, id)
	}
	return ids
}

func goldenOptions(id string) Options {
	return Options{
		K: goldenK, Method: id, Seed: goldenSeed,
		// The step cap binds; the budget exists only so a stalled machine
		// cannot turn a deterministic run into a wall-clock-truncated one.
		MaxSteps: goldenMaxSteps, Budget: time.Hour,
	}
}

// goldenCase is one pinned run: a plain method id, or a named option
// variant on top of it.
type goldenCase struct {
	name string
	opt  Options
}

// goldenCases lists every golden entry: one per method id, plus the named
// option variants.
func goldenCases() []goldenCase {
	var cases []goldenCase
	for _, id := range goldenMethodIDs() {
		cases = append(cases, goldenCase{name: id, opt: goldenOptions(id)})
	}
	for _, v := range goldenVariants() {
		cases = append(cases, v)
	}
	return cases
}

// goldenVariants pins option-flag runs beside the per-method entries.
func goldenVariants() []goldenCase {
	memetic := goldenOptions("genetic")
	memetic.MemeticCrossover = true
	return []goldenCase{
		{name: "genetic+memetic", opt: memetic},
	}
}

func TestGoldenMethodPartitions(t *testing.T) {
	g := goldenGraph()

	if os.Getenv("GOLDEN_UPDATE") != "" {
		gf := goldenFile{
			Graph: "grid12x12", K: goldenK, Seed: goldenSeed, MaxSteps: goldenMaxSteps,
			Methods: make(map[string]goldenEntry),
		}
		for _, c := range goldenCases() {
			res, err := Partition(g, c.opt)
			if err != nil {
				t.Fatalf("%s: %v", c.name, err)
			}
			gf.Methods[c.name] = goldenEntry{Parts: res.Parts, Mcut: res.Mcut}
		}
		buf, err := json.MarshalIndent(gf, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d methods", goldenPath, len(gf.Methods))
		return
	}

	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	var gf goldenFile
	if err := json.Unmarshal(buf, &gf); err != nil {
		t.Fatal(err)
	}
	for _, c := range goldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			want, ok := gf.Methods[c.name]
			if !ok {
				t.Fatalf("entry %s missing from golden file; regenerate", c.name)
			}
			res, err := Partition(g, c.opt)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Parts, want.Parts) {
				t.Errorf("partition drifted from pre-engine golden (seed %d, %d steps)",
					goldenSeed, goldenMaxSteps)
			}
			if diff := res.Mcut - want.Mcut; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("Mcut drifted: got %.12f want %.12f", res.Mcut, want.Mcut)
			}
		})
	}
}

// TestGoldenObjectiveConsistency is the justification gate for golden
// regeneration: whatever run produced a golden entry (pre-engine full
// evaluations or the incremental scoring layer), the recorded Mcut must be
// the exact objective of the recorded partition, recomputed from scratch by
// objective.Evaluate. A regenerated golden whose incremental bookkeeping
// had drifted past 1e-9 would fail here, so a green run certifies that the
// committed partitions and values agree with the ground-truth evaluator.
func TestGoldenObjectiveConsistency(t *testing.T) {
	buf, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with GOLDEN_UPDATE=1 to create): %v", err)
	}
	var gf goldenFile
	if err := json.Unmarshal(buf, &gf); err != nil {
		t.Fatal(err)
	}
	g := goldenGraph()
	for id, entry := range gf.Methods {
		p, err := partition.FromAssignment(g, entry.Parts, goldenK)
		if err != nil {
			t.Errorf("%s: recorded partition invalid: %v", id, err)
			continue
		}
		full := objective.MCut.Evaluate(p)
		if diff := math.Abs(full - entry.Mcut); diff > 1e-9 {
			t.Errorf("%s: recorded Mcut %.12f vs Objective.Evaluate %.12f (|diff| %.3g > 1e-9)",
				id, entry.Mcut, full, diff)
		}
	}
}
