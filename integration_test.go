package fusionfission

import (
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/objective"
	"repro/internal/partition"
)

// Integration tests: every public method on every graph family, with the
// partition invariants re-validated from scratch.

func integrationGraphs(t *testing.T) map[string]*Graph {
	t.Helper()
	atc, _, err := GenerateAirspace(AirspaceSpec{
		Sectors: 140, Edges: 500, Hubs: 11, Flights: 3000, Seed: 33,
	})
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*Graph{
		"grid":      graph.Grid2D(12, 12),
		"torus":     graph.Torus2D(9, 9),
		"geometric": graph.RandomGeometric(130, 0.16, 4),
		"airspace":  atc,
	}
}

func TestIntegrationAllMethodsAllFamilies(t *testing.T) {
	graphs := integrationGraphs(t)
	for name, g := range graphs {
		for _, method := range Methods() {
			res, err := Partition(g, Options{
				K: 4, Method: method, Seed: 9,
				Budget: 60 * time.Millisecond, MaxSteps: 2000,
			})
			if err != nil {
				t.Errorf("%s/%s: %v", name, method, err)
				continue
			}
			if res.NumParts != 4 {
				t.Errorf("%s/%s: NumParts = %d", name, method, res.NumParts)
			}
			// Rebuild partition state from the returned assignment and
			// cross-check the reported objectives.
			p, err := partition.FromAssignment(g, res.Parts, res.NumParts)
			if err != nil {
				t.Errorf("%s/%s: invalid assignment: %v", name, method, err)
				continue
			}
			if err := p.Validate(); err != nil {
				t.Errorf("%s/%s: %v", name, method, err)
			}
			cut, ncut, mcut := objective.EvaluateAll(p)
			if diff(cut, res.Cut) > 1e-9 || diff(ncut, res.Ncut) > 1e-9 || diff(mcut, res.Mcut) > 1e-9 {
				t.Errorf("%s/%s: reported objectives (%g,%g,%g) != recomputed (%g,%g,%g)",
					name, method, res.Cut, res.Ncut, res.Mcut, cut, ncut, mcut)
			}
		}
	}
}

// TestIntegrationArbitraryK covers the paper's remark that metaheuristics
// handle any k while spectral/multilevel are built for powers of two (our
// implementations extend them to arbitrary k via uneven recursion).
func TestIntegrationArbitraryK(t *testing.T) {
	g := graph.RandomGeometric(150, 0.15, 8)
	for _, k := range []int{3, 5, 11, 27} {
		for _, method := range []string{"fusion-fission", "annealing", "multilevel-bi", "spectral-lanc-bi"} {
			res, err := Partition(g, Options{
				K: k, Method: method, Seed: int64(k),
				Budget: 80 * time.Millisecond, MaxSteps: 2500,
			})
			if err != nil {
				t.Errorf("k=%d %s: %v", k, method, err)
				continue
			}
			if res.NumParts != k {
				t.Errorf("k=%d %s: NumParts = %d", k, method, res.NumParts)
			}
		}
	}
}

// TestIntegrationMetaheuristicQuality asserts the paper's core quality
// relation on a mid-size instance: with a reasonable budget, fusion-fission's
// Mcut is no worse than the multilevel method's.
func TestIntegrationMetaheuristicQuality(t *testing.T) {
	g, _, err := GenerateAirspace(AirspaceSpec{
		Sectors: 200, Edges: 720, Hubs: 13, Flights: 9000, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := Partition(g, Options{K: 8, Method: "multilevel-bi", Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ffRes, err := Partition(g, Options{K: 8, Method: "fusion-fission", Seed: 5, Budget: 1500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if ffRes.Mcut > ml.Mcut*1.05 {
		t.Fatalf("fusion-fission Mcut %.3f worse than multilevel %.3f", ffRes.Mcut, ml.Mcut)
	}
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
