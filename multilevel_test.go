package fusionfission_test

import (
	"encoding/json"
	"reflect"
	"testing"

	ff "repro"
	"repro/internal/graph"
)

func TestMultilevelOptionsNormalize(t *testing.T) {
	// Supported metaheuristic keeps the flags.
	o, err := ff.Normalize(ff.Options{K: 4, Method: "fusion-fission", Multilevel: true, CoarsenTo: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !o.Multilevel || o.CoarsenTo != 200 {
		t.Fatalf("normalized = %+v, want multilevel kept", o)
	}
	// CoarsenTo without Multilevel is cleared, so equivalent requests land
	// on the same cache key.
	o, err = ff.Normalize(ff.Options{K: 4, Method: "fusion-fission", CoarsenTo: 200})
	if err != nil {
		t.Fatal(err)
	}
	if o.Multilevel || o.CoarsenTo != 0 {
		t.Fatalf("normalized = %+v, want coarsen_to cleared", o)
	}
	// Non-supporting methods (classical, and the ensemble which manages its
	// own workers) get both flags cleared, like Parallelism pinning.
	for _, method := range []string{"multilevel-bi", "spectral-lanc-bi", "fusion-fission-ensemble"} {
		o, err = ff.Normalize(ff.Options{K: 4, Method: method, Multilevel: true, CoarsenTo: 64})
		if err != nil {
			t.Fatal(err)
		}
		if o.Multilevel || o.CoarsenTo != 0 {
			t.Fatalf("%s: normalized = %+v, want multilevel cleared", method, o)
		}
	}
	// Negative cutoffs are rejected.
	if _, err := ff.Normalize(ff.Options{K: 4, CoarsenTo: -1}); err == nil {
		t.Fatal("negative CoarsenTo accepted")
	}
}

func TestMultilevelOptionsJSONRoundTrip(t *testing.T) {
	in := ff.Options{K: 8, Method: "annealing", Multilevel: true, CoarsenTo: 96, Parallelism: 2}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out ff.Options
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Fatalf("round-trip: %+v != %+v", out, in)
	}
	// The wire names are part of the HTTP API contract.
	var wire map[string]any
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if _, ok := wire["multilevel"]; !ok {
		t.Fatalf("no \"multilevel\" key in %s", data)
	}
	if _, ok := wire["coarsen_to"]; !ok {
		t.Fatalf("no \"coarsen_to\" key in %s", data)
	}
}

func TestMultilevelPartitionEndToEnd(t *testing.T) {
	g := graph.RandomGeometric(700, 0.07, 1)
	res, err := ff.Partition(g, ff.Options{
		K: 8, Method: "fusion-fission", Seed: 1, MaxSteps: 150,
		Multilevel: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.NumParts != 8 || len(res.Parts) != 700 {
		t.Fatalf("parts=%d len=%d", res.NumParts, len(res.Parts))
	}
	h := res.Hierarchy
	if h == nil {
		t.Fatal("no hierarchy stats on a multilevel run")
	}
	if h.Levels < 1 || h.CoarsestVertices >= 700 || len(h.VertexCounts) != h.Levels+1 {
		t.Fatalf("hierarchy = %+v", h)
	}
	// Hierarchy stats travel through the Result's JSON form.
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var wire map[string]any
	if err := json.Unmarshal(data, &wire); err != nil {
		t.Fatal(err)
	}
	if _, ok := wire["hierarchy"]; !ok {
		t.Fatal("no \"hierarchy\" key in result JSON")
	}

	// A flat run reports none.
	res, err = ff.Partition(g, ff.Options{K: 8, Method: "fusion-fission", Seed: 1, MaxSteps: 150})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hierarchy != nil {
		t.Fatal("flat run reported hierarchy stats")
	}
}

func TestMethodInfosMultilevelFlags(t *testing.T) {
	want := map[string]bool{
		"fusion-fission": true,
		"annealing":      true,
		"ant-colony":     true,
		"genetic":        true,
	}
	for _, mi := range ff.MethodInfos() {
		if mi.Multilevel != want[mi.ID] {
			t.Errorf("%s: multilevel = %v, want %v", mi.ID, mi.Multilevel, want[mi.ID])
		}
		if mi.Multilevel && !mi.Metaheuristic {
			t.Errorf("%s: multilevel but not metaheuristic", mi.ID)
		}
	}
}
